package repro

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestFacadeWorkloads(t *testing.T) {
	names := Workloads()
	if len(names) != 3 {
		t.Fatalf("Workloads = %v", names)
	}
	p, err := LoadWorkload("adpcm")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProgram(p); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWorkload("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	r, err := RandomWorkload(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProgram(r); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePipelineEndToEnd(t *testing.T) {
	pl, err := Prepare(context.Background(), "adpcm", DM(128), 128)
	if err != nil {
		t.Fatal(err)
	}
	casa, err := pl.RunCASA(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	base, err := pl.RunCacheOnly(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if casa.EnergyMicroJ <= 0 || base.EnergyMicroJ <= 0 {
		t.Fatalf("implausible energies: %g vs %g", casa.EnergyMicroJ, base.EnergyMicroJ)
	}
	if casa.EnergyMicroJ > base.EnergyMicroJ {
		t.Errorf("CASA (%.2f µJ) worse than cache-only (%.2f µJ)",
			casa.EnergyMicroJ, base.EnergyMicroJ)
	}
}

func TestFacadeManualPipeline(t *testing.T) {
	// Drive the low-level API directly: build, profile, trace, graph,
	// allocate, lay out.
	pb := NewProgramBuilder("manual")
	f := pb.Func("main")
	f.Block("hot").Code(20).Branch("hot", "exit", Loop{Trips: 100})
	f.Block("exit").Return()
	prog, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	set, err := BuildTraces(prog, prof, TraceOptions{MaxBytes: 128, LineBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	g := NewConflictGraph(fetches)
	hit, miss, err := CacheEnergies(1024, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if miss <= hit {
		t.Fatalf("miss %g <= hit %g", miss, hit)
	}
	alloc, err := Allocate(context.Background(), set, g, CASAParams{
		SPMSize:    128,
		ESPHit:     SPMAccessEnergy(128),
		ECacheHit:  hit,
		ECacheMiss: miss,
	})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := NewLayout(set, alloc.InSPM, LayoutOptions{Mode: CopyPlacement, SPMSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if lay.SPMUsed() != alloc.UsedBytes {
		t.Errorf("layout used %d, allocation says %d", lay.SPMUsed(), alloc.UsedBytes)
	}
}

func TestFacadeMultiSPM(t *testing.T) {
	pl, err := Prepare(context.Background(), "adpcm", DM(128), 128)
	if err != nil {
		t.Fatal(err)
	}
	hit, miss := pl.Cost.CacheHit, pl.Cost.CacheMiss
	ma, err := AllocateMulti(pl.Set, pl.Graph, MultiParams{
		SPMs: []SPMSpec{
			{Size: 64, ESPHit: SPMAccessEnergy(64)},
			{Size: 64, ESPHit: SPMAccessEnergy(64)},
		},
		ECacheHit:  hit,
		ECacheMiss: miss,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s, used := range ma.UsedBytes {
		if used > 64 {
			t.Errorf("scratchpad %d over capacity: %d", s, used)
		}
	}
}

func TestFacadeILP(t *testing.T) {
	m := NewILPModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	m.AddConstraint("c", ILPExpr(3, x, 4, y), LE, 5)
	m.SetObjective(ILPExpr(2, x, 3, y), Maximize)
	sol, err := SolveILP(m, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status.String() != "optimal" || math.Abs(sol.Objective-3) > 1e-9 {
		t.Fatalf("got %v %g, want optimal 3 (y alone)", sol.Status, sol.Objective)
	}
}

func TestFacadeFigures(t *testing.T) {
	s := NewSuite()
	cfg := Fig4Config{Workload: "adpcm", Cache: DM(128), SPMSizes: []int{64}}
	rows, err := Fig4(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	t1 := Table1Config{Benchmarks: []Table1Benchmark{
		{Workload: "adpcm", Cache: DM(128), MemSizes: []int{64}},
	}}
	trows, avgs, err := Table1(context.Background(), s, t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trows) != 1 || len(avgs) != 1 {
		t.Fatalf("table shape %d/%d", len(trows), len(avgs))
	}
	f5 := Fig5Config{Workload: "adpcm", Cache: DM(128), Sizes: []int{64}}
	if _, err := Fig5(context.Background(), s, f5); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeASMRoundTrip(t *testing.T) {
	p := MustLoadForTest(t, "adpcm")
	var sb strings.Builder
	if err := WriteASM(&sb, p); err != nil {
		t.Fatal(err)
	}
	q, err := ParseASM(strings.NewReader(sb.String()), "adpcm")
	if err != nil {
		t.Fatal(err)
	}
	if q.Size() != p.Size() {
		t.Errorf("round trip changed size: %d vs %d", q.Size(), p.Size())
	}
}

func MustLoadForTest(t *testing.T, name string) *Program {
	t.Helper()
	p, err := LoadWorkload(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFacadeWCET(t *testing.T) {
	pl, err := Prepare(context.Background(), "adpcm", DM(128), 128)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := NewLayout(pl.Set, nil, LayoutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeWCET(pl.Prog, lay, WCETCosts{
		HitCycles: 1, MissCycles: 15, SPMCycles: 1,
		EHit: 1, EMiss: 50, ESPM: 0.4, LineBytes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.EnergyNJ <= 0 {
		t.Errorf("empty WCET result: %+v", res)
	}
}

func TestFacadeGreedyAndData(t *testing.T) {
	pl, err := Prepare(context.Background(), "adpcm", DM(128), 128)
	if err != nil {
		t.Fatal(err)
	}
	prm := CASAParams{
		SPMSize:    128,
		ESPHit:     SPMAccessEnergy(128),
		ECacheHit:  pl.Cost.CacheHit,
		ECacheMiss: pl.Cost.CacheMiss,
	}
	if _, err := GreedyAllocate(context.Background(), pl.Set, pl.Graph, prm); err != nil {
		t.Fatal(err)
	}
	counts := DataAccessCounts(pl.Prog, pl.Prof)
	if len(counts) != len(pl.Prog.Data) {
		t.Fatalf("counts %d for %d objects", len(counts), len(pl.Prog.Data))
	}
	da, err := AllocateWithData(pl.Set, pl.Graph, pl.Prog.Data, counts, DataParams{
		Params: prm, EMainData: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if da.CodeBytes+da.DataBytes > 128 {
		t.Error("joint allocation over capacity")
	}
}

func TestFacadeDefaultsExist(t *testing.T) {
	if len(DefaultFig4().SPMSizes) == 0 || len(DefaultFig5().Sizes) == 0 ||
		len(DefaultTable1().Benchmarks) != 3 {
		t.Error("default experiment configs incomplete")
	}
}

// TestGoldenAdpcmRegression pins the adpcm Table-1 column exactly: the
// whole pipeline is deterministic, so any change to these numbers means a
// behavioral change somewhere (workload, traces, allocator, energy model)
// that must be deliberate.
func TestGoldenAdpcmRegression(t *testing.T) {
	s := NewSuite()
	cfg := Table1Config{Benchmarks: []Table1Benchmark{
		{Workload: "adpcm", Cache: DM(128), MemSizes: []int{64, 128, 256}},
	}}
	rows, _, err := Table1(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct{ casa, steinke, lc float64 }{
		{1069.96, 1210.22, 1256.96},
		{587.03, 865.61, 797.72},
		{409.63, 447.64, 729.90},
	}
	for i, g := range golden {
		r := rows[i]
		if math.Abs(r.CASAMicroJ-g.casa) > 0.01 ||
			math.Abs(r.SteinkeMicroJ-g.steinke) > 0.01 ||
			math.Abs(r.LCMicroJ-g.lc) > 0.01 {
			t.Errorf("row %d drifted: got %.2f/%.2f/%.2f, golden %.2f/%.2f/%.2f",
				i, r.CASAMicroJ, r.SteinkeMicroJ, r.LCMicroJ, g.casa, g.steinke, g.lc)
		}
	}
}
