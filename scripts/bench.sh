#!/bin/sh
# bench.sh — run the tier-1 benchmarks once each and emit a JSON results
# file for cmd/benchdiff.
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_ci.json)
#
# -benchtime=1x keeps the run cheap enough for CI: every benchmark
# regenerates a full study, so a single iteration is already seconds of
# simulated work and the timings are stable enough for a 20% gate.
set -eu

out="${1:-BENCH_ci.json}"
baseline="${BENCH_BASELINE:-BENCH_baseline.json}"

# Fail fast, before minutes of benchmarking, if the committed baseline
# the CI gate will compare against is missing or malformed (say, an
# unknown section from a typo or a format from the future). benchdiff
# -validate parses it strictly and names the problem.
if [ ! -f "$baseline" ]; then
  echo "bench.sh: baseline $baseline not found — regenerate it with:" >&2
  echo "  scripts/bench.sh $baseline   (then commit it)" >&2
  exit 1
fi
go run ./cmd/benchdiff -validate "$baseline" || {
  echo "bench.sh: baseline $baseline failed validation (see above)" >&2
  exit 1
}

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench . -benchtime=1x -count=1 . | tee "$tmp"
go run ./cmd/benchdiff -parse "$tmp" -o "$out"
echo "wrote $out"
