#!/bin/sh
# bench.sh — run the tier-1 benchmarks once each and emit a JSON results
# file for cmd/benchdiff.
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_ci.json)
#        scripts/bench.sh -refresh
#
# -refresh rewrites the committed baseline in one step: it runs the same
# benchmarks AND the same experiment-report runs the CI report gate
# uses, then merges both into BENCH_baseline.json via benchdiff -refresh
# (which keeps the hand-committed server budgets untouched). Run it
# after an intentional performance change, eyeball the diff, commit.
#
# -benchtime=1x keeps the run cheap enough for CI: every benchmark
# regenerates a full study, so a single iteration is already seconds of
# simulated work and the timings are stable enough for a 20% gate.
set -eu

baseline="${BENCH_BASELINE:-BENCH_baseline.json}"
refresh=0
if [ "${1:-}" = "-refresh" ]; then
  refresh=1
  shift
fi
out="${1:-BENCH_ci.json}"

# Fail fast, before minutes of benchmarking, if the committed baseline
# the CI gate will compare against is missing or malformed (say, an
# unknown section from a typo or a format from the future). benchdiff
# -validate parses it strictly and names the problem.
if [ ! -f "$baseline" ]; then
  echo "bench.sh: baseline $baseline not found — regenerate it with:" >&2
  echo "  scripts/bench.sh $baseline   (then commit it)" >&2
  exit 1
fi
go run ./cmd/benchdiff -validate "$baseline" || {
  echo "bench.sh: baseline $baseline failed validation (see above)" >&2
  exit 1
}

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# A refresh takes three samples per benchmark; benchdiff -parse keeps
# the slowest, so the committed ns/op baselines are ceilings with the
# jitter of tiny benchmarks already priced in. The CI gate itself stays
# single-sample to stay cheap.
count=1
[ "$refresh" = 1 ] && count=3

go test -run '^$' -bench . -benchtime=1x -count="$count" . | tee "$tmp"

if [ "$refresh" = 1 ]; then
  # Mirror the CI report gate exactly (.github/workflows/ci.yml): fig4
  # twice on one suite (round 2 pins the memo rates) plus the
  # sensitivity grid (the study whose cells share a trace partition, so
  # conflict-graph rebasing fires). Baselines refreshed from any other
  # command would gate against the wrong measurements. Three samples,
  # folded to the slowest stage times by benchdiff -refresh, price in
  # the jitter of the few-millisecond stages.
  rep1="$(mktemp)" rep2="$(mktemp)" rep3="$(mktemp)" sens="$(mktemp)"
  trap 'rm -f "$tmp" "$rep1" "$rep2" "$rep3" "$sens"' EXIT
  for rep in "$rep1" "$rep2" "$rep3"; do
    go run ./cmd/experiments -exp fig4 -repeat 2 -workers 1 -report "$rep" > /dev/null
    go run ./cmd/experiments -exp sensitivity -repeat 1 -workers 1 -report "$sens" > /dev/null
    cat "$sens" >> "$rep"
  done
  go run ./cmd/benchdiff -refresh "$baseline" -parse "$tmp" -from-report "$rep1,$rep2,$rep3"
else
  go run ./cmd/benchdiff -parse "$tmp" -o "$out"
  echo "wrote $out"
fi
