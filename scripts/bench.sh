#!/bin/sh
# bench.sh — run the tier-1 benchmarks once each and emit a JSON results
# file for cmd/benchdiff.
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_ci.json)
#
# -benchtime=1x keeps the run cheap enough for CI: every benchmark
# regenerates a full study, so a single iteration is already seconds of
# simulated work and the timings are stable enough for a 20% gate.
set -eu

out="${1:-BENCH_ci.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench . -benchtime=1x -count=1 . | tee "$tmp"
go run ./cmd/benchdiff -parse "$tmp" -o "$out"
echo "wrote $out"
