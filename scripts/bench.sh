#!/bin/sh
# bench.sh — run the tier-1 benchmarks once each and emit a JSON results
# file for cmd/benchdiff.
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_ci.json)
#        scripts/bench.sh -refresh
#        scripts/bench.sh -load [report.json]   (default load_report.json)
#
# -refresh rewrites the committed baseline in one step: it runs the same
# benchmarks AND the same experiment-report runs the CI report gate
# uses, then merges both into BENCH_baseline.json via benchdiff -refresh
# (which keeps the hand-committed server budgets untouched). Run it
# after an intentional performance change, eyeball the diff, commit.
#
# -load is the local equivalent of the CI loadtest job's core: boot a
# casad on an ephemeral-ish port, wait for /healthz, run the casaload
# smoke, gate the report against the committed server ceilings, drain.
# The boot/healthz-wait step is airtight: a daemon that exits early or
# never turns healthy kills the run with a nonzero exit and its log on
# stderr — the gate can never run against a dead server and pass on
# stale or empty numbers.
#
# -benchtime=1x keeps the run cheap enough for CI: every benchmark
# regenerates a full study, so a single iteration is already seconds of
# simulated work and the timings are stable enough for a 20% gate.
set -eu

baseline="${BENCH_BASELINE:-BENCH_baseline.json}"
refresh=0
loadmode=0
case "${1:-}" in
-refresh)
  refresh=1
  shift
  ;;
-load)
  loadmode=1
  shift
  ;;
esac
out="${1:-BENCH_ci.json}"
[ "$loadmode" = 1 ] && out="${1:-load_report.json}"

# Fail fast, before minutes of benchmarking, if the committed baseline
# the CI gate will compare against is missing or malformed (say, an
# unknown section from a typo or a format from the future). benchdiff
# -validate parses it strictly and names the problem.
if [ ! -f "$baseline" ]; then
  echo "bench.sh: baseline $baseline not found — regenerate it with:" >&2
  echo "  scripts/bench.sh $baseline   (then commit it)" >&2
  exit 1
fi
go run ./cmd/benchdiff -validate "$baseline" || {
  echo "bench.sh: baseline $baseline failed validation (see above)" >&2
  exit 1
}

if [ "$loadmode" = 1 ]; then
  port="${CASA_LOAD_PORT:-8348}"
  bindir="$(mktemp -d)"
  pid=""
  trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$bindir"' EXIT

  go build -o "$bindir/casad" ./cmd/casad
  go build -o "$bindir/casaload" ./cmd/casaload

  "$bindir/casad" -addr "127.0.0.1:$port" -max-inflight 48 2> "$bindir/casad.log" &
  pid=$!

  # The healthz wait must fail the whole run, not fall through: check
  # the process is still alive each tick (a daemon that died on boot —
  # bad flag, port in use — is reported immediately, not after the full
  # wait), and exit nonzero with the log if it never turns healthy.
  healthy=0
  for i in $(seq 1 50); do
    if ! kill -0 "$pid" 2> /dev/null; then
      break
    fi
    # --max-time so a daemon (or port squatter) that accepts but never
    # answers cannot wedge the wait loop itself.
    if curl -fsS --max-time 2 "http://127.0.0.1:$port/healthz" > /dev/null 2>&1; then
      healthy=1
      break
    fi
    sleep 0.2
  done
  if [ "$healthy" != 1 ]; then
    echo "bench.sh: casad failed to boot or never became healthy" >&2
    cat "$bindir/casad.log" >&2 || true
    exit 1
  fi

  "$bindir/casaload" -addr "http://127.0.0.1:$port" -n 2000 -c 24 \
    -require-coalescing -max-5xx 0 -o "$out"

  curl -fsS -X POST "http://127.0.0.1:$port/quitquitquit" > /dev/null || true

  go run ./cmd/benchdiff -from-load "$out" -o BENCH_server.json
  go run ./cmd/benchdiff -baseline "$baseline" -current BENCH_server.json
  echo "wrote $out (gated against $baseline)"
  exit 0
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# A refresh takes three samples per benchmark; benchdiff -parse keeps
# the slowest, so the committed ns/op baselines are ceilings with the
# jitter of tiny benchmarks already priced in. The CI gate itself stays
# single-sample to stay cheap.
count=1
[ "$refresh" = 1 ] && count=3

go test -run '^$' -bench . -benchtime=1x -count="$count" . | tee "$tmp"

if [ "$refresh" = 1 ]; then
  # Mirror the CI report gate exactly (.github/workflows/ci.yml): fig4
  # twice on one suite (round 2 pins the memo rates) plus the
  # sensitivity grid (the study whose cells share a trace partition, so
  # conflict-graph rebasing fires). Baselines refreshed from any other
  # command would gate against the wrong measurements. Three samples,
  # folded to the slowest stage times by benchdiff -refresh, price in
  # the jitter of the few-millisecond stages.
  rep1="$(mktemp)" rep2="$(mktemp)" rep3="$(mktemp)" sens="$(mktemp)"
  trap 'rm -f "$tmp" "$rep1" "$rep2" "$rep3" "$sens"' EXIT
  for rep in "$rep1" "$rep2" "$rep3"; do
    go run ./cmd/experiments -exp fig4 -repeat 2 -workers 1 -report "$rep" > /dev/null
    go run ./cmd/experiments -exp sensitivity -repeat 1 -workers 1 -report "$sens" > /dev/null
    cat "$sens" >> "$rep"
  done
  go run ./cmd/benchdiff -refresh "$baseline" -parse "$tmp" -from-report "$rep1,$rep2,$rep3"
else
  go run ./cmd/benchdiff -parse "$tmp" -o "$out"
  echo "wrote $out"
fi
