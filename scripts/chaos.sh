#!/bin/sh
# chaos.sh — the chaos-loadtest CI job, runnable locally.
#
# Boots casad with scheduled network faults (CASA_FAULTS: read-path
# stalls, hard connection resets, trickled responses) and a warm-state
# snapshot, drives hostile traffic with casaload -chaos (stalled
# uploads, mid-response hangups, malformed floods, oversized bodies,
# 1ms deadlines interleaved with healthy load), and gates the result
# with benchdiff: the healthy-traffic p99 must stay inside the
# committed BENCH_baseline.json ceiling, zero unexpected 5xx, and the
# chaos floors must move — a chaos run that injected nothing is a red
# build, not a quiet green one.
#
# Then the crash-recovery half: kill -9 the daemon (no drain, no
# shutdown snapshot), restart it from the periodic snapshot, and prove
# the restart serves byte-identical allocations from the restored cache
# with the warm-start machinery immediately live.
#
# Usage: scripts/chaos.sh        (port via CASA_CHAOS_PORT, default 8347)
set -eu

port="${CASA_CHAOS_PORT:-8347}"
addr="http://127.0.0.1:$port"
dir="$(mktemp -d)"
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$dir"' EXIT

go build -o "$dir/casad" ./cmd/casad
go build -o "$dir/casaload" ./cmd/casaload

# boot starts casad (arming the given fault plan) and waits for
# /healthz. A daemon that dies or never turns healthy is a hard exit —
# nothing downstream may gate against a dead server.
boot() {
  CASA_FAULTS="$1" "$dir/casad" -addr "127.0.0.1:$port" -max-inflight 48 \
    -snapshot "$dir/snap.json" -snapshot-every 2s 2>> casad_chaos.log &
  pid=$!
  healthy=0
  for i in $(seq 1 75); do
    if ! kill -0 "$pid" 2>/dev/null; then
      break
    fi
    # --max-time so a daemon that accepts but never answers cannot
    # wedge the wait loop itself.
    if curl -fsS --max-time 2 "$addr/healthz" > /dev/null 2>&1; then
      healthy=1
      break
    fi
    sleep 0.2
  done
  if [ "$healthy" != 1 ]; then
    echo "chaos.sh: casad did not become healthy" >&2
    tail -n 40 casad_chaos.log >&2 || true
    exit 1
  fi
}

allocate() {
  curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "{\"workload\":\"adpcm\",\"hierarchy\":{\"cache_bytes\":2048,\"spm_bytes\":$1}}" \
    "$addr/v1/allocate"
}

# Server-side fault schedule: hit numbers are per-point ordinals, all
# well inside a ~600-request run. Three resets on the delivery path is
# what casaload's -max-net-errors 6 allowance (with headroom) covers.
boot "server-stall-read:15/115/215,server-conn-reset:40/140/240,server-slow-client:25/125"

"$dir/casaload" -addr "$addr" -n 600 -c 16 -chaos -chaos-every 25 \
  -max-net-errors 6 -o chaos_report.json

go run ./cmd/benchdiff -from-load chaos_report.json -chaos -o BENCH_chaos.json
go run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_chaos.json

# Crash recovery: capture a reference answer, give the 2s periodic
# snapshotter a beat to persist it, then kill -9 — the restart has only
# the periodic snapshot to come back from.
allocate 512 > before.json
sleep 3
kill -9 "$pid"
wait "$pid" 2> /dev/null || true
pid=""

boot ""
curl -fsS "$addr/metrics.json" -o restart_metrics.json
python3 - <<'EOF'
import json
m = json.load(open("restart_metrics.json"))
n = m.get("casa_server_snapshot_entries_restored_total", 0)
assert n > 0, "restart restored nothing from the snapshot"
print(f"chaos.sh: restart restored {n:.0f} snapshot entries")
EOF

allocate 512 > after.json
python3 - <<'EOF'
import json
strip = {"elapsed_ms", "cached", "coalesced"}
a = {k: v for k, v in json.load(open("before.json")).items() if k not in strip}
b = {k: v for k, v in json.load(open("after.json")).items() if k not in strip}
assert a == b, f"restored answer differs from pre-kill answer:\nbefore: {a}\nafter:  {b}"
assert json.load(open("after.json"))["cached"], \
    "restored answer was recomputed, not served from the restored cache"
EOF

# Warm-start proof: a request one scratchpad step away from a restored
# donor must pick up a transferred cutoff on its very first solve.
allocate 496 > /dev/null
curl -fsS "$addr/metrics.json" -o warm_metrics.json
python3 - <<'EOF'
import json
m = json.load(open("warm_metrics.json"))
assert m.get("casa_server_warm_solves_total", 0) > 0, \
    "no warm solve after snapshot restore (donors not restored?)"
EOF

curl -fsS -X POST "$addr/quitquitquit" > /dev/null || true
echo "chaos.sh: ok"
