// Package repro is the public API of the CASA reproduction: a library
// implementation of "Cache-Aware Scratchpad Allocation Algorithm" (Verma,
// Wehmeyer, Marwedel — DATE 2004) together with every substrate the paper
// depends on, built from scratch in pure Go:
//
//   - a program IR and deterministic instruction-fetch simulator
//     (ARMulator substitute),
//   - trace formation, program layout with copy/move semantics,
//   - an I-cache / scratchpad / preloaded-loop-cache memory-hierarchy
//     simulator with per-object conflict attribution (memsim substitute),
//   - a CACTI-flavored analytical energy model,
//   - a 0/1 ILP solver (simplex + branch & bound; CPLEX substitute),
//   - the CASA allocator itself, Steinke's knapsack baseline and Ross's
//     loop-cache preloading heuristic,
//   - the experiment harness regenerating the paper's Figure 4, Figure 5
//     and Table 1.
//
// The quickest route is the experiments API:
//
//	pl, _ := repro.Prepare(context.Background(), "mpeg", repro.DM(2048), 512)
//	casa, _ := pl.RunCASA(context.Background())
//	fmt.Printf("%.1f µJ\n", casa.EnergyMicroJ)
//
// Lower-level building blocks (the IR builder, the solvers, the
// simulators) are re-exported below for custom studies.
package repro

import (
	"context"
	"io"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/overlay"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wcet"
	"repro/internal/workload"
)

// ---- Program representation -------------------------------------------

// Program is a whole application in the library's IR.
type Program = ir.Program

// ProgramBuilder constructs programs with label-based control flow.
type ProgramBuilder = ir.ProgramBuilder

// NewProgramBuilder returns an empty program builder.
func NewProgramBuilder(name string) *ProgramBuilder { return ir.NewProgramBuilder(name) }

// ValidateProgram checks a program's structural well-formedness.
func ValidateProgram(p *Program) error { return ir.Validate(p) }

// Branch behaviors for conditional branches in custom workloads.
type (
	// Loop models a counted loop back edge (taken Trips-1 of Trips times).
	Loop = ir.Loop
	// Pattern cycles through a fixed taken/not-taken sequence.
	Pattern = ir.Pattern
	// Biased takes the branch with a fixed probability, deterministically.
	Biased = ir.Biased
)

// ---- Workloads -----------------------------------------------------------

// Workloads returns the bundled benchmark names: adpcm, g721, mpeg.
func Workloads() []string { return workload.Names() }

// LoadWorkload returns a bundled benchmark program.
func LoadWorkload(name string) (*Program, error) { return workload.Load(name) }

// RandomWorkload generates a deterministic random program for testing.
func RandomWorkload(seed uint64) (*Program, error) {
	return workload.Random(workload.RandomSpec{Seed: seed})
}

// ---- Profiling and traces -------------------------------------------------

// Profile holds a program's execution counts.
type Profile = sim.Profile

// ProfileProgram executes a program and returns its profile.
func ProfileProgram(p *Program) (*Profile, error) { return sim.ProfileProgram(p) }

// TraceSet is a program partitioned into traces (memory objects).
type TraceSet = trace.Set

// TraceOptions configures trace formation.
type TraceOptions = trace.Options

// BuildTraces partitions a program into traces.
func BuildTraces(p *Program, prof *Profile, opt TraceOptions) (*TraceSet, error) {
	return trace.Build(p, prof, opt)
}

// ---- Conflict graph ---------------------------------------------------------

// ConflictGraph is the paper's cache-conflict graph.
type ConflictGraph = conflict.Graph

// NewConflictGraph creates an empty conflict graph over per-object fetch
// counts.
func NewConflictGraph(fetches []int64) *ConflictGraph { return conflict.New(fetches) }

// ---- The CASA allocator ------------------------------------------------------

// CASAParams configures the allocator (sizes in bytes, energies in nJ).
type CASAParams = core.Params

// Allocation is a CASA result.
type Allocation = core.Allocation

// Allocate runs the CASA ILP and returns the optimal trace selection.
// The context carries the optional tracing span tree (obs.WithTracer).
func Allocate(ctx context.Context, set *TraceSet, g *ConflictGraph, p CASAParams) (*Allocation, error) {
	return core.Allocate(ctx, set, g, p)
}

// GreedyAllocate runs the greedy variant over the same energy model.
func GreedyAllocate(ctx context.Context, set *TraceSet, g *ConflictGraph, p CASAParams) (*Allocation, error) {
	return core.GreedyAllocate(ctx, set, g, p)
}

// Multi-scratchpad extension (paper §4).
type (
	// SPMSpec describes one scratchpad of a multi-scratchpad hierarchy.
	SPMSpec = core.SPMSpec
	// MultiParams configures the multi-scratchpad allocator.
	MultiParams = core.MultiParams
	// MultiAllocation assigns traces to scratchpads.
	MultiAllocation = core.MultiAllocation
)

// AllocateMulti solves the multi-scratchpad variant.
func AllocateMulti(set *TraceSet, g *ConflictGraph, p MultiParams) (*MultiAllocation, error) {
	return core.AllocateMulti(set, g, p)
}

// Data-preloading extension (paper §7 future work).
type (
	// DataObject is a placeable data item (table, state struct, buffer).
	DataObject = ir.DataObject
	// DataParams extends CASAParams with the off-chip data access energy.
	DataParams = core.DataParams
	// DataAllocation is a joint code+data result.
	DataAllocation = core.DataAllocation
)

// DataAccessCounts derives per-object access counts from a profile.
func DataAccessCounts(p *Program, prof *Profile) []int64 {
	return core.DataAccessCounts(p, prof)
}

// AllocateWithData solves the joint code+data scratchpad allocation.
func AllocateWithData(set *TraceSet, g *ConflictGraph, data []DataObject,
	accesses []int64, p DataParams) (*DataAllocation, error) {
	return core.AllocateWithData(set, g, data, accesses, p)
}

// Overlay extension (paper §7 future work: dynamic copying).
type (
	// OverlayPhases is a program's phase partition.
	OverlayPhases = overlay.Phases
	// OverlayParams configures the phased allocator (includes reload
	// costs).
	OverlayParams = overlay.Params
	// OverlayAllocation assigns traces to phase images.
	OverlayAllocation = overlay.Allocation
)

// DiscoverPhases partitions a program into overlay phases from its entry
// function's top-level structure.
func DiscoverPhases(p *Program, set *TraceSet) (*OverlayPhases, error) {
	return overlay.Discover(p, set)
}

// AllocateOverlay solves the phased scratchpad allocation with per-phase
// capacities and reload costs.
func AllocateOverlay(set *TraceSet, g *ConflictGraph, ph *OverlayPhases,
	p OverlayParams) (*OverlayAllocation, error) {
	return overlay.Allocate(set, g, ph, p)
}

// NewOverlayLayout builds the address map for an overlay allocation.
func NewOverlayLayout(set *TraceSet, a *OverlayAllocation, ph *OverlayPhases,
	opt LayoutOptions) (*Layout, error) {
	phase, num := overlay.LayoutPhases(set, a, ph)
	return layout.NewOverlay(set, phase, num, opt)
}

// TwoPassWorkload returns the overlay demonstration program: two
// sequential hot passes whose working sets each fill a small scratchpad.
func TwoPassWorkload() (*Program, error) { return workload.TwoPass() }

// SimResult is a full memory-hierarchy simulation result.
type SimResult = memsim.Result

// SimulateLayout runs the memory-hierarchy simulation of a program under
// an arbitrary layout (e.g. an overlay layout) with the given I-cache and
// scratchpad configuration.
func SimulateLayout(p *Program, lay *Layout, cacheSpec CacheSpec, spmBytes int) (*SimResult, error) {
	cost, err := energy.NewCostModel(energy.Config{
		Cache: energy.CacheGeometry{
			SizeBytes: cacheSpec.Size, LineBytes: cacheSpec.Line, Assoc: cacheSpec.Assoc,
		},
		SPMBytes: spmBytes,
	})
	if err != nil {
		return nil, err
	}
	return memsim.Run(p, lay, memsim.Config{
		Cache: cache.Config{
			SizeBytes: cacheSpec.Size, LineBytes: cacheSpec.Line,
			Assoc: cacheSpec.Assoc, Replacement: cacheSpec.Policy,
		},
		Cost: cost,
	})
}

// MainMemoryWordEnergy returns the modelled off-chip energy (nJ) of one
// 32-bit access — the per-word cost of overlay reload copies.
func MainMemoryWordEnergy() float64 { return energy.MainMemoryWord() }

// ---- Layout ----------------------------------------------------------------

// Layout assigns addresses to a trace set under copy or move semantics.
type Layout = layout.Layout

// LayoutOptions configures layout construction.
type LayoutOptions = layout.Options

// Placement semantics.
const (
	// CopyPlacement copies selected traces to the scratchpad (CASA).
	CopyPlacement = layout.Copy
	// MovePlacement removes them from the main image (Steinke).
	MovePlacement = layout.Move
)

// NewLayout builds an address map for a selection.
func NewLayout(set *TraceSet, inSPM []bool, opt LayoutOptions) (*Layout, error) {
	return layout.New(set, inSPM, opt)
}

// ---- Experiments (the paper's evaluation) -----------------------------------

// CacheSpec selects an I-cache configuration.
type CacheSpec = experiments.CacheSpec

// DM returns a direct-mapped cache spec with the paper's 16-byte lines.
func DM(size int) CacheSpec { return experiments.DM(size) }

// Pipeline bundles everything shared by the allocators for one
// configuration.
type Pipeline = experiments.Pipeline

// Outcome is one allocator's measured result.
type Outcome = experiments.Outcome

// Prepare builds the evaluation pipeline for one (workload, cache,
// scratchpad size) configuration.
func Prepare(ctx context.Context, name string, cacheSpec CacheSpec, spmSize int) (*Pipeline, error) {
	return experiments.Prepare(ctx, name, cacheSpec, spmSize)
}

// PrepareProgram is Prepare for custom programs.
func PrepareProgram(ctx context.Context, p *Program, cacheSpec CacheSpec, spmSize int) (*Pipeline, error) {
	return experiments.PrepareProgram(ctx, p, cacheSpec, spmSize)
}

// Suite memoizes pipelines across figures.
type Suite = experiments.Suite

// NewSuite returns an empty suite.
func NewSuite() *Suite { return experiments.NewSuite() }

// Figure and table generators with the paper's default configurations.
type (
	// Fig4Config / Fig4Row reproduce Figure 4 (CASA vs. Steinke).
	Fig4Config = experiments.Fig4Config
	Fig4Row    = experiments.Fig4Row
	// Fig5Config / Fig5Row reproduce Figure 5 (scratchpad vs. loop cache).
	Fig5Config = experiments.Fig5Config
	Fig5Row    = experiments.Fig5Row
	// Table1Config / Table1Row / Table1Average reproduce Table 1.
	Table1Config    = experiments.Table1Config
	Table1Row       = experiments.Table1Row
	Table1Average   = experiments.Table1Average
	Table1Benchmark = experiments.Table1Benchmark
)

// Paper-default experiment configurations.
func DefaultFig4() Fig4Config     { return experiments.DefaultFig4() }
func DefaultFig5() Fig5Config     { return experiments.DefaultFig5() }
func DefaultTable1() Table1Config { return experiments.DefaultTable1() }

// Fig4 regenerates Figure 4.
func Fig4(ctx context.Context, s *Suite, cfg Fig4Config) ([]Fig4Row, error) {
	return experiments.Fig4(ctx, s, cfg)
}

// Fig5 regenerates Figure 5.
func Fig5(ctx context.Context, s *Suite, cfg Fig5Config) ([]Fig5Row, error) {
	return experiments.Fig5(ctx, s, cfg)
}

// Table1 regenerates Table 1 with per-benchmark averages.
func Table1(ctx context.Context, s *Suite, cfg Table1Config) ([]Table1Row, []Table1Average, error) {
	return experiments.Table1(ctx, s, cfg)
}

// ---- Textual program format -----------------------------------------------

// ParseASM reads a program in the library's assembly-like text format
// (see internal/asm for the grammar).
func ParseASM(r io.Reader, name string) (*Program, error) { return asm.Parse(r, name) }

// WriteASM renders a program in the text format; the output parses back
// into a structurally identical program.
func WriteASM(w io.Writer, p *Program) error { return asm.Write(w, p) }

// ---- WCET analysis ----------------------------------------------------------

// WCETCosts carries the per-fetch worst-case costs for AnalyzeWCET.
type WCETCosts = wcet.Costs

// WCETResult is a whole-program worst-case bound.
type WCETResult = wcet.Result

// AnalyzeWCET computes a sound static bound on instruction-fetch cycles
// and energy for a program under a layout. Scratchpad fetches are
// deterministic; cacheable fetches are charged a miss per line touched.
func AnalyzeWCET(p *Program, lay *Layout, c WCETCosts) (*WCETResult, error) {
	return wcet.Analyze(p, lay, c)
}

// ---- Energy model -------------------------------------------------------------

// SPMAccessEnergy returns the modelled per-access energy (nJ) of a
// scratchpad of the given size (power of two).
func SPMAccessEnergy(sizeBytes int) float64 { return energy.SPMAccess(sizeBytes) }

// CacheEnergies returns the modelled per-hit and per-miss energies (nJ)
// of an I-cache.
func CacheEnergies(sizeBytes, lineBytes, assoc int) (hit, miss float64, err error) {
	cm, err := energy.NewCostModel(energy.Config{Cache: energy.CacheGeometry{
		SizeBytes: sizeBytes, LineBytes: lineBytes, Assoc: assoc,
	}})
	if err != nil {
		return 0, 0, err
	}
	return cm.CacheHit, cm.CacheMiss, nil
}

// ---- ILP solver ---------------------------------------------------------------

// ILPModel is a mixed 0/1-integer linear program.
type ILPModel = ilp.Model

// ILPOptions tunes the solver.
type ILPOptions = ilp.Options

// ILPSolution is a solver result.
type ILPSolution = ilp.Solution

// NewILPModel returns an empty model.
func NewILPModel() *ILPModel { return ilp.NewModel() }

// SolveILP optimizes a model exactly with branch & bound. It is the
// context-free facade; pass opt.Budget for an anytime solve.
func SolveILP(m *ILPModel, opt ILPOptions) (*ILPSolution, error) {
	return ilp.Solve(context.Background(), m, opt)
}

// ILPVar identifies a variable within its model.
type ILPVar = ilp.Var

// ILPExpr builds a linear expression from coefficient/variable pairs:
// ILPExpr(2, x, -1, y) is 2x − y.
func ILPExpr(pairs ...any) ilp.LinExpr { return ilp.Expr(pairs...) }

// Constraint relations and objective senses, re-exported for model
// construction through the facade.
const (
	// LE, GE and EQ are the constraint relations ≤, ≥ and =.
	LE = ilp.LE
	GE = ilp.GE
	EQ = ilp.EQ
	// Minimize and Maximize are the objective senses.
	Minimize = ilp.Minimize
	Maximize = ilp.Maximize
)
