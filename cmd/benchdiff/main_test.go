package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkFig4CASAvsSteinke-8   1   3990000000 ns/op", "BenchmarkFig4CASAvsSteinke", 3990000000, true},
		{"BenchmarkCacheAccess   	76345986	        15.61 ns/op", "BenchmarkCacheAccess", 15.61, true},
		{"BenchmarkAlloc-4  10  123 ns/op  456 B/op  7 allocs/op", "BenchmarkAlloc", 123, true},
		{"ok  	repro	12.3s", "", 0, false},
		{"PASS", "", 0, false},
		{"BenchmarkBroken  x  y ns/op", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseBenchLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("parseBenchLine(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestParseAndCompare(t *testing.T) {
	dir := t.TempDir()
	benchTxt := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchTxt, []byte(`goos: linux
BenchmarkFast-8   100   1000 ns/op
BenchmarkSlow-8   1   2000000 ns/op
PASS
ok  	repro	3.0s
`), 0o644); err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, "cur.json")
	if err := runParse(benchTxt, cur); err != nil {
		t.Fatalf("runParse: %v", err)
	}

	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Baseline equal to current: passes.
	same := write("same.json", `{"ns_per_op":{"BenchmarkFast":1000,"BenchmarkSlow":2000000}}`)
	if err := runCompare(same, cur, 20, 20, 5, 20); err != nil {
		t.Errorf("equal results failed the gate: %v", err)
	}

	// Current is >20% slower than this baseline: fails.
	faster := write("faster.json", `{"ns_per_op":{"BenchmarkFast":1000,"BenchmarkSlow":1000000}}`)
	if err := runCompare(faster, cur, 20, 20, 5, 20); err == nil {
		t.Error("2x regression passed a 20% gate")
	}

	// Within threshold: passes.
	if err := runCompare(faster, cur, 150, 20, 5, 20); err != nil {
		t.Errorf("regression within threshold failed: %v", err)
	}

	// Benchmarks missing from either side don't fail the gate.
	disjoint := write("disjoint.json", `{"ns_per_op":{"BenchmarkFast":1000,"BenchmarkGone":5}}`)
	if err := runCompare(disjoint, cur, 20, 20, 5, 20); err != nil {
		t.Errorf("missing/new benchmarks failed the gate: %v", err)
	}
}

func TestAggregateReports(t *testing.T) {
	reps := []*obs.Report{
		{
			Study: "fig4", Round: 1,
			Spans: []*obs.Span{{
				Name: "prepare", DurNS: 100,
				Children: []*obs.Span{{Name: "profile", DurNS: 60}},
			}},
			Metrics: obs.Snapshot{
				"casa_pipeline_memo_hits_total":   0,
				"casa_pipeline_memo_misses_total": 4,
			},
		},
		{
			Study: "fig4", Round: 2,
			Spans: []*obs.Span{{Name: "prepare", DurNS: 50}},
			Metrics: obs.Snapshot{
				"casa_pipeline_memo_hits_total": 12,
				"casa_sim_runs_total":           3, // no miss pair: not a rate
				"casa_ilp_nodes_total":          40,
				"casa_ilp_simplex_iters_total":  900,
				"casa_sim_lines_total":          7000,
				"casa_sim_bulk_fetches_total":   1200,
				"casa_trace_replays_total":      5,
			},
		},
	}
	res := aggregateReports(reps)
	if res.StageNs["prepare"] != 150 || res.StageNs["profile"] != 60 {
		t.Errorf("stage ns = %v, want prepare:150 profile:60", res.StageNs)
	}
	rate, ok := res.MemoHitRate["casa_pipeline_memo"]
	if !ok || rate != 75 {
		t.Errorf("memo hit rate = %v, want casa_pipeline_memo:75", res.MemoHitRate)
	}
	if _, ok := res.MemoHitRate["casa_sim_runs"]; ok {
		t.Errorf("unpaired counter produced a hit rate: %v", res.MemoHitRate)
	}
	if res.Counters["casa_ilp_nodes_total"] != 40 || res.Counters["casa_ilp_simplex_iters_total"] != 900 {
		t.Errorf("counters = %v, want nodes:40 iters:900", res.Counters)
	}
	if res.Counters["casa_sim_lines_total"] != 7000 ||
		res.Counters["casa_sim_bulk_fetches_total"] != 1200 ||
		res.Counters["casa_trace_replays_total"] != 5 {
		t.Errorf("sim counters = %v, want lines:7000 bulk:1200 replays:5", res.Counters)
	}
	if _, ok := res.Counters["casa_sim_runs_total"]; ok {
		t.Errorf("non-gated metric leaked into counters: %v", res.Counters)
	}
}

func TestCompareCounterSection(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	base := write("base.json",
		`{"counters":{"casa_ilp_nodes_total":1000,"casa_ilp_dense_fallbacks_total":0}}`)

	// Within threshold: passes.
	ok := write("ok.json", `{"counters":{"casa_ilp_nodes_total":1100,"casa_ilp_dense_fallbacks_total":0}}`)
	if err := runCompare(base, ok, 20, 20, 5, 20); err != nil {
		t.Errorf("10%% node growth failed a 20%% gate: %v", err)
	}

	// Node count up 50%: the solver is searching more — fails.
	worse := write("worse.json", `{"counters":{"casa_ilp_nodes_total":1500,"casa_ilp_dense_fallbacks_total":0}}`)
	if err := runCompare(base, worse, 20, 20, 5, 20); err == nil {
		t.Error("50% node-count growth passed a 20% gate")
	}

	// Dense fallbacks reappearing from a zero baseline: fails.
	fb := write("fb.json", `{"counters":{"casa_ilp_nodes_total":1000,"casa_ilp_dense_fallbacks_total":3}}`)
	if err := runCompare(base, fb, 20, 20, 5, 20); err == nil {
		t.Error("dense fallbacks from a zero baseline passed the gate")
	}

	// Fewer nodes is an improvement, never a regression.
	better := write("better.json", `{"counters":{"casa_ilp_nodes_total":400,"casa_ilp_dense_fallbacks_total":0}}`)
	if err := runCompare(base, better, 20, 20, 5, 20); err != nil {
		t.Errorf("node-count improvement failed the gate: %v", err)
	}
}

func TestCompareReportSections(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	base := write("base.json",
		`{"ns_per_op":{"BenchmarkX":100},"stage_ns":{"prepare":2e8,"layout":1e3},"memo_hit_rate":{"casa_pipeline_memo":75}}`)

	// Equal report-derived sections, no ns_per_op in current: gate passes
	// (the ns/op section is skipped, not failed).
	ok := write("ok.json", `{"stage_ns":{"prepare":2e8,"layout":1e3},"memo_hit_rate":{"casa_pipeline_memo":75}}`)
	if err := runCompare(base, ok, 20, 20, 5, 20); err != nil {
		t.Errorf("matching report sections failed the gate: %v", err)
	}

	// Stage time doubled: fails the stage gate.
	slow := write("slow.json", `{"stage_ns":{"prepare":4e8,"layout":1e3},"memo_hit_rate":{"casa_pipeline_memo":75}}`)
	if err := runCompare(base, slow, 20, 20, 5, 20); err == nil {
		t.Error("2x stage regression passed a 20% gate")
	}

	// Sub-floor stage doubled: jitter, not a regression.
	jitter := write("jitter.json", `{"stage_ns":{"prepare":2e8,"layout":2e3},"memo_hit_rate":{"casa_pipeline_memo":75}}`)
	if err := runCompare(base, jitter, 20, 20, 5, 20); err != nil {
		t.Errorf("sub-floor stage jitter failed the gate: %v", err)
	}

	// Hit rate dropped 10pp: fails the hit-rate gate.
	cold := write("cold.json", `{"stage_ns":{"prepare":2e8,"layout":1e3},"memo_hit_rate":{"casa_pipeline_memo":65}}`)
	if err := runCompare(base, cold, 20, 20, 5, 20); err == nil {
		t.Error("10pp hit-rate drop passed a 5pp gate")
	}

	// Hit rate improved: never a regression.
	warm := write("warm.json", `{"stage_ns":{"prepare":2e8,"layout":1e3},"memo_hit_rate":{"casa_pipeline_memo":90}}`)
	if err := runCompare(base, warm, 20, 20, 5, 20); err != nil {
		t.Errorf("hit-rate improvement failed the gate: %v", err)
	}
}

func TestFromReportEndToEnd(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "report.jsonl")
	lines := `{"study":"fig4","round":1,"workers":1,"wall_ns":0,"spans":[{"name":"prepare","dur_ns":100,"children":[{"name":"profile","dur_ns":60}]}],"metrics":{"casa_pipeline_memo_misses_total":2}}
{"study":"fig4","round":2,"workers":1,"wall_ns":0,"spans":[{"name":"cell","dur_ns":10}],"metrics":{"casa_pipeline_memo_hits_total":6}}
`
	if err := os.WriteFile(jsonl, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.json")
	if err := runFromReport(jsonl, out); err != nil {
		t.Fatalf("runFromReport: %v", err)
	}
	res, err := readResults(out)
	if err != nil {
		t.Fatal(err)
	}
	if res.StageNs["prepare"] != 100 || res.StageNs["profile"] != 60 || res.StageNs["cell"] != 10 {
		t.Errorf("stage ns = %v", res.StageNs)
	}
	if res.MemoHitRate["casa_pipeline_memo"] != 75 {
		t.Errorf("hit rate = %v, want 75", res.MemoHitRate["casa_pipeline_memo"])
	}
	if len(res.NsPerOp) != 0 {
		t.Errorf("unexpected ns_per_op section: %v", res.NsPerOp)
	}
}

// TestFromReportRejectsDegraded: the CI gate must refuse to aggregate a
// report carrying degraded cells (or a moved degraded counter) — a
// budget-expired solve would make the benchmark numbers incomparable.
func TestFromReportRejectsDegraded(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.json")
	cases := map[string]string{
		"degraded-cells":   `{"study":"fig4","round":1,"degraded_cells":[{"index":2,"reason":"deadline","gap":0.1}]}` + "\n",
		"degraded-counter": `{"study":"fig4","round":1,"metrics":{"casa_solve_degraded_total":3}}` + "\n",
		"panic-counter":    `{"study":"fig4","round":1,"metrics":{"casa_cell_panics_total":1}}` + "\n",
	}
	for name, line := range cases {
		jsonl := filepath.Join(dir, name+".jsonl")
		if err := os.WriteFile(jsonl, []byte(line), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := runFromReport(jsonl, out); err == nil {
			t.Errorf("%s: degraded report passed the gate", name)
		}
	}
	clean := filepath.Join(dir, "clean.jsonl")
	if err := os.WriteFile(clean, []byte(`{"study":"fig4","round":1,"spans":[{"name":"cell","dur_ns":5}]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runFromReport(clean, out); err != nil {
		t.Errorf("clean report failed the gate: %v", err)
	}
}

// TestFromLoadServerGate: a casaload report converts into a server
// section carrying both the classic ceilings and the telemetry floor,
// and the compare gate enforces each with the right sense.
func TestFromLoadServerGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	load := write("load_report.json", `{"requests":500,"p99_ms":12.5,"http_5xx":0,"errors":0,
		"server_metrics":{"casa_server_traced_requests_total":500,
		                  "casa_server_trace_store_drops_total":0}}`)
	cur := filepath.Join(dir, "cur.json")
	if err := runFromLoad(load, cur, false); err != nil {
		t.Fatalf("runFromLoad: %v", err)
	}
	res, err := readResults(cur)
	if err != nil {
		t.Fatal(err)
	}
	if res.Server["p99_ms"] != 12.5 || res.Server["traced_requests_min"] != 500 ||
		res.Server["trace_store_drops"] != 0 {
		t.Fatalf("server section = %v", res.Server)
	}

	// Within every ceiling and above the floor: passes.
	base := write("base.json",
		`{"server":{"p99_ms":250,"http_5xx":0,"errors":0,"traced_requests_min":1,"trace_store_drops":0}}`)
	if err := runCompare(base, cur, 20, 20, 5, 20); err != nil {
		t.Errorf("healthy run failed the server gate: %v", err)
	}

	// Must-keep trace drops breach the ceiling.
	dropping := write("dropping.json",
		`{"server":{"p99_ms":12.5,"http_5xx":0,"errors":0,"traced_requests_min":500,"trace_store_drops":3}}`)
	if err := runCompare(base, dropping, 20, 20, 5, 20); err == nil {
		t.Error("trace-store drops passed the ceiling gate")
	}

	// Tracing silently off falls below the floor even though every
	// ceiling holds.
	untraced := write("untraced.json",
		`{"server":{"p99_ms":12.5,"http_5xx":0,"errors":0,"traced_requests_min":0,"trace_store_drops":0}}`)
	if err := runCompare(base, untraced, 20, 20, 5, 20); err == nil {
		t.Error("zero traced requests passed the floor gate")
	}

	// A report covering zero requests is a broken run, not a baseline.
	empty := write("empty.json", `{"requests":0}`)
	if err := runFromLoad(empty, cur, false); err == nil {
		t.Error("zero-request load report converted without error")
	}
}

// TestFromLoadChaosGate: -chaos adds the injection floors and the
// unexpected-outcome ceiling to the server section, refuses a report
// with no chaos traffic, and the compare gate turns red when a chaos
// run injected nothing.
func TestFromLoadChaosGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	load := write("chaos_report.json", `{"requests":500,"p99_ms":12.5,"http_5xx":0,"errors":0,
		"chaos_requests":20,"chaos_unexpected":0,
		"server_metrics":{"casa_server_traced_requests_total":500,
		                  "casa_server_trace_store_drops_total":0,
		                  "casa_server_deadline_exceeded_total":4,
		                  "casa_server_body_too_large_total":4,
		                  "casa_faults_injected_total":8}}`)
	cur := filepath.Join(dir, "cur.json")
	if err := runFromLoad(load, cur, true); err != nil {
		t.Fatalf("runFromLoad -chaos: %v", err)
	}
	res, err := readResults(cur)
	if err != nil {
		t.Fatal(err)
	}
	if res.Server["chaos_deadline_exceeded_min"] != 4 || res.Server["chaos_body_too_large_min"] != 4 ||
		res.Server["chaos_injected_min"] != 8 || res.Server["chaos_unexpected"] != 0 {
		t.Fatalf("chaos server section = %v", res.Server)
	}

	base := write("base.json", `{"server":{"p99_ms":250,"http_5xx":0,"errors":0,
		"traced_requests_min":1,"trace_store_drops":0,
		"chaos_deadline_exceeded_min":2,"chaos_body_too_large_min":2,
		"chaos_injected_min":2,"chaos_unexpected":0}}`)
	if err := runCompare(base, cur, 20, 20, 5, 20); err != nil {
		t.Errorf("healthy chaos run failed the gate: %v", err)
	}

	// A chaos run whose faults never fired falls below the floor.
	inert := write("inert.json", `{"requests":500,"p99_ms":12.5,"http_5xx":0,"errors":0,
		"chaos_requests":20,"chaos_unexpected":0,
		"server_metrics":{"casa_server_traced_requests_total":500,
		                  "casa_server_deadline_exceeded_total":4,
		                  "casa_server_body_too_large_total":4,
		                  "casa_faults_injected_total":0}}`)
	inertCur := filepath.Join(dir, "inert_cur.json")
	if err := runFromLoad(inert, inertCur, true); err != nil {
		t.Fatalf("runFromLoad -chaos (inert): %v", err)
	}
	if err := runCompare(base, inertCur, 20, 20, 5, 20); err == nil {
		t.Error("chaos run that injected nothing passed the floor gate")
	}

	// Chaos requests that answered outside their expected set breach
	// the ceiling.
	odd := write("odd.json", `{"requests":500,"p99_ms":12.5,"http_5xx":0,"errors":0,
		"chaos_requests":20,"chaos_unexpected":3,
		"server_metrics":{"casa_server_deadline_exceeded_total":4,
		                  "casa_server_body_too_large_total":4,
		                  "casa_faults_injected_total":8}}`)
	oddCur := filepath.Join(dir, "odd_cur.json")
	if err := runFromLoad(odd, oddCur, true); err != nil {
		t.Fatalf("runFromLoad -chaos (odd): %v", err)
	}
	if err := runCompare(base, oddCur, 20, 20, 5, 20); err == nil {
		t.Error("unexpected chaos outcomes passed the ceiling gate")
	}

	// -chaos on a report with no chaos traffic is a misconfigured run.
	plain := write("plain.json", `{"requests":500,"p99_ms":12.5}`)
	if err := runFromLoad(plain, cur, true); err == nil {
		t.Error("-chaos accepted a report with zero chaos requests")
	}
}

// TestValidateSniffsFormat: -validate accepts both artifact kinds the CI
// jobs feed it — results JSON and scraped Prometheus text — and rejects
// corrupt versions of each.
func TestValidateSniffsFormat(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := write("results.json", `{"server":{"p99_ms":250}}`)
	if err := runValidate(good); err != nil {
		t.Errorf("valid results file rejected: %v", err)
	}
	unknown := write("unknown.json", `{"latency":{"p99_ms":250}}`)
	if err := runValidate(unknown); err == nil {
		t.Error("results file with unknown section accepted")
	}

	prom := write("metrics.prom", "# TYPE casa_server_requests counter\n"+
		"casa_server_requests_total 41\n# EOF\n")
	if err := runValidate(prom); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
	truncated := write("truncated.prom", "# TYPE casa_server_requests counter\n"+
		"casa_server_requests_total 41\n")
	if err := runValidate(truncated); err == nil {
		t.Error("exposition without # EOF accepted")
	}
	garbage := write("garbage.txt", "not metrics at all\n")
	if err := runValidate(garbage); err == nil {
		t.Error("garbage text accepted")
	}
}
