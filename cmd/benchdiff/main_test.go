package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkFig4CASAvsSteinke-8   1   3990000000 ns/op", "BenchmarkFig4CASAvsSteinke", 3990000000, true},
		{"BenchmarkCacheAccess   	76345986	        15.61 ns/op", "BenchmarkCacheAccess", 15.61, true},
		{"BenchmarkAlloc-4  10  123 ns/op  456 B/op  7 allocs/op", "BenchmarkAlloc", 123, true},
		{"ok  	repro	12.3s", "", 0, false},
		{"PASS", "", 0, false},
		{"BenchmarkBroken  x  y ns/op", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseBenchLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("parseBenchLine(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestParseAndCompare(t *testing.T) {
	dir := t.TempDir()
	benchTxt := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchTxt, []byte(`goos: linux
BenchmarkFast-8   100   1000 ns/op
BenchmarkSlow-8   1   2000000 ns/op
PASS
ok  	repro	3.0s
`), 0o644); err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, "cur.json")
	if err := runParse(benchTxt, cur); err != nil {
		t.Fatalf("runParse: %v", err)
	}

	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Baseline equal to current: passes.
	same := write("same.json", `{"ns_per_op":{"BenchmarkFast":1000,"BenchmarkSlow":2000000}}`)
	if err := runCompare(same, cur, 20); err != nil {
		t.Errorf("equal results failed the gate: %v", err)
	}

	// Current is >20% slower than this baseline: fails.
	faster := write("faster.json", `{"ns_per_op":{"BenchmarkFast":1000,"BenchmarkSlow":1000000}}`)
	if err := runCompare(faster, cur, 20); err == nil {
		t.Error("2x regression passed a 20% gate")
	}

	// Within threshold: passes.
	if err := runCompare(faster, cur, 150); err != nil {
		t.Errorf("regression within threshold failed: %v", err)
	}

	// Benchmarks missing from either side don't fail the gate.
	disjoint := write("disjoint.json", `{"ns_per_op":{"BenchmarkFast":1000,"BenchmarkGone":5}}`)
	if err := runCompare(disjoint, cur, 20); err != nil {
		t.Errorf("missing/new benchmarks failed the gate: %v", err)
	}
}
