// Command benchdiff is the benchmark-regression gate of CI. It has two
// modes:
//
//	benchdiff -parse bench.txt -o BENCH_ci.json
//	    parse `go test -bench` text output into a JSON results file
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_ci.json -threshold 20
//	    compare two results files and exit non-zero when any benchmark's
//	    wall-clock (ns/op) regressed by more than the threshold percent
//
// Benchmarks present in only one of the two files are reported but do not
// fail the gate (new benchmarks need a baseline refresh, not a red build).
// The GOMAXPROCS suffix (`BenchmarkFoo-8`) is stripped so results compare
// across machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Results is the JSON schema of a benchmark results file.
type Results struct {
	// NsPerOp maps benchmark name (GOMAXPROCS suffix stripped) to its
	// wall-clock per iteration.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

func main() {
	parse := flag.String("parse", "", "parse `go test -bench` output from this file")
	out := flag.String("o", "BENCH_ci.json", "JSON output path for -parse")
	baseline := flag.String("baseline", "", "baseline results JSON")
	current := flag.String("current", "", "current results JSON")
	threshold := flag.Float64("threshold", 20, "max allowed ns/op regression in percent")
	flag.Parse()

	var err error
	switch {
	case *parse != "":
		err = runParse(*parse, *out)
	case *baseline != "" && *current != "":
		err = runCompare(*baseline, *current, *threshold)
	default:
		err = fmt.Errorf("need either -parse, or -baseline and -current (see -h)")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func runParse(in, out string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	res := Results{NsPerOp: make(map[string]float64)}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, ns, ok := parseBenchLine(sc.Text())
		if ok {
			res.NsPerOp[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(res.NsPerOp) == 0 {
		return fmt.Errorf("%s: no benchmark lines found", in)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// parseBenchLine extracts (name, ns/op) from a `go test -bench` result
// line such as
//
//	BenchmarkFig4CASAvsSteinke-8   1   3990000000 ns/op
func parseBenchLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	// ns/op is always the value immediately before the "ns/op" unit.
	for i := 2; i < len(fields); i++ {
		if fields[i] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			return "", 0, false
		}
		name := fields[0]
		if dash := strings.LastIndex(name, "-"); dash > 0 {
			if _, err := strconv.Atoi(name[dash+1:]); err == nil {
				name = name[:dash]
			}
		}
		return name, ns, true
	}
	return "", 0, false
}

func readResults(path string) (Results, error) {
	var res Results
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

func runCompare(basePath, curPath string, threshold float64) error {
	base, err := readResults(basePath)
	if err != nil {
		return err
	}
	cur, err := readResults(curPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := 0
	for _, name := range names {
		b := base.NsPerOp[name]
		c, ok := cur.NsPerOp[name]
		if !ok {
			fmt.Printf("?  %-32s missing from current run\n", name)
			continue
		}
		delta := 100 * (c - b) / b
		mark := "ok"
		if delta > threshold {
			mark = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-9s %-32s %12.0f → %12.0f ns/op  (%+.1f%%)\n", mark, name, b, c, delta)
	}
	for name := range cur.NsPerOp {
		if _, ok := base.NsPerOp[name]; !ok {
			fmt.Printf("+  %-32s new benchmark (no baseline)\n", name)
		}
	}
	if regressed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s", regressed, threshold, basePath)
	}
	fmt.Printf("no regressions beyond %.0f%% (%d benchmarks)\n", threshold, len(names))
	return nil
}
