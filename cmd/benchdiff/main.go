// Command benchdiff is the benchmark-regression gate of CI. It has five
// modes:
//
//	benchdiff -parse bench.txt -o BENCH_ci.json
//	    parse `go test -bench` text output into a JSON results file
//
//	benchdiff -from-report report.jsonl -o BENCH_report.json
//	    aggregate a cmd/experiments -report JSONL file into a results
//	    file: per-stage span time (summed over every span with that name),
//	    the hit rate of every memo layer that counts *_hits_total /
//	    *_misses_total metric pairs, and the deterministic solver work
//	    counters (branch & bound nodes, simplex iterations, ...)
//
//	benchdiff -from-load load_report.json [-chaos] -o BENCH_server.json
//	    convert a cmd/casaload report into a results file carrying the
//	    server section: p99 latency, 5xx and error counts, plus the
//	    telemetry pair traced_requests_min / trace_store_drops taken
//	    from the server-side counter deltas. With -chaos the section
//	    additionally carries the chaos floors (deadline expiries,
//	    injected faults, oversized-body rejections, and the
//	    chaos_unexpected ceiling) that make an inert chaos run — one
//	    that injected nothing — a red build
//
//	benchdiff -validate FILE
//	    check an artifact parses: a JSON results file must contain only
//	    known sections; anything else is linted as a Prometheus/
//	    OpenMetrics text exposition (the CI loadtest job runs it on the
//	    scraped /metrics output). scripts/bench.sh runs it before
//	    spending minutes on benchmarks so a stale or hand-mangled
//	    baseline fails fast with a clear message instead of a confusing
//	    gate failure later
//
//	benchdiff -refresh BENCH_baseline.json -parse bench.txt -from-report report.jsonl
//	    rewrite a committed baseline in one step: ns/op from the bench
//	    text, stage times / memo rates / counters from the report, and
//	    the server section carried over unchanged from the existing
//	    baseline (its values are hand-committed budgets, not
//	    measurements, so a refresh must never clobber them)
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_ci.json
//	          [-threshold 20] [-stage-threshold 20] [-hit-drop 5]
//	          [-counter-threshold 20]
//	    compare two results files and exit non-zero when any benchmark's
//	    wall-clock or stage time regressed by more than its threshold
//	    percent, any memo hit rate dropped by more than -hit-drop
//	    percentage points, any solver work counter grew by more than
//	    -counter-threshold percent (or, for the counterFloors set, fell
//	    below its baseline), or any server entry exceeded its committed
//	    ceiling
//
// The server section gates differently from the others: its baseline
// values are committed ceilings (a p99 latency budget, zero 5xx), not
// measurements, so the comparison is simply current > baseline — there
// is no tolerance percentage to argue about. Names ending in _min
// invert the sense: they are committed floors (a smoke run must trace
// at least this many requests), failing when current < baseline.
//
// Entries present in only one of the two files are reported but do not
// fail the gate (new benchmarks need a baseline refresh, not a red
// build), and a section missing entirely from one side is skipped — so a
// baseline carrying all sections still gates a current file built from
// `go test -bench` output alone. The GOMAXPROCS suffix
// (`BenchmarkFoo-8`) is stripped so results compare across machines.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/promexport"
)

// Results is the JSON schema of a benchmark results file (v2: the
// report-derived sections ride alongside the classic ns/op map).
type Results struct {
	// NsPerOp maps benchmark name (GOMAXPROCS suffix stripped) to its
	// wall-clock per iteration.
	NsPerOp map[string]float64 `json:"ns_per_op,omitempty"`
	// StageNs maps pipeline stage name to the summed wall time (ns) of
	// every span with that name across the report. Inclusive of child
	// spans; baseline and current aggregate identically so the ratio is
	// still meaningful.
	StageNs map[string]float64 `json:"stage_ns,omitempty"`
	// MemoHitRate maps a memo layer (the metric prefix shared by its
	// *_hits_total / *_misses_total pair) to its hit rate in percent.
	MemoHitRate map[string]float64 `json:"memo_hit_rate,omitempty"`
	// Counters holds the solver work counters of counterGates (gated on
	// growth) and counterFloors (gated on shortfall) summed across the
	// report. Deterministic for a fixed experiment config, so growth
	// means the solver genuinely does more work per model — and a floor
	// counter falling means an incremental path stopped firing — not
	// machine noise.
	Counters map[string]float64 `json:"counters,omitempty"`
	// Server holds the casad load-test gate. In a baseline file the
	// values are committed ceilings (p99_ms latency budget, tolerated
	// http_5xx / errors counts); in a current file they are the measured
	// values from a casaload report. The gate fails when measured >
	// ceiling.
	Server map[string]float64 `json:"server,omitempty"`
}

// counterGates lists the metrics the counter gate watches. All are
// deterministic "work done" counters where an increase means the code
// got algorithmically worse: branch & bound explored more nodes, the
// simplex ran more pivots, the warm-start engine bailed to the dense
// fallback more often — or the line-granular simulator lost compression
// (more trace replays, bulk deliveries or line transitions per run
// means the engine is sliding back toward per-instruction dispatch).
var counterGates = []string{
	"casa_ilp_nodes_total",
	"casa_ilp_branches_total",
	"casa_ilp_simplex_iters_total",
	"casa_ilp_dense_fallbacks_total",
	"casa_ilp_warm_cell_misses_total",
	"casa_sim_lines_total",
	"casa_sim_bulk_fetches_total",
	"casa_trace_replays_total",
}

// counterFloors lists the metrics gated in the opposite direction:
// deterministic "incremental machinery engaged" counters where a DROP
// means a regression. A grid run whose warm-cell hits fall below the
// baseline is solving cells cold (the planner or transfer broke); a run
// that stops rebasing conflict graphs rebuilt them from scratch. Both
// fail the gate even though the answers are still correct, because the
// speed the baseline timings promise comes from these paths firing.
// (casa_presolve_reuse_total is deliberately absent: cross-cell grid
// models differ structurally, so in report runs it is legitimately
// zero — its unit tests in internal/ilp assert the counter moves.)
var counterFloors = []string{
	"casa_ilp_warm_cell_hits_total",
	"casa_conflict_incremental_total",
	"casa_ilp_basis_reuse_total",
}

// stageFloorNS keeps sub-millisecond stages out of the stage-time gate:
// their wall time is dominated by scheduler jitter, not regressions.
const stageFloorNS = 5e6

func main() {
	parse := flag.String("parse", "", "parse `go test -bench` output from this file")
	fromReport := flag.String("from-report", "", "aggregate a cmd/experiments -report JSONL file")
	fromLoad := flag.String("from-load", "", "convert a cmd/casaload report into a server-section results file")
	chaos := flag.Bool("chaos", false, "with -from-load: include the chaos-mode floors (fault accounting, deadline expiries)")
	validate := flag.String("validate", "", "check that a results file parses and has only known sections")
	refresh := flag.String("refresh", "", "rewrite this baseline from -parse and -from-report inputs, keeping its server section")
	out := flag.String("o", "BENCH_ci.json", "JSON output path for -parse / -from-report / -from-load")
	baseline := flag.String("baseline", "", "baseline results JSON")
	current := flag.String("current", "", "current results JSON")
	threshold := flag.Float64("threshold", 20, "max allowed ns/op regression in percent")
	stageThreshold := flag.Float64("stage-threshold", 20, "max allowed stage-time regression in percent")
	hitDrop := flag.Float64("hit-drop", 5, "max allowed memo hit-rate drop in percentage points")
	counterThreshold := flag.Float64("counter-threshold", 20, "max allowed solver work-counter growth in percent")
	flag.Parse()

	var err error
	switch {
	case *refresh != "":
		err = runRefresh(*refresh, *parse, *fromReport)
	case *parse != "":
		err = runParse(*parse, *out)
	case *fromReport != "":
		err = runFromReport(*fromReport, *out)
	case *fromLoad != "":
		err = runFromLoad(*fromLoad, *out, *chaos)
	case *validate != "":
		err = runValidate(*validate)
	case *baseline != "" && *current != "":
		err = runCompare(*baseline, *current, *threshold, *stageThreshold, *hitDrop, *counterThreshold)
	default:
		err = fmt.Errorf("need -refresh, -parse, -from-report, -from-load, -validate, or -baseline and -current (see -h)")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func writeResults(res Results, out string) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

func runParse(in, out string) error {
	res, err := parseBenchFile(in)
	if err != nil {
		return err
	}
	return writeResults(res, out)
}

func parseBenchFile(in string) (Results, error) {
	res := Results{NsPerOp: make(map[string]float64)}
	f, err := os.Open(in)
	if err != nil {
		return res, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, ns, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		// Repeated samples (go test -count=N) fold to the slowest: a
		// baseline refreshed from several samples is then a conservative
		// ceiling, so a later single-sample gate run doesn't trip on the
		// scheduler jitter of sub-millisecond benchmarks.
		if ns > res.NsPerOp[name] {
			res.NsPerOp[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return res, err
	}
	if len(res.NsPerOp) == 0 {
		return res, fmt.Errorf("%s: no benchmark lines found", in)
	}
	return res, nil
}

func runFromReport(in, out string) error {
	res, err := reportResults(in)
	if err != nil {
		return err
	}
	return writeResults(res, out)
}

func reportResults(in string) (Results, error) {
	f, err := os.Open(in)
	if err != nil {
		return Results{}, err
	}
	defer f.Close()
	reps, err := obs.ReadReports(f)
	if err != nil {
		return Results{}, err
	}
	if len(reps) == 0 {
		return Results{}, fmt.Errorf("%s: no report lines found", in)
	}
	if err := checkDegraded(reps); err != nil {
		return Results{}, err
	}
	return aggregateReports(reps), nil
}

// runRefresh rewrites a committed baseline from fresh measurements in
// one step, so "refresh the baseline" is a single command instead of a
// hand-merge of three artifacts. The server section of the existing
// baseline is preserved verbatim: those values are committed budgets.
// reportPath may name several comma-separated report files; their stage
// times fold to the slowest sample, the same conservative-ceiling rule
// the bench parser applies — counters and memo rates are deterministic
// across samples, so only the wall times differ.
func runRefresh(basePath, benchTxt, reportPath string) error {
	if benchTxt == "" || reportPath == "" {
		return fmt.Errorf("-refresh needs both -parse bench.txt and -from-report report.jsonl")
	}
	old, err := readResults(basePath)
	if err != nil {
		return err
	}
	bench, err := parseBenchFile(benchTxt)
	if err != nil {
		return err
	}
	var rep Results
	for i, path := range strings.Split(reportPath, ",") {
		sample, err := reportResults(path)
		if err != nil {
			return err
		}
		if i == 0 {
			rep = sample
			continue
		}
		for name, v := range sample.StageNs {
			if v > rep.StageNs[name] {
				rep.StageNs[name] = v
			}
		}
	}
	merged := Results{
		NsPerOp:     bench.NsPerOp,
		StageNs:     rep.StageNs,
		MemoHitRate: rep.MemoHitRate,
		Counters:    rep.Counters,
		Server:      old.Server,
	}
	if err := writeResults(merged, basePath); err != nil {
		return err
	}
	fmt.Printf("refreshed %s (%d ns/op, %d stage, %d memo, %d counter entries; server section kept)\n",
		basePath, len(merged.NsPerOp), len(merged.StageNs), len(merged.MemoHitRate), len(merged.Counters))
	return nil
}

// loadReport is the slice of the cmd/casaload report schema the server
// gate consumes.
type loadReport struct {
	Requests        int                `json:"requests"`
	P99Ms           float64            `json:"p99_ms"`
	HTTP5xx         int                `json:"http_5xx"`
	Errors          int                `json:"errors"`
	ChaosRequests   int                `json:"chaos_requests"`
	ChaosUnexpected int                `json:"chaos_unexpected"`
	ServerMetrics   map[string]float64 `json:"server_metrics"`
}

// runFromLoad converts a casaload JSON report into a results file whose
// server section is compared against the committed ceilings (and _min
// floors) in the baseline.
func runFromLoad(in, out string, chaos bool) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	var rep loadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", in, err)
	}
	if rep.Requests == 0 {
		return fmt.Errorf("%s: report covers zero requests", in)
	}
	res := Results{Server: map[string]float64{
		"p99_ms":   rep.P99Ms,
		"http_5xx": float64(rep.HTTP5xx),
		"errors":   float64(rep.Errors),
		// Telemetry health rides the same gate: a smoke run that traced
		// nothing (sampling silently off) fails the floor, and dropped
		// must-keep traces mean the retention ring is undersized for the
		// failure volume — both regressions in observability, not load.
		"traced_requests_min": rep.ServerMetrics["casa_server_traced_requests_total"],
		"trace_store_drops":   rep.ServerMetrics["casa_server_trace_store_drops_total"],
	}}
	if chaos {
		if rep.ChaosRequests == 0 {
			return fmt.Errorf("%s: -chaos conversion of a report with zero chaos requests (was casaload run with -chaos?)", in)
		}
		// The chaos floors make an inert chaos run a red build: a run
		// that expired no deadlines, rejected no oversized bodies or
		// injected none of the daemon's scheduled faults proves the
		// chaos machinery is disconnected, not that the server is
		// robust. chaos_unexpected is a ceiling: any chaos request
		// answered outside its expected status set fails.
		res.Server["chaos_deadline_exceeded_min"] = rep.ServerMetrics["casa_server_deadline_exceeded_total"]
		res.Server["chaos_body_too_large_min"] = rep.ServerMetrics["casa_server_body_too_large_total"]
		res.Server["chaos_injected_min"] = rep.ServerMetrics["casa_faults_injected_total"]
		res.Server["chaos_unexpected"] = float64(rep.ChaosUnexpected)
	}
	return writeResults(res, out)
}

// runValidate checks an artifact parses: results JSON strictly, and
// everything else as a Prometheus text exposition — the fail-fast check
// scripts/bench.sh and the CI loadtest job run before trusting a file
// to gate anything.
func runValidate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if first := firstNonSpace(data); first != '{' {
		if err := promexport.Lint(bytes.NewReader(data)); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: ok (valid Prometheus text exposition)\n", path)
		return nil
	}
	res, err := readResults(path)
	if err != nil {
		return err
	}
	n := len(res.NsPerOp) + len(res.StageNs) + len(res.MemoHitRate) + len(res.Counters) + len(res.Server)
	if n == 0 {
		return fmt.Errorf("%s: no entries in any known section", path)
	}
	fmt.Printf("%s: ok (%d ns/op, %d stage, %d memo, %d counter, %d server entries)\n",
		path, len(res.NsPerOp), len(res.StageNs), len(res.MemoHitRate), len(res.Counters), len(res.Server))
	return nil
}

func firstNonSpace(data []byte) byte {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b
	}
	return 0
}

// checkDegraded fails the gate when any report carries degraded cells or
// the degraded/panic counters moved: a CI run must solve every cell to
// proven optimality, so a budget expiry or recovered panic sneaking into
// the benchmark lane would silently compare apples to incumbents.
func checkDegraded(reps []*obs.Report) error {
	var msgs []string
	for _, rep := range reps {
		for _, dc := range rep.DegradedCells {
			msgs = append(msgs, fmt.Sprintf("%s round %d cell %d: %s (gap %.4g, fallback %v)",
				rep.Study, rep.Round, dc.Index, dc.Reason, dc.Gap, dc.Fallback))
		}
		for _, name := range []string{"casa_solve_degraded_total", "casa_cell_panics_total", "casa_fallback_greedy_total"} {
			if v := rep.Metrics[name]; v > 0 && len(rep.DegradedCells) == 0 {
				msgs = append(msgs, fmt.Sprintf("%s round %d: %s = %g", rep.Study, rep.Round, name, v))
			}
		}
	}
	if len(msgs) > 0 {
		return fmt.Errorf("report contains degraded results; refusing to gate on them:\n  %s",
			strings.Join(msgs, "\n  "))
	}
	return nil
}

// aggregateReports folds a report stream into gateable scalars: summed
// span time per stage name and the overall hit rate of every memo layer.
func aggregateReports(reps []*obs.Report) Results {
	res := Results{
		StageNs:     make(map[string]float64),
		MemoHitRate: make(map[string]float64),
		Counters:    make(map[string]float64),
	}
	metrics := make(map[string]float64)
	for _, rep := range reps {
		for _, root := range rep.Spans {
			root.Walk(func(s *obs.Span) {
				res.StageNs[s.Name] += float64(s.DurNS)
			})
		}
		for name, v := range rep.Metrics {
			metrics[name] += v
		}
	}
	const hitSuffix, missSuffix = "_hits_total", "_misses_total"
	for name, hits := range metrics {
		if !strings.HasSuffix(name, hitSuffix) {
			continue
		}
		layer := strings.TrimSuffix(name, hitSuffix)
		misses := metrics[layer+missSuffix]
		if hits+misses > 0 {
			res.MemoHitRate[layer] = 100 * hits / (hits + misses)
		}
	}
	// Record every gated counter even when the report never incremented
	// it: an explicit zero in the baseline is what lets the gate catch
	// the counter reappearing (e.g. dense fallbacks coming back).
	for _, name := range counterGates {
		res.Counters[name] = metrics[name]
	}
	for _, name := range counterFloors {
		res.Counters[name] = metrics[name]
	}
	return res
}

// parseBenchLine extracts (name, ns/op) from a `go test -bench` result
// line such as
//
//	BenchmarkFig4CASAvsSteinke-8   1   3990000000 ns/op
func parseBenchLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	// ns/op is always the value immediately before the "ns/op" unit.
	for i := 2; i < len(fields); i++ {
		if fields[i] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			return "", 0, false
		}
		name := fields[0]
		if dash := strings.LastIndex(name, "-"); dash > 0 {
			if _, err := strconv.Atoi(name[dash+1:]); err == nil {
				name = name[:dash]
			}
		}
		return name, ns, true
	}
	return "", 0, false
}

// readResults parses a results file strictly: an unknown top-level
// section is an error with the known-section list, not silently-ignored
// JSON — a typo'd or future-format baseline must fail here with a clear
// message rather than as a gate that never fires (or a nil-map panic
// downstream).
func readResults(path string) (Results, error) {
	var res Results
	data, err := os.ReadFile(path)
	if err != nil {
		return res, fmt.Errorf("results file: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&res); err != nil {
		return res, fmt.Errorf("%s: %v (known sections: ns_per_op, stage_ns, memo_hit_rate, counters, server)", path, err)
	}
	return res, nil
}

func runCompare(basePath, curPath string, threshold, stageThreshold, hitDrop, counterThreshold float64) error {
	base, err := readResults(basePath)
	if err != nil {
		return err
	}
	cur, err := readResults(curPath)
	if err != nil {
		return err
	}

	regressed := 0
	regressed += compareSection("ns/op", base.NsPerOp, cur.NsPerOp,
		func(b, c float64) (float64, bool) {
			delta := 100 * (c - b) / b
			return delta, delta > threshold
		}, "%+.1f%%")
	regressed += compareSection("stage ns", base.StageNs, cur.StageNs,
		func(b, c float64) (float64, bool) {
			delta := 100 * (c - b) / b
			return delta, b >= stageFloorNS && delta > stageThreshold
		}, "%+.1f%%")
	regressed += compareSection("memo hit %", base.MemoHitRate, cur.MemoHitRate,
		func(b, c float64) (float64, bool) {
			drop := b - c
			return -drop, drop > hitDrop
		}, "%+.1fpp")
	baseCtr, baseCtrFloor := splitCounterSection(base.Counters)
	curCtr, curCtrFloor := splitCounterSection(cur.Counters)
	regressed += compareSection("counter", baseCtr, curCtr,
		func(b, c float64) (float64, bool) {
			// A zero baseline (e.g. no dense fallbacks) compares against 1
			// so any reappearance still registers as growth.
			delta := 100 * (c - b) / math.Max(b, 1)
			return delta, delta > counterThreshold
		}, "%+.1f%%")
	regressed += compareSection("counter min", baseCtrFloor, curCtrFloor,
		func(b, c float64) (float64, bool) {
			// Floor counters prove the incremental machinery engaged; any
			// shortfall vs the deterministic baseline fails (a cold grid —
			// zero warm hits — is a red build, not a slow green one).
			return c - b, c < b
		}, "%+.0f")
	baseCeil, baseFloor := splitServerSection(base.Server)
	curCeil, curFloor := splitServerSection(cur.Server)
	regressed += compareSection("server", baseCeil, curCeil,
		func(b, c float64) (float64, bool) {
			// Baseline values are committed ceilings: any excess fails,
			// with the headroom (negative = under budget) as the delta.
			return c - b, c > b
		}, "%+.1f")
	regressed += compareSection("server min", baseFloor, curFloor,
		func(b, c float64) (float64, bool) {
			// _min names are committed floors: falling short fails, with
			// the margin (positive = above the floor) as the delta.
			return c - b, c < b
		}, "%+.1f")

	if regressed > 0 {
		return fmt.Errorf("%d entr(ies) regressed beyond thresholds (ns/op %.0f%%, stage %.0f%%, hit drop %.0fpp, counters %.0f%%) vs %s",
			regressed, threshold, stageThreshold, hitDrop, counterThreshold, basePath)
	}
	fmt.Printf("no regressions beyond thresholds (ns/op %.0f%%, stage %.0f%%, hit drop %.0fpp, counters %.0f%%)\n",
		threshold, stageThreshold, hitDrop, counterThreshold)
	return nil
}

// splitCounterSection partitions a counters map into growth-gated
// entries and floor-gated entries (the counterFloors set). Counters in
// neither list — from a future or hand-edited baseline — gate as
// growth-limited, the conservative default.
func splitCounterSection(m map[string]float64) (ceil, floor map[string]float64) {
	ceil = make(map[string]float64, len(m))
	floor = make(map[string]float64)
	floors := make(map[string]bool, len(counterFloors))
	for _, name := range counterFloors {
		floors[name] = true
	}
	for name, v := range m {
		if floors[name] {
			floor[name] = v
		} else {
			ceil[name] = v
		}
	}
	return ceil, floor
}

// splitServerSection partitions a server map into ceiling-gated entries
// and floor-gated entries (names ending in _min).
func splitServerSection(m map[string]float64) (ceil, floor map[string]float64) {
	ceil = make(map[string]float64, len(m))
	floor = make(map[string]float64)
	for name, v := range m {
		if strings.HasSuffix(name, "_min") {
			floor[name] = v
		} else {
			ceil[name] = v
		}
	}
	return ceil, floor
}

// compareSection diffs one named map pair and returns the number of
// regressions. A section empty on either side is skipped entirely, so
// bench-only and report-only results files interoperate.
func compareSection(section string, base, cur map[string]float64,
	judge func(b, c float64) (delta float64, bad bool), deltaFmt string) int {
	if len(base) == 0 || len(cur) == 0 {
		return 0
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := 0
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("?  [%-10s] %-36s missing from current run\n", section, name)
			continue
		}
		delta, bad := judge(b, c)
		mark := "ok"
		if bad {
			mark = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-9s [%-10s] %-36s %14.0f → %14.0f  ("+deltaFmt+")\n",
			mark, section, name, b, c, delta)
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("+  [%-10s] %-36s new entry (no baseline)\n", section, name)
		}
	}
	return regressed
}
