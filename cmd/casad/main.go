// Command casad is the CASA allocation daemon: it serves scratchpad
// allocations over HTTP (POST /v1/allocate, program + hierarchy as
// JSON) with a sharded result cache, singleflight request coalescing
// and load-adaptive solve budgets. See DESIGN.md §11 and the README
// quickstart for the request schema.
//
// Usage:
//
//	casad [-addr :8344] [-max-inflight N] [-exact-budget 5s]
//	      [-bounded-budget 150ms] [-cache-entries 4096] [-trace]
//	      [-log-level info] [-trace-sample 1.0] [-version]
//	      [-mem-soft-limit 0] [-snapshot path] [-snapshot-every 30s]
//
// Clients can cap how long they wait with an X-Deadline-Ms header (the
// solve budget and pipeline are clamped to it; expiry is a clean 504).
// -mem-soft-limit arms the memory-pressure watchdog, -snapshot makes
// warm state survive restarts — DESIGN.md §14 covers both.
//
// SIGINT/SIGTERM (or POST /quitquitquit) drain gracefully: in-flight
// solves finish, new requests get 503.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/slogx"
	"repro/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8344", "listen address")
		maxInflight   = flag.Int("max-inflight", 0, "hard cap on concurrent solves (0 = 4×GOMAXPROCS)")
		exactBudget   = flag.Duration("exact-budget", 0, "solve budget at low load (0 = 5s default)")
		boundedBudget = flag.Duration("bounded-budget", 0, "solve budget under pressure (0 = 150ms default)")
		cacheEntries  = flag.Int("cache-entries", 0, "result-cache capacity (0 = 4096 default)")
		drainTimeout  = flag.Duration("drain-timeout", 0, "graceful-shutdown bound (0 = 30s default)")
		memSoftLimit  = flag.Uint64("mem-soft-limit", 0, "heap soft limit in bytes arming the memory-pressure watchdog (0 = off)")
		snapshotPath  = flag.String("snapshot", "", "warm-state snapshot file: restored on boot, saved periodically and on drain (empty = off)")
		snapshotEvery = flag.Duration("snapshot-every", 0, "periodic snapshot interval (0 = 30s default)")
		logLevel      = flag.String("log-level", "info", "structured-log level: debug, info, warn, error or off")
		traceSample   = flag.Float64("trace-sample", -1,
			fmt.Sprintf("request-trace sampling rate in [0,1]; 0 disables tracing, negative defers to %s (default: trace everything)", server.EnvTraceSample))
		versionFlag = flag.Bool("version", false, "print build information and exit")
		traceFlag   = flag.Bool("trace", false,
			fmt.Sprintf("log server progress to stderr (same as %s=1)", obs.EnvTrace))
	)
	flag.Parse()
	if *versionFlag {
		revision, goVersion := server.BuildInfo()
		fmt.Printf("casad %s (%s)\n", revision, goVersion)
		return
	}
	if *traceFlag {
		obs.EnableTrace(os.Stderr)
	}
	logger, err := slogx.Setup(os.Stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casad:", err)
		os.Exit(2)
	}

	cfg := server.Config{
		MaxInflight:       *maxInflight,
		ExactBudget:       *exactBudget,
		BoundedBudget:     *boundedBudget,
		CacheEntries:      *cacheEntries,
		DrainTimeout:      *drainTimeout,
		MemSoftLimitBytes: *memSoftLimit,
		SnapshotPath:      *snapshotPath,
		SnapshotEvery:     *snapshotEvery,
		Logger:            logger,
		TraceSample:       traceSampleConfig(*traceSample),
	}
	if err := serve(cfg, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "casad:", err)
		os.Exit(1)
	}
}

// traceSampleConfig maps the flag convention (negative = unset, 0 =
// off) onto the Config convention (0 = unset, negative = off).
func traceSampleConfig(flagVal float64) float64 {
	switch {
	case flagVal < 0:
		return 0
	case flagVal == 0:
		return -1
	default:
		return flagVal
	}
}

// serve runs the daemon until an error or a clean drain.
func serve(cfg server.Config, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveListener(cfg, l)
}

// serveListener is serve on an existing listener, split out so tests can
// drive the daemon on an ephemeral port they know the address of.
func serveListener(cfg server.Config, l net.Listener) error {
	s := server.New(cfg)
	fmt.Fprintf(os.Stderr, "casad: listening on %s (%s)\n", l.Addr(), s)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "casad: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "casad: shutdown:", err)
		}
	}()

	err := s.Serve(l)
	obs.MaybeDumpMetrics(os.Stderr)
	return err
}
