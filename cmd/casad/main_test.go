package main

import (
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestServeLifecycle boots the daemon on an ephemeral port, allocates
// through it, and drains it via /quitquitquit — the same lifecycle the
// CI loadtest job drives from the outside.
func TestServeLifecycle(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String()
	done := make(chan error, 1)
	go func() {
		done <- serveListener(server.Config{MaxInflight: 4, DrainTimeout: 10 * time.Second}, l)
	}()

	// The listener is already bound, so requests cannot race the boot.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var hs struct {
		Status      string `json:"status"`
		MaxInflight int    `json:"max_inflight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hs.Status != "ok" || hs.MaxInflight != 4 {
		t.Fatalf("healthz = %+v, want ok with max_inflight 4", hs)
	}

	resp, err = http.Post(url+"/v1/allocate", "application/json",
		strings.NewReader(`{"workload":"adpcm","hierarchy":{"cache_bytes":1024,"spm_bytes":128}}`))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Allocator    string  `json:"allocator"`
		EnergyMicroJ float64 `json:"energy_uj"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || out.Allocator != "casa" || out.EnergyMicroJ <= 0 {
		t.Fatalf("allocate: HTTP %d %+v", resp.StatusCode, out)
	}

	resp, err = http.Post(url+"/quitquitquit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after /quitquitquit")
	}
}

func TestServeBadAddress(t *testing.T) {
	if err := serve(server.Config{}, "256.256.256.256:1"); err == nil {
		t.Fatal("serve on a nonsense address did not fail")
	}
}

func TestTraceSampleConfig(t *testing.T) {
	cases := []struct{ flag, want float64 }{
		{-1, 0},    // flag unset → Config unset (env decides)
		{0, -1},    // flag 0 → explicit off
		{0.5, 0.5}, // passthrough
	}
	for _, tc := range cases {
		if got := traceSampleConfig(tc.flag); got != tc.want {
			t.Fatalf("traceSampleConfig(%g) = %g, want %g", tc.flag, got, tc.want)
		}
	}
}
