package main

import (
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/server"
)

// TestInterleaveChaosSchedule: -chaos weaves every attack class into
// the schedule several times without disturbing the healthy jobs.
func TestInterleaveChaosSchedule(t *testing.T) {
	opts := options{n: 100, c: 8, burst: 4, seed: 7,
		mix: "cold:1", workloads: "adpcm", chaos: true, chaosEvery: 10}
	base, err := buildJobs(opts)
	if err != nil {
		t.Fatal(err)
	}
	jobs := interleaveChaos(base, opts)
	if len(jobs) != len(base)+10 {
		t.Fatalf("%d jobs after interleave, want %d", len(jobs), len(base)+10)
	}
	counts := map[string]int{}
	healthy := 0
	for _, j := range jobs {
		if !chaosClass(j.class) {
			healthy++
			continue
		}
		counts[j.class]++
		switch j.class {
		case classChaosStall, classChaosHangup:
			if !j.raw {
				t.Fatalf("%s not routed through the raw-connection path", j.class)
			}
		case classChaosFlood:
			if j.wantCode != 400 {
				t.Fatalf("flood wantCode = %d", j.wantCode)
			}
		case classChaosOversized:
			if j.wantCode != 413 {
				t.Fatalf("oversized wantCode = %d", j.wantCode)
			}
		case classChaosDeadline:
			if j.wantCode != 504 || j.deadlineMS <= 0 {
				t.Fatalf("deadline job = %+v", j)
			}
		}
	}
	if healthy != len(base) {
		t.Fatalf("interleave disturbed healthy jobs: %d, want %d", healthy, len(base))
	}
	for _, cl := range []string{classChaosStall, classChaosHangup, classChaosFlood, classChaosOversized, classChaosDeadline} {
		if counts[cl] < 2 {
			t.Fatalf("class %s scheduled %d times, want ≥ 2: %v", cl, counts[cl], counts)
		}
	}
	// Off switch: no chaos, schedule untouched.
	opts.chaos = false
	if got := interleaveChaos(base, opts); len(got) != len(base) {
		t.Fatalf("chaos off still interleaved: %d jobs", len(got))
	}
}

// TestChaosRunAgainstServer drives a real in-process casad with the
// full hostile mix: every chaos class must land its expected answer
// (413s, 400s, immediate 504s, raw-connection survivals) while the
// healthy traffic stays clean — zero unexpected chaos outcomes, zero
// healthy errors.
func TestChaosRunAgainstServer(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{MaxInflight: 8}).Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "chaos_report.json")
	opts := options{
		addr:       ts.URL,
		n:          100,
		c:          8,
		burst:      4,
		seed:       3,
		mix:        "cold:2,warm:5,dup:3",
		workloads:  "adpcm,g721",
		chaos:      true,
		chaosEvery: 10,
		out:        out,
		timeout:    60 * time.Second,
	}
	rep, err := run(opts)
	if err != nil {
		t.Fatalf("chaos run: %v (report %+v)", err, rep)
	}
	if rep.ChaosRequests != 10 {
		t.Fatalf("ChaosRequests = %d, want 10", rep.ChaosRequests)
	}
	if rep.ChaosUnexpected != 0 {
		t.Fatalf("ChaosUnexpected = %d: %+v", rep.ChaosUnexpected, rep)
	}
	if rep.Errors != 0 || rep.NetErrors != 0 {
		t.Fatalf("healthy traffic took errors under chaos: %+v", rep)
	}
	if rep.Status["413"] == 0 {
		t.Fatal("oversized chaos produced no 413s")
	}
	if rep.Status["504"] == 0 {
		t.Fatal("deadline chaos produced no 504s")
	}
	if rep.Status["400"] == 0 {
		t.Fatal("flood chaos produced no 400s")
	}
	// Expected chaos 5xx (the 504s) must not count against the healthy
	// 5xx budget.
	if rep.HTTP5xx != 0 {
		t.Fatalf("expected chaos answers leaked into HTTP5xx: %d", rep.HTTP5xx)
	}
	// The deadline metric moved server-side.
	if rep.ServerMetrics["casa_server_deadline_exceeded_total"] < 2 {
		t.Fatalf("server deadline counter = %v", rep.ServerMetrics["casa_server_deadline_exceeded_total"])
	}
	if rep.ServerMetrics["casa_server_body_too_large_total"] < 2 {
		t.Fatalf("server 413 counter = %v", rep.ServerMetrics["casa_server_body_too_large_total"])
	}
}
