// Chaos mode (-chaos): interleave hostile traffic into the healthy
// schedule and assert the server shrugs it off. Five client-side attack
// shapes cycle through the schedule:
//
//	chaos-stall      a raw connection that sends half its body, idles,
//	                 then vanishes (slow-loris upload)
//	chaos-hangup     a raw connection that closes mid-response
//	chaos-flood      malformed JSON — must 400, never 5xx
//	chaos-oversized  a body beyond the server's MaxBytesReader cap —
//	                 must answer a structured 413, never buffer it
//	chaos-deadline   a healthy request with X-Deadline-Ms: 1 — must
//	                 answer a clean 504 within the deadline
//
// Chaos samples are excluded from the healthy latency percentiles (the
// p99 the CI gate holds against the committed ceiling is measured on
// well-behaved traffic sharing the server with the attack), and a chaos
// request answering anything outside its expected set is counted in
// chaos_unexpected — the run fails if any appear. Server-side fault
// points (server-stall-read, server-conn-reset, server-slow-client) are
// armed on the daemon via CASA_FAULTS; their accounting rides the
// report's fault-injection counter delta so the CI floor can prove the
// chaos run actually injected chaos.
package main

import (
	"fmt"
	"io"
	"net"
	"net/url"
	"strings"
	"time"
)

// Chaos request classes.
const (
	classChaosStall     = "chaos-stall"
	classChaosHangup    = "chaos-hangup"
	classChaosFlood     = "chaos-flood"
	classChaosOversized = "chaos-oversized"
	classChaosDeadline  = "chaos-deadline"
)

// chaosClass reports whether a sample class is chaos traffic (excluded
// from healthy percentiles, gated on expectations instead).
func chaosClass(class string) bool { return strings.HasPrefix(class, "chaos-") }

// stallHold is how long a chaos-stall connection idles on its
// half-sent body before abandoning it.
const stallHold = 300 * time.Millisecond

// interleaveChaos inserts one chaos job every opts.chaosEvery positions,
// cycling the five classes so every attack shape lands several times in
// a CI-sized run.
func interleaveChaos(jobs []job, opts options) []job {
	if !opts.chaos || opts.chaosEvery < 1 {
		return jobs
	}
	classes := []string{classChaosStall, classChaosHangup, classChaosFlood, classChaosOversized, classChaosDeadline}
	// An oversized body: a program larger than the server's whole-body
	// cap (default MaxProgramBytes 256 KiB + 64 KiB envelope headroom).
	// No raw newlines — the JSON string must stay syntactically valid
	// past the cap so it is the size guard that answers, not the parser.
	hugeProgram := strings.Repeat("; padding line ", (400<<10)/15)
	out := make([]job, 0, len(jobs)+len(jobs)/opts.chaosEvery+1)
	next := 0
	for i, j := range jobs {
		if i%opts.chaosEvery == 0 {
			cl := classes[next%len(classes)]
			next++
			switch cl {
			case classChaosStall, classChaosHangup:
				out = append(out, job{class: cl, raw: true, body: makeBody("adpcm", 2048, 128)})
			case classChaosFlood:
				out = append(out, job{class: cl, body: []byte(`{"workload":"adpcm","hierarchy":{`), wantCode: 400})
			case classChaosOversized:
				body := []byte(`{"program":"` + hugeProgram + `","hierarchy":{"cache_bytes":2048,"spm_bytes":256}}`)
				out = append(out, job{class: cl, body: body, wantCode: 413})
			case classChaosDeadline:
				// Unique keys (spm ≡ 4 mod 16, disjoint from the cold and
				// dup streams) so no cache hit can answer inside the
				// deadline; 1ms is below the server's deadline margin, so
				// the 504 is immediate and deterministic.
				body := makeBody("adpcm", 2048, 68+16*next)
				out = append(out, job{class: cl, body: body, wantCode: 504, deadlineMS: 1})
			}
		}
		out = append(out, j)
	}
	return out
}

// chaosFire runs the raw-connection attack shapes that http.Client
// cannot express: a half-sent stalled body, and a hangup mid-response.
// Both are expected to produce no usable response — their success
// criterion is that the server survives them, which the healthy
// percentiles and 5xx gates measure.
func chaosFire(opts options, j job, id string) sample {
	s := sample{class: j.class, id: id, expected: true}
	host, err := rawHost(opts.addr)
	if err != nil {
		s.err = err
		s.expected = false
		return s
	}
	t0 := time.Now()
	conn, err := net.DialTimeout("tcp", host, 5*time.Second)
	if err != nil {
		s.err = err
		s.expected = false
		return s
	}
	defer conn.Close()
	head := fmt.Sprintf("POST /v1/allocate HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nX-Request-Id: %s\r\nContent-Length: %d\r\n\r\n",
		host, id, len(j.body))
	switch j.class {
	case classChaosStall:
		// Half the body, a pause, then gone — the server must time the
		// read out or see the abort, never hold the goroutine.
		if _, err := io.WriteString(conn, head); err == nil {
			_, _ = conn.Write(j.body[:len(j.body)/2])
		}
		time.Sleep(stallHold)
	case classChaosHangup:
		// Full request, then close as the response starts arriving.
		if _, err := io.WriteString(conn, head); err == nil {
			_, _ = conn.Write(j.body)
		}
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		var one [1]byte
		_, _ = conn.Read(one[:])
	}
	s.dur = time.Since(t0)
	return s
}

// rawHost extracts the host:port a raw TCP chaos connection dials.
func rawHost(addr string) (string, error) {
	u, err := url.Parse(addr)
	if err != nil {
		return "", fmt.Errorf("chaos: bad addr %q: %w", addr, err)
	}
	host := u.Host
	if host == "" {
		return "", fmt.Errorf("chaos: no host in addr %q", addr)
	}
	if u.Port() == "" {
		host += ":80"
	}
	return host, nil
}
