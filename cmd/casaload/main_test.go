package main

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestParseMix(t *testing.T) {
	w, err := parseMix("cold:2,warm:5,dup:2,oversized:1")
	if err != nil {
		t.Fatal(err)
	}
	if w[classCold] != 2 || w[classWarm] != 5 || w[classDup] != 2 || w[classOversized] != 1 {
		t.Fatalf("weights = %v", w)
	}
	if _, err := parseMix("cold:2,hot:1"); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := parseMix("cold:-1"); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := parseMix(""); err == nil {
		t.Fatal("empty mix accepted")
	}
}

func TestBuildJobsSchedule(t *testing.T) {
	opts := options{n: 200, c: 8, burst: 4, seed: 7,
		mix: "cold:2,warm:5,dup:2,oversized:1", workloads: "adpcm,g721"}
	jobs, err := buildJobs(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("%d jobs, want 200", len(jobs))
	}
	counts := map[string]int{}
	coldKeys := map[string]bool{}
	for _, j := range jobs {
		counts[j.class]++
		if j.class == classCold {
			if coldKeys[string(j.body)] {
				t.Fatalf("duplicate cold body: %s", j.body)
			}
			coldKeys[string(j.body)] = true
		}
		if (j.class == classOversized) != (j.wantCode == 400) {
			t.Fatalf("class %s with wantCode %d", j.class, j.wantCode)
		}
	}
	for _, cl := range []string{classCold, classWarm, classDup, classOversized} {
		if counts[cl] == 0 {
			t.Fatalf("class %s never scheduled: %v", cl, counts)
		}
	}
	// Dup jobs arrive in adjacent runs of identical bodies.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].class == classDup && jobs[i-1].class == classDup &&
			string(jobs[i].body) == string(jobs[i-1].body) {
			return
		}
	}
	t.Fatal("no adjacent identical dup pair in the schedule")
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(sorted, 0.50); p != 5 {
		t.Fatalf("p50 = %g", p)
	}
	if p := percentile(sorted, 0.99); p != 10 {
		t.Fatalf("p99 = %g", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %g", p)
	}
}

// TestRunAgainstServer is the end-to-end smoke in miniature: casaload's
// run() drives a real in-process casad handler with all four traffic
// classes and must observe coalescing, caching and zero unexpected
// statuses.
func TestRunAgainstServer(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{MaxInflight: 8}).Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "report.json")
	opts := options{
		addr:              ts.URL,
		n:                 120,
		c:                 8,
		burst:             6,
		seed:              1,
		mix:               "cold:2,warm:5,dup:3,oversized:1",
		workloads:         "adpcm,g721",
		out:               out,
		requireCoalescing: true,
		timeout:           60 * time.Second,
	}
	rep, err := run(opts)
	if err != nil {
		t.Fatalf("run: %v (report %+v)", err, rep)
	}
	if err := rep.write(out); err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 120 || rep.Errors != 0 || rep.HTTP5xx != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.SingleflightHits == 0 && rep.Coalesced == 0 {
		t.Fatal("dup bursts produced no coalescing at all")
	}
	if rep.Cached == 0 {
		t.Fatal("warm repeats produced no cache hits")
	}
	if rep.Status["400"] == 0 {
		t.Fatal("oversized requests produced no 400s")
	}
	if rep.ByClass[classOversized].Errors != 0 {
		t.Fatal("expected 400s were counted as errors")
	}
	if rep.P99Ms < rep.P50Ms || rep.MaxMs < rep.P99Ms {
		t.Fatalf("inconsistent percentiles: %+v", rep)
	}
	// Outcome-class percentiles: warm repeats hit, colds solve, dup
	// bursts coalesce, oversized requests are invalid.
	for _, oc := range []string{"hit", "cold", "coalesced", "invalid"} {
		cs := rep.ByOutcome[oc]
		if cs == nil || cs.Count == 0 {
			t.Fatalf("outcome %q absent from report: %v", oc, rep.ByOutcome)
		}
	}
	if hit, cold := rep.ByOutcome["hit"], rep.ByOutcome["cold"]; hit.P50Ms > cold.P50Ms {
		t.Fatalf("cache hits slower than cold solves: hit p50 %.2fms, cold p50 %.2fms",
			hit.P50Ms, cold.P50Ms)
	}
	if len(rep.FailedIDs) != 0 {
		t.Fatalf("clean run reported failed IDs: %v", rep.FailedIDs)
	}
}

// TestFailedIDsNameRetryableTraces: when requests fail, the report lists
// the generated X-Request-Ids so operators can pull the matching traces.
func TestFailedIDsNameRetryableTraces(t *testing.T) {
	s := server.New(server.Config{MaxInflight: 8})
	ts := httptest.NewServer(s.Handler())
	// Shut the server down so every request is refused with 503.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	opts := options{addr: ts.URL, n: 6, c: 2, burst: 1,
		mix: "warm:1", workloads: "adpcm", timeout: 5 * time.Second}
	rep, err := run(opts)
	if err == nil {
		t.Fatal("all-503 run reported success")
	}
	if len(rep.FailedIDs) == 0 {
		t.Fatalf("failed run listed no request IDs: %+v", rep)
	}
	for _, id := range rep.FailedIDs {
		if !strings.HasPrefix(id, "load-0-") {
			t.Fatalf("failed ID %q not in load-<seed>-<seq> form", id)
		}
	}
	// The same schedule with -allow-shed treats the 503s as expected
	// (the 5xx budget must still cover them).
	opts.allowShed = true
	opts.max5xx = 100
	if rep2, err := run(opts); err != nil {
		t.Fatalf("allow-shed run failed: %v (%+v)", err, rep2)
	} else if rep2.ByOutcome["shed"] == nil || rep2.ByOutcome["shed"].Count != 6 {
		t.Fatalf("shed outcomes not classified: %+v", rep2.ByOutcome)
	}
}

// TestRunFailsOnRefusedServer: a dead address is a startup error, not a
// zero-request "success".
func TestRunFailsOnRefusedServer(t *testing.T) {
	opts := options{addr: "http://127.0.0.1:1", n: 4, c: 1, burst: 1,
		mix: "cold:1", workloads: "adpcm", timeout: 2 * time.Second}
	if _, err := run(opts); err == nil {
		t.Fatal("run against a refused port succeeded")
	}
}
