// Command casaload drives mixed concurrent traffic against a casad
// instance and reports latency percentiles — the artifact the CI
// loadtest gate consumes (benchdiff -from-load).
//
// The mix mimics production traffic shapes:
//
//	cold       unique configurations: full pipeline + solve
//	warm       a small popular set: result-cache hits after first touch
//	dup        bursts of identical concurrent requests: singleflight food
//	oversized  invalid requests: must 400, never 5xx
//
// Usage:
//
//	casaload -addr http://127.0.0.1:8344 -n 2000 -c 32 \
//	         [-mix cold:2,warm:5,dup:2,oversized:1] [-burst 8] \
//	         [-o load_report.json] [-require-coalescing] [-max-5xx 0] \
//	         [-allow-shed] [-chaos] [-chaos-every 25] [-max-net-errors 0] \
//	         [-log-level off]
//
// Exit status is non-zero when transport errors or unexpected statuses
// occurred, when 5xx responses exceed -max-5xx, or when
// -require-coalescing is set and the server's singleflight hit counter
// did not move — so the CI smoke fails on any 5xx and on a server that
// stopped coalescing duplicates. With -allow-shed, 503s are part of the
// experiment (forced-overload runs) and don't count as unexpected.
//
// -chaos interleaves hostile traffic (stalled uploads, mid-response
// hangups, malformed floods, oversized bodies, 1ms deadlines — see
// chaos.go) into the healthy schedule; the healthy percentiles exclude
// the chaos samples and any chaos request answered outside its expected
// status set fails the run. -max-net-errors tolerates that many
// transport-level failures on healthy requests — the allowance for
// server-side connection-reset faults armed via CASA_FAULTS.
//
// Every request carries a generated X-Request-Id (load-<seed>-<seq>),
// so a failure in the report names the exact server-side traces to pull
// from /debug/traces/{id}.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/slogx"
)

func main() {
	var opts options
	var logLevel string
	flag.StringVar(&opts.addr, "addr", "http://127.0.0.1:8344", "casad base URL")
	flag.IntVar(&opts.n, "n", 2000, "total requests")
	flag.IntVar(&opts.c, "c", 32, "concurrent workers")
	flag.StringVar(&opts.mix, "mix", "cold:2,warm:5,dup:2,oversized:1", "class weights")
	flag.IntVar(&opts.burst, "burst", 8, "identical requests per dup burst")
	flag.StringVar(&opts.workloads, "workloads", "adpcm,g721,mpeg", "workloads to draw from")
	flag.Int64Var(&opts.seed, "seed", 1, "mix-schedule seed")
	flag.StringVar(&opts.out, "o", "", "write the JSON report here")
	flag.BoolVar(&opts.requireCoalescing, "require-coalescing", false,
		"fail unless the server's singleflight hit counter moved")
	flag.IntVar(&opts.max5xx, "max-5xx", 0, "tolerated 5xx responses")
	flag.BoolVar(&opts.allowShed, "allow-shed", false, "treat 503 sheds as expected (overload experiments)")
	flag.BoolVar(&opts.chaos, "chaos", false, "interleave hostile traffic (stalls, hangups, floods, oversized bodies, 1ms deadlines)")
	flag.IntVar(&opts.chaosEvery, "chaos-every", 25, "insert one chaos request every N scheduled jobs")
	flag.IntVar(&opts.maxNetErrors, "max-net-errors", 0, "tolerated transport failures on healthy requests (server-side reset faults)")
	flag.DurationVar(&opts.timeout, "timeout", 60*time.Second, "per-request timeout")
	flag.StringVar(&logLevel, "log-level", "off", "structured-log level: debug, info, warn, error or off")
	flag.Parse()
	if _, err := slogx.Setup(os.Stderr, logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "casaload:", err)
		os.Exit(2)
	}

	rep, err := run(opts)
	if rep != nil {
		rep.print(os.Stdout)
		if opts.out != "" {
			if werr := rep.write(opts.out); werr != nil && err == nil {
				err = werr
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "casaload:", err)
		os.Exit(1)
	}
}

type options struct {
	addr              string
	n, c              int
	mix               string
	burst             int
	workloads         string
	seed              int64
	out               string
	requireCoalescing bool
	max5xx            int
	allowShed         bool
	chaos             bool
	chaosEvery        int
	maxNetErrors      int
	timeout           time.Duration
}

// Request classes.
const (
	classCold      = "cold"
	classWarm      = "warm"
	classDup       = "dup"
	classOversized = "oversized"
)

// job is one request to fire: a prebuilt body and the status class it
// must come back with.
type job struct {
	class    string
	body     []byte
	wantCode int // 0 = any 2xx
	// raw routes the job through chaosFire (a hand-rolled TCP
	// connection) instead of the HTTP client; deadlineMS, when nonzero,
	// is sent as the X-Deadline-Ms header.
	raw        bool
	deadlineMS float64
}

// sample is one completed request.
type sample struct {
	class     string
	id        string // the X-Request-Id sent with the request
	status    int
	dur       time.Duration
	cached    bool
	coalesced bool
	degraded  bool
	err       error
	expected  bool // status matched the job's expectation
}

// outcome classifies the sample the way the server's telemetry does, so
// the per-outcome percentiles in the report line up with the tiers and
// trace outcomes on the casad side.
func (s *sample) outcome() string {
	switch {
	case s.err != nil:
		return "error"
	case s.status == http.StatusServiceUnavailable:
		return "shed"
	case s.status >= 400:
		return "invalid"
	case s.degraded:
		return "degraded"
	case s.cached:
		return "hit"
	case s.coalesced:
		return "coalesced"
	default:
		return "cold"
	}
}

// reqBody mirrors the casad request schema (kept local so the load
// generator exercises the server's wire format, not shared structs).
type reqBody struct {
	Workload  string `json:"workload,omitempty"`
	Program   string `json:"program,omitempty"`
	Hierarchy struct {
		CacheBytes int `json:"cache_bytes"`
		LineBytes  int `json:"line_bytes,omitempty"`
		Assoc      int `json:"assoc,omitempty"`
		SPMBytes   int `json:"spm_bytes"`
	} `json:"hierarchy"`
	Allocator string `json:"allocator,omitempty"`
}

func makeBody(wl string, cacheBytes, spm int) []byte {
	var r reqBody
	r.Workload = wl
	r.Hierarchy.CacheBytes = cacheBytes
	r.Hierarchy.SPMBytes = spm
	b, err := json.Marshal(&r)
	if err != nil {
		panic(err)
	}
	return b
}

// parseMix parses "cold:2,warm:5,..." into weights.
func parseMix(spec string) (map[string]int, error) {
	w := map[string]int{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, val, ok := strings.Cut(clause, ":")
		n := 1
		if ok {
			var err error
			n, err = strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad weight in %q", clause)
			}
		}
		switch name {
		case classCold, classWarm, classDup, classOversized:
			w[name] = n
		default:
			return nil, fmt.Errorf("unknown class %q (cold, warm, dup, oversized)", name)
		}
	}
	if len(w) == 0 {
		return nil, fmt.Errorf("empty mix %q", spec)
	}
	return w, nil
}

// buildJobs lays out the request schedule: n jobs drawn from the
// weighted classes, dup classes expanded into bursts of adjacent
// identical jobs so they are in flight together.
func buildJobs(opts options) ([]job, error) {
	weights, err := parseMix(opts.mix)
	if err != nil {
		return nil, err
	}
	wls := strings.Split(opts.workloads, ",")
	for i := range wls {
		wls[i] = strings.TrimSpace(wls[i])
	}
	caches := []int{512, 1024, 2048, 4096}

	// The warm pool: a small set of popular configurations.
	var warm [][]byte
	for i, wl := range wls {
		warm = append(warm,
			makeBody(wl, caches[(i+1)%len(caches)], 128),
			makeBody(wl, caches[(i+2)%len(caches)], 256))
	}

	// Oversized/invalid variants, cycled.
	invalid := [][]byte{
		makeBody(wls[0], 2048, 4<<20),             // SPM beyond the server limit
		makeBody("no-such-workload", 2048, 256),   // unknown workload
		makeBody(wls[0], 3000, 256),               // cache size not a power of two
		[]byte(`{"hierarchy":{"spm_bytes":256}}`), // no program at all
	}

	classes := make([]string, 0, 4)
	var total int
	for _, cl := range []string{classCold, classWarm, classDup, classOversized} {
		if weights[cl] > 0 {
			classes = append(classes, cl)
			total += weights[cl]
		}
	}
	rng := rand.New(rand.NewSource(opts.seed))
	jobs := make([]job, 0, opts.n)
	cold, dup, bad := 0, 0, 0
	for len(jobs) < opts.n {
		pick := rng.Intn(total)
		var cl string
		for _, c := range classes {
			if pick < weights[c] {
				cl = c
				break
			}
			pick -= weights[c]
		}
		switch cl {
		case classCold:
			// Strictly increasing SPM sizes keep every cold key unique.
			body := makeBody(wls[cold%len(wls)], caches[(cold/len(wls))%len(caches)], 64+16*cold)
			jobs = append(jobs, job{class: classCold, body: body})
			cold++
		case classWarm:
			jobs = append(jobs, job{class: classWarm, body: warm[rng.Intn(len(warm))]})
		case classDup:
			// A fresh key per burst (8 mod 16 ≡ distinct from cold's
			// stream), fired burst times back to back so the copies
			// overlap in flight and coalesce.
			body := makeBody(wls[dup%len(wls)], caches[(dup/len(wls))%len(caches)], 72+16*dup)
			for b := 0; b < opts.burst && len(jobs) < opts.n; b++ {
				jobs = append(jobs, job{class: classDup, body: body})
			}
			dup++
		case classOversized:
			jobs = append(jobs, job{class: classOversized, body: invalid[bad%len(invalid)], wantCode: 400})
			bad++
		}
	}
	return jobs, nil
}

// fetchMetrics reads the server's flat JSON metric snapshot
// (/metrics.json; the bare /metrics endpoint is Prometheus text).
func fetchMetrics(client *http.Client, addr string) (map[string]float64, error) {
	resp, err := client.Get(addr + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("/metrics.json: HTTP %d", resp.StatusCode)
	}
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return m, nil
}

func run(opts options) (*Report, error) {
	if opts.n < 1 || opts.c < 1 || opts.burst < 1 {
		return nil, fmt.Errorf("need -n, -c and -burst ≥ 1")
	}
	jobs, err := buildJobs(opts)
	if err != nil {
		return nil, err
	}
	jobs = interleaveChaos(jobs, opts)
	client := &http.Client{
		Timeout: opts.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opts.c,
			MaxIdleConnsPerHost: opts.c,
		},
	}
	before, err := fetchMetrics(client, opts.addr)
	if err != nil {
		return nil, fmt.Errorf("server not reachable: %w", err)
	}

	queue := make(chan job)
	samples := make([]sample, 0, len(jobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	var seq atomic.Int64
	start := time.Now()
	for w := 0; w < opts.c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range queue {
				id := fmt.Sprintf("load-%d-%06d", opts.seed, seq.Add(1))
				var s sample
				if j.raw {
					s = chaosFire(opts, j, id)
				} else {
					s = fire(client, opts, j, id)
				}
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		queue <- j
	}
	close(queue)
	wg.Wait()
	wall := time.Since(start)

	after, err := fetchMetrics(client, opts.addr)
	if err != nil {
		return nil, fmt.Errorf("post-run metrics: %w", err)
	}
	rep := summarize(opts, samples, wall, before, after)

	switch {
	case rep.Errors > 0:
		return rep, fmt.Errorf("%d request(s) failed or returned unexpected statuses", rep.Errors)
	case rep.HTTP5xx > opts.max5xx:
		return rep, fmt.Errorf("%d 5xx response(s) (allowed %d)", rep.HTTP5xx, opts.max5xx)
	case rep.ChaosUnexpected > 0:
		return rep, fmt.Errorf("%d chaos request(s) answered outside their expected status set", rep.ChaosUnexpected)
	case opts.requireCoalescing && rep.SingleflightHits == 0:
		return rep, fmt.Errorf("no duplicate requests were coalesced (singleflight hits = 0)")
	}
	return rep, nil
}

// fire sends one request and classifies the outcome. The request ID it
// sends is echoed into the sample so failures are traceable server-side.
func fire(client *http.Client, opts options, j job, id string) sample {
	s := sample{class: j.class, id: id}
	req, err := http.NewRequest(http.MethodPost, opts.addr+"/v1/allocate", bytes.NewReader(j.body))
	if err != nil {
		s.err = err
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", id)
	if j.deadlineMS > 0 {
		req.Header.Set("X-Deadline-Ms", strconv.FormatFloat(j.deadlineMS, 'f', -1, 64))
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	s.dur = time.Since(t0)
	if err != nil {
		s.err = err
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	var body struct {
		Cached    bool `json:"cached"`
		Coalesced bool `json:"coalesced"`
		Degraded  bool `json:"degraded"`
	}
	if resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			s.err = fmt.Errorf("bad response body: %w", err)
			return s
		}
		s.cached, s.coalesced, s.degraded = body.Cached, body.Coalesced, body.Degraded
	}
	switch {
	case j.wantCode != 0:
		s.expected = s.status == j.wantCode
	case opts.allowShed && s.status == http.StatusServiceUnavailable:
		s.expected = true
	default:
		s.expected = s.status == 200
	}
	return s
}

// ClassStats summarizes one request class.
type ClassStats struct {
	Count  int     `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	Errors int     `json:"errors"`
}

// Report is the JSON artifact the CI gate consumes.
type Report struct {
	Requests      int     `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	DurationMS    float64 `json:"duration_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`

	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	Status  map[string]int `json:"status"`
	HTTP5xx int            `json:"http_5xx"`
	// Errors counts transport failures and status codes the schedule
	// did not expect (an oversized request answering 400 is expected).
	Errors    int `json:"errors"`
	Degraded  int `json:"degraded"`
	Cached    int `json:"cached"`
	Coalesced int `json:"coalesced"`

	// Chaos accounting (-chaos runs). ChaosRequests counts injected
	// hostile requests; ChaosUnexpected counts those answered outside
	// their expected status set (any > 0 fails the run). NetErrors
	// counts transport failures on healthy requests — tolerated up to
	// -max-net-errors, the allowance for server-side reset faults.
	// FaultsInjected is the server's casa_faults_injected_total delta,
	// the proof that a chaos run's scheduled server-side faults fired.
	ChaosRequests   int     `json:"chaos_requests,omitempty"`
	ChaosUnexpected int     `json:"chaos_unexpected"`
	NetErrors       int     `json:"net_errors"`
	FaultsInjected  float64 `json:"faults_injected"`

	// SingleflightHits is the server-side counter delta across the run:
	// > 0 proves duplicate requests were coalesced.
	SingleflightHits float64 `json:"singleflight_hits"`
	// ServerMetrics holds the deltas of every casa_server_* counter.
	ServerMetrics map[string]float64 `json:"server_metrics"`

	ByClass map[string]*ClassStats `json:"by_class"`
	// ByOutcome breaks latency down the way the server classifies
	// requests (hit/cold/coalesced/degraded/shed/invalid/error) — a
	// cache hit and a cold solve in the same schedule class have wildly
	// different latency, and mixing them hides regressions in either.
	ByOutcome map[string]*ClassStats `json:"by_outcome"`
	// FailedIDs lists the X-Request-Ids of failed or unexpected-status
	// requests (bounded), naming the server-side traces to inspect at
	// /debug/traces/{id}.
	FailedIDs []string `json:"failed_ids,omitempty"`
}

// maxFailedIDs bounds the report's failure list; the full count is in
// Errors.
const maxFailedIDs = 20

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func summarize(opts options, samples []sample, wall time.Duration,
	before, after map[string]float64) *Report {
	rep := &Report{
		Requests:      len(samples),
		Concurrency:   opts.c,
		DurationMS:    float64(wall.Nanoseconds()) / 1e6,
		Status:        map[string]int{},
		ByClass:       map[string]*ClassStats{},
		ByOutcome:     map[string]*ClassStats{},
		ServerMetrics: map[string]float64{},
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(len(samples)) / wall.Seconds()
	}
	all := make([]float64, 0, len(samples))
	byClass := map[string][]float64{}
	byOutcome := map[string][]float64{}
	for i := range samples {
		s := &samples[i]
		ms := float64(s.dur.Nanoseconds()) / 1e6
		cs := rep.ByClass[s.class]
		if cs == nil {
			cs = &ClassStats{}
			rep.ByClass[s.class] = cs
		}
		cs.Count++
		if chaosClass(s.class) {
			// Chaos traffic gates on its own expectations and stays out
			// of the healthy percentiles: the p99 ceiling is a promise
			// about well-behaved clients sharing the server with an
			// attack, not about the attack itself. An expected 5xx (the
			// 504 a 1ms deadline must earn) is the test passing, so only
			// unexpected statuses count toward the 5xx gate.
			rep.ChaosRequests++
			if s.status > 0 {
				rep.Status[strconv.Itoa(s.status)]++
				byClass[s.class] = append(byClass[s.class], ms)
			} else if s.err != nil {
				rep.Status["error"]++
			}
			if !s.expected {
				rep.ChaosUnexpected++
				cs.Errors++
				if s.status >= 500 {
					rep.HTTP5xx++
				}
				if len(rep.FailedIDs) < maxFailedIDs {
					rep.FailedIDs = append(rep.FailedIDs, s.id)
				}
			}
			continue
		}
		ocs := rep.ByOutcome[s.outcome()]
		if ocs == nil {
			ocs = &ClassStats{}
			rep.ByOutcome[s.outcome()] = ocs
		}
		ocs.Count++
		failed := false
		if s.err != nil {
			// A transport failure on a healthy request: tolerated up to
			// -max-net-errors (the allowance for server-side reset
			// faults, which kill exactly the connections they fire on),
			// an error beyond that.
			rep.NetErrors++
			rep.Status["error"]++
			if rep.NetErrors > opts.maxNetErrors {
				rep.Errors++
				cs.Errors++
				ocs.Errors++
				failed = true
			}
		} else {
			rep.Status[strconv.Itoa(s.status)]++
			if s.status >= 500 {
				rep.HTTP5xx++
			}
			if !s.expected {
				rep.Errors++
				cs.Errors++
				ocs.Errors++
				failed = true
			}
			if s.degraded {
				rep.Degraded++
			}
			if s.cached {
				rep.Cached++
			}
			if s.coalesced {
				rep.Coalesced++
			}
			all = append(all, ms)
			byClass[s.class] = append(byClass[s.class], ms)
			byOutcome[s.outcome()] = append(byOutcome[s.outcome()], ms)
		}
		if failed && len(rep.FailedIDs) < maxFailedIDs {
			rep.FailedIDs = append(rep.FailedIDs, s.id)
		}
	}
	sort.Float64s(all)
	rep.P50Ms = percentile(all, 0.50)
	rep.P90Ms = percentile(all, 0.90)
	rep.P99Ms = percentile(all, 0.99)
	if len(all) > 0 {
		rep.MaxMs = all[len(all)-1]
	}
	for cl, durs := range byClass {
		sort.Float64s(durs)
		rep.ByClass[cl].P50Ms = percentile(durs, 0.50)
		rep.ByClass[cl].P99Ms = percentile(durs, 0.99)
	}
	for oc, durs := range byOutcome {
		sort.Float64s(durs)
		rep.ByOutcome[oc].P50Ms = percentile(durs, 0.50)
		rep.ByOutcome[oc].P99Ms = percentile(durs, 0.99)
	}
	for name, v := range after {
		if !strings.HasPrefix(name, "casa_server_") && name != "casa_faults_injected_total" {
			continue
		}
		if d := v - before[name]; d != 0 {
			rep.ServerMetrics[name] = d
		}
	}
	rep.SingleflightHits = rep.ServerMetrics["casa_server_singleflight_hits_total"]
	rep.FaultsInjected = rep.ServerMetrics["casa_faults_injected_total"]
	return rep
}

// print writes the human summary.
func (r *Report) print(w *os.File) {
	fmt.Fprintf(w, "casaload: %d requests, %d workers, %.1fs wall (%.0f req/s)\n",
		r.Requests, r.Concurrency, r.DurationMS/1e3, r.ThroughputRPS)
	fmt.Fprintf(w, "latency  p50 %8.1fms  p90 %8.1fms  p99 %8.1fms  max %8.1fms\n",
		r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs)
	fmt.Fprintf(w, "outcomes 5xx %d  errors %d  degraded %d  cached %d  coalesced %d  singleflight %.0f\n",
		r.HTTP5xx, r.Errors, r.Degraded, r.Cached, r.Coalesced, r.SingleflightHits)
	if r.ChaosRequests > 0 {
		fmt.Fprintf(w, "chaos    injected %d  unexpected %d  net-errors %d  server-faults %.0f\n",
			r.ChaosRequests, r.ChaosUnexpected, r.NetErrors, r.FaultsInjected)
	}
	classes := make([]string, 0, len(r.ByClass))
	for cl := range r.ByClass {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	for _, cl := range classes {
		cs := r.ByClass[cl]
		fmt.Fprintf(w, "  %-9s n=%-5d p50 %8.1fms  p99 %8.1fms  errors %d\n",
			cl, cs.Count, cs.P50Ms, cs.P99Ms, cs.Errors)
	}
	outcomes := make([]string, 0, len(r.ByOutcome))
	for oc := range r.ByOutcome {
		outcomes = append(outcomes, oc)
	}
	sort.Strings(outcomes)
	for _, oc := range outcomes {
		cs := r.ByOutcome[oc]
		fmt.Fprintf(w, "  outcome %-9s n=%-5d p50 %8.1fms  p99 %8.1fms\n",
			oc, cs.Count, cs.P50Ms, cs.P99Ms)
	}
	if len(r.FailedIDs) > 0 {
		fmt.Fprintf(w, "failed request IDs (server traces at /debug/traces/{id}): %s\n",
			strings.Join(r.FailedIDs, ", "))
	}
}

// write stores the JSON report.
func (r *Report) write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
