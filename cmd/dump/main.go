// Command dump inspects programs and pipeline artifacts: assembler-style
// listings, round-trippable asm source, trace tables, memory maps and
// conflict graphs.
//
// Usage:
//
//	dump -workload mpeg -format listing
//	dump -workload g721 -format asm > g721.casm
//	dump -file g721.casm -format traces -spm 256
//	dump -workload adpcm -format map -cache 128 -spm 128
//	dump -workload adpcm -format dot -cache 128 -spm 128 | dot -Tpng ...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wl     = flag.String("workload", "", "bundled workload: adpcm, g721, mpeg")
		file   = flag.String("file", "", "program in asm format (alternative to -workload)")
		format = flag.String("format", "listing", "output: listing, asm, traces, trace, map, dot, conflicts, basis")
		cache  = flag.Int("cache", 2048, "I-cache size for traces/map/dot")
		spm    = flag.Int("spm", 256, "scratchpad size for traces/map/dot")
	)
	flag.Parse()

	if err := run(*wl, *file, *format, *cache, *spm); err != nil {
		fmt.Fprintln(os.Stderr, "dump:", err)
		os.Exit(1)
	}
}

func loadProgram(wl, file string) (*ir.Program, error) {
	switch {
	case wl != "" && file != "":
		return nil, fmt.Errorf("pass -workload or -file, not both")
	case wl != "":
		return workload.Load(wl)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return asm.Parse(f, file)
	}
	return nil, fmt.Errorf("need -workload or -file")
}

func run(wl, file, format string, cacheSize, spmSize int) error {
	p, err := loadProgram(wl, file)
	if err != nil {
		return err
	}
	switch format {
	case "listing":
		return ir.Fprint(os.Stdout, p)
	case "asm":
		return asm.Write(os.Stdout, p)
	case "traces":
		return dumpTraces(p, spmSize)
	case "trace":
		return dumpBlockTrace(p)
	case "map":
		return dumpMap(p, cacheSize, spmSize)
	case "dot":
		return dumpDOT(p, cacheSize, spmSize)
	case "conflicts":
		return dumpConflicts(p, cacheSize, spmSize)
	case "basis":
		return dumpBasis(p, cacheSize, spmSize)
	}
	return fmt.Errorf("unknown format %q", format)
}

func buildSet(p *ir.Program, spmSize int) (*trace.Set, error) {
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		return nil, err
	}
	return trace.Build(p, prof, trace.Options{MaxBytes: spmSize, LineBytes: experiments.DefaultLine})
}

func dumpTraces(p *ir.Program, spmSize int) error {
	set, err := buildSet(p, spmSize)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d traces (cap %dB, %dB lines), %dB raw / %dB padded\n",
		p.Name, len(set.Traces), spmSize, experiments.DefaultLine,
		set.TotalRawBytes(), set.TotalPaddedBytes())
	fmt.Printf("%6s %8s %8s %10s %6s %6s  %s\n",
		"trace", "raw(B)", "pad(B)", "fetches", "blks", "jump", "starts at")
	for _, tr := range set.Traces {
		first := tr.Blocks[0]
		fn := p.Func(first.Func)
		label := fn.Block(first.Block).Label
		if label == "" {
			label = fmt.Sprintf("bb%d", first.Block)
		}
		jump := ""
		if tr.HasJump {
			jump = "+j"
		}
		fmt.Printf("%6d %8d %8d %10d %6d %6s  %s:%s\n",
			tr.ID, tr.RawBytes, tr.PaddedBytes, tr.Fetches, len(tr.Blocks), jump, fn.Name, label)
	}
	return nil
}

// dumpBlockTrace prints the run-length-encoded block trace the
// simulator records once per program and replays under every layout —
// the artifact to stare at when the replay engine and the reference
// engine disagree.
func dumpBlockTrace(p *ir.Program) error {
	tr, err := sim.RecordTrace(p)
	if err != nil {
		return err
	}
	fmt.Printf("%s block trace: %d RLE entries, %d block executions, %d fetches, %dB encoded\n",
		p.Name, tr.NumSteps(), tr.Steps(), tr.Fetches(), tr.SizeBytes())
	fmt.Printf("%8s %10s %7s %-7s %s\n", "entry", "repeat", "instrs", "edge", "block")
	for i := 0; i < tr.NumSteps(); i++ {
		ref, instrs, kind, count := tr.Step(i)
		fn := p.Func(ref.Func)
		label := fn.Block(ref.Block).Label
		if label == "" {
			label = fmt.Sprintf("bb%d", ref.Block)
		}
		fmt.Printf("%8d %10d %7d %-7s %s:%s\n", i, count, instrs, kind, fn.Name, label)
	}
	return nil
}

func dumpMap(p *ir.Program, cacheSize, spmSize int) error {
	pipe, err := experiments.PrepareProgram(context.Background(), p, experiments.DM(cacheSize), spmSize)
	if err != nil {
		return err
	}
	casa, err := pipe.RunCASA(context.Background())
	if err != nil {
		return err
	}
	// Rebuild the CASA layout to print the memory map.
	alloc := make([]bool, len(pipe.Set.Traces))
	for _, tr := range pipe.Set.Traces {
		if casa.Result.PerMO[tr.ID].SPM > 0 {
			alloc[tr.ID] = true
		}
	}
	lay, err := layout.New(pipe.Set, alloc, layout.Options{Mode: layout.Copy, SPMSize: spmSize})
	if err != nil {
		return err
	}
	fmt.Printf("%s memory map (%dB cache, %dB scratchpad, CASA allocation)\n",
		p.Name, cacheSize, spmSize)
	fmt.Printf("%10s %8s %6s  %s\n", "address", "size", "where", "trace")
	for _, tr := range pipe.Set.Traces {
		base, size := lay.ExecRange(tr.ID)
		where := "main"
		if lay.InSPM(tr.ID) {
			where = "SPM"
		}
		first := tr.Blocks[0]
		fmt.Printf("%#10x %8d %6s  trace %d (%s)\n",
			base, size, where, tr.ID, p.Func(first.Func).Name)
	}
	fmt.Printf("scratchpad: %d/%d bytes used\n", lay.SPMUsed(), spmSize)
	return nil
}

func dumpConflicts(p *ir.Program, cacheSize, spmSize int) error {
	pipe, err := experiments.PrepareProgram(context.Background(), p, experiments.DM(cacheSize), spmSize)
	if err != nil {
		return err
	}
	g := pipe.Graph
	fmt.Printf("%s conflict graph: %d vertices, %d edges, %d conflict misses\n",
		p.Name, g.N(), g.NumEdges(), g.TotalConflictMisses())
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool { return edges[i].Misses > edges[j].Misses })
	if len(edges) > 20 {
		edges = edges[:20]
	}
	fmt.Printf("%8s %8s %10s  %s\n", "victim", "evictor", "misses", "(heaviest 20)")
	for _, e := range edges {
		fmt.Printf("%8d %8d %10d  %s <- %s\n", e.From, e.To, e.Misses,
			p.Func(pipe.Set.Traces[e.From].Blocks[0].Func).Name,
			p.Func(pipe.Set.Traces[e.To].Blocks[0].Func).Name)
	}
	return nil
}

// dumpBasis solves the cell's LP relaxation cold on the factored dual
// simplex engine and prints the final basis partition and factorization
// shape — the reference picture when debugging why a transferred basis
// did or did not install cleanly (DESIGN.md §15).
func dumpBasis(p *ir.Program, cacheSize, spmSize int) error {
	pipe, err := experiments.PrepareProgram(context.Background(), p, experiments.DM(cacheSize), spmSize)
	if err != nil {
		return err
	}
	params := core.Params{
		SPMSize:    spmSize,
		ESPHit:     pipe.Cost.SPMAccess,
		ECacheHit:  pipe.Cost.CacheHit,
		ECacheMiss: pipe.Cost.CacheMiss,
	}
	m, _, err := core.BuildModel(pipe.Set, pipe.Graph, params)
	if err != nil {
		return err
	}
	info, err := ilp.AnalyzeBasis(m, ilp.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%s LP basis (%dB cache, %dB scratchpad): %s in %d pivots\n",
		p.Name, cacheSize, spmSize, info.Status, info.Iters)
	fmt.Printf("  model: %d vars x %d rows\n", info.Vars, info.Rows)
	fmt.Printf("  basis: %d structural + %d slack\n", info.BasicStructural, info.BasicSlacks)
	fmt.Printf("  factorization: %d peeled, bump %dx%d, eta depth %d\n",
		info.Peeled, info.BumpK, info.BumpK, info.EtaDepth)
	fmt.Printf("  basic structurals (%d):\n", len(info.BasicVars))
	for _, name := range info.BasicVars {
		fmt.Printf("    %s\n", name)
	}
	return nil
}

func dumpDOT(p *ir.Program, cacheSize, spmSize int) error {
	pipe, err := experiments.PrepareProgram(context.Background(), p, experiments.DM(cacheSize), spmSize)
	if err != nil {
		return err
	}
	names := make([]string, len(pipe.Set.Traces))
	for _, tr := range pipe.Set.Traces {
		names[tr.ID] = fmt.Sprintf("%s#%d", p.Func(tr.Blocks[0].Func).Name, tr.ID)
	}
	return pipe.Graph.WriteDOT(os.Stdout, names)
}
