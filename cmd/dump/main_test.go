package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFormats(t *testing.T) {
	for _, format := range []string{"listing", "asm", "traces", "trace", "map", "dot", "conflicts"} {
		if err := run("adpcm", "", format, 128, 128); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "listing", 128, 128); err == nil {
		t.Error("no input accepted")
	}
	if err := run("adpcm", "x.casm", "listing", 128, 128); err == nil {
		t.Error("both inputs accepted")
	}
	if err := run("adpcm", "", "wat", 128, 128); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("", "/missing.casm", "listing", 128, 128); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	src := "func main\na:\n    code 4\n    ret\n"
	path := filepath.Join(dir, "p.casm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, "listing", 128, 64); err != nil {
		t.Fatalf("run: %v", err)
	}
}
