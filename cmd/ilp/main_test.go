package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSolvesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.lp")
	src := `Maximize
 obj: 60 x1 + 100 x2 + 120 x3
Subject To
 cap: 10 x1 + 20 x2 + 30 x3 <= 50
Binary
 x1 x2 x3
End
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(false, 0, 0, path); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(true, 0, 0, path); err != nil {
		t.Fatalf("run -relax: %v", err)
	}
}

func TestRunRejectsBadFile(t *testing.T) {
	if err := run(false, 0, 0, "/nonexistent.lp"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.lp")
	os.WriteFile(path, []byte("not an lp"), 0o644)
	if err := run(false, 0, 0, path); err == nil {
		t.Error("garbage LP accepted")
	}
}
