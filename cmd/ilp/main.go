// Command ilp solves a linear or 0/1-integer program given in (a subset
// of) the CPLEX LP file format, using the library's built-in simplex and
// branch & bound — the reproduction's stand-in for the commercial solver
// the paper used.
//
// Usage:
//
//	ilp [-relax] [-nodes N] [-budget D] [file.lp]    (reads stdin without a file)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/ilp"
)

func main() {
	relax := flag.Bool("relax", false, "solve the continuous relaxation only")
	nodes := flag.Int("nodes", 0, "branch & bound node limit (0 = default)")
	budget := flag.Duration("budget", 0, "wall-clock solve budget; past it the best incumbent is returned (0 = unlimited)")
	flag.Parse()

	if err := run(*relax, *nodes, *budget, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "ilp:", err)
		os.Exit(1)
	}
}

func run(relax bool, nodes int, budget time.Duration, path string) error {
	var src io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	m, err := ilp.ReadLP(src)
	if err != nil {
		return err
	}
	fmt.Printf("model: %d variables, %d constraints\n", m.NumVars(), m.NumConstraints())

	opt := ilp.Options{MaxNodes: nodes, Budget: budget}
	var sol *ilp.Solution
	if relax {
		sol, err = ilp.SolveLP(context.Background(), m, opt)
	} else {
		sol, err = ilp.Solve(context.Background(), m, opt)
	}
	if err != nil {
		return err
	}
	fmt.Printf("status: %v\n", sol.Status)
	if sol.Degraded {
		fmt.Printf("degraded: %s (gap %.4g)\n", sol.DegradedReason, sol.Gap)
	}
	if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
		return nil
	}
	fmt.Printf("objective: %g\n", sol.Objective)
	fmt.Printf("nodes: %d, simplex iterations: %d\n", sol.Nodes, sol.SimplexIters)

	// Print nonzero variables sorted by name.
	type nv struct {
		name string
		val  float64
	}
	var nonzero []nv
	for i := 0; i < m.NumVars(); i++ {
		v := sol.X[i]
		if v > 1e-9 || v < -1e-9 {
			nonzero = append(nonzero, nv{m.VarName(ilp.Var(i)), v})
		}
	}
	sort.Slice(nonzero, func(i, j int) bool { return nonzero[i].name < nonzero[j].name })
	for _, x := range nonzero {
		fmt.Printf("  %s = %g\n", x.name, x.val)
	}
	return nil
}
