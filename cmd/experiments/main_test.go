package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// TestReportGoldenStability runs fig4 three rounds on one suite with the
// deterministic report hook. Rounds 2 and 3 both execute against fully
// warmed memo layers, so after Canonicalize zeroes the wall times their
// JSONL lines must be byte-identical — the property the golden CI check
// relies on.
func TestReportGoldenStability(t *testing.T) {
	sel := selectStudies("fig4")
	if len(sel) != 1 {
		t.Fatalf("selectStudies(fig4) = %d studies, want 1", len(sel))
	}
	var buf bytes.Buffer
	s := experiments.NewSuite().SetWorkers(1)
	if err := runStudies(sel, s, 3, io.Discard, io.Discard, &buf, true); err != nil {
		t.Fatalf("runStudies: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d report lines, want 3", len(lines))
	}
	round2 := strings.Replace(lines[1], `"round":2`, `"round":3`, 1)
	if round2 == lines[1] {
		t.Fatalf("round field not found in %q", lines[1])
	}
	if round2 != lines[2] {
		t.Errorf("warm rounds differ:\nround 2: %s\nround 3: %s", lines[1], lines[2])
	}
}

// TestReportStagesAndMemoHits checks the acceptance criterion: a fig4
// report holds a span tree with at least 6 distinct stage names, and the
// second (warm) round records pipeline memo hits.
func TestReportStagesAndMemoHits(t *testing.T) {
	sel := selectStudies("fig4")
	var buf bytes.Buffer
	s := experiments.NewSuite().SetWorkers(2)
	if err := runStudies(sel, s, 2, io.Discard, io.Discard, &buf, false); err != nil {
		t.Fatalf("runStudies: %v", err)
	}
	reps, err := obs.ReadReports(&buf)
	if err != nil {
		t.Fatalf("ReadReports: %v", err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d reports, want 2", len(reps))
	}

	names := make(map[string]bool)
	for _, rep := range reps {
		for _, n := range obs.StageNames(rep.Spans) {
			names[n] = true
		}
	}
	if len(names) < 6 {
		t.Errorf("span tree has %d distinct stage names (%v), want >= 6", len(names), names)
	}
	for _, want := range []string{"prepare", "profile", "conflict-graph", "cell", "allocate", "simulate"} {
		if !names[want] {
			t.Errorf("stage %q missing from span tree (have %v)", want, names)
		}
	}

	warm := reps[1]
	if warm.Round != 2 {
		t.Fatalf("second report is round %d, want 2", warm.Round)
	}
	if hits := warm.Metrics["casa_pipeline_memo_hits_total"]; hits <= 0 {
		t.Errorf("warm round pipeline memo hits = %v, want > 0 (metrics: %v)", hits, warm.Metrics)
	}
	if miss := warm.Metrics["casa_pipeline_memo_misses_total"]; miss != 0 {
		t.Errorf("warm round pipeline memo misses = %v, want 0", miss)
	}
	if reps[0].Metrics["casa_pipeline_memo_misses_total"] <= 0 {
		t.Errorf("cold round recorded no pipeline memo misses (metrics: %v)", reps[0].Metrics)
	}
}

// TestSelectStudies pins the study registry names the CLI accepts.
func TestSelectStudies(t *testing.T) {
	if got := len(selectStudies("all")); got != len(studies) {
		t.Errorf("all selects %d studies, want %d", got, len(studies))
	}
	if sel := selectStudies("wat"); sel != nil {
		t.Errorf("unknown study selected %v", sel)
	}
}
