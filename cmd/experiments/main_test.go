package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
)

// TestReportGoldenStability runs fig4 three rounds on one suite with the
// deterministic report hook. Rounds 2 and 3 both execute against fully
// warmed memo layers, so after Canonicalize zeroes the wall times their
// JSONL lines must be byte-identical — the property the golden CI check
// relies on.
func TestReportGoldenStability(t *testing.T) {
	sel := selectStudies("fig4")
	if len(sel) != 1 {
		t.Fatalf("selectStudies(fig4) = %d studies, want 1", len(sel))
	}
	var buf bytes.Buffer
	s := experiments.NewSuite().SetWorkers(1)
	if err := runStudies(sel, s, 3, io.Discard, io.Discard, &buf, true); err != nil {
		t.Fatalf("runStudies: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d report lines, want 3", len(lines))
	}
	round2 := strings.Replace(lines[1], `"round":2`, `"round":3`, 1)
	if round2 == lines[1] {
		t.Fatalf("round field not found in %q", lines[1])
	}
	if round2 != lines[2] {
		t.Errorf("warm rounds differ:\nround 2: %s\nround 3: %s", lines[1], lines[2])
	}
}

// TestReportStagesAndMemoHits checks the acceptance criterion: a fig4
// report holds a span tree with at least 6 distinct stage names, and the
// second (warm) round records pipeline memo hits.
func TestReportStagesAndMemoHits(t *testing.T) {
	sel := selectStudies("fig4")
	var buf bytes.Buffer
	s := experiments.NewSuite().SetWorkers(2)
	if err := runStudies(sel, s, 2, io.Discard, io.Discard, &buf, false); err != nil {
		t.Fatalf("runStudies: %v", err)
	}
	reps, err := obs.ReadReports(&buf)
	if err != nil {
		t.Fatalf("ReadReports: %v", err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d reports, want 2", len(reps))
	}

	names := make(map[string]bool)
	for _, rep := range reps {
		for _, n := range obs.StageNames(rep.Spans) {
			names[n] = true
		}
	}
	if len(names) < 6 {
		t.Errorf("span tree has %d distinct stage names (%v), want >= 6", len(names), names)
	}
	for _, want := range []string{"prepare", "profile", "conflict-graph", "cell", "allocate", "simulate"} {
		if !names[want] {
			t.Errorf("stage %q missing from span tree (have %v)", want, names)
		}
	}

	warm := reps[1]
	if warm.Round != 2 {
		t.Fatalf("second report is round %d, want 2", warm.Round)
	}
	if hits := warm.Metrics["casa_pipeline_memo_hits_total"]; hits <= 0 {
		t.Errorf("warm round pipeline memo hits = %v, want > 0 (metrics: %v)", hits, warm.Metrics)
	}
	if miss := warm.Metrics["casa_pipeline_memo_misses_total"]; miss != 0 {
		t.Errorf("warm round pipeline memo misses = %v, want 0", miss)
	}
	if reps[0].Metrics["casa_pipeline_memo_misses_total"] <= 0 {
		t.Errorf("cold round recorded no pipeline memo misses (metrics: %v)", reps[0].Metrics)
	}
}

// TestSelectStudies pins the study registry names the CLI accepts.
func TestSelectStudies(t *testing.T) {
	if got := len(selectStudies("all")); got != len(studies) {
		t.Errorf("all selects %d studies, want %d", got, len(studies))
	}
	if sel := selectStudies("wat"); sel != nil {
		t.Errorf("unknown study selected %v", sel)
	}
}

// TestSolveBudgetDegradedReport: a tiny solve budget forces every cell's
// ILP into the anytime path, and the run report must list each degraded
// cell with its cause — while the study itself still completes with rows.
func TestSolveBudgetDegradedReport(t *testing.T) {
	sel := selectStudies("fig4")
	var buf bytes.Buffer
	s := experiments.NewSuite().SetWorkers(2).SetSolveBudget(1) // 1ns: expires instantly
	if err := runStudies(sel, s, 1, io.Discard, io.Discard, &buf, false); err != nil {
		t.Fatalf("runStudies under budget: %v", err)
	}
	reps, err := obs.ReadReports(&buf)
	if err != nil {
		t.Fatalf("ReadReports: %v", err)
	}
	if len(reps) != 1 {
		t.Fatalf("got %d reports, want 1", len(reps))
	}
	rep := reps[0]
	if len(rep.DegradedCells) == 0 {
		t.Fatal("no degraded cells in report despite 1ns solve budget")
	}
	for _, dc := range rep.DegradedCells {
		if dc.Reason == "" {
			t.Errorf("degraded cell %d has no reason", dc.Index)
		}
		if dc.Index < 0 {
			t.Errorf("degraded span outside any cell (index %d)", dc.Index)
		}
	}
	if rep.Metrics["casa_solve_degraded_total"] <= 0 {
		t.Error("casa_solve_degraded_total did not move")
	}
}

// TestChaosReportListsFailedCells: an injected cell panic fails the
// study, and the report line written before the error propagates must
// list the losing cell with its cause so the failure is auditable.
func TestChaosReportListsFailedCells(t *testing.T) {
	plan, err := fault.Parse("cell-panic:1")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fault.Set(plan)
	defer fault.Set(nil)

	sel := selectStudies("fig4")
	var buf bytes.Buffer
	s := experiments.NewSuite().SetWorkers(1)
	runErr := runStudies(sel, s, 1, io.Discard, io.Discard, &buf, false)
	if runErr == nil {
		t.Fatal("runStudies under cell-panic:1 succeeded, want grid error")
	}
	reps, err := obs.ReadReports(&buf)
	if err != nil {
		t.Fatalf("ReadReports: %v", err)
	}
	if len(reps) != 1 {
		t.Fatalf("got %d reports, want 1 (the line must be written before the error propagates)", len(reps))
	}
	rep := reps[0]
	if rep.Error == "" {
		t.Error("report carries no study error")
	}
	if len(rep.FailedCells) != 1 {
		t.Fatalf("FailedCells = %+v, want exactly one", rep.FailedCells)
	}
	fc := rep.FailedCells[0]
	// cell-panic:1 fires at the first cell *executed*; the warm planner
	// runs fig4 largest-scratchpad-first, so that is grid index 3.
	if fc.Index != 3 || fc.Skipped || !strings.Contains(fc.Err, "cell-panic") {
		t.Errorf("failed cell = %+v, want index 3 (first executed under warm order) with a cell-panic cause", fc)
	}
	if rep.Metrics["casa_cell_panics_total"] != 1 {
		t.Errorf("casa_cell_panics_total = %v, want 1", rep.Metrics["casa_cell_panics_total"])
	}
	if rep.Metrics["casa_faults_injected_total"] != 1 {
		t.Errorf("casa_faults_injected_total = %v, want 1", rep.Metrics["casa_faults_injected_total"])
	}
}

// TestCollectDegradedDedupesPerCell: two degraded spans under one cell
// (the solve span and the memo-annotation span) yield one entry.
func TestCollectDegradedDedupes(t *testing.T) {
	cell := &obs.Span{Name: "cell", Attrs: map[string]any{"index": 3}}
	cell.Children = []*obs.Span{
		{Name: "ilp-solve", Attrs: map[string]any{"degraded": "deadline", "gap": 0.25}},
		{Name: "degraded-allocation", Attrs: map[string]any{"degraded": "deadline", "gap": 0.25, "fallback": "greedy"}},
	}
	got := collectDegraded([]*obs.Span{{Name: "study", Children: []*obs.Span{cell}}})
	if len(got) != 1 {
		t.Fatalf("collectDegraded returned %d entries, want 1", len(got))
	}
	dc := got[0]
	if dc.Index != 3 || dc.Reason != "deadline" || dc.Gap != 0.25 {
		t.Errorf("entry = %+v", dc)
	}
}
