// Command experiments regenerates the evaluation of the CASA paper:
// Figure 4 (CASA vs. Steinke on mpeg), Figure 5 (CASA scratchpad vs.
// preloaded loop cache) and Table 1 (overall energy savings) — plus the
// extension studies (hierarchy sensitivity, WCET bounds, overlay, joint
// code+data allocation) and the design-choice ablations called out in
// DESIGN.md.
//
// Studies fan their experiment grids across a bounded worker pool; the
// row output is bit-identical at any worker count. Per-study wall-clock
// is reported on stderr so stdout stays clean for diffing.
//
// Observability: -report FILE writes one JSONL line per (study, round)
// carrying the span tree of every pipeline stage and the run's metric
// deltas; -repeat N re-runs the studies on the same suite so warm rounds
// expose the memo layers' hit rates; -trace streams solver and pipeline
// progress to stderr; -pprof ADDR serves net/http/pprof.
//
// Usage:
//
//	experiments [-workers N] [-compare-serial] [-solve-budget 30s]
//	            [-exp fig4|fig5|table1|sensitivity|wcet|overlay|data|placement|ablations|all]
//	            [-repeat N] [-report out.jsonl] [-report-deterministic]
//	            [-trace] [-pprof :6060]
//
// Robustness: -solve-budget D caps each CASA ILP solve at D of wall
// clock; an expired solve degrades to its best incumbent (or the greedy
// allocator) instead of failing the run, and every degraded cell is
// listed in the -report line with its cause and optimality gap.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/slogx"
	"repro/internal/parallel"
)

type study struct {
	name string
	run  func(context.Context, *experiments.Suite, io.Writer) error
}

var studies = []study{
	{"fig4", runFig4},
	{"fig5", runFig5},
	{"table1", runTable1},
	{"sensitivity", runSensitivity},
	{"wcet", runWCET},
	{"overlay", runOverlay},
	{"data", runData},
	{"placement", runPlacement},
	{"ablations", runAblations},
}

func selectStudies(exp string) []study {
	var sel []study
	for _, st := range studies {
		if exp == "all" || exp == st.name {
			sel = append(sel, st)
		}
	}
	return sel
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig4, fig5, table1, sensitivity, wcet, overlay, data, placement, ablations, all")
	workers := flag.Int("workers", 0,
		fmt.Sprintf("worker-pool width (0 = $%s, else NumCPU)", parallel.EnvWorkers))
	compareSerial := flag.Bool("compare-serial", false,
		"time each study serially (1 worker) and in parallel and report the speedup; suppresses table output and disables the fetch-stream cache so the pool itself is measured")
	repeat := flag.Int("repeat", 1,
		"run the selected studies this many rounds on one shared suite; rounds after the first hit the memo layers and print nothing to stdout")
	reportPath := flag.String("report", "",
		"write a machine-readable JSONL run report (one line per study per round: span tree + metric deltas)")
	solveBudget := flag.Duration("solve-budget", 0,
		"wall-clock budget per CASA ILP solve (0 = unlimited); expired solves degrade to the incumbent or greedy fallback instead of failing")
	reportDet := flag.Bool("report-deterministic", false,
		"zero wall times and drop time-based metrics in the report, making warm rounds byte-stable (golden tests)")
	traceFlag := flag.Bool("trace", false,
		fmt.Sprintf("log pipeline and solver progress to stderr (same as %s=1)", obs.EnvTrace))
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	logLevel := flag.String("log-level", "off", "structured-log level: debug, info, warn, error or off")
	flag.Parse()

	if *traceFlag {
		obs.EnableTrace(os.Stderr)
	}
	if _, err := slogx.Setup(os.Stderr, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: pprof:", err)
			}
		}()
	}

	sel := selectStudies(*exp)
	if len(sel) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(1)
	}

	var err error
	if *compareSerial {
		err = compare(sel, *workers)
	} else {
		var report io.Writer
		if *reportPath != "" {
			f, ferr := os.Create(*reportPath)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "experiments:", ferr)
				os.Exit(1)
			}
			defer f.Close()
			report = f
		}
		s := experiments.NewSuite().SetWorkers(*workers).SetSolveBudget(*solveBudget)
		err = runStudies(sel, s, *repeat, os.Stdout, os.Stderr, report, *reportDet)
	}
	obs.MaybeDumpMetrics(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runStudies runs each selected study repeat times on the shared suite.
// Round 1 writes its tables to stdout exactly as a plain run would;
// later rounds are silent (they exist to warm-hit the memo layers) but
// still produce report lines. With report non-nil every (study, round)
// appends one obs.Report in JSONL form.
func runStudies(sel []study, s *experiments.Suite, repeat int,
	stdout, timing, report io.Writer, deterministic bool) error {
	for round := 1; round <= repeat; round++ {
		out := stdout
		if round > 1 {
			out = io.Discard
		}
		for _, st := range sel {
			tr := obs.NewTracer()
			ctx := obs.WithTracer(context.Background(), tr)
			before := obs.Default.Snapshot()
			start := time.Now()
			runErr := st.run(ctx, s, out)
			wall := time.Since(start)
			if report != nil {
				if err := writeReport(report, st.name, round, s.Workers(), wall, tr, before, runErr, deterministic); err != nil {
					return err
				}
			}
			if runErr != nil {
				return runErr
			}
			if len(sel) > 1 {
				fmt.Fprintln(out)
			}
			fmt.Fprintf(timing, "# %s: %.2fs (%d workers)\n",
				st.name, wall.Seconds(), s.Workers())
		}
	}
	return nil
}

func writeReport(w io.Writer, name string, round, workers int, wall time.Duration,
	tr *obs.Tracer, before obs.Snapshot, runErr error, deterministic bool) error {
	rep := &obs.Report{
		Study:   name,
		Round:   round,
		Workers: workers,
		WallNS:  wall.Nanoseconds(),
		Spans:   tr.Roots(),
		Metrics: obs.Default.Delta(before),
	}
	rep.DegradedCells = collectDegraded(rep.Spans)
	if runErr != nil {
		rep.Error = runErr.Error()
		var ge *parallel.GridError
		if errors.As(runErr, &ge) {
			for _, ce := range ge.Failed {
				rep.FailedCells = append(rep.FailedCells,
					obs.FailedCell{Index: ce.Index, Err: ce.Err.Error()})
			}
			for _, idx := range ge.Skipped {
				rep.FailedCells = append(rep.FailedCells,
					obs.FailedCell{Index: idx, Skipped: true})
			}
		}
	}
	if deterministic {
		rep.Canonicalize()
	}
	return rep.WriteJSONL(w)
}

// collectDegraded walks a report's span forest and returns one entry per
// cell that consumed a degraded CASA allocation, deduplicated by cell
// index. The "degraded" attr carries the cause; "gap" and "fallback" the
// incumbent quality.
func collectDegraded(spans []*obs.Span) []obs.DegradedCell {
	var out []obs.DegradedCell
	seen := map[int]bool{}
	var walk func(sp *obs.Span, cell int)
	walk = func(sp *obs.Span, cell int) {
		if sp.Name == "cell" {
			if idx, ok := sp.Attrs["index"].(int); ok {
				cell = idx
			}
		}
		if reason, ok := sp.Attrs["degraded"]; ok && !seen[cell] {
			seen[cell] = true
			dc := obs.DegradedCell{Index: cell, Reason: fmt.Sprint(reason)}
			if g, ok := sp.Attrs["gap"].(float64); ok {
				dc.Gap = g
			}
			if _, ok := sp.Attrs["fallback"]; ok {
				dc.Fallback = true
			}
			out = append(out, dc)
		}
		for _, c := range sp.Children {
			walk(c, cell)
		}
	}
	for _, r := range spans {
		walk(r, -1)
	}
	return out
}

// compare times each study twice on fresh suites — serial, then at the
// requested width. The fetch-stream cache is disabled so the second run
// does not coast on recordings the first one left behind.
func compare(sel []study, workers int) error {
	if err := os.Setenv("CASA_STREAM_CACHE", "off"); err != nil {
		return err
	}
	ctx := context.Background()
	width := parallel.Workers(workers)
	fmt.Printf("%-12s %10s %14s %9s\n", "study", "serial(s)", "parallel(s)", "speedup")
	for _, st := range sel {
		start := time.Now()
		if err := st.run(ctx, experiments.NewSuite().SetWorkers(1), io.Discard); err != nil {
			return err
		}
		serial := time.Since(start)
		start = time.Now()
		if err := st.run(ctx, experiments.NewSuite().SetWorkers(workers), io.Discard); err != nil {
			return err
		}
		par := time.Since(start)
		fmt.Printf("%-12s %10.3f %14.3f %8.2fx  (%d workers)\n",
			st.name, serial.Seconds(), par.Seconds(), serial.Seconds()/par.Seconds(), width)
	}
	return nil
}

func runFig4(ctx context.Context, s *experiments.Suite, w io.Writer) error {
	cfg := experiments.DefaultFig4()
	rows, err := experiments.Fig4(ctx, s, cfg)
	if err != nil {
		return err
	}
	experiments.WriteFig4(w, cfg, rows)
	return nil
}

func runFig5(ctx context.Context, s *experiments.Suite, w io.Writer) error {
	cfg := experiments.DefaultFig5()
	rows, err := experiments.Fig5(ctx, s, cfg)
	if err != nil {
		return err
	}
	experiments.WriteFig5(w, cfg, rows)
	return nil
}

func runTable1(ctx context.Context, s *experiments.Suite, w io.Writer) error {
	rows, avgs, err := experiments.Table1(ctx, s, experiments.DefaultTable1())
	if err != nil {
		return err
	}
	experiments.WriteTable1(w, rows, avgs)
	return nil
}

func runSensitivity(ctx context.Context, s *experiments.Suite, w io.Writer) error {
	cfg := experiments.DefaultSensitivity()
	rows, err := experiments.Sensitivity(ctx, s, cfg)
	if err != nil {
		return err
	}
	experiments.WriteSensitivity(w, cfg, rows)
	return nil
}

func runWCET(ctx context.Context, s *experiments.Suite, w io.Writer) error {
	rows, err := experiments.WCETStudy(ctx, s, experiments.DefaultWCETStudy())
	if err != nil {
		return err
	}
	experiments.WriteWCETStudy(w, rows)
	return nil
}

func runOverlay(ctx context.Context, s *experiments.Suite, w io.Writer) error {
	cfg, err := experiments.DefaultOverlayStudy()
	if err != nil {
		return err
	}
	rows, err := experiments.OverlayStudy(ctx, s, cfg)
	if err != nil {
		return err
	}
	experiments.WriteOverlayStudy(w, rows)
	return nil
}

func runData(ctx context.Context, s *experiments.Suite, w io.Writer) error {
	rows, err := experiments.DataStudy(ctx, s, experiments.DefaultDataStudy())
	if err != nil {
		return err
	}
	experiments.WriteDataStudy(w, rows)
	return nil
}

func runPlacement(ctx context.Context, s *experiments.Suite, w io.Writer) error {
	rows, err := experiments.PlacementStudy(ctx, s, experiments.DefaultPlacementStudy())
	if err != nil {
		return err
	}
	experiments.WritePlacementStudy(w, rows)
	return nil
}

func runAblations(ctx context.Context, s *experiments.Suite, w io.Writer) error {
	cfg := experiments.DefaultAblations()
	abl, err := experiments.Ablations(ctx, s, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablations (copy/greedy: %s %s$/%dB SPM; linearization: %s %s$/%dB SPM)\n",
		cfg.Main.Workload, fmtBytes(cfg.Main.Cache.Size), cfg.Main.SPMSize,
		cfg.Linearization.Workload, fmtBytes(cfg.Linearization.Cache.Size), cfg.Linearization.SPMSize)

	cm := abl.CopyMove
	fmt.Fprintf(w, "  copy-vs-move:    copy %.2f µJ (%d misses)  move %.2f µJ (%d misses)\n",
		cm.CopyMicroJ, cm.CopyMisses, cm.MoveMicroJ, cm.MoveMisses)

	lin := abl.Linearization
	fmt.Fprintf(w, "  linearization:   tight %.2f nJ in %v (%v, %d nodes, %d iters)\n",
		lin.TightEnergy, lin.TightTime, lin.TightStatus, lin.TightNodes, lin.TightIters)
	fmt.Fprintf(w, "                   faithful %.2f nJ in %v (%v, %d nodes, %d iters)\n",
		lin.FaithfulEnergy, lin.FaithfulTime, lin.FaithfulStatus, lin.FaithfulNodes, lin.FaithfulIters)

	gi := abl.GreedyILP
	fmt.Fprintf(w, "  greedy-vs-ilp:   ilp %.2f µJ  greedy %.2f µJ (predicted %.2f vs %.2f nJ)\n",
		gi.ILPMicroJ, gi.GreedyMicroJ, gi.ILPPredicted, gi.GreedyPredicted)
	return nil
}

// fmtBytes renders a byte size the way the tables label caches: whole
// kilobytes as "2kB", everything else as plain bytes.
func fmtBytes(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dkB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
