// Command experiments regenerates the evaluation of the CASA paper:
// Figure 4 (CASA vs. Steinke on mpeg), Figure 5 (CASA scratchpad vs.
// preloaded loop cache) and Table 1 (overall energy savings) — plus the
// extension studies (hierarchy sensitivity, WCET bounds, overlay, joint
// code+data allocation) and the design-choice ablations called out in
// DESIGN.md.
//
// Usage:
//
//	experiments [-exp fig4|fig5|table1|sensitivity|wcet|overlay|data|ablations|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig4, fig5, table1, sensitivity, wcet, overlay, data, placement, ablations, all")
	flag.Parse()

	s := experiments.NewSuite()
	var err error
	switch *exp {
	case "fig4":
		err = runFig4(s)
	case "fig5":
		err = runFig5(s)
	case "table1":
		err = runTable1(s)
	case "ablations":
		err = runAblations(s)
	case "sensitivity":
		err = runSensitivity(s)
	case "wcet":
		err = runWCET(s)
	case "overlay":
		err = runOverlay(s)
	case "data":
		err = runData(s)
	case "placement":
		err = runPlacement(s)
	case "all":
		for _, f := range []func(*experiments.Suite) error{runFig4, runFig5, runTable1, runSensitivity, runWCET, runOverlay, runData, runPlacement, runAblations} {
			if err = f(s); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runFig4(s *experiments.Suite) error {
	cfg := experiments.DefaultFig4()
	rows, err := experiments.Fig4(s, cfg)
	if err != nil {
		return err
	}
	experiments.WriteFig4(os.Stdout, cfg, rows)
	return nil
}

func runFig5(s *experiments.Suite) error {
	cfg := experiments.DefaultFig5()
	rows, err := experiments.Fig5(s, cfg)
	if err != nil {
		return err
	}
	experiments.WriteFig5(os.Stdout, cfg, rows)
	return nil
}

func runTable1(s *experiments.Suite) error {
	rows, avgs, err := experiments.Table1(s, experiments.DefaultTable1())
	if err != nil {
		return err
	}
	experiments.WriteTable1(os.Stdout, rows, avgs)
	return nil
}

func runSensitivity(s *experiments.Suite) error {
	cfg := experiments.DefaultSensitivity()
	rows, err := experiments.Sensitivity(s, cfg)
	if err != nil {
		return err
	}
	experiments.WriteSensitivity(os.Stdout, cfg, rows)
	return nil
}

func runWCET(s *experiments.Suite) error {
	rows, err := experiments.WCETStudy(s, experiments.DefaultWCETStudy())
	if err != nil {
		return err
	}
	experiments.WriteWCETStudy(os.Stdout, rows)
	return nil
}

func runOverlay(_ *experiments.Suite) error {
	rows, err := experiments.OverlayStudy(experiments.DefaultOverlayStudy())
	if err != nil {
		return err
	}
	experiments.WriteOverlayStudy(os.Stdout, rows)
	return nil
}

func runData(s *experiments.Suite) error {
	rows, err := experiments.DataStudy(s, experiments.DefaultDataStudy())
	if err != nil {
		return err
	}
	experiments.WriteDataStudy(os.Stdout, rows)
	return nil
}

func runPlacement(s *experiments.Suite) error {
	rows, err := experiments.PlacementStudy(s, experiments.DefaultPlacementStudy())
	if err != nil {
		return err
	}
	experiments.WritePlacementStudy(os.Stdout, rows)
	return nil
}

func runAblations(s *experiments.Suite) error {
	fmt.Println("Ablations (copy/greedy: mpeg 2kB$/512B SPM; linearization: adpcm 128B$/128B SPM)")
	p, err := s.Pipeline("mpeg", experiments.DM(2048), 512)
	if err != nil {
		return err
	}

	cm, err := experiments.AblateCopyVsMove(p)
	if err != nil {
		return err
	}
	fmt.Printf("  copy-vs-move:    copy %.2f µJ (%d misses)  move %.2f µJ (%d misses)\n",
		cm.CopyMicroJ, cm.CopyMisses, cm.MoveMicroJ, cm.MoveMisses)

	// The faithful formulation's weak relaxation makes large instances
	// intractable for a plain B&B (see LinearizationAblation); run the
	// linearization comparison on the paper's small benchmark instead.
	plin, err := s.Pipeline("adpcm", experiments.DM(128), 128)
	if err != nil {
		return err
	}
	lin, err := experiments.AblateLinearization(plin)
	if err != nil {
		return err
	}
	fmt.Printf("  linearization:   tight %.2f nJ in %v (%v, %d nodes, %d iters)\n",
		lin.TightEnergy, lin.TightTime, lin.TightStatus, lin.TightNodes, lin.TightIters)
	fmt.Printf("                   faithful %.2f nJ in %v (%v, %d nodes, %d iters)\n",
		lin.FaithfulEnergy, lin.FaithfulTime, lin.FaithfulStatus, lin.FaithfulNodes, lin.FaithfulIters)

	gi, err := experiments.AblateGreedyVsILP(p)
	if err != nil {
		return err
	}
	fmt.Printf("  greedy-vs-ilp:   ilp %.2f µJ  greedy %.2f µJ (predicted %.2f vs %.2f nJ)\n",
		gi.ILPMicroJ, gi.GreedyMicroJ, gi.ILPPredicted, gi.GreedyPredicted)
	return nil
}
