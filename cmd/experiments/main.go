// Command experiments regenerates the evaluation of the CASA paper:
// Figure 4 (CASA vs. Steinke on mpeg), Figure 5 (CASA scratchpad vs.
// preloaded loop cache) and Table 1 (overall energy savings) — plus the
// extension studies (hierarchy sensitivity, WCET bounds, overlay, joint
// code+data allocation) and the design-choice ablations called out in
// DESIGN.md.
//
// Studies fan their experiment grids across a bounded worker pool; the
// row output is bit-identical at any worker count. Per-study wall-clock
// is reported on stderr so stdout stays clean for diffing.
//
// Usage:
//
//	experiments [-workers N] [-compare-serial]
//	            [-exp fig4|fig5|table1|sensitivity|wcet|overlay|data|placement|ablations|all]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

type study struct {
	name string
	run  func(*experiments.Suite, io.Writer) error
}

var studies = []study{
	{"fig4", runFig4},
	{"fig5", runFig5},
	{"table1", runTable1},
	{"sensitivity", runSensitivity},
	{"wcet", runWCET},
	{"overlay", runOverlay},
	{"data", runData},
	{"placement", runPlacement},
	{"ablations", runAblations},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig4, fig5, table1, sensitivity, wcet, overlay, data, placement, ablations, all")
	workers := flag.Int("workers", 0,
		fmt.Sprintf("worker-pool width (0 = $%s, else NumCPU)", parallel.EnvWorkers))
	compareSerial := flag.Bool("compare-serial", false,
		"time each study serially (1 worker) and in parallel and report the speedup; suppresses table output and disables the fetch-stream cache so the pool itself is measured")
	flag.Parse()

	var sel []study
	for _, st := range studies {
		if *exp == "all" || *exp == st.name {
			sel = append(sel, st)
		}
	}
	if len(sel) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(1)
	}

	var err error
	if *compareSerial {
		err = compare(sel, *workers)
	} else {
		s := experiments.NewSuite().SetWorkers(*workers)
		for _, st := range sel {
			start := time.Now()
			if err = st.run(s, os.Stdout); err != nil {
				break
			}
			if len(sel) > 1 {
				fmt.Println()
			}
			fmt.Fprintf(os.Stderr, "# %s: %.2fs (%d workers)\n",
				st.name, time.Since(start).Seconds(), s.Workers())
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// compare times each study twice on fresh suites — serial, then at the
// requested width. The fetch-stream cache is disabled so the second run
// does not coast on recordings the first one left behind.
func compare(sel []study, workers int) error {
	if err := os.Setenv("CASA_STREAM_CACHE", "off"); err != nil {
		return err
	}
	width := parallel.Workers(workers)
	fmt.Printf("%-12s %10s %14s %9s\n", "study", "serial(s)", "parallel(s)", "speedup")
	for _, st := range sel {
		start := time.Now()
		if err := st.run(experiments.NewSuite().SetWorkers(1), io.Discard); err != nil {
			return err
		}
		serial := time.Since(start)
		start = time.Now()
		if err := st.run(experiments.NewSuite().SetWorkers(workers), io.Discard); err != nil {
			return err
		}
		par := time.Since(start)
		fmt.Printf("%-12s %10.3f %14.3f %8.2fx  (%d workers)\n",
			st.name, serial.Seconds(), par.Seconds(), serial.Seconds()/par.Seconds(), width)
	}
	return nil
}

func runFig4(s *experiments.Suite, w io.Writer) error {
	cfg := experiments.DefaultFig4()
	rows, err := experiments.Fig4(s, cfg)
	if err != nil {
		return err
	}
	experiments.WriteFig4(w, cfg, rows)
	return nil
}

func runFig5(s *experiments.Suite, w io.Writer) error {
	cfg := experiments.DefaultFig5()
	rows, err := experiments.Fig5(s, cfg)
	if err != nil {
		return err
	}
	experiments.WriteFig5(w, cfg, rows)
	return nil
}

func runTable1(s *experiments.Suite, w io.Writer) error {
	rows, avgs, err := experiments.Table1(s, experiments.DefaultTable1())
	if err != nil {
		return err
	}
	experiments.WriteTable1(w, rows, avgs)
	return nil
}

func runSensitivity(s *experiments.Suite, w io.Writer) error {
	cfg := experiments.DefaultSensitivity()
	rows, err := experiments.Sensitivity(s, cfg)
	if err != nil {
		return err
	}
	experiments.WriteSensitivity(w, cfg, rows)
	return nil
}

func runWCET(s *experiments.Suite, w io.Writer) error {
	rows, err := experiments.WCETStudy(s, experiments.DefaultWCETStudy())
	if err != nil {
		return err
	}
	experiments.WriteWCETStudy(w, rows)
	return nil
}

func runOverlay(s *experiments.Suite, w io.Writer) error {
	rows, err := experiments.OverlayStudy(s, experiments.DefaultOverlayStudy())
	if err != nil {
		return err
	}
	experiments.WriteOverlayStudy(w, rows)
	return nil
}

func runData(s *experiments.Suite, w io.Writer) error {
	rows, err := experiments.DataStudy(s, experiments.DefaultDataStudy())
	if err != nil {
		return err
	}
	experiments.WriteDataStudy(w, rows)
	return nil
}

func runPlacement(s *experiments.Suite, w io.Writer) error {
	rows, err := experiments.PlacementStudy(s, experiments.DefaultPlacementStudy())
	if err != nil {
		return err
	}
	experiments.WritePlacementStudy(w, rows)
	return nil
}

func runAblations(s *experiments.Suite, w io.Writer) error {
	cfg := experiments.DefaultAblations()
	abl, err := experiments.Ablations(s, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablations (copy/greedy: %s %s$/%dB SPM; linearization: %s %s$/%dB SPM)\n",
		cfg.Main.Workload, fmtBytes(cfg.Main.Cache.Size), cfg.Main.SPMSize,
		cfg.Linearization.Workload, fmtBytes(cfg.Linearization.Cache.Size), cfg.Linearization.SPMSize)

	cm := abl.CopyMove
	fmt.Fprintf(w, "  copy-vs-move:    copy %.2f µJ (%d misses)  move %.2f µJ (%d misses)\n",
		cm.CopyMicroJ, cm.CopyMisses, cm.MoveMicroJ, cm.MoveMisses)

	lin := abl.Linearization
	fmt.Fprintf(w, "  linearization:   tight %.2f nJ in %v (%v, %d nodes, %d iters)\n",
		lin.TightEnergy, lin.TightTime, lin.TightStatus, lin.TightNodes, lin.TightIters)
	fmt.Fprintf(w, "                   faithful %.2f nJ in %v (%v, %d nodes, %d iters)\n",
		lin.FaithfulEnergy, lin.FaithfulTime, lin.FaithfulStatus, lin.FaithfulNodes, lin.FaithfulIters)

	gi := abl.GreedyILP
	fmt.Fprintf(w, "  greedy-vs-ilp:   ilp %.2f µJ  greedy %.2f µJ (predicted %.2f vs %.2f nJ)\n",
		gi.ILPMicroJ, gi.GreedyMicroJ, gi.ILPPredicted, gi.GreedyPredicted)
	return nil
}

// fmtBytes renders a byte size the way the tables label caches: whole
// kilobytes as "2kB", everything else as plain bytes.
func fmtBytes(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dkB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
