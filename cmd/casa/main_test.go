package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAllAllocators(t *testing.T) {
	for _, alloc := range []string{"casa", "greedy", "steinke", "loopcache", "none"} {
		if err := run("adpcm", "", 128, 16, 1, 128, alloc, "", "", true, false, false); err != nil {
			t.Errorf("alloc %s: %v", alloc, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("ghost", "", 128, 16, 1, 128, "casa", "", "", false, false, false); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("adpcm", "", 128, 16, 1, 128, "wat", "", "", false, false, false); err == nil {
		t.Error("unknown allocator accepted")
	}
	if err := run("adpcm", "", 100, 16, 1, 128, "casa", "", "", false, false, false); err == nil {
		t.Error("bad cache size accepted")
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "g.dot")
	lp := filepath.Join(dir, "m.lp")
	if err := run("adpcm", "", 128, 16, 1, 128, "casa", dot, lp, false, false, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range []string{dot, lp} {
		st, err := os.Stat(f)
		if err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty: %v", f, err)
		}
	}
}

func TestRunFromASMFile(t *testing.T) {
	dir := t.TempDir()
	src := `
func main
loop:
    code 8
    bloop loop, out, 100
out:
    ret
`
	path := filepath.Join(dir, "prog.casm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, 128, 16, 1, 64, "casa", "", "", false, true, true); err != nil {
		t.Fatalf("run from file: %v", err)
	}
	if err := run("", filepath.Join(dir, "nope.casm"), 128, 16, 1, 64, "casa", "", "", false, false, false); err == nil {
		t.Error("missing file accepted")
	}
}
