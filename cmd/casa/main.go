// Command casa runs one scratchpad-allocation experiment: it loads a
// bundled workload, forms traces, profiles the cache, allocates with the
// selected technique and reports the simulated energy breakdown.
//
// Usage:
//
//	casa -workload mpeg -cache 2048 -spm 512 [-alloc casa|greedy|steinke|loopcache|none]
//	     [-line 16] [-assoc 1] [-dot conflict.dot] [-lp model.lp] [-v]
//	     [-trace] [-dump-cache] [-heatmap] [-pprof :6060]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/obs"
)

func main() {
	var (
		wl        = flag.String("workload", "adpcm", "bundled workload: adpcm, g721, mpeg")
		file      = flag.String("file", "", "program in asm format (overrides -workload)")
		cache     = flag.Int("cache", 2048, "I-cache size in bytes")
		line      = flag.Int("line", experiments.DefaultLine, "cache line size in bytes")
		assoc     = flag.Int("assoc", 1, "cache associativity")
		spm       = flag.Int("spm", 256, "scratchpad (or loop cache) size in bytes")
		alloc     = flag.String("alloc", "casa", "allocator: casa, greedy, steinke, loopcache, none")
		dotOut    = flag.String("dot", "", "write the conflict graph in DOT form to this file")
		lpOut     = flag.String("lp", "", "write the CASA ILP in CPLEX LP format to this file")
		verb      = flag.Bool("v", false, "print the per-trace allocation")
		traceFlag = flag.Bool("trace", false,
			fmt.Sprintf("log solver progress to stderr (same as %s=1)", obs.EnvTrace))
		dumpCache = flag.Bool("dump-cache", false,
			"dump the profiling run's final per-set cache state and statistics")
		heatmap = flag.Bool("heatmap", false,
			"print the conflict graph as a text heatmap (victim × evictor, log10 intensity)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	)
	flag.Parse()

	if *traceFlag {
		obs.EnableTrace(os.Stderr)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "casa: pprof:", err)
			}
		}()
	}

	err := run(*wl, *file, *cache, *line, *assoc, *spm, *alloc, *dotOut, *lpOut,
		*verb, *dumpCache, *heatmap)
	obs.MaybeDumpMetrics(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casa:", err)
		os.Exit(1)
	}
}

// heatmapMaxDim bounds the heatmap to a terminal-friendly matrix; the
// header reports how many conflicting vertices exist beyond the cut.
const heatmapMaxDim = 48

func run(wl, file string, cacheSize, line, assoc, spm int, alloc, dotOut, lpOut string,
	verbose, dumpCache, heatmap bool) error {
	ctx := context.Background()
	spec := experiments.CacheSpec{Size: cacheSize, Line: line, Assoc: assoc}
	var p *experiments.Pipeline
	var err error
	if file != "" {
		f, ferr := os.Open(file)
		if ferr != nil {
			return ferr
		}
		prog, perr := asm.Parse(f, file)
		f.Close()
		if perr != nil {
			return perr
		}
		wl = prog.Name
		p, err = experiments.PrepareProgram(ctx, prog, spec, spm)
	} else {
		p, err = experiments.Prepare(ctx, wl, spec, spm)
	}
	if err != nil {
		return err
	}
	prog := p.Prog
	fmt.Printf("workload %s: %d bytes, %d blocks, %d traces, %d conflict edges\n",
		wl, prog.Size(), prog.NumBlocks(), len(p.Set.Traces), p.Graph.NumEdges())
	fmt.Printf("hierarchy: %dB %d-way cache (%dB lines), %dB scratchpad\n",
		cacheSize, assoc, line, spm)

	if dotOut != "" {
		f, err := os.Create(dotOut)
		if err != nil {
			return err
		}
		if err := p.Graph.WriteDOT(f, nil); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("conflict graph written to %s\n", dotOut)
	}
	if lpOut != "" {
		prm := core.Params{
			SPMSize:    spm,
			ESPHit:     p.Cost.SPMAccess,
			ECacheHit:  p.Cost.CacheHit,
			ECacheMiss: p.Cost.CacheMiss,
		}
		m, _, err := core.BuildModel(p.Set, p.Graph, prm)
		if err != nil {
			return err
		}
		f, err := os.Create(lpOut)
		if err != nil {
			return err
		}
		if err := ilp.WriteLP(f, m); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("ILP written to %s\n", lpOut)
	}

	if heatmap {
		fmt.Println()
		if err := p.Graph.WriteHeatmap(os.Stdout, heatmapMaxDim); err != nil {
			return err
		}
	}
	if dumpCache {
		fmt.Println()
		if p.Baseline.Cache == nil {
			return fmt.Errorf("no cache state kept for the profiling run")
		}
		if err := p.Baseline.Cache.DumpState(os.Stdout); err != nil {
			return err
		}
	}

	base, err := p.RunCacheOnly(ctx)
	if err != nil {
		return err
	}
	var out *experiments.Outcome
	switch alloc {
	case "casa":
		out, err = p.RunCASA(ctx)
	case "greedy":
		out, err = p.RunCASAGreedy(ctx)
	case "steinke":
		out, err = p.RunSteinke(ctx)
	case "loopcache":
		out, err = p.RunLoopCache(ctx)
	case "none":
		out = base
	default:
		return fmt.Errorf("unknown allocator %q", alloc)
	}
	if err != nil {
		return err
	}

	r := out.Result
	fmt.Printf("\nallocator %s: %d objects placed, %d/%d bytes used",
		out.Allocator, out.PlacedTraces, out.UsedBytes, spm)
	if out.SolverNodes > 0 {
		fmt.Printf(" (%d B&B nodes)", out.SolverNodes)
	}
	fmt.Println()
	fmt.Printf("fetches          %12d\n", r.Fetches)
	fmt.Printf("scratchpad       %12d\n", r.SPMAccesses)
	fmt.Printf("loop cache       %12d\n", r.LoopCacheAccesses)
	fmt.Printf("I-cache accesses %12d\n", r.CacheAccesses)
	fmt.Printf("I-cache hits     %12d\n", r.CacheHits)
	fmt.Printf("I-cache misses   %12d (%d cold, %d conflict)\n",
		r.CacheMisses, r.ColdMisses, r.ConflictMisses)
	fmt.Printf("fetch cycles     %12d (%.3f cycles/fetch)\n", r.Cycles, r.CyclesPerFetch())
	fmt.Printf("energy           %12.2f µJ (cache-only baseline: %.2f µJ, %+.1f%%)\n",
		out.EnergyMicroJ, base.EnergyMicroJ,
		100*(out.EnergyMicroJ-base.EnergyMicroJ)/base.EnergyMicroJ)

	if verbose {
		fmt.Println("\nper-trace placement (hot traces):")
		for _, tr := range p.Set.Traces {
			if tr.Fetches == 0 {
				continue
			}
			loc := "cache"
			if r.PerMO[tr.ID].SPM > 0 {
				loc = "SPM"
			} else if r.PerMO[tr.ID].LoopCache > 0 {
				loc = "LC"
			}
			first := tr.Blocks[0]
			fn := prog.Func(first.Func).Name
			fmt.Printf("  trace %3d %-6s %5dB f=%-9d misses=%-7d at %s\n",
				tr.ID, loc, tr.RawBytes, tr.Fetches, r.PerMO[tr.ID].Misses, fn)
		}
	}
	return nil
}
