package repro

import (
	"context"
	"io"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (run them with -v style output via cmd/experiments; here they
// are measured as testing.B benches) plus the ablation studies DESIGN.md
// calls out, and a handful of micro-benchmarks for the substrates.

// BenchmarkFig4CASAvsSteinke regenerates Figure 4: CASA vs. Steinke's
// algorithm on mpeg with a 2 kB direct-mapped I-cache, scratchpad sizes
// 128–1024 bytes.
func BenchmarkFig4CASAvsSteinke(b *testing.B) {
	s := experiments.NewSuite()
	cfg := experiments.DefaultFig4()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4(context.Background(), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.WriteFig4(benchWriter(b), cfg, rows)
		}
	}
}

// BenchmarkFig4Incremental measures the warm-started grid end to end:
// a fresh suite per iteration, so every iteration re-runs the cell
// planner, the cross-cell cutoff transfers, and the shared presolve
// session instead of hitting the suite's allocation memo (which
// BenchmarkFig4CASAvsSteinke does after its first iteration). This is
// the number the incremental machinery is accountable for in CI.
func BenchmarkFig4Incremental(b *testing.B) {
	cfg := experiments.DefaultFig4()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		rows, err := experiments.Fig4(context.Background(), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.WriteFig4(benchWriter(b), cfg, rows)
		}
	}
}

// BenchmarkFig5CASAvsLoopCache regenerates Figure 5: the CASA-allocated
// scratchpad vs. the Ross-preloaded loop cache on mpeg.
func BenchmarkFig5CASAvsLoopCache(b *testing.B) {
	s := experiments.NewSuite()
	cfg := experiments.DefaultFig5()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(context.Background(), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.WriteFig5(benchWriter(b), cfg, rows)
		}
	}
}

// BenchmarkTable1 regenerates Table 1: overall energy savings across
// adpcm, g721 and mpeg with their per-benchmark cache sizes.
func BenchmarkTable1(b *testing.B) {
	s := experiments.NewSuite()
	cfg := experiments.DefaultTable1()
	for i := 0; i < b.N; i++ {
		rows, avgs, err := experiments.Table1(context.Background(), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.WriteTable1(benchWriter(b), rows, avgs)
		}
	}
}

// BenchmarkAblationLinearization compares the paper's faithful
// linearization (13)–(15) with binary L against the tight continuous-L
// variant on the adpcm/128 configuration (the faithful relaxation is too
// weak for plain B&B on the larger graphs; see
// experiments.LinearizationAblation).
func BenchmarkAblationLinearization(b *testing.B) {
	s := experiments.NewSuite()
	p, err := s.Pipeline(context.Background(), "adpcm", experiments.DM(128), 128)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblateLinearization(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("tight: %v (%d nodes) faithful: %v (%d nodes)",
				r.TightTime, r.TightNodes, r.FaithfulTime, r.FaithfulNodes)
		}
	}
}

// BenchmarkAblationGreedyVsILP compares exact and greedy CASA on the
// mpeg/512 configuration.
func BenchmarkAblationGreedyVsILP(b *testing.B) {
	s := experiments.NewSuite()
	p, err := s.Pipeline(context.Background(), "mpeg", experiments.DM(2048), 512)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblateGreedyVsILP(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("ilp: %.2f µJ greedy: %.2f µJ", r.ILPMicroJ, r.GreedyMicroJ)
		}
	}
}

// BenchmarkAblationCopyVsMove isolates the layout-perturbation effect of
// move semantics on the mpeg/512 configuration.
func BenchmarkAblationCopyVsMove(b *testing.B) {
	s := experiments.NewSuite()
	p, err := s.Pipeline(context.Background(), "mpeg", experiments.DM(2048), 512)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblateCopyVsMove(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("copy: %.2f µJ (%d misses) move: %.2f µJ (%d misses)",
				r.CopyMicroJ, r.CopyMisses, r.MoveMicroJ, r.MoveMisses)
		}
	}
}

// BenchmarkSensitivity sweeps CASA across cache organizations
// (associativity, replacement policy, line size) on g721 — the paper's
// "generic algorithm" claim made measurable.
func BenchmarkSensitivity(b *testing.B) {
	s := experiments.NewSuite()
	cfg := experiments.DefaultSensitivity()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sensitivity(context.Background(), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.WriteSensitivity(benchWriter(b), cfg, rows)
		}
	}
}

// BenchmarkSensitivityIncremental measures the warm-started sensitivity
// grid end to end: a fresh suite per iteration, so every iteration
// re-runs the cell planner, the cutoff and basis transfers, and the
// shared presolve session instead of hitting the suite's allocation
// memo (which BenchmarkSensitivity does after its first iteration).
// Together with BenchmarkFig4Incremental this is the number the
// incremental machinery is accountable for in CI — the sensitivity
// cells share a trace partition across most of the cache sweep, so
// this grid is where basis transfer pays.
func BenchmarkSensitivityIncremental(b *testing.B) {
	cfg := experiments.DefaultSensitivity()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		rows, err := experiments.Sensitivity(context.Background(), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.WriteSensitivity(benchWriter(b), cfg, rows)
		}
	}
}

// ---- Substrate micro-benchmarks -----------------------------------------

// BenchmarkProfileMpeg measures the instruction-fetch interpreter on the
// largest workload (~2.7M fetches per run).
func BenchmarkProfileMpeg(b *testing.B) {
	p, err := workload.Load("mpeg")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ProfileProgram(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheAccess measures the raw I-cache model under thrashing:
// a pseudo-random 64 kB working set overwhelms the 2 kB cache, so the
// miss, eviction and victim-attribution paths dominate (the sequential
// same-line hits the old stride pattern measured now have their own
// benchmark below). Each op is a batch of 32768 accesses so the ns/op
// stays well above timer resolution even at -benchtime=1x, where the
// CI gate runs it.
func BenchmarkCacheAccess(b *testing.B) {
	c, err := cache.New(cache.Config{SizeBytes: 2048, LineBytes: 16, Assoc: 2})
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 15
	addrs := make([]uint32, n)
	rng := uint64(0x9e3779b97f4a7c15)
	for i := range addrs {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		addrs[i] = uint32(rng) % (64 << 10) &^ 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, a := range addrs {
			c.Access(a, j&7)
		}
	}
}

// BenchmarkCacheAccessSameLine measures repeated fetches within one
// cache line — the case the MRU fast path short-circuits and the
// line-granular simulator turns into bulk AccessN accounting. Batched
// like BenchmarkCacheAccess so a single op is measurable.
func BenchmarkCacheAccessSameLine(b *testing.B) {
	c, err := cache.New(cache.Config{SizeBytes: 2048, LineBytes: 16, Assoc: 2})
	if err != nil {
		b.Fatal(err)
	}
	c.Access(0x40, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1<<15; j++ {
			c.Access(0x40+uint32(j&3)*4, 0)
		}
	}
}

// BenchmarkTraceReplay measures the line-granular trace-replay engine
// end to end on the largest workload: the block trace is recorded (and
// memoized) once, then every iteration replays it through the memory
// hierarchy under a fresh 2 kB direct-mapped cache.
func BenchmarkTraceReplay(b *testing.B) {
	p, err := workload.Load("mpeg")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := sim.CachedProfile(p)
	if err != nil {
		b.Fatal(err)
	}
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: 512, LineBytes: 16})
	if err != nil {
		b.Fatal(err)
	}
	lay, err := layout.New(set, nil, layout.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ccfg := cache.Config{SizeBytes: 2048, LineBytes: 16, Assoc: 1}
	cost, err := energy.NewCostModel(energy.Config{Cache: energy.CacheGeometry{
		SizeBytes: ccfg.SizeBytes, LineBytes: ccfg.LineBytes, Assoc: ccfg.Assoc}})
	if err != nil {
		b.Fatal(err)
	}
	cfg := memsim.Config{Cache: ccfg, Cost: cost, TrackConflicts: true}
	if _, err := memsim.Run(p, lay, cfg); err != nil { // record + memoize the trace
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := memsim.Run(p, lay, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceFormationMpeg measures trace formation on mpeg.
func BenchmarkTraceFormationMpeg(b *testing.B) {
	p, err := workload.Load("mpeg")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Build(p, prof, trace.Options{MaxBytes: 512, LineBytes: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCASAILPMpeg measures one full CASA ILP solve (model build +
// branch & bound) on the mpeg/1024 configuration.
func BenchmarkCASAILPMpeg(b *testing.B) {
	s := experiments.NewSuite()
	p, err := s.Pipeline(context.Background(), "mpeg", experiments.DM(2048), 1024)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := p.RunCASA(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveCASAILP measures the branch & bound solver alone — no
// model build, no allocation decode — on the mpeg/1024 model, the
// largest exact solve of the evaluation. This is the benchmark the
// solver work-counter gate (cmd/benchdiff -counter-threshold) pairs
// with: wall time catches slow code, node counts catch a weaker search.
func BenchmarkSolveCASAILP(b *testing.B) {
	s := experiments.NewSuite()
	p, err := s.Pipeline(context.Background(), "mpeg", experiments.DM(2048), 1024)
	if err != nil {
		b.Fatal(err)
	}
	prm := core.Params{SPMSize: p.SPMSize, ESPHit: p.Cost.SPMAccess,
		ECacheHit: p.Cost.CacheHit, ECacheMiss: p.Cost.CacheMiss}
	m, _, err := core.BuildModel(p.Set, p.Graph, prm)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := ilp.Solve(context.Background(), m, prm.Solver)
		if err != nil || sol.Status != ilp.Optimal {
			b.Fatalf("%v %v", err, sol.Status)
		}
	}
}

// BenchmarkSimplexKnapsackLP measures the LP solver on a pure knapsack
// relaxation with 200 variables.
func BenchmarkSimplexKnapsackLP(b *testing.B) {
	m := ilp.NewModel()
	e := ilp.LinExpr{}
	obj := ilp.LinExpr{}
	for i := 0; i < 200; i++ {
		v := m.AddContinuous("", 0, 1)
		e = e.Add(float64(1+i%13), v)
		obj = obj.Add(float64(2+(i*7)%19), v)
	}
	m.AddConstraint("cap", e, ilp.LE, 250)
	m.SetObjective(obj, ilp.Maximize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol, err := ilp.SolveLP(context.Background(), m, ilp.Options{})
		if err != nil || sol.Status != ilp.Optimal {
			b.Fatalf("%v %v", err, sol.Status)
		}
	}
}

// benchWriter routes one-time experiment output through b.Log so results
// appear with -v without polluting benchmark timing lines.
func benchWriter(b *testing.B) io.Writer { return logWriter{b} }

type logWriter struct{ b *testing.B }

func (w logWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

// BenchmarkWCETStudy regenerates the WCET-tightening study: static
// fetch-cycle bounds for cache-only vs. CASA layouts on all three
// benchmarks.
func BenchmarkWCETStudy(b *testing.B) {
	s := experiments.NewSuite()
	cfg := experiments.DefaultWCETStudy()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WCETStudy(context.Background(), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.WriteWCETStudy(benchWriter(b), rows)
		}
	}
}

// BenchmarkOverlayStudy regenerates the overlay (dynamic copying) study —
// the paper's §7 future work: static CASA vs. phased scratchpad
// reloading.
func BenchmarkOverlayStudy(b *testing.B) {
	s := experiments.NewSuite()
	cfg, err := experiments.DefaultOverlayStudy()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OverlayStudy(context.Background(), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.WriteOverlayStudy(benchWriter(b), rows)
		}
	}
}

// BenchmarkDataStudy regenerates the data-preloading study — the paper's
// other §7 future work: joint code+data scratchpad allocation.
func BenchmarkDataStudy(b *testing.B) {
	s := experiments.NewSuite()
	cfg := experiments.DefaultDataStudy()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DataStudy(context.Background(), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.WriteDataStudy(benchWriter(b), rows)
		}
	}
}

// BenchmarkPlacementStudy regenerates the code-placement comparison: how
// much of CASA's win cache-conscious reordering ([10,14]) achieves alone.
func BenchmarkPlacementStudy(b *testing.B) {
	s := experiments.NewSuite()
	cfg := experiments.DefaultPlacementStudy()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PlacementStudy(context.Background(), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.WritePlacementStudy(benchWriter(b), rows)
		}
	}
}
