// Package trace partitions a program into traces, the memory objects of
// the CASA paper (§3.2): straight-line sequences of basic blocks connected
// by fall-through edges, grown greedily along hot paths (in the style of
// Tomiyama & Yasuura's trace generation), bounded in size so they fit the
// scratchpad, and padded with NOPs to cache-line boundaries so that every
// cache miss is attributable to exactly one trace.
//
// Each trace is an atomic unit: because a trace always ends with an
// unconditional transfer (an existing jump/return, or an appended jump),
// it can be placed anywhere in memory — in particular, copied to the
// scratchpad — without touching any other trace.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/sim"
)

// Options configures trace formation.
type Options struct {
	// MaxBytes caps the raw size (instructions plus a possible appended
	// jump, without NOP padding) of a trace. It is normally the scratchpad
	// capacity. Single blocks larger than the cap form oversized traces,
	// which allocators simply cannot place in the scratchpad.
	MaxBytes int
	// LineBytes is the cache line size traces are padded to.
	LineBytes int
}

func (o Options) validate() error {
	if o.MaxBytes < ir.InstrSize {
		return fmt.Errorf("trace: MaxBytes %d < instruction size", o.MaxBytes)
	}
	if o.LineBytes < ir.InstrSize || o.LineBytes&(o.LineBytes-1) != 0 {
		return fmt.Errorf("trace: LineBytes %d not a power of two ≥ %d", o.LineBytes, ir.InstrSize)
	}
	return nil
}

// Trace is one memory object.
type Trace struct {
	// ID is the trace's index within its Set.
	ID int
	// Blocks lists the member blocks in layout order; consecutive entries
	// are connected by fall-through edges.
	Blocks []ir.BlockRef
	// HasJump reports whether an unconditional jump is appended after the
	// last block, required when that block's fall-through successor lives
	// in another trace.
	HasJump bool
	// RawBytes is the trace size in bytes including the appended jump but
	// excluding NOP padding. This is S(x_i): NOPs are stripped before a
	// trace is copied to the scratchpad.
	RawBytes int
	// PaddedBytes is RawBytes rounded up to a cache-line multiple; the
	// main-memory image uses this size so every trace starts and ends on a
	// line boundary.
	PaddedBytes int
	// Fetches is f_i: the profiled number of instruction fetches within
	// the trace, including executions of the appended jump.
	Fetches int64
}

// Oversized reports whether the trace exceeds the formation cap (and hence
// can never be placed in the scratchpad).
func (t *Trace) Oversized(maxBytes int) bool { return t.RawBytes > maxBytes }

// Set is a complete partition of a program's blocks into traces.
type Set struct {
	// Prog is the partitioned program.
	Prog *ir.Program
	// Traces lists the traces; Traces[i].ID == i. Order follows the
	// first-member block's textual position, so the main-memory image
	// resembles the original program.
	Traces []*Trace
	// Opt echoes the formation options.
	Opt Options

	blockTrace  [][]int // [func][block] -> trace ID
	blockOffset [][]int // [func][block] -> byte offset within trace
}

// TraceOf returns the trace containing the referenced block.
func (s *Set) TraceOf(ref ir.BlockRef) *Trace {
	return s.Traces[s.blockTrace[ref.Func][ref.Block]]
}

// TraceIDOf returns the ID of the trace containing the referenced block.
func (s *Set) TraceIDOf(ref ir.BlockRef) int {
	return s.blockTrace[ref.Func][ref.Block]
}

// OffsetOf returns the block's byte offset within its trace.
func (s *Set) OffsetOf(ref ir.BlockRef) int {
	return s.blockOffset[ref.Func][ref.Block]
}

// TotalRawBytes sums the raw sizes of all traces.
func (s *Set) TotalRawBytes() int {
	n := 0
	for _, t := range s.Traces {
		n += t.RawBytes
	}
	return n
}

// TotalPaddedBytes sums the padded sizes of all traces (the main-memory
// image size).
func (s *Set) TotalPaddedBytes() int {
	n := 0
	for _, t := range s.Traces {
		n += t.PaddedBytes
	}
	return n
}

// Build partitions p into traces guided by the profile.
//
// Seeds are chosen hottest-first; each seed grows backward and forward
// along the hottest available fall-through edges while the size cap holds.
// Every block ends up in exactly one trace, including never-executed ones
// (they form cold traces grouped by textual adjacency).
func Build(p *ir.Program, prof *sim.Profile, opt Options) (*Set, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	s := &Set{Prog: p, Opt: opt}
	s.blockTrace = make([][]int, len(p.Funcs))
	s.blockOffset = make([][]int, len(p.Funcs))
	for i, f := range p.Funcs {
		s.blockTrace[i] = make([]int, len(f.Blocks))
		s.blockOffset[i] = make([]int, len(f.Blocks))
		for j := range s.blockTrace[i] {
			s.blockTrace[i][j] = -1
		}
	}

	// Seed order: hottest first, textual order breaking ties.
	refs := p.BlockRefs()
	sort.SliceStable(refs, func(i, j int) bool {
		ci, cj := prof.BlockCount(refs[i]), prof.BlockCount(refs[j])
		if ci != cj {
			return ci > cj
		}
		return refs[i].Less(refs[j])
	})

	assigned := func(ref ir.BlockRef) bool {
		return s.blockTrace[ref.Func][ref.Block] >= 0
	}

	var rawTraces [][]ir.BlockRef
	for _, seed := range refs {
		if assigned(seed) {
			continue
		}
		members := growTrace(p, prof, seed, assigned, opt.MaxBytes)
		id := len(rawTraces)
		for _, m := range members {
			s.blockTrace[m.Func][m.Block] = id
		}
		rawTraces = append(rawTraces, members)
	}

	// Reorder traces by textual position of their first member so the
	// main-memory image stays program-like, then renumber.
	order := make([]int, len(rawTraces))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rawTraces[order[a]][0].Less(rawTraces[order[b]][0])
	})
	renum := make([]int, len(rawTraces))
	for newID, oldID := range order {
		renum[oldID] = newID
	}
	for fi := range s.blockTrace {
		for bi := range s.blockTrace[fi] {
			s.blockTrace[fi][bi] = renum[s.blockTrace[fi][bi]]
		}
	}

	s.Traces = make([]*Trace, len(rawTraces))
	for newID, oldID := range order {
		s.Traces[newID] = s.finalize(newID, rawTraces[oldID], prof)
	}
	return s, nil
}

// growTrace builds one trace starting from seed: first backward along the
// hottest fall-through predecessors, then forward along fall-through
// successors.
func growTrace(p *ir.Program, prof *sim.Profile, seed ir.BlockRef,
	assigned func(ir.BlockRef) bool, maxBytes int) []ir.BlockRef {

	f := p.Func(seed.Func)
	members := []ir.BlockRef{seed}
	// Reserve room for a possibly-appended jump.
	size := f.Block(seed.Block).Size() + ir.InstrSize

	// Backward growth: find the hottest unassigned predecessor whose
	// fall-through path enters the current first member.
	for {
		first := members[0]
		var best ir.BlockRef
		var bestCount int64 = -1
		for _, b := range f.Blocks {
			if b.FallThrough != first.Block {
				continue
			}
			switch b.Term() {
			case ir.TermFallThrough, ir.TermBranch, ir.TermCall:
				// These leave along the fall-through path.
			default:
				continue
			}
			ref := ir.BlockRef{Func: f.ID, Block: b.ID}
			if assigned(ref) || ref == first {
				continue
			}
			// The candidate must not already be a member (loops).
			if contains(members, ref) {
				continue
			}
			c := prof.FallCount(ref, first)
			if c > bestCount || (c == bestCount && ref.Less(best)) {
				best, bestCount = ref, c
			}
		}
		if bestCount < 0 {
			break
		}
		bsz := f.Block(best.Block).Size()
		if size+bsz > maxBytes {
			break
		}
		size += bsz
		members = append([]ir.BlockRef{best}, members...)
	}

	// Forward growth along the fall-through chain.
	for {
		last := members[len(members)-1]
		lb := f.Block(last.Block)
		if lb.Term() == ir.TermJump || lb.Term() == ir.TermReturn {
			break // no fall-through path to extend along
		}
		next := ir.BlockRef{Func: f.ID, Block: lb.FallThrough}
		if assigned(next) || contains(members, next) {
			break
		}
		nsz := f.Block(next.Block).Size()
		if size+nsz > maxBytes {
			break
		}
		size += nsz
		members = append(members, next)
	}
	return members
}

func contains(refs []ir.BlockRef, ref ir.BlockRef) bool {
	for _, r := range refs {
		if r == ref {
			return true
		}
	}
	return false
}

// finalize computes sizes, offsets, the appended jump and f_i for one
// trace.
func (s *Set) finalize(id int, members []ir.BlockRef, prof *sim.Profile) *Trace {
	t := &Trace{ID: id, Blocks: members}
	off := 0
	for _, m := range members {
		s.blockOffset[m.Func][m.Block] = off
		off += s.Prog.Func(m.Func).Block(m.Block).Size()
	}
	t.RawBytes = off

	last := members[len(members)-1]
	lb := s.Prog.Func(last.Func).Block(last.Block)
	switch lb.Term() {
	case ir.TermFallThrough, ir.TermBranch, ir.TermCall:
		// The fall-through successor lives in another trace (forward
		// growth stopped), so a jump must be appended.
		t.HasJump = true
		t.RawBytes += ir.InstrSize
	}

	t.PaddedBytes = (t.RawBytes + s.Opt.LineBytes - 1) / s.Opt.LineBytes * s.Opt.LineBytes

	for _, m := range members {
		t.Fetches += prof.BlockCount(m) * int64(len(s.Prog.Func(m.Func).Block(m.Block).Instrs))
	}
	if t.HasJump {
		// The appended jump executes whenever control leaves the last
		// block along its fall-through path.
		next := ir.BlockRef{Func: last.Func, Block: lb.FallThrough}
		t.Fetches += prof.FallCount(last, next)
	}
	return t
}

// Validate checks the set's internal invariants: every block belongs to
// exactly one trace, members are chained by fall-through edges, sizes and
// offsets are consistent, and padding is line-aligned. It is used by tests
// and available to callers as a cheap sanity check.
func (s *Set) Validate() error {
	seen := make(map[ir.BlockRef]int)
	for _, t := range s.Traces {
		if len(t.Blocks) == 0 {
			return fmt.Errorf("trace %d is empty", t.ID)
		}
		off := 0
		for i, m := range t.Blocks {
			if prev, dup := seen[m]; dup {
				return fmt.Errorf("block %v in traces %d and %d", m, prev, t.ID)
			}
			seen[m] = t.ID
			if s.TraceIDOf(m) != t.ID {
				return fmt.Errorf("block %v maps to trace %d, member of %d", m, s.TraceIDOf(m), t.ID)
			}
			if s.OffsetOf(m) != off {
				return fmt.Errorf("block %v offset %d, want %d", m, s.OffsetOf(m), off)
			}
			b := s.Prog.Func(m.Func).Block(m.Block)
			off += b.Size()
			if i+1 < len(t.Blocks) {
				nxt := t.Blocks[i+1]
				if m.Func != nxt.Func {
					return fmt.Errorf("trace %d crosses functions", t.ID)
				}
				switch b.Term() {
				case ir.TermFallThrough, ir.TermBranch, ir.TermCall:
					if b.FallThrough != nxt.Block {
						return fmt.Errorf("trace %d: %v does not fall through to %v", t.ID, m, nxt)
					}
				default:
					return fmt.Errorf("trace %d: %v (%v) cannot precede %v", t.ID, m, b.Term(), nxt)
				}
			}
		}
		wantRaw := off
		if t.HasJump {
			wantRaw += ir.InstrSize
		}
		if t.RawBytes != wantRaw {
			return fmt.Errorf("trace %d RawBytes %d, want %d", t.ID, t.RawBytes, wantRaw)
		}
		if t.PaddedBytes < t.RawBytes || t.PaddedBytes%s.Opt.LineBytes != 0 {
			return fmt.Errorf("trace %d PaddedBytes %d not aligned past %d", t.ID, t.PaddedBytes, t.RawBytes)
		}
	}
	if want := s.Prog.NumBlocks(); len(seen) != want {
		return fmt.Errorf("%d blocks covered, program has %d", len(seen), want)
	}
	return nil
}
