package trace

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
)

func buildAndProfile(t *testing.T, pb *ir.ProgramBuilder) (*ir.Program, *sim.Profile) {
	t.Helper()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatalf("ProfileProgram: %v", err)
	}
	return p, prof
}

func opts() Options { return Options{MaxBytes: 256, LineBytes: 16} }

func TestOptionsValidate(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	pb.Func("main").Block("a").ALU(1).Return()
	p, prof := buildAndProfile(t, pb)
	for _, bad := range []Options{
		{MaxBytes: 0, LineBytes: 16},
		{MaxBytes: 256, LineBytes: 0},
		{MaxBytes: 256, LineBytes: 12},
	} {
		if _, err := Build(p, prof, bad); err == nil {
			t.Errorf("Build accepted options %+v", bad)
		}
	}
}

func TestSingleBlockProgram(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	pb.Func("main").Block("a").ALU(3).Return()
	p, prof := buildAndProfile(t, pb)
	s, err := Build(p, prof, opts())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(s.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(s.Traces))
	}
	tr := s.Traces[0]
	if tr.HasJump {
		t.Error("return block needs no appended jump")
	}
	if tr.RawBytes != 4*ir.InstrSize {
		t.Errorf("RawBytes = %d, want %d", tr.RawBytes, 4*ir.InstrSize)
	}
	if tr.PaddedBytes != 16 {
		t.Errorf("PaddedBytes = %d, want 16", tr.PaddedBytes)
	}
	if tr.Fetches != 4 {
		t.Errorf("Fetches = %d, want 4", tr.Fetches)
	}
}

func TestFallThroughChainMerges(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("a").ALU(2)
	f.Block("b").ALU(2)
	f.Block("c").ALU(2).Return()
	p, prof := buildAndProfile(t, pb)
	s, err := Build(p, prof, opts())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(s.Traces) != 1 {
		t.Fatalf("chain should merge into one trace, got %d", len(s.Traces))
	}
	tr := s.Traces[0]
	if len(tr.Blocks) != 3 {
		t.Fatalf("trace has %d blocks, want 3", len(tr.Blocks))
	}
	// Offsets are cumulative.
	if s.OffsetOf(tr.Blocks[0]) != 0 || s.OffsetOf(tr.Blocks[1]) != 8 || s.OffsetOf(tr.Blocks[2]) != 16 {
		t.Errorf("offsets wrong: %d %d %d",
			s.OffsetOf(tr.Blocks[0]), s.OffsetOf(tr.Blocks[1]), s.OffsetOf(tr.Blocks[2]))
	}
}

func TestSizeCapSplitsChain(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("a").ALU(10) // 40B
	f.Block("b").ALU(10) // 40B
	f.Block("c").ALU(10).Return()
	p, prof := buildAndProfile(t, pb)
	s, err := Build(p, prof, Options{MaxBytes: 64, LineBytes: 16})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(s.Traces) < 2 {
		t.Fatalf("64B cap should split 120B chain, got %d traces", len(s.Traces))
	}
	for _, tr := range s.Traces {
		if tr.RawBytes > 64 {
			t.Errorf("trace %d RawBytes %d exceeds cap", tr.ID, tr.RawBytes)
		}
	}
}

func TestOversizedBlockBecomesOversizedTrace(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("big").ALU(100).Return() // 400B block
	p, prof := buildAndProfile(t, pb)
	s, err := Build(p, prof, Options{MaxBytes: 64, LineBytes: 16})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(s.Traces) != 1 {
		t.Fatalf("got %d traces", len(s.Traces))
	}
	if !s.Traces[0].Oversized(64) {
		t.Error("400B trace should be oversized for 64B cap")
	}
}

func TestAppendedJumpOnHotExit(t *testing.T) {
	// loop body branches back; loop exit falls through to a cold epilogue
	// placed in another trace when the cap forces a split.
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("hot").Code(12).Branch("hot", "cold", ir.Loop{Trips: 100}) // 13 instrs = 52B
	f.Block("cold").Code(12)                                           // 48B
	f.Block("end").Return()
	p, prof := buildAndProfile(t, pb)
	s, err := Build(p, prof, Options{MaxBytes: 64, LineBytes: 16})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	hot := ir.BlockRef{Func: 0, Block: 0}
	cold := ir.BlockRef{Func: 0, Block: 1}
	if s.TraceIDOf(hot) == s.TraceIDOf(cold) {
		t.Fatal("cap should separate hot and cold")
	}
	hotTrace := s.TraceOf(hot)
	if !hotTrace.HasJump {
		t.Error("hot trace ends in a conditional branch: needs appended jump")
	}
	// f_i = 100 executions * 13 instrs + 1 fall-through exit (the appended
	// jump executes once).
	want := int64(100*13 + 1)
	if hotTrace.Fetches != want {
		t.Errorf("hot trace fetches = %d, want %d", hotTrace.Fetches, want)
	}
}

func TestHotSeedGrowsAcrossBranchFallThrough(t *testing.T) {
	// A conditional branch block inside a trace: the fall-through arm can
	// stay in the same trace.
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("head").ALU(2).Branch("rare", "common", ir.Biased{P: 0.05, Seed: 3})
	f.Block("common").ALU(4)
	f.Block("tail").ALU(2).Branch("head", "exit", ir.Loop{Trips: 500})
	f.Block("exit").Return()
	f.Block("rare").ALU(6).Jump("tail")
	p, prof := buildAndProfile(t, pb)
	s, err := Build(p, prof, opts())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	head := ir.BlockRef{Func: 0, Block: 0}
	common := ir.BlockRef{Func: 0, Block: 1}
	tail := ir.BlockRef{Func: 0, Block: 2}
	if s.TraceIDOf(head) != s.TraceIDOf(common) || s.TraceIDOf(common) != s.TraceIDOf(tail) {
		t.Errorf("hot path not merged: head=%d common=%d tail=%d",
			s.TraceIDOf(head), s.TraceIDOf(common), s.TraceIDOf(tail))
	}
	rare := ir.BlockRef{Func: 0, Block: 4}
	if s.TraceIDOf(rare) == s.TraceIDOf(head) {
		t.Error("rare arm ends in a jump and is entered by branch only; separate trace expected")
	}
}

func TestColdBlocksCovered(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("a").ALU(1).Jump("exit")
	f.Block("dead1").ALU(3) // reachable via branch never taken
	f.Block("dead2").ALU(3)
	f.Block("exit").ALU(1).Branch("dead1", "end", ir.Never{})
	f.Block("end").Return()
	p, prof := buildAndProfile(t, pb)
	s, err := Build(p, prof, opts())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every block, including never-executed ones, is in some trace.
	total := 0
	for _, tr := range s.Traces {
		total += len(tr.Blocks)
	}
	if total != p.NumBlocks() {
		t.Errorf("covered %d blocks, program has %d", total, p.NumBlocks())
	}
}

func TestTracesDoNotCrossFunctions(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	main := pb.Func("main")
	main.Block("a").ALU(1).Call("leaf")
	main.Block("b").Return()
	leaf := pb.Func("leaf")
	leaf.Block("l").ALU(1).Return()
	p, prof := buildAndProfile(t, pb)
	s, err := Build(p, prof, opts())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, tr := range s.Traces {
		for _, m := range tr.Blocks {
			if m.Func != tr.Blocks[0].Func {
				t.Fatalf("trace %d crosses functions", tr.ID)
			}
		}
	}
}

func TestTraceOrderIsTextual(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("cold1").ALU(2).Jump("hot")
	f.Block("mid").ALU(2).Jump("end")
	f.Block("hot").Code(8).Branch("hot", "back", ir.Loop{Trips: 1000})
	f.Block("back").ALU(1).Jump("mid")
	f.Block("end").Return()
	p, prof := buildAndProfile(t, pb)
	s, err := Build(p, prof, opts())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i := 1; i < len(s.Traces); i++ {
		if !s.Traces[i-1].Blocks[0].Less(s.Traces[i].Blocks[0]) {
			t.Errorf("traces %d,%d out of textual order: %v then %v",
				i-1, i, s.Traces[i-1].Blocks[0], s.Traces[i].Blocks[0])
		}
	}
}

func TestFetchesSumMatchesProfile(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("a").ALU(2)
	f.Block("loop").Code(6).Branch("loop", "b", ir.Loop{Trips: 50})
	f.Block("b").ALU(3)
	f.Block("c").Return()
	p, prof := buildAndProfile(t, pb)
	s, err := Build(p, prof, Options{MaxBytes: 32, LineBytes: 16})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var sum int64
	jumps := int64(0)
	for _, tr := range s.Traces {
		sum += tr.Fetches
		if tr.HasJump {
			jumps++ // each appended jump contributes extra fetches
		}
	}
	// Total trace fetches = profile fetches + appended-jump executions,
	// which are at least 0 and at most one per fall-through exit. Lower
	// bound: profile fetches.
	if sum < prof.Fetches {
		t.Errorf("trace fetches %d < profile fetches %d", sum, prof.Fetches)
	}
}
