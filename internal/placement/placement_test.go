package placement

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func buildSet(t *testing.T, p *ir.Program) *trace.Set {
	t.Helper()
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: 512, LineBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestShapeValidate(t *testing.T) {
	bad := []CacheShape{
		{Sets: 0, LineBytes: 16},
		{Sets: 3, LineBytes: 16},
		{Sets: 8, LineBytes: 2},
		{Sets: 8, LineBytes: 24},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", s)
		}
	}
	if err := (CacheShape{Sets: 8, LineBytes: 16}).Validate(); err != nil {
		t.Errorf("good shape rejected: %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	if HotFirst.String() != "hot-first" || ConflictAware.String() != "conflict-aware" {
		t.Error("strategy names")
	}
}

func TestOrdersArePermutations(t *testing.T) {
	for _, name := range workload.Names() {
		set := buildSet(t, mustLoad(t, name))
		for _, strat := range []Strategy{HotFirst, ConflictAware} {
			order, err := Order(set, CacheShape{Sets: 128, LineBytes: 16}, strat)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, strat, err)
			}
			if len(order) != len(set.Traces) {
				t.Fatalf("%s/%v: %d entries", name, strat, len(order))
			}
			seen := make([]bool, len(order))
			for _, id := range order {
				if id < 0 || id >= len(order) || seen[id] {
					t.Fatalf("%s/%v: not a permutation", name, strat)
				}
				seen[id] = true
			}
			// A permutation must build a valid layout.
			if _, err := layout.NewOrdered(set, order, layout.Options{}); err != nil {
				t.Fatalf("%s/%v: NewOrdered: %v", name, strat, err)
			}
		}
	}
}

func TestHotFirstIsByHeat(t *testing.T) {
	set := buildSet(t, mustLoad(t, "adpcm"))
	order, err := Order(set, CacheShape{Sets: 8, LineBytes: 16}, HotFirst)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if set.Traces[order[i-1]].Fetches < set.Traces[order[i]].Fetches {
			t.Fatalf("order not descending by heat at %d", i)
		}
	}
}

// TestPlacementReducesMissesOnThrashingImage: a program much larger than
// the cache with interleaved hot/cold traces must benefit from placement.
func TestPlacementReducesMissesOnThrashingImage(t *testing.T) {
	set := buildSet(t, mustLoad(t, "mpeg"))
	ccfg := cache.Config{SizeBytes: 2048, LineBytes: 16, Assoc: 1}
	cost := mustCost(t, energy.Config{
		Cache: energy.CacheGeometry{SizeBytes: 2048, LineBytes: 16, Assoc: 1},
	})
	run := func(lay *layout.Layout) int64 {
		res, err := memsim.Run(set.Prog, lay, memsim.Config{Cache: ccfg, Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		return res.CacheMisses
	}
	baseLay, err := layout.New(set, nil, layout.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := run(baseLay)
	for _, strat := range []Strategy{HotFirst, ConflictAware} {
		order, err := Order(set, CacheShape{Sets: 128, LineBytes: 16}, strat)
		if err != nil {
			t.Fatal(err)
		}
		lay, err := layout.NewOrdered(set, order, layout.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := run(lay); got >= base {
			t.Errorf("%v did not reduce misses: %d vs baseline %d", strat, got, base)
		}
	}
}

func TestNewOrderedRejectsBadOrders(t *testing.T) {
	set := buildSet(t, mustLoad(t, "adpcm"))
	if _, err := layout.NewOrdered(set, []int{0}, layout.Options{}); err == nil && len(set.Traces) != 1 {
		t.Error("short order accepted")
	}
	order := make([]int, len(set.Traces))
	for i := range order {
		order[i] = 0 // duplicates
	}
	if _, err := layout.NewOrdered(set, order, layout.Options{}); err == nil {
		t.Error("duplicate order accepted")
	}
}

func TestOrderRejectsBadShape(t *testing.T) {
	set := buildSet(t, mustLoad(t, "adpcm"))
	if _, err := Order(set, CacheShape{Sets: 5, LineBytes: 16}, HotFirst); err == nil {
		t.Error("bad shape accepted")
	}
}

// mustLoad builds a named workload, failing the test on error.
func mustLoad(t testing.TB, name string) *ir.Program {
	t.Helper()
	p, err := workload.Load(name)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return p
}

// mustCost builds a cost model, failing the test on error.
func mustCost(t testing.TB, cfg energy.Config) energy.CostModel {
	t.Helper()
	cm, err := energy.NewCostModel(cfg)
	if err != nil {
		t.Fatalf("NewCostModel: %v", err)
	}
	return cm
}
