// Package placement implements cache-conscious code placement — the
// I-cache optimization line of the paper's related work (Pettis & Hansen
// [10], Tomiyama & Yasuura [14]): instead of (or before) moving anything
// to a scratchpad, reorder the traces in main memory so hot code maps to
// disjoint cache sets.
//
// Two strategies are provided:
//
//   - HotFirst places traces in descending fetch order. Because
//     consecutive addresses spanning at most one cache size map to
//     distinct sets, the hottest cache-size window of the program becomes
//     mutually conflict-free — the essence of the classic trace-placement
//     results.
//
//   - ConflictAware refines HotFirst greedily: at each position it picks
//     the remaining trace whose lines collide least (weighted by both
//     traces' fetch heat) with what is already placed, breaking ties by
//     heat. It helps when the hot working set exceeds the cache.
//
// The experiment harness uses this package to answer a natural question
// about the paper: how much of CASA's win could placement alone achieve
// without any scratchpad? (See experiments.PlacementStudy.)
package placement

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Strategy selects the ordering heuristic.
type Strategy int

const (
	// HotFirst orders traces by descending fetch count.
	HotFirst Strategy = iota
	// ConflictAware greedily minimizes heat-weighted set collisions.
	ConflictAware
)

// String returns the strategy name.
func (s Strategy) String() string {
	if s == ConflictAware {
		return "conflict-aware"
	}
	return "hot-first"
}

// CacheShape is the geometry the optimizer targets.
type CacheShape struct {
	// Sets is the number of cache sets.
	Sets int
	// LineBytes is the line size.
	LineBytes int
}

// Validate checks the shape.
func (c CacheShape) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("placement: sets %d not a positive power of two", c.Sets)
	}
	if c.LineBytes < 4 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("placement: line size %d not a power of two ≥ 4", c.LineBytes)
	}
	return nil
}

// Order computes a placement order for the traces of set under the given
// strategy. The result is a permutation of trace IDs for layout.NewOrdered.
func Order(set *trace.Set, shape CacheShape, strategy Strategy) ([]int, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	n := len(set.Traces)
	byHeat := make([]int, n)
	for i := range byHeat {
		byHeat[i] = i
	}
	sort.SliceStable(byHeat, func(a, b int) bool {
		return set.Traces[byHeat[a]].Fetches > set.Traces[byHeat[b]].Fetches
	})
	if strategy == HotFirst {
		return byHeat, nil
	}

	// ConflictAware: greedy selection against per-set accumulated heat.
	// pressure[s] is the fetch heat already mapped to set s.
	pressure := make([]float64, shape.Sets)
	placed := make([]bool, n)
	order := make([]int, 0, n)
	addr := 0

	// setsOf returns the set indices a trace occupies at a byte offset.
	setsOf := func(id, at int) []int {
		t := set.Traces[id]
		first := at / shape.LineBytes
		lines := (t.PaddedBytes + shape.LineBytes - 1) / shape.LineBytes
		out := make([]int, 0, lines)
		for l := 0; l < lines; l++ {
			out = append(out, (first+l)%shape.Sets)
		}
		return out
	}

	for len(order) < n {
		best := -1
		bestCost := 0.0
		for _, cand := range byHeat {
			if placed[cand] {
				continue
			}
			heat := float64(set.Traces[cand].Fetches)
			cost := 0.0
			for _, s := range setsOf(cand, addr) {
				// Collision cost: my heat meeting the heat already there.
				cost += pressure[s] * heat
			}
			// Among equal costs the hottest candidate goes first (byHeat
			// iteration order provides the tie-break).
			if best < 0 || cost < bestCost {
				best, bestCost = cand, cost
			}
		}
		placed[best] = true
		order = append(order, best)
		heat := float64(set.Traces[best].Fetches)
		for _, s := range setsOf(best, addr) {
			pressure[s] += heat
		}
		addr += set.Traces[best].PaddedBytes
	}
	return order, nil
}
