package wcet

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"

	"repro/internal/cache"
	"repro/internal/energy"
)

func costs() Costs {
	return Costs{
		HitCycles:  1,
		MissCycles: 15,
		SPMCycles:  1,
		EHit:       1,
		EMiss:      50,
		ESPM:       0.4,
		LineBytes:  16,
	}
}

func buildSet(t *testing.T, p *ir.Program, spm int) (*trace.Set, *layout.Layout) {
	t.Helper()
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: max(spm, 16), LineBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := layout.New(set, nil, layout.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return set, lay
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestCostsValidate(t *testing.T) {
	bad := []Costs{
		{HitCycles: 0, MissCycles: 10, SPMCycles: 1, LineBytes: 16},
		{HitCycles: 2, MissCycles: 1, SPMCycles: 1, LineBytes: 16},
		{HitCycles: 1, MissCycles: 10, SPMCycles: 0, LineBytes: 16},
		{HitCycles: 1, MissCycles: 10, SPMCycles: 1, LineBytes: 3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := costs().Validate(); err != nil {
		t.Errorf("good costs rejected: %v", err)
	}
}

func TestSimpleLoopBound(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("pre").ALU(2)
	f.Block("body").Code(3).Branch("body", "post", ir.Loop{Trips: 10})
	f.Block("post").Return()
	p := mustBuild(t, pb)
	_, lay := buildSet(t, p, 4096)

	r, err := Analyze(p, lay, costs())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// Sanity: bound must cover the actual execution.
	actual := simulatedCycles(t, p, lay)
	if r.Cycles < actual {
		t.Errorf("bound %d below simulated %d", r.Cycles, actual)
	}
	// And the block-count relaxation should not be absurdly loose here:
	// the body runs exactly 10 times and the bound assumes exactly 10.
	if r.Cycles > actual*20 {
		t.Errorf("bound %d looser than 20x simulated %d", r.Cycles, actual)
	}
}

func TestNestedLoopsMultiply(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("oh").ALU(1)
	f.Block("inner").Code(2).Branch("inner", "latch", ir.Loop{Trips: 5})
	f.Block("latch").ALU(1).Branch("oh", "done", ir.Loop{Trips: 3})
	f.Block("done").Return()
	p := mustBuild(t, pb)
	_, lay := buildSet(t, p, 4096)
	r, err := Analyze(p, lay, costs())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	actual := simulatedCycles(t, p, lay)
	if r.Cycles < actual {
		t.Errorf("bound %d below simulated %d", r.Cycles, actual)
	}
}

func TestPatternBackEdgeBounded(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("body").Code(2).Branch("body", "post", ir.Pattern{Seq: []bool{true, true, false}})
	f.Block("post").Return()
	p := mustBuild(t, pb)
	_, lay := buildSet(t, p, 4096)
	r, err := Analyze(p, lay, costs())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	actual := simulatedCycles(t, p, lay)
	if r.Cycles < actual {
		t.Errorf("bound %d below simulated %d", r.Cycles, actual)
	}
}

func TestUnboundableBackEdgeRejected(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("body").Code(2).Branch("body", "post", ir.Biased{P: 0.5, Seed: 1})
	f.Block("post").Return()
	p := mustBuild(t, pb)
	_, lay := buildSet(t, p, 4096)
	_, err := Analyze(p, lay, costs())
	if err == nil || !strings.Contains(err.Error(), "boundable") {
		t.Fatalf("err = %v, want unboundable-back-edge error", err)
	}
}

func TestRecursionRejected(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	a := pb.Func("a")
	a.Block("x").ALU(1).Call("b")
	a.Block("r").Return()
	b := pb.Func("b")
	b.Block("x").ALU(1).Call("a")
	b.Block("r").Return()
	p := mustBuild(t, pb)
	// A recursive program cannot be profiled; hand the trace builder an
	// empty profile instead.
	prof := sim.NewProfile(p)
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: 4096, LineBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := layout.New(set, nil, layout.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(p, lay, costs())
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("err = %v, want recursion error", err)
	}
}

func TestCallsAccumulate(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	main := pb.Func("main")
	main.Block("loop").ALU(1).Call("leaf")
	main.Block("latch").ALU(1).Branch("loop", "done", ir.Loop{Trips: 4})
	main.Block("done").Return()
	leaf := pb.Func("leaf")
	leaf.Block("x").Code(6).Return()
	p := mustBuild(t, pb)
	_, lay := buildSet(t, p, 4096)
	r, err := Analyze(p, lay, costs())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if r.PerFunc[1].Cycles <= 0 {
		t.Fatal("leaf bound missing")
	}
	// main's bound contains 4x the leaf bound.
	if r.PerFunc[0].Cycles < 4*r.PerFunc[1].Cycles {
		t.Errorf("caller bound %d < 4x leaf %d", r.PerFunc[0].Cycles, r.PerFunc[1].Cycles)
	}
	actual := simulatedCycles(t, p, lay)
	if r.Cycles < actual {
		t.Errorf("bound %d below simulated %d", r.Cycles, actual)
	}
}

// TestSoundnessOnWorkloads: the static bound must dominate the simulated
// cycles for every bundled workload, both without and with a scratchpad,
// and the scratchpad must tighten the bound.
func TestSoundnessOnWorkloadsAndTightening(t *testing.T) {
	for _, name := range workload.Names() {
		p := mustLoad(t, name)
		prof, err := sim.ProfileProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		set, err := trace.Build(p, prof, trace.Options{MaxBytes: 512, LineBytes: 16})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := layout.New(set, nil, layout.Options{})
		if err != nil {
			t.Fatal(err)
		}
		base, err := Analyze(p, plain, costs())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		actual := simulatedCycles(t, p, plain)
		if base.Cycles < actual {
			t.Errorf("%s: bound %d below simulated %d", name, base.Cycles, actual)
		}

		// Put the hottest placeable traces in a 512B scratchpad.
		alloc := make([]bool, len(set.Traces))
		free := 512
		for {
			best := -1
			for _, tr := range set.Traces {
				if alloc[tr.ID] || tr.RawBytes > free || tr.Fetches == 0 {
					continue
				}
				if best < 0 || tr.Fetches > set.Traces[best].Fetches {
					best = tr.ID
				}
			}
			if best < 0 {
				break
			}
			alloc[best] = true
			free -= set.Traces[best].RawBytes
		}
		spmLay, err := layout.New(set, alloc, layout.Options{Mode: layout.Copy, SPMSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		withSPM, err := Analyze(p, spmLay, costs())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if withSPM.Cycles >= base.Cycles {
			t.Errorf("%s: scratchpad did not tighten WCET: %d vs %d",
				name, withSPM.Cycles, base.Cycles)
		}
		actualSPM := simulatedCycles(t, p, spmLay)
		if withSPM.Cycles < actualSPM {
			t.Errorf("%s: SPM bound %d below simulated %d", name, withSPM.Cycles, actualSPM)
		}
	}
}

func TestLongestCyclicRun(t *testing.T) {
	cases := []struct {
		seq  []bool
		want int
	}{
		{nil, 0},
		{[]bool{false}, 0},
		{[]bool{true}, 1},
		{[]bool{true, true, false}, 2},
		{[]bool{true, false, true}, 2}, // wraps around
		{[]bool{false, true, true, true, false, true}, 3},
	}
	for _, c := range cases {
		if got := longestCyclicRun(c.seq); got != c.want {
			t.Errorf("longestCyclicRun(%v) = %d, want %d", c.seq, got, c.want)
		}
	}
}

// simulatedCycles runs memsim with the matching timing/cache and returns
// the measured cycles.
func simulatedCycles(t *testing.T, p *ir.Program, lay *layout.Layout) int64 {
	t.Helper()
	c := costs()
	tm := memsim.Timing{
		SPM:       c.SPMCycles,
		LoopCache: 1,
		CacheHit:  c.HitCycles,
		// missCycles = hit + setup + perWord*words: 1 + 6 + 2*4 = 15.
		MissSetup:   6,
		MissPerWord: 2,
	}
	ccfg := cache.Config{SizeBytes: 1024, LineBytes: c.LineBytes, Assoc: 1}
	cost := mustCost(t, energy.Config{
		Cache:    energy.CacheGeometry{SizeBytes: 1024, LineBytes: c.LineBytes, Assoc: 1},
		SPMBytes: 512,
	})
	res, err := memsim.Run(p, lay, memsim.Config{Cache: ccfg, Cost: cost, Timing: &tm})
	if err != nil {
		t.Fatal(err)
	}
	return res.Cycles
}

// TestSoundnessOnRandomPrograms: the random generator uses only counted
// loops for back edges, so every generated program is analyzable; the
// bound must dominate simulation for all of them.
func TestSoundnessOnRandomPrograms(t *testing.T) {
	for seed := uint64(200); seed < 230; seed++ {
		p, err := workload.Random(workload.RandomSpec{Seed: seed, Funcs: 4, SegmentsPerFunc: 5})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prof, err := sim.ProfileProgram(p, sim.WithMaxFetches(1<<24))
		if err != nil {
			t.Fatal(err)
		}
		set, err := trace.Build(p, prof, trace.Options{MaxBytes: 256, LineBytes: 16})
		if err != nil {
			t.Fatal(err)
		}
		lay, err := layout.New(set, nil, layout.Options{})
		if err != nil {
			t.Fatal(err)
		}
		bound, err := Analyze(p, lay, costs())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		actual := simulatedCycles(t, p, lay)
		if bound.Cycles < actual {
			t.Errorf("seed %d: bound %d below simulated %d", seed, bound.Cycles, actual)
		}
	}
}

// mustBuild finalizes a builder, failing the test on error.
func mustBuild(t testing.TB, pb *ir.ProgramBuilder) *ir.Program {
	t.Helper()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// mustLoad builds a named workload, failing the test on error.
func mustLoad(t testing.TB, name string) *ir.Program {
	t.Helper()
	p, err := workload.Load(name)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return p
}

// mustCost builds a cost model, failing the test on error.
func mustCost(t testing.TB, cfg energy.Config) energy.CostModel {
	t.Helper()
	cm, err := energy.NewCostModel(cfg)
	if err != nil {
		t.Fatalf("NewCostModel: %v", err)
	}
	return cm
}
