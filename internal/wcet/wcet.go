// Package wcet computes a static worst-case bound on a program's
// instruction-fetch cycles and energy under a given memory layout.
//
// The paper's introduction lists tighter WCET prediction among the
// scratchpad's advantages over a cache: a scratchpad access is
// deterministic (single cycle), while a cache access can only be bounded
// by assuming a miss unless expensive cache analysis proves otherwise.
// This package makes that argument quantitative: it derives a sound bound
// for any layout, and the bound tightens exactly where traces were moved
// to the scratchpad.
//
// The analysis is deliberately simple but sound:
//
//   - loop iteration counts come from the branch behaviors: ir.Loop gives
//     its trip count; ir.Pattern is bounded by its longest cyclic run of
//     taken outcomes plus one; data-dependent behaviors (ir.Biased,
//     ir.Always on a back edge) make the program unboundable and are
//     reported as errors;
//   - every block executes at most the product of the bounds of the loops
//     containing it per function invocation (the classic implicit-path
//     relaxation, ignoring infeasible-path pruning);
//   - the call graph must be acyclic (no recursion);
//   - a fetch from the scratchpad costs the deterministic SPM latency; a
//     fetch from cacheable memory is charged a miss for the first access
//     of each cache line a straight-line run touches and a hit for the
//     rest — sound because sequential fetches within one line cannot be
//     separated by an eviction.
package wcet

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/layout"
)

// Costs carries the per-fetch worst-case costs.
type Costs struct {
	// HitCycles, MissCycles and SPMCycles are fetch latencies.
	HitCycles  int64
	MissCycles int64
	SPMCycles  int64
	// EHit, EMiss and ESPM are fetch energies (nJ).
	EHit  float64
	EMiss float64
	ESPM  float64
	// LineBytes is the cache line size used for first-access-per-line
	// accounting.
	LineBytes int
}

// Validate checks the cost table.
func (c Costs) Validate() error {
	if c.HitCycles <= 0 || c.MissCycles < c.HitCycles || c.SPMCycles <= 0 {
		return fmt.Errorf("wcet: implausible latencies %+v", c)
	}
	if c.LineBytes < 4 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("wcet: line size %d not a power of two ≥ 4", c.LineBytes)
	}
	return nil
}

// FuncBound is one function's worst-case contribution per invocation.
type FuncBound struct {
	Func     ir.FuncID
	Name     string
	Cycles   int64
	EnergyNJ float64
}

// Result is a whole-program worst-case bound.
type Result struct {
	// Cycles bounds the program's total instruction-fetch cycles.
	Cycles int64
	// EnergyNJ bounds the instruction-memory energy (nJ).
	EnergyNJ float64
	// PerFunc holds per-invocation bounds, indexed by function ID.
	PerFunc []FuncBound
}

// Analyze computes the bound for p laid out by lay.
func Analyze(p *ir.Program, lay *layout.Layout, c Costs) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	order, err := topoFuncs(p)
	if err != nil {
		return nil, err
	}
	res := &Result{PerFunc: make([]FuncBound, len(p.Funcs))}
	for _, fid := range order {
		f := p.Func(fid)
		cycles, energy, err := analyzeFunc(p, f, lay, c, res.PerFunc)
		if err != nil {
			return nil, err
		}
		res.PerFunc[fid] = FuncBound{Func: fid, Name: f.Name, Cycles: cycles, EnergyNJ: energy}
	}
	entry := res.PerFunc[p.Entry]
	res.Cycles = entry.Cycles
	res.EnergyNJ = entry.EnergyNJ
	return res, nil
}

// topoFuncs orders functions callees-first and rejects recursion.
func topoFuncs(p *ir.Program) ([]ir.FuncID, error) {
	const (
		unseen = 0
		active = 1
		done   = 2
	)
	state := make([]int, len(p.Funcs))
	var order []ir.FuncID
	var visit func(fid ir.FuncID) error
	visit = func(fid ir.FuncID) error {
		switch state[fid] {
		case done:
			return nil
		case active:
			return fmt.Errorf("wcet: recursion through function %q", p.Func(fid).Name)
		}
		state[fid] = active
		for _, b := range p.Func(fid).Blocks {
			if b.Term() == ir.TermCall {
				if err := visit(b.CallTarget); err != nil {
					return err
				}
			}
		}
		state[fid] = done
		order = append(order, fid)
		return nil
	}
	for fid := range p.Funcs {
		if err := visit(ir.FuncID(fid)); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// analyzeFunc bounds one invocation of f, assuming callee bounds are
// already in perFunc.
func analyzeFunc(p *ir.Program, f *ir.Function, lay *layout.Layout, c Costs,
	perFunc []FuncBound) (int64, float64, error) {

	nest := ir.AnalyzeLoops(f)
	bounds := make([]int64, len(nest.Loops))
	for i, l := range nest.Loops {
		b, err := loopBound(f, l)
		if err != nil {
			return 0, 0, fmt.Errorf("wcet: function %q: %w", f.Name, err)
		}
		bounds[i] = b
	}

	var cycles int64
	var energy float64
	for _, b := range f.Blocks {
		count := int64(1)
		for i, l := range nest.Loops {
			if l.Contains(b.ID) {
				count *= bounds[i]
			}
		}
		bc, be := blockFetchCost(f, b, lay, c)
		if b.Term() == ir.TermCall {
			bc += perFunc[b.CallTarget].Cycles
			be += perFunc[b.CallTarget].EnergyNJ
		}
		cycles += count * bc
		energy += float64(count) * be
	}
	return cycles, energy, nil
}

// loopBound bounds the iterations of a merged loop per entry: the sum over
// its back edges of each latch behavior's bound (sound for multi-latch
// loops because every iteration except the last traverses some back edge).
func loopBound(f *ir.Function, l *ir.NaturalLoop) (int64, error) {
	var total int64
	found := false
	for _, bid := range l.Blocks {
		b := f.Block(bid)
		if b.Term() != ir.TermBranch || b.Taken != l.Header {
			// Only conditional back edges bound iterations; unconditional
			// back edges (jump to header) make the loop unboundable
			// unless another latch bounds it — handled below by requiring
			// at least one bounded latch and summing.
			if b.Term() == ir.TermJump && b.Taken == l.Header {
				return 0, fmt.Errorf("loop at block %d: unconditional back edge", l.Header)
			}
			continue
		}
		n, err := behaviorBound(b.Behavior)
		if err != nil {
			return 0, fmt.Errorf("loop at block %d: %w", l.Header, err)
		}
		total += n
		found = true
	}
	if !found {
		return 0, fmt.Errorf("loop at block %d has no boundable latch", l.Header)
	}
	return total, nil
}

// behaviorBound bounds how many times a back-edge branch can be taken
// consecutively, plus one for the final fall-through iteration.
func behaviorBound(beh ir.Behavior) (int64, error) {
	switch b := beh.(type) {
	case ir.Loop:
		return int64(b.Trips), nil
	case ir.Pattern:
		return int64(longestCyclicRun(b.Seq) + 1), nil
	case ir.Never:
		return 1, nil
	default:
		return 0, fmt.Errorf("back edge behavior %v is not statically boundable", beh)
	}
}

// longestCyclicRun returns the longest run of true values in the cyclic
// sequence seq (capped at len(seq) for the all-true case, which the
// caller rejects as unbounded — here it degrades to the period).
func longestCyclicRun(seq []bool) int {
	n := len(seq)
	if n == 0 {
		return 0
	}
	all := true
	for _, v := range seq {
		if !v {
			all = false
			break
		}
	}
	if all {
		return n // degenerate; effectively an unconditional back edge
	}
	best, run := 0, 0
	// Doubling the sequence handles wraparound runs.
	for i := 0; i < 2*n; i++ {
		if seq[i%n] {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return best
}

// blockFetchCost bounds one execution of block b under the layout: SPM
// fetches are deterministic; cacheable fetches pay one miss per distinct
// line the straight-line run touches and hits for the rest. A layout-
// appended jump after the block is charged as one extra fetch.
func blockFetchCost(f *ir.Function, b *ir.Block, lay *layout.Layout, c Costs) (int64, float64) {
	ref := ir.BlockRef{Func: f.ID, Block: b.ID}
	base := lay.BlockBase(ref)
	instrs := int64(len(b.Instrs))
	end := base + uint32(b.Size())
	if j, ok := lay.FallJump(ref); ok {
		// Conservatively assume every execution leaves through the
		// appended jump as well.
		instrs++
		if j+ir.InstrSize > end {
			end = j + ir.InstrSize
		}
	}
	if lay.IsSPMAddr(base) {
		return instrs * c.SPMCycles, float64(instrs) * c.ESPM
	}
	lines := int64(linesSpanned(base, end, c.LineBytes))
	if lines > instrs {
		lines = instrs
	}
	cycles := lines*c.MissCycles + (instrs-lines)*c.HitCycles
	energy := float64(lines)*c.EMiss + float64(instrs-lines)*c.EHit
	return cycles, energy
}

// linesSpanned counts the distinct cache lines in [start, end).
func linesSpanned(start, end uint32, lineBytes int) int {
	if end <= start {
		return 0
	}
	first := start / uint32(lineBytes)
	last := (end - 1) / uint32(lineBytes)
	return int(last-first) + 1
}
