package sim

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/ir"
)

func TestCachedProfileMatchesProfileProgram(t *testing.T) {
	p := loopProgram(t, 25)
	want, err := ProfileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CachedProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fetches != want.Fetches {
		t.Errorf("fetches %d, want %d", got.Fetches, want.Fetches)
	}
	for f := range want.Blocks {
		for b := range want.Blocks[f] {
			if got.Blocks[f][b] != want.Blocks[f][b] {
				t.Errorf("block %d/%d count %d, want %d", f, b, got.Blocks[f][b], want.Blocks[f][b])
			}
		}
	}
}

// TestCachedProfileSingleflight: every caller — concurrent callers
// included — receives the same Profile instance, and the program is
// executed exactly once. Run with -race this is the stress test of the
// memoized profile under concurrent callers.
func TestCachedProfileSingleflight(t *testing.T) {
	p := loopProgram(t, 1000)
	const callers = 32
	got := make([]*Profile, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prof, err := CachedProfile(p)
			if err != nil {
				t.Error(err)
				return
			}
			// Concurrent read of the shared profile (map + slices).
			_ = prof.BlockCount(ir.BlockRef{Func: 0, Block: 1})
			_ = prof.FallCount(ir.BlockRef{Func: 0, Block: 0}, ir.BlockRef{Func: 0, Block: 1})
			got[i] = prof
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d received a different profile instance", i)
		}
	}
}

// recordingSink collects the fetch stream for comparisons.
type recordingSink struct {
	addrs []uint32
	mos   []int
}

func (r *recordingSink) Fetch(addr uint32, mo int) {
	r.addrs = append(r.addrs, addr)
	r.mos = append(r.mos, mo)
}

func TestCachedStreamReplayMatchesRun(t *testing.T) {
	// A program with calls, branches and a layout-appended jump, so the
	// recorded stream covers every fetch kind.
	pb := ir.NewProgramBuilder("memo-calls")
	main := pb.Func("main")
	main.Block("entry").ALU(1)
	main.Block("loop").ALU(2).Call("leaf")
	main.Block("after").ALU(1).Branch("loop", "done", ir.Loop{Trips: 7})
	main.Block("done").Return()
	leaf := pb.Func("leaf")
	leaf.Block("body").ALU(3).Return()
	p := mustBuild(t, pb)
	lay := newTestLayout(p)
	lay.jumps[ir.BlockRef{Func: 0, Block: 2}] = 0x400

	direct := &recordingSink{}
	n, err := Run(p, lay, direct)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := CachedStream(p, lay)
	if err != nil {
		t.Fatal(err)
	}
	if int64(stream.Len()) != n {
		t.Fatalf("stream has %d fetches, run delivered %d", stream.Len(), n)
	}
	replayed := &recordingSink{}
	if got := stream.Replay(replayed); got != n {
		t.Fatalf("replay delivered %d fetches, want %d", got, n)
	}
	for i := range direct.addrs {
		if direct.addrs[i] != replayed.addrs[i] || direct.mos[i] != replayed.mos[i] {
			t.Fatalf("fetch %d differs: (%#x,%d) vs (%#x,%d)",
				i, direct.addrs[i], direct.mos[i], replayed.addrs[i], replayed.mos[i])
		}
	}

	// Same (program, layout) → same cached instance.
	again, err := CachedStream(p, lay)
	if err != nil {
		t.Fatal(err)
	}
	if again != stream {
		t.Error("stream not memoized")
	}
}

func TestCachedStreamConcurrent(t *testing.T) {
	p := loopProgram(t, 500)
	lay := newTestLayout(p)
	const callers = 16
	streams := make([]*Stream, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := CachedStream(p, lay)
			if err != nil {
				t.Error(err)
				return
			}
			sink := &recordingSink{}
			s.Replay(sink)
			streams[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if streams[i] != streams[0] {
			t.Fatalf("caller %d received a different stream instance", i)
		}
	}
}

func TestLayoutFingerprintDistinguishesLayouts(t *testing.T) {
	p := loopProgram(t, 3)
	a := newTestLayout(p)
	b := newTestLayout(p)
	if LayoutFingerprint(p, a) != LayoutFingerprint(p, b) {
		t.Error("identical layouts fingerprint differently")
	}
	// Perturb one block base: fingerprint must move.
	b.base[ir.BlockRef{Func: 0, Block: 1}] += 4
	if LayoutFingerprint(p, a) == LayoutFingerprint(p, b) {
		t.Error("different layouts share a fingerprint")
	}
}

func TestStreamCacheEviction(t *testing.T) {
	oldCap := streamCacheCapBytes
	streamCacheCapBytes = 512 // 64 fetches' worth
	defer func() { streamCacheCapBytes = oldCap }()

	// Each program's stream exceeds half the budget, so the third insert
	// must evict the least-recently-used entry.
	progs := []*ir.Program{
		loopProgram(t, 10),
		loopProgram(t, 11),
		loopProgram(t, 12),
	}
	evictsBefore := mStreamEvicts.Value()
	var first *Stream
	for i, p := range progs {
		s, err := CachedStream(p, newTestLayout(p))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = s
		}
	}
	streamMu.Lock()
	within := streamBytes <= streamCacheCapBytes
	streamMu.Unlock()
	if !within {
		t.Error("cache exceeds its byte budget after eviction")
	}
	if mStreamEvicts.Value() == evictsBefore {
		t.Error("eviction not counted in casa_stream_cache_evictions_total")
	}
	// The evicted stream stays usable for existing holders.
	sink := &recordingSink{}
	if first.Replay(sink) == 0 {
		t.Error("evicted stream lost its recording")
	}
}

// TestStreamSizeBytesCountsCapacity: the eviction bound must charge what
// the allocator committed (slice capacity), not the logical length — an
// under-estimated preallocation that fell back to append doubling can
// hold far more memory than Len() suggests.
func TestStreamSizeBytesCountsCapacity(t *testing.T) {
	s := &Stream{
		addrs: make([]uint32, 2, 100),
		mos:   make([]int32, 2, 100),
	}
	if got := s.SizeBytes(); got != 800 {
		t.Fatalf("SizeBytes = %d, want 800 (4·cap(addrs) + 4·cap(mos))", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

// TestStreamCacheBytesGauge: casa_stream_cache_bytes tracks the exact
// capacity-based byte total of the resident entries, proving the
// accounting under inserts and evictions.
func TestStreamCacheBytesGauge(t *testing.T) {
	oldCap := streamCacheCapBytes
	streamCacheCapBytes = 1 << 20
	defer func() { streamCacheCapBytes = oldCap }()

	p := loopProgram(t, 33)
	s, err := CachedStream(p, newTestLayout(p))
	if err != nil {
		t.Fatal(err)
	}
	if s.SizeBytes() < 8*s.Len() {
		t.Fatalf("SizeBytes %d below the 8·len floor %d", s.SizeBytes(), 8*s.Len())
	}

	// The gauge must equal the locked byte total, and that total must be
	// the sum of SizeBytes over resident completed entries.
	streamMu.Lock()
	var want int
	for _, e := range streamCache {
		if e.s != nil {
			want += e.s.SizeBytes()
		}
	}
	got := streamBytes
	streamMu.Unlock()
	if got != want {
		t.Errorf("streamBytes %d != sum of resident SizeBytes %d", got, want)
	}
	if g := mStreamBytes.Value(); g != int64(got) {
		t.Errorf("casa_stream_cache_bytes gauge %d != accounted bytes %d", g, got)
	}
}

// ---- Fault injection and memo robustness ------------------------------------

func TestCachedStreamInjectedReadFault(t *testing.T) {
	fault.Set(fault.NewPlan().On(fault.StreamRead, 1))
	defer fault.Set(nil)

	p := loopProgram(t, 9)
	lay := newTestLayout(p)
	if _, err := CachedStream(p, lay); err == nil {
		t.Fatal("injected stream-read fault not surfaced")
	} else {
		var inj *fault.InjectedError
		if !errors.As(err, &inj) {
			t.Fatalf("error %v is not an InjectedError", err)
		}
	}
	// The next (non-faulted) call succeeds: the failure was transient.
	s, err := CachedStream(p, lay)
	if err != nil {
		t.Fatalf("post-fault call: %v", err)
	}
	if s.Len() == 0 {
		t.Fatal("post-fault stream empty")
	}
}

func TestCachedStreamInjectedMemoMissBypassesCache(t *testing.T) {
	p := loopProgram(t, 13)
	lay := newTestLayout(p)
	cached, err := CachedStream(p, lay)
	if err != nil {
		t.Fatal(err)
	}

	fault.Set(fault.NewPlan().Always(fault.MemoMiss))
	defer fault.Set(nil)
	fresh, err := CachedStream(p, lay)
	if err != nil {
		t.Fatalf("memo-miss path: %v", err)
	}
	if fresh == cached {
		t.Fatal("injected memo miss still served the cached instance")
	}
	// Determinism: the bypassed recording is byte-identical.
	a, b := &recordingSink{}, &recordingSink{}
	cached.Replay(a)
	fresh.Replay(b)
	if len(a.addrs) != len(b.addrs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.addrs), len(b.addrs))
	}
	for i := range a.addrs {
		if a.addrs[i] != b.addrs[i] || a.mos[i] != b.mos[i] {
			t.Fatalf("fetch %d differs under memo-miss bypass", i)
		}
	}
}

func TestCachedProfileInjectedMemoMissBypassesCache(t *testing.T) {
	p := loopProgram(t, 17)
	cached, err := CachedProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	fault.Set(fault.NewPlan().Always(fault.MemoMiss))
	defer fault.Set(nil)
	fresh, err := CachedProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == cached {
		t.Fatal("injected memo miss still served the cached profile")
	}
	if fresh.Fetches != cached.Fetches {
		t.Fatalf("bypassed profile differs: %d vs %d fetches", fresh.Fetches, cached.Fetches)
	}
}

// TestCachedProfileErrorNotPoisoned: a failing profile run must not be
// cached forever — the slot is dropped so a later caller retries instead
// of replaying the stale error.
func TestCachedProfileErrorNotPoisoned(t *testing.T) {
	// Unbounded recursion exceeds the simulator's call-depth limit, a real
	// (non-injected) profiling failure.
	pb := ir.NewProgramBuilder("recurse")
	f := pb.Func("main")
	f.Block("entry").ALU(1).Call("main")
	f.Block("done").Return()
	p := mustBuild(t, pb)

	if _, err := CachedProfile(p); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("want call-depth failure, got %v", err)
	}
	if _, ok := profileMemo.Load(p); ok {
		t.Fatal("failed profile run left a poisoned memo entry")
	}
	// And the retry fails afresh (same program, same error) rather than
	// hitting a cached slot — proving the path stays retryable.
	if _, err := CachedProfile(p); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("retry: want call-depth failure, got %v", err)
	}
}
