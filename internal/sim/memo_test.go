package sim

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/ir"
)

func TestCachedProfileMatchesProfileProgram(t *testing.T) {
	p := loopProgram(t, 25)
	want, err := ProfileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CachedProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fetches != want.Fetches {
		t.Errorf("fetches %d, want %d", got.Fetches, want.Fetches)
	}
	for f := range want.Blocks {
		for b := range want.Blocks[f] {
			if got.Blocks[f][b] != want.Blocks[f][b] {
				t.Errorf("block %d/%d count %d, want %d", f, b, got.Blocks[f][b], want.Blocks[f][b])
			}
		}
	}
}

// TestCachedProfileSingleflight: every caller — concurrent callers
// included — receives the same Profile instance, and the program is
// executed exactly once. Run with -race this is the stress test of the
// memoized profile under concurrent callers.
func TestCachedProfileSingleflight(t *testing.T) {
	p := loopProgram(t, 1000)
	const callers = 32
	got := make([]*Profile, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prof, err := CachedProfile(p)
			if err != nil {
				t.Error(err)
				return
			}
			// Concurrent read of the shared profile (map + slices).
			_ = prof.BlockCount(ir.BlockRef{Func: 0, Block: 1})
			_ = prof.FallCount(ir.BlockRef{Func: 0, Block: 0}, ir.BlockRef{Func: 0, Block: 1})
			got[i] = prof
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d received a different profile instance", i)
		}
	}
}

// recordingSink collects the fetch stream for comparisons.
type recordingSink struct {
	addrs []uint32
	mos   []int
}

func (r *recordingSink) Fetch(addr uint32, mo int) {
	r.addrs = append(r.addrs, addr)
	r.mos = append(r.mos, mo)
}

// callProgram builds a program with calls, branches and room for a
// layout-appended jump, so recorded traces cover every step kind.
func callProgram(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("memo-calls")
	main := pb.Func("main")
	main.Block("entry").ALU(1)
	main.Block("loop").ALU(2).Call("leaf")
	main.Block("after").ALU(1).Branch("loop", "done", ir.Loop{Trips: 7})
	main.Block("done").Return()
	leaf := pb.Func("leaf")
	leaf.Block("body").ALU(3).Return()
	return mustBuild(t, pb)
}

func TestCachedTraceReplayMatchesRun(t *testing.T) {
	p := callProgram(t)
	lay := newTestLayout(p)
	// Jumps on both a fall-through block and a call block: the call
	// block's jump is fetched when its *callee returns*, the trickiest
	// replay case.
	lay.jumps[ir.BlockRef{Func: 0, Block: 2}] = 0x400
	lay.jumps[ir.BlockRef{Func: 0, Block: 1}] = 0x440

	direct := &recordingSink{}
	n, err := Run(p, lay, direct)
	if err != nil {
		t.Fatal(err)
	}

	tr, err := CachedTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fetches() >= n {
		t.Fatalf("trace fetches %d should exclude the %d-total run's jumps", tr.Fetches(), n)
	}
	replayed := &recordingSink{}
	if got := tr.Replay(lay, replayed); got != n {
		t.Fatalf("replay delivered %d fetches, want %d", got, n)
	}
	if len(replayed.addrs) != int(n) {
		t.Fatalf("sink saw %d fetches, want %d", len(replayed.addrs), n)
	}
	for i := range direct.addrs {
		if direct.addrs[i] != replayed.addrs[i] || direct.mos[i] != replayed.mos[i] {
			t.Fatalf("fetch %d differs: (%#x,%d) vs (%#x,%d)",
				i, direct.addrs[i], direct.mos[i], replayed.addrs[i], replayed.mos[i])
		}
	}

	// Same program → same cached instance; the trace is layout-free, so a
	// different layout shares it too.
	again, err := CachedTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if again != tr {
		t.Error("trace not memoized")
	}
}

// TestTraceReplayBulkMatchesScalar: a RunFetcher sink must see the same
// fetch stream as a scalar Fetcher, just batched per block.
func TestTraceReplayBulkMatchesScalar(t *testing.T) {
	p := callProgram(t)
	lay := newTestLayout(p)
	lay.jumps[ir.BlockRef{Func: 0, Block: 2}] = 0x400

	tr, err := RecordTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	scalar := &recordingSink{}
	tr.Replay(lay, scalar)

	bulk := &bulkRecordingSink{}
	if n := tr.Replay(lay, bulk); n != int64(len(scalar.addrs)) {
		t.Fatalf("bulk replay count %d, want %d", n, len(scalar.addrs))
	}
	if bulk.runs == 0 {
		t.Fatal("RunFetcher sink never received a bulk run")
	}
	if len(bulk.addrs) != len(scalar.addrs) {
		t.Fatalf("bulk saw %d fetches, scalar %d", len(bulk.addrs), len(scalar.addrs))
	}
	for i := range scalar.addrs {
		if bulk.addrs[i] != scalar.addrs[i] || bulk.mos[i] != scalar.mos[i] {
			t.Fatalf("fetch %d differs: (%#x,%d) vs (%#x,%d)",
				i, bulk.addrs[i], bulk.mos[i], scalar.addrs[i], scalar.mos[i])
		}
	}
}

// bulkRecordingSink implements RunFetcher, expanding runs so the stream
// can be compared fetch-for-fetch, while counting the bulk deliveries.
type bulkRecordingSink struct {
	recordingSink
	runs int
}

func (b *bulkRecordingSink) FetchRun(base uint32, n int, mo int) {
	b.runs++
	for i := 0; i < n; i++ {
		b.Fetch(base+uint32(i*ir.InstrSize), mo)
	}
}

// TestTraceRLECompression: a hot self-loop must collapse to a handful of
// RLE entries, and the step accessors must expose it faithfully.
func TestTraceRLECompression(t *testing.T) {
	const trips = 1000
	p := loopProgram(t, trips)
	tr, err := RecordTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	// entry(fall), body×trips(taken self-loop RLE + final fall), exit:
	// far fewer entries than dynamic steps.
	if tr.NumSteps() >= 10 {
		t.Fatalf("RLE failed: %d entries for a %d-trip loop", tr.NumSteps(), trips)
	}
	if tr.Steps() != int64(trips)+2 {
		t.Fatalf("steps %d, want %d", tr.Steps(), trips+2)
	}
	var maxCount int64
	var kinds []StepKind
	for i := 0; i < tr.NumSteps(); i++ {
		_, _, kind, count := tr.Step(i)
		kinds = append(kinds, kind)
		if count > maxCount {
			maxCount = count
		}
	}
	if maxCount != int64(trips)-1 {
		t.Errorf("hottest RLE count %d, want %d", maxCount, trips-1)
	}
	if kinds[len(kinds)-1] != StepReturn {
		t.Errorf("last step kind %v, want return", kinds[len(kinds)-1])
	}
	if tr.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}

func TestCachedTraceConcurrent(t *testing.T) {
	p := loopProgram(t, 500)
	lay := newTestLayout(p)
	const callers = 16
	traces := make([]*Trace, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := CachedTrace(p)
			if err != nil {
				t.Error(err)
				return
			}
			sink := &recordingSink{}
			tr.Replay(lay, sink)
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if traces[i] != traces[0] {
			t.Fatalf("caller %d received a different trace instance", i)
		}
	}
}

func TestTraceCacheEviction(t *testing.T) {
	oldCap := traceCacheCapBytes
	traceCacheCapBytes = 4096 // roughly one irregular trace's worth
	defer func() { traceCacheCapBytes = oldCap }()

	// Programs with distinct irregular step sequences, each exceeding
	// half the tiny budget, so the third insert must evict the
	// least-recently-used entry.
	progs := []*ir.Program{
		irregularProgram(t, 20),
		irregularProgram(t, 21),
		irregularProgram(t, 22),
	}
	evictsBefore := mStreamEvicts.Value()
	var first *Trace
	for i, p := range progs {
		tr, err := CachedTrace(p)
		if err != nil {
			t.Fatal(err)
		}
		if tr.SizeBytes() <= traceCacheCapBytes/2 {
			t.Fatalf("fixture too small: %dB trace under %dB budget", tr.SizeBytes(), traceCacheCapBytes)
		}
		if i == 0 {
			first = tr
		}
	}
	traceMu.Lock()
	within := traceBytes <= traceCacheCapBytes
	traceMu.Unlock()
	if !within {
		t.Error("cache exceeds its byte budget after eviction")
	}
	if mStreamEvicts.Value() == evictsBefore {
		t.Error("eviction not counted in casa_stream_cache_evictions_total")
	}
	// The evicted trace stays usable for existing holders.
	sink := &recordingSink{}
	if first.Replay(newTestLayout(progs[0]), sink) == 0 {
		t.Error("evicted trace lost its recording")
	}
}

// irregularProgram alternates between distinct blocks so its trace does
// not RLE-compress to nothing (unlike a plain self-loop).
func irregularProgram(t *testing.T, trips int) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("irregular")
	f := pb.Func("main")
	f.Block("a").ALU(2)
	f.Block("b").ALU(1).Branch("a", "c", ir.Loop{Trips: trips})
	f.Block("c").ALU(3).Branch("a", "end", ir.Loop{Trips: 2})
	f.Block("end").Return()
	return mustBuild(t, pb)
}

// TestTraceSizeBytesCountsCapacity: the eviction bound must charge what
// the allocator committed (slice capacity), not the logical length.
func TestTraceSizeBytesCountsCapacity(t *testing.T) {
	tr := &Trace{
		refs:   make([]uint64, 2, 100),
		instrs: make([]int32, 2, 100),
		kinds:  make([]StepKind, 2, 100),
		counts: make([]int64, 2, 100),
	}
	if got, want := tr.SizeBytes(), 100*(8+4+1+8); got != want {
		t.Fatalf("SizeBytes = %d, want %d (capacity-based)", got, want)
	}
	if tr.NumSteps() != 2 {
		t.Fatalf("NumSteps = %d, want 2", tr.NumSteps())
	}
}

// TestTraceCacheBytesGauge: casa_stream_cache_bytes tracks the exact
// capacity-based byte total of the resident entries (it accounts the
// trace cache; the name predates the trace design).
func TestTraceCacheBytesGauge(t *testing.T) {
	oldCap := traceCacheCapBytes
	traceCacheCapBytes = 1 << 20
	defer func() { traceCacheCapBytes = oldCap }()

	p := loopProgram(t, 33)
	tr, err := CachedTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SizeBytes() < 21*tr.NumSteps() {
		t.Fatalf("SizeBytes %d below the 21·steps floor %d", tr.SizeBytes(), 21*tr.NumSteps())
	}

	// The gauge must equal the locked byte total, and that total must be
	// the sum of SizeBytes over resident completed entries.
	traceMu.Lock()
	var want int
	for _, e := range traceCache {
		if e.t != nil {
			want += e.t.SizeBytes()
		}
	}
	got := traceBytes
	traceMu.Unlock()
	if got != want {
		t.Errorf("traceBytes %d != sum of resident SizeBytes %d", got, want)
	}
	if g := mStreamBytes.Value(); g != int64(got) {
		t.Errorf("casa_stream_cache_bytes gauge %d != accounted bytes %d", g, got)
	}
}

// ---- Fault injection and memo robustness ------------------------------------

func TestCachedTraceInjectedReadFault(t *testing.T) {
	fault.Set(fault.NewPlan().On(fault.StreamRead, 1))
	defer fault.Set(nil)

	p := loopProgram(t, 9)
	if _, err := CachedTrace(p); err == nil {
		t.Fatal("injected stream-read fault not surfaced")
	} else {
		var inj *fault.InjectedError
		if !errors.As(err, &inj) {
			t.Fatalf("error %v is not an InjectedError", err)
		}
	}
	// The next (non-faulted) call succeeds: the failure was transient.
	tr, err := CachedTrace(p)
	if err != nil {
		t.Fatalf("post-fault call: %v", err)
	}
	if tr.Steps() == 0 {
		t.Fatal("post-fault trace empty")
	}
}

func TestCachedTraceInjectedMemoMissBypassesCache(t *testing.T) {
	p := loopProgram(t, 13)
	lay := newTestLayout(p)
	cached, err := CachedTrace(p)
	if err != nil {
		t.Fatal(err)
	}

	fault.Set(fault.NewPlan().Always(fault.MemoMiss))
	defer fault.Set(nil)
	fresh, err := CachedTrace(p)
	if err != nil {
		t.Fatalf("memo-miss path: %v", err)
	}
	if fresh == cached {
		t.Fatal("injected memo miss still served the cached instance")
	}
	// Determinism: the bypassed recording replays byte-identically.
	a, b := &recordingSink{}, &recordingSink{}
	cached.Replay(lay, a)
	fresh.Replay(lay, b)
	if len(a.addrs) != len(b.addrs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.addrs), len(b.addrs))
	}
	for i := range a.addrs {
		if a.addrs[i] != b.addrs[i] || a.mos[i] != b.mos[i] {
			t.Fatalf("fetch %d differs under memo-miss bypass", i)
		}
	}
}

func TestCachedProfileInjectedMemoMissBypassesCache(t *testing.T) {
	p := loopProgram(t, 17)
	cached, err := CachedProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	fault.Set(fault.NewPlan().Always(fault.MemoMiss))
	defer fault.Set(nil)
	fresh, err := CachedProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == cached {
		t.Fatal("injected memo miss still served the cached profile")
	}
	if fresh.Fetches != cached.Fetches {
		t.Fatalf("bypassed profile differs: %d vs %d fetches", fresh.Fetches, cached.Fetches)
	}
}

// TestCachedProfileErrorNotPoisoned: a failing profile run must not be
// cached forever — the slot is dropped so a later caller retries instead
// of replaying the stale error.
func TestCachedProfileErrorNotPoisoned(t *testing.T) {
	// Unbounded recursion exceeds the simulator's call-depth limit, a real
	// (non-injected) profiling failure.
	pb := ir.NewProgramBuilder("recurse")
	f := pb.Func("main")
	f.Block("entry").ALU(1).Call("main")
	f.Block("done").Return()
	p := mustBuild(t, pb)

	if _, err := CachedProfile(p); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("want call-depth failure, got %v", err)
	}
	if _, ok := profileMemo.Load(p); ok {
		t.Fatal("failed profile run left a poisoned memo entry")
	}
	// And the retry fails afresh (same program, same error) rather than
	// hitting a cached slot — proving the path stays retryable.
	if _, err := CachedProfile(p); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("retry: want call-depth failure, got %v", err)
	}
}

// TestCachedTraceErrorNotPoisoned: a failing trace recording is likewise
// retryable.
func TestCachedTraceErrorNotPoisoned(t *testing.T) {
	pb := ir.NewProgramBuilder("recurse-trace")
	f := pb.Func("main")
	f.Block("entry").ALU(1).Call("main")
	f.Block("done").Return()
	p := mustBuild(t, pb)

	if _, err := CachedTrace(p); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("want call-depth failure, got %v", err)
	}
	traceMu.Lock()
	_, resident := traceCache[p]
	traceMu.Unlock()
	if resident {
		t.Fatal("failed trace recording left a poisoned memo entry")
	}
	if _, err := CachedTrace(p); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("retry: want call-depth failure, got %v", err)
	}
}
