// Memoization layer: because every simulation in this repository is
// deterministic, a program fully determines its profile and its dynamic
// block trace. The experiment engine runs the same workloads many times
// across figures — every study re-profiles its workload, and each grid
// cell replays the workload under several layouts — so both results are
// cached process-wide and shared across concurrent experiment cells.
//
// Keys: profiles and traces are both keyed by program identity
// (*ir.Program). A recorded Trace is layout-independent (it stores the
// dynamic block sequence, not addresses), so one entry serves every
// layout and cache configuration — the predecessor design cached raw
// per-(program, layout) address streams and needed a 128MB budget for
// what a handful of kilobyte-sized traces now cover. Programs handed to
// this layer must be treated as immutable; the bundled workloads and
// every pipeline consumer already are.
//
// All entries are built exactly once (singleflight) and are safe for
// concurrent use; recorded traces are immutable and replayed without
// locking. The trace cache keeps the byte-bounded LRU shape of the old
// stream cache (counting slice *capacity*, since that is what the
// allocator actually committed) so the bound and its metrics stay
// meaningful if trace sizes ever grow.
//
// Both memo layers report into the default metrics registry:
// casa_profile_memo_{hits,misses}_total, casa_stream_cache_{hits,
// misses,evictions}_total and the casa_stream_cache_bytes gauge (the
// stream-cache names are kept for dashboard continuity; they account
// the trace cache now).
package sim

import (
	"os"
	"sync"

	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
)

// Memo metrics, resolved once.
var (
	mProfileHits   = obs.GetCounter("casa_profile_memo_hits_total")
	mProfileMisses = obs.GetCounter("casa_profile_memo_misses_total")
	mStreamHits    = obs.GetCounter("casa_stream_cache_hits_total")
	mStreamMisses  = obs.GetCounter("casa_stream_cache_misses_total")
	mStreamEvicts  = obs.GetCounter("casa_stream_cache_evictions_total")
	mStreamBytes   = obs.GetGauge("casa_stream_cache_bytes")
)

// ---- Profile memoization ---------------------------------------------------

// profileEntry is a singleflight slot for one program's profile.
type profileEntry struct {
	once sync.Once
	prof *Profile
	err  error
}

var profileMemo sync.Map // *ir.Program → *profileEntry

// CachedProfile is ProfileProgram with process-wide memoization: the first
// caller executes the program, every later caller (concurrent ones
// included) receives the same immutable Profile. The program must not be
// mutated after the first call.
func CachedProfile(p *ir.Program) (*Profile, error) {
	if fault.Hit(fault.MemoMiss) {
		// Injected memo miss: recompute without touching the cache. The
		// result is identical (simulation is deterministic); only the
		// memoization benefit is lost.
		mProfileMisses.Inc()
		return ProfileProgram(p)
	}
	slot, loaded := profileMemo.LoadOrStore(p, &profileEntry{})
	if loaded {
		mProfileHits.Inc()
	} else {
		mProfileMisses.Inc()
	}
	e := slot.(*profileEntry)
	e.once.Do(func() {
		e.prof, e.err = ProfileProgram(p)
		if e.err != nil {
			// Do not let a transient failure poison the memo forever: drop
			// the slot so a later caller can retry. CompareAndDelete only
			// removes OUR slot — a concurrent retry that already replaced
			// it is left alone.
			profileMemo.CompareAndDelete(p, slot)
		}
	})
	return e.prof, e.err
}

// ---- Trace memoization -----------------------------------------------------

// traceCacheCapBytes bounds the total bytes retained across cached
// traces, measured as backing-array capacity (Trace.SizeBytes). Traces
// are orders of magnitude smaller than the raw streams this cache used
// to hold, but the LRU bound is kept so pathological workloads (huge
// irregular step sequences) stay bounded. Variable for tests.
var traceCacheCapBytes = 128 << 20

type traceEntry struct {
	once    sync.Once
	t       *Trace
	err     error
	lastUse int64 // guarded by traceMu
}

var (
	traceMu    sync.Mutex
	traceCache = map[*ir.Program]*traceEntry{}
	traceTick  int64
	traceBytes int // total SizeBytes of completed entries, guarded by traceMu
)

// CachedTrace returns the recorded block trace for p, recording it on
// first use. Entries are evicted least-recently-used once the cache
// exceeds its byte budget; evicted traces remain valid for holders.
func CachedTrace(p *ir.Program) (*Trace, error) {
	if err := fault.ErrorAt(fault.StreamRead); err != nil {
		return nil, err
	}
	if fault.Hit(fault.MemoMiss) {
		// Injected memo miss: re-record outside the cache. Deterministic
		// simulation makes the replacement trace identical.
		mStreamMisses.Inc()
		return RecordTrace(p)
	}
	traceMu.Lock()
	e, ok := traceCache[p]
	if !ok {
		e = &traceEntry{}
		traceCache[p] = e
	}
	traceTick++
	e.lastUse = traceTick
	traceMu.Unlock()
	if ok {
		mStreamHits.Inc()
	} else {
		mStreamMisses.Inc()
	}

	e.once.Do(func() {
		e.t, e.err = RecordTrace(p)
		if e.err != nil {
			traceMu.Lock()
			delete(traceCache, p)
			traceMu.Unlock()
			return
		}
		traceMu.Lock()
		traceBytes += e.t.SizeBytes()
		evictTracesLocked(e)
		mStreamBytes.Set(int64(traceBytes))
		traceMu.Unlock()
	})
	return e.t, e.err
}

// evictTracesLocked drops completed entries, oldest first, until the
// byte budget holds; keep is never evicted. Call with traceMu held.
func evictTracesLocked(keep *traceEntry) {
	for traceBytes > traceCacheCapBytes {
		var oldKey *ir.Program
		var old *traceEntry
		for k, e := range traceCache {
			if e == keep || e.t == nil {
				continue
			}
			if old == nil || e.lastUse < old.lastUse {
				oldKey, old = k, e
			}
		}
		if old == nil {
			return
		}
		traceBytes -= old.t.SizeBytes()
		mStreamEvicts.Inc()
		delete(traceCache, oldKey)
	}
}

// Forget drops p's memoized profile and recorded trace, releasing the
// memory they pin. The allocation server calls it when it evicts an
// interned client program: the memo layers are keyed by *ir.Program, so
// without an explicit release a long-running process would accumulate
// one profile and one trace per distinct program it ever saw. An entry
// whose computation is still in flight is left alone (its bytes are
// accounted only on completion); a later Forget can retire it.
func Forget(p *ir.Program) {
	profileMemo.Delete(p)
	traceMu.Lock()
	if e, ok := traceCache[p]; ok && e.t != nil {
		traceBytes -= e.t.SizeBytes()
		delete(traceCache, p)
		mStreamBytes.Set(int64(traceBytes))
	}
	traceMu.Unlock()
}

// StreamCacheDisabled reports whether CASA_STREAM_CACHE requests the
// memoized trace path off ("0", "off" or "false"); the simulator then
// re-executes programs for every run (still at line granularity — only
// the execute-once memoization is bypassed).
func StreamCacheDisabled() bool {
	switch os.Getenv("CASA_STREAM_CACHE") {
	case "0", "off", "false":
		return true
	}
	return false
}
