// Memoization layer: because every simulation in this repository is
// deterministic, a (program, layout) pair fully determines the profile
// and the instruction fetch stream. The experiment engine runs the same
// pairs many times across figures — every study re-profiles its workload,
// and the plain trace layout is simulated once while profiling, once for
// the cache-only reference and once under the loop cache — so the results
// are cached process-wide and shared across concurrent experiment cells.
//
// Keys: profiles are keyed by program identity (*ir.Program); recorded
// fetch streams by (program identity, layout fingerprint), where the
// fingerprint hashes every address the layout can emit (block bases,
// memory-object IDs, appended jumps). Programs handed to this layer must
// be treated as immutable; the bundled workloads and every pipeline
// consumer already are.
//
// All entries are built exactly once (singleflight) and are safe for
// concurrent use; recorded streams are immutable and replayed without
// locking. The stream cache is bounded (streamCacheCapFetches) with
// least-recently-used eviction, since one mpeg-sized stream is ~20 MB.
package sim

import (
	"os"
	"sync"

	"repro/internal/ir"
)

// ---- Profile memoization ---------------------------------------------------

// profileEntry is a singleflight slot for one program's profile.
type profileEntry struct {
	once sync.Once
	prof *Profile
	err  error
}

var profileMemo sync.Map // *ir.Program → *profileEntry

// CachedProfile is ProfileProgram with process-wide memoization: the first
// caller executes the program, every later caller (concurrent ones
// included) receives the same immutable Profile. The program must not be
// mutated after the first call.
func CachedProfile(p *ir.Program) (*Profile, error) {
	slot, _ := profileMemo.LoadOrStore(p, &profileEntry{})
	e := slot.(*profileEntry)
	e.once.Do(func() { e.prof, e.err = ProfileProgram(p) })
	return e.prof, e.err
}

// ---- Fetch-stream memoization ----------------------------------------------

// Stream is a recorded instruction fetch stream: the exact (address,
// memory object) sequence a run under one layout produces, including
// layout-appended jump fetches. Immutable once recorded.
type Stream struct {
	addrs []uint32
	mos   []int32
}

// Len returns the number of recorded fetches.
func (s *Stream) Len() int { return len(s.addrs) }

// Replay delivers the recorded stream to sink and returns the fetch
// count. Replaying is read-only and safe for concurrent use.
func (s *Stream) Replay(sink Fetcher) int64 {
	for i, addr := range s.addrs {
		sink.Fetch(addr, int(s.mos[i]))
	}
	return int64(len(s.addrs))
}

// RecordStream executes p under lay once and records the full fetch
// stream. The recording is preallocated from the program's memoized
// profile — the stream length is the profile's fetch count plus one fetch
// per executed layout-appended jump — so large streams are written into
// (at most) one right-sized allocation instead of repeated append growth.
func RecordStream(p *ir.Program, lay Layout, opts ...Option) (*Stream, error) {
	s := &Stream{}
	if prof, err := CachedProfile(p); err == nil {
		n := prof.Fetches
		for _, f := range p.Funcs {
			for b := range f.Blocks {
				ref := ir.BlockRef{Func: f.ID, Block: ir.BlockID(b)}
				if _, ok := lay.FallJump(ref); ok {
					n += prof.BlockCount(ref)
				}
			}
		}
		s.addrs = make([]uint32, 0, n)
		s.mos = make([]int32, 0, n)
	}
	_, err := Run(p, lay, FetcherFunc(func(addr uint32, mo int) {
		s.addrs = append(s.addrs, addr)
		s.mos = append(s.mos, int32(mo))
	}), opts...)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// FNV-1a, the hash behind every fingerprint in the memo layer.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// LayoutFingerprint hashes everything a layout contributes to a fetch
// stream — per-block base addresses, memory-object IDs and appended jump
// addresses — so two layouts with equal fingerprints produce identical
// streams for the same program.
func LayoutFingerprint(p *ir.Program, lay Layout) uint64 {
	h := fnvOffset
	for _, f := range p.Funcs {
		for b := range f.Blocks {
			ref := ir.BlockRef{Func: f.ID, Block: ir.BlockID(b)}
			h = fnvMix(h, uint64(lay.BlockBase(ref)))
			h = fnvMix(h, uint64(lay.BlockMO(ref)))
			if addr, ok := lay.FallJump(ref); ok {
				h = fnvMix(h, uint64(addr)+1)
			}
		}
	}
	return h
}

// streamCacheCapFetches bounds the total fetches retained across cached
// streams (~8 bytes per fetch, so the default caps memory near 128 MB).
// Variable for tests.
var streamCacheCapFetches = 16 << 20

type streamKey struct {
	prog *ir.Program
	fp   uint64
}

type streamEntry struct {
	once    sync.Once
	s       *Stream
	err     error
	lastUse int64 // guarded by streamMu
}

var (
	streamMu      sync.Mutex
	streamCache   = map[streamKey]*streamEntry{}
	streamTick    int64
	streamFetches int // total fetches of completed entries, guarded by streamMu
)

// CachedStream returns the recorded fetch stream for (p, lay), recording
// it on first use. Entries are evicted least-recently-used once the cache
// exceeds its fetch budget; evicted streams remain valid for holders.
func CachedStream(p *ir.Program, lay Layout) (*Stream, error) {
	key := streamKey{prog: p, fp: LayoutFingerprint(p, lay)}
	streamMu.Lock()
	e, ok := streamCache[key]
	if !ok {
		e = &streamEntry{}
		streamCache[key] = e
	}
	streamTick++
	e.lastUse = streamTick
	streamMu.Unlock()

	e.once.Do(func() {
		e.s, e.err = RecordStream(p, lay)
		if e.err != nil {
			streamMu.Lock()
			delete(streamCache, key)
			streamMu.Unlock()
			return
		}
		streamMu.Lock()
		streamFetches += e.s.Len()
		evictStreamsLocked(e)
		streamMu.Unlock()
	})
	return e.s, e.err
}

// evictStreamsLocked drops completed entries, oldest first, until the
// fetch budget holds; keep is never evicted. Call with streamMu held.
func evictStreamsLocked(keep *streamEntry) {
	for streamFetches > streamCacheCapFetches {
		var oldKey streamKey
		var old *streamEntry
		for k, e := range streamCache {
			if e == keep || e.s == nil {
				continue
			}
			if old == nil || e.lastUse < old.lastUse {
				oldKey, old = k, e
			}
		}
		if old == nil {
			return
		}
		streamFetches -= old.s.Len()
		delete(streamCache, oldKey)
	}
}

// StreamCacheDisabled reports whether CASA_STREAM_CACHE requests the
// memoized stream path off ("0", "off" or "false"); the simulator then
// re-executes programs for every run.
func StreamCacheDisabled() bool {
	switch os.Getenv("CASA_STREAM_CACHE") {
	case "0", "off", "false":
		return true
	}
	return false
}
