// Memoization layer: because every simulation in this repository is
// deterministic, a (program, layout) pair fully determines the profile
// and the instruction fetch stream. The experiment engine runs the same
// pairs many times across figures — every study re-profiles its workload,
// and the plain trace layout is simulated once while profiling, once for
// the cache-only reference and once under the loop cache — so the results
// are cached process-wide and shared across concurrent experiment cells.
//
// Keys: profiles are keyed by program identity (*ir.Program); recorded
// fetch streams by (program identity, layout fingerprint), where the
// fingerprint hashes every address the layout can emit (block bases,
// memory-object IDs, appended jumps). Programs handed to this layer must
// be treated as immutable; the bundled workloads and every pipeline
// consumer already are.
//
// All entries are built exactly once (singleflight) and are safe for
// concurrent use; recorded streams are immutable and replayed without
// locking. The stream cache is byte-bounded (streamCacheCapBytes,
// counting slice *capacity*, since that is what the allocator actually
// committed) with least-recently-used eviction — one mpeg-sized stream
// is ~20 MB.
//
// Both memo layers report into the default metrics registry:
// casa_profile_memo_{hits,misses}_total, casa_stream_cache_{hits,
// misses,evictions}_total and the casa_stream_cache_bytes gauge.
package sim

import (
	"os"
	"sync"

	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
)

// Memo metrics, resolved once.
var (
	mProfileHits   = obs.GetCounter("casa_profile_memo_hits_total")
	mProfileMisses = obs.GetCounter("casa_profile_memo_misses_total")
	mStreamHits    = obs.GetCounter("casa_stream_cache_hits_total")
	mStreamMisses  = obs.GetCounter("casa_stream_cache_misses_total")
	mStreamEvicts  = obs.GetCounter("casa_stream_cache_evictions_total")
	mStreamBytes   = obs.GetGauge("casa_stream_cache_bytes")
)

// ---- Profile memoization ---------------------------------------------------

// profileEntry is a singleflight slot for one program's profile.
type profileEntry struct {
	once sync.Once
	prof *Profile
	err  error
}

var profileMemo sync.Map // *ir.Program → *profileEntry

// CachedProfile is ProfileProgram with process-wide memoization: the first
// caller executes the program, every later caller (concurrent ones
// included) receives the same immutable Profile. The program must not be
// mutated after the first call.
func CachedProfile(p *ir.Program) (*Profile, error) {
	if fault.Hit(fault.MemoMiss) {
		// Injected memo miss: recompute without touching the cache. The
		// result is identical (simulation is deterministic); only the
		// memoization benefit is lost.
		mProfileMisses.Inc()
		return ProfileProgram(p)
	}
	slot, loaded := profileMemo.LoadOrStore(p, &profileEntry{})
	if loaded {
		mProfileHits.Inc()
	} else {
		mProfileMisses.Inc()
	}
	e := slot.(*profileEntry)
	e.once.Do(func() {
		e.prof, e.err = ProfileProgram(p)
		if e.err != nil {
			// Do not let a transient failure poison the memo forever: drop
			// the slot so a later caller can retry. CompareAndDelete only
			// removes OUR slot — a concurrent retry that already replaced
			// it is left alone.
			profileMemo.CompareAndDelete(p, slot)
		}
	})
	return e.prof, e.err
}

// ---- Fetch-stream memoization ----------------------------------------------

// Stream is a recorded instruction fetch stream: the exact (address,
// memory object) sequence a run under one layout produces, including
// layout-appended jump fetches. Immutable once recorded.
type Stream struct {
	addrs []uint32
	mos   []int32
}

// Len returns the number of recorded fetches.
func (s *Stream) Len() int { return len(s.addrs) }

// SizeBytes returns the memory the recording actually holds: the
// *capacity* of both backing arrays, not their length. RecordStream
// preallocates from the profile's fetch count, but any append past the
// estimate (or a failed estimate falling back to growth doubling)
// leaves cap > len, and the eviction bound must account for what the
// allocator committed, not what the stream logically contains.
func (s *Stream) SizeBytes() int {
	return 4*cap(s.addrs) + 4*cap(s.mos)
}

// Replay delivers the recorded stream to sink and returns the fetch
// count. Replaying is read-only and safe for concurrent use.
func (s *Stream) Replay(sink Fetcher) int64 {
	for i, addr := range s.addrs {
		sink.Fetch(addr, int(s.mos[i]))
	}
	return int64(len(s.addrs))
}

// RecordStream executes p under lay once and records the full fetch
// stream. The recording is preallocated from the program's memoized
// profile — the stream length is the profile's fetch count plus one fetch
// per executed layout-appended jump — so large streams are written into
// (at most) one right-sized allocation instead of repeated append growth.
func RecordStream(p *ir.Program, lay Layout, opts ...Option) (*Stream, error) {
	s := &Stream{}
	if prof, err := CachedProfile(p); err == nil {
		n := prof.Fetches
		for _, f := range p.Funcs {
			for b := range f.Blocks {
				ref := ir.BlockRef{Func: f.ID, Block: ir.BlockID(b)}
				if _, ok := lay.FallJump(ref); ok {
					n += prof.BlockCount(ref)
				}
			}
		}
		s.addrs = make([]uint32, 0, n)
		s.mos = make([]int32, 0, n)
	}
	_, err := Run(p, lay, FetcherFunc(func(addr uint32, mo int) {
		s.addrs = append(s.addrs, addr)
		s.mos = append(s.mos, int32(mo))
	}), opts...)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// FNV-1a, the hash behind every fingerprint in the memo layer.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// LayoutFingerprint hashes everything a layout contributes to a fetch
// stream — per-block base addresses, memory-object IDs and appended jump
// addresses — so two layouts with equal fingerprints produce identical
// streams for the same program.
func LayoutFingerprint(p *ir.Program, lay Layout) uint64 {
	h := fnvOffset
	for _, f := range p.Funcs {
		for b := range f.Blocks {
			ref := ir.BlockRef{Func: f.ID, Block: ir.BlockID(b)}
			h = fnvMix(h, uint64(lay.BlockBase(ref)))
			h = fnvMix(h, uint64(lay.BlockMO(ref)))
			if addr, ok := lay.FallJump(ref); ok {
				h = fnvMix(h, uint64(addr)+1)
			}
		}
	}
	return h
}

// streamCacheCapBytes bounds the total bytes retained across cached
// streams, measured as backing-array capacity (Stream.SizeBytes). The
// default caps memory at 128 MB. Variable for tests.
var streamCacheCapBytes = 128 << 20

type streamKey struct {
	prog *ir.Program
	fp   uint64
}

type streamEntry struct {
	once    sync.Once
	s       *Stream
	err     error
	lastUse int64 // guarded by streamMu
}

var (
	streamMu    sync.Mutex
	streamCache = map[streamKey]*streamEntry{}
	streamTick  int64
	streamBytes int // total SizeBytes of completed entries, guarded by streamMu
)

// CachedStream returns the recorded fetch stream for (p, lay), recording
// it on first use. Entries are evicted least-recently-used once the cache
// exceeds its byte budget; evicted streams remain valid for holders.
func CachedStream(p *ir.Program, lay Layout) (*Stream, error) {
	if err := fault.ErrorAt(fault.StreamRead); err != nil {
		return nil, err
	}
	if fault.Hit(fault.MemoMiss) {
		// Injected memo miss: re-record outside the cache. Deterministic
		// simulation makes the replacement stream identical.
		mStreamMisses.Inc()
		return RecordStream(p, lay)
	}
	key := streamKey{prog: p, fp: LayoutFingerprint(p, lay)}
	streamMu.Lock()
	e, ok := streamCache[key]
	if !ok {
		e = &streamEntry{}
		streamCache[key] = e
	}
	streamTick++
	e.lastUse = streamTick
	streamMu.Unlock()
	if ok {
		mStreamHits.Inc()
	} else {
		mStreamMisses.Inc()
	}

	e.once.Do(func() {
		e.s, e.err = RecordStream(p, lay)
		if e.err != nil {
			streamMu.Lock()
			delete(streamCache, key)
			streamMu.Unlock()
			return
		}
		streamMu.Lock()
		streamBytes += e.s.SizeBytes()
		evictStreamsLocked(e)
		mStreamBytes.Set(int64(streamBytes))
		streamMu.Unlock()
	})
	return e.s, e.err
}

// evictStreamsLocked drops completed entries, oldest first, until the
// byte budget holds; keep is never evicted. Call with streamMu held.
func evictStreamsLocked(keep *streamEntry) {
	for streamBytes > streamCacheCapBytes {
		var oldKey streamKey
		var old *streamEntry
		for k, e := range streamCache {
			if e == keep || e.s == nil {
				continue
			}
			if old == nil || e.lastUse < old.lastUse {
				oldKey, old = k, e
			}
		}
		if old == nil {
			return
		}
		streamBytes -= old.s.SizeBytes()
		mStreamEvicts.Inc()
		delete(streamCache, oldKey)
	}
}

// StreamCacheDisabled reports whether CASA_STREAM_CACHE requests the
// memoized stream path off ("0", "off" or "false"); the simulator then
// re-executes programs for every run.
func StreamCacheDisabled() bool {
	switch os.Getenv("CASA_STREAM_CACHE") {
	case "0", "off", "false":
		return true
	}
	return false
}
