package sim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ir"
)

// loopProgram: entry(2 instrs) -> body(4+branch) looping N times -> exit(ret).
func loopProgram(t *testing.T, trips int) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("loop")
	f := pb.Func("main")
	f.Block("entry").ALU(2)
	f.Block("body").Code(4).Branch("body", "exit", ir.Loop{Trips: trips})
	f.Block("exit").Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestProfileLoopCounts(t *testing.T) {
	const trips = 10
	p := loopProgram(t, trips)
	prof, err := ProfileProgram(p)
	if err != nil {
		t.Fatalf("ProfileProgram: %v", err)
	}
	entry := ir.BlockRef{Func: 0, Block: 0}
	body := ir.BlockRef{Func: 0, Block: 1}
	exit := ir.BlockRef{Func: 0, Block: 2}
	if got := prof.BlockCount(entry); got != 1 {
		t.Errorf("entry count = %d, want 1", got)
	}
	if got := prof.BlockCount(body); got != trips {
		t.Errorf("body count = %d, want %d", got, trips)
	}
	if got := prof.BlockCount(exit); got != 1 {
		t.Errorf("exit count = %d, want 1", got)
	}
	// Fetches: entry 2, body (4+1 branch)*10, exit 1 (ret).
	want := int64(2 + 5*trips + 1)
	if prof.Fetches != want {
		t.Errorf("fetches = %d, want %d", prof.Fetches, want)
	}
	// Edges: entry->body fall x1; body->body taken x9; body->exit fall x1.
	if got := prof.FallCount(entry, body); got != 1 {
		t.Errorf("entry->body fall = %d, want 1", got)
	}
	if got := prof.EdgeCount(Edge{From: body, To: body, Kind: EdgeTaken}); got != trips-1 {
		t.Errorf("back edge = %d, want %d", got, trips-1)
	}
	if got := prof.FallCount(body, exit); got != 1 {
		t.Errorf("body->exit fall = %d, want 1", got)
	}
}

func TestProfileCallsAndReturns(t *testing.T) {
	pb := ir.NewProgramBuilder("calls")
	main := pb.Func("main")
	main.Block("entry").ALU(1)
	main.Block("loop").ALU(2).Call("leaf")
	main.Block("after").ALU(1).Branch("loop", "done", ir.Loop{Trips: 5})
	main.Block("done").Return()
	leaf := pb.Func("leaf")
	leaf.Block("body").ALU(3).Return()
	p := mustBuild(t, pb)

	prof, err := ProfileProgram(p)
	if err != nil {
		t.Fatalf("ProfileProgram: %v", err)
	}
	leafBody := ir.BlockRef{Func: 1, Block: 0}
	if got := prof.BlockCount(leafBody); got != 5 {
		t.Errorf("leaf executed %d times, want 5", got)
	}
	loop := ir.BlockRef{Func: 0, Block: 1}
	after := ir.BlockRef{Func: 0, Block: 2}
	callEdge := Edge{From: loop, To: leafBody, Kind: EdgeCall}
	if got := prof.EdgeCount(callEdge); got != 5 {
		t.Errorf("call edge = %d, want 5", got)
	}
	// Return continuation is a fall edge from the call block.
	if got := prof.FallCount(loop, after); got != 5 {
		t.Errorf("return continuation = %d, want 5", got)
	}
}

func TestProfileDeterminism(t *testing.T) {
	pb := ir.NewProgramBuilder("rand")
	f := pb.Func("main")
	f.Block("h").ALU(1)
	f.Block("c").ALU(1).Branch("x", "y", ir.Biased{P: 0.3, Seed: 99})
	f.Block("x").ALU(2).Jump("m")
	f.Block("y").ALU(3)
	f.Block("m").ALU(1).Branch("c", "exit", ir.Loop{Trips: 1000})
	f.Block("exit").Return()
	p := mustBuild(t, pb)

	a, err := ProfileProgram(p)
	if err != nil {
		t.Fatalf("ProfileProgram: %v", err)
	}
	b, err := ProfileProgram(p)
	if err != nil {
		t.Fatalf("ProfileProgram: %v", err)
	}
	if a.Fetches != b.Fetches {
		t.Errorf("fetches differ across runs: %d vs %d", a.Fetches, b.Fetches)
	}
	for e, n := range a.Edges() {
		if b.EdgeCount(e) != n {
			t.Errorf("edge %v: %d vs %d", e, n, b.EdgeCount(e))
		}
	}
	// Biased split roughly 30/70.
	x := ir.BlockRef{Func: 0, Block: 2}
	cnt := a.BlockCount(x)
	if cnt < 200 || cnt > 400 {
		t.Errorf("biased taken count = %d, want ~300", cnt)
	}
}

func TestFetchLimit(t *testing.T) {
	// Infinite loop: jump to self.
	pb := ir.NewProgramBuilder("inf")
	pb.Func("main").Block("a").ALU(1).Jump("a")
	p := mustBuild(t, pb)
	_, err := ProfileProgram(p, WithMaxFetches(1000))
	if !errors.Is(err, ErrFetchLimit) {
		t.Fatalf("err = %v, want ErrFetchLimit", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	// Unbounded recursion: main calls itself unconditionally.
	pb := ir.NewProgramBuilder("rec")
	f := pb.Func("main")
	f.Block("a").ALU(1).Call("main")
	f.Block("b").Return()
	p := mustBuild(t, pb)
	_, err := ProfileProgram(p)
	if !errors.Is(err, ErrCallDepth) {
		t.Fatalf("err = %v, want ErrCallDepth", err)
	}
}

// testLayout places blocks contiguously in textual order and can mark
// blocks as having appended jumps.
type testLayout struct {
	base  map[ir.BlockRef]uint32
	mo    map[ir.BlockRef]int
	jumps map[ir.BlockRef]uint32
}

func newTestLayout(p *ir.Program) *testLayout {
	l := &testLayout{
		base:  make(map[ir.BlockRef]uint32),
		mo:    make(map[ir.BlockRef]int),
		jumps: make(map[ir.BlockRef]uint32),
	}
	addr := uint32(0)
	mo := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			ref := ir.BlockRef{Func: f.ID, Block: b.ID}
			l.base[ref] = addr
			l.mo[ref] = mo
			addr += uint32(b.Size())
			mo++
		}
	}
	return l
}

func (l *testLayout) BlockBase(ref ir.BlockRef) uint32 { return l.base[ref] }
func (l *testLayout) BlockMO(ref ir.BlockRef) int      { return l.mo[ref] }
func (l *testLayout) FallJump(ref ir.BlockRef) (uint32, bool) {
	a, ok := l.jumps[ref]
	return a, ok
}

type recordingFetcher struct {
	addrs []uint32
	mos   []int
}

func (r *recordingFetcher) Fetch(addr uint32, mo int) {
	r.addrs = append(r.addrs, addr)
	r.mos = append(r.mos, mo)
}

func TestRunEmitsSequentialAddresses(t *testing.T) {
	p := loopProgram(t, 2)
	lay := newTestLayout(p)
	var rec recordingFetcher
	total, err := Run(p, lay, &rec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if total != int64(len(rec.addrs)) {
		t.Fatalf("total = %d, recorded %d", total, len(rec.addrs))
	}
	// entry: 2 instrs at 0,4; body: 5 instrs at 8..24 twice; exit: 1 at 28.
	want := []uint32{0, 4, 8, 12, 16, 20, 24, 8, 12, 16, 20, 24, 28}
	if len(rec.addrs) != len(want) {
		t.Fatalf("stream length = %d, want %d: %v", len(rec.addrs), len(want), rec.addrs)
	}
	for i := range want {
		if rec.addrs[i] != want[i] {
			t.Fatalf("addr[%d] = %d, want %d (stream %v)", i, rec.addrs[i], want[i], rec.addrs)
		}
	}
	// MO IDs follow blocks.
	if rec.mos[0] != 0 || rec.mos[2] != 1 || rec.mos[len(rec.mos)-1] != 2 {
		t.Errorf("mo stream wrong: %v", rec.mos)
	}
}

func TestRunEmitsAppendedJumps(t *testing.T) {
	p := loopProgram(t, 3)
	lay := newTestLayout(p)
	// Pretend the body->exit fall-through needs an appended jump at 0x1000.
	body := ir.BlockRef{Func: 0, Block: 1}
	lay.jumps[body] = 0x1000
	var rec recordingFetcher
	_, err := Run(p, lay, &rec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := 0
	for _, a := range rec.addrs {
		if a == 0x1000 {
			found++
		}
	}
	// The fall-through path out of body executes once (loop exit); the
	// entry->body fall-through has no appended jump.
	if found != 1 {
		t.Errorf("appended jump fetched %d times, want 1", found)
	}
}

func TestRunJumpFetchOnReturnContinuation(t *testing.T) {
	pb := ir.NewProgramBuilder("callret")
	main := pb.Func("main")
	main.Block("a").ALU(1).Call("leaf")
	main.Block("b").Return()
	leaf := pb.Func("leaf")
	leaf.Block("l").ALU(1).Return()
	p := mustBuild(t, pb)
	lay := newTestLayout(p)
	callBlock := ir.BlockRef{Func: 0, Block: 0}
	lay.jumps[callBlock] = 0x2000
	var rec recordingFetcher
	_, err := Run(p, lay, &rec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := false
	for _, a := range rec.addrs {
		if a == 0x2000 {
			found = true
		}
	}
	if !found {
		t.Error("return continuation did not fetch the appended jump")
	}
}

func TestRunMatchesProfileFetches(t *testing.T) {
	p := loopProgram(t, 25)
	prof, err := ProfileProgram(p)
	if err != nil {
		t.Fatalf("ProfileProgram: %v", err)
	}
	lay := newTestLayout(p) // no appended jumps
	var n int64
	total, err := Run(p, lay, FetcherFunc(func(uint32, int) { n++ }))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if total != prof.Fetches || n != prof.Fetches {
		t.Errorf("Run total = %d (cb %d), profile = %d", total, n, prof.Fetches)
	}
}

func TestEdgeKindString(t *testing.T) {
	if EdgeFall.String() != "fall" || EdgeTaken.String() != "taken" || EdgeCall.String() != "call" {
		t.Error("edge kind names wrong")
	}
	if EdgeKind(9).String() != "edgekind(9)" {
		t.Errorf("EdgeKind(9) = %q", EdgeKind(9).String())
	}
}

func TestSplitPreservesProfile(t *testing.T) {
	pb := ir.NewProgramBuilder("split")
	f := pb.Func("main")
	f.Block("hot").Code(40).Branch("hot", "mid", ir.Loop{Trips: 7})
	f.Block("mid").Code(25).Call("leaf")
	f.Block("exit").Return()
	leaf := pb.Func("leaf")
	leaf.Block("l").Code(30).Return()
	p := mustBuild(t, pb)

	orig, err := ProfileProgram(p)
	if err != nil {
		t.Fatalf("ProfileProgram: %v", err)
	}
	np, err := ir.SplitBlocks(p, 6)
	if err != nil {
		t.Fatalf("SplitBlocks: %v", err)
	}
	split, err := ProfileProgram(np)
	if err != nil {
		t.Fatalf("ProfileProgram(split): %v", err)
	}
	// Splitting adds block boundaries but no instructions: the dynamic
	// fetch count must be identical.
	if orig.Fetches != split.Fetches {
		t.Errorf("fetches changed: %d vs %d", orig.Fetches, split.Fetches)
	}
	// The split program's entry block executes exactly as often as the
	// original's.
	if got, want := split.BlockCount(ir.BlockRef{Func: 0, Block: 0}),
		orig.BlockCount(ir.BlockRef{Func: 0, Block: 0}); got != want {
		t.Errorf("entry count %d, want %d", got, want)
	}
}

func TestWithMaxFetchesBoundary(t *testing.T) {
	// A program with exactly N fetches runs with limit N but fails with
	// limit N-1.
	pb := ir.NewProgramBuilder("exact")
	pb.Func("main").Block("a").ALU(4).Return() // 5 fetches
	p := mustBuild(t, pb)
	if _, err := ProfileProgram(p, WithMaxFetches(5)); err != nil {
		t.Errorf("limit == fetches must pass: %v", err)
	}
	if _, err := ProfileProgram(p, WithMaxFetches(4)); !errors.Is(err, ErrFetchLimit) {
		t.Errorf("limit < fetches must fail, got %v", err)
	}
}

func TestDeepButBoundedRecursionViaChain(t *testing.T) {
	// A deep call chain (not recursion) must work: 100 functions calling
	// the next.
	pb := ir.NewProgramBuilder("chain")
	const depth = 100
	for i := 0; i < depth; i++ {
		f := pb.Func(fmt.Sprintf("f%d", i))
		if i+1 < depth {
			f.Block("a").ALU(1).Call(fmt.Sprintf("f%d", i+1))
			f.Block("b").Return()
		} else {
			f.Block("a").ALU(1).Return()
		}
	}
	p := mustBuild(t, pb)
	prof, err := ProfileProgram(p)
	if err != nil {
		t.Fatalf("deep chain: %v", err)
	}
	if prof.Fetches == 0 {
		t.Fatal("no fetches")
	}
}

// mustBuild finalizes a builder, failing the test on error.
func mustBuild(t testing.TB, pb *ir.ProgramBuilder) *ir.Program {
	t.Helper()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}
