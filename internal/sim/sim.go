// Package sim executes programs at instruction-fetch granularity. It is the
// reproduction's stand-in for ARM's ARMulator: given a program whose
// conditional branches carry deterministic behaviors (ir.Behavior), it walks
// the control-flow graph exactly as the processor would and reports either
// aggregate execution counts (Profile) or the full instruction fetch-address
// stream (Run), which downstream memory-hierarchy simulation consumes.
//
// Everything is deterministic: two runs of the same program produce
// identical streams, which makes every experiment in this repository
// exactly reproducible.
package sim

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ir"
)

// DefaultMaxFetches bounds a run when the caller does not provide a limit;
// it is generous enough for every bundled workload while still catching
// accidentally non-terminating programs.
const DefaultMaxFetches = 1 << 32

// ErrFetchLimit is returned when a run exceeds its fetch budget, which for a
// well-formed workload indicates a non-terminating branch behavior.
var ErrFetchLimit = errors.New("sim: fetch limit exceeded")

// ErrCallDepth is returned when the simulated call stack exceeds its bound,
// indicating runaway recursion in the workload.
var ErrCallDepth = errors.New("sim: call depth exceeded")

// maxCallDepth bounds the simulated call stack.
const maxCallDepth = 1 << 16

// Layout supplies concrete instruction addresses for a program whose blocks
// have been placed in memory (and possibly copied to a scratchpad). It is
// implemented by the layout package; sim depends only on this interface.
type Layout interface {
	// BlockBase returns the address of the first instruction of the block.
	// Instruction i of the block is fetched from BlockBase(ref) + 4*i.
	BlockBase(ref ir.BlockRef) uint32
	// BlockMO returns the memory-object (trace) ID containing the block.
	BlockMO(ref ir.BlockRef) int
	// FallJump reports the address of the jump instruction appended after
	// the block, fetched whenever control leaves the block along its
	// fall-through path toward a non-adjacent successor. ok is false when
	// the successor is adjacent and no jump was materialized.
	FallJump(ref ir.BlockRef) (addr uint32, ok bool)
}

// Fetcher consumes the instruction fetch stream of a run. mo is the
// memory-object ID owning the address (see Layout.BlockMO).
type Fetcher interface {
	Fetch(addr uint32, mo int)
}

// FetcherFunc adapts a function to the Fetcher interface.
type FetcherFunc func(addr uint32, mo int)

// Fetch implements Fetcher.
func (f FetcherFunc) Fetch(addr uint32, mo int) { f(addr, mo) }

// RunFetcher is an optional extension of Fetcher. A sink that implements
// it receives each block's consecutive instruction fetches as a single
// call — one dynamic dispatch per executed block instead of one per
// instruction — which is what makes line-granular hierarchy simulation
// cheap. FetchRun(base, n, mo) is defined to be exactly equivalent to
//
//	for i := 0; i < n; i++ { Fetch(base+uint32(i*ir.InstrSize), mo) }
//
// and both Run and Trace.Replay use it whenever the sink supports it.
// Layout-appended jump fetches are always delivered through Fetch: a
// jump is not guaranteed to be contiguous with its block under every
// Layout implementation.
type RunFetcher interface {
	Fetcher
	// FetchRun delivers n consecutive instruction fetches starting at
	// base, all owned by memory object mo. n may be zero (empty block).
	FetchRun(base uint32, n int, mo int)
}

// RunRepeater is an optional extension of RunFetcher. A sink that
// implements it receives a run-length-compressed taken self-loop — the
// same block run executed count times back to back, with nothing fetched
// in between — as a single call. FetchRunRepeat(base, n, mo, count) is
// defined to be exactly equivalent to count successive FetchRun(base, n,
// mo) calls; the point of the wider contract is that the sink sees the
// repeat count up front and may exploit the guaranteed periodicity (a
// cache pass with zero misses leaves the resident set unchanged, so
// every later pass is the same all-hit pass) instead of re-simulating
// identical iterations. Trace.Replay uses it for StepTaken entries —
// the only step kind run-length encoding ever merges.
type RunRepeater interface {
	RunFetcher
	// FetchRunRepeat delivers count consecutive repetitions of the run
	// [base, base+n*InstrSize), all owned by memory object mo.
	FetchRunRepeat(base uint32, n int, mo int, count int64)
}

// EdgeKind classifies a dynamic control-flow edge.
type EdgeKind uint8

const (
	// EdgeFall is a fall-through transfer: a block without a terminator, a
	// not-taken conditional branch, a Goto, or a call's return
	// continuation.
	EdgeFall EdgeKind = iota
	// EdgeTaken is a taken (conditional or unconditional) branch.
	EdgeTaken
	// EdgeCall is a call entering a callee's entry block.
	EdgeCall
)

var edgeKindNames = [...]string{EdgeFall: "fall", EdgeTaken: "taken", EdgeCall: "call"}

// String returns the edge kind's name.
func (k EdgeKind) String() string {
	if int(k) < len(edgeKindNames) {
		return edgeKindNames[k]
	}
	return fmt.Sprintf("edgekind(%d)", uint8(k))
}

// StepKind classifies how control leaves a block in a recorded trace.
// It is finer-grained than EdgeKind: replay needs to distinguish returns
// (which pop a call continuation and fetch the *caller's* appended jump)
// from ordinary fall-through exits, and the profile's dense edge arrays
// stay three-kinded.
type StepKind uint8

const (
	// StepFall leaves along the fall-through path (a fall-through block
	// or a not-taken branch); the block's appended jump, if materialized,
	// is fetched.
	StepFall StepKind = iota
	// StepTaken leaves along a taken branch or jump; no appended jump.
	StepTaken
	// StepCall enters a callee, pushing this block as the return
	// continuation.
	StepCall
	// StepReturn returns to the most recent continuation (or terminates
	// the program when none is pending); the popped caller's appended
	// jump, if materialized, is fetched.
	StepReturn
)

var stepKindNames = [...]string{StepFall: "fall", StepTaken: "taken", StepCall: "call", StepReturn: "return"}

// String returns the step kind's name.
func (k StepKind) String() string {
	if int(k) < len(stepKindNames) {
		return stepKindNames[k]
	}
	return fmt.Sprintf("stepkind(%d)", uint8(k))
}

// Edge is a dynamic control-flow edge between two blocks.
type Edge struct {
	From ir.BlockRef
	To   ir.BlockRef
	Kind EdgeKind
}

// edgeKinds is the number of EdgeKind values; a block has at most one
// dynamic successor per kind (fall-through, taken target, callee entry),
// so (From, Kind) identifies an edge completely.
const edgeKinds = 3

// Profile aggregates one run's execution counts. Edge traversals are
// stored densely as per-function, per-block counters indexed by EdgeKind
// — the profiling hot loop only increments a slice cell, never hashes a
// map key. The classic map view is materialized on demand by Edges.
type Profile struct {
	// Blocks[f][b] is the number of times block b of function f executed.
	Blocks [][]int64
	// Fetches is the total number of instruction fetches, excluding any
	// layout-dependent appended jumps (profiles are layout-independent).
	Fetches int64

	// edges[f][b][k] counts traversals of block b's outgoing edge of
	// kind k.
	edges [][][edgeKinds]int64
	// prog resolves edge targets when the map view is materialized and
	// when lookups validate their target argument.
	prog *ir.Program

	edgeOnce sync.Once
	edgeMap  map[Edge]int64
}

// NewProfile returns an empty profile shaped for p, ready for manual
// population (tests) or the profiling run itself.
func NewProfile(p *ir.Program) *Profile {
	prof := &Profile{
		Blocks: make([][]int64, len(p.Funcs)),
		edges:  make([][][edgeKinds]int64, len(p.Funcs)),
		prog:   p,
	}
	for i, f := range p.Funcs {
		prof.Blocks[i] = make([]int64, len(f.Blocks))
		prof.edges[i] = make([][edgeKinds]int64, len(f.Blocks))
	}
	return prof
}

// BlockCount returns the execution count of the referenced block.
func (p *Profile) BlockCount(ref ir.BlockRef) int64 {
	return p.Blocks[ref.Func][ref.Block]
}

// edgeTarget resolves the static target of from's outgoing edge of the
// given kind, or ok=false when the block has no such edge.
func (p *Profile) edgeTarget(from ir.BlockRef, kind EdgeKind) (ir.BlockRef, bool) {
	b := p.prog.Func(from.Func).Block(from.Block)
	switch kind {
	case EdgeFall:
		if b.FallThrough != ir.NoBlock {
			return ir.BlockRef{Func: from.Func, Block: b.FallThrough}, true
		}
	case EdgeTaken:
		if b.Taken != ir.NoBlock {
			return ir.BlockRef{Func: from.Func, Block: b.Taken}, true
		}
	case EdgeCall:
		if b.CallTarget != ir.NoFunc {
			callee := p.prog.Func(b.CallTarget)
			return ir.BlockRef{Func: callee.ID, Block: callee.Entry}, true
		}
	}
	return ir.BlockRef{}, false
}

// EdgeCount returns the traversal count of the given edge, or 0 when the
// edge does not exist in the program or was never traversed.
func (p *Profile) EdgeCount(e Edge) int64 {
	if int(e.Kind) >= edgeKinds {
		return 0
	}
	to, ok := p.edgeTarget(e.From, e.Kind)
	if !ok || to != e.To {
		return 0
	}
	return p.edges[e.From.Func][e.From.Block][e.Kind]
}

// AddEdge records n traversals of e (test construction helper; the edge
// must exist in the program).
func (p *Profile) AddEdge(e Edge, n int64) {
	p.edges[e.From.Func][e.From.Block][e.Kind] += n
}

// FallCount returns the traversal count of the fall-through edge from ref
// to its fall-through successor, or 0 if none was traversed.
func (p *Profile) FallCount(from, to ir.BlockRef) int64 {
	return p.EdgeCount(Edge{From: from, To: to, Kind: EdgeFall})
}

// Edges materializes the traversal counts as a map keyed by edge,
// omitting zero counts. The map is built once and shared; callers must
// not mutate it.
func (p *Profile) Edges() map[Edge]int64 {
	p.edgeOnce.Do(func() {
		m := make(map[Edge]int64)
		for f, blocks := range p.edges {
			for b, counts := range blocks {
				for k, n := range counts {
					if n == 0 {
						continue
					}
					from := ir.BlockRef{Func: ir.FuncID(f), Block: ir.BlockID(b)}
					if to, ok := p.edgeTarget(from, EdgeKind(k)); ok {
						m[Edge{From: from, To: to, Kind: EdgeKind(k)}] = n
					}
				}
			}
		}
		p.edgeMap = m
	})
	return p.edgeMap
}

// options bundles the run limits.
type options struct {
	maxFetches int64
}

// Option configures Profile and Run.
type Option func(*options)

// WithMaxFetches overrides the fetch budget of a run.
func WithMaxFetches(n int64) Option {
	return func(o *options) { o.maxFetches = n }
}

// ProfileProgram executes p and returns its execution profile. The program
// must be valid (ir.Validate).
func ProfileProgram(p *ir.Program, opts ...Option) (*Profile, error) {
	prof := NewProfile(p)
	e := newExec(p, opts)
	err := e.run(
		func(ref ir.BlockRef, n int) {
			prof.Blocks[ref.Func][ref.Block]++
			prof.Fetches += int64(n)
		},
		func(edge Edge) { prof.edges[edge.From.Func][edge.From.Block][edge.Kind]++ },
		nil,
		nil,
	)
	if err != nil {
		return nil, err
	}
	return prof, nil
}

// Run executes p under the given layout, streaming every instruction fetch
// (including layout-appended jump fetches) to sink. It returns the total
// number of fetches delivered. Sinks implementing RunFetcher receive each
// block's fetches as a single FetchRun call.
func Run(p *ir.Program, lay Layout, sink Fetcher, opts ...Option) (int64, error) {
	e := newExec(p, opts)
	var total int64
	var onBlock func(ref ir.BlockRef, n int)
	if rf, ok := sink.(RunFetcher); ok {
		onBlock = func(ref ir.BlockRef, n int) {
			rf.FetchRun(lay.BlockBase(ref), n, lay.BlockMO(ref))
			total += int64(n)
		}
	} else {
		onBlock = func(ref ir.BlockRef, n int) {
			base := lay.BlockBase(ref)
			mo := lay.BlockMO(ref)
			for i := 0; i < n; i++ {
				sink.Fetch(base+uint32(i*ir.InstrSize), mo)
			}
			total += int64(n)
		}
	}
	err := e.run(
		onBlock,
		nil,
		func(ref ir.BlockRef) {
			if addr, ok := lay.FallJump(ref); ok {
				sink.Fetch(addr, lay.BlockMO(ref))
				total++
			}
		},
		nil,
	)
	if err != nil {
		return 0, err
	}
	return total, nil
}

// exec is the shared interpreter core.
type exec struct {
	p          *ir.Program
	maxFetches int64
	fetches    int64
	// behaviors[f][b] is the instantiated decision state for branch blocks.
	behaviors [][]ir.BehaviorState
}

func newExec(p *ir.Program, opts []Option) *exec {
	o := options{maxFetches: DefaultMaxFetches}
	for _, fn := range opts {
		fn(&o)
	}
	e := &exec{p: p, maxFetches: o.maxFetches}
	e.behaviors = make([][]ir.BehaviorState, len(p.Funcs))
	for i, f := range p.Funcs {
		e.behaviors[i] = make([]ir.BehaviorState, len(f.Blocks))
		for j, b := range f.Blocks {
			if b.Behavior != nil {
				e.behaviors[i][j] = b.Behavior.NewState()
			}
		}
	}
	return e
}

// run walks the program. onBlock is called once per dynamic block execution
// with the block's instruction count; onEdge (optional) is called per
// dynamic edge; onFallExit (optional) is called when control leaves a block
// along its fall-through path, letting Run account for appended jumps;
// onStep (optional) is called once per dynamic block execution with the
// exit kind, which is what trace recording consumes (a return's fall-exit
// is charged to the popped caller, so StepReturn carries enough
// information for replay to reconstruct it from its own call stack).
func (e *exec) run(
	onBlock func(ref ir.BlockRef, instrs int),
	onEdge func(Edge),
	onFallExit func(ref ir.BlockRef),
	onStep func(ref ir.BlockRef, instrs int, kind StepKind),
) error {
	cur := ir.BlockRef{Func: e.p.Entry, Block: e.p.Func(e.p.Entry).Entry}
	var stack []ir.BlockRef // return continuations
	edge := func(from, to ir.BlockRef, kind EdgeKind) {
		if onEdge != nil {
			onEdge(Edge{From: from, To: to, Kind: kind})
		}
	}
	fallExit := func(from ir.BlockRef) {
		if onFallExit != nil {
			onFallExit(from)
		}
	}
	step := func(ref ir.BlockRef, instrs int, kind StepKind) {
		if onStep != nil {
			onStep(ref, instrs, kind)
		}
	}
	for {
		f := e.p.Func(cur.Func)
		b := f.Block(cur.Block)
		n := len(b.Instrs)
		e.fetches += int64(n)
		if e.fetches > e.maxFetches {
			return fmt.Errorf("%w (%d)", ErrFetchLimit, e.maxFetches)
		}
		onBlock(cur, n)
		switch b.Term() {
		case ir.TermFallThrough:
			next := ir.BlockRef{Func: cur.Func, Block: b.FallThrough}
			edge(cur, next, EdgeFall)
			fallExit(cur)
			step(cur, n, StepFall)
			cur = next
		case ir.TermBranch:
			if e.behaviors[cur.Func][cur.Block].Next() {
				next := ir.BlockRef{Func: cur.Func, Block: b.Taken}
				edge(cur, next, EdgeTaken)
				step(cur, n, StepTaken)
				cur = next
			} else {
				next := ir.BlockRef{Func: cur.Func, Block: b.FallThrough}
				edge(cur, next, EdgeFall)
				fallExit(cur)
				step(cur, n, StepFall)
				cur = next
			}
		case ir.TermJump:
			next := ir.BlockRef{Func: cur.Func, Block: b.Taken}
			edge(cur, next, EdgeTaken)
			step(cur, n, StepTaken)
			cur = next
		case ir.TermCall:
			callee := e.p.Func(b.CallTarget)
			next := ir.BlockRef{Func: callee.ID, Block: callee.Entry}
			edge(cur, next, EdgeCall)
			if len(stack) >= maxCallDepth {
				return fmt.Errorf("%w (%d)", ErrCallDepth, maxCallDepth)
			}
			step(cur, n, StepCall)
			stack = append(stack, cur)
			cur = next
		case ir.TermReturn:
			step(cur, n, StepReturn)
			if len(stack) == 0 {
				return nil // program terminates: return from entry function
			}
			caller := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cb := e.p.Func(caller.Func).Block(caller.Block)
			next := ir.BlockRef{Func: caller.Func, Block: cb.FallThrough}
			edge(caller, next, EdgeFall)
			fallExit(caller)
			cur = next
		}
	}
}
