// Trace: the compressed, execute-once form of a program run. The
// interpreter walks a workload exactly once and records the dynamic
// block sequence — not individual fetch addresses — as a run-length-
// encoded step list. Because blocks and step kinds are layout-
// independent, one Trace replays under any Layout: the memory-hierarchy
// simulator decodes it once per layout/cache configuration instead of
// re-executing the interpreter or storing a per-layout 4-byte-granular
// address stream (the pre-trace design cached ~20MB of raw addresses
// per (program, layout); a trace is a few kilobytes per program).
//
// Replay reproduces the exact fetch stream of Run: per step it emits the
// block's instruction run (bulk, via RunFetcher, when the sink supports
// it), and reconstructs the call stack so that appended fall-through
// jumps — including the subtle case of a return, whose jump belongs to
// the *popped caller*, not the returning block — are fetched at the
// same position and with the same memory object as a live run.
package sim

import (
	"repro/internal/ir"
	"repro/internal/obs"
)

// mTraceReplays counts trace replays process-wide
// (casa_trace_replays_total): each one stands for a full simulation run
// that skipped re-executing the interpreter.
var mTraceReplays = obs.GetCounter("casa_trace_replays_total")

// Trace is a run-length-encoded recording of one program execution: the
// dynamic block sequence with exit kinds. It is layout-independent and
// immutable once recorded; Replay is safe for concurrent use.
type Trace struct {
	// Parallel arrays, one entry per RLE step: the executed block
	// (packed func<<32|block), its instruction count, how control left
	// it, and how many times the step repeats consecutively (taken
	// self-loops compress to a single entry).
	refs   []uint64
	instrs []int32
	kinds  []StepKind
	counts []int64

	steps   int64 // total dynamic steps (sum of counts)
	fetches int64 // total block-instruction fetches (appended jumps excluded)
}

func packRef(ref ir.BlockRef) uint64 {
	return uint64(uint32(ref.Func))<<32 | uint64(uint32(ref.Block))
}

func unpackRef(pr uint64) ir.BlockRef {
	return ir.BlockRef{Func: ir.FuncID(uint32(pr >> 32)), Block: ir.BlockID(uint32(pr))}
}

// push appends one dynamic step, run-length-merging it into the previous
// entry when it repeats the same block and exit kind.
func (t *Trace) push(ref ir.BlockRef, instrs int, kind StepKind) {
	t.steps++
	t.fetches += int64(instrs)
	pr := packRef(ref)
	if n := len(t.refs) - 1; n >= 0 && t.refs[n] == pr && t.kinds[n] == kind {
		t.counts[n]++
		return
	}
	t.refs = append(t.refs, pr)
	t.instrs = append(t.instrs, int32(instrs))
	t.kinds = append(t.kinds, kind)
	t.counts = append(t.counts, 1)
}

// NumSteps returns the number of RLE entries.
func (t *Trace) NumSteps() int { return len(t.refs) }

// Step returns the i-th RLE entry: the executed block, its instruction
// count, how control left it, and the consecutive repeat count.
func (t *Trace) Step(i int) (ref ir.BlockRef, instrs int, kind StepKind, count int64) {
	return unpackRef(t.refs[i]), int(t.instrs[i]), t.kinds[i], t.counts[i]
}

// Steps returns the total dynamic step count (sum of repeats).
func (t *Trace) Steps() int64 { return t.steps }

// Fetches returns the block-instruction fetch count a replay delivers,
// excluding layout-appended jumps (those depend on the layout).
func (t *Trace) Fetches() int64 { return t.fetches }

// SizeBytes returns the memory the recording holds, measured as
// backing-array *capacity* — what the allocator committed, which is what
// the cache's eviction bound must charge.
func (t *Trace) SizeBytes() int {
	return 8*cap(t.refs) + 4*cap(t.instrs) + cap(t.kinds) + 8*cap(t.counts)
}

// RecordTrace executes p once and records its dynamic block sequence.
func RecordTrace(p *ir.Program, opts ...Option) (*Trace, error) {
	t := &Trace{}
	e := newExec(p, opts)
	err := e.run(
		func(ir.BlockRef, int) {},
		nil,
		nil,
		t.push,
	)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Replay decodes the trace under lay, delivering the exact fetch stream
// Run(p, lay, sink) would produce — same addresses, same memory objects,
// same order — and returns the fetch count. Sinks implementing
// RunFetcher receive each block's instruction run as one FetchRun call;
// appended jumps always arrive as individual Fetch calls because a jump
// need not be contiguous with its block under every Layout.
func (t *Trace) Replay(lay Layout, sink Fetcher) int64 {
	mTraceReplays.Inc()
	rf, bulk := sink.(RunFetcher)
	if !bulk {
		rf = scalarRuns{sink}
	}
	rr, repeats := rf.(RunRepeater)
	var total int64
	var stack []ir.BlockRef // return continuations, mirrors exec.run
	for i, pr := range t.refs {
		ref := unpackRef(pr)
		n := int(t.instrs[i])
		cnt := t.counts[i]
		base := lay.BlockBase(ref)
		mo := lay.BlockMO(ref)
		total += cnt * int64(n)
		switch t.kinds[i] {
		case StepTaken:
			// Taken self-loops are the only steps RLE merges, so cnt>1
			// means this exact run repeats back to back — hand the whole
			// burst to the sink when it can exploit the periodicity.
			if repeats {
				rr.FetchRunRepeat(base, n, mo, cnt)
			} else {
				for j := int64(0); j < cnt; j++ {
					rf.FetchRun(base, n, mo)
				}
			}
		case StepFall:
			jaddr, jok := lay.FallJump(ref)
			for j := int64(0); j < cnt; j++ {
				rf.FetchRun(base, n, mo)
				if jok {
					sink.Fetch(jaddr, mo)
					total++
				}
			}
		case StepCall:
			for j := int64(0); j < cnt; j++ {
				rf.FetchRun(base, n, mo)
				stack = append(stack, ref)
			}
		case StepReturn:
			for j := int64(0); j < cnt; j++ {
				rf.FetchRun(base, n, mo)
				if len(stack) == 0 {
					break // program-terminating return: always the last step
				}
				caller := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if jaddr, ok := lay.FallJump(caller); ok {
					sink.Fetch(jaddr, lay.BlockMO(caller))
					total++
				}
			}
		}
	}
	return total
}

// scalarRuns adapts a plain Fetcher to the RunFetcher shape Replay
// drives, unrolling each run into per-instruction Fetch calls.
type scalarRuns struct{ sink Fetcher }

func (s scalarRuns) Fetch(addr uint32, mo int) { s.sink.Fetch(addr, mo) }

func (s scalarRuns) FetchRun(base uint32, n int, mo int) {
	for j := 0; j < n; j++ {
		s.sink.Fetch(base+uint32(j*ir.InstrSize), mo)
	}
}
