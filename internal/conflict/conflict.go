// Package conflict represents the cache behavior of a program at memory-
// object granularity as the paper's conflict graph (§3.3).
//
// The conflict graph G = (X, E) is a directed weighted graph with one
// vertex per memory object (trace). Vertex weight f_i is the total number
// of instruction fetches within object x_i. A directed edge e_ij with
// weight m_ij records that x_i suffered m_ij cache misses caused by x_j
// (x_j's lines replaced x_i's). The graph is built from the attribution
// counts the memory-hierarchy simulator collects during the profiling run
// and is the sole input — besides sizes and energies — of the CASA ILP.
//
// Self-edges (i == j) are retained: an object larger than the cache's
// per-set reach can evict its own lines; placing it in the scratchpad
// removes those misses exactly like any other conflict.
package conflict

import (
	"fmt"
	"io"
	"sort"
)

// Edge is a directed conflict edge: From (x_i) missed Misses times because
// To (x_j) replaced its lines.
type Edge struct {
	From, To int
	Misses   int64
}

// Graph is the conflict graph. Construct with New and AddMisses.
type Graph struct {
	fetches []int64
	weights map[[2]int]int64
}

// New creates a graph over n memory objects with the given per-object
// fetch counts f_i (a copy is taken).
func New(fetches []int64) *Graph {
	return &Graph{
		fetches: append([]int64(nil), fetches...),
		weights: make(map[[2]int]int64),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.fetches) }

// Fetches returns f_i for vertex i.
func (g *Graph) Fetches(i int) int64 { return g.fetches[i] }

// AddMisses accumulates n conflict misses of victim caused by evictor.
// Out-of-range vertices are reported as an error rather than applied.
func (g *Graph) AddMisses(victim, evictor int, n int64) error {
	if victim < 0 || victim >= len(g.fetches) || evictor < 0 || evictor >= len(g.fetches) {
		return fmt.Errorf("conflict: vertex out of range: (%d,%d) with n=%d vertices",
			victim, evictor, len(g.fetches))
	}
	if n == 0 {
		return nil
	}
	g.weights[[2]int{victim, evictor}] += n
	return nil
}

// MatchesFetches reports whether g's vertex layer is exactly the given
// per-object fetch counts — the precondition for Rebase: two grid cells
// that differ only in cache geometry partition the program into the
// same memory objects, so their graphs differ only in edge weights.
func (g *Graph) MatchesFetches(fetches []int64) bool {
	if len(fetches) != len(g.fetches) {
		return false
	}
	for i, f := range fetches {
		if g.fetches[i] != f {
			return false
		}
	}
	return true
}

// Rebase returns a new graph over the same vertices as g with no edges,
// sharing g's fetch-count vector instead of copying it (the vector is
// immutable after New, so sharing is safe). It is the incremental path
// for re-profiling under a changed cache geometry or scratchpad
// capacity: when the memory objects are unchanged, only the conflict
// weights need recounting. The result is indistinguishable from
// New(fetches) with the same subsequent AddMisses calls.
func (g *Graph) Rebase() *Graph {
	return &Graph{
		fetches: g.fetches,
		weights: make(map[[2]int]int64, len(g.weights)),
	}
}

// Misses returns m_ij, the misses of victim caused by evictor.
func (g *Graph) Misses(victim, evictor int) int64 {
	return g.weights[[2]int{victim, evictor}]
}

// ConflictMissesOf returns Miss(x_i) = Σ_j m_ij, the total conflict misses
// of vertex i.
func (g *Graph) ConflictMissesOf(i int) int64 {
	var sum int64
	for k, v := range g.weights {
		if k[0] == i {
			sum += v
		}
	}
	return sum
}

// CausedBy returns Σ_i m_ij, the misses inflicted on others (and itself)
// by vertex j.
func (g *Graph) CausedBy(j int) int64 {
	var sum int64
	for k, v := range g.weights {
		if k[1] == j {
			sum += v
		}
	}
	return sum
}

// TotalConflictMisses sums every edge weight.
func (g *Graph) TotalConflictMisses() int64 {
	var sum int64
	for _, v := range g.weights {
		sum += v
	}
	return sum
}

// NumEdges returns the number of directed edges with nonzero weight.
func (g *Graph) NumEdges() int { return len(g.weights) }

// Edges returns all edges sorted by (From, To) — a deterministic order for
// ILP construction and reporting.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, len(g.weights))
	for k, v := range g.weights {
		edges = append(edges, Edge{From: k[0], To: k[1], Misses: v})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].From != edges[b].From {
			return edges[a].From < edges[b].From
		}
		return edges[a].To < edges[b].To
	})
	return edges
}

// OutEdges returns the edges leaving vertex i (its misses, attributed),
// sorted by To.
func (g *Graph) OutEdges(i int) []Edge {
	var edges []Edge
	for k, v := range g.weights {
		if k[0] == i {
			edges = append(edges, Edge{From: i, To: k[1], Misses: v})
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].To < edges[b].To })
	return edges
}

// Neighbors returns N_i = {j : e_ij ∈ E}, the vertices whose presence in
// the cache costs vertex i misses.
func (g *Graph) Neighbors(i int) []int {
	out := g.OutEdges(i)
	ns := make([]int, len(out))
	for k, e := range out {
		ns[k] = e.To
	}
	return ns
}

// Prune returns a copy of the graph that keeps only the maxEdges heaviest
// edges (ties broken by (From,To) order). It bounds ILP size for very
// conflict-dense programs; pruned misses are simply not optimizable away,
// keeping the formulation conservative. maxEdges < 0 means no pruning.
func (g *Graph) Prune(maxEdges int) *Graph {
	ng := New(g.fetches)
	if maxEdges < 0 || g.NumEdges() <= maxEdges {
		for k, v := range g.weights {
			ng.weights[k] = v
		}
		return ng
	}
	edges := g.Edges()
	sort.SliceStable(edges, func(a, b int) bool { return edges[a].Misses > edges[b].Misses })
	for _, e := range edges[:maxEdges] {
		ng.weights[[2]int{e.From, e.To}] = e.Misses
	}
	return ng
}

// WriteHeatmap renders the conflict matrix m_ij as a text heatmap:
// one row per victim, one column per evictor, each cell a single
// intensity character on a log10 scale (".": 1-9 misses, "1": 10-99,
// "2": 100-999, ... ; space: none). Only vertices participating in at
// least one edge appear; if more than maxDim participate, the heaviest
// (by misses suffered + inflicted) are kept and the truncation is
// reported in the header rather than applied silently. maxDim <= 0
// means no limit. The output is the introspection companion of
// WriteDOT: small enough to eyeball, faithful enough to spot the
// thrashing pairs the CASA ILP exists to break.
func (g *Graph) WriteHeatmap(w io.Writer, maxDim int) error {
	// Collect participating vertices and their total involvement.
	involved := map[int]int64{}
	for k, v := range g.weights {
		involved[k[0]] += v
		involved[k[1]] += v
	}
	verts := make([]int, 0, len(involved))
	for i := range involved {
		verts = append(verts, i)
	}
	sort.Ints(verts)
	shown := len(verts)
	if maxDim > 0 && shown > maxDim {
		sort.Slice(verts, func(a, b int) bool {
			if involved[verts[a]] != involved[verts[b]] {
				return involved[verts[a]] > involved[verts[b]]
			}
			return verts[a] < verts[b]
		})
		verts = verts[:maxDim]
		sort.Ints(verts)
	}
	if _, err := fmt.Fprintf(w, "conflict heatmap: %d vertices, %d edges, %d total misses (showing %d of %d conflicting vertices)\n",
		g.N(), g.NumEdges(), g.TotalConflictMisses(), len(verts), shown); err != nil {
		return err
	}
	if len(verts) == 0 {
		return nil
	}
	// Column header: evictor indices, vertical-ish (last two digits).
	if _, err := fmt.Fprintf(w, "%16s ", "victim\\evictor"); err != nil {
		return err
	}
	for _, j := range verts {
		if _, err := fmt.Fprintf(w, "%2d", j%100); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, i := range verts {
		if _, err := fmt.Fprintf(w, "x%-4d %9d ", i, g.ConflictMissesOf(i)); err != nil {
			return err
		}
		for _, j := range verts {
			if _, err := fmt.Fprintf(w, " %c", heatChar(g.Misses(i, j))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// heatChar maps a miss count to its log10 intensity character.
func heatChar(n int64) byte {
	switch {
	case n <= 0:
		return ' '
	case n < 10:
		return '.'
	default:
		d := byte('0')
		for n >= 10 && d < '9' {
			n /= 10
			d++
		}
		return d
	}
}

// WriteDOT renders the graph in Graphviz DOT form, with vertex fetch
// counts and edge miss weights, for visual inspection.
func (g *Graph) WriteDOT(w io.Writer, names []string) error {
	if _, err := fmt.Fprintln(w, "digraph conflict {"); err != nil {
		return err
	}
	for i := range g.fetches {
		label := fmt.Sprintf("x%d", i)
		if names != nil && i < len(names) {
			label = names[i]
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\\nf=%d\"];\n", i, label, g.fetches[i]); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%d\"];\n", e.From, e.To, e.Misses); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
