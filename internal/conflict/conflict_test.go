package conflict

import (
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Graph {
	g := New([]int64{100, 200, 300, 50})
	g.AddMisses(0, 1, 10)
	g.AddMisses(1, 0, 12)
	g.AddMisses(0, 2, 5)
	g.AddMisses(2, 2, 7) // self conflict
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := sample()
	if g.N() != 4 {
		t.Errorf("N = %d", g.N())
	}
	if g.Fetches(2) != 300 {
		t.Errorf("Fetches(2) = %d", g.Fetches(2))
	}
	if g.Misses(0, 1) != 10 || g.Misses(1, 0) != 12 || g.Misses(3, 0) != 0 {
		t.Error("Misses lookup wrong")
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.TotalConflictMisses() != 34 {
		t.Errorf("TotalConflictMisses = %d, want 34", g.TotalConflictMisses())
	}
}

func TestAccumulation(t *testing.T) {
	g := New([]int64{1, 1})
	g.AddMisses(0, 1, 3)
	g.AddMisses(0, 1, 4)
	if g.Misses(0, 1) != 7 {
		t.Errorf("accumulated = %d, want 7", g.Misses(0, 1))
	}
	g.AddMisses(0, 1, 0) // no-op
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	g := New([]int64{1})
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {1, 0}, {0, 1}} {
		if err := g.AddMisses(c[0], c[1], 1); err == nil {
			t.Errorf("AddMisses(%v) accepted out-of-range vertices", c)
		}
	}
	if g.NumEdges() != 0 {
		t.Errorf("rejected edges were applied: %d edges", g.NumEdges())
	}
}

func TestAggregates(t *testing.T) {
	g := sample()
	if got := g.ConflictMissesOf(0); got != 15 {
		t.Errorf("ConflictMissesOf(0) = %d, want 15", got)
	}
	if got := g.CausedBy(2); got != 12 { // 5 on vertex 0 + 7 on itself
		t.Errorf("CausedBy(2) = %d, want 12", got)
	}
	if got := g.ConflictMissesOf(3); got != 0 {
		t.Errorf("ConflictMissesOf(3) = %d, want 0", got)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := sample()
	edges := g.Edges()
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("edges not sorted: %v", edges)
		}
	}
}

func TestOutEdgesAndNeighbors(t *testing.T) {
	g := sample()
	out := g.OutEdges(0)
	if len(out) != 2 || out[0].To != 1 || out[1].To != 2 {
		t.Errorf("OutEdges(0) = %v", out)
	}
	ns := g.Neighbors(0)
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 2 {
		t.Errorf("Neighbors(0) = %v", ns)
	}
	if len(g.Neighbors(3)) != 0 {
		t.Error("vertex 3 has no out edges")
	}
}

func TestPrune(t *testing.T) {
	g := sample()
	p := g.Prune(2)
	if p.NumEdges() != 2 {
		t.Fatalf("pruned edges = %d, want 2", p.NumEdges())
	}
	// The two heaviest edges survive: (1,0)=12 and (0,1)=10.
	if p.Misses(1, 0) != 12 || p.Misses(0, 1) != 10 {
		t.Errorf("wrong survivors: %v", p.Edges())
	}
	// No pruning cases.
	if g.Prune(-1).NumEdges() != g.NumEdges() {
		t.Error("Prune(-1) must keep everything")
	}
	if g.Prune(100).NumEdges() != g.NumEdges() {
		t.Error("Prune(>edges) must keep everything")
	}
	// Original untouched.
	if g.NumEdges() != 4 {
		t.Error("Prune mutated the receiver")
	}
}

func TestWriteDOT(t *testing.T) {
	g := sample()
	var sb strings.Builder
	if err := g.WriteDOT(&sb, []string{"a", "b", "c", "d"}); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	s := sb.String()
	for _, want := range []string{"digraph conflict", "a\\nf=100", "n0 -> n1", "label=\"12\"", "}"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT missing %q:\n%s", want, s)
		}
	}
	// Default labels without names.
	sb.Reset()
	if err := g.WriteDOT(&sb, nil); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	if !strings.Contains(sb.String(), "x0\\nf=100") {
		t.Error("default label missing")
	}
}

// Property: the sum over vertices of ConflictMissesOf equals the sum of
// CausedBy and the total.
func TestConservationProperty(t *testing.T) {
	f := func(weights []uint16) bool {
		const n = 6
		g := New(make([]int64, n))
		for i, w := range weights {
			g.AddMisses(i%n, (i/n)%n, int64(w))
		}
		var byVictim, byEvictor int64
		for i := 0; i < n; i++ {
			byVictim += g.ConflictMissesOf(i)
			byEvictor += g.CausedBy(i)
		}
		total := g.TotalConflictMisses()
		return byVictim == total && byEvictor == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteHeatmap(t *testing.T) {
	g := sample()
	var buf strings.Builder
	if err := g.WriteHeatmap(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Vertex 3 has no edges and must not appear; the header states the
	// full geometry and the shown/participating counts.
	if !strings.Contains(out, "4 vertices, 4 edges, 34 total misses (showing 3 of 3 conflicting vertices)") {
		t.Errorf("heatmap header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + column header + 3 rows
		t.Fatalf("heatmap has %d lines, want 5:\n%s", len(lines), out)
	}
	// Row for victim 0: m_01=10 → '1', m_02=5 → '.', m_00=0 → ' '.
	row0 := lines[2]
	if !strings.HasPrefix(row0, "x0") || !strings.Contains(row0, "15 ") {
		t.Errorf("row 0 missing vertex id or miss total: %q", row0)
	}
	cells := row0[len(row0)-6:] // three " %c" cells
	if cells != "   1 ." {
		t.Errorf("row 0 cells = %q, want %q", cells, "   1 .")
	}

	// Truncation to the heaviest vertices is stated, not silent:
	// involvement is 0:27, 1:22, 2:19, so maxDim=2 keeps {0,1}.
	buf.Reset()
	if err := g.WriteHeatmap(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "(showing 2 of 3 conflicting vertices)") {
		t.Errorf("truncated heatmap header wrong:\n%s", out)
	}
	if strings.Contains(out, "x2") {
		t.Errorf("truncated heatmap still shows the lightest vertex:\n%s", out)
	}
}

func TestHeatChar(t *testing.T) {
	cases := []struct {
		n    int64
		want byte
	}{{0, ' '}, {-3, ' '}, {1, '.'}, {9, '.'}, {10, '1'}, {99, '1'},
		{100, '2'}, {1e6, '6'}, {1e12, '9'}}
	for _, c := range cases {
		if got := heatChar(c.n); got != c.want {
			t.Errorf("heatChar(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestRebaseEquality(t *testing.T) {
	donor := sample()
	// Rebase then refill with a different attribution (a different cache
	// produced different conflicts over the same objects): the result
	// must be indistinguishable from a graph built with New.
	fills := [][3]int64{{0, 3, 9}, {1, 1, 4}, {3, 2, 21}}
	rebased := donor.Rebase()
	fresh := New([]int64{100, 200, 300, 50})
	for _, f := range fills {
		if err := rebased.AddMisses(int(f[0]), int(f[1]), f[2]); err != nil {
			t.Fatal(err)
		}
		if err := fresh.AddMisses(int(f[0]), int(f[1]), f[2]); err != nil {
			t.Fatal(err)
		}
	}
	if rebased.N() != fresh.N() {
		t.Fatalf("N = %d, want %d", rebased.N(), fresh.N())
	}
	for i := 0; i < fresh.N(); i++ {
		if rebased.Fetches(i) != fresh.Fetches(i) {
			t.Errorf("Fetches(%d) = %d, want %d", i, rebased.Fetches(i), fresh.Fetches(i))
		}
	}
	re, fe := rebased.Edges(), fresh.Edges()
	if len(re) != len(fe) {
		t.Fatalf("edges: %d vs %d", len(re), len(fe))
	}
	for i := range re {
		if re[i] != fe[i] {
			t.Errorf("edge %d: %+v vs %+v", i, re[i], fe[i])
		}
	}
	// The donor is untouched by the rebased graph's fills.
	if donor.Misses(0, 3) != 0 || donor.Misses(0, 1) != 10 {
		t.Error("Rebase mutated the donor's weights")
	}
}

func TestMatchesFetches(t *testing.T) {
	g := New([]int64{5, 6, 7})
	if !g.MatchesFetches([]int64{5, 6, 7}) {
		t.Error("identical fetch vector rejected")
	}
	if g.MatchesFetches([]int64{5, 6}) {
		t.Error("shorter vector accepted")
	}
	if g.MatchesFetches([]int64{5, 6, 8}) {
		t.Error("differing vector accepted")
	}
}
