// Package cache models the L1 instruction cache of the paper's
// architecture. Besides hit/miss behavior under configurable size,
// associativity, line size and replacement policy, the model tracks which
// memory object owns each resident line so that the memory-hierarchy
// simulator can attribute every conflict miss "miss of x_i caused by x_j"
// — the edge weights m_ij of the paper's conflict graph.
package cache

import (
	"fmt"
	"io"
)

// NoMO marks an access or victim without a memory-object owner (cold line).
const NoMO = -1

// Policy selects the replacement policy of associative organizations. For
// direct-mapped caches all policies behave identically.
type Policy uint8

const (
	// LRU evicts the least-recently-used way.
	LRU Policy = iota
	// FIFO evicts the oldest-filled way.
	FIFO
	// Random evicts a pseudo-random way (deterministic, seeded).
	Random
)

var policyNames = [...]string{LRU: "lru", FIFO: "fifo", Random: "random"}

// String returns the policy name.
func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Config describes a cache organization.
type Config struct {
	// SizeBytes is the data capacity (power of two).
	SizeBytes int
	// LineBytes is the line size in bytes (power of two, ≥ 4).
	LineBytes int
	// Assoc is the associativity (1 = direct-mapped).
	Assoc int
	// Replacement selects the victim policy.
	Replacement Policy
	// Seed seeds the Random policy; ignored otherwise.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0:
		return fmt.Errorf("cache: size %d not a positive power of two", c.SizeBytes)
	case c.LineBytes < 4 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two ≥ 4", c.LineBytes)
	case c.Assoc < 1:
		return fmt.Errorf("cache: associativity %d < 1", c.Assoc)
	case c.SizeBytes < c.LineBytes*c.Assoc:
		return fmt.Errorf("cache: %dB cannot hold %d ways of %dB lines",
			c.SizeBytes, c.Assoc, c.LineBytes)
	case int(c.Replacement) >= len(policyNames):
		return fmt.Errorf("cache: unknown replacement policy %d", c.Replacement)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Fingerprint returns a stable FNV-1a hash of the geometry and policy —
// the cache-configuration component of memoization keys (two configs with
// equal fingerprints behave identically on every fetch stream).
func (c Config) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range [...]uint64{
		uint64(c.SizeBytes), uint64(c.LineBytes), uint64(c.Assoc),
		uint64(c.Replacement), c.Seed,
	} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	return h
}

// way is one resident line.
type way struct {
	valid bool
	tag   uint32
	mo    int
	// stamp orders ways for LRU (last use) and FIFO (fill time).
	stamp uint64
}

// Result reports the outcome of one access.
type Result struct {
	// Hit reports whether the access hit.
	Hit bool
	// VictimMO is the memory object that owned the replaced line on a
	// miss, or NoMO for a cold fill (or a hit).
	VictimMO int
	// SelfEvict reports whether the victim belonged to the accessing
	// object itself (possible when an object is larger than the cache's
	// per-set reach).
	SelfEvict bool
}

// SetStats are the per-set access totals the cache keeps for
// introspection: with them a dump shows not just what is resident but
// which sets thrash — the software analogue of live cache inspection.
type SetStats struct {
	// Hits and Misses count accesses mapping to the set.
	Hits   int64
	Misses int64
	// Evictions counts misses that replaced a valid line (conflict or
	// capacity evictions; cold fills excluded).
	Evictions int64
}

// Cache is a running instance of the model. It is not safe for concurrent
// use; simulations are single-threaded.
type Cache struct {
	cfg        Config
	sets       []way      // sets*assoc entries, set-major
	stats      []SetStats // per-set totals, indexed by set
	setMask    uint32
	lineShift  uint
	indexShift uint
	clock      uint64
	rng        uint64
}

// New returns an empty cache for the configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:   cfg,
		sets:  make([]way, cfg.Sets()*cfg.Assoc),
		stats: make([]SetStats, cfg.Sets()),
		rng:   cfg.Seed ^ 0x9e3779b97f4a7c15,
	}
	c.lineShift = log2(uint32(cfg.LineBytes))
	c.setMask = uint32(cfg.Sets() - 1)
	c.indexShift = c.lineShift
	return c, nil
}

func log2(v uint32) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Reset invalidates every line and restarts the policy state and the
// per-set statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = way{}
	}
	for i := range c.stats {
		c.stats[i] = SetStats{}
	}
	c.clock = 0
	c.rng = c.cfg.Seed ^ 0x9e3779b97f4a7c15
}

// Set returns the set index for an address.
func (c *Cache) Set(addr uint32) uint32 {
	return (addr >> c.indexShift) & c.setMask
}

// Access performs one fetch by the given memory object and returns the
// outcome. On a miss the line is filled and attributed to mo.
func (c *Cache) Access(addr uint32, mo int) Result {
	set := c.Set(addr)
	tag := addr >> (c.indexShift + log2(uint32(c.cfg.Sets())))
	base := int(set) * c.cfg.Assoc
	ways := c.sets[base : base+c.cfg.Assoc]
	c.clock++

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			if c.cfg.Replacement == LRU {
				ways[i].stamp = c.clock
			}
			c.stats[set].Hits++
			return Result{Hit: true, VictimMO: NoMO}
		}
	}

	// Miss: choose a victim.
	c.stats[set].Misses++
	victim := c.chooseVictim(ways)
	res := Result{Hit: false, VictimMO: NoMO}
	if ways[victim].valid {
		res.VictimMO = ways[victim].mo
		res.SelfEvict = ways[victim].mo == mo
		c.stats[set].Evictions++
	}
	ways[victim] = way{valid: true, tag: tag, mo: mo, stamp: c.clock}
	return res
}

func (c *Cache) chooseVictim(ways []way) int {
	// Prefer an invalid way.
	for i := range ways {
		if !ways[i].valid {
			return i
		}
	}
	switch c.cfg.Replacement {
	case Random:
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return int(c.rng % uint64(len(ways)))
	default: // LRU and FIFO both evict the smallest stamp.
		victim := 0
		for i := 1; i < len(ways); i++ {
			if ways[i].stamp < ways[victim].stamp {
				victim = i
			}
		}
		return victim
	}
}

// Resident reports whether the line containing addr is currently cached
// (for tests and diagnostics).
func (c *Cache) Resident(addr uint32) bool {
	set := c.Set(addr)
	tag := addr >> (c.indexShift + log2(uint32(c.cfg.Sets())))
	base := int(set) * c.cfg.Assoc
	for _, w := range c.sets[base : base+c.cfg.Assoc] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// LinesOf returns how many resident lines belong to the given memory
// object (for tests and diagnostics).
func (c *Cache) LinesOf(mo int) int {
	n := 0
	for _, w := range c.sets {
		if w.valid && w.mo == mo {
			n++
		}
	}
	return n
}

// StatsOf returns the per-set totals for a set index.
func (c *Cache) StatsOf(set int) SetStats { return c.stats[set] }

// TotalStats aggregates the per-set totals over the whole cache.
func (c *Cache) TotalStats() SetStats {
	var t SetStats
	for _, s := range c.stats {
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.Evictions += s.Evictions
	}
	return t
}

// DumpState writes a human-readable per-set snapshot of the cache: the
// resident line of every way (reconstructed address and owning memory
// object) plus the set's hit/miss/eviction totals — live cache
// inspection for the simulated hierarchy. Sets that are empty and were
// never touched are elided.
func (c *Cache) DumpState(w io.Writer) error {
	total := c.TotalStats()
	if _, err := fmt.Fprintf(w, "cache %dB %d-way %dB-lines (%d sets): %d hits %d misses %d evictions\n",
		c.cfg.SizeBytes, c.cfg.Assoc, c.cfg.LineBytes, c.cfg.Sets(),
		total.Hits, total.Misses, total.Evictions); err != nil {
		return err
	}
	setBits := log2(uint32(c.cfg.Sets()))
	for set := 0; set < c.cfg.Sets(); set++ {
		st := c.stats[set]
		base := set * c.cfg.Assoc
		ways := c.sets[base : base+c.cfg.Assoc]
		occupied := 0
		for _, wy := range ways {
			if wy.valid {
				occupied++
			}
		}
		if occupied == 0 && st == (SetStats{}) {
			continue
		}
		if _, err := fmt.Fprintf(w, "  set %4d: hits=%-8d misses=%-8d evictions=%-8d",
			set, st.Hits, st.Misses, st.Evictions); err != nil {
			return err
		}
		for wi, wy := range ways {
			if !wy.valid {
				continue
			}
			addr := (wy.tag<<setBits | uint32(set)) << c.indexShift
			mo := "cold"
			if wy.mo != NoMO {
				mo = fmt.Sprintf("mo=%d", wy.mo)
			}
			if _, err := fmt.Fprintf(w, " way%d[%#x %s]", wi, addr, mo); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
