// Package cache models the L1 instruction cache of the paper's
// architecture. Besides hit/miss behavior under configurable size,
// associativity, line size and replacement policy, the model tracks which
// memory object owns each resident line so that the memory-hierarchy
// simulator can attribute every conflict miss "miss of x_i caused by x_j"
// — the edge weights m_ij of the paper's conflict graph.
package cache

import (
	"fmt"
	"io"
)

// NoMO marks an access or victim without a memory-object owner (cold line).
const NoMO = -1

// Policy selects the replacement policy of associative organizations. For
// direct-mapped caches all policies behave identically.
type Policy uint8

const (
	// LRU evicts the least-recently-used way.
	LRU Policy = iota
	// FIFO evicts the oldest-filled way.
	FIFO
	// Random evicts a pseudo-random way (deterministic, seeded).
	Random
)

var policyNames = [...]string{LRU: "lru", FIFO: "fifo", Random: "random"}

// String returns the policy name.
func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Config describes a cache organization.
type Config struct {
	// SizeBytes is the data capacity (power of two).
	SizeBytes int
	// LineBytes is the line size in bytes (power of two, ≥ 4).
	LineBytes int
	// Assoc is the associativity (1 = direct-mapped).
	Assoc int
	// Replacement selects the victim policy.
	Replacement Policy
	// Seed seeds the Random policy; ignored otherwise.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0:
		return fmt.Errorf("cache: size %d not a positive power of two", c.SizeBytes)
	case c.LineBytes < 4 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two ≥ 4", c.LineBytes)
	case c.Assoc < 1:
		return fmt.Errorf("cache: associativity %d < 1", c.Assoc)
	case c.SizeBytes < c.LineBytes*c.Assoc:
		return fmt.Errorf("cache: %dB cannot hold %d ways of %dB lines",
			c.SizeBytes, c.Assoc, c.LineBytes)
	case int(c.Replacement) >= len(policyNames):
		return fmt.Errorf("cache: unknown replacement policy %d", c.Replacement)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Fingerprint returns a stable FNV-1a hash of the geometry and policy —
// the cache-configuration component of memoization keys (two configs with
// equal fingerprints behave identically on every fetch stream).
func (c Config) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range [...]uint64{
		uint64(c.SizeBytes), uint64(c.LineBytes), uint64(c.Assoc),
		uint64(c.Replacement), c.Seed,
	} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	return h
}

// way is one resident line.
type way struct {
	valid bool
	tag   uint32
	mo    int
	// stamp orders ways for LRU (last use) and FIFO (fill time).
	stamp uint64
}

// Result reports the outcome of one access.
type Result struct {
	// Hit reports whether the access hit.
	Hit bool
	// VictimMO is the memory object that owned the replaced line on a
	// miss, or NoMO for a cold fill (or a hit).
	VictimMO int
	// SelfEvict reports whether the victim belonged to the accessing
	// object itself (possible when an object is larger than the cache's
	// per-set reach).
	SelfEvict bool
}

// SetStats are the per-set access totals the cache keeps for
// introspection: with them a dump shows not just what is resident but
// which sets thrash — the software analogue of live cache inspection.
type SetStats struct {
	// Hits and Misses count accesses mapping to the set.
	Hits   int64
	Misses int64
	// Evictions counts misses that replaced a valid line (conflict or
	// capacity evictions; cold fills excluded).
	Evictions int64
}

// Cache is a running instance of the model. It is not safe for concurrent
// use; simulations are single-threaded.
type Cache struct {
	cfg        Config
	sets       []way      // sets*assoc entries, set-major
	stats      []SetStats // per-set totals, indexed by set
	setMask    uint32
	lineShift  uint
	indexShift uint
	tagShift   uint
	clock      uint64
	rng        uint64
	// assoc and lru mirror cfg.Assoc and cfg.Replacement == LRU so the
	// per-access path never chases the Config struct.
	assoc int
	lru   bool
	// MRU fast path: the line of the most recent access and the global
	// way index (into sets) holding it. Valid whenever lastWay >= 0 —
	// only Access mutates ways, and it maintains both fields on every
	// outcome, so a repeated access to the same line can skip the set
	// walk entirely.
	lastLine uint32
	lastWay  int
}

// New returns an empty cache for the configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:     cfg,
		sets:    make([]way, cfg.Sets()*cfg.Assoc),
		stats:   make([]SetStats, cfg.Sets()),
		rng:     cfg.Seed ^ 0x9e3779b97f4a7c15,
		lastWay: -1,
		assoc:   cfg.Assoc,
		lru:     cfg.Replacement == LRU,
	}
	c.lineShift = log2(uint32(cfg.LineBytes))
	c.setMask = uint32(cfg.Sets() - 1)
	c.indexShift = c.lineShift
	c.tagShift = c.indexShift + log2(uint32(cfg.Sets()))
	return c, nil
}

func log2(v uint32) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Reset invalidates every line and restarts the policy state and the
// per-set statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = way{}
	}
	for i := range c.stats {
		c.stats[i] = SetStats{}
	}
	c.clock = 0
	c.rng = c.cfg.Seed ^ 0x9e3779b97f4a7c15
	c.lastWay = -1
}

// Set returns the set index for an address.
func (c *Cache) Set(addr uint32) uint32 {
	return (addr >> c.indexShift) & c.setMask
}

// disableFastPath turns off the same-line MRU fast path so tests can
// differentially validate it against the plain set walk. Tests only; not
// safe to flip while caches are in use concurrently.
var disableFastPath bool

// Access performs one fetch by the given memory object and returns the
// outcome. On a miss the line is filled and attributed to mo.
func (c *Cache) Access(addr uint32, mo int) Result {
	line := addr >> c.lineShift
	if line == c.lastLine && c.lastWay >= 0 && !disableFastPath {
		// Same-line MRU fast path: the previous access resolved this
		// line, and only Access mutates ways, so it is still resident in
		// lastWay — a guaranteed hit with no set walk or tag compare.
		// The accounting below is identical to the slow path's hit case.
		c.clock++
		if c.lru {
			c.sets[c.lastWay].stamp = c.clock
		}
		c.stats[line&c.setMask].Hits++
		return Result{Hit: true, VictimMO: NoMO}
	}
	return c.accessSlow(addr, line, mo)
}

// accessSlow resolves an access that missed the MRU fast path. The
// direct-mapped organization — the paper's default and the hot one in
// every line-transition-heavy replay — gets a dedicated branch with no
// way loop.
func (c *Cache) accessSlow(addr, line uint32, mo int) Result {
	set := line & c.setMask
	tag := addr >> c.tagShift
	c.clock++
	if c.assoc == 1 {
		w := &c.sets[set]
		if w.valid && w.tag == tag {
			if c.lru {
				w.stamp = c.clock
			}
			c.stats[set].Hits++
			c.lastLine, c.lastWay = line, int(set)
			return Result{Hit: true, VictimMO: NoMO}
		}
		c.stats[set].Misses++
		res := Result{Hit: false, VictimMO: NoMO}
		if w.valid {
			res.VictimMO = w.mo
			res.SelfEvict = w.mo == mo
			c.stats[set].Evictions++
		}
		*w = way{valid: true, tag: tag, mo: mo, stamp: c.clock}
		c.lastLine, c.lastWay = line, int(set)
		return res
	}

	base := int(set) * c.assoc
	ways := c.sets[base : base+c.assoc]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			if c.lru {
				ways[i].stamp = c.clock
			}
			c.stats[set].Hits++
			c.lastLine, c.lastWay = line, base+i
			return Result{Hit: true, VictimMO: NoMO}
		}
	}

	// Miss: choose a victim.
	c.stats[set].Misses++
	victim := c.chooseVictim(ways)
	res := Result{Hit: false, VictimMO: NoMO}
	if ways[victim].valid {
		res.VictimMO = ways[victim].mo
		res.SelfEvict = ways[victim].mo == mo
		c.stats[set].Evictions++
	}
	ways[victim] = way{valid: true, tag: tag, mo: mo, stamp: c.clock}
	c.lastLine, c.lastWay = line, base+victim
	return res
}

// AccessN performs n consecutive fetches starting at addr by the given
// memory object, all of which must fall within one cache line (the
// memory-hierarchy simulator splits block runs at line boundaries before
// calling it). It is exactly equivalent to n sequential Access calls:
// the first access resolves the line; the remaining n-1 are then
// guaranteed same-line hits — the line is resident and nothing evicts
// between them — so they are accounted in bulk: the clock advances by
// n-1, the LRU stamp lands on the final clock value (as it would after n
// sequential touches), and FIFO stamps and the Random policy's generator
// are untouched (hits never consult them). The returned Result is the
// first access's outcome; the rest are hits by construction.
func (c *Cache) AccessN(addr uint32, n int, mo int) Result {
	r := c.Access(addr, mo)
	if n > 1 {
		c.clock += uint64(n - 1)
		if c.lru {
			c.sets[c.lastWay].stamp = c.clock
		}
		c.stats[c.lastLine&c.setMask].Hits += int64(n - 1)
	}
	return r
}

// AccessRun drives k consecutive word fetches starting at addr — a whole
// block run — through the cache, splitting at line boundaries
// internally. It is exactly equivalent to k sequential Access calls but
// walks the tag array once per line in one loop: the direct-mapped hit
// case (the paper's default geometry, and the overwhelmingly common
// outcome in a warm replay) is handled inline with no further calls.
// onMiss is invoked once per missing line with the miss address and the
// access outcome, so the caller can attribute the victim and drive a
// second level without this loop paying for it on hits. Returns the
// number of misses and the number of line transitions; hits are k-misses.
func (c *Cache) AccessRun(addr uint32, k int, mo int, onMiss func(addr uint32, r Result)) (misses, lines int64) {
	lineWords := uint32(1) << (c.lineShift - 2)
	for k > 0 {
		seg := int(lineWords - (addr>>2)%lineWords)
		if seg > k {
			seg = k
		}
		lines++
		line := addr >> c.lineShift
		set := line & c.setMask
		if c.assoc == 1 && !disableFastPath {
			w := &c.sets[set]
			tag := addr >> c.tagShift
			if w.valid && w.tag == tag {
				// Whole segment hits: advance the clock by seg accesses and
				// land the stamp on the final value, as seg Access calls
				// would.
				c.clock += uint64(seg)
				if c.lru {
					w.stamp = c.clock
				}
				c.stats[set].Hits += int64(seg)
				c.lastLine, c.lastWay = line, int(set)
			} else {
				c.clock++
				c.stats[set].Misses++
				r := Result{Hit: false, VictimMO: NoMO}
				if w.valid {
					r.VictimMO = w.mo
					r.SelfEvict = w.mo == mo
					c.stats[set].Evictions++
				}
				*w = way{valid: true, tag: tag, mo: mo, stamp: c.clock}
				c.lastLine, c.lastWay = line, int(set)
				if seg > 1 {
					c.clock += uint64(seg - 1)
					if c.lru {
						w.stamp = c.clock
					}
					c.stats[set].Hits += int64(seg - 1)
				}
				misses++
				onMiss(addr, r)
			}
		} else {
			if r := c.AccessN(addr, seg, mo); !r.Hit {
				misses++
				onMiss(addr, r)
			}
		}
		addr += uint32(seg) * 4
		k -= seg
	}
	return misses, lines
}

// SkipHitRuns bulk-accounts `repeats` consecutive passes over the run
// [addr, addr+4n) under the caller's guarantee that every access hits
// (i.e. one full pass over the run just completed with zero misses — an
// all-hit pass evicts nothing, so the run's lines stay resident and all
// later passes are the same all-hit pass). Per-set hit counters and the
// clock advance exactly as if the accesses were performed one by one.
// LRU stamps and the MRU hint are NOT updated: hits only refresh state
// of lines the run itself touches, so the caller must follow up with one
// real pass (plain Access/AccessN), which re-touches every line and
// lands each stamp on its exact final clock value.
func (c *Cache) SkipHitRuns(addr uint32, n int, repeats int64) {
	c.clock += uint64(n) * uint64(repeats)
	lineWords := uint32(1) << (c.lineShift - 2)
	a := addr >> 2 // word index; InstrSize == 4
	for n > 0 {
		seg := int(lineWords - a%lineWords)
		if seg > n {
			seg = n
		}
		c.stats[(a/lineWords)&c.setMask].Hits += int64(seg) * repeats
		a += uint32(seg)
		n -= seg
	}
}

func (c *Cache) chooseVictim(ways []way) int {
	// Prefer an invalid way.
	for i := range ways {
		if !ways[i].valid {
			return i
		}
	}
	switch c.cfg.Replacement {
	case Random:
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return int(c.rng % uint64(len(ways)))
	default: // LRU and FIFO both evict the smallest stamp.
		victim := 0
		for i := 1; i < len(ways); i++ {
			if ways[i].stamp < ways[victim].stamp {
				victim = i
			}
		}
		return victim
	}
}

// Resident reports whether the line containing addr is currently cached
// (for tests and diagnostics).
func (c *Cache) Resident(addr uint32) bool {
	set := c.Set(addr)
	tag := addr >> c.tagShift
	base := int(set) * c.cfg.Assoc
	for _, w := range c.sets[base : base+c.cfg.Assoc] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// LinesOf returns how many resident lines belong to the given memory
// object (for tests and diagnostics).
func (c *Cache) LinesOf(mo int) int {
	n := 0
	for _, w := range c.sets {
		if w.valid && w.mo == mo {
			n++
		}
	}
	return n
}

// StatsOf returns the per-set totals for a set index.
func (c *Cache) StatsOf(set int) SetStats { return c.stats[set] }

// TotalStats aggregates the per-set totals over the whole cache.
func (c *Cache) TotalStats() SetStats {
	var t SetStats
	for _, s := range c.stats {
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.Evictions += s.Evictions
	}
	return t
}

// DumpState writes a human-readable per-set snapshot of the cache: the
// resident line of every way (reconstructed address and owning memory
// object) plus the set's hit/miss/eviction totals — live cache
// inspection for the simulated hierarchy. Sets that are empty and were
// never touched are elided.
func (c *Cache) DumpState(w io.Writer) error {
	total := c.TotalStats()
	if _, err := fmt.Fprintf(w, "cache %dB %d-way %dB-lines (%d sets): %d hits %d misses %d evictions\n",
		c.cfg.SizeBytes, c.cfg.Assoc, c.cfg.LineBytes, c.cfg.Sets(),
		total.Hits, total.Misses, total.Evictions); err != nil {
		return err
	}
	setBits := log2(uint32(c.cfg.Sets()))
	for set := 0; set < c.cfg.Sets(); set++ {
		st := c.stats[set]
		base := set * c.cfg.Assoc
		ways := c.sets[base : base+c.cfg.Assoc]
		occupied := 0
		for _, wy := range ways {
			if wy.valid {
				occupied++
			}
		}
		if occupied == 0 && st == (SetStats{}) {
			continue
		}
		if _, err := fmt.Fprintf(w, "  set %4d: hits=%-8d misses=%-8d evictions=%-8d",
			set, st.Hits, st.Misses, st.Evictions); err != nil {
			return err
		}
		for wi, wy := range ways {
			if !wy.valid {
				continue
			}
			addr := (wy.tag<<setBits | uint32(set)) << c.indexShift
			mo := "cold"
			if wy.mo != NoMO {
				mo = fmt.Sprintf("mo=%d", wy.mo)
			}
			if _, err := fmt.Fprintf(w, " way%d[%#x %s]", wi, addr, mo); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
