package cache

import (
	"strings"
	"testing"
	"testing/quick"
)

func dm128() Config {
	return Config{SizeBytes: 128, LineBytes: 16, Assoc: 1}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 16, Assoc: 1},
		{SizeBytes: 100, LineBytes: 16, Assoc: 1},
		{SizeBytes: 128, LineBytes: 3, Assoc: 1},
		{SizeBytes: 128, LineBytes: 16, Assoc: 0},
		{SizeBytes: 16, LineBytes: 16, Assoc: 4},
		{SizeBytes: 128, LineBytes: 16, Assoc: 1, Replacement: Policy(9)},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
	if err := dm128().Validate(); err != nil {
		t.Errorf("Validate(dm128) = %v", err)
	}
	if got := dm128().Sets(); got != 8 {
		t.Errorf("Sets = %d, want 8", got)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Error("policy names wrong")
	}
	if Policy(7).String() != "policy(7)" {
		t.Errorf("Policy(7) = %q", Policy(7).String())
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(Config{SizeBytes: 3, LineBytes: 16, Assoc: 1}); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}

// mustNew builds a cache, failing the test on error.
func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, dm128())
	r := c.Access(0x100, 1)
	if r.Hit {
		t.Error("first access should miss")
	}
	if r.VictimMO != NoMO {
		t.Errorf("cold miss victim = %d, want NoMO", r.VictimMO)
	}
	// Same line (within 16 bytes) hits.
	for _, a := range []uint32{0x100, 0x104, 0x108, 0x10c} {
		if r := c.Access(a, 1); !r.Hit {
			t.Errorf("access %#x should hit", a)
		}
	}
	// Next line misses.
	if r := c.Access(0x110, 1); r.Hit {
		t.Error("next line should miss")
	}
}

func TestDirectMappedConflictAttribution(t *testing.T) {
	c := mustNew(t, dm128()) // 8 sets of 16B
	// Addresses 0x000 and 0x080 (128 apart) map to the same set.
	if s0, s1 := c.Set(0x000), c.Set(0x080); s0 != s1 {
		t.Fatalf("sets differ: %d vs %d", s0, s1)
	}
	c.Access(0x000, 1) // cold fill by MO 1
	r := c.Access(0x080, 2)
	if r.Hit {
		t.Fatal("conflicting access should miss")
	}
	if r.VictimMO != 1 {
		t.Errorf("victim = %d, want 1", r.VictimMO)
	}
	if r.SelfEvict {
		t.Error("eviction of another object is not a self-evict")
	}
	// MO 1 comes back: the miss is attributed to MO 2.
	r = c.Access(0x000, 1)
	if r.Hit || r.VictimMO != 2 {
		t.Errorf("thrash attribution wrong: %+v", r)
	}
}

func TestSelfEviction(t *testing.T) {
	c := mustNew(t, dm128())
	c.Access(0x000, 7)
	r := c.Access(0x080, 7) // same set, same object
	if !r.SelfEvict || r.VictimMO != 7 {
		t.Errorf("self-evict not reported: %+v", r)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 2 sets: size=64B, line=16B, assoc=2 -> sets=2.
	cfg := Config{SizeBytes: 64, LineBytes: 16, Assoc: 2, Replacement: LRU}
	c := mustNew(t, cfg)
	// Set 0 lines: addresses with (addr>>4)%2 == 0: 0x00, 0x40, 0x80.
	c.Access(0x00, 1)
	c.Access(0x40, 2)
	c.Access(0x00, 1)      // touch MO 1: MO 2 is now LRU
	r := c.Access(0x80, 3) // fills set 0, evicting LRU
	if r.VictimMO != 2 {
		t.Errorf("LRU victim = %d, want 2", r.VictimMO)
	}
	if !c.Resident(0x00) || c.Resident(0x40) {
		t.Error("LRU kept/evicted the wrong line")
	}
}

func TestFIFOReplacement(t *testing.T) {
	cfg := Config{SizeBytes: 64, LineBytes: 16, Assoc: 2, Replacement: FIFO}
	c := mustNew(t, cfg)
	c.Access(0x00, 1)
	c.Access(0x40, 2)
	c.Access(0x00, 1)      // touch does not matter for FIFO
	r := c.Access(0x80, 3) // evicts the oldest fill: MO 1
	if r.VictimMO != 1 {
		t.Errorf("FIFO victim = %d, want 1", r.VictimMO)
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	cfg := Config{SizeBytes: 64, LineBytes: 16, Assoc: 2, Replacement: Random, Seed: 11}
	seq := func() []int {
		c := mustNew(t, cfg)
		var victims []int
		c.Access(0x00, 1)
		c.Access(0x40, 2)
		for i := 0; i < 16; i++ {
			r := c.Access(uint32(0x80+i*0x40), 3+i)
			victims = append(victims, r.VictimMO)
		}
		return victims
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("random policy not deterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, dm128())
	c.Access(0x00, 1)
	if !c.Resident(0x00) {
		t.Fatal("line should be resident")
	}
	c.Reset()
	if c.Resident(0x00) {
		t.Fatal("reset did not invalidate")
	}
	if got := c.LinesOf(1); got != 0 {
		t.Fatalf("LinesOf after reset = %d", got)
	}
}

func TestLinesOf(t *testing.T) {
	c := mustNew(t, dm128())
	c.Access(0x000, 5)
	c.Access(0x010, 5)
	c.Access(0x020, 6)
	if got := c.LinesOf(5); got != 2 {
		t.Errorf("LinesOf(5) = %d, want 2", got)
	}
	if got := c.LinesOf(6); got != 1 {
		t.Errorf("LinesOf(6) = %d, want 1", got)
	}
}

// Property: an access to an address always results in that line being
// resident, and a second immediate access hits.
func TestAccessThenResidentProperty(t *testing.T) {
	cfg := Config{SizeBytes: 256, LineBytes: 16, Assoc: 2, Replacement: LRU}
	c := mustNew(t, cfg)
	f := func(addr uint32, mo uint8) bool {
		c.Access(addr, int(mo))
		if !c.Resident(addr) {
			return false
		}
		return c.Access(addr, int(mo)).Hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: total resident lines never exceed capacity.
func TestCapacityProperty(t *testing.T) {
	cfg := Config{SizeBytes: 128, LineBytes: 16, Assoc: 4, Replacement: FIFO}
	c := mustNew(t, cfg)
	capacity := cfg.SizeBytes / cfg.LineBytes
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(a, 1)
		}
		return c.LinesOf(1) <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a working set that fits within one way's reach never conflicts
// after warmup in a fully-warm direct-mapped cache.
func TestNoMissesWhenWorkingSetFits(t *testing.T) {
	c := mustNew(t, dm128())
	// Warm all 8 lines of [0,128).
	for a := uint32(0); a < 128; a += 16 {
		c.Access(a, 1)
	}
	for i := 0; i < 1000; i++ {
		a := uint32((i * 20) % 128)
		if r := c.Access(a, 1); !r.Hit {
			t.Fatalf("unexpected miss at %#x", a)
		}
	}
}

func TestSetStatsAndDumpState(t *testing.T) {
	c := mustNew(t, dm128())
	c.Access(0x100, 1) // set 0: cold miss
	c.Access(0x100, 1) // set 0: hit
	c.Access(0x200, 2) // set 0: miss, evicts mo 1
	c.Access(0x110, 3) // set 1: cold miss

	if got := c.StatsOf(0); got != (SetStats{Hits: 1, Misses: 2, Evictions: 1}) {
		t.Errorf("StatsOf(0) = %+v", got)
	}
	if got := c.StatsOf(1); got != (SetStats{Misses: 1}) {
		t.Errorf("StatsOf(1) = %+v", got)
	}
	if got := c.TotalStats(); got != (SetStats{Hits: 1, Misses: 3, Evictions: 1}) {
		t.Errorf("TotalStats = %+v", got)
	}

	var buf strings.Builder
	if err := c.DumpState(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Header carries the geometry and totals; per-set lines carry stats
	// and resident ways with reconstructed addresses.
	for _, want := range []string{
		"cache 128B 1-way 16B-lines (8 sets): 1 hits 3 misses 1 evictions",
		"set    0:",
		"way0[0x200 mo=2]", // mo 1's line replaced by mo 2
		"way0[0x110 mo=3]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DumpState output missing %q:\n%s", want, out)
		}
	}
	// Untouched sets are elided: only sets 0 and 1 plus the header.
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("DumpState wrote %d lines, want 3:\n%s", got, out)
	}

	c.Reset()
	if got := c.TotalStats(); got != (SetStats{}) {
		t.Errorf("TotalStats after Reset = %+v", got)
	}
}

// diffConfigs is the geometry/policy battery the differential tests
// below sweep: direct-mapped, associative LRU/FIFO/Random, and
// word-sized lines.
func diffConfigs() []Config {
	return []Config{
		{SizeBytes: 128, LineBytes: 16, Assoc: 1},
		{SizeBytes: 256, LineBytes: 16, Assoc: 2},
		{SizeBytes: 256, LineBytes: 16, Assoc: 2, Replacement: FIFO},
		{SizeBytes: 256, LineBytes: 8, Assoc: 4, Replacement: Random, Seed: 42},
		{SizeBytes: 64, LineBytes: 4, Assoc: 2},
	}
}

// diffStream generates a deterministic pseudo-random access stream with
// plenty of same-line repeats (to exercise the MRU fast path), set
// conflicts and owner changes.
func diffStream(n int) []struct {
	addr uint32
	mo   int
} {
	stream := make([]struct {
		addr uint32
		mo   int
	}, n)
	rng := uint64(0x1234_5678_9abc_def0)
	addr := uint32(0)
	for i := range stream {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		switch rng % 4 {
		case 0, 1: // sequential: next word, often still the same line
			addr += 4
		case 2: // jump within a small working set
			addr = uint32(rng>>8) % 1024
		default: // far jump: new tag, same sets
			addr = uint32(rng>>8) % 8192
		}
		stream[i].addr = addr &^ 3
		stream[i].mo = int(rng>>32) % 5
	}
	return stream
}

// TestFastPathMatchesSetWalk differentially validates the same-line MRU
// fast path: the identical access stream must produce identical results,
// statistics and final state with the fast path on and off.
func TestFastPathMatchesSetWalk(t *testing.T) {
	if disableFastPath {
		t.Fatal("fast path already disabled")
	}
	stream := diffStream(20000)
	for _, cfg := range diffConfigs() {
		t.Run(cfg.Replacement.String(), func(t *testing.T) {
			fast := mustNew(t, cfg)
			slow := mustNew(t, cfg)
			for i, a := range stream {
				rf := fast.Access(a.addr, a.mo)
				disableFastPath = true
				rs := slow.Access(a.addr, a.mo)
				disableFastPath = false
				if rf != rs {
					t.Fatalf("access %d (%#x): fast %+v, slow %+v", i, a.addr, rf, rs)
				}
			}
			assertSameState(t, slow, fast)
		})
	}
}

// TestAccessNMatchesSequential checks the bulk same-line accounting:
// AccessN(addr, n) must leave the cache in exactly the state n
// sequential word accesses within the line would.
func TestAccessNMatchesSequential(t *testing.T) {
	for _, cfg := range diffConfigs() {
		t.Run(cfg.Replacement.String(), func(t *testing.T) {
			bulk := mustNew(t, cfg)
			seq := mustNew(t, cfg)
			rng := uint64(0xfeed_face_cafe_beef)
			lineWords := cfg.LineBytes / 4
			for i := 0; i < 5000; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				line := uint32(rng>>16) % 512
				base := line*uint32(cfg.LineBytes) + uint32(rng%uint64(lineWords))*4
				// n fetches from base staying inside the line.
				room := lineWords - int(base/4)%lineWords
				n := 1 + int(rng>>40)%room
				mo := int(rng>>32) % 5
				rb := bulk.AccessN(base, n, mo)
				rs := seq.Access(base, mo)
				for k := 1; k < n; k++ {
					if r := seq.Access(base+uint32(4*k), mo); !r.Hit {
						t.Fatalf("sequential follow-up %d missed", k)
					}
				}
				if rb != rs {
					t.Fatalf("access %d: bulk %+v, sequential first %+v", i, rb, rs)
				}
			}
			assertSameState(t, seq, bulk)
		})
	}
}

// assertSameState compares two caches' aggregate statistics and full
// per-set dumps.
func assertSameState(t *testing.T, want, got *Cache) {
	t.Helper()
	if w, g := want.TotalStats(), got.TotalStats(); w != g {
		t.Errorf("TotalStats: want %+v, got %+v", w, g)
	}
	var wb, gb strings.Builder
	if err := want.DumpState(&wb); err != nil {
		t.Fatalf("DumpState: %v", err)
	}
	if err := got.DumpState(&gb); err != nil {
		t.Fatalf("DumpState: %v", err)
	}
	if wb.String() != gb.String() {
		t.Errorf("state differs:\n--- want ---\n%s--- got ---\n%s", wb.String(), gb.String())
	}
}
