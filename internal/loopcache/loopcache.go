// Package loopcache models the preloaded loop cache of Gordon-Ross & Vahid
// [12], the architectural alternative the paper compares the scratchpad
// against (Figure 1(b), Figure 5, Table 1).
//
// A preloaded loop cache is a small instruction store statically loaded
// with a handful of pre-identified regions (complex loops or whole
// functions). A controller holds the start and end address of every
// preloaded region and, on every instruction fetch, compares the PC
// against all of them: on a match the fetch is served by the loop-cache
// array, otherwise by the L1 I-cache. To keep the controller's per-fetch
// energy acceptable only a small number of regions (typically 2–6) can be
// preloaded — the architectural limitation CASA exploits, since a
// scratchpad has no controller and no region limit.
//
// The package also implements Ross's greedy preloading heuristic: regions
// (natural loops and functions) are ranked by execution-time density
// (fetches per byte) and packed greedily until the entry count or the
// capacity is exhausted.
package loopcache

import (
	"fmt"
	"sort"
)

// Region is one preloadable address range [Start, End).
type Region struct {
	// Start is the first instruction address of the region.
	Start uint32
	// End is one past the last instruction address.
	End uint32
	// Name describes the region in reports (e.g. "loop main:3" or
	// "func dct").
	Name string
	// Fetches is the profiled number of instruction fetches inside the
	// region (used by the allocator; informational afterwards).
	Fetches int64
}

// Bytes returns the region size.
func (r Region) Bytes() int { return int(r.End - r.Start) }

// Density returns fetches per byte, the greedy ranking key of Ross's
// heuristic ("execution time per unit size").
func (r Region) Density() float64 {
	if r.End <= r.Start {
		return 0
	}
	return float64(r.Fetches) / float64(r.Bytes())
}

// Config describes the loop-cache hardware.
type Config struct {
	// SizeBytes is the loop-cache array capacity (power of two).
	SizeBytes int
	// MaxRegions is the number of preloadable ranges the controller
	// supports (the paper assumes 4).
	MaxRegions int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0 {
		return fmt.Errorf("loopcache: size %d not a positive power of two", c.SizeBytes)
	}
	if c.MaxRegions < 1 {
		return fmt.Errorf("loopcache: MaxRegions %d < 1", c.MaxRegions)
	}
	return nil
}

// Controller is a loaded loop-cache controller: an immutable set of
// disjoint regions plus the hardware limits it was validated against.
type Controller struct {
	cfg     Config
	regions []Region // sorted by Start
	used    int
}

// NewController validates and loads a set of regions. Regions must be
// non-empty, disjoint, fit the array together, and respect MaxRegions.
func NewController(cfg Config, regions []Region) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(regions) > cfg.MaxRegions {
		return nil, fmt.Errorf("loopcache: %d regions exceed controller limit %d",
			len(regions), cfg.MaxRegions)
	}
	rs := append([]Region(nil), regions...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	used := 0
	for i, r := range rs {
		if r.End <= r.Start {
			return nil, fmt.Errorf("loopcache: region %q empty or inverted", r.Name)
		}
		if i > 0 && r.Start < rs[i-1].End {
			return nil, fmt.Errorf("loopcache: regions %q and %q overlap", rs[i-1].Name, r.Name)
		}
		used += r.Bytes()
	}
	if used > cfg.SizeBytes {
		return nil, fmt.Errorf("loopcache: regions need %d bytes, array has %d", used, cfg.SizeBytes)
	}
	return &Controller{cfg: cfg, regions: rs, used: used}, nil
}

// Match reports whether the address is served by the loop cache.
func (c *Controller) Match(addr uint32) bool {
	// Hardware compares against all regions in parallel; binary search is
	// the software equivalent over the sorted, disjoint set.
	lo, hi := 0, len(c.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		r := c.regions[mid]
		switch {
		case addr < r.Start:
			hi = mid
		case addr >= r.End:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

// Segment classifies addr for bulk fetch delivery: match reports whether
// addr is served by the loop cache (identical to Match), and boundary is
// the first address at or above addr where that answer can change — the
// end of the containing region on a match, the start of the next region
// (or the top of the address space) otherwise. Every fetch in
// [addr, boundary) shares the match outcome, which lets the hierarchy
// simulator route a whole instruction run with one lookup.
func (c *Controller) Segment(addr uint32) (match bool, boundary uint32) {
	lo, hi := 0, len(c.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		r := c.regions[mid]
		switch {
		case addr < r.Start:
			hi = mid
		case addr >= r.End:
			lo = mid + 1
		default:
			return true, r.End
		}
	}
	// lo is the first region entirely above addr, if any.
	if lo < len(c.regions) {
		return false, c.regions[lo].Start
	}
	return false, ^uint32(0)
}

// Regions returns the loaded regions (sorted by start address).
func (c *Controller) Regions() []Region { return c.regions }

// Used returns the array bytes occupied.
func (c *Controller) Used() int { return c.used }

// Config returns the hardware configuration.
func (c *Controller) Config() Config { return c.cfg }

// Allocate implements Ross's greedy preloading heuristic over candidate
// regions: sort by density (fetches per byte), then take each candidate
// that still fits the remaining capacity, does not overlap an already
// selected region, and does not exceed the region-count limit. Candidates
// larger than the whole array are skipped.
func Allocate(cfg Config, candidates []Region) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cands := append([]Region(nil), candidates...)
	sort.SliceStable(cands, func(i, j int) bool {
		di, dj := cands[i].Density(), cands[j].Density()
		if di != dj {
			return di > dj
		}
		return cands[i].Start < cands[j].Start
	})
	var chosen []Region
	used := 0
	for _, cand := range cands {
		if len(chosen) == cfg.MaxRegions {
			break
		}
		if cand.End <= cand.Start || used+cand.Bytes() > cfg.SizeBytes {
			continue
		}
		overlap := false
		for _, sel := range chosen {
			if cand.Start < sel.End && sel.Start < cand.End {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		chosen = append(chosen, cand)
		used += cand.Bytes()
	}
	return NewController(cfg, chosen)
}
