package loopcache

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/trace"
)

func cfg4x256() Config { return Config{SizeBytes: 256, MaxRegions: 4} }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, MaxRegions: 4},
		{SizeBytes: 100, MaxRegions: 4},
		{SizeBytes: 256, MaxRegions: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
	if err := cfg4x256().Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{Start: 0x100, End: 0x140, Fetches: 640}
	if r.Bytes() != 64 {
		t.Errorf("Bytes = %d, want 64", r.Bytes())
	}
	if r.Density() != 10 {
		t.Errorf("Density = %g, want 10", r.Density())
	}
	empty := Region{Start: 0x100, End: 0x100}
	if empty.Density() != 0 {
		t.Error("empty region density must be 0")
	}
}

func TestNewControllerChecks(t *testing.T) {
	cases := []struct {
		name    string
		regions []Region
	}{
		{"too many regions", []Region{
			{Start: 0, End: 4}, {Start: 8, End: 12}, {Start: 16, End: 20},
			{Start: 24, End: 28}, {Start: 32, End: 36},
		}},
		{"empty region", []Region{{Start: 8, End: 8}}},
		{"inverted region", []Region{{Start: 8, End: 4}}},
		{"overlapping regions", []Region{{Start: 0, End: 16}, {Start: 8, End: 24}}},
		{"capacity exceeded", []Region{{Start: 0, End: 200}, {Start: 512, End: 712}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewController(cfg4x256(), c.regions); err == nil {
				t.Fatal("invalid region set accepted")
			}
		})
	}
	// Valid set loads.
	ctrl, err := NewController(cfg4x256(), []Region{
		{Start: 0x40, End: 0x80, Name: "a"},
		{Start: 0x100, End: 0x140, Name: "b"},
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	if ctrl.Used() != 128 {
		t.Errorf("Used = %d, want 128", ctrl.Used())
	}
	if got := ctrl.Config(); got != cfg4x256() {
		t.Errorf("Config = %+v", got)
	}
}

func TestControllerMatch(t *testing.T) {
	ctrl, err := NewController(cfg4x256(), []Region{
		{Start: 0x100, End: 0x140, Name: "b"},
		{Start: 0x40, End: 0x80, Name: "a"}, // out of order on purpose
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	cases := []struct {
		addr uint32
		want bool
	}{
		{0x3c, false}, {0x40, true}, {0x7c, true}, {0x80, false},
		{0xfc, false}, {0x100, true}, {0x13c, true}, {0x140, false},
		{0xffff_ffff, false}, {0, false},
	}
	for _, c := range cases {
		if got := ctrl.Match(c.addr); got != c.want {
			t.Errorf("Match(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
	// Regions come back sorted.
	rs := ctrl.Regions()
	if len(rs) != 2 || rs[0].Start != 0x40 || rs[1].Start != 0x100 {
		t.Errorf("Regions = %v", rs)
	}
}

func TestAllocateGreedyByDensity(t *testing.T) {
	// Capacity 256, max 2 regions. Densest first.
	cfg := Config{SizeBytes: 256, MaxRegions: 2}
	cands := []Region{
		{Start: 0x000, End: 0x080, Fetches: 1280, Name: "dense"},   // density 10
		{Start: 0x100, End: 0x180, Fetches: 640, Name: "mid"},      // density 5
		{Start: 0x200, End: 0x280, Fetches: 128, Name: "sparse"},   // density 1
		{Start: 0x300, End: 0x500, Fetches: 100000, Name: "giant"}, // too big alone
	}
	ctrl, err := Allocate(cfg, cands)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	names := regionNames(ctrl)
	if names != "dense,mid" {
		t.Errorf("selected %q, want dense,mid", names)
	}
}

func TestAllocateRespectsEntryLimit(t *testing.T) {
	cfg := Config{SizeBytes: 1024, MaxRegions: 2}
	var cands []Region
	for i := 0; i < 6; i++ {
		start := uint32(i * 0x100)
		cands = append(cands, Region{
			Start: start, End: start + 64,
			Fetches: int64(1000 - i), Name: string(rune('a' + i)),
		})
	}
	ctrl, err := Allocate(cfg, cands)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(ctrl.Regions()) != 2 {
		t.Errorf("selected %d regions, limit 2", len(ctrl.Regions()))
	}
}

func TestAllocateSkipsOverlaps(t *testing.T) {
	// A nested loop overlaps its outer loop; the denser inner one wins and
	// the outer is skipped.
	cfg := Config{SizeBytes: 1024, MaxRegions: 4}
	cands := []Region{
		{Start: 0x100, End: 0x140, Fetches: 6400, Name: "inner"},  // density 100
		{Start: 0x0c0, End: 0x1c0, Fetches: 12800, Name: "outer"}, // density 50
		{Start: 0x400, End: 0x440, Fetches: 64, Name: "other"},
	}
	ctrl, err := Allocate(cfg, cands)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	names := regionNames(ctrl)
	if strings.Contains(names, "outer") {
		t.Errorf("outer overlaps selected inner: %q", names)
	}
	if !strings.Contains(names, "inner") || !strings.Contains(names, "other") {
		t.Errorf("expected inner+other, got %q", names)
	}
}

func regionNames(c *Controller) string {
	var names []string
	for _, r := range c.Regions() {
		names = append(names, r.Name)
	}
	return strings.Join(names, ",")
}

func TestCandidatesExtraction(t *testing.T) {
	pb := ir.NewProgramBuilder("p")
	main := pb.Func("main")
	main.Block("pre").ALU(2)
	main.Block("loop").Code(8).Call("leaf")
	main.Block("latch").ALU(1).Branch("loop", "post", ir.Loop{Trips: 40})
	main.Block("post").Return()
	leaf := pb.Func("leaf")
	leaf.Block("l").Code(4).Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: 128, LineBytes: 16})
	if err != nil {
		t.Fatalf("trace.Build: %v", err)
	}
	lay, err := layout.New(set, nil, layout.Options{})
	if err != nil {
		t.Fatalf("layout.New: %v", err)
	}
	cands := Candidates(p, prof, lay)

	var haveFuncMain, haveFuncLeaf, haveLoop bool
	for _, c := range cands {
		switch {
		case c.Name == "func main":
			haveFuncMain = true
			if c.Fetches <= 0 {
				t.Error("func main fetches missing")
			}
		case c.Name == "func leaf":
			haveFuncLeaf = true
			// leaf executes 40 times x 5 instructions.
			if c.Fetches != 200 {
				t.Errorf("func leaf fetches = %d, want 200", c.Fetches)
			}
		case strings.HasPrefix(c.Name, "loop main:"):
			haveLoop = true
			if c.Bytes() <= 0 {
				t.Error("loop region empty")
			}
		}
	}
	if !haveFuncMain || !haveFuncLeaf || !haveLoop {
		t.Errorf("missing candidates: %v", cands)
	}
	// A loop's region must be preloadable end-to-end.
	ctrl, err := Allocate(Config{SizeBytes: 512, MaxRegions: 4}, cands)
	if err != nil {
		t.Fatalf("Allocate over candidates: %v", err)
	}
	if len(ctrl.Regions()) == 0 {
		t.Error("allocator selected nothing")
	}
}
