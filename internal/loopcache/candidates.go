package loopcache

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/sim"
)

// Candidates extracts the preloadable regions Ross's heuristic chooses
// from: every natural loop (merged per header) and every function of the
// program, as contiguous address ranges under the given layout.
//
// A region's fetch count sums the fetches of all blocks whose code lies
// inside the range — including non-member blocks that happen to be placed
// between members — because the loop cache serves whatever addresses fall
// in the range.
func Candidates(p *ir.Program, prof *sim.Profile, lay *layout.Layout) []Region {
	var regions []Region
	for _, f := range p.Funcs {
		// Whole function.
		if r, ok := blockRange(p, lay, f, allBlocks(f)); ok {
			r.Name = fmt.Sprintf("func %s", f.Name)
			regions = append(regions, r)
		}
		// Merged natural loops.
		for _, l := range ir.AnalyzeLoops(f).Loops {
			if r, ok := blockRange(p, lay, f, l.Blocks); ok {
				r.Name = fmt.Sprintf("loop %s:%d", f.Name, l.Header)
				regions = append(regions, r)
			}
		}
	}
	// Fill in fetch counts by range containment.
	for i := range regions {
		regions[i].Fetches = fetchesIn(p, prof, lay, regions[i])
	}
	return regions
}

func allBlocks(f *ir.Function) []ir.BlockID {
	ids := make([]ir.BlockID, len(f.Blocks))
	for i := range f.Blocks {
		ids[i] = ir.BlockID(i)
	}
	return ids
}

// blockRange computes the covering address range of a block set.
func blockRange(p *ir.Program, lay *layout.Layout, f *ir.Function, ids []ir.BlockID) (Region, bool) {
	if len(ids) == 0 {
		return Region{}, false
	}
	var lo, hi uint32
	first := true
	for _, id := range ids {
		ref := ir.BlockRef{Func: f.ID, Block: id}
		base := lay.BlockBase(ref)
		end := base + uint32(f.Blocks[id].Size())
		if j, ok := lay.FallJump(ref); ok {
			if j+ir.InstrSize > end {
				end = j + ir.InstrSize
			}
		}
		if first {
			lo, hi = base, end
			first = false
		} else {
			if base < lo {
				lo = base
			}
			if end > hi {
				hi = end
			}
		}
	}
	return Region{Start: lo, End: hi}, true
}

// fetchesIn sums the profiled fetches of every block placed inside the
// region.
func fetchesIn(p *ir.Program, prof *sim.Profile, lay *layout.Layout, r Region) int64 {
	var n int64
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			ref := ir.BlockRef{Func: f.ID, Block: b.ID}
			base := lay.BlockBase(ref)
			if base >= r.Start && base+uint32(b.Size()) <= r.End {
				n += prof.BlockCount(ref) * int64(len(b.Instrs))
			}
		}
	}
	return n
}
