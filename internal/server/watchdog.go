package server

import (
	"runtime"
	"time"

	"repro/internal/obs"
)

// Memory-pressure watchdog (DESIGN.md §14). Every cache the daemon
// accumulates — result responses, interned programs with their sim
// memos, warm donors with their trace sets — is an optimization, not an
// obligation; under memory pressure each is better released than kept
// at the price of the kernel's OOM killer choosing for us. The watchdog
// samples the heap every MemCheckEvery and, above MemSoftLimitBytes,
// sheds state in priority order (cheapest to rebuild first):
//
//  1. half of the result cache (LRU tail) — rebuilt by one solve each;
//  2. the interned-program table, releasing every custom program's
//     profile/trace/stream memos through sim.Forget — rebuilt by one
//     parse + profile each;
//  3. the warm donor store — only costs later solves their warm start.
//
// After each level it runs a GC and re-samples; it stops as soon as the
// heap is back under the limit, so a mild overshoot only costs the
// cheap state.
var (
	mMemShed   = obs.GetCounter("casa_server_memory_shed_total")
	mHeapBytes = obs.GetGauge("casa_server_heap_bytes")
)

// watchMemory is the background sampler; Shutdown stops it.
func (s *Server) watchMemory() {
	t := time.NewTicker(s.cfg.MemCheckEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.maybeShed()
		}
	}
}

// heapOver samples the live heap (exported as casa_server_heap_bytes)
// and reports whether it exceeds the soft limit.
func (s *Server) heapOver() bool {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mHeapBytes.Set(int64(ms.HeapAlloc))
	return ms.HeapAlloc > s.cfg.MemSoftLimitBytes
}

// maybeShed runs one watchdog check, shedding levels in priority order
// until the heap is back under the soft limit. It returns the names of
// the levels shed (tests drive it synchronously; the ticker ignores
// the result).
func (s *Server) maybeShed() []string {
	if s.cfg.MemSoftLimitBytes == 0 || !s.heapOver() {
		return nil
	}
	var shed []string
	steps := []struct {
		name string
		run  func() int
	}{
		{"result-cache", func() int { return s.cache.shed(0.5) }},
		{"interned-programs", func() int { return s.programs.shedAll() }},
		{"warm-donors", func() int { return s.warm.clear() }},
	}
	for _, step := range steps {
		n := step.run()
		if n > 0 {
			mMemShed.Inc()
			shed = append(shed, step.name)
			s.logger.Warn("memory watchdog shed", "state", step.name, "entries", n)
		}
		runtime.GC()
		if !s.heapOver() {
			break
		}
	}
	return shed
}
