package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// postWithDeadline is postJSON with an X-Deadline-Ms header attached.
func postWithDeadline(t *testing.T, url, body, deadlineMS string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/allocate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderDeadline, deadlineMS)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// TestDeadlineClampsBudget pins the propagation contract: without the
// header a solve gets its tier's full budget; with X-Deadline-Ms the
// budget handed to the solver is clamped to the remaining client time
// minus the margin — never the tier's static budget.
func TestDeadlineClampsBudget(t *testing.T) {
	cfg := testConfig() // ExactBudget 5s
	s := New(cfg)
	var mu sync.Mutex
	var budgets []time.Duration
	s.testHookBudget = func(tier string, budget time.Duration) {
		mu.Lock()
		budgets = append(budgets, budget)
		mu.Unlock()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	allocate(t, ts.URL, adpcmBody(224))
	resp, data := postWithDeadline(t, ts.URL, adpcmBody(240), "2000")
	if resp.StatusCode != 200 {
		t.Fatalf("deadline-bearing request: HTTP %d: %s", resp.StatusCode, data)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(budgets) != 2 {
		t.Fatalf("%d solves, want 2 (budgets %v)", len(budgets), budgets)
	}
	if budgets[0] != cfg.ExactBudget {
		t.Errorf("deadline-free solve budget = %v, want the full tier budget %v", budgets[0], cfg.ExactBudget)
	}
	if budgets[1] <= 0 || budgets[1] >= cfg.ExactBudget {
		t.Errorf("deadline-clamped budget = %v, want in (0, %v)", budgets[1], cfg.ExactBudget)
	}
	if budgets[1] > 2*time.Second {
		t.Errorf("clamped budget %v exceeds the 2000ms client deadline", budgets[1])
	}
}

// TestDeadlineHeaderValidation: a malformed or non-positive deadline is
// a 400, not a silently unbounded wait.
func TestDeadlineHeaderValidation(t *testing.T) {
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()
	for _, raw := range []string{"banana", "-5", "0"} {
		resp, data := postWithDeadline(t, ts.URL, adpcmBody(128), raw)
		if resp.StatusCode != 400 {
			t.Errorf("X-Deadline-Ms %q: HTTP %d, want 400: %s", raw, resp.StatusCode, data)
		}
	}
}

// TestDeadlineExpiredIs504 drives the short-deadline path end to end: a
// deadline below the margin must be answered with an immediate clean
// 504 — no admission slot, no solve — counted by the deadline counter
// and retained by the trace store as a must-keep "deadline" outcome.
func TestDeadlineExpiredIs504(t *testing.T) {
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	exceeded0 := mDeadlineExceeded.Value()
	solves0 := mSolves.Value()
	resp, data := postWithDeadline(t, ts.URL, adpcmBody(176), "1")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("HTTP %d, want 504: %s", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, "deadline") {
		t.Fatalf("504 body not a structured deadline error: %s", data)
	}
	if got := mDeadlineExceeded.Value() - exceeded0; got != 1 {
		t.Errorf("deadline counter moved by %d, want 1", got)
	}
	if got := mSolves.Value() - solves0; got != 0 {
		t.Errorf("expired request consumed %d solves, want 0", got)
	}

	// The expiry is a must-keep trace outcome.
	idx, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Body.Close()
	var rows []map[string]any
	if err := json.NewDecoder(idx.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r["outcome"] == "deadline" {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no retained trace with outcome %q: %v", "deadline", rows)
	}
}

// TestOversizedBodyIs413: a body past the MaxBytesReader cap gets a
// structured 413 and moves the dedicated counter — it is never buffered
// or answered 400 as if the JSON were merely malformed.
func TestOversizedBodyIs413(t *testing.T) {
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	big0 := mBodyTooLarge.Value()
	// Default MaxProgramBytes 256 KiB + 64 KiB envelope headroom; 400 KiB
	// of program is past the cap.
	huge := strings.Repeat("; padding line\\n", (400<<10)/16)
	body := `{"program":"` + huge + `","hierarchy":{"cache_bytes":1024,"spm_bytes":128}}`
	resp, data := postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("HTTP %d, want 413: %.200s", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, "limit") {
		t.Fatalf("413 body not structured: %s", data)
	}
	if got := mBodyTooLarge.Value() - big0; got != 1 {
		t.Errorf("body-too-large counter moved by %d, want 1", got)
	}
}

// TestSlowLorisBodyTimeout: a client that sends headers and then
// dribbles (here: abandons) its body must get a 408 when the
// per-request read deadline expires — the handler goroutine is released
// in BodyReadTimeout, not held for the listener-wide ReadTimeout.
func TestSlowLorisBodyTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.BodyReadTimeout = 150 * time.Millisecond
	ts := httptest.NewServer(New(cfg).Handler())
	defer ts.Close()

	slow0 := mSlowClients.Value()
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	head := fmt.Sprintf("POST /v1/allocate HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n",
		ts.Listener.Addr())
	if _, err := conn.Write([]byte(head + `{"workload":`)); err != nil {
		t.Fatal(err)
	}
	// Send nothing more; the server's body deadline must fire.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("no response to the stalled upload: %v", err)
	}
	if !strings.Contains(status, "408") {
		t.Fatalf("status line %q, want 408", strings.TrimSpace(status))
	}
	if got := mSlowClients.Value() - slow0; got != 1 {
		t.Errorf("slow-client counter moved by %d, want 1", got)
	}
}

// TestEndpointMethodGuards: every read-only endpoint answers non-GET
// with a structured 405 + Allow header, and /debug/traces/{id} answers
// an unknown ID with a structured 404.
func TestEndpointMethodGuards(t *testing.T) {
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/metrics", "/metrics.json", "/debug/traces", "/debug/traces/x", "/debug/vars"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		derr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: HTTP %d, want 405", path, resp.StatusCode)
		}
		if resp.Header.Get("Allow") != http.MethodGet {
			t.Errorf("POST %s: Allow = %q, want GET", path, resp.Header.Get("Allow"))
		}
		if derr != nil || e.Error == "" {
			t.Errorf("POST %s: body not a structured error", path)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/traces/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id: HTTP %d, want 404", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "no-such-trace") {
		t.Fatalf("404 body not a structured error naming the id: %+v", e)
	}
}

// TestDrainWaitsForStalledLeader is the graceful-drain chaos scenario:
// a coalesced leader solve is held in flight while server-stall-read
// faults slow the read path, a drain starts, and every follower must
// still receive a complete response — never a hang, never a torn body.
func TestDrainWaitsForStalledLeader(t *testing.T) {
	fault.Set(fault.NewPlan().Always(fault.ServerStallRead))
	defer fault.Set(nil)

	cfg := testConfig()
	cfg.StallDelay = 50 * time.Millisecond
	s := New(cfg)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var hookOnce sync.Once
	s.testHookSolving = func(key, tier string) {
		hookOnce.Do(func() {
			entered <- struct{}{}
			<-release
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const followers = 3
	results := make(chan *Response, followers+1)
	errs := make(chan error, followers+1)
	fire := func() {
		resp, data := postJSON(t, ts.URL, adpcmBody(208))
		if resp.StatusCode != 200 {
			errs <- fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
			return
		}
		var out Response
		if err := json.Unmarshal(data, &out); err != nil {
			errs <- fmt.Errorf("torn response: %v: %s", err, data)
			return
		}
		results <- &out
	}
	go fire()
	<-entered // leader holds its solve
	for i := 0; i < followers; i++ {
		go fire()
	}
	// Let the followers clear the stalled read and park in singleflight.
	time.Sleep(300 * time.Millisecond)

	// Start the drain while the coalesced solve is still in flight.
	qresp, err := http.Post(ts.URL+"/quitquitquit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// New work is refused cleanly mid-drain.
	resp, _ := postJSON(t, ts.URL, adpcmBody(209))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain request: HTTP %d, want 503", resp.StatusCode)
	}

	close(release)
	for i := 0; i < followers+1; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case r := <-results:
			if r.Key == "" || r.Allocator == "" {
				t.Fatalf("incomplete response delivered during drain: %+v", r)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("request hung across the drain")
		}
	}
}

// TestWatchdogShedsInPriorityOrder drives maybeShed synchronously with
// an unreachably small soft limit: every shed level must fire, in
// priority order, emptying the interned programs and warm donors and
// halving the result cache.
func TestWatchdogShedsInPriorityOrder(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "on")
	cfg := testConfig()
	cfg.MemSoftLimitBytes = 1 // any live heap is over
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	allocate(t, ts.URL, adpcmBody(128))
	allocate(t, ts.URL, adpcmBody(192))
	custom := fmt.Sprintf(`{"program":%q,"hierarchy":{"cache_bytes":1024,"spm_bytes":128}}`, tinyProgram)
	allocate(t, ts.URL, custom)
	if s.cache.len() == 0 || s.programs.len() == 0 || s.warm.size() == 0 {
		t.Fatalf("setup: cache %d, programs %d, warm %d — need all nonzero",
			s.cache.len(), s.programs.len(), s.warm.size())
	}
	cache0 := s.cache.len()

	shed0 := mMemShed.Value()
	names := s.maybeShed()
	want := []string{"result-cache", "interned-programs", "warm-donors"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("shed levels %v, want %v", names, want)
	}
	if got := mMemShed.Value() - shed0; got != 3 {
		t.Errorf("shed counter moved by %d, want 3", got)
	}
	// shed(0.5) rounds per shard, so with a handful of entries the drop
	// is "about half": strictly fewer than before, not necessarily
	// exactly cache0/2.
	if got := s.cache.len(); got >= cache0 {
		t.Errorf("cache len after shed = %d, want fewer than %d", got, cache0)
	}
	if s.programs.len() != 0 {
		t.Errorf("interned programs survived the shed: %d", s.programs.len())
	}
	if s.warm.size() != 0 {
		t.Errorf("warm donors survived the shed: %d", s.warm.size())
	}

	// The server keeps serving — shed state is an optimization, not a
	// correctness dependency.
	allocate(t, ts.URL, adpcmBody(128))

	// Unarmed watchdog never sheds.
	cfg2 := testConfig()
	s2 := New(cfg2)
	if names := s2.maybeShed(); names != nil {
		t.Errorf("disarmed watchdog shed %v", names)
	}
}

// TestSnapshotRoundTrip is the crash-recovery golden test: a fresh
// server restored from another server's snapshot must answer the same
// request identically (modulo per-delivery fields) straight from the
// restored cache — zero new solves — and warm-start the first
// neighboring solve from a restored donor.
func TestSnapshotRoundTrip(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "on")
	path := filepath.Join(t.TempDir(), "snap.json")

	a := New(testConfig())
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	first := allocate(t, tsA.URL, adpcmBody(128))
	saves0 := mSnapSaves.Value()
	if err := a.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if mSnapSaves.Value() != saves0+1 {
		t.Error("snapshot save not counted")
	}

	b := New(testConfig())
	n, err := b.RestoreSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("restored %d entries, want at least a cache entry and a warm donor", n)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	solves0 := mSolves.Value()
	got := allocate(t, tsB.URL, adpcmBody(128))
	if !got.Cached {
		t.Fatal("restored server recomputed instead of serving from the restored cache")
	}
	if d := mSolves.Value() - solves0; d != 0 {
		t.Fatalf("restored server ran %d solves for a snapshotted key, want 0", d)
	}
	gc, fc := *got, *first
	gc.Cached, fc.Cached = false, false
	gc.Coalesced, fc.Coalesced = false, false
	gc.ElapsedMS, fc.ElapsedMS = 0, 0
	if !reflect.DeepEqual(gc, fc) {
		t.Fatalf("restored answer differs from the original:\nrestored %+v\noriginal %+v", gc, fc)
	}

	// A single-parameter neighbor must warm-start from the restored
	// donor on its very first solve.
	warm0 := mWarmSolves.Value()
	allocate(t, tsB.URL, adpcmBody(192))
	if mWarmSolves.Value() != warm0+1 {
		t.Fatal("first neighbor solve after restore was not warm-started")
	}
}

// TestSnapshotRestoreGuards pins the defensive half of the format: a
// missing file is a cold start, torn or wrong-version files are errors,
// and degraded / keyless / unknown-workload / stale entries are dropped
// rather than trusted.
func TestSnapshotRestoreGuards(t *testing.T) {
	dir := t.TempDir()
	s := New(testConfig())

	if n, err := s.RestoreSnapshot(filepath.Join(dir, "missing.json")); n != 0 || err != nil {
		t.Fatalf("missing snapshot: (%d, %v), want (0, nil)", n, err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RestoreSnapshot(bad); err == nil {
		t.Fatal("wrong-version snapshot restored without error")
	}
	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, []byte(`{"version":1,"cache":[`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RestoreSnapshot(torn); err == nil {
		t.Fatal("torn snapshot restored without error")
	}

	snap := snapshotFile{
		Version: snapshotVersion,
		Cache: []snapCacheEntry{
			{Key: "k1", Response: &Response{Degraded: true}}, // degraded: never resurrected
			{Key: "", Response: &Response{}},                 // keyless
		},
		Warm: []snapWarmDonor{
			{Workload: "no-such-workload", CacheBytes: 1024, SPMBytes: 128, InSPM: []bool{true}},
			{Workload: "adpcm", CacheBytes: 1024, SPMBytes: 128, InSPM: []bool{true}}, // wrong selection length
		},
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := s.RestoreSnapshot(junk)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("restored %d untrustworthy entries, want 0", n)
	}
	if s.cache.len() != 0 || s.warm.size() != 0 {
		t.Fatalf("junk entries landed: cache %d, warm %d", s.cache.len(), s.warm.size())
	}
}
