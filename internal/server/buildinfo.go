package server

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo reports the VCS revision this binary was built from (short
// hash, "-dirty" suffixed when the tree had local modifications;
// "unknown" outside a VCS-stamped build) and the Go toolchain version.
// /healthz and casad -version expose it so an operator can tell exactly
// what is serving without shelling into the host.
func BuildInfo() (revision, goVersion string) {
	revision, goVersion = "unknown", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return revision, goVersion
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if len(s.Value) > 12 {
				revision = s.Value[:12]
			} else if s.Value != "" {
				revision = s.Value
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && revision != "unknown" {
		revision += "-dirty"
	}
	return revision, goVersion
}
