package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Crash-safe warm state (DESIGN.md §14). Everything casad learns from
// traffic — proven result responses and warm donor selections — dies
// with the process, so a restart used to serve cold until live traffic
// re-earned it. With Config.SnapshotPath set, a background loop
// persists that state every SnapshotEvery (plus once on graceful
// shutdown) and boot restores it, so even a kill -9'd daemon comes back
// at most SnapshotEvery behind: identical answers straight from the
// restored cache, and warm-start cutoffs on the first solves.
//
// The format is versioned JSON (snapshotVersion); a reader refuses any
// other version rather than guessing. Writes go through a temp file and
// os.Rename, so a crash mid-save leaves the previous snapshot intact —
// never a torn one. Only donors for bundled workloads are persisted:
// their trace sets rebuild deterministically from the name via
// experiments.PrepareProgram, where a custom program's source may be
// gone with the intern table. Restored donors are sanity-checked
// (selection length must match the rebuilt trace set) and dropped on
// any mismatch — a stale snapshot degrades to a cold start, never to a
// wrong answer (cutoffs could prune the optimum if they lied).

// snapshotVersion is the only format this build writes and reads.
const snapshotVersion = 1

var (
	mSnapSaves    = obs.GetCounter("casa_server_snapshot_saves_total")
	mSnapRestores = obs.GetCounter("casa_server_snapshot_restores_total")
	mSnapEntries  = obs.GetCounter("casa_server_snapshot_entries_restored_total")
)

// snapWarmDonor is one persisted warm-store donor.
type snapWarmDonor struct {
	Workload   string `json:"workload"`
	CacheBytes int    `json:"cache_bytes"`
	LineBytes  int    `json:"line_bytes"`
	Assoc      int    `json:"assoc"`
	SPMBytes   int    `json:"spm_bytes"`
	InSPM      []bool `json:"in_spm"`
}

// snapCacheEntry is one persisted result-cache entry.
type snapCacheEntry struct {
	Key      string    `json:"key"`
	Response *Response `json:"response"`
}

// snapshotFile is the on-disk layout.
type snapshotFile struct {
	Version   int              `json:"version"`
	SavedUnix int64            `json:"saved_unix"`
	Cache     []snapCacheEntry `json:"cache"`
	Warm      []snapWarmDonor  `json:"warm"`
}

// SaveSnapshot atomically persists the current warm state to path.
func (s *Server) SaveSnapshot(path string) error {
	snap := snapshotFile{
		Version:   snapshotVersion,
		SavedUnix: time.Now().Unix(),
		Warm:      s.warm.dump(),
	}
	for _, e := range s.cache.dump() {
		snap.Cache = append(snap.Cache, snapCacheEntry{Key: e.key, Response: e.resp})
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	mSnapSaves.Inc()
	return nil
}

// RestoreSnapshot loads path into the result cache and warm store,
// returning how many entries it restored. A missing file is a cold
// start, not an error; a torn or wrong-version file is an error (the
// caller logs and serves cold). Responses go back into the cache as-is;
// warm donors are rebuilt by re-preparing the named workload's
// deterministic trace set and cross-checked against the persisted
// selection length.
func (s *Server) RestoreSnapshot(path string) (int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("snapshot: decode %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("snapshot: %s has version %d, this build reads %d", path, snap.Version, snapshotVersion)
	}
	restored := 0
	for _, e := range snap.Cache {
		if e.Key == "" || e.Response == nil || e.Response.Degraded {
			continue
		}
		s.cache.put(e.Key, e.Response)
		restored++
	}
	ctx := context.Background()
	for _, d := range snap.Warm {
		prog, err := workload.Shared(d.Workload)
		if err != nil {
			continue
		}
		spec := experiments.CacheSpec{Size: d.CacheBytes, Line: d.LineBytes, Assoc: d.Assoc}
		pipe, err := experiments.PrepareProgram(ctx, prog, spec, d.SPMBytes)
		if err != nil || len(pipe.Set.Traces) != len(d.InSPM) {
			continue
		}
		s.warm.record(warmKey{prog: prog, spec: spec, spm: d.SPMBytes}, d.Workload, pipe.Set, d.InSPM, nil)
		restored++
	}
	if restored > 0 {
		mSnapRestores.Inc()
		mSnapEntries.Add(int64(restored))
	}
	return restored, nil
}

// snapshotLoop persists warm state every SnapshotEvery until Shutdown
// (which takes its own final snapshot after the drain).
func (s *Server) snapshotLoop() {
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.SaveSnapshot(s.cfg.SnapshotPath); err != nil {
				s.logger.Warn("periodic snapshot failed", "path", s.cfg.SnapshotPath, "err", err)
			}
		}
	}
}
