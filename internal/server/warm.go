package server

import (
	"sort"
	"sync"

	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/ir"
	"repro/internal/trace"
)

// Cross-request warm starts (DESIGN.md §13). The daemon sees families
// of related requests — the same program swept across scratchpad sizes
// or cache geometries by a design-space exploration client — and those
// are exactly the single-parameter-apart neighbors the experiment grids
// exploit. Every proven-optimal exact-tier CASA solve is recorded here;
// a later request for the same program whose hierarchy differs from a
// recorded one in exactly one parameter (cache geometry or scratchpad
// capacity) gets the donor's selection transferred and valued as a
// solver cutoff (experiments.Pipeline.TransferCutoff). Cutoffs only
// prune provably-worse subtrees, so answers are identical to cold
// solves — warm requests are just faster, and are counted by
// casa_server_warm_solves_total.
//
// Like the suite planner, everything is gated on CASA_INCREMENTAL.

// warmKey identifies one solved hierarchy configuration. Programs are
// canonical instances (workload.Shared or the intern table), so pointer
// identity is the same-program test — the condition a transfer needs.
type warmKey struct {
	prog *ir.Program
	spec experiments.CacheSpec
	spm  int
}

// warmDonor is a recorded selection with the trace set it indexes.
// workload is the bundled-workload name when the donor's program is one
// (empty for interned custom programs) — it is what makes the donor
// snapshotable: a restore can rebuild the deterministic trace set from
// the name alone, where a custom program may be gone with the process.
// key is the donor's own configuration (for deterministic ordering and
// basis-partition gating); hot the solver state it can donate (nil for
// restored snapshots, which persist only the selection).
type warmDonor struct {
	key      warmKey
	set      *trace.Set
	inSPM    []bool
	workload string
	hot      *ilp.HotStart
}

// maxWarmDonors bounds the store. The table is an optimization, not a
// cache anyone is owed: when full it is simply cleared, which also
// releases trace sets of programs the intern table may have evicted.
const maxWarmDonors = 512

// warmStore holds one donor per solved configuration.
type warmStore struct {
	mu     sync.Mutex
	donors map[warmKey]warmDonor
}

// record stores a proven-optimal selection for k. workload names the
// bundled workload when there is one (snapshots only persist those);
// hot is the solver's transferable basis/pseudocost state (may be nil).
func (w *warmStore) record(k warmKey, workload string, set *trace.Set, inSPM []bool, hot *ilp.HotStart) {
	w.mu.Lock()
	if w.donors == nil || len(w.donors) >= maxWarmDonors {
		w.donors = make(map[warmKey]warmDonor)
	}
	w.donors[k] = warmDonor{key: k, set: set, inSPM: inSPM, workload: workload, hot: hot}
	w.mu.Unlock()
}

// clear drops every donor — the memory watchdog's last lever (later
// solves lose their warm start, nothing else).
func (w *warmStore) clear() int {
	w.mu.Lock()
	n := len(w.donors)
	w.donors = nil
	w.mu.Unlock()
	return n
}

// dump returns the snapshotable donors: those whose program is a
// bundled workload, so a restore can rebuild the trace set by name.
func (w *warmStore) dump() []snapWarmDonor {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []snapWarmDonor
	for k, d := range w.donors {
		if d.workload == "" {
			continue
		}
		out = append(out, snapWarmDonor{
			Workload:   d.workload,
			CacheBytes: k.spec.Size,
			LineBytes:  k.spec.Line,
			Assoc:      k.spec.Assoc,
			SPMBytes:   k.spm,
			InSPM:      d.inSPM,
		})
	}
	return out
}

// size returns the donor count.
func (w *warmStore) size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.donors)
}

// neighbors returns the donors for k's program whose hierarchy differs
// from k in exactly one parameter, sorted by configuration so donor
// tie-breaks never depend on map iteration order.
func (w *warmStore) neighbors(k warmKey) []warmDonor {
	w.mu.Lock()
	var out []warmDonor
	for dk, d := range w.donors {
		if dk.prog != k.prog {
			continue
		}
		cacheDiff := dk.spec != k.spec
		spmDiff := dk.spm != k.spm
		if cacheDiff != spmDiff {
			out = append(out, d)
		}
	}
	w.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return donorKeyLess(out[a].key, out[b].key) })
	return out
}

// donorKeyLess orders same-program donor configurations.
func donorKeyLess(a, b warmKey) bool {
	if a.spm != b.spm {
		return a.spm < b.spm
	}
	if a.spec.Size != b.spec.Size {
		return a.spec.Size < b.spec.Size
	}
	if a.spec.Line != b.spec.Line {
		return a.spec.Line < b.spec.Line
	}
	if a.spec.Assoc != b.spec.Assoc {
		return a.spec.Assoc < b.spec.Assoc
	}
	return a.spec.Policy < b.spec.Policy
}

// warmCutoff returns the tightest cutoff transferable to pipe from the
// recorded neighbors of k — minimum over donors, so the result does not
// depend on request arrival order — plus the hot solver state of the
// best partition-matching donor. A donor's basis and pseudocosts only
// map when its ILP shares variable identities with the new solve, which
// requires the same scratchpad capacity and cache line size (those fix
// the trace partition); cache-geometry neighbors qualify,
// scratchpad-size neighbors donate cutoffs only.
func (w *warmStore) warmCutoff(k warmKey, pipe *experiments.Pipeline) (float64, *ilp.HotStart, bool) {
	best, found := 0.0, false
	bestHot := 0.0
	var hot *ilp.HotStart
	for _, d := range w.neighbors(k) {
		v, ok := pipe.TransferCutoff(d.set, d.inSPM)
		if !ok {
			continue
		}
		if !found || v < best {
			best, found = v, true
		}
		if d.hot != nil && d.key.spm == k.spm && d.key.spec.Line == k.spec.Line &&
			(hot == nil || v < bestHot) {
			bestHot, hot = v, d.hot
		}
	}
	return best, hot, found
}
