// Package server implements casad, the CASA allocation service: a
// long-running HTTP daemon that accepts allocation requests (program +
// memory hierarchy, JSON) and answers with the chosen scratchpad
// allocation and its simulated energy/cycle estimates.
//
// The serving path is engineered for heavy concurrent traffic:
//
//   - a sharded LRU result cache answers repeats without touching the
//     pipeline (one mutex per shard, so handlers do not serialize);
//   - a singleflight group coalesces concurrent identical requests into
//     one solve — followers wait for the leader's result instead of
//     burning a core each;
//   - an admission controller bounds concurrent solves and picks a
//     solve-budget tier from the instantaneous load: exact solves while
//     capacity is plentiful, budgeted anytime solves (PR 4) under
//     pressure, a straight greedy allocation near saturation, and a 503
//     beyond the hard cap. Degraded answers carry a Degraded flag and
//     are never cached, so quality recovers as soon as load does.
//
// Every request is traced end to end: it gets a request ID (inbound
// X-Request-Id or generated), a span tree covering admission, cache
// lookup, singleflight role and every pipeline stage, and a tail-sampled
// retention policy keeps the traces worth looking at — all failures and
// degraded answers, the slowest N, and a thin sample of normal traffic
// (DESIGN.md §12).
//
// Endpoints: POST /v1/allocate, GET /healthz, GET /metrics
// (Prometheus/OpenMetrics text with exemplars), GET /metrics.json (flat
// JSON snapshot of the internal/obs registry), GET /debug/traces
// (retained-trace index), GET /debug/traces/{id} (full span tree), GET
// /debug/vars (expvar) and POST /quitquitquit (graceful shutdown: stop
// accepting, drain in-flight solves). DESIGN.md §11 describes the
// architecture.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/ilp"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/obs/promexport"
	"repro/internal/obs/slogx"
	"repro/internal/workload"
)

// Serving metrics, resolved once.
var (
	mRequests     = obs.GetCounter("casa_server_requests_total")
	mOK           = obs.GetCounter("casa_server_ok_total")
	mBadRequests  = obs.GetCounter("casa_server_bad_requests_total")
	mServerErrors = obs.GetCounter("casa_server_errors_total")
	mRejected     = obs.GetCounter("casa_server_rejected_total")
	mSingleflight = obs.GetCounter("casa_server_singleflight_hits_total")
	mSolves       = obs.GetCounter("casa_server_solves_total")
	mDegraded     = obs.GetCounter("casa_server_degraded_total")
	mTierExact    = obs.GetCounter("casa_server_tier_exact_total")
	mTierBounded  = obs.GetCounter("casa_server_tier_bounded_total")
	mTierGreedy   = obs.GetCounter("casa_server_tier_greedy_total")
	mInflight     = obs.GetGauge("casa_server_inflight")
	mLatency      = obs.GetHistogram("casa_server_request_ns")
	// mWarmSolves counts solves seeded with a cutoff transferred from a
	// previously solved neighboring configuration (warm.go).
	mWarmSolves = obs.GetCounter("casa_server_warm_solves_total")
)

// Config tunes the server. The zero value is usable: withDefaults fills
// every field.
type Config struct {
	// MaxInflight is the hard admission cap on concurrent solves
	// (default 4×GOMAXPROCS). Coalesced duplicates and cache hits do
	// not consume slots; beyond the cap requests get 503.
	MaxInflight int
	// ExactBudget bounds a solve in the exact tier (load ≤ 1/2 of
	// MaxInflight; default 5s). Zero budgets are replaced by the
	// default: an unbounded solve inside a request handler would let
	// one pathological model wedge a worker forever.
	ExactBudget time.Duration
	// BoundedBudget bounds a solve in the bounded tier (load ≤ 3/4;
	// default 150ms) — the anytime solver returns its best incumbent.
	BoundedBudget time.Duration
	// CacheEntries is the total result-cache capacity (default 4096),
	// split over CacheShards shards (default 16).
	CacheEntries int
	CacheShards  int
	// MaxPrograms bounds the interned custom-program table (default 64);
	// eviction releases the program's sim memo entries.
	MaxPrograms int
	// MaxProgramBytes / MaxSPMBytes / MaxCacheBytes bound request sizes
	// (defaults 256 KiB / 1 MiB / 4 MiB).
	MaxProgramBytes int
	MaxSPMBytes     int
	MaxCacheBytes   int
	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration

	// ReadTimeout / WriteTimeout / IdleTimeout harden the listener
	// against stalled and parked connections (defaults 30s / 60s / 2m):
	// a connection that cannot deliver a request, consume a response or
	// carry another request within these bounds is closed instead of
	// pinning a file descriptor forever.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// BodyReadTimeout bounds reading one request body (default 10s).
	// It is the slow-loris guard: a client dribbling its upload gets a
	// structured 408 when the per-request read deadline expires, rather
	// than holding a handler goroutine for the full ReadTimeout budget.
	BodyReadTimeout time.Duration
	// DeadlineMargin is the slice of a client deadline (X-Deadline-Ms)
	// reserved for non-solve work — simulation, transfer valuation,
	// response encoding (default 20ms). The solve budget is clamped to
	// the remaining time minus this margin.
	DeadlineMargin time.Duration
	// StallDelay / SlowChunkDelay tune the injected network fault
	// points (server-stall-read, server-slow-client): how long a stalled
	// body read sleeps, and the pause between trickled response chunks
	// (defaults 250ms / 20ms). Only consulted when a fault plan fires.
	StallDelay     time.Duration
	SlowChunkDelay time.Duration

	// MemSoftLimitBytes arms the memory-pressure watchdog: when the
	// sampled heap exceeds it, the server sheds LRU state in priority
	// order (result cache → interned programs and their sim memos →
	// warm donors) before the kernel's OOM killer gets a say. Zero
	// disables the watchdog. MemCheckEvery is the sampling period
	// (default 10s).
	MemSoftLimitBytes uint64
	MemCheckEvery     time.Duration

	// SnapshotPath, when set, makes warm state crash-safe: the result
	// cache and the warm donor store are persisted there every
	// SnapshotEvery (default 30s) and on graceful shutdown, and restored
	// on boot — so a restarted daemon serves identical answers warm
	// instead of re-earning its incumbents from live traffic (snapshot.go).
	SnapshotPath  string
	SnapshotEvery time.Duration

	// TraceSample sets the request-tracing rate: 0 means unset (the
	// CASA_TRACE_SAMPLE environment variable decides, defaulting to
	// trace-everything), a value in (0,1) samples roughly that fraction
	// of requests, ≥1 traces everything and a negative value disables
	// tracing.
	TraceSample float64
	// TraceKeepCap / TraceSlowCap / TraceSampleCap size the trace
	// store's retention classes (must-keep ring, slowest-N heap, random
	// sample ring; defaults 256/64/64). TraceSampleEvery is the
	// systematic-sample stride (default 64: 1 in 64 healthy requests).
	TraceKeepCap     int
	TraceSlowCap     int
	TraceSampleCap   int
	TraceSampleEvery int
	// Logger receives structured request logs (nil: discard).
	Logger *slog.Logger
	// AccessLogEvery samples healthy-request access logs 1-in-N
	// (default 16); failures, sheds and degraded answers always log.
	AccessLogEvery int
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.ExactBudget <= 0 {
		c.ExactBudget = 5 * time.Second
	}
	if c.BoundedBudget <= 0 {
		c.BoundedBudget = 150 * time.Millisecond
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.MaxPrograms <= 0 {
		c.MaxPrograms = 64
	}
	if c.MaxProgramBytes <= 0 {
		c.MaxProgramBytes = 256 << 10
	}
	if c.MaxSPMBytes <= 0 {
		c.MaxSPMBytes = 1 << 20
	}
	if c.MaxCacheBytes <= 0 {
		c.MaxCacheBytes = 4 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 60 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.BodyReadTimeout <= 0 {
		c.BodyReadTimeout = 10 * time.Second
	}
	if c.DeadlineMargin <= 0 {
		c.DeadlineMargin = 20 * time.Millisecond
	}
	if c.StallDelay <= 0 {
		c.StallDelay = 250 * time.Millisecond
	}
	if c.SlowChunkDelay <= 0 {
		c.SlowChunkDelay = 20 * time.Millisecond
	}
	if c.MemCheckEvery <= 0 {
		c.MemCheckEvery = 10 * time.Second
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 30 * time.Second
	}
	if c.TraceKeepCap <= 0 {
		c.TraceKeepCap = 256
	}
	if c.TraceSlowCap <= 0 {
		c.TraceSlowCap = 64
	}
	if c.TraceSampleCap <= 0 {
		c.TraceSampleCap = 64
	}
	if c.TraceSampleEvery <= 0 {
		c.TraceSampleEvery = 64
	}
	if c.Logger == nil {
		c.Logger = slogx.Discard()
	}
	if c.AccessLogEvery <= 0 {
		c.AccessLogEvery = 16
	}
	return c
}

// Tier names (Response.Tier).
const (
	tierExact   = "exact"
	tierBounded = "bounded"
	tierGreedy  = "greedy"
)

// Server is the allocation service. Create with New; it is safe for
// concurrent use.
type Server struct {
	cfg          Config
	mux          *http.ServeMux
	cache        *shardedCache
	programs     *internTable
	flight       flightGroup
	inflight     atomic.Int64
	draining     atomic.Bool
	start        time.Time
	httpSrv      *http.Server
	traces       *obs.TraceStore
	traceEvery   int64 // 0 = never trace, 1 = always, N = 1-in-N
	traceSeq     atomic.Int64
	logger       *slog.Logger
	accessSample *slogx.Sampler

	// session shares ILP presolve reductions across requests; warm
	// transfers solved selections between single-parameter-apart
	// hierarchies (warm.go). Both are CASA_INCREMENTAL-gated.
	session *ilp.Session
	warm    warmStore

	// stop tears down the background goroutines (memory watchdog,
	// snapshotter) exactly once, on Shutdown.
	stop     chan struct{}
	stopOnce sync.Once

	// testHookSolving, when set, is called by a solve leader after it
	// acquired its admission slot and chose a tier, before any pipeline
	// work. Tests use it to hold solves in flight deterministically.
	// testHookBudget additionally reports the effective (deadline-
	// clamped) solve budget the tier ended up with.
	testHookSolving func(key, tier string)
	testHookBudget  func(tier string, budget time.Duration)
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		cache:        newShardedCache(cfg.CacheEntries, cfg.CacheShards),
		programs:     newInternTable(cfg.MaxPrograms),
		start:        time.Now(),
		traces:       obs.NewTraceStore(cfg.TraceKeepCap, cfg.TraceSlowCap, cfg.TraceSampleCap, cfg.TraceSampleEvery),
		traceEvery:   traceEveryFrom(cfg.TraceSample),
		logger:       cfg.Logger,
		accessSample: slogx.NewSampler(cfg.AccessLogEvery),
		session:      ilp.NewSession(),
		stop:         make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/allocate", s.handleAllocate)
	mux.HandleFunc("/healthz", getOnly(s.handleHealthz))
	mux.HandleFunc("/metrics", getOnly(s.handlePromMetrics))
	mux.HandleFunc("/metrics.json", getOnly(s.handleMetricsJSON))
	mux.HandleFunc("/debug/traces", getOnly(s.handleTraceIndex))
	mux.HandleFunc("/debug/traces/", getOnly(s.handleTraceGet))
	mux.Handle("/debug/vars", getOnly(expvar.Handler().ServeHTTP))
	mux.HandleFunc("/quitquitquit", s.handleQuit)
	s.mux = mux
	return s
}

// getOnly guards a read-only endpoint: anything but GET (or HEAD, which
// net/http answers from the GET handler) gets a structured 405 with an
// Allow header instead of a confusing handler-specific failure.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, &httpError{code: http.StatusMethodNotAllowed, msg: "GET only"})
			return
		}
		h(w, r)
	}
}

// Handler returns the server's HTTP handler (httptest-friendly).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It owns the underlying
// http.Server so Shutdown can drain it; the network-level timeouts are
// the first line of chaos resistance — a stalled, parked or abandoned
// connection is closed by the kernel-visible deadlines below before it
// can pin server state.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	s.startBackground()
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// startBackground restores the warm-state snapshot (synchronously, so
// the listener never serves cold answers a restore was about to warm)
// and launches the memory watchdog and the periodic snapshotter when
// their configs arm them. Serve is called once; tests drive the
// underlying steps directly.
func (s *Server) startBackground() {
	if s.cfg.MemSoftLimitBytes > 0 {
		go s.watchMemory()
	}
	if s.cfg.SnapshotPath != "" {
		if n, err := s.RestoreSnapshot(s.cfg.SnapshotPath); err != nil {
			s.logger.Warn("snapshot restore failed; serving cold", "path", s.cfg.SnapshotPath, "err", err)
		} else if n > 0 {
			s.logger.Info("snapshot restored", "path", s.cfg.SnapshotPath, "entries", n)
		}
		go s.snapshotLoop()
	}
}

// ListenAndServe is Serve on a fresh TCP listener.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains the server: new allocation requests are refused with
// 503 immediately, in-flight solves run to completion (bounded by ctx),
// then the listener closes. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopOnce.Do(func() { close(s.stop) })
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	// A final snapshot after the drain captures everything the run
	// learned; a kill -9 instead falls back to the last periodic one.
	if s.cfg.SnapshotPath != "" {
		if serr := s.SaveSnapshot(s.cfg.SnapshotPath); serr != nil {
			s.logger.Warn("snapshot on shutdown failed", "err", serr)
		}
	}
	return err
}

// Draining reports whether a graceful shutdown has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// httpError carries a status code through the compute path so handler
// plumbing can map pipeline failures to the right class: client mistakes
// (unparseable program, impossible hierarchy) are 4xx, everything else
// 5xx.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

var errOverloaded = &httpError{code: http.StatusServiceUnavailable, msg: "overloaded: solve capacity exhausted"}
var errDraining = &httpError{code: http.StatusServiceUnavailable, msg: "draining: server is shutting down"}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
	}
	switch {
	case code == http.StatusServiceUnavailable:
		mRejected.Inc()
	case code >= 500:
		mServerErrors.Inc()
	default:
		mBadRequests.Inc()
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// handleAllocate is POST /v1/allocate: decode → validate → result cache
// → singleflight → admission/tier → pipeline, with a span around each
// decision so the retained trace explains where the request's time and
// outcome came from.
func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	rec, ctx := s.beginRequest(r)
	defer s.finishRequest(rec)
	w.Header().Set("X-Request-Id", rec.id)

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.failRequest(rec, w, &httpError{code: http.StatusMethodNotAllowed, msg: "POST only"})
		return
	}
	if s.draining.Load() {
		s.failRequest(rec, w, errDraining)
		return
	}
	deadline, err := parseDeadline(r, rec.start)
	if err != nil {
		s.failRequest(rec, w, err)
		return
	}
	if !deadline.IsZero() {
		rec.root.SetAttr("deadline_ms", float64(time.Until(deadline).Nanoseconds())/1e6)
	}
	req, err := s.readRequest(w, r)
	if err != nil {
		s.failRequest(rec, w, err)
		return
	}
	req.normalize()
	if err := req.validate(s.cfg); err != nil {
		s.failRequest(rec, w, badRequestf("%v", err))
		return
	}
	key := req.key()
	rec.root.SetAttr("key", key)
	if req.Workload != "" {
		rec.root.SetAttr("workload", req.Workload)
	}

	_, csp := obs.StartSpan(ctx, "result-cache")
	var cached *Response
	hit := false
	if !fault.Hit(fault.ServerCacheMiss) {
		cached, hit = s.cache.get(key)
	} else {
		mCacheMisses.Inc()
	}
	csp.SetAttr("hit", hit)
	csp.End()
	if hit {
		rec.outcome = outcomeCached
		rec.tier = cached.Tier
		s.deliver(w, cached, true, false, rec.start)
		return
	}

	var resp *Response
	var shared bool
	if deadline.IsZero() {
		fctx, fsp := obs.StartSpan(ctx, "singleflight")
		var leaderID string
		resp, err, shared, leaderID = s.flight.do(key, rec.id, func() (*Response, error) {
			return s.compute(fctx, &req, key, time.Time{})
		})
		if shared {
			mSingleflight.Inc()
			fsp.SetAttr("role", "follower")
			fsp.SetAttr("leader_request_id", leaderID)
		} else {
			fsp.SetAttr("role", "leader")
		}
		fsp.End()
	} else {
		// A deadline makes the request latency-sensitive: coalescing it
		// onto a leader with a different (or no) time budget would couple
		// unrelated deadlines, so deadline-bearing requests solve
		// independently, each bounded by its own remaining time. Refuse
		// outright when the budget is already spent — an admission slot
		// gains a dead request nothing.
		if _, ok := clampBudget(0, deadline, s.cfg.DeadlineMargin, time.Now()); !ok {
			s.failRequest(rec, w, deadlineExceededErr(time.Until(deadline)))
			return
		}
		resp, err = s.compute(ctx, &req, key, deadline)
	}
	if err != nil {
		if isDeadlineErr(err) {
			err = deadlineExceededErr(time.Until(deadline))
		}
		s.failRequest(rec, w, err)
		return
	}
	rec.tier = resp.Tier
	switch {
	case resp.Degraded:
		rec.outcome = outcomeDegraded
		rec.reason = resp.DegradedReason
	case shared:
		rec.outcome = outcomeCoalesced
	}
	s.deliver(w, resp, false, shared, rec.start)
}

// deliver stamps the per-delivery fields on a copy of the (shared,
// immutable) response and writes it. The two response-side fault points
// fire here, after the solve succeeded: a computed answer the client
// never receives is exactly the failure mode they emulate.
func (s *Server) deliver(w http.ResponseWriter, resp *Response, cached, coalesced bool, start time.Time) {
	out := *resp
	out.Cached = cached
	out.Coalesced = coalesced
	out.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
	mOK.Inc()
	if fault.Hit(fault.ServerConnReset) {
		s.resetConn(w)
		return
	}
	if fault.Hit(fault.ServerSlowClient) {
		s.writeSlowly(w, &out)
		return
	}
	writeJSON(w, http.StatusOK, &out)
}

// tierFor maps the instantaneous in-flight count (this request included)
// to an admission tier and its solve budget.
func (s *Server) tierFor(n int64) (string, time.Duration) {
	max := int64(s.cfg.MaxInflight)
	switch {
	case max <= 1 || n <= max/2:
		return tierExact, s.cfg.ExactBudget
	case n <= (3*max)/4:
		return tierBounded, s.cfg.BoundedBudget
	default:
		return tierGreedy, 0
	}
}

// compute runs the allocation pipeline for one admitted request. A
// deadline-free request is always executed by a singleflight leader, so
// the admission counter tracks genuinely distinct concurrent solves; a
// deadline-bearing request runs uncoalesced with the deadline bounding
// both the pipeline context and the solve budget.
func (s *Server) compute(rctx context.Context, req *Request, key string, deadline time.Time) (*Response, error) {
	// The pipeline runs on a background-derived context on purpose: a
	// coalesced follower must not lose the result because the leader's
	// own client hung up, and graceful shutdown wants in-flight solves
	// to finish. The tier budget bounds the solve instead. The leader's
	// tracer and singleflight span are transplanted onto the detached
	// context so the solve's spans still land in the leader's trace.
	// A client deadline is the one request-side bound that survives the
	// detachment: it caps every pipeline stage, not just the solve.
	bctx := context.Background()
	if tr := obs.TracerFrom(rctx); tr != nil {
		bctx = obs.WithTracer(bctx, tr)
		if parent := obs.SpanFrom(rctx); parent != nil {
			bctx = obs.WithSpan(bctx, parent)
		}
	}
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		bctx, cancel = context.WithDeadline(bctx, deadline)
		defer cancel()
	}
	ctx, sp := obs.StartSpan(bctx, "serve")
	defer sp.End()
	sp.SetAttr("key", key)

	n := s.inflight.Add(1)
	mInflight.Set(n)
	defer func() { mInflight.Set(s.inflight.Add(-1)) }()
	if n > int64(s.cfg.MaxInflight) || fault.Hit(fault.ServerOverload) {
		return nil, errOverloaded
	}
	_, asp := obs.StartSpan(ctx, "admission")
	tier, tierBudget := s.tierFor(n)
	budget, viable := clampBudget(tierBudget, deadline, s.cfg.DeadlineMargin, time.Now())
	asp.SetAttr("tier", tier)
	asp.SetAttr("inflight", n)
	asp.SetAttr("budget_ms", float64(budget)/1e6)
	if !deadline.IsZero() {
		asp.SetAttr("deadline_clamped", budget != tierBudget)
	}
	asp.End()
	if !viable {
		return nil, deadlineExceededErr(time.Until(deadline))
	}
	sp.SetAttr("tier", tier)
	occ := tierGauge(tier)
	occ.Add(1)
	defer occ.Add(-1)
	switch tier {
	case tierExact:
		mTierExact.Inc()
	case tierBounded:
		mTierBounded.Inc()
	default:
		mTierGreedy.Inc()
	}
	if s.testHookSolving != nil {
		s.testHookSolving(key, tier)
	}
	if s.testHookBudget != nil {
		s.testHookBudget(tier, budget)
	}
	mSolves.Inc()

	prog, err := s.resolveProgram(ctx, req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}

	spec := experiments.CacheSpec{
		Size:  req.Hierarchy.CacheBytes,
		Line:  req.Hierarchy.LineBytes,
		Assoc: req.Hierarchy.Assoc,
	}
	pipe, err := experiments.PrepareProgram(ctx, prog, spec, req.Hierarchy.SPMBytes)
	if err != nil {
		// A deadline expiry mid-preparation is the client's clock, not
		// the client's configuration — classify it before the 400 below.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// Preparation failures are configuration problems (trace
		// formation, cache geometry, energy model): the client's inputs
		// made them, so report them as such.
		return nil, badRequestf("prepare: %v", err)
	}
	pipe.SolveBudget = budget
	pipe.Session = s.session

	base, err := pipe.RunCacheOnly(ctx)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	alloc := req.Allocator
	if tier == tierGreedy && alloc == "casa" {
		// Load shedding: skip the ILP entirely and serve the greedy
		// selection, marked degraded below.
		alloc = "greedy"
	}
	wk := warmKey{prog: prog, spec: spec, spm: req.Hierarchy.SPMBytes}
	if alloc == "casa" && ilp.IncrementalEnabled() {
		// Cross-request warm start: seed the solve with the tightest
		// cutoff transferable from a solved neighboring hierarchy, plus
		// the best partition-matching donor's simplex basis and
		// pseudocosts. Neither changes the answer (ilp.Options), so warm
		// and cold responses are identical.
		if cut, hot, ok := s.warm.warmCutoff(wk, pipe); ok {
			pipe.WarmCutoff = &cut
			pipe.WarmHot = hot
			sp.SetAttr("warm_cutoff", cut)
			mWarmSolves.Inc()
		}
	}
	var out *experiments.Outcome
	switch alloc {
	case "casa":
		out, err = pipe.RunCASA(ctx)
	case "greedy":
		out, err = pipe.RunCASAGreedy(ctx)
	case "steinke":
		out, err = pipe.RunSteinke(ctx)
	case "loopcache":
		out, err = pipe.RunLoopCache(ctx)
	case "cache-only":
		out = base
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", alloc, err)
	}
	if alloc == "casa" && ilp.IncrementalEnabled() {
		// Publish proven-optimal selections as donors for later
		// requests; budget-degraded incumbents are timing-dependent and
		// must not influence other solves.
		if a, aerr := pipe.CASAAllocation(ctx); aerr == nil &&
			a.Status == ilp.Optimal && !a.Degraded && !a.Fallback {
			s.warm.record(wk, req.Workload, pipe.Set, a.InSPM, a.Hot)
		}
	}

	resp := s.buildResponse(req, key, tier, pipe, base, out)
	if tier == tierGreedy && req.Allocator == "casa" {
		resp.Degraded = true
		resp.DegradedReason = "admission-greedy"
		resp.Fallback = true
	}
	if resp.Degraded {
		mDegraded.Inc()
	} else {
		// Only proven results are cached: a degraded incumbent served
		// under pressure must not keep being served once load subsides.
		s.cache.put(key, resp)
	}
	return resp, nil
}

// resolveProgram maps the request to the canonical *ir.Program instance:
// bundled workloads come from workload.Shared, custom programs from the
// intern table — either way repeats share one instance so the sim memo
// layers hit.
func (s *Server) resolveProgram(ctx context.Context, req *Request) (*ir.Program, error) {
	_, sp := obs.StartSpan(ctx, "resolve-program")
	defer sp.End()
	if req.Workload != "" {
		sp.SetAttr("workload", req.Workload)
		prog, err := workload.Shared(req.Workload)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		return prog, nil
	}
	prog, hit, err := s.programs.program(req.Program)
	sp.SetAttr("intern_hit", hit)
	if err != nil {
		return nil, badRequestf("parse program: %v", err)
	}
	return prog, nil
}

func (s *Server) buildResponse(req *Request, key, tier string, pipe *experiments.Pipeline,
	base, out *experiments.Outcome) *Response {
	r := out.Result
	resp := &Response{
		Workload:       pipe.Workload,
		Allocator:      out.Allocator,
		Key:            key,
		Tier:           tier,
		EnergyMicroJ:   out.EnergyMicroJ,
		BaselineMicroJ: base.EnergyMicroJ,
		Cycles:         r.Cycles,
		Fetches:        r.Fetches,
		CacheMisses:    r.CacheMisses,
		PlacedTraces:   out.PlacedTraces,
		UsedBytes:      out.UsedBytes,
		SPMBytes:       req.Hierarchy.SPMBytes,
		SolverNodes:    out.SolverNodes,
		Degraded:       out.Degraded,
		DegradedReason: out.DegradedReason,
		Gap:            out.Gap,
		Fallback:       out.Fallback,
	}
	if base.EnergyMicroJ > 0 {
		resp.EnergySavingPct = 100 * (base.EnergyMicroJ - out.EnergyMicroJ) / base.EnergyMicroJ
	}
	if req.Placement {
		for _, tr := range pipe.Set.Traces {
			mo := r.PerMO[tr.ID]
			where := "cache"
			if mo.SPM > 0 {
				where = "spm"
			} else if mo.LoopCache > 0 {
				where = "lc"
			}
			resp.Placement = append(resp.Placement, TracePlacement{
				Trace:   tr.ID,
				Where:   where,
				Bytes:   tr.RawBytes,
				Fetches: tr.Fetches,
				Misses:  mo.Misses,
			})
		}
	}
	return resp
}

// healthState is the /healthz body.
type healthState struct {
	Status    string  `json:"status"`
	UptimeS   float64 `json:"uptime_s"`
	Inflight  int64   `json:"inflight"`
	Cached    int     `json:"cached_responses"`
	Programs  int     `json:"interned_programs"`
	Traces    int     `json:"retained_traces"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxSolves int     `json:"max_inflight"`
	Revision  string  `json:"revision"`
	GoVersion string  `json:"go_version"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	revision, goVersion := BuildInfo()
	st := healthState{
		Status:    "ok",
		UptimeS:   time.Since(s.start).Seconds(),
		Inflight:  s.inflight.Load(),
		Cached:    s.cache.len(),
		Programs:  s.programs.len(),
		Traces:    s.traces.Len(),
		P50Ms:     mLatency.Quantile(0.50) / 1e6,
		P99Ms:     mLatency.Quantile(0.99) / 1e6,
		MaxSolves: s.cfg.MaxInflight,
		Revision:  revision,
		GoVersion: goVersion,
	}
	code := http.StatusOK
	if s.draining.Load() {
		st.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// handleMetricsJSON serves the obs registry as one flat JSON object
// (name → value) — the machine-readable face of CASA_METRICS dumps, and
// what casaload diffs around a run.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.Default.Snapshot())
}

// handlePromMetrics serves the registry in the Prometheus/OpenMetrics
// text format, histogram exemplars linking latency buckets to retained
// traces. A few gauges only matter at scrape time, so they are set here
// rather than maintained on the hot path.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	mTraceStoreSize.Set(int64(s.traces.Len()))
	mInterned.Set(int64(s.programs.len()))
	w.Header().Set("Content-Type", promexport.ContentType)
	_ = promexport.WriteRegistry(w, obs.Default)
}

// handleTraceIndex is GET /debug/traces: a newest-first summary of
// every retained trace.
func (s *Server) handleTraceIndex(w http.ResponseWriter, r *http.Request) {
	idx := s.traces.Index()
	if idx == nil {
		idx = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, idx)
}

// handleTraceGet is GET /debug/traces/{id}: one retained trace's full
// span tree.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	if id == "" {
		s.handleTraceIndex(w, r)
		return
	}
	t, ok := s.traces.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no retained trace with id " + id})
		return
	}
	writeJSON(w, http.StatusOK, t)
}

// handleQuit is POST /quitquitquit: acknowledge, then drain in the
// background bounded by DrainTimeout.
func (s *Server) handleQuit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, &httpError{code: http.StatusMethodNotAllowed, msg: "POST only"})
		return
	}
	obs.Warnf("casad: shutdown requested via /quitquitquit")
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
}

// String summarizes the configuration for startup logs.
func (s *Server) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "max-inflight=%d exact=%s bounded=%s cache=%d×%d programs=%d",
		s.cfg.MaxInflight, s.cfg.ExactBudget, s.cfg.BoundedBudget,
		s.cfg.CacheShards, s.cfg.CacheEntries/s.cfg.CacheShards, s.cfg.MaxPrograms)
	return b.String()
}
