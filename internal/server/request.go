package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/workload"
)

// Hierarchy describes the memory hierarchy an allocation request targets,
// mirroring the flags of cmd/casa.
type Hierarchy struct {
	// CacheBytes is the I-cache capacity (power of two).
	CacheBytes int `json:"cache_bytes"`
	// LineBytes is the cache line size (power of two ≥ 4; default 16,
	// the paper-wide value).
	LineBytes int `json:"line_bytes,omitempty"`
	// Assoc is the cache associativity (default 1, direct-mapped).
	Assoc int `json:"assoc,omitempty"`
	// SPMBytes is the scratchpad (or loop cache) capacity.
	SPMBytes int `json:"spm_bytes"`
}

// Request is the JSON body of POST /v1/allocate. The program comes
// either as a bundled workload name or as source in the repository's
// round-trippable asm format (what `dump -format asm` emits).
type Request struct {
	// Workload names a bundled benchmark (adpcm, g721, mpeg).
	Workload string `json:"workload,omitempty"`
	// Program is asm source for a custom program (exclusive with
	// Workload).
	Program string `json:"program,omitempty"`
	// Hierarchy selects the cache/scratchpad configuration.
	Hierarchy Hierarchy `json:"hierarchy"`
	// Allocator picks the technique: casa (default), greedy, steinke,
	// loopcache, cache-only.
	Allocator string `json:"allocator,omitempty"`
	// Placement asks for the per-trace placement table in the response.
	Placement bool `json:"placement,omitempty"`
}

// allocators are the accepted Request.Allocator values.
var allocators = map[string]bool{
	"casa": true, "greedy": true, "steinke": true,
	"loopcache": true, "cache-only": true,
}

// normalize fills defaulted fields in place.
func (r *Request) normalize() {
	if r.Hierarchy.LineBytes == 0 {
		r.Hierarchy.LineBytes = 16
	}
	if r.Hierarchy.Assoc == 0 {
		r.Hierarchy.Assoc = 1
	}
	if r.Allocator == "" {
		r.Allocator = "casa"
	}
}

func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// validate rejects requests the pipeline would choke on, with messages a
// client can act on. Limits come from the server configuration.
func (r *Request) validate(cfg Config) error {
	switch {
	case r.Workload == "" && r.Program == "":
		return fmt.Errorf("need workload or program")
	case r.Workload != "" && r.Program != "":
		return fmt.Errorf("pass workload or program, not both")
	}
	if r.Workload != "" {
		known := false
		for _, n := range workload.Names() {
			if n == r.Workload {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown workload %q (have %s)",
				r.Workload, strings.Join(workload.Names(), ", "))
		}
	}
	if len(r.Program) > cfg.MaxProgramBytes {
		return fmt.Errorf("program source %d bytes exceeds the %d-byte limit",
			len(r.Program), cfg.MaxProgramBytes)
	}
	h := r.Hierarchy
	if !powerOfTwo(h.CacheBytes) || h.CacheBytes > cfg.MaxCacheBytes {
		return fmt.Errorf("cache_bytes %d must be a power of two in (0, %d]",
			h.CacheBytes, cfg.MaxCacheBytes)
	}
	if !powerOfTwo(h.LineBytes) || h.LineBytes < 4 || h.LineBytes > h.CacheBytes {
		return fmt.Errorf("line_bytes %d must be a power of two in [4, cache_bytes]", h.LineBytes)
	}
	if !powerOfTwo(h.Assoc) || h.CacheBytes < h.LineBytes*h.Assoc {
		return fmt.Errorf("assoc %d must be a power of two with cache_bytes ≥ line_bytes×assoc", h.Assoc)
	}
	if h.SPMBytes < h.LineBytes || h.SPMBytes > cfg.MaxSPMBytes {
		return fmt.Errorf("spm_bytes %d must be in [line_bytes, %d]", h.SPMBytes, cfg.MaxSPMBytes)
	}
	if !allocators[r.Allocator] {
		return fmt.Errorf("unknown allocator %q (casa, greedy, steinke, loopcache, cache-only)", r.Allocator)
	}
	return nil
}

// key returns the canonical request hash: two requests that must produce
// the same response map to the same key, so the result cache and the
// singleflight group deduplicate on it. All normalized fields
// participate — Placement too, because it changes the response shape.
func (r *Request) key() string {
	hsh := sha256.New()
	fmt.Fprintf(hsh, "wl=%s|cache=%d/%d/%d|spm=%d|alloc=%s|placement=%t|prog=",
		r.Workload, r.Hierarchy.CacheBytes, r.Hierarchy.LineBytes, r.Hierarchy.Assoc,
		r.Hierarchy.SPMBytes, r.Allocator, r.Placement)
	hsh.Write([]byte(r.Program))
	return hex.EncodeToString(hsh.Sum(nil)[:16])
}

// TracePlacement is one row of the optional per-trace placement table.
type TracePlacement struct {
	// Trace is the trace ID.
	Trace int `json:"trace"`
	// Where says which memory serves the trace: spm, lc or cache.
	Where string `json:"where"`
	// Bytes is the trace's raw size.
	Bytes int `json:"bytes"`
	// Fetches and Misses are the trace's simulated fetch and I-cache
	// miss counts under the chosen allocation.
	Fetches int64 `json:"fetches"`
	Misses  int64 `json:"misses"`
}

// Response is the JSON body of a successful allocation.
type Response struct {
	// Workload is the program name (the bundled name, or the custom
	// program's own).
	Workload string `json:"workload"`
	// Allocator is the technique that produced the allocation.
	Allocator string `json:"allocator"`
	// Key is the canonical request hash (cache/singleflight identity).
	Key string `json:"key"`
	// Tier reports the admission tier the solve ran under: exact,
	// bounded or greedy.
	Tier string `json:"tier"`

	// EnergyMicroJ is the allocated hierarchy's instruction-memory
	// energy; BaselineMicroJ is the cache-only reference, and
	// EnergySavingPct the relative improvement.
	EnergyMicroJ    float64 `json:"energy_uj"`
	BaselineMicroJ  float64 `json:"baseline_uj"`
	EnergySavingPct float64 `json:"energy_saving_pct"`
	// Cycles is the total fetch latency; Fetches and CacheMisses
	// summarize the simulated run.
	Cycles      int64 `json:"cycles"`
	Fetches     int64 `json:"fetches"`
	CacheMisses int64 `json:"cache_misses"`
	// PlacedTraces and UsedBytes describe the allocation.
	PlacedTraces int `json:"placed_traces"`
	UsedBytes    int `json:"used_bytes"`
	SPMBytes     int `json:"spm_bytes"`
	// SolverNodes reports ILP effort (casa only).
	SolverNodes int `json:"solver_nodes,omitempty"`

	// Degraded marks a result that is not a proven optimum: the anytime
	// solver hit its tier budget, or admission shed the solve to the
	// greedy allocator. DegradedReason says why; Gap is the relative
	// optimality gap when known; Fallback marks a greedy selection.
	Degraded       bool    `json:"degraded,omitempty"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	Gap            float64 `json:"gap,omitempty"`
	Fallback       bool    `json:"fallback,omitempty"`

	// Placement is the optional per-trace table (Request.Placement).
	Placement []TracePlacement `json:"placement,omitempty"`

	// Cached and Coalesced describe how this delivery was served: from
	// the result cache, or by joining another client's in-flight solve.
	// ElapsedMS is the server-side handling time of this delivery.
	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ErrorResponse is the JSON body of a non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
}
