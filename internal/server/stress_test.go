package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressShardedCache hammers one shardedCache from many goroutines
// with a key space larger than the capacity, so gets, puts, LRU updates
// and evictions all race. Run under -race (the CI test-race job does);
// the assertions are sanity bounds, the detector is the real check.
func TestStressShardedCache(t *testing.T) {
	c := newShardedCache(64, 4)
	const workers = 8
	const opsPerWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				// 32-hex-char keys like the real request hash, 256 of
				// them — 4× the capacity, forcing constant eviction.
				key := fmt.Sprintf("%032x", (w*opsPerWorker+i)%256)
				if r, ok := c.get(key); ok {
					if r.Key != key {
						t.Errorf("cache returned %q for key %q", r.Key, key)
						return
					}
				} else {
					c.put(key, &Response{Key: key})
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.len(); n > 64 {
		t.Fatalf("cache holds %d entries, capacity 64", n)
	}
}

// TestStressInternTable interns a handful of distinct program texts far
// more often than the table holds, racing parse, hit and evict paths.
func TestStressInternTable(t *testing.T) {
	tab := newInternTable(2)
	srcs := make([]string, 5)
	for i := range srcs {
		// Same shape, different loop counts — distinct hashes.
		srcs[i] = strings.Replace(tinyProgram, "64", fmt.Sprint(40+8*i), 1)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				src := srcs[(w+i)%len(srcs)]
				if _, _, err := tab.program(src); err != nil {
					t.Errorf("parse: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := tab.len(); n > 2 {
		t.Fatalf("intern table holds %d programs, capacity 2", n)
	}
}

// TestStressServer drives the whole serving path — admission controller,
// singleflight, result cache, pipeline memo layers — with concurrent
// mixed traffic. Every response must be a 200 or a well-formed 503; the
// race detector watches the rest.
func TestStressServer(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cfg := testConfig()
	cfg.MaxInflight = 4 // small cap so rejection and greedy paths race too
	cfg.CacheEntries = 16
	ts := httptest.NewServer(New(cfg).Handler())
	defer ts.Close()

	const workers = 16
	const perWorker = 25
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// 8 distinct keys: plenty of duplicates in flight at once.
				body := adpcmBody(64 + 16*((w+i)%8))
				resp, err := http.Post(ts.URL+"/v1/allocate", "application/json",
					strings.NewReader(body))
				if err != nil {
					t.Errorf("POST: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					t.Errorf("unexpected HTTP %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no request succeeded under load")
	}
	t.Logf("stress: %d ok, %d shed (503)", ok.Load(), shed.Load())
}
