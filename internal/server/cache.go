package server

import (
	"container/list"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"repro/internal/obs"
)

// Result-cache metrics, resolved once.
var (
	mCacheHits   = obs.GetCounter("casa_server_cache_hits_total")
	mCacheMisses = obs.GetCounter("casa_server_cache_misses_total")
	mCacheEvicts = obs.GetCounter("casa_server_cache_evictions_total")
	mCacheSize   = obs.GetGauge("casa_server_cache_entries")
)

// shardedCache is an LRU response cache split into independently locked
// shards so concurrent request handlers do not serialize on one mutex.
// Requests hash uniformly (keys are truncated SHA-256), so per-shard LRU
// approximates global LRU closely while the hot path takes a lock held
// for a handful of pointer moves.
type shardedCache struct {
	shards []cacheShard
	mask   uint64
}

type cacheShard struct {
	mu  sync.Mutex
	max int // entries per shard
	m   map[string]*list.Element
	ll  *list.List // front = most recently used
}

type cacheEntry struct {
	key  string
	resp *Response
}

// newShardedCache builds a cache of totalEntries split over shards
// (rounded up to a power of two).
func newShardedCache(totalEntries, shards int) *shardedCache {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (totalEntries + n - 1) / n
	if per < 1 {
		per = 1
	}
	c := &shardedCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = cacheShard{max: per, m: make(map[string]*list.Element), ll: list.New()}
	}
	return c
}

// shard picks the shard for a key: the canonical request hash is already
// uniform, so the first 8 hex digits are an adequate hash.
func (c *shardedCache) shard(key string) *cacheShard {
	var h uint64
	if raw, err := hex.DecodeString(key[:16]); err == nil && len(raw) == 8 {
		h = binary.BigEndian.Uint64(raw)
	} else {
		for i := 0; i < len(key); i++ { // non-hex keys (tests): FNV-1a
			h = (h ^ uint64(key[i])) * 1099511628211
		}
	}
	return &c.shards[h&c.mask]
}

// get returns the cached response for key, refreshing its recency.
func (c *shardedCache) get(key string) (*Response, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.m[key]
	if ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	if ok {
		mCacheHits.Inc()
		return el.Value.(*cacheEntry).resp, true
	}
	mCacheMisses.Inc()
	return nil, false
}

// put stores resp under key, evicting the shard's least-recently-used
// entry when full. The stored response must be treated as immutable;
// deliveries copy it before stamping per-request fields.
func (c *shardedCache) put(key string, resp *Response) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, resp: resp})
	evicted := 0
	for s.ll.Len() > s.max {
		old := s.ll.Back()
		s.ll.Remove(old)
		delete(s.m, old.Value.(*cacheEntry).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		mCacheEvicts.Add(int64(evicted))
	}
	mCacheSize.Add(int64(1 - evicted))
}

// shed drops roughly frac of each shard's entries, least recently used
// first. It is the memory watchdog's first lever: a dropped response
// costs one solve to rebuild, nothing more.
func (c *shardedCache) shed(frac float64) int {
	removed := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		drop := int(float64(s.ll.Len())*frac + 0.5)
		for j := 0; j < drop; j++ {
			old := s.ll.Back()
			if old == nil {
				break
			}
			s.ll.Remove(old)
			delete(s.m, old.Value.(*cacheEntry).key)
			removed++
		}
		s.mu.Unlock()
	}
	if removed > 0 {
		mCacheEvicts.Add(int64(removed))
		mCacheSize.Add(int64(-removed))
	}
	return removed
}

// dump returns every cached entry, least recently used first, so a
// restore that replays them through put reproduces the recency order.
func (c *shardedCache) dump() []cacheEntry {
	var out []cacheEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Back(); el != nil; el = el.Prev() {
			out = append(out, *el.Value.(*cacheEntry))
		}
		s.mu.Unlock()
	}
	return out
}

// len returns the total number of cached responses.
func (c *shardedCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
