package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/slogx"
)

// EnvTraceSample overrides the request-trace sampling rate when the
// Config leaves it unset: a float in [0,1] where 0 disables tracing
// entirely and 1 traces every request (the default). The CI overhead
// check boots one casad with CASA_TRACE_SAMPLE=0 to measure the cost of
// tracing against an identical instance with it on.
const EnvTraceSample = "CASA_TRACE_SAMPLE"

// Telemetry metrics, resolved once.
var (
	mTraced     = obs.GetCounter("casa_server_traced_requests_total")
	mTraceKept  = obs.GetCounter("casa_server_traces_retained_total")
	mTraceDrops = obs.GetCounter("casa_server_trace_store_drops_total")

	// Per-tier occupancy: how many solves are currently running in each
	// admission tier. Unlike the tier_*_total counters these move both
	// ways, so a scrape shows where the in-flight work sits right now.
	mInflightExact   = obs.GetGauge("casa_server_inflight_exact")
	mInflightBounded = obs.GetGauge("casa_server_inflight_bounded")
	mInflightGreedy  = obs.GetGauge("casa_server_inflight_greedy")

	mTraceStoreSize = obs.GetGauge("casa_server_trace_store_size")
	mInterned       = obs.GetGauge("casa_server_interned_programs")
)

func tierGauge(tier string) *obs.Gauge {
	switch tier {
	case tierExact:
		return mInflightExact
	case tierBounded:
		return mInflightBounded
	default:
		return mInflightGreedy
	}
}

// Request outcome classes (RequestTrace.Outcome, access-log field).
const (
	outcomeOK          = "ok"
	outcomeCached      = "cached"
	outcomeCoalesced   = "coalesced"
	outcomeDegraded    = "degraded"
	outcomeShed        = "shed"
	outcomeDeadline    = "deadline"
	outcomeClientError = "client-error"
	outcomeError       = "error"
)

// bootID makes generated request IDs unique across restarts, so an ID
// quoted from an old log never resolves to the wrong trace.
var bootID = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "casad"
	}
	return hex.EncodeToString(b[:])
}()

var reqSeq atomic.Int64

func newRequestID() string {
	return bootID + "-" + leftPad(strconv.FormatInt(reqSeq.Add(1), 10), 7)
}

func leftPad(s string, n int) string {
	for len(s) < n {
		s = "0" + s
	}
	return s
}

// requestIDFrom returns the inbound X-Request-Id when it is safe to
// echo (bounded length, no header-splitting or log-forging characters),
// otherwise a generated ID.
func requestIDFrom(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" || len(id) > 128 {
		return newRequestID()
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return newRequestID()
		}
	}
	return id
}

// traceEveryFrom converts a sampling rate into the modulus the handler
// checks: 0 = never trace, 1 = always, N = 1-in-N. A zero cfgRate means
// "unset" — the environment decides, defaulting to always-on (tracing
// is cheap: one tracer allocation plus a handful of spans per request).
// Negative rates (Config or environment) disable tracing explicitly.
func traceEveryFrom(cfgRate float64) int64 {
	rate := cfgRate
	if rate == 0 {
		rate = 1
		if v := os.Getenv(EnvTraceSample); v != "" {
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				rate = f
			}
		}
	}
	switch {
	case rate <= 0:
		return 0
	case rate >= 1:
		return 1
	default:
		return int64(1/rate + 0.5)
	}
}

// reqRecord accumulates one request's identity and fate between
// beginRequest and finishRequest. The handler mutates it as the request
// progresses; finishRequest turns it into the trace offered to the
// store and the access-log line.
type reqRecord struct {
	id      string
	start   time.Time
	tracer  *obs.Tracer
	root    *obs.Span
	status  int
	outcome string
	tier    string
	reason  string
}

// beginRequest assigns the request its ID and, when sampled, a tracer
// whose "request" root span the rest of the handler parents under. The
// returned context carries both and derives from the request's own.
func (s *Server) beginRequest(r *http.Request) (*reqRecord, context.Context) {
	rec := &reqRecord{
		id:      requestIDFrom(r),
		start:   time.Now(),
		status:  http.StatusOK,
		outcome: outcomeOK,
	}
	ctx := slogx.With(r.Context(), s.logger.With("request_id", rec.id))
	if s.sampleTrace() {
		rec.tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, rec.tracer)
		ctx, rec.root = obs.StartSpan(ctx, "request")
		rec.root.SetAttr("request_id", rec.id)
	}
	return rec, ctx
}

func (s *Server) sampleTrace() bool {
	switch s.traceEvery {
	case 0:
		return false
	case 1:
		return true
	}
	return (s.traceSeq.Add(1)-1)%s.traceEvery == 0
}

// finishRequest closes the request's root span, offers the trace for
// retention, records latency (with an exemplar pointing at the trace
// when it was retained, so /metrics buckets link to /debug/traces), and
// emits the access log line — errors, sheds and degraded answers
// always, healthy requests 1-in-AccessLogEvery.
func (s *Server) finishRequest(rec *reqRecord) {
	durNS := time.Since(rec.start).Nanoseconds()
	kept := false
	if rec.tracer != nil {
		rec.root.SetAttr("status", rec.status)
		rec.root.SetAttr("outcome", rec.outcome)
		if rec.tier != "" {
			rec.root.SetAttr("tier", rec.tier)
		}
		if rec.reason != "" {
			rec.root.SetAttr("reason", rec.reason)
		}
		rec.root.End()
		mTraced.Inc()
		var dropped bool
		kept, dropped = s.traces.Offer(&obs.RequestTrace{
			ID:          rec.id,
			StartUnixNS: rec.start.UnixNano(),
			DurNS:       durNS,
			Status:      rec.status,
			Outcome:     rec.outcome,
			Tier:        rec.tier,
			Reason:      rec.reason,
			Spans:       rec.tracer.Roots(),
		})
		if kept {
			mTraceKept.Inc()
		}
		if dropped {
			mTraceDrops.Inc()
		}
	}
	if kept {
		mLatency.ObserveWithExemplar(durNS, rec.id)
	} else {
		mLatency.Observe(durNS)
	}

	interesting := rec.outcome == outcomeDegraded || rec.outcome == outcomeShed ||
		rec.outcome == outcomeDeadline || rec.outcome == outcomeError
	if !interesting && !s.accessSample.Allow() {
		return
	}
	l := s.logger.With(
		"request_id", rec.id,
		"status", rec.status,
		"outcome", rec.outcome,
		"dur_ms", float64(durNS)/1e6,
	)
	if rec.tier != "" {
		l = l.With("tier", rec.tier)
	}
	if rec.reason != "" {
		l = l.With("reason", rec.reason)
	}
	if interesting {
		l.Warn("allocate")
	} else {
		l.Info("allocate")
	}
}

// failRequest classifies err onto the record and writes the error
// response. Outcomes: 503 = shed, 504 = deadline (the client's clock
// expired, counted separately), other 5xx = error, 4xx = client mistake
// (which the trace store deliberately does not must-keep).
func (s *Server) failRequest(rec *reqRecord, w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
	}
	rec.status = code
	rec.reason = err.Error()
	switch {
	case code == http.StatusServiceUnavailable:
		rec.outcome = outcomeShed
	case code == http.StatusGatewayTimeout:
		rec.outcome = outcomeDeadline
		mDeadlineExceeded.Inc()
	case code >= 500:
		rec.outcome = outcomeError
	default:
		rec.outcome = outcomeClientError
	}
	writeError(w, err)
}
