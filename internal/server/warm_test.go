package server

import (
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

// TestWarmSolvesAcrossRequests drives the cross-request warm path: the
// second request differs from the first only in scratchpad size, so it
// must be served with a transferred cutoff (counted by
// casa_server_warm_solves_total) and still return the same answer a
// cold server gives.
func TestWarmSolvesAcrossRequests(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "on")
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	warmed := obs.GetCounter("casa_server_warm_solves_total")
	base := warmed.Value()

	first := allocate(t, ts.URL, adpcmBody(128))
	if got := warmed.Value(); got != base {
		t.Fatalf("first request (no donor) warmed: counter %d, want %d", got, base)
	}
	second := allocate(t, ts.URL, adpcmBody(192))
	if got := warmed.Value(); got != base+1 {
		t.Fatalf("second request (single-parameter neighbor) counter = %d, want %d", got, base+1)
	}

	// Same answers as a cold server.
	cold := httptest.NewServer(New(testConfig()).Handler())
	defer cold.Close()
	coldFirst := allocate(t, cold.URL, adpcmBody(128))
	coldSecond := allocate(t, cold.URL, adpcmBody(192))
	for _, pair := range []struct {
		name       string
		warm, cold *Response
	}{{"spm=128", first, coldFirst}, {"spm=192", second, coldSecond}} {
		if pair.warm.EnergyMicroJ != pair.cold.EnergyMicroJ ||
			pair.warm.PlacedTraces != pair.cold.PlacedTraces ||
			pair.warm.UsedBytes != pair.cold.UsedBytes {
			t.Errorf("%s: warm answer diverged from cold: warm %+v cold %+v",
				pair.name, pair.warm, pair.cold)
		}
	}
}

// TestWarmDisabledByEnv pins the CASA_INCREMENTAL=off contract on the
// serving path: no cutoffs, no warm counter movement.
func TestWarmDisabledByEnv(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "off")
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	warmed := obs.GetCounter("casa_server_warm_solves_total")
	base := warmed.Value()
	allocate(t, ts.URL, adpcmBody(128))
	allocate(t, ts.URL, adpcmBody(192))
	if got := warmed.Value(); got != base {
		t.Fatalf("warm counter moved with CASA_INCREMENTAL=off: %d, want %d", got, base)
	}
}
