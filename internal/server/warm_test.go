package server

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

// TestWarmSolvesAcrossRequests drives the cross-request warm path: the
// second request differs from the first only in scratchpad size, so it
// must be served with a transferred cutoff (counted by
// casa_server_warm_solves_total) and still return the same answer a
// cold server gives.
func TestWarmSolvesAcrossRequests(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "on")
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	warmed := obs.GetCounter("casa_server_warm_solves_total")
	base := warmed.Value()

	first := allocate(t, ts.URL, adpcmBody(128))
	if got := warmed.Value(); got != base {
		t.Fatalf("first request (no donor) warmed: counter %d, want %d", got, base)
	}
	second := allocate(t, ts.URL, adpcmBody(192))
	if got := warmed.Value(); got != base+1 {
		t.Fatalf("second request (single-parameter neighbor) counter = %d, want %d", got, base+1)
	}

	// Same answers as a cold server.
	cold := httptest.NewServer(New(testConfig()).Handler())
	defer cold.Close()
	coldFirst := allocate(t, cold.URL, adpcmBody(128))
	coldSecond := allocate(t, cold.URL, adpcmBody(192))
	for _, pair := range []struct {
		name       string
		warm, cold *Response
	}{{"spm=128", first, coldFirst}, {"spm=192", second, coldSecond}} {
		if pair.warm.EnergyMicroJ != pair.cold.EnergyMicroJ ||
			pair.warm.PlacedTraces != pair.cold.PlacedTraces ||
			pair.warm.UsedBytes != pair.cold.UsedBytes {
			t.Errorf("%s: warm answer diverged from cold: warm %+v cold %+v",
				pair.name, pair.warm, pair.cold)
		}
	}
}

// TestWarmBasisTransferAcrossRequests drives the warm path where the
// neighbor differs in cache geometry, not scratchpad size: such donors
// share the recipient's trace partition (same capacity, same line
// size), so besides a cutoff the donor hands over its simplex basis and
// pseudocosts. The transfer must be counted — basis reuse actually
// fired, the test is not passing vacuously on a cold solve — and the
// warm response must be identical to a cold server's golden answer.
func TestWarmBasisTransferAcrossRequests(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "on")
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	warmed := obs.GetCounter("casa_server_warm_solves_total")
	reused := obs.GetCounter("casa_ilp_basis_reuse_total")
	warmBase, reuseBase := warmed.Value(), reused.Value()

	body := func(cacheBytes int) string {
		return fmt.Sprintf(`{"workload":"adpcm","hierarchy":{"cache_bytes":%d,"spm_bytes":128}}`, cacheBytes)
	}
	allocate(t, ts.URL, body(1024))
	warm := allocate(t, ts.URL, body(512))
	if got := warmed.Value(); got != warmBase+1 {
		t.Fatalf("cache-geometry neighbor not served warm: counter = %d, want %d", got, warmBase+1)
	}
	if got := reused.Value(); got <= reuseBase {
		t.Fatalf("warm solve installed no donor basis: casa_ilp_basis_reuse_total = %d, want > %d", got, reuseBase)
	}

	cold := httptest.NewServer(New(testConfig()).Handler())
	defer cold.Close()
	golden := allocate(t, cold.URL, body(512))
	if warm.EnergyMicroJ != golden.EnergyMicroJ ||
		warm.BaselineMicroJ != golden.BaselineMicroJ ||
		warm.EnergySavingPct != golden.EnergySavingPct ||
		warm.PlacedTraces != golden.PlacedTraces ||
		warm.UsedBytes != golden.UsedBytes ||
		warm.Degraded != golden.Degraded {
		t.Errorf("basis-transferred answer diverged from cold golden:\nwarm %+v\ncold %+v", warm, golden)
	}
}

// TestWarmDisabledByEnv pins the CASA_INCREMENTAL=off contract on the
// serving path: no cutoffs, no warm counter movement.
func TestWarmDisabledByEnv(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "off")
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	warmed := obs.GetCounter("casa_server_warm_solves_total")
	base := warmed.Value()
	allocate(t, ts.URL, adpcmBody(128))
	allocate(t, ts.URL, adpcmBody(192))
	if got := warmed.Value(); got != base {
		t.Fatalf("warm counter moved with CASA_INCREMENTAL=off: %d, want %d", got, base)
	}
}
