package server

import "sync"

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller (the leader) runs fn, every caller that
// arrives while it is in flight blocks and receives the leader's result.
// It is the minimal singleflight needed by the allocation handler; the
// entry is removed once the leader finishes, so a later request with the
// same key (a result-cache miss after eviction, say) recomputes.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	resp *Response
	err  error
}

// do runs fn under key, deduplicating concurrent callers. The returned
// shared flag is true for followers that joined the leader's execution.
func (g *flightGroup) do(key string, fn func() (*Response, error)) (resp *Response, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.resp, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.resp, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.resp, c.err, false
}
