package server

import "sync"

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller (the leader) runs fn, every caller that
// arrives while it is in flight blocks and receives the leader's result.
// It is the minimal singleflight needed by the allocation handler; the
// entry is removed once the leader finishes, so a later request with the
// same key (a result-cache miss after eviction, say) recomputes.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done   chan struct{}
	leader string // request ID of the caller executing fn
	resp   *Response
	err    error
}

// do runs fn under key, deduplicating concurrent callers; callerID is
// the caller's request ID. The returned shared flag is true for
// followers that joined the leader's execution, and leaderID names the
// request that actually ran the solve — the follower's trace records it
// so a slow coalesced request points straight at the trace doing the
// work.
func (g *flightGroup) do(key, callerID string, fn func() (*Response, error)) (resp *Response, err error, shared bool, leaderID string) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.resp, c.err, true, c.leader
	}
	c := &flightCall{done: make(chan struct{}), leader: callerID}
	g.m[key] = c
	g.mu.Unlock()

	c.resp, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.resp, c.err, false, callerID
}
