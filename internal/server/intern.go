package server

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"repro/internal/asm"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/sim"
)

var (
	mInternHits   = obs.GetCounter("casa_server_program_intern_hits_total")
	mInternMisses = obs.GetCounter("casa_server_program_intern_misses_total")
	mInternEvicts = obs.GetCounter("casa_server_program_evictions_total")
)

// internTable deduplicates client-supplied programs by source hash.
// The sim memo layers (profile, recorded trace) key on *ir.Program
// identity, so two requests carrying the same asm text only profile and
// trace the program once — but only if they resolve to the same Program
// instance, which is exactly what interning provides. The table is a
// bounded LRU; eviction releases the program's memo entries through
// sim.Forget so a long-running daemon cannot accumulate one profile per
// program it ever saw.
type internTable struct {
	mu  sync.Mutex
	max int
	m   map[[32]byte]*list.Element
	ll  *list.List // front = most recently used
}

type internEntry struct {
	hash [32]byte
	once sync.Once
	// done is set (after prog/err are written) when the parse finished;
	// it orders the evictor's read of prog against the leader's write.
	done atomic.Bool
	prog *ir.Program
	err  error
}

func newInternTable(max int) *internTable {
	if max < 1 {
		max = 1
	}
	return &internTable{max: max, m: make(map[[32]byte]*list.Element), ll: list.New()}
}

// program returns the canonical *ir.Program for src, parsing it at most
// once per distinct source (singleflight: concurrent first requests
// share one parse). hit reports whether the source was already
// interned — the request trace records it, since an intern hit is the
// difference between re-profiling a program and reusing its memos.
// Parse errors are returned to every caller of the same source but are
// not retained — the entry is dropped so the table only holds real
// programs.
func (t *internTable) program(src string) (_ *ir.Program, hit bool, _ error) {
	h := sha256.Sum256([]byte(src))
	t.mu.Lock()
	el, ok := t.m[h]
	var e *internEntry
	if ok {
		t.ll.MoveToFront(el)
		e = el.Value.(*internEntry)
	} else {
		e = &internEntry{hash: h}
		t.m[h] = t.ll.PushFront(e)
		for t.ll.Len() > t.max {
			old := t.ll.Back()
			t.ll.Remove(old)
			oe := old.Value.(*internEntry)
			delete(t.m, oe.hash)
			// An entry evicted while its parse is still running keeps its
			// eventual memos (the leader creates them after this point);
			// that leak is bounded by the in-flight request count and the
			// table has no safe way to forget a program mid-solve.
			if oe.done.Load() && oe.prog != nil {
				sim.Forget(oe.prog)
			}
			mInternEvicts.Inc()
		}
	}
	t.mu.Unlock()
	if ok {
		mInternHits.Inc()
	} else {
		mInternMisses.Inc()
	}

	e.once.Do(func() {
		e.prog, e.err = asm.ParseString(src, "request")
		e.done.Store(true)
		if e.err != nil {
			t.mu.Lock()
			if el, ok := t.m[h]; ok && el.Value.(*internEntry) == e {
				t.ll.Remove(el)
				delete(t.m, h)
			}
			t.mu.Unlock()
		}
	})
	return e.prog, ok, e.err
}

// shedAll empties the table, releasing every parsed program's sim memos
// (profiles, recorded traces, stream caches) through sim.Forget — the
// memory watchdog's second lever. Entries whose parse is still running
// keep their eventual memos, exactly like a racing eviction; the leak
// is bounded by the in-flight request count.
func (t *internTable) shedAll() int {
	t.mu.Lock()
	n := t.ll.Len()
	var progs []*ir.Program
	for el := t.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*internEntry)
		if e.done.Load() && e.prog != nil {
			progs = append(progs, e.prog)
		}
	}
	t.m = make(map[[32]byte]*list.Element)
	t.ll = list.New()
	t.mu.Unlock()
	for _, p := range progs {
		sim.Forget(p)
	}
	if n > 0 {
		mInternEvicts.Add(int64(n))
	}
	return n
}

// len returns the number of interned programs.
func (t *internTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ll.Len()
}
