package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/promexport"
)

// tinyProgram is a minimal custom program in the asm format: one hot
// loop, enough code to form traces.
const tinyProgram = `
.entry main

func main
start:
    code 8
    call coder
loop:
    alu 4
    load 2
    bloop loop, done, 64
done:
    ret

func coder
body:
    mul 4
    code 6
    bloop body, out, 32
out:
    ret
`

func testConfig() Config {
	return Config{
		MaxInflight:   8,
		ExactBudget:   5 * time.Second,
		BoundedBudget: 100 * time.Millisecond,
		CacheEntries:  64,
		CacheShards:   4,
		MaxPrograms:   4,
	}
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/allocate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func allocate(t *testing.T, url, body string) *Response {
	t.Helper()
	resp, data := postJSON(t, url, body)
	if resp.StatusCode != 200 {
		t.Fatalf("allocate: HTTP %d: %s", resp.StatusCode, data)
	}
	var out Response
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode response: %v\n%s", err, data)
	}
	return &out
}

func adpcmBody(spm int) string {
	return fmt.Sprintf(`{"workload":"adpcm","hierarchy":{"cache_bytes":1024,"spm_bytes":%d}}`, spm)
}

func TestRequestValidation(t *testing.T) {
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"workload":`, 400},
		{"unknown field", `{"wrkload":"adpcm","hierarchy":{"cache_bytes":1024,"spm_bytes":128}}`, 400},
		{"no program", `{"hierarchy":{"cache_bytes":1024,"spm_bytes":128}}`, 400},
		{"both sources", `{"workload":"adpcm","program":"x","hierarchy":{"cache_bytes":1024,"spm_bytes":128}}`, 400},
		{"unknown workload", `{"workload":"nope","hierarchy":{"cache_bytes":1024,"spm_bytes":128}}`, 400},
		{"cache not pow2", `{"workload":"adpcm","hierarchy":{"cache_bytes":3000,"spm_bytes":128}}`, 400},
		{"zero cache", `{"workload":"adpcm","hierarchy":{"spm_bytes":128}}`, 400},
		{"spm too big", `{"workload":"adpcm","hierarchy":{"cache_bytes":1024,"spm_bytes":4194304}}`, 400},
		{"spm below line", `{"workload":"adpcm","hierarchy":{"cache_bytes":1024,"spm_bytes":8}}`, 400},
		{"bad allocator", `{"workload":"adpcm","hierarchy":{"cache_bytes":1024,"spm_bytes":128},"allocator":"magic"}`, 400},
		{"bad line", `{"workload":"adpcm","hierarchy":{"cache_bytes":1024,"line_bytes":24,"spm_bytes":128}}`, 400},
		{"bad assoc", `{"workload":"adpcm","hierarchy":{"cache_bytes":64,"assoc":32,"spm_bytes":128}}`, 400},
		{"unparseable program", `{"program":"func \n???","hierarchy":{"cache_bytes":1024,"spm_bytes":128}}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("got HTTP %d, want %d: %s", resp.StatusCode, tc.want, data)
			}
			var e ErrorResponse
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Fatalf("error body not {\"error\":...}: %s", data)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/allocate")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/allocate: got %d, want 405", resp.StatusCode)
		}
	})
}

func TestAllocateAndResultCache(t *testing.T) {
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	hits0 := mCacheHits.Value()
	first := allocate(t, ts.URL, adpcmBody(128))
	if first.Cached {
		t.Fatal("first request reported cached")
	}
	if first.Allocator != "casa" || first.Tier != tierExact {
		t.Fatalf("got allocator %q tier %q, want casa/exact", first.Allocator, first.Tier)
	}
	if first.EnergyMicroJ <= 0 || first.BaselineMicroJ <= 0 || first.Cycles <= 0 || first.Fetches <= 0 {
		t.Fatalf("implausible estimates: %+v", first)
	}
	if first.EnergyMicroJ > first.BaselineMicroJ {
		t.Fatalf("allocation made energy worse: %g > baseline %g", first.EnergyMicroJ, first.BaselineMicroJ)
	}
	if first.Degraded {
		t.Fatalf("unloaded exact solve degraded: %+v", first)
	}

	second := allocate(t, ts.URL, adpcmBody(128))
	if !second.Cached {
		t.Fatal("repeat request not served from the result cache")
	}
	if mCacheHits.Value() <= hits0 {
		t.Fatal("cache hit counter did not move")
	}
	if second.Key != first.Key || second.EnergyMicroJ != first.EnergyMicroJ {
		t.Fatalf("cached result differs: %+v vs %+v", second, first)
	}

	// Explicit defaults (line 16, assoc 1, allocator casa) canonicalize
	// to the same key.
	canon := allocate(t, ts.URL,
		`{"workload":"adpcm","hierarchy":{"cache_bytes":1024,"line_bytes":16,"assoc":1,"spm_bytes":128},"allocator":"casa"}`)
	if canon.Key != first.Key || !canon.Cached {
		t.Fatalf("defaulted and explicit requests did not share a key: %q vs %q", canon.Key, first.Key)
	}
}

func TestPlacementTable(t *testing.T) {
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	plain := allocate(t, ts.URL, adpcmBody(256))
	if len(plain.Placement) != 0 {
		t.Fatalf("placement table present without placement:true")
	}
	withTable := allocate(t, ts.URL,
		`{"workload":"adpcm","hierarchy":{"cache_bytes":1024,"spm_bytes":256},"placement":true}`)
	if withTable.Key == plain.Key {
		t.Fatal("placement flag did not change the request key")
	}
	if len(withTable.Placement) == 0 {
		t.Fatal("no placement rows")
	}
	spm := 0
	for _, row := range withTable.Placement {
		if row.Where == "spm" {
			spm++
		}
	}
	if spm != withTable.PlacedTraces {
		t.Fatalf("placement table shows %d SPM traces, response says %d", spm, withTable.PlacedTraces)
	}
}

func TestCustomProgramInterning(t *testing.T) {
	s := New(testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	misses0 := mInternMisses.Value()
	hits0 := mInternHits.Value()
	body := func(spm int) string {
		b, _ := json.Marshal(map[string]any{
			"program":   tinyProgram,
			"hierarchy": map[string]int{"cache_bytes": 512, "spm_bytes": spm},
		})
		return string(b)
	}
	r1 := allocate(t, ts.URL, body(64))
	r2 := allocate(t, ts.URL, body(128)) // different key, same program text
	if r1.Key == r2.Key {
		t.Fatal("different SPM sizes produced the same key")
	}
	if got := mInternMisses.Value() - misses0; got != 1 {
		t.Fatalf("program parsed %d times, want 1 (interned)", got)
	}
	if got := mInternHits.Value() - hits0; got < 1 {
		t.Fatal("second request did not hit the intern table")
	}
	if s.programs.len() != 1 {
		t.Fatalf("intern table holds %d programs, want 1", s.programs.len())
	}
	if r1.Workload != r2.Workload {
		t.Fatalf("program name mismatch: %q vs %q", r1.Workload, r2.Workload)
	}
}

func TestDuplicateRequestsCoalesce(t *testing.T) {
	s := New(testConfig())
	entered := make(chan string, 1)
	release := make(chan struct{})
	var hookOnce sync.Once
	s.testHookSolving = func(key, tier string) {
		hookOnce.Do(func() {
			entered <- key
			<-release
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sf0 := mSingleflight.Value()
	solves0 := mSolves.Value()

	const followers = 3
	results := make(chan *Response, followers+1)
	errs := make(chan error, followers+1)
	fire := func() {
		resp, data := postJSON(t, ts.URL, adpcmBody(192))
		if resp.StatusCode != 200 {
			errs <- fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
			return
		}
		var out Response
		if err := json.Unmarshal(data, &out); err != nil {
			errs <- err
			return
		}
		results <- &out
	}
	go fire()
	<-entered // the leader holds its admission slot now
	for i := 0; i < followers; i++ {
		go fire()
	}
	// Give the followers a moment to join the in-flight call; any that
	// miss the window become result-cache hits, which the assertions
	// below tolerate.
	time.Sleep(100 * time.Millisecond)
	close(release)

	var coalesced, cached int
	for i := 0; i < followers+1; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case r := <-results:
			if r.Coalesced {
				coalesced++
			}
			if r.Cached {
				cached++
			}
		case <-time.After(30 * time.Second):
			t.Fatal("request timed out")
		}
	}
	if got := mSolves.Value() - solves0; got != 1 {
		t.Fatalf("%d solves for %d identical requests, want exactly 1", got, followers+1)
	}
	if coalesced == 0 {
		t.Fatal("no follower reported coalesced=true")
	}
	if int64(coalesced) != mSingleflight.Value()-sf0 {
		t.Fatalf("coalesced responses %d != singleflight counter delta %d",
			coalesced, mSingleflight.Value()-sf0)
	}
	if coalesced+cached != followers {
		t.Fatalf("followers = %d coalesced + %d cached, want %d total", coalesced, cached, followers)
	}
}

// TestAdmissionTiers drives the controller through its tiers: with
// MaxInflight=4 the first two concurrent solves run exact, the third
// bounded, the fourth sheds to greedy (degraded, uncached), and a fifth
// is rejected outright.
func TestAdmissionTiers(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflight = 4
	s := New(cfg)

	type holder struct {
		key  string
		tier string
	}
	entered := make(chan holder, 8)
	release := make(chan struct{})
	var blocked sync.WaitGroup
	s.testHookSolving = func(key, tier string) {
		if tier != tierGreedy {
			entered <- holder{key, tier}
			blocked.Add(1)
			defer blocked.Done()
			<-release
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rejected0 := mRejected.Value()
	degraded0 := mDegraded.Value()

	done := make(chan *Response, 8)
	errs := make(chan error, 8)
	fire := func(spm int) {
		resp, data := postJSON(t, ts.URL, adpcmBody(spm))
		if resp.StatusCode != 200 {
			errs <- fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
			return
		}
		var out Response
		if err := json.Unmarshal(data, &out); err != nil {
			errs <- err
			return
		}
		done <- &out
	}

	// Occupy three slots with distinct keys; collect their tiers.
	tiers := map[string]int{}
	for i, spm := range []int{96, 112, 144} {
		go fire(spm)
		select {
		case h := <-entered:
			tiers[h.tier]++
		case err := <-errs:
			t.Fatalf("holder %d failed: %v", i, err)
		case <-time.After(30 * time.Second):
			t.Fatal("holder never reached the solve hook")
		}
	}
	if tiers[tierExact] != 2 || tiers[tierBounded] != 1 {
		t.Fatalf("holder tiers = %v, want 2 exact + 1 bounded", tiers)
	}

	// Fourth concurrent solve: shed to greedy, marked degraded.
	shed := allocate(t, ts.URL, adpcmBody(176))
	if shed.Tier != tierGreedy || !shed.Degraded || shed.DegradedReason != "admission-greedy" || !shed.Fallback {
		t.Fatalf("expected a degraded greedy shed, got %+v", shed)
	}
	if mDegraded.Value() == degraded0 {
		t.Fatal("degraded counter did not move")
	}

	// Degraded results are not cached: the same request under load again
	// recomputes (another greedy shed), not a cache hit.
	again := allocate(t, ts.URL, adpcmBody(176))
	if again.Cached {
		t.Fatal("degraded response was served from the cache")
	}

	// A fifth distinct solve while the three holders plus one shed are
	// in flight would exceed MaxInflight — but the sheds complete fast,
	// so force the rejection deterministically with the fault point.
	fault.Set(fault.NewPlan().Always(fault.ServerOverload))
	resp, data := postJSON(t, ts.URL, adpcmBody(208))
	fault.Set(nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded request: HTTP %d (%s), want 503", resp.StatusCode, data)
	}
	if mRejected.Value() == rejected0 {
		t.Fatal("rejected counter did not move")
	}

	close(release)
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case r := <-done:
			if r.Degraded {
				t.Fatalf("held exact/bounded solve came back degraded: %+v", r)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("held solve never finished")
		}
	}

	// With the load gone, the same key solves exactly and is cached.
	calm := allocate(t, ts.URL, adpcmBody(176))
	if calm.Tier != tierExact || calm.Degraded {
		t.Fatalf("post-load solve not exact: %+v", calm)
	}
	calm2 := allocate(t, ts.URL, adpcmBody(176))
	if !calm2.Cached {
		t.Fatal("exact result was not cached")
	}
}

func TestHardRejectionAtCapacity(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflight = 1
	s := New(cfg)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookSolving = func(key, tier string) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	go func() {
		resp, _ := postJSON(t, ts.URL, adpcmBody(96))
		resp.Body.Close()
	}()
	<-entered
	resp, data := postJSON(t, ts.URL, adpcmBody(128))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second solve at MaxInflight=1: HTTP %d (%s), want 503", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, "overloaded") {
		t.Fatalf("rejection body: %s", data)
	}
	close(release)
}

func TestFaultServerCacheMiss(t *testing.T) {
	ts := httptest.NewServer(New(testConfig()).Handler())
	defer ts.Close()

	allocate(t, ts.URL, adpcmBody(240)) // populate
	fault.Set(fault.NewPlan().Always(fault.ServerCacheMiss))
	defer fault.Set(nil)
	solves0 := mSolves.Value()
	again := allocate(t, ts.URL, adpcmBody(240))
	if again.Cached {
		t.Fatal("forced cache miss still served from cache")
	}
	if mSolves.Value() == solves0 {
		t.Fatal("forced cache miss did not recompute")
	}
}

// TestGracefulShutdownDrains exercises the real Serve/Shutdown path: an
// in-flight solve finishes and is delivered while new requests are
// refused.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(testConfig())
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookSolving = func(key, tier string) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	slow := make(chan *Response, 1)
	slowErr := make(chan error, 1)
	go func() {
		resp, data := postJSON(t, url, adpcmBody(96))
		if resp.StatusCode != 200 {
			slowErr <- fmt.Errorf("in-flight request: HTTP %d: %s", resp.StatusCode, data)
			return
		}
		var out Response
		if err := json.Unmarshal(data, &out); err != nil {
			slowErr <- err
			return
		}
		slow <- &out
	}()
	<-entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Draining flips synchronously in Shutdown before the listener
	// closes; wait for either signal before asserting refusals.
	for i := 0; i < 1000 && !s.Draining(); i++ {
		time.Sleep(time.Millisecond)
	}
	if !s.Draining() {
		t.Fatal("server never started draining")
	}
	if resp, err := http.Post(url+"/v1/allocate", "application/json",
		strings.NewReader(adpcmBody(128))); err == nil {
		// The listener may already be closed (connection refused) or the
		// handler may still answer — then it must be a 503.
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request during drain: HTTP %d, want 503 or refused", resp.StatusCode)
		}
		resp.Body.Close()
	}

	close(release)
	select {
	case err := <-slowErr:
		t.Fatal(err)
	case r := <-slow:
		if r.Allocator != "casa" {
			t.Fatalf("drained response wrong: %+v", r)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight solve was not drained")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestQuitEndpointAndHealthz(t *testing.T) {
	s := New(testConfig())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hs healthState
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || hs.Status != "ok" || hs.MaxSolves != s.cfg.MaxInflight {
		t.Fatalf("healthz: HTTP %d %+v", resp.StatusCode, hs)
	}
	if hs.GoVersion == "" || hs.Revision == "" {
		t.Fatalf("healthz missing build info: %+v", hs)
	}

	// /metrics.json is a flat name→value JSON object.
	resp, err = http.Get(url + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := metrics["casa_server_requests_total"]; !ok {
		t.Fatal("/metrics.json missing casa_server_requests_total")
	}

	// /metrics is the Prometheus text exposition, and lints clean.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != promexport.ContentType {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(string(promBody), "# TYPE casa_server_requests counter") {
		t.Fatalf("/metrics missing counter family:\n%s", promBody)
	}
	if !strings.Contains(string(promBody), "casa_server_request_duration_bucket") {
		t.Fatalf("/metrics missing latency histogram buckets:\n%s", promBody)
	}
	if err := promexport.Lint(bytes.NewReader(promBody)); err != nil {
		t.Fatalf("/metrics does not lint: %v", err)
	}

	// GET /quitquitquit is refused; POST drains the daemon.
	resp, err = http.Get(url + "/quitquitquit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /quitquitquit: HTTP %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(url+"/quitquitquit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST /quitquitquit: HTTP %d", resp.StatusCode)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve after quit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after /quitquitquit")
	}
	if !s.Draining() {
		t.Fatal("server not draining after /quitquitquit")
	}
}

func TestObsHistogramQuantile(t *testing.T) {
	var h obs.Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(2000) // bucket [1024, 2048)
	}
	h.Observe(1 << 20)
	if q := h.Quantile(0.5); q != 2048 {
		t.Fatalf("p50 = %g, want 2048 (bucket upper bound)", q)
	}
	if q := h.Quantile(0.999); q < 1<<20 {
		t.Fatalf("p99.9 = %g, want ≥ the outlier's bucket", q)
	}
}
