package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// End-to-end deadline propagation (DESIGN.md §14). A client that only
// has 200ms left before its own SLO expires gains nothing from a 5s
// exact solve it will never read; it sends the time it is still willing
// to wait in the X-Deadline-Ms header and the server bounds everything
// downstream with it:
//
//   - the admission tier's solve budget is clamped to the remaining
//     time (minus DeadlineMargin for simulation and encoding), so
//     ilp.Solve's anytime machinery returns its best incumbent inside
//     the client's window instead of the tier's static budget;
//   - the detached compute context carries the deadline, so the
//     non-anytime pipeline stages (trace formation, simulation) are cut
//     off too and the client gets a clean 504 instead of a wasted solve;
//   - a request that arrives with (almost) no time left is answered 504
//     immediately, before it consumes an admission slot.
//
// Without the header the per-tier budgets act as the server-side
// defaults, exactly as before. Deadline expiries are counted by
// casa_server_deadline_exceeded_total, classified as the "deadline"
// outcome (must-keep in the trace store) and annotated on the request
// root and admission spans.

// HeaderDeadline is the request header naming the client's remaining
// time budget in milliseconds.
const HeaderDeadline = "X-Deadline-Ms"

var mDeadlineExceeded = obs.GetCounter("casa_server_deadline_exceeded_total")

// errDeadlineExceeded is the 504-class answer for a request whose
// deadline expired before (or while) the server could produce a result.
func deadlineExceededErr(remaining time.Duration) error {
	return &httpError{
		code: http.StatusGatewayTimeout,
		msg:  fmt.Sprintf("deadline exceeded: %.1fms remaining of the client budget", float64(remaining.Nanoseconds())/1e6),
	}
}

// parseDeadline reads X-Deadline-Ms relative to the request's arrival
// time. The zero time means no client deadline. A malformed or
// non-positive value is a client error: silently ignoring it would turn
// a typo into an unbounded wait, the opposite of what the client asked
// for.
func parseDeadline(r *http.Request, start time.Time) (time.Time, error) {
	raw := r.Header.Get(HeaderDeadline)
	if raw == "" {
		return time.Time{}, nil
	}
	ms, err := strconv.ParseFloat(raw, 64)
	if err != nil || ms <= 0 {
		return time.Time{}, badRequestf("bad %s %q: want a positive number of milliseconds", HeaderDeadline, raw)
	}
	return start.Add(time.Duration(ms * float64(time.Millisecond))), nil
}

// clampBudget bounds a tier's solve budget by the time remaining until
// the client deadline, reserving margin for the non-solve work
// (simulation, response encoding) that follows. ok is false when the
// deadline leaves no usable time at all — the caller should answer 504
// rather than start work it cannot finish.
func clampBudget(tierBudget time.Duration, deadline time.Time, margin time.Duration, now time.Time) (time.Duration, bool) {
	if deadline.IsZero() {
		return tierBudget, true
	}
	remaining := deadline.Sub(now) - margin
	if remaining <= 0 {
		return 0, false
	}
	if tierBudget == 0 || remaining < tierBudget {
		return remaining, true
	}
	return tierBudget, true
}

// isDeadlineErr reports whether err is a deadline expiry from any layer
// of the compute path — the context the pipeline ran under, or an
// httpError already classified as 504.
func isDeadlineErr(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var he *httpError
	return errors.As(err, &he) && he.code == http.StatusGatewayTimeout
}
