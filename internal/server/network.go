package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Network-guard metrics, resolved once.
var (
	mBodyTooLarge = obs.GetCounter("casa_server_body_too_large_total")
	mSlowClients  = obs.GetCounter("casa_server_slow_clients_total")
	mConnResets   = obs.GetCounter("casa_server_conn_resets_total")
	mSlowWrites   = obs.GetCounter("casa_server_slow_writes_total")
)

// bodyLimit is the hard cap MaxBytesReader enforces on one request body:
// the largest legal program source plus headroom for the JSON envelope
// around it. Anything larger is a flood, not a request — it gets a 413
// before the server buffers it.
func (c Config) bodyLimit() int64 { return int64(c.MaxProgramBytes) + (64 << 10) }

// readRequest decodes one allocation request body under the network
// guards:
//
//   - a per-request read deadline (BodyReadTimeout) is the slow-loris
//     defense — a client dribbling its upload gets a structured 408 when
//     the deadline expires instead of holding this handler goroutine for
//     the listener-wide ReadTimeout;
//   - http.MaxBytesReader caps the body at Config.bodyLimit, so an
//     oversized flood is cut off with a structured 413 instead of being
//     buffered into memory;
//   - the server-stall-read fault point emulates the stalled upload
//     (chaos tests arm it to prove the guards hold).
func (s *Server) readRequest(w http.ResponseWriter, r *http.Request) (Request, error) {
	var req Request
	rc := http.NewResponseController(w)
	// Not every ResponseWriter can carry a read deadline (httptest
	// recorders cannot); the guard degrades to the listener timeouts.
	deadlineSet := rc.SetReadDeadline(time.Now().Add(s.cfg.BodyReadTimeout)) == nil
	if fault.Hit(fault.ServerStallRead) {
		// Emulate the dribbled upload: hold the read path long enough
		// that the per-request deadline (when the transport supports
		// one) expires before the decode below can finish.
		time.Sleep(s.cfg.StallDelay)
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.bodyLimit())
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	if deadlineSet {
		if err == nil {
			// Clear the deadline so it cannot bleed into a later read.
			_ = rc.SetReadDeadline(time.Time{})
		} else {
			// Keep reads dead. After the handler returns, net/http tries
			// to drain the unread body before flushing the buffered
			// response (to decide connection reuse); against a stalled
			// client that drain would block forever on a cleared
			// deadline, and the error answer below would never reach the
			// wire.
			_ = rc.SetReadDeadline(time.Now())
		}
	}
	if err == nil {
		return req, nil
	}
	var mbe *http.MaxBytesError
	var ne net.Error
	switch {
	case errors.As(err, &mbe):
		mBodyTooLarge.Inc()
		return req, &httpError{
			code: http.StatusRequestEntityTooLarge,
			msg:  fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit),
		}
	case errors.Is(err, os.ErrDeadlineExceeded), errors.As(err, &ne) && ne.Timeout():
		mSlowClients.Inc()
		return req, &httpError{
			code: http.StatusRequestTimeout,
			msg:  fmt.Sprintf("request body not received within %s", s.cfg.BodyReadTimeout),
		}
	default:
		return req, badRequestf("decode request: %v", err)
	}
}

// resetConn is the server-conn-reset fault: hijack the connection and
// hard-close it (SO_LINGER 0, so the peer sees a TCP RST, not a tidy
// FIN) — the mid-response hangup a crashed proxy produces. Writers that
// cannot hijack (httptest recorders, HTTP/2) just drop the body.
func (s *Server) resetConn(w http.ResponseWriter) {
	mConnResets.Inc()
	conn, _, err := http.NewResponseController(w).Hijack()
	if err != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = conn.Close()
}

// writeSlowly is the server-slow-client fault: trickle the response out
// in tiny flushed chunks with SlowChunkDelay pauses, emulating a slow
// consumer holding the connection open — the traffic shape the listener
// WriteTimeout exists to bound.
func (s *Server) writeSlowly(w http.ResponseWriter, v any) {
	mSlowWrites.Inc()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	const chunk = 64
	b := buf.Bytes()
	for len(b) > 0 {
		n := chunk
		if n > len(b) {
			n = len(b)
		}
		if _, err := w.Write(b[:n]); err != nil {
			return
		}
		_ = rc.Flush()
		b = b[n:]
		if len(b) > 0 {
			time.Sleep(s.cfg.SlowChunkDelay)
		}
	}
}
