package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

func httptestServer(t *testing.T) *httptest.Server {
	t.Helper()
	return httptestServerFor(t, New(testConfig()))
}

func httptestServerFor(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	return httptest.NewServer(s.Handler())
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

func TestRequestIDPropagation(t *testing.T) {
	ts := httptestServer(t)
	defer ts.Close()

	// A well-formed inbound ID is honored and echoed.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/allocate", strings.NewReader(adpcmBody(512)))
	req.Header.Set("X-Request-Id", "client-id.42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-id.42" {
		t.Fatalf("inbound request ID not echoed: %q", got)
	}

	// A hostile one (header injection material) is replaced.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/allocate", strings.NewReader(adpcmBody(512)))
	req.Header.Set("X-Request-Id", `evil"id with spaces`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-Id")
	if got == "" || strings.ContainsAny(got, "\" ") {
		t.Fatalf("unsafe request ID not replaced: %q", got)
	}

	// No inbound ID: one is generated, distinct per request.
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		r2, _ := http.Post(ts.URL+"/v1/allocate", "application/json", strings.NewReader(adpcmBody(512)))
		r2.Body.Close()
		id := r2.Header.Get("X-Request-Id")
		if id == "" || ids[id] {
			t.Fatalf("generated ID missing or repeated: %q", id)
		}
		ids[id] = true
	}
}

func TestTraceEndpointsAndSpanTree(t *testing.T) {
	ts := httptestServer(t)
	defer ts.Close()

	// A cold solve: its trace lands in the store (slowest-N — the first
	// request is by definition among the slowest).
	req, _ := http.NewRequest("POST", ts.URL+"/v1/allocate", strings.NewReader(adpcmBody(512)))
	req.Header.Set("X-Request-Id", "trace-me-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("allocate: HTTP %d", resp.StatusCode)
	}

	var idx []obs.TraceSummary
	getJSON(t, ts.URL+"/debug/traces", &idx)
	found := false
	for _, row := range idx {
		if row.ID == "trace-me-1" {
			found = true
			if row.Outcome != "ok" || row.Tier != "exact" {
				t.Fatalf("index row: %+v", row)
			}
		}
	}
	if !found {
		t.Fatalf("cold request not in trace index: %+v", idx)
	}

	var tr obs.RequestTrace
	getJSON(t, ts.URL+"/debug/traces/trace-me-1", &tr)
	if tr.ID != "trace-me-1" || len(tr.Spans) == 0 {
		t.Fatalf("trace body: %+v", tr)
	}
	// The span tree must cover the whole path: request envelope,
	// cache lookup, singleflight, admission, and the pipeline stages
	// down to the solve.
	names := map[string]bool{}
	for _, root := range tr.Spans {
		root.Walk(func(sp *obs.Span) { names[sp.Name] = true })
	}
	for _, want := range []string{
		"request", "result-cache", "singleflight", "serve", "admission",
		"resolve-program", "prepare", "baseline-sim", "allocate", "simulate",
	} {
		if !names[want] {
			t.Fatalf("span %q missing from trace; have %v", want, names)
		}
	}
	if tr.Spans[0].Attrs["request_id"] != "trace-me-1" {
		t.Fatalf("root span attrs: %+v", tr.Spans[0].Attrs)
	}

	// A repeat of the same request is a cache hit, visible as outcome
	// "cached" with a hit=true result-cache span when retained.
	req2, _ := http.NewRequest("POST", ts.URL+"/v1/allocate", strings.NewReader(adpcmBody(512)))
	req2.Header.Set("X-Request-Id", "trace-me-2")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	var tr2 obs.RequestTrace
	getJSON(t, ts.URL+"/debug/traces/trace-me-2", &tr2)
	if tr2.Outcome != "cached" {
		t.Fatalf("repeat request outcome = %q, want cached", tr2.Outcome)
	}

	// Unknown IDs 404.
	r404, err := http.Get(ts.URL + "/debug/traces/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace: HTTP %d, want 404", r404.StatusCode)
	}
}

func TestTraceRetainsShedAndDegraded(t *testing.T) {
	defer fault.Set(nil)
	ts := httptestServer(t)
	defer ts.Close()

	// Forced overload: the request is shed with 503 and its trace is in
	// the must-keep class.
	fault.Set(fault.NewPlan().Always(fault.ServerOverload))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/allocate", strings.NewReader(adpcmBody(512)))
	req.Header.Set("X-Request-Id", "shed-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fault.Set(nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded request: HTTP %d, want 503", resp.StatusCode)
	}
	var tr obs.RequestTrace
	getJSON(t, ts.URL+"/debug/traces/shed-1", &tr)
	if tr.Outcome != "shed" || tr.Status != 503 {
		t.Fatalf("shed trace: %+v", tr)
	}
	var idx []obs.TraceSummary
	getJSON(t, ts.URL+"/debug/traces", &idx)
	for _, row := range idx {
		if row.ID == "shed-1" && row.Kept != "must-keep" {
			t.Fatalf("shed trace in class %q, want must-keep", row.Kept)
		}
	}
}

func TestTraceSamplingDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.TraceSample = -1 // explicit off
	s := New(cfg)
	ts := httptestServerFor(t, s)
	defer ts.Close()

	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"workload":"adpcm","hierarchy":{"cache_bytes":1024,"spm_bytes":%d}}`, 256+64*i)
		resp, err := http.Post(ts.URL+"/v1/allocate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("allocate: HTTP %d", resp.StatusCode)
		}
		// Request IDs are still assigned with tracing off.
		if resp.Header.Get("X-Request-Id") == "" {
			t.Fatal("no request ID with tracing disabled")
		}
	}
	if n := s.traces.Len(); n != 0 {
		t.Fatalf("tracing disabled but %d traces retained", n)
	}
}

func TestTraceEveryFrom(t *testing.T) {
	cases := []struct {
		rate float64
		want int64
	}{
		{-1, 0}, {1, 1}, {2, 1}, {0.5, 2}, {0.1, 10}, {0.001, 1000},
	}
	for _, tc := range cases {
		if got := traceEveryFrom(tc.rate); got != tc.want {
			t.Fatalf("traceEveryFrom(%g) = %d, want %d", tc.rate, got, tc.want)
		}
	}
	t.Setenv(EnvTraceSample, "0")
	if got := traceEveryFrom(0); got != 0 {
		t.Fatalf("env=0: traceEveryFrom(0) = %d, want 0", got)
	}
	t.Setenv(EnvTraceSample, "0.25")
	if got := traceEveryFrom(0); got != 4 {
		t.Fatalf("env=0.25: traceEveryFrom(0) = %d, want 4", got)
	}
	t.Setenv(EnvTraceSample, "")
	if got := traceEveryFrom(0); got != 1 {
		t.Fatalf("unset: traceEveryFrom(0) = %d, want 1", got)
	}
}
