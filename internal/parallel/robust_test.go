package parallel

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

func TestWorkersWarnsOnInvalidEnv(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	obs.SetWarnWriter(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}))
	defer obs.SetWarnWriter(nil)

	t.Setenv(EnvWorkers, "not-a-number")
	if got := Workers(0); got < 1 {
		t.Fatalf("fallback worker count %d < 1", got)
	}
	Workers(0) // the same bad value warns only once
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, EnvWorkers) || !strings.Contains(out, "not-a-number") {
		t.Fatalf("warning missing or unspecific: %q", out)
	}
	if n := strings.Count(out, "warning"); n != 1 {
		t.Fatalf("warned %d times for one bad value, want 1 (output %q)", n, out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestCellPanicBecomesCellError(t *testing.T) {
	err := ForEach(context.Background(), 4, 2, func(ctx context.Context, i int) error {
		if i == 2 {
			panic("poisoned cell")
		}
		return nil
	})
	var ge *GridError
	if !errors.As(err, &ge) {
		t.Fatalf("panic did not surface as *GridError: %v", err)
	}
	if len(ge.Failed) != 1 || ge.Failed[0].Index != 2 {
		t.Fatalf("failed cells = %+v, want exactly cell 2", ge.Failed)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("cell failure is not a *PanicError: %v", ge.Failed[0].Err)
	}
	if fmt.Sprint(pe.Value) != "poisoned cell" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if !bytes.Contains(pe.Stack, []byte("parallel")) {
		t.Error("PanicError carries no stack trace")
	}
}

func TestForEachAllRunsEveryCell(t *testing.T) {
	var ran [8]bool
	err := ForEachAll(context.Background(), 8, 3, func(ctx context.Context, i int) error {
		ran[i] = true
		if i%3 == 0 {
			return fmt.Errorf("cell %d broke", i)
		}
		return nil
	})
	var ge *GridError
	if !errors.As(err, &ge) {
		t.Fatalf("want *GridError, got %v", err)
	}
	if len(ge.Failed) != 3 || len(ge.Skipped) != 0 {
		t.Fatalf("failed=%d skipped=%d, want 3 failed and nothing skipped", len(ge.Failed), len(ge.Skipped))
	}
	for i, r := range ran {
		if !r {
			t.Errorf("cell %d never ran despite keep-going mode", i)
		}
	}
}

func TestMapAllKeepsPartialResults(t *testing.T) {
	out, err := MapAll(context.Background(), 6, 2, func(ctx context.Context, i int) (int, error) {
		if i == 1 || i == 4 {
			return 0, errors.New("boom")
		}
		return i * 10, nil
	})
	var ge *GridError
	if !errors.As(err, &ge) {
		t.Fatalf("want *GridError, got %v", err)
	}
	if len(out) != 6 {
		t.Fatalf("partial results discarded: %v", out)
	}
	for _, i := range []int{0, 2, 3, 5} {
		if out[i] != i*10 {
			t.Errorf("surviving cell %d = %d, want %d", i, out[i], i*10)
		}
	}
	failed := map[int]bool{}
	for _, ce := range ge.Failed {
		failed[ce.Index] = true
	}
	if !failed[1] || !failed[4] || len(failed) != 2 {
		t.Errorf("failed set = %v, want {1,4}", failed)
	}
}

func TestInjectedCellPanic(t *testing.T) {
	fault.Set(fault.NewPlan().On(fault.CellPanic, 2))
	defer fault.Set(nil)
	// Serial (one worker) so hit order equals cell order.
	err := ForEachAll(context.Background(), 3, 1, func(ctx context.Context, i int) error { return nil })
	var ge *GridError
	if !errors.As(err, &ge) {
		t.Fatalf("injected panic not reported: %v", err)
	}
	if len(ge.Failed) != 1 || ge.Failed[0].Index != 1 {
		t.Fatalf("failed cells = %+v, want exactly cell 1 (2nd hit)", ge.Failed)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected failure is not a *PanicError: %v", ge.Failed[0].Err)
	}
}
