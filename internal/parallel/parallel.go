// Package parallel provides the bounded worker pool underneath the
// experiment engine. Every experiment cell of the evaluation — one
// (workload × cache configuration × scratchpad size) point — is
// deterministic and independent of every other cell, so regenerating a
// figure is an embarrassingly parallel grid. The pool fans a grid of
// cells out across a fixed number of workers while keeping three
// properties the experiments rely on:
//
//   - Deterministic ordering: Map collects result i of cell i into slot i,
//     so output rows are byte-identical to a serial run regardless of the
//     worker count or scheduling.
//   - First-error propagation: a failure cancels the remaining cells, and
//     the returned *GridError lists every failing cell in ascending index
//     order plus the cells the cancellation skipped — losing cells are
//     recorded, never silently dropped.
//   - Context cancellation: canceling the caller's context stops workers
//     from claiming new cells and surfaces the context error.
//   - Panic containment: a panic inside a cell is recovered into a
//     *PanicError (with the stack) and reported as that cell's failure,
//     so one poisoned cell cannot take down the process. The ForEachAll /
//     MapAll variants additionally keep going past failures and return
//     every surviving cell's result alongside the aggregate *GridError.
//
// The worker count defaults to runtime.NumCPU, can be overridden
// per-call, and can be pinned globally through the CASA_WORKERS
// environment variable (useful for CI and for serial golden runs).
//
// The pool reports into the default metrics registry: grid and cell
// counters (casa_pool_grids_total, casa_pool_cells_{ok,failed,
// skipped}_total), the busy-time counter casa_pool_busy_ns_total for
// utilization, and the casa_pool_width / casa_pool_queue_depth gauges.
package parallel

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// EnvWorkers is the environment variable that pins the default worker
// count (a positive integer). It is consulted only when the caller does
// not request an explicit count.
const EnvWorkers = "CASA_WORKERS"

// warnedWorkers remembers the CASA_WORKERS values already warned about,
// so a grid of thousands of cells complains once, not per resolution.
var warnedWorkers sync.Map

// Workers resolves a requested worker count: an explicit positive request
// wins, then a positive CASA_WORKERS value, then runtime.NumCPU. An
// unusable CASA_WORKERS value (not a positive integer) is reported once
// through obs.Warnf and explicitly falls back to runtime.NumCPU.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
		if _, dup := warnedWorkers.LoadOrStore(v, true); !dup {
			obs.Warnf("ignoring %s=%q (want a positive integer); using %d workers",
				EnvWorkers, v, runtime.NumCPU())
		}
	}
	return runtime.NumCPU()
}

// Pool metrics, resolved once.
var (
	mGrids        = obs.GetCounter("casa_pool_grids_total")
	mCellsOK      = obs.GetCounter("casa_pool_cells_ok_total")
	mCellsFailed  = obs.GetCounter("casa_pool_cells_failed_total")
	mCellsSkipped = obs.GetCounter("casa_pool_cells_skipped_total")
	mBusyNS       = obs.GetCounter("casa_pool_busy_ns_total")
	mWidth        = obs.GetGauge("casa_pool_width")
	mQueueDepth   = obs.GetGauge("casa_pool_queue_depth")
	mCellNS       = obs.GetHistogram("casa_pool_cell_ns")
	mCellPanics   = obs.GetCounter("casa_cell_panics_total")
)

// PanicError is a cell panic converted into an error by the pool's
// per-cell recovery, with the panicking goroutine's stack captured at
// recovery time. It surfaces inside a *CellError, so a poisoned cell is
// reported like any other cell failure instead of killing the process.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("cell panicked: %v", e.Value) }

// runCell executes one cell with panic containment: a panic inside fn
// (or injected through the cell-panic fault point) is recovered into a
// *PanicError and counted, never propagated.
func runCell(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			mCellPanics.Inc()
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if fault.Hit(fault.CellPanic) {
		panic(fmt.Sprintf("injected %s fault at cell %d", fault.CellPanic, i))
	}
	return fn(ctx, i)
}

// CellError is one cell's failure, tagged with its grid index.
type CellError struct {
	// Index is the grid index the error occurred at.
	Index int
	// Err is the cell's error.
	Err error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e *CellError) Unwrap() error { return e.Err }

// GridError is the typed aggregate error of a grid run: every failing
// cell in ascending index order, plus the indices of cells that never
// ran because the first failure cancelled the grid. ForEach and Map
// return it (as error) whenever at least one cell fails.
type GridError struct {
	// N is the grid size.
	N int
	// Failed lists failing cells in ascending index order.
	Failed []*CellError
	// Skipped lists, in ascending order, the cells cancelled before
	// they ran.
	Skipped []int
}

func (e *GridError) Error() string {
	msg := fmt.Sprintf("%d of %d cells failed", len(e.Failed), e.N)
	if len(e.Failed) > 0 {
		msg += fmt.Sprintf(" (first: %v)", e.Failed[0])
	}
	if len(e.Skipped) > 0 {
		msg += fmt.Sprintf("; %d skipped after cancellation", len(e.Skipped))
	}
	return msg
}

// Unwrap exposes every cell failure, so errors.Is finds the underlying
// sentinel and errors.As extracts a *CellError.
func (e *GridError) Unwrap() []error {
	errs := make([]error, len(e.Failed))
	for i, ce := range e.Failed {
		errs[i] = ce
	}
	return errs
}

// Per-cell outcome slots; each is written by exactly one worker (the
// cell's claimant) before wg.Wait and read only afterwards.
type cellState struct {
	status cellStatus
	err    error
}

type cellStatus uint8

const (
	cellSkipped cellStatus = iota // never ran (default for unclaimed cells)
	cellOK
	cellFailed
)

// ForEach runs fn(ctx, i) for every i in [0, n) on a pool of at most
// `workers` goroutines (resolved through Workers). The first failing cell
// cancels the context passed to the remaining cells; cells not yet
// claimed are skipped but still accounted for. When any cell fails the
// returned error is a *GridError carrying every failure (ascending
// index order) and the skipped indices; if the caller's context was
// canceled first, its error is returned instead.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	return forEach(ctx, n, workers, false, fn)
}

// ForEachAll is ForEach without failure cancellation: every cell runs to
// completion (unless the caller's context is canceled), and all failures
// are collected into one *GridError. Use it when partial results matter
// more than stopping early — the experiment engine keeps the surviving
// cells of a degraded grid.
func ForEachAll(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	return forEach(ctx, n, workers, true, fn)
}

func forEach(ctx context.Context, n, workers int, keepGoing bool, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	mGrids.Inc()
	mWidth.Set(int64(w))
	mQueueDepth.Add(int64(n))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		cells = make([]cellState, n)
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mQueueDepth.Add(-1)
				if runCtx.Err() != nil {
					// Drain the remaining cells so every one has a
					// recorded outcome instead of vanishing.
					continue
				}
				start := time.Now()
				err := runCell(runCtx, i, fn)
				busy := time.Since(start).Nanoseconds()
				mBusyNS.Add(busy)
				mCellNS.Observe(busy)
				if err != nil {
					cells[i] = cellState{status: cellFailed, err: err}
					if !keepGoing {
						cancel()
					}
					continue
				}
				cells[i] = cellState{status: cellOK}
			}
		}()
	}
	wg.Wait()

	var ge *GridError
	for i := range cells {
		switch cells[i].status {
		case cellOK:
			mCellsOK.Inc()
		case cellFailed:
			mCellsFailed.Inc()
			if ge == nil {
				ge = &GridError{N: n}
			}
			ge.Failed = append(ge.Failed, &CellError{Index: i, Err: cells[i].err})
		case cellSkipped:
			mCellsSkipped.Inc()
		}
	}
	// Skipped cells can sit on either side of the first failure (a
	// lower-indexed cell may still be queued when a higher one fails),
	// so collect them in a second pass once the failures are known.
	if ge != nil {
		for i := range cells {
			if cells[i].status == cellSkipped {
				ge.Skipped = append(ge.Skipped, i)
			}
		}
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	if ge == nil {
		return nil
	}
	return ge
}

// Map runs fn over every index of an n-cell grid and returns the results
// in input order: out[i] is fn's result for cell i, independent of worker
// count and scheduling. Error semantics match ForEach; on error the
// partial results are discarded.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapAll is Map without failure cancellation: every cell runs, and the
// partial results are returned alongside the *GridError (slots of failed
// cells hold T's zero value). Callers distinguish good from failed slots
// through the GridError's Failed indices.
func MapAll[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachAll(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
