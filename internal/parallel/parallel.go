// Package parallel provides the bounded worker pool underneath the
// experiment engine. Every experiment cell of the evaluation — one
// (workload × cache configuration × scratchpad size) point — is
// deterministic and independent of every other cell, so regenerating a
// figure is an embarrassingly parallel grid. The pool fans a grid of
// cells out across a fixed number of workers while keeping three
// properties the experiments rely on:
//
//   - Deterministic ordering: Map collects result i of cell i into slot i,
//     so output rows are byte-identical to a serial run regardless of the
//     worker count or scheduling.
//   - First-error propagation: the error of the lowest-indexed failing
//     cell is reported first (errors of other cells that failed before
//     cancellation took effect are joined after it, in index order), and
//     a failure cancels the remaining cells.
//   - Context cancellation: canceling the caller's context stops workers
//     from claiming new cells and surfaces the context error.
//
// The worker count defaults to runtime.NumCPU, can be overridden
// per-call, and can be pinned globally through the CASA_WORKERS
// environment variable (useful for CI and for serial golden runs).
package parallel

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable that pins the default worker
// count (a positive integer). It is consulted only when the caller does
// not request an explicit count.
const EnvWorkers = "CASA_WORKERS"

// Workers resolves a requested worker count: an explicit positive request
// wins, then a positive CASA_WORKERS value, then runtime.NumCPU.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.NumCPU()
}

// cellError tags a cell's error with its grid index so aggregation can
// order errors deterministically.
type cellError struct {
	index int
	err   error
}

func (e cellError) Error() string { return fmt.Sprintf("cell %d: %v", e.index, e.err) }

func (e cellError) Unwrap() error { return e.err }

// Index returns the grid index the error occurred at. Errors returned by
// ForEach and Map unwrap (via errors.As) to this type.
func (e cellError) Index() int { return e.index }

// ForEach runs fn(ctx, i) for every i in [0, n) on a pool of at most
// `workers` goroutines (resolved through Workers). The first failing cell
// cancels the context passed to the remaining cells, and cells not yet
// claimed are skipped. The returned error joins every observed cell error
// in ascending index order; if the caller's context was canceled first,
// its error is returned instead.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []cellError
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if runCtx.Err() != nil {
					return
				}
				if err := fn(runCtx, i); err != nil {
					mu.Lock()
					errs = append(errs, cellError{index: i, err: err})
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	if len(errs) == 0 {
		return nil
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].index < errs[b].index })
	joined := make([]error, len(errs))
	for i, e := range errs {
		joined[i] = e
	}
	return errors.Join(joined...)
}

// Map runs fn over every index of an n-cell grid and returns the results
// in input order: out[i] is fn's result for cell i, independent of worker
// count and scheduling. Error semantics match ForEach; on error the
// partial results are discarded.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
