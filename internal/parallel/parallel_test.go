package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(7); got != 7 {
		t.Errorf("explicit request ignored: %d", got)
	}
	t.Setenv(EnvWorkers, "3")
	if got := Workers(0); got != 3 {
		t.Errorf("env not honored: %d", got)
	}
	if got := Workers(2); got != 2 {
		t.Errorf("explicit request must beat env: %d", got)
	}
	t.Setenv(EnvWorkers, "junk")
	if got := Workers(0); got < 1 {
		t.Errorf("fallback worker count %d < 1", got)
	}
	t.Setenv(EnvWorkers, "-4")
	if got := Workers(0); got < 1 {
		t.Errorf("negative env accepted: %d", got)
	}
}

// TestMapDeterministicOrdering: results land in input order for every
// worker count, including counts far above the grid size.
func TestMapDeterministicOrdering(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 3, 7, n, 4 * n} {
		got, err := Map(context.Background(), n, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestFirstErrorPropagation: a failing cell surfaces its error, identifies
// its index, and cancels the cells behind it.
func TestFirstErrorPropagation(t *testing.T) {
	sentinel := errors.New("cell exploded")
	var ran atomic.Int64
	_, err := Map(context.Background(), 1000, 2, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error lost: %v", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 3 {
		t.Fatalf("cell index not reported: %v", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Error("failure did not cancel the remaining grid")
	}
}

// TestGridErrorRecordsLosingCells: a failure must surface as a typed
// *GridError that names every failing cell and every cell the
// cancellation skipped — the full grid is accounted for.
func TestGridErrorRecordsLosingCells(t *testing.T) {
	const n = 500
	sentinel := errors.New("boom")
	err := ForEach(context.Background(), n, 2, func(_ context.Context, i int) error {
		if i == 7 {
			return fmt.Errorf("cell payload: %w", sentinel)
		}
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	var ge *GridError
	if !errors.As(err, &ge) {
		t.Fatalf("want *GridError, got %T: %v", err, err)
	}
	if ge.N != n {
		t.Errorf("grid size %d, want %d", ge.N, n)
	}
	if len(ge.Failed) == 0 || ge.Failed[0].Index != 7 {
		t.Fatalf("failing cell not first: %+v", ge.Failed)
	}
	if !errors.Is(err, sentinel) {
		t.Error("wrapped sentinel lost through GridError")
	}
	// Every cell is either ok, failed or listed as skipped; with 2
	// workers and 500 cells the cancellation must skip a tail.
	if len(ge.Skipped) == 0 {
		t.Error("cancelled cells vanished: no skipped indices recorded")
	}
	for k := 1; k < len(ge.Skipped); k++ {
		if ge.Skipped[k] <= ge.Skipped[k-1] {
			t.Fatalf("skipped indices not ascending: %v", ge.Skipped)
		}
	}
	for _, i := range ge.Skipped {
		if i == 7 {
			t.Error("failed cell double-counted as skipped")
		}
	}
}

// TestErrorAggregationOrdersByIndex: when several cells fail before
// cancellation lands, the joined error lists them in ascending index
// order regardless of completion order.
func TestErrorAggregationOrdersByIndex(t *testing.T) {
	var gate atomic.Int64
	err := ForEach(context.Background(), 2, 2, func(_ context.Context, i int) error {
		// Both cells fail; the higher index finishes first.
		if i == 0 {
			for gate.Load() == 0 {
				time.Sleep(time.Millisecond)
			}
		} else {
			defer gate.Store(1)
		}
		return fmt.Errorf("boom %d", i)
	})
	if err == nil {
		t.Fatal("errors swallowed")
	}
	var ge *GridError
	if !errors.As(err, &ge) {
		t.Fatalf("want *GridError, got %T", err)
	}
	if len(ge.Failed) != 2 || ge.Failed[0].Index != 0 || ge.Failed[1].Index != 1 {
		t.Fatalf("failures not in ascending index order: %+v", ge.Failed)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 0 {
		t.Fatalf("lowest-index error not first: %v", err)
	}
}

// TestCancellationMidGrid: canceling the caller's context stops the pool
// from claiming further cells and returns the context's error.
func TestCancellationMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(ctx, 10000, 2, func(ctx context.Context, i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n == 10000 {
		t.Error("cancellation did not stop the grid")
	}
}

// TestForEachEmptyGrid: an empty grid is a no-op, even with a canceled
// context only reporting the context state.
func TestForEachEmptyGrid(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(context.Context, int) error {
		t.Fatal("fn called for empty grid")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolBoundsConcurrency: no more than the requested number of workers
// run simultaneously.
func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := ForEach(context.Background(), 200, workers, func(_ context.Context, i int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent workers, requested %d", p, workers)
	}
}

// TestMapRaceStress hammers a shared-nothing grid with many goroutines;
// meaningful under -race.
func TestMapRaceStress(t *testing.T) {
	for round := 0; round < 8; round++ {
		out, err := Map(context.Background(), 256, 16, func(_ context.Context, i int) (int, error) {
			return i + round, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if out[255] != 255+round {
			t.Fatalf("round %d: bad tail %d", round, out[255])
		}
	}
}
