// Package fault provides deterministic fault injection for chaos
// testing the CASA pipeline. A small set of named injection points is
// compiled into the production code paths — the ILP solver's deadline
// check, the fetch-stream recorder, the memo layers, the worker pool's
// cell dispatch, and the casad server's admission controller and result
// cache — and each point costs a single atomic load when no fault plan
// is active.
//
// A plan is armed either programmatically (tests call Set) or through
// the CASA_FAULTS environment variable. The spec grammar is a
// comma-separated list of clauses:
//
//	point          fire on every hit
//	point:3        fire on the 3rd hit of that point only
//	point:2/5/9    fire on the listed hits (1-based, '/'-separated)
//
// e.g. CASA_FAULTS="cell-panic:2,stream-read:1/3,solver-deadline".
// Hits are counted per point across the whole process, so schedules are
// deterministic for a deterministic (serial) run.
//
// Every injected fault increments casa_faults_injected_total and is
// remembered on the plan (Fired), so chaos tests can assert that each
// scheduled degradation is accounted for in run reports.
package fault

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// The injection points wired into the pipeline.
const (
	// SolverDeadline makes ilp.Solve behave as if its wall-clock budget
	// expired immediately: best incumbent (or greedy fallback) wins.
	SolverDeadline = "solver-deadline"
	// StreamRead fails the trace read path (sim.CachedTrace) with an
	// injected error.
	StreamRead = "stream-read"
	// MemoMiss forces the sim memo layers (profile, trace) to bypass
	// their caches and recompute.
	MemoMiss = "memo-miss"
	// CellPanic panics inside a worker-pool cell, exercising the pool's
	// panic containment.
	CellPanic = "cell-panic"
	// ServerOverload makes the casad admission controller behave as if
	// the solve capacity were exhausted: the request is rejected with 503
	// regardless of the real in-flight count.
	ServerOverload = "server-overload"
	// ServerCacheMiss forces a casad result-cache lookup to miss, so the
	// request recomputes (and the response is re-cached) even when a
	// fresh entry exists.
	ServerCacheMiss = "server-cache-miss"
	// ServerStallRead stalls the casad request-body read path, emulating
	// a client that dribbles its upload (slow loris): the handler sleeps
	// for the configured stall delay before decoding.
	ServerStallRead = "server-stall-read"
	// ServerConnReset makes casad hijack and hard-close the client
	// connection instead of writing the response — the mid-response
	// hangup a flaky proxy or OOM-killed peer produces.
	ServerConnReset = "server-conn-reset"
	// ServerSlowClient makes casad trickle the response body out in tiny
	// flushed chunks with pauses, emulating a slow consumer holding the
	// connection (and exercising the server's write timeout).
	ServerSlowClient = "server-slow-client"
)

// EnvFaults is the environment variable carrying the process-wide fault
// plan spec.
const EnvFaults = "CASA_FAULTS"

var mInjected = obs.GetCounter("casa_faults_injected_total")

// rule is one point's schedule.
type rule struct {
	always bool
	hits   map[int64]bool
}

// Plan is a parsed fault schedule. The zero value is not useful;
// construct with Parse or NewPlan. A Plan is safe for concurrent use.
type Plan struct {
	mu    sync.Mutex
	rules map[string]*rule
	count map[string]int64
	fired map[string]int64
}

// NewPlan returns an empty plan (no point ever fires until On/Always
// add schedules).
func NewPlan() *Plan {
	return &Plan{
		rules: make(map[string]*rule),
		count: make(map[string]int64),
		fired: make(map[string]int64),
	}
}

// Always schedules point to fire on every hit. Returns the plan for
// chaining.
func (p *Plan) Always(point string) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules[point] = &rule{always: true}
	return p
}

// On schedules point to fire on the given 1-based hit numbers. Returns
// the plan for chaining.
func (p *Plan) On(point string, hits ...int64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.rules[point]
	if !ok || r.always {
		r = &rule{hits: make(map[int64]bool)}
		p.rules[point] = r
	}
	for _, h := range hits {
		r.hits[h] = true
	}
	return p
}

// Parse parses a CASA_FAULTS spec (see the package comment for the
// grammar).
func Parse(spec string) (*Plan, error) {
	p := NewPlan()
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		point, sched, scheduled := strings.Cut(clause, ":")
		point = strings.TrimSpace(point)
		if point == "" {
			return nil, fmt.Errorf("fault: empty point name in clause %q", clause)
		}
		if !scheduled || sched == "" || sched == "*" {
			p.Always(point)
			continue
		}
		for _, h := range strings.Split(sched, "/") {
			n, err := strconv.ParseInt(strings.TrimSpace(h), 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad hit number %q in clause %q (want a positive integer)", h, clause)
			}
			p.On(point, n)
		}
	}
	return p, nil
}

// Hit records one arrival at the named point and reports whether the
// plan injects a fault there. Nil-safe: a nil plan never fires.
func (p *Plan) Hit(point string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	r, ok := p.rules[point]
	if !ok {
		p.mu.Unlock()
		return false
	}
	p.count[point]++
	fire := r.always || r.hits[p.count[point]]
	if fire {
		p.fired[point]++
	}
	p.mu.Unlock()
	if fire {
		mInjected.Inc()
		obs.Tracef("fault: injecting %s", point)
	}
	return fire
}

// Fired returns how many faults each point has injected so far.
func (p *Plan) Fired() map[string]int64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.fired))
	for k, v := range p.fired {
		out[k] = v
	}
	return out
}

// String renders the plan's schedule (sorted, for error messages and
// test logs).
func (p *Plan) String() string {
	if p == nil {
		return "<no faults>"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	clauses := make([]string, 0, len(p.rules))
	for point, r := range p.rules {
		if r.always {
			clauses = append(clauses, point)
			continue
		}
		hits := make([]string, 0, len(r.hits))
		for h := range r.hits {
			hits = append(hits, strconv.FormatInt(h, 10))
		}
		sort.Strings(hits)
		clauses = append(clauses, point+":"+strings.Join(hits, "/"))
	}
	sort.Strings(clauses)
	return strings.Join(clauses, ",")
}

// InjectedError is the error an error-kind injection point returns, so
// chaos tests can tell injected failures from real ones with errors.As.
type InjectedError struct {
	// Point is the injection point that fired.
	Point string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s fault", e.Point)
}

// active is the process-wide plan: nil when fault injection is off —
// the common case, paid for with one atomic pointer load per Hit.
var active atomic.Pointer[Plan]

var loadEnvOnce sync.Once

// Active returns the process-wide plan (nil when no faults are armed).
// The first call parses CASA_FAULTS; a malformed spec is reported as a
// warning and ignored rather than taking the process down — the fault
// layer must never be the fault.
func Active() *Plan {
	loadEnvOnce.Do(loadEnv)
	return active.Load()
}

func loadEnv() {
	spec := os.Getenv(EnvFaults)
	if spec == "" {
		return
	}
	p, err := Parse(spec)
	if err != nil {
		obs.Warnf("ignoring malformed %s=%q: %v", EnvFaults, spec, err)
		return
	}
	active.Store(p)
}

// Set replaces the process-wide plan (nil disarms injection). Tests use
// it to arm programmatic schedules; remember to Set(nil) afterwards.
func Set(p *Plan) {
	loadEnvOnce.Do(func() {}) // a programmatic plan overrides the env
	active.Store(p)
}

// Hit is Active().Hit: one arrival at the named point.
func Hit(point string) bool { return Active().Hit(point) }

// ErrorAt returns an *InjectedError when the named point fires, nil
// otherwise. It is the one-liner for error-kind injection sites:
//
//	if err := fault.ErrorAt(fault.StreamRead); err != nil { return nil, err }
func ErrorAt(point string) error {
	if Hit(point) {
		return &InjectedError{Point: point}
	}
	return nil
}
