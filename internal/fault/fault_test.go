package fault

import (
	"errors"
	"testing"
)

func TestParseSchedules(t *testing.T) {
	p, err := Parse("cell-panic:2, stream-read:1/3 ,solver-deadline")
	if err != nil {
		t.Fatal(err)
	}

	// cell-panic fires on hit 2 only.
	got := []bool{p.Hit(CellPanic), p.Hit(CellPanic), p.Hit(CellPanic)}
	want := []bool{false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell-panic hit %d: fired=%v, want %v", i+1, got[i], want[i])
		}
	}

	// stream-read fires on hits 1 and 3.
	got = []bool{p.Hit(StreamRead), p.Hit(StreamRead), p.Hit(StreamRead), p.Hit(StreamRead)}
	want = []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stream-read hit %d: fired=%v, want %v", i+1, got[i], want[i])
		}
	}

	// solver-deadline always fires.
	for i := 0; i < 3; i++ {
		if !p.Hit(SolverDeadline) {
			t.Errorf("solver-deadline hit %d: did not fire", i+1)
		}
	}

	// An unscheduled point never fires.
	if p.Hit(MemoMiss) {
		t.Error("memo-miss fired without a schedule")
	}

	fired := p.Fired()
	if fired[CellPanic] != 1 || fired[StreamRead] != 2 || fired[SolverDeadline] != 3 {
		t.Errorf("Fired() = %v, want cell-panic=1 stream-read=2 solver-deadline=3", fired)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{":3", "stream-read:0", "stream-read:x", "stream-read:1/-2"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}

func TestNilPlanNeverFires(t *testing.T) {
	var p *Plan
	if p.Hit(CellPanic) {
		t.Fatal("nil plan fired")
	}
	if p.Fired() != nil {
		t.Fatal("nil plan reported fired points")
	}
}

func TestSetAndErrorAt(t *testing.T) {
	Set(NewPlan().On(StreamRead, 1))
	defer Set(nil)

	err := ErrorAt(StreamRead)
	if err == nil {
		t.Fatal("ErrorAt did not fire on scheduled hit")
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Point != StreamRead {
		t.Fatalf("ErrorAt returned %v, want *InjectedError for %s", err, StreamRead)
	}
	if err := ErrorAt(StreamRead); err != nil {
		t.Fatalf("ErrorAt fired past its schedule: %v", err)
	}

	Set(nil)
	if Hit(StreamRead) {
		t.Fatal("disarmed plan fired")
	}
}
