package workload

import "repro/internal/ir"

// G721 builds the g721 workload: an ITU G.721 32 kbit/s ADPCM transcoder
// modelled on Mediabench's g721 encoder/decoder pair. Code size ≈ 4.7
// kBytes across the predictor, quantizer and state-update routines of the
// real codec; the hot path is the per-sample encode/decode pipeline, whose
// routines comfortably exceed small scratchpads — the interesting regime
// for a conflict-aware allocator.
func G721() (*ir.Program, error) {
	pb := ir.NewProgramBuilder("g721")

	// Data objects: the per-channel predictor state, the quantizer
	// decision tables, the companding tables and the sample stream.
	pb.DataObject("g72x_state", 96)
	pb.DataObject("quan_tables", 48)
	pb.DataObject("wi_fi_tables", 64)
	pb.DataObject("alaw_tables", 512)
	pb.DataObject("stream_buffer", 4096)

	main := pb.Func("main")
	main.Block("entry").Code(18).Call("g721_init")
	// Sample loop: 800 samples, each transcoded (encode then decode).
	main.Block("s_head").Code(3).Call("unpack_input")
	main.Block("enc").Code(3).Call("g721_encoder")
	main.Block("dec").Code(3).Call("g721_decoder")
	main.Block("out").Code(3).Call("pack_output")
	main.Block("s_latch").Code(4).Branch("s_head", "teardown", ir.Loop{Trips: 800})
	main.Block("teardown").Code(6).Call("print_stats")
	main.Block("fin").Code(6)
	main.Block("exit").Return()

	// Cold: end-of-run statistics and usage text.
	ps := pb.Func("print_stats")
	ps.Block("entry").Code(52)
	ps.Block("fmt").Code(8).Branch("fmt", "flush", ir.Loop{Trips: 4})
	ps.Block("flush").Code(48)
	ps.Block("exit").Return()

	us := pb.Func("usage")
	us.Block("entry").Code(56)
	us.Block("lines").Code(7).Branch("lines", "done", ir.Loop{Trips: 3})
	us.Block("done").Code(12)
	us.Block("exit").Return()

	ca := pb.Func("check_args")
	ca.Block("entry").Code(20)
	ca.Block("bad").Code(3).Branch("fail", "ok", ir.Never{})
	ca.Block("fail").Code(4).Call("usage")
	ca.Block("ok").Code(18)
	ca.Block("exit").Return()

	// µ-law companding pair: present in the binary for the -u option,
	// unused in this A-law run — cold cache pressure like the real codec.
	l2u := pb.Func("linear2ulaw")
	l2u.Block("entry").Code(9)
	l2u.Block("bias").Code(8)
	l2u.Block("seg").Code(4).Branch("seg", "mant", ir.Loop{Trips: 5})
	l2u.Block("mant").Code(12)
	l2u.Block("exit").Return()

	u2l := pb.Func("ulaw2linear")
	u2l.Block("entry").Code(8)
	u2l.Block("expand").Code(13)
	u2l.Block("exit").Return()

	// Sample I/O: bit unpacking and packing around the transcoder.
	ui := pb.Func("unpack_input")
	ui.Block("entry").Code(6)
	ui.Block("need").Code(2).Branch("fill", "take", ir.Pattern{Seq: []bool{true, false, false, false}})
	ui.Block("fill").Code(9)
	ui.Block("take").Code(7).Data("stream_buffer", 1, 0)
	ui.Block("exit").Return()

	po := pb.Func("pack_output")
	po.Block("entry").Code(6)
	po.Block("full").Code(2).Branch("flush", "buf", ir.Pattern{Seq: []bool{false, false, false, true}})
	po.Block("flush").Code(8)
	po.Block("buf").Code(6).Data("stream_buffer", 0, 1)
	po.Block("exit").Return()

	enc := pb.Func("g721_encoder")
	enc.Block("entry").Code(14)
	enc.Block("pz").Code(2).Call("predictor_zero")
	enc.Block("pp").Code(3).Call("predictor_pole")
	enc.Block("se").Code(8)
	enc.Block("step").Code(2).Call("step_size")
	enc.Block("quant").Code(3).Call("quantize")
	enc.Block("upd").Code(3).Call("update")
	enc.Block("pack").Code(9)
	enc.Block("exit").Return()

	dec := pb.Func("g721_decoder")
	dec.Block("entry").Code(12)
	dec.Block("pz").Code(2).Call("predictor_zero")
	dec.Block("pp").Code(3).Call("predictor_pole")
	dec.Block("se").Code(7)
	dec.Block("step").Code(2).Call("step_size")
	dec.Block("rec").Code(3).Call("reconstruct")
	dec.Block("upd").Code(3).Call("update")
	dec.Block("tand").Code(3).Call("tandem_adjust")
	dec.Block("out").Code(7)
	dec.Block("exit").Return()

	// predictor_zero: sixth-order FIR over the delta history — six fmult
	// calls in an unrolled-by-one loop.
	pz := pb.Func("predictor_zero")
	pz.Block("entry").Code(6)
	pz.Block("tap").Code(4).Call("fmult")
	pz.Block("acc").Code(5).Branch("tap", "done", ir.Loop{Trips: 6})
	pz.Block("done").Code(4)
	pz.Block("exit").Return()

	// predictor_pole: second-order IIR — two fmult calls.
	pp := pb.Func("predictor_pole")
	pp.Block("entry").Code(5)
	pp.Block("tap").Code(4).Call("fmult")
	pp.Block("acc").Code(4).Branch("tap", "done", ir.Loop{Trips: 2})
	pp.Block("done").Code(3)
	pp.Block("exit").Return()

	// fmult: floating-point-ish multiply in fixed point: convert both
	// operands to exponent/mantissa form, multiply, convert back.
	fm := pb.Func("fmult")
	fm.Block("entry").Code(7)
	fm.Block("l1").Code(2).Call("g_log")
	fm.Block("l2").Code(2).Call("g_log")
	fm.Block("norm").Code(4).Branch("norm", "mul", ir.Loop{Trips: 3})
	fm.Block("mul").Code(11).Data("g72x_state", 1, 0)
	fm.Block("back").Code(2).Call("g_exp")
	fm.Block("exit").Return()

	// g_log: linear to exponent/mantissa conversion (priority encoder
	// modelled as a shift loop).
	gl := pb.Func("g_log")
	gl.Block("entry").Code(6)
	gl.Block("shift").Code(3).Branch("shift", "mant", ir.Loop{Trips: 4})
	gl.Block("mant").Code(9)
	gl.Block("exit").Return()

	// g_exp: exponent/mantissa back to linear.
	ge := pb.Func("g_exp")
	ge.Block("entry").Code(8)
	ge.Block("scale").Code(7)
	ge.Block("exit").Return()

	// step_size: scale factor interpolation with a fast/slow blend.
	ss := pb.Func("step_size")
	ss.Block("entry").Code(9)
	ss.Block("blend").Code(3).Branch("fast", "slow", ir.Pattern{Seq: []bool{true, false, false, false}})
	ss.Block("slow").Code(8).Jump("mix")
	ss.Block("fast").Code(6)
	ss.Block("mix").Code(10)
	ss.Block("exit").Return()

	// quantize: log-domain compare against the quantizer table via quan.
	qt := pb.Func("quantize")
	qt.Block("entry").Code(10)
	qt.Block("log").Code(2).Call("g_log")
	qt.Block("sub").Code(9)
	qt.Block("scan").Code(2).Call("quan")
	qt.Block("found").Code(8)
	qt.Block("exit").Return()

	// quan: table search — compare against the 7-entry decision table.
	qn := pb.Func("quan")
	qn.Block("entry").Code(5)
	qn.Block("cmp").Code(6).Data("quan_tables", 1, 0).Branch("cmp", "hit", ir.Loop{Trips: 4})
	qn.Block("hit").Code(5)
	qn.Block("exit").Return()

	// reconstruct: inverse quantization in the decoder.
	rc := pb.Func("reconstruct")
	rc.Block("entry").Code(8)
	rc.Block("sgn").Code(2).Branch("neg", "pos", ir.Pattern{Seq: []bool{false, true}})
	rc.Block("pos").Code(6).Jump("done")
	rc.Block("neg").Code(7)
	rc.Block("done").Code(5)
	rc.Block("exit").Return()

	// update: the big state-update routine of G.721 — tone detection,
	// predictor coefficient adaptation (a/b updates over the history
	// loop), delayed approximation shifts.
	up := pb.Func("update")
	up.Block("entry").Code(12).Data("g72x_state", 3, 1).Data("wi_fi_tables", 1, 0)
	up.Block("tone").Code(4).Branch("reset", "adapt", ir.Pattern{Seq: []bool{false, false, false, false, false, false, false, true}})
	up.Block("reset").Code(9).Jump("bloop")
	up.Block("adapt").Code(14)
	up.Block("bloop").Code(4).Call("update_b")
	up.Block("blat").Code(3).Branch("bloop", "aupd", ir.Loop{Trips: 6})
	up.Block("aupd").Code(4).Call("update_a")
	up.Block("shift").Code(3).Call("shift_history")
	up.Block("trig").Code(4).Call("trans_detect")
	up.Block("fin").Code(5)
	up.Block("exit").Return()

	// trans_detect: tone-transition detector gating predictor resets.
	td := pb.Func("trans_detect")
	td.Block("entry").Code(10)
	td.Block("power").Code(12)
	td.Block("chk").Code(3).Branch("hit", "miss", ir.Pattern{Seq: []bool{false, false, false, false, false, true}})
	td.Block("hit").Code(6).Jump("out")
	td.Block("miss").Code(4)
	td.Block("out").Code(5)
	td.Block("exit").Return()

	// update_b: sixth-order predictor zero-coefficient adaptation step.
	ub := pb.Func("update_b")
	ub.Block("entry").Code(9)
	ub.Block("sgn").Code(2).Branch("bneg", "bpos", ir.Pattern{Seq: []bool{true, false, false}})
	ub.Block("bpos").Code(8).Jump("leak")
	ub.Block("bneg").Code(8)
	ub.Block("leak").Code(11).Data("g72x_state", 1, 1)
	ub.Block("exit").Return()

	// update_a: second-order pole-coefficient adaptation with stability
	// clamps.
	ua := pb.Func("update_a")
	ua.Block("entry").Code(12)
	ua.Block("a2").Code(14)
	ua.Block("clamp2").Code(3).Branch("c2", "a1", ir.Pattern{Seq: []bool{false, false, false, true}})
	ua.Block("c2").Code(4)
	ua.Block("a1").Code(12)
	ua.Block("clamp1").Code(3).Branch("c1", "out", ir.Pattern{Seq: []bool{false, true, false}})
	ua.Block("c1").Code(4)
	ua.Block("out").Code(6)
	ua.Block("exit").Return()

	// shift_history: age the delta and reconstructed-signal histories.
	sh := pb.Func("shift_history")
	sh.Block("entry").Code(6)
	sh.Block("dq").Code(5).Branch("dq", "sr", ir.Loop{Trips: 5})
	sh.Block("sr").Code(9)
	sh.Block("exit").Return()

	// tandem_adjust: A-law tandem adjustment on decoder output — convert
	// to A-law, compare, nudge, convert back.
	ta := pb.Func("tandem_adjust")
	ta.Block("entry").Code(8)
	ta.Block("a1").Code(2).Call("linear2alaw")
	ta.Block("cmp").Code(3).Branch("adj", "keep", ir.Pattern{Seq: []bool{false, false, true}})
	ta.Block("keep").Code(4).Jump("done")
	ta.Block("adj").Code(7).Call("alaw2linear")
	ta.Block("done").Code(4)
	ta.Block("exit").Return()

	// linear2alaw: segment search plus mantissa extraction.
	l2a := pb.Func("linear2alaw")
	l2a.Block("entry").Code(7)
	l2a.Block("abs").Code(2).Branch("lneg", "lpos", ir.Pattern{Seq: []bool{false, true}})
	l2a.Block("lpos").Code(4).Jump("seg")
	l2a.Block("lneg").Code(5)
	l2a.Block("seg").Code(4).Branch("seg", "mant", ir.Loop{Trips: 4})
	l2a.Block("mant").Code(10).Data("alaw_tables", 1, 0)
	l2a.Block("exit").Return()

	// alaw2linear: table-free expansion.
	a2l := pb.Func("alaw2linear")
	a2l.Block("entry").Code(9)
	a2l.Block("expand").Code(12)
	a2l.Block("exit").Return()

	// Cold support code: table initialization and option parsing, executed
	// once — realistic dead weight for the I-cache image.
	init := pb.Func("g721_init")
	init.Block("entry").Code(42).Call("check_args")
	init.Block("tbl").Code(9).Branch("tbl", "state", ir.Loop{Trips: 8})
	init.Block("state").Code(26)
	init.Block("opts").Code(34)
	init.Block("exit").Return()

	return pb.Build()
}
