package workload

import (
	"fmt"

	"repro/internal/ir"
)

// RandomSpec parameterizes the random program generator.
type RandomSpec struct {
	// Seed drives every random choice; equal seeds give equal programs.
	Seed uint64
	// Funcs is the number of functions (≥ 1).
	Funcs int
	// SegmentsPerFunc bounds the structured segments per function body.
	SegmentsPerFunc int
	// MaxTrips bounds loop trip counts (≥ 1).
	MaxTrips int
	// MaxBlockInstrs bounds straight-line block sizes (≥ 1).
	MaxBlockInstrs int
}

func (s RandomSpec) withDefaults() RandomSpec {
	if s.Funcs < 1 {
		s.Funcs = 4
	}
	if s.SegmentsPerFunc < 1 {
		s.SegmentsPerFunc = 5
	}
	if s.MaxTrips < 1 {
		s.MaxTrips = 12
	}
	if s.MaxBlockInstrs < 1 {
		s.MaxBlockInstrs = 12
	}
	return s
}

// Random generates a structurally valid, always-terminating random program
// for property tests: each function is a linear chain of segments
// (straight code, counted loops, diamonds, or calls to strictly
// later-indexed functions, which rules out recursion).
func Random(spec RandomSpec) (*ir.Program, error) {
	spec = spec.withDefaults()
	rng := spec.Seed*0x9e3779b97f4a7c15 + 1
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}

	pb := ir.NewProgramBuilder(fmt.Sprintf("random-%d", spec.Seed))
	names := make([]string, spec.Funcs)
	for i := range names {
		if i == 0 {
			names[i] = "main"
		} else {
			names[i] = fmt.Sprintf("f%d", i)
		}
	}
	for i, name := range names {
		f := pb.Func(name)
		segs := 1 + next(spec.SegmentsPerFunc)
		label := 0
		lbl := func(prefix string) string {
			label++
			return fmt.Sprintf("%s%d", prefix, label)
		}
		f.Block(lbl("entry")).Code(1 + next(spec.MaxBlockInstrs))
		for s := 0; s < segs; s++ {
			switch next(4) {
			case 0: // straight code
				f.Block(lbl("code")).Code(1 + next(spec.MaxBlockInstrs))
			case 1: // counted loop
				head := lbl("loop")
				cont := lbl("cont")
				f.Block(head).Code(1+next(spec.MaxBlockInstrs)).
					Branch(head, cont, ir.Loop{Trips: 1 + next(spec.MaxTrips)})
				f.Block(cont).Code(1 + next(spec.MaxBlockInstrs/2+1))
			case 2: // diamond
				thenL, elseL, join := lbl("then"), lbl("else"), lbl("join")
				f.Block(lbl("cond")).Code(1+next(4)).
					Branch(thenL, elseL, ir.Pattern{Seq: randomPattern(next)})
				f.Block(elseL).Code(1 + next(spec.MaxBlockInstrs)).Goto(join)
				f.Block(thenL).Code(1 + next(spec.MaxBlockInstrs)).Goto(join)
				f.Block(join).Code(1 + next(3))
			case 3: // call a later function (no recursion possible)
				if i+1 < spec.Funcs {
					callee := names[i+1+next(spec.Funcs-i-1)]
					f.Block(lbl("call")).Code(1 + next(4)).Call(callee)
					f.Block(lbl("resume")).Code(1 + next(4))
				} else {
					f.Block(lbl("code")).Code(1 + next(spec.MaxBlockInstrs))
				}
			}
		}
		f.Block(lbl("exit")).Return()
	}
	return pb.Build()
}

func randomPattern(next func(int) int) []bool {
	n := 2 + next(5)
	seq := make([]bool, n)
	for i := range seq {
		seq[i] = next(2) == 1
	}
	return seq
}
