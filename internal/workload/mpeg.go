package workload

import "repro/internal/ir"

// MPEG builds the mpeg workload: an MPEG-2 style video decoder modelled on
// Mediabench's mpeg2decode. Code size ≈ 19.5 kBytes. The decode pipeline —
// VLC coefficient parsing, dequantization, 2-D IDCT, motion compensation,
// block reconstruction — dominates execution, while the large header
// parsers, system-stream demuxer, error concealment and display conversion
// routines are cold or once-per-frame, matching the real decoder's
// profile: several distinct hot spots whose working sets contend for a
// small I-cache.
//
// Hot straight-line runs are kept in blocks of at most ~28 instructions so
// trace formation can build scratchpad-placeable traces even for the
// paper's smallest configurations.
func MPEG() (*ir.Program, error) {
	pb := ir.NewProgramBuilder("mpeg")

	// Data objects: the 64-coefficient block buffer, the quantizer
	// matrices, the VLC decode tables, the zigzag scan order and the
	// frame stores (far too large for any scratchpad).
	pb.DataObject("block_buffer", 128)
	pb.DataObject("quant_matrices", 128)
	pb.DataObject("vlc_tables", 2048)
	pb.DataObject("scan_order", 64)
	pb.DataObject("frame_store", 65536)

	// ---- Driver --------------------------------------------------------
	main := pb.Func("main")
	main.Block("entry").Code(16).Call("options")
	main.Block("init").Code(4).Call("initialize_decoder")
	main.Block("seq").Code(4).Call("decode_sequence")
	main.Block("teardown").Code(14)
	main.Block("exit").Return()

	seq := pb.Func("decode_sequence")
	seq.Block("entry").Code(8).Call("parse_sequence_header")
	// Frame loop: 2 pictures per run.
	seq.Block("f_head").Code(5).Call("parse_gop_header")
	seq.Block("f_ph").Code(3).Call("parse_picture_header")
	seq.Block("f_pic").Code(3).Call("decode_picture")
	seq.Block("f_store").Code(3).Call("store_frame")
	seq.Block("f_latch").Code(4).Branch("f_head", "pulldown", ir.Loop{Trips: 2})
	// 3:2 pulldown substitution for repeat-first-field streams.
	seq.Block("pulldown").Code(2).Branch("rff", "done", ir.Never{})
	seq.Block("rff").Code(2).CallResume("substitute_frame", "done")
	seq.Block("done").Code(6)
	seq.Block("exit").Return()

	pic := pb.Func("decode_picture")
	pic.Block("entry").Code(10)
	// Field pictures take a separate path; this stream is frame-coded.
	pic.Block("fchk").Code(2).Branch("field", "s_head", ir.Never{})
	pic.Block("field").Code(2).CallResume("decode_field_picture", "done")
	// Slice loop: 6 slices per picture.
	pic.Block("s_head").Code(5).Call("decode_slice")
	pic.Block("s_latch").Code(4).Branch("s_head", "done", ir.Loop{Trips: 6})
	pic.Block("done").Code(7)
	pic.Block("exit").Return()

	slice := pb.Func("decode_slice")
	slice.Block("entry").Code(8).Call("get_mb_addr_inc")
	// Broken bitstream path — present, never taken on a clean stream.
	slice.Block("chk").Code(2).Branch("err", "mb_head", ir.Never{})
	slice.Block("err").Code(3).CallResume("resync", "done")
	// Macroblock loop: 12 macroblocks per slice.
	slice.Block("mb_head").Code(5).Call("decode_macroblock")
	slice.Block("mb_latch").Code(5).Branch("mb_head", "done", ir.Loop{Trips: 12})
	slice.Block("done").Code(6)
	slice.Block("exit").Return()

	// ---- Macroblock layer ----------------------------------------------
	mb := pb.Func("decode_macroblock")
	mb.Block("entry").Code(9).Call("get_mb_type")
	mb.Block("modes").Code(3).Call("macroblock_modes")
	// Intra/inter split: 1 in 4 macroblocks is intra.
	mb.Block("mode").Code(3).Branch("intra", "inter", ir.Pattern{Seq: []bool{true, false, false, false}})

	// Inter path: motion vectors, compensation, coded-block-pattern gated
	// residual blocks.
	mb.Block("inter").Code(4).Call("motion_vectors")
	mb.Block("mc").Code(3).Call("motion_compensate")
	mb.Block("cbp").Code(3).Call("get_cbp")
	// One macroblock in six has an all-zero coded block pattern.
	mb.Block("cchk").Code(2).Branch("skip", "ib_head",
		ir.Pattern{Seq: []bool{false, false, false, false, false, true}})
	mb.Block("ib_head").Code(4).Call("decode_block")
	mb.Block("ib_dq").Code(2).Call("dequantize")
	mb.Block("ib_idct").Code(2).Call("idct")
	mb.Block("ib_add").Code(2).Call("add_block")
	mb.Block("ib_latch").Code(4).Branch("ib_head", "done", ir.Loop{Trips: 6})
	mb.Block("skip").Code(2).CallResume("skipped_macroblock", "done")

	// Intra path: DC predictors plus intra block decode.
	mb.Block("intra").Code(5)
	mb.Block("na_head").Code(3).Call("get_dc_luma")
	mb.Block("na_dc2").Code(2).Call("get_dc_chroma")
	mb.Block("na_blk").Code(3).Call("decode_intra_block")
	mb.Block("na_dq").Code(2).Call("dequant_intra")
	mb.Block("na_idct").Code(2).Call("idct")
	mb.Block("na_add").Code(2).Call("add_block")
	mb.Block("na_latch").Code(4).Branch("na_head", "done", ir.Loop{Trips: 6})

	mb.Block("done").Code(6)
	mb.Block("exit").Return()

	mm := pb.Func("macroblock_modes")
	mm.Block("entry").Code(10)
	mm.Block("quant").Code(3).Branch("qscale", "dct_type", ir.Pattern{Seq: []bool{true, false, false}})
	mm.Block("qscale").Code(7).Call("get_bits")
	mm.Block("dct_type").Code(9)
	mm.Block("exit").Return()

	// ---- VLC layer -------------------------------------------------------
	gb := pb.Func("get_bits")
	gb.Block("entry").Code(6)
	// Refill the bit buffer every fourth call.
	gb.Block("chk").Code(2).Branch("refill", "extract", ir.Pattern{Seq: []bool{false, false, false, true}})
	gb.Block("refill").Code(7)
	gb.Block("extract").Code(6)
	gb.Block("exit").Return()

	mba := pb.Func("get_mb_addr_inc")
	mba.Block("entry").Code(8).Call("get_bits")
	mba.Block("short").Code(3).Branch("long", "lut", ir.Pattern{Seq: []bool{false, false, false, true}})
	mba.Block("long").Code(14).Call("get_bits")
	mba.Block("lut").Code(22)
	mba.Block("escape").Code(3).Branch("more", "out", ir.Never{})
	mba.Block("more").Code(12).Jump("out")
	mba.Block("out").Code(9)
	mba.Block("exit").Return()

	mbt := pb.Func("get_mb_type")
	mbt.Block("entry").Code(7).Call("get_bits")
	mbt.Block("tbl").Code(20)
	mbt.Block("ext").Code(3).Branch("long", "out", ir.Pattern{Seq: []bool{false, false, true}})
	mbt.Block("long").Code(16).Call("get_bits")
	mbt.Block("out").Code(11)
	mbt.Block("exit").Return()

	cbp := pb.Func("get_cbp")
	cbp.Block("entry").Code(7).Call("get_bits")
	cbp.Block("lut").Code(24)
	cbp.Block("rare").Code(3).Branch("long", "out", ir.Pattern{Seq: []bool{false, false, false, false, true}})
	cbp.Block("long").Code(18).Call("get_bits")
	cbp.Block("out").Code(12)
	cbp.Block("exit").Return()

	mvv := pb.Func("get_mv_vlc")
	mvv.Block("entry").Code(7).Call("get_bits")
	mvv.Block("code").Code(18)
	mvv.Block("resid").Code(3).Branch("long", "out", ir.Pattern{Seq: []bool{true, false}})
	mvv.Block("long").Code(14).Call("get_bits")
	mvv.Block("out").Code(10)
	mvv.Block("exit").Return()

	dcl := pb.Func("get_dc_luma")
	dcl.Block("entry").Code(6).Call("get_bits")
	dcl.Block("size").Code(16)
	dcl.Block("diff").Code(3).Branch("read", "out", ir.Pattern{Seq: []bool{true, true, false}})
	dcl.Block("read").Code(9).Call("get_bits")
	dcl.Block("out").Code(8)
	dcl.Block("exit").Return()

	dcc := pb.Func("get_dc_chroma")
	dcc.Block("entry").Code(6).Call("get_bits")
	dcc.Block("size").Code(14)
	dcc.Block("diff").Code(3).Branch("read", "out", ir.Pattern{Seq: []bool{true, false}})
	dcc.Block("read").Code(8).Call("get_bits")
	dcc.Block("out").Code(7)
	dcc.Block("exit").Return()

	dct := pb.Func("get_dct_coeff")
	dct.Block("entry").Code(6).Call("get_bits")
	dct.Block("lut1").Code(14).Data("vlc_tables", 1, 0)
	dct.Block("hit1").Code(3).Branch("decode", "lut2", ir.Pattern{Seq: []bool{true, true, true, false}})
	dct.Block("lut2").Code(16).Call("get_bits")
	dct.Block("decode").Code(12)
	// Escape coding: one coefficient in 16 takes the 24-bit escape path.
	dct.Block("esc").Code(3).Branch("escape", "sign", ir.Pattern{Seq: []bool{
		false, false, false, false, false, false, false, false,
		false, false, false, false, false, false, false, true}})
	dct.Block("escape").Code(17).Call("get_bits")
	dct.Block("sign").Code(9)
	dct.Block("exit").Return()

	// ---- Block layer -----------------------------------------------------
	blk := pb.Func("decode_block")
	blk.Block("entry").Code(10).Call("clear_block")
	// Coefficient VLC loop: ~14 coefficients before end-of-block.
	blk.Block("coef").Code(5).Call("get_dct_coeff")
	blk.Block("run").Code(11)
	blk.Block("store").Code(8).Data("block_buffer", 0, 1).Data("scan_order", 1, 0)
	blk.Block("c_latch").Code(3).Branch("coef", "eob", ir.Loop{Trips: 14})
	blk.Block("eob").Code(9)
	blk.Block("exit").Return()

	iblk := pb.Func("decode_intra_block")
	iblk.Block("entry").Code(12).Call("clear_block")
	iblk.Block("dcterm").Code(14)
	// Intra AC loop: ~18 coefficients.
	iblk.Block("coef").Code(5).Call("get_dct_coeff")
	iblk.Block("scan").Code(13)
	iblk.Block("store").Code(9).Data("block_buffer", 0, 1).Data("scan_order", 1, 0)
	iblk.Block("c_latch").Code(3).Branch("coef", "eob", ir.Loop{Trips: 18})
	iblk.Block("eob").Code(10)
	iblk.Block("exit").Return()

	clr := pb.Func("clear_block")
	clr.Block("entry").Code(4)
	clr.Block("zero").Code(9).Branch("zero", "done", ir.Loop{Trips: 4})
	clr.Block("done").Code(3)
	clr.Block("exit").Return()

	dq := pb.Func("dequantize")
	dq.Block("entry").Code(8)
	// 64 coefficients, unrolled by 4: 16 iterations.
	dq.Block("q_loop").Code(11).Data("block_buffer", 2, 2).Data("quant_matrices", 2, 0).Branch("q_loop", "mismatch", ir.Loop{Trips: 16})
	dq.Block("mismatch").Code(9)
	dq.Block("exit").Return()

	dqi := pb.Func("dequant_intra")
	dqi.Block("entry").Code(9)
	dqi.Block("q_loop").Code(12).Data("block_buffer", 2, 2).Data("quant_matrices", 2, 0).Branch("q_loop", "dc", ir.Loop{Trips: 16})
	dqi.Block("dc").Code(10)
	dqi.Block("exit").Return()

	// ---- IDCT ------------------------------------------------------------
	idct := pb.Func("idct")
	idct.Block("entry").Code(6)
	idct.Block("rows").Code(3).Call("idct_row")
	idct.Block("r_latch").Code(3).Branch("rows", "cols", ir.Loop{Trips: 8})
	idct.Block("cols").Code(3).Call("idct_col")
	idct.Block("c_latch").Code(3).Branch("cols", "done", ir.Loop{Trips: 8})
	idct.Block("done").Code(4)
	idct.Block("exit").Return()

	row := pb.Func("idct_row")
	row.Block("entry").Code(8)
	// Shortcut: all-zero AC rows (about half) take the fast path.
	row.Block("zchk").Code(3).Branch("fast", "stage1", ir.Pattern{Seq: []bool{true, false}})
	row.Block("fast").Code(6).Jump("out")
	// Butterfly stages kept in small blocks for trace formation.
	row.Block("stage1").Code(22).Data("block_buffer", 4, 2)
	row.Block("stage2").Code(20)
	row.Block("stage3").Code(18)
	row.Block("out").Code(6)
	row.Block("exit").Return()

	col := pb.Func("idct_col")
	col.Block("entry").Code(8)
	col.Block("stage1").Code(24).Data("block_buffer", 4, 2)
	col.Block("stage2").Code(22)
	col.Block("stage3").Code(18)
	col.Block("sat").Code(4).Call("saturate")
	col.Block("exit").Return()

	sat := pb.Func("saturate")
	sat.Block("entry").Code(4)
	sat.Block("chk").Code(2).Branch("clip", "ok", ir.Pattern{Seq: []bool{false, false, false, false, false, true}})
	sat.Block("clip").Code(4)
	sat.Block("ok").Code(3)
	sat.Block("exit").Return()

	// ---- Motion compensation / reconstruction -----------------------------
	mv := pb.Func("motion_vectors")
	mv.Block("entry").Code(8)
	// Horizontal and vertical components.
	mv.Block("comp").Code(4).Call("decode_mv")
	mv.Block("c_latch").Code(3).Branch("comp", "dpchk", ir.Loop{Trips: 2})
	// Dual-prime arithmetic applies only to P-field pictures.
	mv.Block("dpchk").Code(2).Branch("dprime", "clip", ir.Never{})
	mv.Block("dprime").Code(2).CallResume("dual_prime_vectors", "clip")
	mv.Block("clip").Code(10)
	mv.Block("exit").Return()

	dmv := pb.Func("decode_mv")
	dmv.Block("entry").Code(7).Call("get_mv_vlc")
	dmv.Block("pred").Code(12)
	dmv.Block("wrap").Code(3).Branch("fix", "out", ir.Pattern{Seq: []bool{false, false, false, true}})
	dmv.Block("fix").Code(6)
	dmv.Block("out").Code(8)
	dmv.Block("exit").Return()

	mc := pb.Func("motion_compensate")
	mc.Block("entry").Code(10)
	// Half-pel interpolation selection: full / horizontal / vertical /
	// both, roughly uniform.
	mc.Block("sel_h").Code(3).Branch("has_h", "no_h", ir.Pattern{Seq: []bool{true, false}})
	mc.Block("no_h").Code(2).Branch("pred_v", "pred_full", ir.Pattern{Seq: []bool{true, false}})
	mc.Block("pred_full").Code(3).CallResume("form_pred_fullpel", "done")
	mc.Block("pred_v").Code(3).CallResume("form_pred_half_v", "done")
	mc.Block("has_h").Code(2).Branch("pred_hv", "pred_h", ir.Pattern{Seq: []bool{true, false}})
	mc.Block("pred_h").Code(3).CallResume("form_pred_half_h", "done")
	mc.Block("pred_hv").Code(3).CallResume("form_pred_half_hv", "done")
	// B-frame macroblocks average the forward and backward predictions
	// (roughly one inter macroblock in three).
	mc.Block("done").Code(3).Branch("bavg", "out", ir.Pattern{Seq: []bool{false, true, false}})
	mc.Block("bavg").Code(3).Call("form_pred_average")
	mc.Block("out").Code(4)
	mc.Block("exit").Return()

	fpa := pb.Func("form_pred_average")
	fpa.Block("entry").Code(10)
	fpa.Block("p_loop").Code(15).Branch("p_loop", "edge", ir.Loop{Trips: 16})
	fpa.Block("edge").Code(11)
	fpa.Block("exit").Return()

	smb := pb.Func("skipped_macroblock")
	smb.Block("entry").Code(14)
	smb.Block("reset").Code(12)
	smb.Block("copy").Code(10).Branch("copy", "done", ir.Loop{Trips: 4})
	smb.Block("done").Code(8)
	smb.Block("exit").Return()

	fpf := pb.Func("form_pred_fullpel")
	fpf.Block("entry").Code(8)
	fpf.Block("p_loop").Code(11).Data("frame_store", 2, 1).Branch("p_loop", "edge", ir.Loop{Trips: 16})
	fpf.Block("edge").Code(8)
	fpf.Block("exit").Return()

	fph := pb.Func("form_pred_half_h")
	fph.Block("entry").Code(9)
	fph.Block("p_loop").Code(14).Branch("p_loop", "edge", ir.Loop{Trips: 16})
	fph.Block("edge").Code(9)
	fph.Block("exit").Return()

	fpv := pb.Func("form_pred_half_v")
	fpv.Block("entry").Code(9)
	fpv.Block("p_loop").Code(14).Branch("p_loop", "edge", ir.Loop{Trips: 16})
	fpv.Block("edge").Code(9)
	fpv.Block("exit").Return()

	fphv := pb.Func("form_pred_half_hv")
	fphv.Block("entry").Code(10)
	fphv.Block("p_loop").Code(18).Branch("p_loop", "edge", ir.Loop{Trips: 16})
	fphv.Block("edge").Code(10)
	fphv.Block("exit").Return()

	ab := pb.Func("add_block")
	ab.Block("entry").Code(7)
	// 8 rows of 8 pels, unrolled by row.
	ab.Block("row").Code(10).Data("block_buffer", 2, 0).Data("frame_store", 2, 2).Branch("row", "done", ir.Loop{Trips: 8})
	ab.Block("done").Code(5)
	ab.Block("exit").Return()

	// ---- Output ------------------------------------------------------------
	sf := pb.Func("store_frame")
	sf.Block("entry").Code(8).Call("reorder_frames")
	sf.Block("conv").Code(3).Call("conv420to422")
	sf.Block("c444").Code(3).Call("conv422to444")
	sf.Block("wr").Code(3).Call("write_ppm")
	sf.Block("done").Code(8)
	sf.Block("exit").Return()

	c422 := pb.Func("conv420to422")
	c422.Block("entry").Code(12)
	c422.Block("col").Code(16).Branch("col", "tail", ir.Loop{Trips: 16})
	c422.Block("tail").Code(14)
	c422.Block("bot").Code(18)
	c422.Block("exit").Return()

	c444 := pb.Func("conv422to444")
	c444.Block("entry").Code(12)
	c444.Block("row").Code(15).Branch("row", "tail", ir.Loop{Trips: 16})
	c444.Block("tail").Code(14)
	c444.Block("edge").Code(17)
	c444.Block("exit").Return()

	wp := pb.Func("write_ppm")
	wp.Block("entry").Code(18)
	wp.Block("hdr").Code(12)
	wp.Block("pix").Code(14).Branch("pix", "dith", ir.Loop{Trips: 12})
	wp.Block("dith").Code(3).Call("dither")
	wp.Block("timing").Code(3).Call("display_timing")
	wp.Block("flush").Code(16)
	wp.Block("exit").Return()

	di := pb.Func("dither")
	di.Block("entry").Code(14)
	di.Block("kern").Code(16).Branch("kern", "clamp", ir.Loop{Trips: 8})
	di.Block("clamp").Code(13)
	di.Block("tbl").Code(12)
	di.Block("exit").Return()

	// ---- Cold code: headers, system stream, tables, errors ------------------
	ini := pb.Func("initialize_decoder")
	ini.Block("entry").Code(26).Call("init_vlc_tables")
	ini.Block("idct0").Code(3).Call("idct_init")
	ini.Block("clip0").Code(3).Call("clip_init")
	ini.Block("alloc").Code(11).Branch("alloc", "bufs", ir.Loop{Trips: 6})
	ini.Block("bufs").Code(24)
	ini.Block("clr").Code(22)
	ini.Block("exit").Return()

	ivt := pb.Func("init_vlc_tables")
	ivt.Block("entry").Code(22)
	ivt.Block("t1").Code(12).Branch("t1", "t2pre", ir.Loop{Trips: 8})
	ivt.Block("t2pre").Code(16)
	ivt.Block("t2").Code(11).Branch("t2", "t3pre", ir.Loop{Trips: 8})
	ivt.Block("t3pre").Code(15)
	ivt.Block("t3").Code(12).Branch("t3", "mirror", ir.Loop{Trips: 6})
	ivt.Block("mirror").Code(50)
	ivt.Block("scanord").Code(48)
	ivt.Block("exit").Return()

	opt := pb.Func("options")
	opt.Block("entry").Code(24)
	opt.Block("arg").Code(9).Branch("arg", "check", ir.Loop{Trips: 3})
	opt.Block("check").Code(20)
	opt.Block("bad").Code(3).Branch("usage", "paths", ir.Never{})
	opt.Block("usage").Code(50).Jump("paths")
	opt.Block("paths").Code(22)
	opt.Block("verify").Code(18)
	opt.Block("exit").Return()

	sh := pb.Func("parse_sequence_header")
	sh.Block("entry").Code(24)
	sh.Block("dims").Code(22)
	sh.Block("rate").Code(16)
	sh.Block("matrix").Code(3).Branch("load_mtx", "flags", ir.Pattern{Seq: []bool{true}})
	sh.Block("load_mtx").Code(9).Branch("load_mtx", "flags", ir.Loop{Trips: 8})
	sh.Block("flags").Code(14)
	sh.Block("ext").Code(3).Call("sequence_extension")
	sh.Block("disp").Code(3).Call("seq_display_extension")
	sh.Block("done").Code(10)
	sh.Block("exit").Return()

	se := pb.Func("sequence_extension")
	se.Block("entry").Code(20)
	se.Block("profile").Code(18)
	se.Block("chroma").Code(16)
	se.Block("lowdelay").Code(14)
	se.Block("frext").Code(14)
	se.Block("exit").Return()

	sde := pb.Func("seq_display_extension")
	sde.Block("entry").Code(18)
	sde.Block("colordesc").Code(3).Branch("cd", "size", ir.Pattern{Seq: []bool{true}})
	sde.Block("cd").Code(16)
	sde.Block("size").Code(14)
	sde.Block("done").Code(12)
	sde.Block("exit").Return()

	qme := pb.Func("quant_matrix_extension")
	qme.Block("entry").Code(16)
	qme.Block("intra").Code(3).Branch("li", "nonintra", ir.Pattern{Seq: []bool{true}})
	qme.Block("li").Code(10).Branch("li", "nonintra", ir.Loop{Trips: 8})
	qme.Block("nonintra").Code(3).Branch("lni", "done", ir.Pattern{Seq: []bool{true}})
	qme.Block("lni").Code(10).Branch("lni", "done", ir.Loop{Trips: 8})
	qme.Block("done").Code(9)
	qme.Block("exit").Return()

	pce := pb.Func("picture_coding_extension")
	pce.Block("entry").Code(22)
	pce.Block("fcodes").Code(18)
	pce.Block("flags1").Code(16)
	pce.Block("flags2").Code(16)
	pce.Block("structchk").Code(14)
	pce.Block("composite").Code(3).Branch("cmp", "done", ir.Pattern{Seq: []bool{false}})
	pce.Block("cmp").Code(12)
	pce.Block("done").Code(9)
	pce.Block("exit").Return()

	cre := pb.Func("copyright_extension")
	cre.Block("entry").Code(20)
	cre.Block("ids").Code(22)
	cre.Block("exit").Return()

	ud := pb.Func("user_data")
	ud.Block("entry").Code(14)
	ud.Block("skip").Code(6).Branch("skip", "done", ir.Loop{Trips: 4})
	ud.Block("done").Code(8)
	ud.Block("exit").Return()

	gop := pb.Func("parse_gop_header")
	gop.Block("entry").Code(20)
	gop.Block("timecode").Code(18)
	gop.Block("flags").Code(12)
	gop.Block("user").Code(3).Branch("u", "done", ir.Pattern{Seq: []bool{false}})
	gop.Block("u").Code(4).Call("user_data")
	gop.Block("done").Code(8)
	gop.Block("exit").Return()

	ph := pb.Func("parse_picture_header")
	ph.Block("entry").Code(20)
	ph.Block("type").Code(16)
	ph.Block("vbv").Code(12)
	ph.Block("fcodes").Code(12)
	ph.Block("ext").Code(3).Call("picture_coding_extension")
	ph.Block("qext").Code(3).Branch("qm", "user", ir.Pattern{Seq: []bool{false}})
	ph.Block("qm").Code(4).Call("quant_matrix_extension")
	ph.Block("user").Code(3).Branch("udata", "done", ir.Pattern{Seq: []bool{false}})
	ph.Block("udata").Code(4).Call("user_data")
	ph.Block("cmvchk").Code(2).Branch("cmv", "done", ir.Never{})
	ph.Block("cmv").Code(2).CallResume("concealment_vectors", "done")
	ph.Block("done").Code(8)
	ph.Block("exit").Return()

	// System-stream demuxer: built in, idle for elementary streams.
	psys := pb.Func("parse_system")
	psys.Block("entry").Code(46)
	psys.Block("pack").Code(20)
	psys.Block("scr").Code(22)
	psys.Block("mux").Code(18)
	psys.Block("strm").Code(10).Branch("strm", "pkt", ir.Loop{Trips: 2})
	psys.Block("pkt").Code(4).Call("get_packet")
	psys.Block("tail").Code(20)
	psys.Block("exit").Return()

	gpk := pb.Func("get_packet")
	gpk.Block("entry").Code(22)
	gpk.Block("len").Code(16)
	gpk.Block("stuff").Code(8).Branch("stuff", "std", ir.Loop{Trips: 2})
	gpk.Block("std").Code(18)
	gpk.Block("pts").Code(3).Branch("ts", "payload", ir.Pattern{Seq: []bool{true, false}})
	gpk.Block("ts").Code(14)
	gpk.Block("payload").Code(16)
	gpk.Block("exit").Return()

	// Error handling: concealment and slice resynchronization.
	ec := pb.Func("conceal_error")
	ec.Block("entry").Code(24)
	ec.Block("scan").Code(10).Branch("scan", "patch", ir.Loop{Trips: 2})
	ec.Block("patch").Code(22)
	ec.Block("log").Code(14)
	ec.Block("exit").Return()

	rs := pb.Func("resync")
	rs.Block("entry").Code(16)
	rs.Block("hunt").Code(8).Branch("hunt", "found", ir.Loop{Trips: 3})
	rs.Block("found").Code(10).Call("conceal_error")
	rs.Block("exit").Return()

	be := pb.Func("bitstream_error")
	be.Block("entry").Code(18)
	be.Block("report").Code(16)
	be.Block("recover").Code(3).Call("resync")
	be.Block("done").Code(10)
	be.Block("exit").Return()

	// Spatial-scalability prediction: compiled in, unused for main
	// profile streams.
	sp := pb.Func("spatial_prediction")
	sp.Block("entry").Code(24)
	sp.Block("vsetup").Code(40)
	sp.Block("vloop").Code(14).Branch("vloop", "hsetup", ir.Loop{Trips: 4})
	sp.Block("hsetup").Code(18)
	sp.Block("hloop").Code(14).Branch("hloop", "merge", ir.Loop{Trips: 4})
	sp.Block("merge").Code(22)
	sp.Block("round").Code(16)
	sp.Block("exit").Return()

	// Field-picture decode path: compiled in, unused for frame pictures.
	dfp := pb.Func("decode_field_picture")
	dfp.Block("entry").Code(26)
	dfp.Block("parity").Code(20)
	dfp.Block("s_head").Code(6).Call("decode_slice")
	dfp.Block("s_latch").Code(4).Branch("s_head", "pair", ir.Loop{Trips: 3})
	dfp.Block("pair").Code(24)
	dfp.Block("weave").Code(12).Branch("weave", "done", ir.Loop{Trips: 4})
	dfp.Block("done").Code(22)
	dfp.Block("exit").Return()

	// Dual-prime motion vector arithmetic (P-field pictures only).
	dp := pb.Func("dual_prime_vectors")
	dp.Block("entry").Code(22)
	dp.Block("scale").Code(20)
	dp.Block("round1").Code(18)
	dp.Block("opp").Code(16)
	dp.Block("round2").Code(18)
	dp.Block("clipv").Code(16)
	dp.Block("store").Code(14)
	dp.Block("exit").Return()

	// Concealment motion vectors in intra pictures.
	cmv := pb.Func("concealment_vectors")
	cmv.Block("entry").Code(18)
	cmv.Block("rd").Code(5).Call("get_mv_vlc")
	cmv.Block("marker").Code(16)
	cmv.Block("stash").Code(14)
	cmv.Block("exit").Return()

	// Frame reordering for display order (I/P delayed, B immediate).
	ro := pb.Func("reorder_frames")
	ro.Block("entry").Code(16)
	ro.Block("btype").Code(3).Branch("imm", "delay", ir.Pattern{Seq: []bool{true, false}})
	ro.Block("imm").Code(12).Jump("swap")
	ro.Block("delay").Code(14)
	ro.Block("swap").Code(16)
	ro.Block("exit").Return()

	// Repeat-first-field substitution (3:2 pulldown).
	sub := pb.Func("substitute_frame")
	sub.Block("entry").Code(20)
	sub.Block("copy").Code(12).Branch("copy", "flags", ir.Loop{Trips: 4})
	sub.Block("flags").Code(18)
	sub.Block("exit").Return()

	// Double-precision reference IDCT initialization.
	ii := pb.Func("idct_init")
	ii.Block("entry").Code(16)
	ii.Block("cos").Code(12).Branch("cos", "norm", ir.Loop{Trips: 8})
	ii.Block("norm").Code(18)
	ii.Block("exit").Return()

	// Saturation/clip lookup table initialization.
	ci := pb.Func("clip_init")
	ci.Block("entry").Code(12)
	ci.Block("neg").Code(8).Branch("neg", "pos", ir.Loop{Trips: 4})
	ci.Block("pos").Code(8).Branch("pos", "done", ir.Loop{Trips: 4})
	ci.Block("done").Code(10)
	ci.Block("exit").Return()

	// Display timing computation (NTSC/PAL frame scheduling).
	dt := pb.Func("display_timing")
	dt.Block("entry").Code(18)
	dt.Block("std").Code(3).Branch("pal", "ntsc", ir.Pattern{Seq: []bool{false}})
	dt.Block("pal").Code(14).Jump("vsync")
	dt.Block("ntsc").Code(16)
	dt.Block("vsync").Code(16)
	dt.Block("exit").Return()

	// Bitstream statistics dumper behind the -verify flag.
	tdump := pb.Func("trace_dump")
	tdump.Block("entry").Code(44)
	tdump.Block("hdrs").Code(18)
	tdump.Block("mbrow").Code(12).Branch("mbrow", "coeffs", ir.Loop{Trips: 4})
	tdump.Block("coeffs").Code(14).Branch("coeffs", "mvs", ir.Loop{Trips: 4})
	tdump.Block("mvs").Code(16)
	tdump.Block("flushit").Code(18)
	tdump.Block("exit").Return()

	// D-picture (DC-only) decoder path, kept for completeness.
	dpic := pb.Func("decode_d_picture")
	dpic.Block("entry").Code(18)
	dpic.Block("dc_head").Code(6).Call("get_dc_luma")
	dpic.Block("dc_latch").Code(4).Branch("dc_head", "endmark", ir.Loop{Trips: 4})
	dpic.Block("endmark").Code(16)
	dpic.Block("fill").Code(10).Branch("fill", "done", ir.Loop{Trips: 4})
	dpic.Block("done").Code(12)
	dpic.Block("exit").Return()

	// SNR-scalability enhancement layer decode (unused at main profile).
	snr := pb.Func("snr_enhancement")
	snr.Block("entry").Code(48)
	snr.Block("hdr").Code(24)
	snr.Block("b_head").Code(8).Call("get_dct_coeff")
	snr.Block("refine").Code(18)
	snr.Block("b_latch").Code(4).Branch("b_head", "combine", ir.Loop{Trips: 4})
	snr.Block("combine").Code(26)
	snr.Block("sat2").Code(22)
	snr.Block("store2").Code(20)
	snr.Block("exit").Return()

	// Data-partitioned bitstream reassembly (profile feature, idle here).
	dpart := pb.Func("data_partitioning")
	dpart.Block("entry").Code(46)
	dpart.Block("p0").Code(22)
	dpart.Block("p1").Code(22)
	dpart.Block("merge").Code(10).Branch("merge", "prio", ir.Loop{Trips: 3})
	dpart.Block("prio").Code(24)
	dpart.Block("check").Code(20)
	dpart.Block("exit").Return()

	// Elementary-stream ring buffer management.
	rb := pb.Func("ringbuf_fill")
	rb.Block("entry").Code(18)
	rb.Block("space").Code(3).Branch("wrap", "read", ir.Pattern{Seq: []bool{false, true}})
	rb.Block("wrap").Code(16).Jump("read")
	rb.Block("read").Code(20)
	rb.Block("mark").Code(14)
	rb.Block("exit").Return()

	// 4:1:1 chroma upconversion alternative.
	c411 := pb.Func("conv411to444")
	c411.Block("entry").Code(16)
	c411.Block("row").Code(14).Branch("row", "tail2", ir.Loop{Trips: 8})
	c411.Block("tail2").Code(18)
	c411.Block("edge2").Code(16)
	c411.Block("exit").Return()

	// YUV to RGB conversion for direct display output.
	rgb := pb.Func("yuv2rgb")
	rgb.Block("entry").Code(14)
	rgb.Block("row").Code(18).Branch("row", "gamma", ir.Loop{Trips: 8})
	rgb.Block("gamma").Code(20)
	rgb.Block("pack2").Code(18)
	rgb.Block("exit").Return()

	// On-screen-display overlay compositor for the test player.
	osd := pb.Func("osd_overlay")
	osd.Block("entry").Code(22)
	osd.Block("alpha").Code(12).Branch("alpha", "text", ir.Loop{Trips: 4})
	osd.Block("text").Code(44)
	osd.Block("blit").Code(20)
	osd.Block("exit").Return()

	return pb.Build()
}
