package workload

import "repro/internal/ir"

// TwoPass builds the overlay demonstration workload: a batch program with
// two sequential hot passes over the data (a transform pass and an encode
// pass), each with its own pair of kernels. The two passes never execute
// concurrently, and each pass's kernel working set roughly fills a small
// scratchpad on its own — the textbook case for the paper's future-work
// overlay extension: a static allocation must split the scratchpad
// between the passes, while an overlay allocation reloads it between them
// and gives every pass the full capacity.
//
// TwoPass is not part of Names(): the paper's Table 1 uses exactly the
// three Mediabench-derived workloads. It is exported for the overlay
// study and example.
func TwoPass() (*ir.Program, error) {
	pb := ir.NewProgramBuilder("twopass")

	main := pb.Func("main")
	main.Block("entry").Code(10).Call("setup")
	// Pass 1: 400 blocks through the transform kernels.
	main.Block("p1_head").Code(2).Call("transform_even")
	main.Block("p1_odd").Code(2).Call("transform_odd")
	main.Block("p1_latch").Code(2).Branch("p1_head", "mid", ir.Loop{Trips: 400})
	// Between the passes: flush and re-buffer, once.
	main.Block("mid").Code(14)
	// Pass 2: 400 blocks through the encode kernels.
	main.Block("p2_head").Code(2).Call("encode_low")
	main.Block("p2_high").Code(2).Call("encode_high")
	main.Block("p2_latch").Code(2).Branch("p2_head", "done", ir.Loop{Trips: 400})
	main.Block("done").Code(8)
	main.Block("exit").Return()

	setup := pb.Func("setup")
	setup.Block("entry").Code(20)
	setup.Block("tbl").Code(8).Branch("tbl", "out", ir.Loop{Trips: 6})
	setup.Block("out").Code(12)
	setup.Block("exit").Return()

	// Pass-1 kernels: ~180 bytes each of hot straight-line code.
	te := pb.Func("transform_even")
	te.Block("entry").Code(4)
	te.Block("fly1").Code(18)
	te.Block("fly2").Code(16)
	te.Block("acc").Code(4).Branch("fly1", "out", ir.Loop{Trips: 3})
	te.Block("out").Code(2)
	te.Block("exit").Return()

	to := pb.Func("transform_odd")
	to.Block("entry").Code(4)
	to.Block("fly1").Code(17)
	to.Block("fly2").Code(17)
	to.Block("acc").Code(4).Branch("fly1", "out", ir.Loop{Trips: 3})
	to.Block("out").Code(2)
	to.Block("exit").Return()

	// Pass-2 kernels: same scale, different code.
	el := pb.Func("encode_low")
	el.Block("entry").Code(4)
	el.Block("q1").Code(16)
	el.Block("q2").Code(18)
	el.Block("scan").Code(4).Branch("q1", "out", ir.Loop{Trips: 3})
	el.Block("out").Code(2)
	el.Block("exit").Return()

	eh := pb.Func("encode_high")
	eh.Block("entry").Code(4)
	eh.Block("q1").Code(18)
	eh.Block("q2").Code(16)
	eh.Block("scan").Code(4).Branch("q1", "out", ir.Loop{Trips: 3})
	eh.Block("out").Code(2)
	eh.Block("exit").Return()

	return pb.Build()
}
