package workload

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestNamesAndLoad(t *testing.T) {
	names := Names()
	if len(names) != 3 || names[0] != "adpcm" || names[1] != "g721" || names[2] != "mpeg" {
		t.Fatalf("Names = %v", names)
	}
	for _, n := range names {
		p, err := Load(n)
		if err != nil {
			t.Fatalf("Load(%s): %v", n, err)
		}
		if p.Name != n {
			t.Errorf("program name %q, want %q", p.Name, n)
		}
	}
	if _, err := Load("nope"); err == nil {
		t.Fatal("Load accepted unknown name")
	}
}

func TestLoadUnknownNameErrors(t *testing.T) {
	if _, err := Load("ghost"); err == nil {
		t.Fatal("Load accepted unknown workload name")
	}
}

// mustLoad builds a named workload, failing the test on error.
func mustLoad(t *testing.T, name string) *ir.Program {
	t.Helper()
	p, err := Load(name)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return p
}

// mustRandom generates a random workload, failing the test on error.
func mustRandom(t *testing.T, spec RandomSpec) *ir.Program {
	t.Helper()
	p, err := Random(spec)
	if err != nil {
		t.Fatalf("Random(%+v): %v", spec, err)
	}
	return p
}

// TestPaperCodeSizes pins the workloads to the code sizes of the paper's
// Table 1 (±8%): adpcm 1 kByte, g721 4.7 kBytes, mpeg 19.5 kBytes.
func TestPaperCodeSizes(t *testing.T) {
	targets := map[string]int{
		"adpcm": 1024,
		"g721":  4813,
		"mpeg":  19968,
	}
	for name, want := range targets {
		p := mustLoad(t, name)
		got := p.Size()
		lo, hi := want*92/100, want*108/100
		if got < lo || got > hi {
			t.Errorf("%s: size %dB outside [%d,%d] (paper: %dB)", name, got, lo, hi, want)
		}
	}
}

func TestWorkloadsValidateAndTerminate(t *testing.T) {
	for _, n := range Names() {
		p := mustLoad(t, n)
		if err := ir.Validate(p); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		prof, err := sim.ProfileProgram(p)
		if err != nil {
			t.Fatalf("%s: profile: %v", n, err)
		}
		if prof.Fetches < 100000 {
			t.Errorf("%s: only %d fetches; workloads must be hot", n, prof.Fetches)
		}
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, n := range Names() {
		a, err := sim.ProfileProgram(mustLoad(t, n))
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.ProfileProgram(mustLoad(t, n))
		if err != nil {
			t.Fatal(err)
		}
		if a.Fetches != b.Fetches {
			t.Errorf("%s: fetches differ: %d vs %d", n, a.Fetches, b.Fetches)
		}
	}
}

// TestHotColdSkew checks the Mediabench-like profile shape: a small
// fraction of the code accounts for the vast majority of fetches.
func TestHotColdSkew(t *testing.T) {
	for _, n := range Names() {
		p := mustLoad(t, n)
		prof, err := sim.ProfileProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		var coldBytes, totalBytes int
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				sz := b.Size()
				totalBytes += sz
				if prof.BlockCount(ir.BlockRef{Func: f.ID, Block: b.ID}) == 0 {
					coldBytes += sz
				}
			}
		}
		if coldBytes == 0 {
			t.Errorf("%s: no cold code at all; unrealistic image", n)
		}
		if coldBytes > totalBytes*8/10 {
			t.Errorf("%s: %d of %d bytes cold; workload barely executes", n, coldBytes, totalBytes)
		}
	}
}

// TestTraceFormationOnWorkloads runs trace formation at every scratchpad
// size used in the paper's tables and validates the partitions.
func TestTraceFormationOnWorkloads(t *testing.T) {
	for _, n := range Names() {
		p := mustLoad(t, n)
		prof, err := sim.ProfileProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, spm := range []int{64, 128, 256, 512, 1024} {
			set, err := trace.Build(p, prof, trace.Options{MaxBytes: spm, LineBytes: 16})
			if err != nil {
				t.Fatalf("%s/%d: %v", n, spm, err)
			}
			if err := set.Validate(); err != nil {
				t.Fatalf("%s/%d: %v", n, spm, err)
			}
			// Some traces must be placeable at every size.
			placeable := 0
			for _, tr := range set.Traces {
				if tr.RawBytes <= spm && tr.Fetches > 0 {
					placeable++
				}
			}
			if placeable == 0 {
				t.Errorf("%s/%d: no hot placeable traces", n, spm)
			}
		}
	}
}

func TestRandomGenerator(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		p := mustRandom(t, RandomSpec{Seed: seed})
		if err := ir.Validate(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prof, err := sim.ProfileProgram(p, sim.WithMaxFetches(1<<24))
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		if prof.Fetches <= 0 {
			t.Fatalf("seed %d: empty profile", seed)
		}
		// Deterministic per seed.
		q := mustRandom(t, RandomSpec{Seed: seed})
		if q.Size() != p.Size() || q.NumBlocks() != p.NumBlocks() {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
	}
}

func TestRandomGeneratorDifferentSeedsDiffer(t *testing.T) {
	a := mustRandom(t, RandomSpec{Seed: 1})
	b := mustRandom(t, RandomSpec{Seed: 2})
	if a.Size() == b.Size() && a.NumBlocks() == b.NumBlocks() {
		// Sizes could coincide, but block structure should not for these
		// seeds; treat full equality as suspicious.
		t.Logf("seeds 1,2 coincide in size (%dB); acceptable but unusual", a.Size())
	}
}

// TestRandomTraceAndLayoutPipeline pushes random programs through trace
// formation as a property test of the whole front end.
func TestRandomTraceAndLayoutPipeline(t *testing.T) {
	for seed := uint64(100); seed < 130; seed++ {
		p := mustRandom(t, RandomSpec{Seed: seed, Funcs: 5, SegmentsPerFunc: 6})
		prof, err := sim.ProfileProgram(p, sim.WithMaxFetches(1<<24))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		set, err := trace.Build(p, prof, trace.Options{MaxBytes: 128, LineBytes: 16})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
