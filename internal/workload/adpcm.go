package workload

import "repro/internal/ir"

// ADPCM builds the adpcm workload: IMA ADPCM encode/decode over a sample
// stream, modelled on Mediabench's adpcm (rawcaudio/rawdaudio). Code size
// ≈ 1 kByte; the hot region is the coder/decoder pair called from the
// sample loop.
//
// Structure (instruction counts chosen to land near the paper's 1 kByte):
//
//	main          — argument setup, buffered sample loop, teardown
//	adpcm_coder   — per-sample quantization with a step-size search loop
//	adpcm_decoder — per-sample reconstruction
//	step_index    — shared index clamp helper
func ADPCM() (*ir.Program, error) {
	pb := ir.NewProgramBuilder("adpcm")

	// Data objects of the real codec: the coder/decoder state, the two
	// quantizer tables, and the streaming sample buffers.
	pb.DataObject("adpcm_state", 12)
	pb.DataObject("stepsize_table", 356)
	pb.DataObject("index_table", 16)
	pb.DataObject("sample_buffer", 2048)

	main := pb.Func("main")
	main.Block("entry").Code(14).Call("adpcm_init")
	// Outer buffer loop: 40 buffers of 25 samples each = 1000 samples.
	main.Block("buf_head").Code(5)
	main.Block("read").Code(4)
	main.Block("enc_call").Code(3).Call("adpcm_coder")
	main.Block("dec_call").Code(3).Call("adpcm_decoder")
	main.Block("write").Code(5)
	main.Block("buf_latch").Code(3).Branch("buf_head", "done", ir.Loop{Trips: 40})
	main.Block("done").Code(10)
	main.Block("exit").Return()

	// One-time state setup: zero the predictor state, parse options. The
	// usage text is compiled in but never reached on a good command line.
	ini := pb.Func("adpcm_init")
	ini.Block("entry").Code(16)
	ini.Block("zero").Code(5).Branch("zero", "opts", ir.Loop{Trips: 4})
	ini.Block("opts").Code(12)
	ini.Block("argchk").Code(2).Branch("usage", "ok", ir.Never{})
	ini.Block("usage").Code(14)
	ini.Block("ok").Code(3)
	ini.Block("exit").Return()

	coder := pb.Func("adpcm_coder")
	coder.Block("entry").Code(16)
	// Sample loop: 25 samples per call.
	coder.Block("s_head").Code(8).Data("adpcm_state", 2, 0).Data("sample_buffer", 1, 0)
	// Step-size search: data-dependent, ~3 iterations on average.
	coder.Block("q_loop").Code(9).Data("stepsize_table", 1, 0).Branch("q_loop", "q_done", ir.Loop{Trips: 3})
	coder.Block("q_done").Code(6)
	// Sign handling: roughly half the samples are negative.
	coder.Block("sign").Code(2).Branch("neg", "pos", ir.Pattern{Seq: []bool{true, false}})
	coder.Block("pos").Code(4).Jump("clamp")
	coder.Block("neg").Code(5)
	coder.Block("clamp").Code(3).Data("index_table", 1, 0).Data("adpcm_state", 0, 2).Call("step_index")
	// Output nibble packing alternates between buffering and emitting.
	coder.Block("pack").Code(2).Branch("emit", "hold", ir.Pattern{Seq: []bool{false, true}})
	coder.Block("hold").Code(3).Goto("s_latch")
	coder.Block("emit").Code(5)
	coder.Block("s_latch").Code(4).Branch("s_head", "flush", ir.Loop{Trips: 25})
	coder.Block("flush").Code(12)
	coder.Block("exit").Return()

	dec := pb.Func("adpcm_decoder")
	dec.Block("entry").Code(14)
	dec.Block("s_head").Code(7).Data("adpcm_state", 2, 0).Data("sample_buffer", 1, 0)
	// Delta expansion: two-way on the stored sign bit.
	dec.Block("delta").Code(2).Branch("dneg", "dpos", ir.Pattern{Seq: []bool{true, false}})
	dec.Block("dpos").Code(3).Jump("recon")
	dec.Block("dneg").Code(4)
	dec.Block("recon").Code(8).Data("stepsize_table", 1, 0).Data("index_table", 1, 0).Call("step_index")
	// Output saturation: clip about one sample in six.
	dec.Block("sat").Code(2).Branch("clip", "store", ir.Pattern{Seq: []bool{false, false, true, false, false, false}})
	dec.Block("clip").Code(3)
	dec.Block("store").Code(4).Data("sample_buffer", 0, 1).Data("adpcm_state", 0, 1)
	dec.Block("s_latch").Code(4).Branch("s_head", "out", ir.Loop{Trips: 25})
	dec.Block("out").Code(9)
	dec.Block("exit").Return()

	idx := pb.Func("step_index")
	idx.Block("entry").Code(3)
	// Clamp: out-of-range roughly one call in five.
	idx.Block("check").Code(2).Branch("clip", "ok", ir.Pattern{Seq: []bool{false, false, true, false, false}})
	idx.Block("clip").Code(3)
	idx.Block("ok").Code(2)
	idx.Block("exit").Return()

	return pb.Build()
}
