// Package workload provides the benchmark programs of the evaluation:
// synthetic stand-ins for the Mediabench applications the paper measures
// (adpcm, g721, mpeg), matched in code size, call structure, loop nesting
// and hot-spot skew, plus a seeded random program generator for property
// tests.
//
// The substitution is documented in DESIGN.md: CASA consumes only the CFG,
// the execution profile and code bytes; the allocation problem is fully
// characterized by trace sizes, fetch counts and cache conflicts, which
// these programs reproduce at the paper's scale:
//
//	adpcm — ~1 kByte of code, a tight encode/decode pair over a sample loop
//	g721  — ~4.7 kBytes, the ITU G.721 ADPCM transcoder's predictor and
//	        quantizer routines around a sample loop
//	mpeg  — ~19.5 kBytes, an MPEG-2 style decoder: VLC parsing, inverse
//	        quantization, 2-D IDCT, motion compensation, block store
//
// All branch behaviors are deterministic, so profiles and simulations are
// exactly reproducible.
package workload

import (
	"fmt"
	"sort"
	"sync"
)

import "repro/internal/ir"

// builders registers the bundled programs lazily so each Load returns a
// fresh Program (callers may mutate nothing, but independence is cheap).
var builders = map[string]func() (*ir.Program, error){
	"adpcm": ADPCM,
	"g721":  G721,
	"mpeg":  MPEG,
}

// Names returns the bundled workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load returns the named workload program.
func Load(name string) (*ir.Program, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	p, err := b()
	if err != nil {
		return nil, fmt.Errorf("workload: build %q: %w", name, err)
	}
	return p, nil
}

// shared holds the canonical process-wide instance of each bundled
// workload, built once on first use.
var (
	sharedMu sync.Mutex
	shared   = map[string]*ir.Program{}
)

// Shared returns the canonical instance of the named workload. Unlike
// Load, every call returns the same *ir.Program, which lets the
// simulator's memoization layer (profiles, fetch streams) hit across
// independently-prepared experiment pipelines. Shared programs must be
// treated as strictly immutable; callers that want a private, mutable
// copy should use Load.
func Shared(name string) (*ir.Program, error) {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if p, ok := shared[name]; ok {
		return p, nil
	}
	p, err := Load(name)
	if err != nil {
		return nil, err
	}
	shared[name] = p
	return p, nil
}
