// Package workload provides the benchmark programs of the evaluation:
// synthetic stand-ins for the Mediabench applications the paper measures
// (adpcm, g721, mpeg), matched in code size, call structure, loop nesting
// and hot-spot skew, plus a seeded random program generator for property
// tests.
//
// The substitution is documented in DESIGN.md: CASA consumes only the CFG,
// the execution profile and code bytes; the allocation problem is fully
// characterized by trace sizes, fetch counts and cache conflicts, which
// these programs reproduce at the paper's scale:
//
//	adpcm — ~1 kByte of code, a tight encode/decode pair over a sample loop
//	g721  — ~4.7 kBytes, the ITU G.721 ADPCM transcoder's predictor and
//	        quantizer routines around a sample loop
//	mpeg  — ~19.5 kBytes, an MPEG-2 style decoder: VLC parsing, inverse
//	        quantization, 2-D IDCT, motion compensation, block store
//
// All branch behaviors are deterministic, so profiles and simulations are
// exactly reproducible.
package workload

import (
	"fmt"
	"sort"
)

import "repro/internal/ir"

// builders registers the bundled programs lazily so each Load returns a
// fresh Program (callers may mutate nothing, but independence is cheap).
var builders = map[string]func() *ir.Program{
	"adpcm": ADPCM,
	"g721":  G721,
	"mpeg":  MPEG,
}

// Names returns the bundled workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load returns the named workload program.
func Load(name string) (*ir.Program, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return b(), nil
}

// MustLoad is Load, panicking on unknown names.
func MustLoad(name string) *ir.Program {
	p, err := Load(name)
	if err != nil {
		panic(err)
	}
	return p
}
