package layout

import (
	"fmt"

	"repro/internal/trace"
)

// NewOrdered builds a cache-only address map with the traces placed in
// the given order instead of textual order. Code-placement optimizers
// (Pettis-Hansen / Tomiyama-style, the paper's related work [10,14]) use
// it to control which cache sets each trace maps to. order must be a
// permutation of the trace IDs; no scratchpad is involved.
func NewOrdered(ts *trace.Set, order []int, opt Options) (*Layout, error) {
	if opt.MainBase == 0 {
		opt.MainBase = DefaultMainBase
	}
	if len(order) != len(ts.Traces) {
		return nil, fmt.Errorf("layout: order length %d, want %d traces", len(order), len(ts.Traces))
	}
	seen := make([]bool, len(ts.Traces))
	for _, id := range order {
		if id < 0 || id >= len(ts.Traces) || seen[id] {
			return nil, fmt.Errorf("layout: order is not a permutation (trace %d)", id)
		}
		seen[id] = true
	}
	l := &Layout{
		set:       ts,
		opt:       opt,
		inSPM:     make([]bool, len(ts.Traces)),
		traceBase: make([]uint32, len(ts.Traces)),
		mainBase:  make([]uint32, len(ts.Traces)),
		hasMain:   make([]bool, len(ts.Traces)),
	}
	addr := opt.MainBase
	for _, id := range order {
		t := ts.Traces[id]
		l.traceBase[id] = addr
		l.mainBase[id] = addr
		l.hasMain[id] = true
		addr += uint32(t.PaddedBytes)
	}
	l.mainBytes = int(addr - opt.MainBase)
	l.resolveBlocks()
	return l, nil
}

// NewOverlay builds an address map for a phased (overlay) allocation, the
// paper's "dynamic copying" future-work extension: execution is split into
// temporally disjoint phases, the scratchpad is reloaded at each phase
// entry, and traces assigned to different phases may therefore share
// scratchpad addresses.
//
// phase[i] gives trace i's phase index, or -1 for traces that stay in
// cacheable main memory. Traces of the same phase are packed together from
// the scratchpad base; packings of different phases overlap by design.
// The capacity check applies per phase.
//
// The returned layout is valid for whole-run simulation because a trace
// only executes during its own phase, when its scratchpad image is loaded;
// the simulator never observes two live traces at overlapping addresses.
// Copy (reload) costs are not part of the layout — account for them with
// the overlay package's cost model.
func NewOverlay(ts *trace.Set, phase []int, numPhases int, opt Options) (*Layout, error) {
	if opt.MainBase == 0 {
		opt.MainBase = DefaultMainBase
	}
	if len(phase) != len(ts.Traces) {
		return nil, fmt.Errorf("layout: phase vector length %d, want %d traces",
			len(phase), len(ts.Traces))
	}
	if opt.Mode != Copy {
		return nil, fmt.Errorf("layout: overlay requires copy semantics")
	}
	l := &Layout{
		set:       ts,
		opt:       opt,
		inSPM:     make([]bool, len(ts.Traces)),
		traceBase: make([]uint32, len(ts.Traces)),
		mainBase:  make([]uint32, len(ts.Traces)),
		hasMain:   make([]bool, len(ts.Traces)),
	}

	// Per-phase packing from the scratchpad base.
	used := make([]int, numPhases)
	for _, t := range ts.Traces {
		p := phase[t.ID]
		if p < 0 {
			continue
		}
		if p >= numPhases {
			return nil, fmt.Errorf("layout: trace %d assigned to phase %d of %d", t.ID, p, numPhases)
		}
		l.inSPM[t.ID] = true
		l.traceBase[t.ID] = opt.SPMBase + uint32(used[p])
		used[p] += t.RawBytes
		if used[p] > opt.SPMSize {
			return nil, fmt.Errorf("layout: phase %d needs %d bytes, scratchpad has %d",
				p, used[p], opt.SPMSize)
		}
	}
	for _, u := range used {
		if u > l.spmUsed {
			l.spmUsed = u // report the high-water mark
		}
	}

	// Main-memory image: copy semantics — every trace keeps its slot.
	mainAddr := opt.MainBase
	for _, t := range ts.Traces {
		l.mainBase[t.ID] = mainAddr
		l.hasMain[t.ID] = true
		if !l.inSPM[t.ID] {
			l.traceBase[t.ID] = mainAddr
		}
		mainAddr += uint32(t.PaddedBytes)
	}
	l.mainBytes = int(mainAddr - opt.MainBase)

	l.resolveBlocks()
	return l, nil
}
