// Package layout assigns concrete addresses to a trace-partitioned
// program, producing the address map the simulator executes against.
//
// Two placement semantics are provided, because the difference between
// them is one of the paper's central observations (§2):
//
//   - Copy (CASA): traces selected for the scratchpad are *copied* into the
//     scratchpad window and control flow is redirected there, while the
//     main-memory image keeps every trace at its original address. The
//     cache mapping of the remaining program is untouched.
//
//   - Move (Steinke et al. [13]): selected traces are *removed* from the
//     main-memory image and the remaining traces are compacted downward.
//     Every downstream trace shifts, changing its cache mapping — the
//     source of the erratic conflict behavior (thrashing) the paper
//     reports for cache-equipped hierarchies.
//
// Within the main-memory image traces occupy their padded (line-aligned)
// size; inside the scratchpad the alignment NOPs are stripped and traces
// are packed at their raw size (paper §4).
package layout

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/trace"
)

// Default address-space bases. The scratchpad window sits below main
// memory, mirroring ARM7 evaluation boards where the SPM is mapped at the
// bottom of the address space.
const (
	// DefaultSPMBase is the default scratchpad window base address.
	DefaultSPMBase uint32 = 0x0000_0000
	// DefaultMainBase is the default main-memory code base address.
	DefaultMainBase uint32 = 0x0010_0000
)

// Mode selects the placement semantics for scratchpad-allocated traces.
type Mode uint8

const (
	// Copy keeps the full main-memory image and copies selected traces to
	// the scratchpad (CASA semantics).
	Copy Mode = iota
	// Move removes selected traces from the main-memory image and
	// compacts the remainder (Steinke semantics).
	Move
)

var modeNames = [...]string{Copy: "copy", Move: "move"}

// String returns the mode name.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Options configures layout construction.
type Options struct {
	// Mode selects copy or move semantics.
	Mode Mode
	// SPMBase is the scratchpad window base (default DefaultSPMBase).
	SPMBase uint32
	// SPMSize is the scratchpad capacity in bytes; 0 means no scratchpad
	// (InSPM must then be all-false or nil).
	SPMSize int
	// MainBase is the main-memory code base (default DefaultMainBase).
	MainBase uint32
}

// Layout is an immutable address map implementing sim.Layout.
type Layout struct {
	set *trace.Set
	opt Options

	inSPM     []bool
	traceBase []uint32 // execution base address per trace
	mainBase  []uint32 // main-image address per trace (valid unless moved)
	hasMain   []bool
	spmUsed   int
	mainBytes int

	blockBase    [][]uint32
	fallJumpAddr [][]uint32
	fallJumpOK   [][]bool
	blockMO      [][]int
}

// New builds the address map for the given allocation. inSPM[i] selects
// trace i for the scratchpad; nil means no trace is allocated.
func New(set *trace.Set, inSPM []bool, opt Options) (*Layout, error) {
	if opt.MainBase == 0 {
		opt.MainBase = DefaultMainBase
	}
	if inSPM == nil {
		inSPM = make([]bool, len(set.Traces))
	}
	if len(inSPM) != len(set.Traces) {
		return nil, fmt.Errorf("layout: allocation length %d, want %d traces", len(inSPM), len(set.Traces))
	}
	l := &Layout{
		set:       set,
		opt:       opt,
		inSPM:     append([]bool(nil), inSPM...),
		traceBase: make([]uint32, len(set.Traces)),
		mainBase:  make([]uint32, len(set.Traces)),
		hasMain:   make([]bool, len(set.Traces)),
	}

	// Scratchpad image: packed raw sizes, in trace order.
	spmAddr := opt.SPMBase
	for _, t := range set.Traces {
		if !inSPM[t.ID] {
			continue
		}
		l.spmUsed += t.RawBytes
		if l.spmUsed > opt.SPMSize {
			return nil, fmt.Errorf("layout: allocation needs %d bytes, scratchpad has %d",
				l.spmUsed, opt.SPMSize)
		}
		l.traceBase[t.ID] = spmAddr
		spmAddr += uint32(t.RawBytes)
	}
	if opt.SPMSize > 0 && opt.SPMBase+uint32(opt.SPMSize) > opt.MainBase && opt.SPMBase < opt.MainBase {
		return nil, fmt.Errorf("layout: scratchpad window [%#x,%#x) overlaps main base %#x",
			opt.SPMBase, opt.SPMBase+uint32(opt.SPMSize), opt.MainBase)
	}

	// Main-memory image: padded sizes, in trace order. Under Move,
	// scratchpad traces are omitted and everything after them shifts.
	mainAddr := opt.MainBase
	for _, t := range set.Traces {
		if inSPM[t.ID] && opt.Mode == Move {
			continue
		}
		l.mainBase[t.ID] = mainAddr
		l.hasMain[t.ID] = true
		if !inSPM[t.ID] {
			l.traceBase[t.ID] = mainAddr
		}
		mainAddr += uint32(t.PaddedBytes)
	}
	l.mainBytes = int(mainAddr - opt.MainBase)

	l.resolveBlocks()
	return l, nil
}

func (l *Layout) resolveBlocks() {
	p := l.set.Prog
	l.blockBase = make([][]uint32, len(p.Funcs))
	l.fallJumpAddr = make([][]uint32, len(p.Funcs))
	l.fallJumpOK = make([][]bool, len(p.Funcs))
	l.blockMO = make([][]int, len(p.Funcs))
	for i, f := range p.Funcs {
		l.blockBase[i] = make([]uint32, len(f.Blocks))
		l.fallJumpAddr[i] = make([]uint32, len(f.Blocks))
		l.fallJumpOK[i] = make([]bool, len(f.Blocks))
		l.blockMO[i] = make([]int, len(f.Blocks))
	}
	for _, t := range l.set.Traces {
		base := l.traceBase[t.ID]
		for _, m := range t.Blocks {
			l.blockBase[m.Func][m.Block] = base + uint32(l.set.OffsetOf(m))
			l.blockMO[m.Func][m.Block] = t.ID
		}
		if t.HasJump {
			last := t.Blocks[len(t.Blocks)-1]
			l.fallJumpAddr[last.Func][last.Block] = base + uint32(t.RawBytes) - ir.InstrSize
			l.fallJumpOK[last.Func][last.Block] = true
		}
	}
}

// BlockBase implements sim.Layout.
func (l *Layout) BlockBase(ref ir.BlockRef) uint32 {
	return l.blockBase[ref.Func][ref.Block]
}

// BlockMO implements sim.Layout.
func (l *Layout) BlockMO(ref ir.BlockRef) int {
	return l.blockMO[ref.Func][ref.Block]
}

// FallJump implements sim.Layout.
func (l *Layout) FallJump(ref ir.BlockRef) (uint32, bool) {
	return l.fallJumpAddr[ref.Func][ref.Block], l.fallJumpOK[ref.Func][ref.Block]
}

// InSPM reports whether the trace executes from the scratchpad.
func (l *Layout) InSPM(id int) bool { return l.inSPM[id] }

// TraceBase returns the execution base address of the trace.
func (l *Layout) TraceBase(id int) uint32 { return l.traceBase[id] }

// MainImageBase returns the trace's address in the main-memory image and
// whether it has one (moved traces do not).
func (l *Layout) MainImageBase(id int) (uint32, bool) {
	return l.mainBase[id], l.hasMain[id]
}

// SPMWindow returns the scratchpad address window [base, base+size).
func (l *Layout) SPMWindow() (base uint32, size int) {
	return l.opt.SPMBase, l.opt.SPMSize
}

// IsSPMAddr reports whether the address falls in the scratchpad window.
func (l *Layout) IsSPMAddr(addr uint32) bool {
	return l.opt.SPMSize > 0 &&
		addr >= l.opt.SPMBase && addr < l.opt.SPMBase+uint32(l.opt.SPMSize)
}

// SPMUsed returns the scratchpad bytes occupied by the allocation.
func (l *Layout) SPMUsed() int { return l.spmUsed }

// MainImageBytes returns the size of the main-memory code image.
func (l *Layout) MainImageBytes() int { return l.mainBytes }

// Set returns the underlying trace set.
func (l *Layout) Set() *trace.Set { return l.set }

// Mode returns the placement semantics used.
func (l *Layout) Mode() Mode { return l.opt.Mode }

// ExecRange returns the execution address range [base, base+size) of a
// trace: its scratchpad placement when allocated, otherwise its main-image
// slot (raw size; padding NOPs are never executed).
func (l *Layout) ExecRange(id int) (base uint32, size int) {
	return l.traceBase[id], l.set.Traces[id].RawBytes
}
