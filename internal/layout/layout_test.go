package layout

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fixture builds a program with several traces:
//   - main: prologue | hot loop | epilogue
//   - leaf: called from the loop
func fixture(t *testing.T) *trace.Set {
	t.Helper()
	pb := ir.NewProgramBuilder("fix")
	f := pb.Func("main")
	f.Block("pro").Code(6).Jump("loop") // own trace (ends in jump)
	f.Block("epi").Code(4)
	f.Block("end").Return()
	f.Block("loop").Code(10).Call("leaf")
	f.Block("latch").Code(2).Branch("loop", "exit", ir.Loop{Trips: 50})
	f.Block("exit").ALU(1).Jump("epi")
	leaf := pb.Func("leaf")
	leaf.Block("l").Code(5).Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatalf("ProfileProgram: %v", err)
	}
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: 128, LineBytes: 16})
	if err != nil {
		t.Fatalf("trace.Build: %v", err)
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("set.Validate: %v", err)
	}
	return set
}

func TestModeString(t *testing.T) {
	if Copy.String() != "copy" || Move.String() != "move" {
		t.Error("mode names wrong")
	}
	if !strings.HasPrefix(Mode(9).String(), "mode(") {
		t.Errorf("Mode(9) = %q", Mode(9).String())
	}
}

func TestNoSPMLayoutIsContiguous(t *testing.T) {
	set := fixture(t)
	l, err := New(set, nil, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr := DefaultMainBase
	for _, tr := range set.Traces {
		if got := l.TraceBase(tr.ID); got != addr {
			t.Errorf("trace %d base %#x, want %#x", tr.ID, got, addr)
		}
		if l.InSPM(tr.ID) {
			t.Errorf("trace %d unexpectedly in SPM", tr.ID)
		}
		mb, ok := l.MainImageBase(tr.ID)
		if !ok || mb != addr {
			t.Errorf("trace %d main image %#x/%v", tr.ID, mb, ok)
		}
		addr += uint32(tr.PaddedBytes)
	}
	if l.MainImageBytes() != set.TotalPaddedBytes() {
		t.Errorf("image bytes %d, want %d", l.MainImageBytes(), set.TotalPaddedBytes())
	}
	if l.SPMUsed() != 0 {
		t.Errorf("SPMUsed = %d, want 0", l.SPMUsed())
	}
}

func TestBlockAddressesFollowOffsets(t *testing.T) {
	set := fixture(t)
	l := mustNew(t, set, nil, Options{})
	for _, tr := range set.Traces {
		for _, m := range tr.Blocks {
			want := l.TraceBase(tr.ID) + uint32(set.OffsetOf(m))
			if got := l.BlockBase(m); got != want {
				t.Errorf("block %v base %#x, want %#x", m, got, want)
			}
			if l.BlockMO(m) != tr.ID {
				t.Errorf("block %v MO %d, want %d", m, l.BlockMO(m), tr.ID)
			}
		}
	}
}

func TestFallJumpPlacement(t *testing.T) {
	set := fixture(t)
	l := mustNew(t, set, nil, Options{})
	for _, tr := range set.Traces {
		last := tr.Blocks[len(tr.Blocks)-1]
		addr, ok := l.FallJump(last)
		if ok != tr.HasJump {
			t.Errorf("trace %d FallJump ok=%v, HasJump=%v", tr.ID, ok, tr.HasJump)
		}
		if ok {
			want := l.TraceBase(tr.ID) + uint32(tr.RawBytes) - ir.InstrSize
			if addr != want {
				t.Errorf("trace %d jump at %#x, want %#x", tr.ID, addr, want)
			}
		}
		// Non-last blocks never carry a fall jump.
		for _, m := range tr.Blocks[:len(tr.Blocks)-1] {
			if _, ok := l.FallJump(m); ok {
				t.Errorf("mid-trace block %v has a fall jump", m)
			}
		}
	}
}

func TestCopySemantics(t *testing.T) {
	set := fixture(t)
	alloc := make([]bool, len(set.Traces))
	// Put the hottest trace in SPM.
	hot := 0
	for _, tr := range set.Traces {
		if tr.Fetches > set.Traces[hot].Fetches {
			hot = tr.ID
		}
	}
	alloc[hot] = true
	l, err := New(set, alloc, Options{Mode: Copy, SPMSize: 1024})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !l.InSPM(hot) {
		t.Fatal("hot trace not in SPM")
	}
	if !l.IsSPMAddr(l.TraceBase(hot)) {
		t.Errorf("hot trace executes from %#x, not in SPM window", l.TraceBase(hot))
	}
	// Copy: the main image still contains the trace, and every other
	// trace keeps its no-SPM address.
	if _, ok := l.MainImageBase(hot); !ok {
		t.Error("copy semantics must keep the main-image slot")
	}
	plain := mustNew(t, set, nil, Options{})
	for _, tr := range set.Traces {
		if tr.ID == hot {
			continue
		}
		if l.TraceBase(tr.ID) != plain.TraceBase(tr.ID) {
			t.Errorf("copy semantics moved trace %d: %#x vs %#x",
				tr.ID, l.TraceBase(tr.ID), plain.TraceBase(tr.ID))
		}
	}
	if l.SPMUsed() != set.Traces[hot].RawBytes {
		t.Errorf("SPMUsed = %d, want %d (NOPs stripped)", l.SPMUsed(), set.Traces[hot].RawBytes)
	}
}

func TestMoveSemanticsShiftsDownstream(t *testing.T) {
	set := fixture(t)
	if len(set.Traces) < 3 {
		t.Skip("fixture produced too few traces")
	}
	alloc := make([]bool, len(set.Traces))
	alloc[0] = true // move the first trace out
	l, err := New(set, alloc, Options{Mode: Move, SPMSize: 1024})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, ok := l.MainImageBase(0); ok {
		t.Error("moved trace must not keep a main-image slot")
	}
	plain := mustNew(t, set, nil, Options{})
	shift := uint32(set.Traces[0].PaddedBytes)
	for _, tr := range set.Traces[1:] {
		want := plain.TraceBase(tr.ID) - shift
		if got := l.TraceBase(tr.ID); got != want {
			t.Errorf("trace %d base %#x, want shifted %#x", tr.ID, got, want)
		}
	}
	if l.MainImageBytes() != set.TotalPaddedBytes()-set.Traces[0].PaddedBytes {
		t.Errorf("image bytes %d after move", l.MainImageBytes())
	}
}

func TestSPMOverflowRejected(t *testing.T) {
	set := fixture(t)
	alloc := make([]bool, len(set.Traces))
	for i := range alloc {
		alloc[i] = true
	}
	_, err := New(set, alloc, Options{Mode: Copy, SPMSize: 16})
	if err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestAllocationLengthChecked(t *testing.T) {
	set := fixture(t)
	_, err := New(set, make([]bool, 1), Options{})
	if err == nil && len(set.Traces) != 1 {
		t.Fatal("expected length error")
	}
}

func TestWindowOverlapRejected(t *testing.T) {
	set := fixture(t)
	alloc := make([]bool, len(set.Traces))
	alloc[0] = true
	_, err := New(set, alloc, Options{
		Mode:     Copy,
		SPMBase:  DefaultMainBase - 8,
		SPMSize:  1024,
		MainBase: DefaultMainBase,
	})
	if err == nil {
		t.Fatal("expected overlap error")
	}
}

func TestIsSPMAddrAndWindow(t *testing.T) {
	set := fixture(t)
	alloc := make([]bool, len(set.Traces))
	alloc[0] = true
	l := mustNew(t, set, alloc, Options{Mode: Copy, SPMSize: 256})
	base, size := l.SPMWindow()
	if size != 256 {
		t.Errorf("window size %d", size)
	}
	if !l.IsSPMAddr(base) || !l.IsSPMAddr(base+255) || l.IsSPMAddr(base+256) {
		t.Error("window membership wrong")
	}
	// Without an SPM nothing is an SPM address.
	plain := mustNew(t, set, nil, Options{})
	if plain.IsSPMAddr(0) {
		t.Error("no-SPM layout claims SPM addresses")
	}
}

func TestExecRange(t *testing.T) {
	set := fixture(t)
	l := mustNew(t, set, nil, Options{})
	for _, tr := range set.Traces {
		base, size := l.ExecRange(tr.ID)
		if base != l.TraceBase(tr.ID) || size != tr.RawBytes {
			t.Errorf("ExecRange(%d) = %#x/%d", tr.ID, base, size)
		}
	}
}

func TestNewRejectsMismatchedAllocation(t *testing.T) {
	set := fixture(t)
	if _, err := New(set, make([]bool, 99), Options{}); err == nil {
		t.Fatal("New accepted a mismatched allocation vector")
	}
}

// mustNew builds a layout, failing the test on error.
func mustNew(t *testing.T, set *trace.Set, alloc []bool, opt Options) *Layout {
	t.Helper()
	l, err := New(set, alloc, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

// End-to-end: running the simulator over a copy layout redirects the
// allocated trace's fetches into the SPM window and leaves the stream
// otherwise consistent.
func TestRunOverLayouts(t *testing.T) {
	set := fixture(t)
	plain := mustNew(t, set, nil, Options{})
	var plainN, spmN int64
	total1, err := sim.Run(set.Prog, plain, sim.FetcherFunc(func(addr uint32, mo int) {
		if plain.IsSPMAddr(addr) {
			spmN++
		} else {
			plainN++
		}
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if spmN != 0 {
		t.Errorf("no-SPM layout produced %d SPM fetches", spmN)
	}

	hot := 0
	for _, tr := range set.Traces {
		if tr.Fetches > set.Traces[hot].Fetches {
			hot = tr.ID
		}
	}
	alloc := make([]bool, len(set.Traces))
	alloc[hot] = true
	cl := mustNew(t, set, alloc, Options{Mode: Copy, SPMSize: 1024})
	var spmFetch, mainFetch int64
	total2, err := sim.Run(set.Prog, cl, sim.FetcherFunc(func(addr uint32, mo int) {
		if cl.IsSPMAddr(addr) {
			spmFetch++
			if mo != hot {
				t.Fatalf("SPM fetch attributed to MO %d, want %d", mo, hot)
			}
		} else {
			mainFetch++
		}
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if total1 != total2 {
		t.Errorf("fetch totals differ between layouts: %d vs %d", total1, total2)
	}
	if spmFetch != set.Traces[hot].Fetches {
		t.Errorf("SPM fetches %d, want f_i=%d", spmFetch, set.Traces[hot].Fetches)
	}
}

func TestNewOverlayBasics(t *testing.T) {
	set := fixture(t)
	n := len(set.Traces)
	phase := make([]int, n)
	for i := range phase {
		phase[i] = -1
	}
	// Put the first two traces in different phases: their scratchpad
	// addresses may coincide.
	if n < 2 {
		t.Skip("fixture too small")
	}
	phase[0], phase[1] = 0, 1
	l, err := NewOverlay(set, phase, 2, Options{Mode: Copy, SPMSize: 1024})
	if err != nil {
		t.Fatalf("NewOverlay: %v", err)
	}
	if !l.InSPM(0) || !l.InSPM(1) {
		t.Fatal("phased traces not in SPM")
	}
	if l.TraceBase(0) != l.TraceBase(1) {
		t.Errorf("different phases should pack from the same base: %#x vs %#x",
			l.TraceBase(0), l.TraceBase(1))
	}
	// Copy semantics: main image intact for everything.
	for _, tr := range set.Traces {
		if _, ok := l.MainImageBase(tr.ID); !ok {
			t.Errorf("trace %d lost its main-image slot", tr.ID)
		}
	}
}

func TestNewOverlayPerPhaseCapacity(t *testing.T) {
	set := fixture(t)
	n := len(set.Traces)
	phase := make([]int, n)
	for i := range phase {
		phase[i] = 0 // everything in one phase: must exceed a tiny SPM
	}
	if _, err := NewOverlay(set, phase, 1, Options{Mode: Copy, SPMSize: 16}); err == nil {
		t.Fatal("expected per-phase capacity error")
	}
}

func TestNewOverlayRejectsBadInput(t *testing.T) {
	set := fixture(t)
	n := len(set.Traces)
	if _, err := NewOverlay(set, make([]int, n+1), 1, Options{Mode: Copy, SPMSize: 64}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	phase := make([]int, n)
	for i := range phase {
		phase[i] = -1
	}
	phase[0] = 5
	if _, err := NewOverlay(set, phase, 2, Options{Mode: Copy, SPMSize: 1024}); err == nil {
		t.Fatal("out-of-range phase accepted")
	}
	if _, err := NewOverlay(set, phase, 6, Options{Mode: Move, SPMSize: 1024}); err == nil {
		t.Fatal("move semantics accepted for overlay")
	}
}
