package core

import (
	"context"
	"fmt"

	"repro/internal/conflict"
	"repro/internal/ilp"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DataAccessCounts derives per-data-object access counts from a profile:
// each block execution contributes its annotated loads and stores. This
// is the data-side analogue of the trace fetch counts f_i.
func DataAccessCounts(p *ir.Program, prof *sim.Profile) []int64 {
	counts := make([]int64, len(p.Data))
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			execs := prof.BlockCount(ir.BlockRef{Func: f.ID, Block: b.ID})
			if execs == 0 {
				continue
			}
			for _, r := range b.DataRefs {
				counts[r.Obj] += execs * int64(r.Accesses())
			}
		}
	}
	return counts
}

// DataParams extends Params for the joint code+data allocation — the
// paper's §7 future work ("preloading of data"). The data side follows
// Steinke's DATE 2002 model: the architecture has no data cache, so a
// data access is served either by the scratchpad or by off-chip main
// memory; placing a hot object on-chip saves (EMainData − ESPHit) per
// access. Data objects occupy the same scratchpad as code traces, so the
// two compete for capacity in one ILP.
type DataParams struct {
	// Params carries the code-side configuration.
	Params
	// EMainData is the energy (nJ) of one off-chip data access.
	EMainData float64
}

func (p DataParams) validate() error {
	if err := p.Params.validate(); err != nil {
		return err
	}
	if p.EMainData <= p.ESPHit {
		return fmt.Errorf("core: off-chip data access %g must exceed scratchpad access %g",
			p.EMainData, p.ESPHit)
	}
	return nil
}

// DataAllocation is the joint result.
type DataAllocation struct {
	// InSPM selects the code traces placed on the scratchpad.
	InSPM []bool
	// DataInSPM selects the data objects placed on the scratchpad.
	DataInSPM []bool
	// CodeBytes and DataBytes split the scratchpad occupancy.
	CodeBytes int
	DataBytes int
	// PredictedEnergy is the model objective (nJ), covering instruction
	// fetches, conflict misses and data accesses.
	PredictedEnergy float64
	// Status and Nodes report solver outcome and effort.
	Status ilp.Status
	Nodes  int
}

// AllocateWithData solves the joint code+data scratchpad allocation.
func AllocateWithData(set *trace.Set, g *conflict.Graph, data []ir.DataObject,
	accesses []int64, p DataParams) (*DataAllocation, error) {

	if err := p.validate(); err != nil {
		return nil, err
	}
	if len(data) != len(accesses) {
		return nil, fmt.Errorf("core: %d data objects, %d access counts", len(data), len(accesses))
	}
	// Reuse the code-side formulation, then extend it.
	m, l, err := BuildModel(set, g, p.Params)
	if err != nil {
		return nil, err
	}
	obj, sense := m.Objective()

	// d_k = 1 places data object k on the scratchpad.
	d := make([]ilp.Var, len(data))
	for k, od := range data {
		v := m.AddBinary(fmt.Sprintf("d_%d", k))
		if od.SizeBytes > p.SPMSize {
			m.SetBounds(v, 0, 0)
		}
		m.SetBranchPriority(v, 1)
		d[k] = v
		a := float64(accesses[k])
		// Off-chip when d=0, scratchpad when d=1.
		obj = obj.AddConst(a * p.EMainData)
		obj = obj.Add(a*(p.ESPHit-p.EMainData), v)
	}
	m.SetObjective(obj, sense)

	// Shared capacity: the code side contributes Σ S_i (1−l_i) — already a
	// constraint in the base model; replace it with the joint one.
	// BuildModel named it "spm_capacity"; add the data terms to a fresh
	// joint constraint and neutralize the old one by... constraints cannot
	// be removed, so instead of rewriting we add the joint constraint and
	// rely on it dominating the code-only one (data sizes are
	// non-negative, so the joint constraint is strictly tighter).
	joint := ilp.LinExpr{}
	total := 0
	for i, t := range set.Traces {
		joint = joint.Add(-float64(t.RawBytes), l[i])
		total += t.RawBytes
	}
	joint = joint.AddConst(float64(total))
	for k, od := range data {
		joint = joint.Add(float64(od.SizeBytes), d[k])
	}
	m.AddConstraint("joint_capacity", joint, ilp.LE, float64(p.SPMSize))

	sol, err := ilp.Solve(context.Background(), m, p.Solver)
	if err != nil {
		return nil, err
	}
	if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
		return nil, fmt.Errorf("core: joint solver returned %v", sol.Status)
	}
	out := &DataAllocation{
		InSPM:           make([]bool, len(set.Traces)),
		DataInSPM:       make([]bool, len(data)),
		PredictedEnergy: sol.Objective,
		Status:          sol.Status,
		Nodes:           sol.Nodes,
	}
	for i := range set.Traces {
		if sol.Value(l[i]) < 0.5 {
			out.InSPM[i] = true
			out.CodeBytes += set.Traces[i].RawBytes
		}
	}
	for k := range data {
		if sol.Value(d[k]) > 0.5 {
			out.DataInSPM[k] = true
			out.DataBytes += data[k].SizeBytes
		}
	}
	if out.CodeBytes+out.DataBytes > p.SPMSize {
		return nil, fmt.Errorf("core: internal error: joint allocation %d+%d exceeds %d",
			out.CodeBytes, out.DataBytes, p.SPMSize)
	}
	return out, nil
}

// DataEnergy evaluates the data side's energy (nJ) for a placement.
func DataEnergy(data []ir.DataObject, accesses []int64, inSPM []bool, p DataParams) float64 {
	total := 0.0
	for k := range data {
		a := float64(accesses[k])
		if inSPM[k] {
			total += a * p.ESPHit
		} else {
			total += a * p.EMainData
		}
	}
	return total
}

// DataOnlySelect selects the best data-only scratchpad placement (code all
// cached): the subset of data objects fitting the scratchpad that
// maximizes access savings. Data-object counts are tiny, so exhaustive
// enumeration is exact and instant; it refuses more than 20 objects.
func DataOnlySelect(data []ir.DataObject, accesses []int64, p DataParams) ([]bool, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if len(data) != len(accesses) {
		return nil, fmt.Errorf("core: %d data objects, %d access counts", len(data), len(accesses))
	}
	if len(data) > 20 {
		return nil, fmt.Errorf("core: %d data objects exceed the 2^20 enumeration limit", len(data))
	}
	saving := p.EMainData - p.ESPHit
	best := make([]bool, len(data))
	bestVal := 0.0
	sel := make([]bool, len(data))
	for mask := 0; mask < 1<<len(data); mask++ {
		bytes := 0
		val := 0.0
		for k := range data {
			if mask&(1<<k) == 0 {
				sel[k] = false
				continue
			}
			sel[k] = true
			bytes += data[k].SizeBytes
			val += float64(accesses[k]) * saving
		}
		if bytes <= p.SPMSize && val > bestVal {
			bestVal = val
			copy(best, sel)
		}
	}
	return best, nil
}
