// Package core implements the paper's contribution: the Cache-Aware
// Scratchpad Allocation (CASA) algorithm (§4).
//
// Given the trace partition of a program, its conflict graph and the
// per-access energies of the hierarchy, CASA selects the subset of traces
// to copy into the scratchpad that minimizes total instruction-memory
// energy, accounting for the conflict misses that disappear when either
// endpoint of a conflict edge leaves the cache. The selection problem is a
// variant of Maximum Independent Set and is solved exactly as a 0/1 ILP
// (equations (7)–(17) of the paper) with the bundled solver.
//
// The quadratic miss term l(x_i)·l(x_j) is linearized through variables
// L(x_i,x_j). Two linearizations are provided:
//
//   - Faithful: the paper's constraints (13)–(15) with L binary. Note that
//     (15), l_i + l_j − 2L ≤ 1, only forces L = 1 for l_i = l_j = 1
//     because L is integral (the LP relaxation admits L = ½).
//   - Tight: L ≥ l_i + l_j − 1 with L continuous in [0,1]. Equivalent
//     optimum, stronger relaxation, fewer integer variables — the default.
//
// The package also provides a greedy allocator over the same fine-grained
// energy model (for the ablation benches) and the paper's §4 extension to
// multiple scratchpads at the same hierarchy level.
package core

import (
	"context"
	"fmt"

	"repro/internal/conflict"
	"repro/internal/ilp"
	"repro/internal/obs"
	"repro/internal/trace"
)

// mFallbackGreedy counts allocations that fell back to GreedyAllocate
// because the anytime solver stopped with no incumbent.
var mFallbackGreedy = obs.GetCounter("casa_fallback_greedy_total")

// Linearization selects how the quadratic term is linearized.
type Linearization int

const (
	// Tight uses L ≥ l_i + l_j − 1 with continuous L (default).
	Tight Linearization = iota
	// Faithful uses the paper's constraints (13)–(15) with binary L.
	Faithful
)

// String returns the linearization name.
func (l Linearization) String() string {
	if l == Faithful {
		return "faithful"
	}
	return "tight"
}

// Params configures an allocation.
type Params struct {
	// SPMSize is the scratchpad capacity in bytes.
	SPMSize int
	// ESPHit is the scratchpad energy per access (nJ) — E_SP_hit.
	ESPHit float64
	// ECacheHit is the I-cache energy per hit (nJ) — E_Cache_hit.
	ECacheHit float64
	// ECacheMiss is the I-cache energy per miss (nJ) — E_Cache_miss.
	ECacheMiss float64
	// Linearization selects the ILP linearization.
	Linearization Linearization
	// MaxEdges prunes the conflict graph to the heaviest edges before
	// formulation; <= 0 keeps every edge.
	MaxEdges int
	// Solver tunes the bundled ILP solver.
	Solver ilp.Options
}

func (p Params) validate() error {
	if p.SPMSize < 0 {
		return fmt.Errorf("core: negative scratchpad size %d", p.SPMSize)
	}
	if p.ESPHit <= 0 || p.ECacheHit <= 0 || p.ECacheMiss <= 0 {
		return fmt.Errorf("core: energies must be positive (spm=%g hit=%g miss=%g)",
			p.ESPHit, p.ECacheHit, p.ECacheMiss)
	}
	if p.ECacheMiss <= p.ECacheHit {
		return fmt.Errorf("core: miss energy %g must exceed hit energy %g",
			p.ECacheMiss, p.ECacheHit)
	}
	return nil
}

// Allocation is the result of a CASA run.
type Allocation struct {
	// InSPM[i] reports whether trace i is copied to the scratchpad.
	InSPM []bool
	// UsedBytes is the scratchpad space consumed (raw trace sizes).
	UsedBytes int
	// PredictedEnergy is the model's total energy E_Total (nJ, eq. 16) for
	// the chosen selection, under the profiling run's conflict counts.
	PredictedEnergy float64
	// Status is the solver status (Optimal for every bundled workload).
	Status ilp.Status
	// Nodes and SimplexIters report solver effort.
	Nodes        int
	SimplexIters int
	// Degraded marks an anytime result: the solve budget or context cut
	// the search short, so the selection is the best incumbent (or the
	// greedy fallback) rather than a proven optimum.
	Degraded bool
	// DegradedReason says why ("deadline", "canceled", "node-limit",
	// "fault:solver-deadline"); empty when Degraded is false.
	DegradedReason string
	// Gap is the relative optimality gap of a degraded incumbent
	// (zero for proven-optimal results and greedy fallbacks).
	Gap float64
	// Fallback reports that the solver produced no incumbent at all and
	// the selection came from GreedyAllocate.
	Fallback bool
	// Hot is the solver's transferable warm state (final basis and
	// pseudocosts), set on proven-optimal incremental-mode solves. Warm
	// planners hand it to a neighboring cell via Params.Solver.HotStart.
	Hot *ilp.HotStart
}

// NumInSPM returns the number of selected traces.
func (a *Allocation) NumInSPM() int {
	n := 0
	for _, in := range a.InSPM {
		if in {
			n++
		}
	}
	return n
}

// BuildModel constructs the CASA ILP for the given inputs and returns the
// model plus the location variables l(x_i), indexed by trace ID. It is
// exported separately from Allocate so tools can dump the formulation in
// LP format.
func BuildModel(set *trace.Set, g *conflict.Graph, p Params) (*ilp.Model, []ilp.Var, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	if g.N() != len(set.Traces) {
		return nil, nil, fmt.Errorf("core: graph has %d vertices, trace set has %d",
			g.N(), len(set.Traces))
	}
	if p.MaxEdges > 0 {
		g = g.Prune(p.MaxEdges)
	}

	m := ilp.NewModel()
	n := len(set.Traces)

	// Location variables l(x_i): 0 = scratchpad, 1 = cached main memory
	// (eq. 7). Oversized traces are pinned to 1.
	l := make([]ilp.Var, n)
	for i, t := range set.Traces {
		v := m.AddBinary(fmt.Sprintf("l_%d", i))
		if t.RawBytes > p.SPMSize {
			m.SetBounds(v, 1, 1)
		}
		// The l's are the real decisions; linearization variables are
		// implied once they are fixed, so branch on l's first.
		m.SetBranchPriority(v, 1)
		l[i] = v
	}

	// Objective (eq. 12):
	//   E(x_i) = f_i·E_SP
	//          + f_i·(E_hit − E_SP)·l_i
	//          + (E_miss − E_hit)·Σ_j m_ij·L_ij
	// Self-edges use L_ii = l_i·l_i = l_i and fold into the linear term.
	obj := ilp.LinExpr{}
	missDelta := p.ECacheMiss - p.ECacheHit
	for i, t := range set.Traces {
		obj = obj.AddConst(float64(t.Fetches) * p.ESPHit)
		obj = obj.Add(float64(t.Fetches)*(p.ECacheHit-p.ESPHit), l[i])
	}
	for _, e := range g.Edges() {
		w := missDelta * float64(e.Misses)
		if e.From == e.To {
			obj = obj.Add(w, l[e.From])
			continue
		}
		kind := ilp.Continuous
		if p.Linearization == Faithful {
			kind = ilp.Binary
		}
		L := m.AddVar(fmt.Sprintf("L_%d_%d", e.From, e.To), kind, 0, 1)
		obj = obj.Add(w, L)
		// Linearization rows are named by edge (not the positional c%d
		// default) so a neighboring cell's basis maps through the rows the
		// two formulations share (ilp.HotStart); names play no role in
		// solving or hashing (ilp.Session ignores them).
		switch p.Linearization {
		case Faithful:
			// (13) l_i − L ≥ 0, (14) l_j − L ≥ 0, (15) l_i + l_j − 2L ≤ 1.
			m.AddConstraint(fmt.Sprintf("lin_from_%d_%d", e.From, e.To), ilp.Expr(1, l[e.From], -1, L), ilp.GE, 0)
			m.AddConstraint(fmt.Sprintf("lin_to_%d_%d", e.From, e.To), ilp.Expr(1, l[e.To], -1, L), ilp.GE, 0)
			m.AddConstraint(fmt.Sprintf("lin_and_%d_%d", e.From, e.To), ilp.Expr(1, l[e.From], 1, l[e.To], -2, L), ilp.LE, 1)
		case Tight:
			// L ≥ l_i + l_j − 1; minimization pushes L down to the bound.
			m.AddConstraint(fmt.Sprintf("lin_%d_%d", e.From, e.To), ilp.Expr(1, l[e.From], 1, l[e.To], -1, L), ilp.LE, 1)
		}
	}
	m.SetObjective(obj, ilp.Minimize)

	// Scratchpad capacity (eq. 17): Σ (1 − l_i)·S(x_i) ≤ SPMSize, with
	// S(x_i) the raw (NOP-stripped) size.
	sizeExpr := ilp.LinExpr{}
	totalSize := 0
	for i, t := range set.Traces {
		sizeExpr = sizeExpr.Add(-float64(t.RawBytes), l[i])
		totalSize += t.RawBytes
	}
	sizeExpr = sizeExpr.AddConst(float64(totalSize))
	m.AddConstraint("spm_capacity", sizeExpr, ilp.LE, float64(p.SPMSize))

	return m, l, nil
}

// Allocate runs CASA: it formulates and solves the ILP and returns the
// optimal trace selection. The context carries the optional tracing span
// tree (obs.WithTracer); ilp-build and ilp-solve are recorded separately
// because their costs scale differently with the conflict graph.
func Allocate(ctx context.Context, set *trace.Set, g *conflict.Graph, p Params) (*Allocation, error) {
	ctx, bs := obs.StartSpan(ctx, "ilp-build")
	m, l, err := BuildModel(set, g, p)
	bs.SetAttr("vars", 0)
	if m != nil {
		bs.SetAttr("vars", m.NumVars())
	}
	bs.End()
	if err != nil {
		return nil, err
	}
	if p.Solver.Trace == nil && obs.TraceEnabled() {
		p.Solver.Trace = obs.TraceWriter()
	}
	_, ss := obs.StartSpan(ctx, "ilp-solve")
	sol, err := ilp.Solve(ctx, m, p.Solver)
	if sol != nil {
		ss.SetAttr("nodes", sol.Nodes)
		ss.SetAttr("iters", sol.SimplexIters)
		if sol.Degraded {
			ss.SetAttr("degraded", sol.DegradedReason)
			ss.SetAttr("gap", sol.Gap)
			if sol.Status == ilp.Aborted {
				ss.SetAttr("fallback", "greedy")
			}
		}
	}
	ss.End()
	if err != nil {
		return nil, err
	}
	if sol.Status == ilp.Aborted {
		// Anytime contract: the budget (or an injected fault) expired
		// before the tree produced a single incumbent. Fall back to the
		// greedy allocator so the request still terminates with a feasible
		// selection, and label the result.
		mFallbackGreedy.Inc()
		a, gerr := GreedyAllocate(ctx, set, g, p)
		if gerr != nil {
			return nil, gerr
		}
		a.Degraded = true
		a.DegradedReason = sol.DegradedReason
		a.Fallback = true
		a.Nodes = sol.Nodes
		a.SimplexIters = sol.SimplexIters
		return a, nil
	}
	if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
		return nil, fmt.Errorf("core: solver returned %v", sol.Status)
	}
	a := &Allocation{
		InSPM:          make([]bool, len(set.Traces)),
		Status:         sol.Status,
		Nodes:          sol.Nodes,
		SimplexIters:   sol.SimplexIters,
		Degraded:       sol.Degraded,
		DegradedReason: sol.DegradedReason,
		Gap:            sol.Gap,
		Hot:            sol.HotStart,
	}
	for i := range set.Traces {
		if sol.Value(l[i]) < 0.5 {
			a.InSPM[i] = true
			a.UsedBytes += set.Traces[i].RawBytes
		}
	}
	a.PredictedEnergy = sol.Objective
	if a.UsedBytes > p.SPMSize {
		return nil, fmt.Errorf("core: internal error: allocation uses %d of %d bytes",
			a.UsedBytes, p.SPMSize)
	}
	return a, nil
}

// PredictEnergy evaluates the paper's energy model (eq. 16) for an
// arbitrary selection, using the profiling run's conflict counts. It is
// the objective CASA optimizes, restated for any allocator.
func PredictEnergy(set *trace.Set, g *conflict.Graph, p Params, inSPM []bool) float64 {
	total := 0.0
	missDelta := p.ECacheMiss - p.ECacheHit
	for i, t := range set.Traces {
		if inSPM[i] {
			total += float64(t.Fetches) * p.ESPHit
			continue
		}
		total += float64(t.Fetches) * p.ECacheHit
		for _, e := range g.OutEdges(i) {
			if !inSPM[e.To] {
				total += missDelta * float64(e.Misses)
			}
		}
	}
	return total
}

// GreedyAllocate is the ablation baseline: the same fine-grained energy
// model optimized greedily instead of exactly. Each step moves the trace
// with the best marginal energy saving per byte into the scratchpad,
// re-evaluating marginals as conflicts disappear, until nothing fits or no
// move saves energy.
func GreedyAllocate(ctx context.Context, set *trace.Set, g *conflict.Graph, p Params) (*Allocation, error) {
	_, sp := obs.StartSpan(ctx, "greedy-allocate")
	defer sp.End()
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(set.Traces)
	inSPM := make([]bool, n)
	free := p.SPMSize
	missDelta := p.ECacheMiss - p.ECacheHit

	marginal := func(i int) float64 {
		// Energy saved by moving trace i into the scratchpad now.
		t := set.Traces[i]
		save := float64(t.Fetches) * (p.ECacheHit - p.ESPHit)
		for _, e := range g.OutEdges(i) {
			if !inSPM[e.To] {
				save += missDelta * float64(e.Misses) // i stops missing
			}
		}
		for j := 0; j < n; j++ {
			if inSPM[j] || j == i {
				continue
			}
			if m := g.Misses(j, i); m > 0 {
				save += missDelta * float64(m) // i stops evicting j
			}
		}
		return save
	}

	for {
		best, bestScore := -1, 0.0
		for i, t := range set.Traces {
			if inSPM[i] || t.RawBytes > free || t.RawBytes == 0 {
				continue
			}
			save := marginal(i)
			if save <= 0 {
				continue
			}
			score := save / float64(set.Traces[i].RawBytes)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			break
		}
		inSPM[best] = true
		free -= set.Traces[best].RawBytes
	}

	a := &Allocation{InSPM: inSPM, UsedBytes: p.SPMSize - free, Status: ilp.Feasible}
	a.PredictedEnergy = PredictEnergy(set, g, p, inSPM)
	return a, nil
}
