package core

import (
	"math"
	"testing"

	"repro/internal/conflict"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

// dataFixture builds a program with one hot loop trace and two data
// objects: a hot table accessed every iteration and a cold buffer.
func dataFixture(t *testing.T) (*ir.Program, *trace.Set, *conflict.Graph, []int64) {
	t.Helper()
	pb := ir.NewProgramBuilder("data")
	pb.DataObject("hot_table", 64)
	pb.DataObject("cold_buffer", 512)
	f := pb.Func("main")
	f.Block("loop").Code(10).Data("hot_table", 3, 1).
		Branch("loop", "out", ir.Loop{Trips: 500})
	f.Block("out").Code(2).Data("cold_buffer", 1, 0)
	f.Block("exit").Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: 4096, LineBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	return p, set, conflict.New(fetches), DataAccessCounts(p, prof)
}

func dataParams(spm int) DataParams {
	return DataParams{
		Params:    defaultParams(spm),
		EMainData: 12,
	}
}

func TestDataAccessCounts(t *testing.T) {
	p, _, _, counts := dataFixture(t)
	if len(counts) != len(p.Data) {
		t.Fatalf("%d counts for %d objects", len(counts), len(p.Data))
	}
	// hot_table: 500 executions × (3+1) accesses.
	if counts[0] != 2000 {
		t.Errorf("hot_table accesses = %d, want 2000", counts[0])
	}
	// cold_buffer: 1 execution × 1 load.
	if counts[1] != 1 {
		t.Errorf("cold_buffer accesses = %d, want 1", counts[1])
	}
}

func TestDataParamsValidate(t *testing.T) {
	_, set, g, counts := dataFixture(t)
	bad := dataParams(128)
	bad.EMainData = bad.ESPHit // off-chip must cost more
	if _, err := AllocateWithData(set, g, nil, nil, bad); err == nil {
		t.Error("bad EMainData accepted")
	}
	good := dataParams(128)
	if _, err := AllocateWithData(set, g, nil, counts, good); err == nil {
		t.Error("mismatched data/accesses accepted")
	}
}

func TestJointAllocationPlacesHotData(t *testing.T) {
	p, set, g, counts := dataFixture(t)
	// Capacity for the hot table plus a little code.
	a, err := AllocateWithData(set, g, p.Data, counts, dataParams(128))
	if err != nil {
		t.Fatalf("AllocateWithData: %v", err)
	}
	if !a.DataInSPM[0] {
		t.Error("hot table not placed (2000 off-chip accesses at 12 nJ!)")
	}
	if a.DataInSPM[1] {
		t.Error("cold 512B buffer placed into a 128B scratchpad")
	}
	if a.CodeBytes+a.DataBytes > 128 {
		t.Errorf("capacity violated: %d+%d", a.CodeBytes, a.DataBytes)
	}
}

func TestJointMatchesExhaustive(t *testing.T) {
	p, set, g, counts := dataFixture(t)
	prm := dataParams(96)
	a, err := AllocateWithData(set, g, p.Data, counts, prm)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive search over code subsets × data subsets.
	nT := len(set.Traces)
	nD := len(p.Data)
	best := math.Inf(1)
	codeSel := make([]bool, nT)
	dataSel := make([]bool, nD)
	for cm := 0; cm < 1<<nT; cm++ {
		bytes := 0
		for i := 0; i < nT; i++ {
			codeSel[i] = cm&(1<<i) != 0
			if codeSel[i] {
				bytes += set.Traces[i].RawBytes
			}
		}
		for dm := 0; dm < 1<<nD; dm++ {
			db := bytes
			for k := 0; k < nD; k++ {
				dataSel[k] = dm&(1<<k) != 0
				if dataSel[k] {
					db += p.Data[k].SizeBytes
				}
			}
			if db > prm.SPMSize {
				continue
			}
			e := PredictEnergy(set, g, prm.Params, codeSel) +
				DataEnergy(p.Data, counts, dataSel, prm)
			if e < best {
				best = e
			}
		}
	}
	if math.Abs(a.PredictedEnergy-best) > 1e-6 {
		t.Errorf("joint ILP %g vs exhaustive %g", a.PredictedEnergy, best)
	}
}

func TestDataOnlySelect(t *testing.T) {
	p, _, _, counts := dataFixture(t)
	sel, err := DataOnlySelect(p.Data, counts, dataParams(128))
	if err != nil {
		t.Fatal(err)
	}
	if !sel[0] || sel[1] {
		t.Errorf("selection = %v, want hot table only", sel)
	}
	// Zero capacity: nothing fits.
	sel, err = DataOnlySelect(p.Data, counts, dataParams(0))
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] || sel[1] {
		t.Errorf("zero capacity placed something: %v", sel)
	}
}

func TestDataEnergyAccounting(t *testing.T) {
	p, _, _, counts := dataFixture(t)
	prm := dataParams(128)
	all := []bool{true, true}
	none := []bool{false, false}
	eAll := DataEnergy(p.Data, counts, all, prm)
	eNone := DataEnergy(p.Data, counts, none, prm)
	wantAll := float64(counts[0]+counts[1]) * prm.ESPHit
	wantNone := float64(counts[0]+counts[1]) * prm.EMainData
	if math.Abs(eAll-wantAll) > 1e-9 || math.Abs(eNone-wantNone) > 1e-9 {
		t.Errorf("DataEnergy wrong: %g/%g vs %g/%g", eAll, eNone, wantAll, wantNone)
	}
}

func TestDataValidationInIR(t *testing.T) {
	pb := ir.NewProgramBuilder("bad")
	pb.DataObject("t", 16)
	f := pb.Func("main")
	f.Block("a").Code(2).Data("nope", 1, 0)
	f.Block("b").Return()
	if _, err := pb.Build(); err == nil {
		t.Error("unknown data object accepted")
	}

	pb2 := ir.NewProgramBuilder("dup")
	pb2.DataObject("t", 16)
	pb2.DataObject("t", 32)
	pb2.Func("main").Block("a").Return()
	if _, err := pb2.Build(); err == nil {
		t.Error("duplicate data object accepted")
	}
}
