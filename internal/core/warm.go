package core

import (
	"sort"

	"repro/internal/trace"
)

// TransferAllocation maps a donor scratchpad selection onto a different
// configuration of the same program, producing a selection that is
// feasible under the target parameters. The experiment planner uses it
// to turn a neighboring grid cell's optimum into a warm-start cutoff
// for the target cell: PredictEnergy of the returned selection is a
// value some feasible point achieves, so the target ILP can prune
// everything strictly worse.
//
// The two trace sets may partition the program differently (the
// partition cap follows the scratchpad size), so the mapping works at
// block granularity: a target trace is selected when every one of its
// blocks was scratchpad-resident in the donor. If the mapped selection
// overflows the target capacity, the least fetch-dense traces are
// evicted until it fits — any subset is feasible, density just keeps
// the cutoff tight.
//
// Returns nil when the sets describe different programs (no transfer).
func TransferAllocation(donorSet *trace.Set, donorInSPM []bool, set *trace.Set, p Params) []bool {
	if donorSet == nil || set == nil || donorSet.Prog != set.Prog ||
		len(donorInSPM) != len(donorSet.Traces) {
		return nil
	}
	inSPM := make([]bool, len(set.Traces))
	used := 0
	var selected []int
	for i, t := range set.Traces {
		if t.RawBytes > p.SPMSize {
			continue // pinned out, mirroring BuildModel
		}
		all := len(t.Blocks) > 0
		for _, b := range t.Blocks {
			if !donorInSPM[donorSet.TraceIDOf(b)] {
				all = false
				break
			}
		}
		if all {
			inSPM[i] = true
			used += t.RawBytes
			selected = append(selected, i)
		}
	}
	if used > p.SPMSize {
		density := func(t *trace.Trace) float64 {
			if t.RawBytes == 0 {
				return 0 // frees nothing; eviction skips it below
			}
			return float64(t.Fetches) / float64(t.RawBytes)
		}
		sort.SliceStable(selected, func(a, b int) bool {
			return density(set.Traces[selected[a]]) < density(set.Traces[selected[b]])
		})
		for _, i := range selected {
			if used <= p.SPMSize {
				break
			}
			if set.Traces[i].RawBytes == 0 {
				continue
			}
			inSPM[i] = false
			used -= set.Traces[i].RawBytes
		}
	}
	return inSPM
}
