package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/conflict"
	"repro/internal/fault"
	"repro/internal/ilp"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

// makeSet builds a trace set with one trace per entry of loops: each trace
// is a self-looping block (trips iterations of codeInstrs instructions)
// followed by a jump block, so trace formation cannot merge neighbours.
func makeSet(t *testing.T, loops []struct{ Code, Trips int }) *trace.Set {
	t.Helper()
	pb := ir.NewProgramBuilder("synthetic")
	f := pb.Func("main")
	for i, l := range loops {
		head := fmt.Sprintf("h%d", i)
		link := fmt.Sprintf("j%d", i)
		next := fmt.Sprintf("h%d", i+1)
		if i == len(loops)-1 {
			next = "end"
		}
		f.Block(head).Code(l.Code).Branch(head, link, ir.Loop{Trips: l.Trips})
		f.Block(link).ALU(1).Jump(next)
	}
	f.Block("end").Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: 4096, LineBytes: 16})
	if err != nil {
		t.Fatalf("trace.Build: %v", err)
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return set
}

func defaultParams(spm int) Params {
	return Params{
		SPMSize:    spm,
		ESPHit:     0.2,
		ECacheHit:  0.5,
		ECacheMiss: 40,
	}
}

// loopTraces returns the trace IDs of the loop traces (fetch-heavy ones),
// in the order of their defining loops.
func loopTraces(set *trace.Set, n int) []int {
	ids := make([]int, 0, n)
	for _, tr := range set.Traces {
		if tr.Fetches > 1 && len(ids) < n {
			ids = append(ids, tr.ID)
		}
	}
	return ids
}

func TestParamsValidate(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{{10, 5}})
	g := conflict.New(make([]int64, len(set.Traces)))
	bad := []Params{
		{SPMSize: -1, ESPHit: 1, ECacheHit: 2, ECacheMiss: 3},
		{SPMSize: 64, ESPHit: 0, ECacheHit: 2, ECacheMiss: 3},
		{SPMSize: 64, ESPHit: 1, ECacheHit: 0, ECacheMiss: 3},
		{SPMSize: 64, ESPHit: 1, ECacheHit: 2, ECacheMiss: 2},
	}
	for _, p := range bad {
		if _, err := Allocate(context.Background(), set, g, p); err == nil {
			t.Errorf("Allocate accepted %+v", p)
		}
		if _, err := GreedyAllocate(context.Background(), set, g, p); err == nil {
			t.Errorf("GreedyAllocate accepted %+v", p)
		}
	}
	// Mismatched graph size.
	if _, err := Allocate(context.Background(), set, conflict.New(make([]int64, 99)), defaultParams(64)); err == nil {
		t.Error("Allocate accepted mismatched graph")
	}
}

func TestLinearizationString(t *testing.T) {
	if Tight.String() != "tight" || Faithful.String() != "faithful" {
		t.Error("linearization names")
	}
}

func TestNoConflictsReducesToKnapsack(t *testing.T) {
	// Three loops with distinct heat; no conflict edges. CASA should pick
	// the fetch-densest set that fits.
	set := makeSet(t, []struct{ Code, Trips int }{
		{10, 1000}, // hot, (10+1+1+1)*4 = 52B raw
		{10, 10},   // lukewarm
		{10, 500},  // hot
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	g := conflict.New(fetches)
	ids := loopTraces(set, 3)
	// Room for exactly two loop traces.
	spm := set.Traces[ids[0]].RawBytes + set.Traces[ids[2]].RawBytes
	a, err := Allocate(context.Background(), set, g, defaultParams(spm))
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if a.Status != ilp.Optimal {
		t.Fatalf("status %v", a.Status)
	}
	if !a.InSPM[ids[0]] || !a.InSPM[ids[2]] {
		t.Errorf("expected the two hot loops in SPM; got %v", a.InSPM)
	}
	if a.InSPM[ids[1]] {
		t.Error("lukewarm loop should stay cached")
	}
	if a.UsedBytes > spm {
		t.Errorf("capacity violated: %d > %d", a.UsedBytes, spm)
	}
}

func TestConflictsChangeTheChoice(t *testing.T) {
	// Two moderately hot loops (A, B) thrash each other badly; a third (C)
	// is slightly hotter but conflict-free. With room for one trace only,
	// a cache-unaware knapsack picks C; CASA must weigh the conflict
	// misses it can remove and pick A or B.
	set := makeSet(t, []struct{ Code, Trips int }{
		{10, 400}, // A
		{10, 400}, // B
		{10, 500}, // C — highest f_i
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	g := conflict.New(fetches)
	ids := loopTraces(set, 3)
	// Massive mutual thrashing between A and B.
	g.AddMisses(ids[0], ids[1], 300)
	g.AddMisses(ids[1], ids[0], 300)

	spm := set.Traces[ids[0]].RawBytes // room for one
	p := defaultParams(spm)
	a, err := Allocate(context.Background(), set, g, p)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if !a.InSPM[ids[0]] && !a.InSPM[ids[1]] {
		t.Errorf("CASA should remove the thrashing pair's misses; chose %v", a.InSPM)
	}
	if a.InSPM[ids[2]] {
		t.Error("C does not fit together with A/B")
	}
	// Sanity: the cache-unaware choice (C) really is worse under the model.
	inC := make([]bool, len(set.Traces))
	inC[ids[2]] = true
	if PredictEnergy(set, g, p, inC) <= a.PredictedEnergy {
		t.Error("test premise broken: C should be the worse choice")
	}
}

func TestFaithfulAndTightAgree(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{
		{8, 200}, {12, 300}, {6, 150}, {10, 250},
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	ids := loopTraces(set, 4)
	g := conflict.New(fetches)
	g.AddMisses(ids[0], ids[1], 120)
	g.AddMisses(ids[1], ids[0], 90)
	g.AddMisses(ids[2], ids[3], 60)
	g.AddMisses(ids[3], ids[0], 45)

	for _, spm := range []int{64, 96, 160} {
		pt := defaultParams(spm)
		pt.Linearization = Tight
		pf := defaultParams(spm)
		pf.Linearization = Faithful
		at, err := Allocate(context.Background(), set, g, pt)
		if err != nil {
			t.Fatalf("tight: %v", err)
		}
		af, err := Allocate(context.Background(), set, g, pf)
		if err != nil {
			t.Fatalf("faithful: %v", err)
		}
		if math.Abs(at.PredictedEnergy-af.PredictedEnergy) > 1e-6 {
			t.Errorf("spm %d: tight %g vs faithful %g",
				spm, at.PredictedEnergy, af.PredictedEnergy)
		}
	}
}

func TestSelfConflictHandled(t *testing.T) {
	// One trace with heavy self-eviction: placing it in the SPM removes
	// those misses; CASA must prefer it over an equally hot clean trace
	// when only one fits.
	set := makeSet(t, []struct{ Code, Trips int }{
		{10, 300}, // self-thrashing
		{10, 300}, // clean
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	ids := loopTraces(set, 2)
	g := conflict.New(fetches)
	g.AddMisses(ids[0], ids[0], 200)

	spm := set.Traces[ids[0]].RawBytes
	a, err := Allocate(context.Background(), set, g, defaultParams(spm))
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if !a.InSPM[ids[0]] {
		t.Errorf("self-conflicting trace should win the slot; got %v", a.InSPM)
	}
}

func TestOversizedTraceNeverSelected(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{
		{100, 1000}, // ~400B, very hot
		{5, 50},     // small
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	g := conflict.New(fetches)
	ids := loopTraces(set, 2)
	spm := set.Traces[ids[1]].RawBytes + 8 // big trace cannot fit
	a, err := Allocate(context.Background(), set, g, defaultParams(spm))
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if a.InSPM[ids[0]] {
		t.Error("oversized trace selected")
	}
	if !a.InSPM[ids[1]] {
		t.Error("fitting hot trace not selected")
	}
}

func TestPredictedEnergyMatchesEval(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{
		{8, 100}, {9, 200}, {7, 150},
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	ids := loopTraces(set, 3)
	g := conflict.New(fetches)
	g.AddMisses(ids[0], ids[1], 40)
	g.AddMisses(ids[1], ids[2], 25)
	p := defaultParams(80)
	a, err := Allocate(context.Background(), set, g, p)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	recomputed := PredictEnergy(set, g, p, a.InSPM)
	if math.Abs(recomputed-a.PredictedEnergy) > 1e-6 {
		t.Errorf("PredictEnergy %g != solver objective %g", recomputed, a.PredictedEnergy)
	}
}

// TestILPMatchesExhaustive enumerates all feasible selections on small
// random instances and checks CASA finds the minimum-energy one.
func TestILPMatchesExhaustive(t *testing.T) {
	rng := uint64(7)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for trial := 0; trial < 12; trial++ {
		nLoops := 4 + next(3) // 4..6 loop traces
		loops := make([]struct{ Code, Trips int }, nLoops)
		for i := range loops {
			loops[i] = struct{ Code, Trips int }{Code: 4 + next(10), Trips: 10 + next(400)}
		}
		set := makeSet(t, loops)
		fetches := make([]int64, len(set.Traces))
		for i, tr := range set.Traces {
			fetches[i] = tr.Fetches
		}
		g := conflict.New(fetches)
		ids := loopTraces(set, nLoops)
		for e := 0; e < nLoops; e++ {
			a, b := ids[next(nLoops)], ids[next(nLoops)]
			g.AddMisses(a, b, int64(10+next(200)))
		}
		p := defaultParams(40 + next(200))
		a, err := Allocate(context.Background(), set, g, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Exhaustive enumeration over all traces (cold link traces too).
		n := len(set.Traces)
		if n > 16 {
			t.Fatalf("trial %d: too many traces (%d) for enumeration", trial, n)
		}
		best := math.Inf(1)
		sel := make([]bool, n)
		for mask := 0; mask < 1<<n; mask++ {
			bytes := 0
			for i := 0; i < n; i++ {
				sel[i] = mask&(1<<i) != 0
				if sel[i] {
					bytes += set.Traces[i].RawBytes
				}
			}
			if bytes > p.SPMSize {
				continue
			}
			if e := PredictEnergy(set, g, p, sel); e < best {
				best = e
			}
		}
		if math.Abs(best-a.PredictedEnergy) > 1e-6 {
			t.Errorf("trial %d: ILP %g vs exhaustive %g", trial, a.PredictedEnergy, best)
		}
	}
}

func TestGreedyIsFeasibleAndNeverBeatsILP(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{
		{10, 500}, {8, 300}, {12, 400}, {6, 100}, {9, 250},
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	ids := loopTraces(set, 5)
	g := conflict.New(fetches)
	g.AddMisses(ids[0], ids[2], 150)
	g.AddMisses(ids[2], ids[0], 120)
	g.AddMisses(ids[1], ids[4], 80)
	for _, spm := range []int{48, 96, 200} {
		p := defaultParams(spm)
		gr, err := GreedyAllocate(context.Background(), set, g, p)
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		if gr.UsedBytes > spm {
			t.Fatalf("greedy overflow: %d > %d", gr.UsedBytes, spm)
		}
		opt, err := Allocate(context.Background(), set, g, p)
		if err != nil {
			t.Fatalf("ilp: %v", err)
		}
		if gr.PredictedEnergy < opt.PredictedEnergy-1e-6 {
			t.Errorf("spm %d: greedy %g beats optimal %g — ILP broken",
				spm, gr.PredictedEnergy, opt.PredictedEnergy)
		}
	}
}

func TestNumInSPM(t *testing.T) {
	a := &Allocation{InSPM: []bool{true, false, true, true}}
	if a.NumInSPM() != 3 {
		t.Errorf("NumInSPM = %d", a.NumInSPM())
	}
}

func TestBuildModelExportsLP(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{{8, 100}, {8, 120}})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	ids := loopTraces(set, 2)
	g := conflict.New(fetches)
	g.AddMisses(ids[0], ids[1], 30)
	m, l, err := BuildModel(set, g, defaultParams(64))
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	if len(l) != len(set.Traces) {
		t.Fatalf("got %d location vars", len(l))
	}
	if m.NumVars() < len(set.Traces)+1 { // l vars + at least one L var
		t.Errorf("model too small: %d vars", m.NumVars())
	}
	// Must be solvable standalone.
	sol, err := ilp.Solve(context.Background(), m, ilp.Options{})
	if err != nil || sol.Status != ilp.Optimal {
		t.Fatalf("solve: %v %v", err, sol.Status)
	}
}

func TestEdgePruning(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{
		{8, 100}, {8, 120}, {8, 140},
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	ids := loopTraces(set, 3)
	g := conflict.New(fetches)
	g.AddMisses(ids[0], ids[1], 100)
	g.AddMisses(ids[1], ids[2], 90)
	g.AddMisses(ids[2], ids[0], 1)
	p := defaultParams(64)
	p.MaxEdges = 2
	m, _, err := BuildModel(set, g, p)
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	// 1 capacity constraint + 2 (pruned) tight linearization rows.
	if got := m.NumConstraints(); got != 3 {
		t.Errorf("constraints = %d, want 3 after pruning", got)
	}
}

func fetchCounts(set *trace.Set) []int64 {
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	return fetches
}

func TestAllocateFallsBackToGreedyOnAbort(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{{12, 40}, {10, 30}, {8, 20}, {6, 10}})
	g := conflict.New(fetchCounts(set))
	p := defaultParams(64)

	// An injected solver deadline aborts the ILP before any incumbent;
	// Allocate must still return a feasible, labeled selection.
	fault.Set(fault.NewPlan().On(fault.SolverDeadline, 1))
	defer fault.Set(nil)
	a, err := Allocate(context.Background(), set, g, p)
	if err != nil {
		t.Fatalf("Allocate under solver fault: %v", err)
	}
	if !a.Fallback || !a.Degraded || a.DegradedReason != "fault:solver-deadline" {
		t.Fatalf("fallback=%v degraded=%v reason=%q, want greedy fallback labeled with the fault",
			a.Fallback, a.Degraded, a.DegradedReason)
	}
	if a.UsedBytes > p.SPMSize {
		t.Fatalf("fallback allocation uses %d of %d bytes", a.UsedBytes, p.SPMSize)
	}

	// The fallback selection matches GreedyAllocate exactly.
	gr, err := GreedyAllocate(context.Background(), set, g, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gr.InSPM {
		if a.InSPM[i] != gr.InSPM[i] {
			t.Fatalf("fallback selection differs from greedy at trace %d", i)
		}
	}

	// With the fault disarmed the same inputs solve to optimality and are
	// not labeled degraded.
	fault.Set(nil)
	a, err = Allocate(context.Background(), set, g, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Degraded || a.Fallback || a.Status != ilp.Optimal {
		t.Fatalf("clean solve: degraded=%v fallback=%v status=%v", a.Degraded, a.Fallback, a.Status)
	}
}

func TestAllocateCanceledContextFallsBack(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{{12, 40}, {10, 30}})
	g := conflict.New(fetchCounts(set))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := Allocate(ctx, set, g, defaultParams(64))
	if err != nil {
		t.Fatalf("Allocate with canceled context: %v", err)
	}
	if !a.Fallback || a.DegradedReason != "canceled" {
		t.Fatalf("fallback=%v reason=%q, want greedy fallback on cancellation", a.Fallback, a.DegradedReason)
	}
}
