package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/conflict"
	"repro/internal/ilp"
)

func multiParams(spms []SPMSpec) MultiParams {
	return MultiParams{SPMs: spms, ECacheHit: 0.5, ECacheMiss: 40}
}

func TestMultiParamsValidate(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{{8, 10}})
	g := conflict.New(make([]int64, len(set.Traces)))
	bad := []MultiParams{
		{},
		{SPMs: []SPMSpec{{Size: -1, ESPHit: 1}}, ECacheHit: 1, ECacheMiss: 2},
		{SPMs: []SPMSpec{{Size: 64, ESPHit: 0}}, ECacheHit: 1, ECacheMiss: 2},
		{SPMs: []SPMSpec{{Size: 64, ESPHit: 1}}, ECacheHit: 0, ECacheMiss: 2},
		{SPMs: []SPMSpec{{Size: 64, ESPHit: 1}}, ECacheHit: 2, ECacheMiss: 2},
	}
	for i, p := range bad {
		if _, err := AllocateMulti(set, g, p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := AllocateMulti(set, conflict.New(make([]int64, 42)),
		multiParams([]SPMSpec{{Size: 64, ESPHit: 0.2}})); err == nil {
		t.Error("mismatched graph accepted")
	}
}

func TestMultiSPMBasicAssignment(t *testing.T) {
	// Two hot loops, two scratchpads each fitting exactly one of them.
	set := makeSet(t, []struct{ Code, Trips int }{
		{10, 500}, {10, 400},
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	g := conflict.New(fetches)
	ids := loopTraces(set, 2)
	size := set.Traces[ids[0]].RawBytes
	p := multiParams([]SPMSpec{
		{Size: size, ESPHit: 0.2},
		{Size: size, ESPHit: 0.3},
	})
	a, err := AllocateMulti(set, g, p)
	if err != nil {
		t.Fatalf("AllocateMulti: %v", err)
	}
	if a.Status != ilp.Optimal {
		t.Fatalf("status %v", a.Status)
	}
	// Both hot traces are placed, the hotter one in the cheaper SPM.
	if a.Assign[ids[0]] == -1 || a.Assign[ids[1]] == -1 {
		t.Fatalf("hot traces unplaced: %v", a.Assign)
	}
	if a.Assign[ids[0]] == a.Assign[ids[1]] {
		t.Fatalf("both traces in one scratchpad: %v", a.Assign)
	}
	if a.Assign[ids[0]] != 0 {
		t.Errorf("hotter trace should take the cheaper scratchpad; got %v", a.Assign)
	}
	for s, used := range a.UsedBytes {
		if used > p.SPMs[s].Size {
			t.Errorf("scratchpad %d over capacity", s)
		}
	}
}

func TestMultiSPMMatchesSingleWhenOneSPM(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{
		{10, 300}, {8, 200}, {12, 250},
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	ids := loopTraces(set, 3)
	g := conflict.New(fetches)
	g.AddMisses(ids[0], ids[1], 80)
	g.AddMisses(ids[1], ids[0], 70)

	spm := 96
	single, err := Allocate(context.Background(), set, g, defaultParams(spm))
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	multi, err := AllocateMulti(set, g, multiParams([]SPMSpec{{Size: spm, ESPHit: 0.2}}))
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	if math.Abs(single.PredictedEnergy-multi.PredictedEnergy) > 1e-6 {
		t.Errorf("single %g vs multi-with-one %g", single.PredictedEnergy, multi.PredictedEnergy)
	}
	for i := range set.Traces {
		if single.InSPM[i] != (multi.Assign[i] == 0) {
			t.Errorf("selection differs at trace %d", i)
		}
	}
}

func TestMultiSPMTwoSmallBeatOneWhenSplitHelps(t *testing.T) {
	// Two hot traces of 56B each. One 56B scratchpad fits one; two 56B
	// scratchpads fit both — energy must strictly improve.
	set := makeSet(t, []struct{ Code, Trips int }{
		{11, 500}, {11, 480},
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	g := conflict.New(fetches)
	ids := loopTraces(set, 2)
	size := set.Traces[ids[0]].RawBytes

	one, err := AllocateMulti(set, g, multiParams([]SPMSpec{{Size: size, ESPHit: 0.2}}))
	if err != nil {
		t.Fatal(err)
	}
	two, err := AllocateMulti(set, g, multiParams([]SPMSpec{
		{Size: size, ESPHit: 0.2}, {Size: size, ESPHit: 0.2},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if two.PredictedEnergy >= one.PredictedEnergy {
		t.Errorf("second scratchpad did not help: %g vs %g",
			two.PredictedEnergy, one.PredictedEnergy)
	}
}

func TestMultiSPMOversizedPinned(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{
		{100, 100}, // too big for either SPM
		{5, 100},
	})
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	g := conflict.New(fetches)
	ids := loopTraces(set, 2)
	a, err := AllocateMulti(set, g, multiParams([]SPMSpec{
		{Size: 64, ESPHit: 0.2}, {Size: 32, ESPHit: 0.15},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if a.Assign[ids[0]] != -1 {
		t.Error("oversized trace assigned to a scratchpad")
	}
	if a.Assign[ids[1]] == -1 {
		t.Error("small hot trace should be placed")
	}
}
