package core

import (
	"context"
	"fmt"

	"repro/internal/conflict"
	"repro/internal/ilp"
	"repro/internal/trace"
)

// SPMSpec describes one scratchpad in a multi-scratchpad hierarchy: its
// capacity and per-access energy.
type SPMSpec struct {
	// Size is the capacity in bytes.
	Size int
	// ESPHit is the energy per access (nJ).
	ESPHit float64
}

// MultiParams configures the paper's §4 extension: several scratchpads at
// the same horizontal level of the hierarchy. The capacity inequality
// (17) is repeated per scratchpad and a new constraint ensures a memory
// object is assigned to at most one of them.
type MultiParams struct {
	// SPMs lists the scratchpads.
	SPMs []SPMSpec
	// ECacheHit and ECacheMiss are the I-cache energies (nJ).
	ECacheHit  float64
	ECacheMiss float64
	// MaxEdges prunes the conflict graph; <= 0 keeps every edge.
	MaxEdges int
	// Solver tunes the ILP solver.
	Solver ilp.Options
}

func (p MultiParams) validate() error {
	if len(p.SPMs) == 0 {
		return fmt.Errorf("core: no scratchpads specified")
	}
	for i, s := range p.SPMs {
		if s.Size < 0 || s.ESPHit <= 0 {
			return fmt.Errorf("core: scratchpad %d invalid (%d bytes, %g nJ)", i, s.Size, s.ESPHit)
		}
	}
	if p.ECacheHit <= 0 || p.ECacheMiss <= p.ECacheHit {
		return fmt.Errorf("core: cache energies invalid (hit=%g miss=%g)",
			p.ECacheHit, p.ECacheMiss)
	}
	return nil
}

// MultiAllocation assigns each trace to a scratchpad or leaves it cached.
type MultiAllocation struct {
	// Assign[i] is the scratchpad index of trace i, or -1 for main memory.
	Assign []int
	// UsedBytes[k] is the space consumed in scratchpad k.
	UsedBytes []int
	// PredictedEnergy is E_Total (nJ) under the model.
	PredictedEnergy float64
	// Status is the solver status.
	Status ilp.Status
	// Nodes reports solver effort.
	Nodes int
}

// AllocateMulti solves the multi-scratchpad variant: binary assignment
// variables a_ik select scratchpad k for trace i; l_i = 1 − Σ_k a_ik is
// the cached-location indicator; the conflict term is linearized as in the
// single-scratchpad tight formulation.
func AllocateMulti(set *trace.Set, g *conflict.Graph, p MultiParams) (*MultiAllocation, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if g.N() != len(set.Traces) {
		return nil, fmt.Errorf("core: graph has %d vertices, trace set has %d",
			g.N(), len(set.Traces))
	}
	if p.MaxEdges > 0 {
		g = g.Prune(p.MaxEdges)
	}

	m := ilp.NewModel()
	n := len(set.Traces)
	k := len(p.SPMs)

	// a[i][s]: trace i lives in scratchpad s.
	a := make([][]ilp.Var, n)
	// l[i]: trace i executes from cached main memory. Continuous; its
	// integrality follows from the equality with the binary a's.
	l := make([]ilp.Var, n)
	for i, t := range set.Traces {
		a[i] = make([]ilp.Var, k)
		assignExpr := ilp.LinExpr{}
		for s := range p.SPMs {
			v := m.AddBinary(fmt.Sprintf("a_%d_%d", i, s))
			if t.RawBytes > p.SPMs[s].Size {
				m.SetBounds(v, 0, 0)
			}
			a[i][s] = v
			assignExpr = assignExpr.Add(1, v)
		}
		l[i] = m.AddContinuous(fmt.Sprintf("l_%d", i), 0, 1)
		// l_i + Σ_s a_is = 1 (also enforces "at most one scratchpad").
		m.AddConstraint(fmt.Sprintf("loc_%d", i), assignExpr.Add(1, l[i]), ilp.EQ, 1)
	}

	obj := ilp.LinExpr{}
	missDelta := p.ECacheMiss - p.ECacheHit
	for i, t := range set.Traces {
		f := float64(t.Fetches)
		obj = obj.Add(f*p.ECacheHit, l[i])
		for s := range p.SPMs {
			obj = obj.Add(f*p.SPMs[s].ESPHit, a[i][s])
		}
	}
	for _, e := range g.Edges() {
		w := missDelta * float64(e.Misses)
		if e.From == e.To {
			obj = obj.Add(w, l[e.From])
			continue
		}
		L := m.AddContinuous(fmt.Sprintf("L_%d_%d", e.From, e.To), 0, 1)
		obj = obj.Add(w, L)
		m.AddConstraint("", ilp.Expr(1, l[e.From], 1, l[e.To], -1, L), ilp.LE, 1)
	}
	m.SetObjective(obj, ilp.Minimize)

	// Capacity per scratchpad: Σ_i a_is·S(x_i) ≤ Size_s.
	for s := range p.SPMs {
		cap := ilp.LinExpr{}
		for i, t := range set.Traces {
			cap = cap.Add(float64(t.RawBytes), a[i][s])
		}
		m.AddConstraint(fmt.Sprintf("spm%d_capacity", s), cap, ilp.LE, float64(p.SPMs[s].Size))
	}

	sol, err := ilp.Solve(context.Background(), m, p.Solver)
	if err != nil {
		return nil, err
	}
	if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
		return nil, fmt.Errorf("core: multi-SPM solver returned %v", sol.Status)
	}
	out := &MultiAllocation{
		Assign:          make([]int, n),
		UsedBytes:       make([]int, k),
		PredictedEnergy: sol.Objective,
		Status:          sol.Status,
		Nodes:           sol.Nodes,
	}
	for i := range set.Traces {
		out.Assign[i] = -1
		for s := range p.SPMs {
			if sol.Value(a[i][s]) > 0.5 {
				out.Assign[i] = s
				out.UsedBytes[s] += set.Traces[i].RawBytes
				break
			}
		}
	}
	for s, used := range out.UsedBytes {
		if used > p.SPMs[s].Size {
			return nil, fmt.Errorf("core: internal error: scratchpad %d over capacity (%d/%d)",
				s, used, p.SPMs[s].Size)
		}
	}
	return out, nil
}
