package overlay

import (
	"testing"

	"repro/internal/conflict"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// prep profiles a program and builds its trace set and conflict-free graph
// (overlay tests exercise phases and capacity; conflict handling is
// covered by the core tests).
func prep(t *testing.T, p *ir.Program, spm int) (*trace.Set, *conflict.Graph) {
	t.Helper()
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: spm, LineBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	return set, conflict.New(fetches)
}

func params(spm int) Params {
	return Params{
		SPMSize:       spm,
		ESPHit:        0.2,
		ECacheHit:     0.5,
		ECacheMiss:    40,
		CopySetupNJ:   20,
		CopyPerWordNJ: 10,
	}
}

func TestDiscoverTwoPassPhases(t *testing.T) {
	p := mustTwoPass(t)
	set, _ := prep(t, p, 512)
	ph, err := Discover(p, set)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	// main: entry | pass1 loop | mid | pass2 loop | done+exit = 5 phases.
	if ph.NumPhases() != 5 {
		t.Fatalf("got %d phases: %+v", ph.NumPhases(), ph.List)
	}
	// The transform kernels belong to the pass-1 loop phase, the encode
	// kernels to the pass-2 loop phase, and they differ.
	fidOf := func(name string) ir.FuncID {
		for _, f := range p.Funcs {
			if f.Name == name {
				return f.ID
			}
		}
		t.Fatalf("no function %q", name)
		return -1
	}
	p1 := ph.FuncPhase[fidOf("transform_even")]
	if ph.FuncPhase[fidOf("transform_odd")] != p1 {
		t.Error("pass-1 kernels split across phases")
	}
	p2 := ph.FuncPhase[fidOf("encode_low")]
	if ph.FuncPhase[fidOf("encode_high")] != p2 {
		t.Error("pass-2 kernels split across phases")
	}
	if p1 == p2 || p1 == SharedPhase || p2 == SharedPhase {
		t.Errorf("passes not separated: %d vs %d", p1, p2)
	}
	// The entry function is shared.
	if ph.FuncPhase[p.Entry] != SharedPhase {
		t.Error("entry function must be shared")
	}
	// Trace phases follow function phases.
	for _, tr := range set.Traces {
		if ph.TracePhase[tr.ID] != ph.FuncPhase[tr.Blocks[0].Func] {
			t.Errorf("trace %d phase mismatch", tr.ID)
		}
	}
}

func TestSharedFunctionDetected(t *testing.T) {
	pb := ir.NewProgramBuilder("shared")
	main := pb.Func("main")
	main.Block("l1").Code(2).Call("util")
	main.Block("l1t").Code(1).Branch("l1", "l2", ir.Loop{Trips: 10})
	main.Block("l2").Code(2).Call("util")
	main.Block("l2t").Code(1).Branch("l2", "end", ir.Loop{Trips: 10})
	main.Block("end").Return()
	util := pb.Func("util")
	util.Block("b").Code(5).Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	set, _ := prep(t, p, 512)
	ph, err := Discover(p, set)
	if err != nil {
		t.Fatal(err)
	}
	if ph.FuncPhase[1] != SharedPhase {
		t.Errorf("util called from two phases must be shared, got %d", ph.FuncPhase[1])
	}
}

func TestAllocateGivesEachPassFullCapacity(t *testing.T) {
	p := mustTwoPass(t)
	const spm = 256
	set, g := prep(t, p, spm)
	ph, err := Discover(p, set)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Allocate(set, g, ph, params(spm))
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Both passes must get placements, and the totals across passes must
	// exceed the scratchpad size (the overlay's whole point).
	totalPlaced := 0
	placedPhases := map[int]bool{}
	for i, phs := range a.PhaseOf {
		if phs == NotPlaced {
			continue
		}
		totalPlaced += set.Traces[i].RawBytes
		placedPhases[phs] = true
	}
	if totalPlaced <= spm {
		t.Errorf("placed only %dB across phases; overlay should exceed %dB", totalPlaced, spm)
	}
	if len(placedPhases) < 2 {
		t.Errorf("placements in %d phases, want ≥ 2: %v", len(placedPhases), a.PhaseOf)
	}
	for pi, used := range a.UsedBytes {
		if used > spm {
			t.Errorf("phase %d image %dB exceeds %dB", pi, used, spm)
		}
	}
	if a.CopyEnergyNJ <= 0 {
		t.Error("copy energy not accounted")
	}
}

func TestOverlayLayoutSimulates(t *testing.T) {
	p := mustTwoPass(t)
	const spm = 256
	set, g := prep(t, p, spm)
	ph, err := Discover(p, set)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Allocate(set, g, ph, params(spm))
	if err != nil {
		t.Fatal(err)
	}
	phase, num := LayoutPhases(set, a, ph)
	lay, err := layout.NewOverlay(set, phase, num, layout.Options{
		Mode: layout.Copy, SPMSize: spm,
	})
	if err != nil {
		t.Fatalf("NewOverlay: %v", err)
	}
	// Every placed trace executes from the scratchpad window.
	var spmFetches int64
	total, err := sim.Run(p, lay, sim.FetcherFunc(func(addr uint32, mo int) {
		if lay.IsSPMAddr(addr) {
			spmFetches++
			if a.PhaseOf[mo] == NotPlaced {
				t.Fatalf("unplaced trace %d fetched from scratchpad", mo)
			}
		}
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if spmFetches == 0 || spmFetches >= total {
		t.Errorf("implausible SPM fetch share: %d of %d", spmFetches, total)
	}
}

func TestCopyCostModel(t *testing.T) {
	prm := params(256)
	c := prm.CopyCost(100) // 25 words
	want := 20 + 10*25.0
	if c != want {
		t.Errorf("CopyCost(100) = %g, want %g", c, want)
	}
	if prm.CopyCost(0) != 20 {
		t.Errorf("CopyCost(0) should be setup only")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{SPMSize: -1, ESPHit: 1, ECacheHit: 2, ECacheMiss: 3},
		{SPMSize: 64, ESPHit: 0, ECacheHit: 2, ECacheMiss: 3},
		{SPMSize: 64, ESPHit: 1, ECacheHit: 2, ECacheMiss: 2},
		{SPMSize: 64, ESPHit: 1, ECacheHit: 2, ECacheMiss: 3, CopySetupNJ: -1},
	}
	p := mustTwoPass(t)
	set, g := prep(t, p, 64)
	ph, err := Discover(p, set)
	if err != nil {
		t.Fatal(err)
	}
	for i, prm := range bad {
		if _, err := Allocate(set, g, ph, prm); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSingleLoopProgramDegeneratesGracefully(t *testing.T) {
	// adpcm has one big top-level loop: phases exist (pre, loop, post) but
	// nearly all heat is in one phase; overlay must still work and not
	// beat... it must at least be a valid allocation.
	p := mustLoad(t, "adpcm")
	const spm = 128
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: spm, LineBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	fetches := make([]int64, len(set.Traces))
	for i, tr := range set.Traces {
		fetches[i] = tr.Fetches
	}
	g := conflict.New(fetches)
	ph, err := Discover(p, set)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Allocate(set, g, ph, params(spm))
	if err != nil {
		t.Fatal(err)
	}
	for pi, used := range a.UsedBytes {
		if used > spm {
			t.Errorf("phase %d over capacity: %d", pi, used)
		}
	}
}

// TestDiscoverPropertyOnRandomPrograms: phases must partition the entry
// function's blocks in order, and every trace must map to SharedPhase or
// a valid phase.
func TestDiscoverPropertyOnRandomPrograms(t *testing.T) {
	for seed := uint64(50); seed < 80; seed++ {
		p, err := workload.Random(workload.RandomSpec{Seed: seed, Funcs: 5, SegmentsPerFunc: 6})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		set, _ := prep(t, p, 256)
		ph, err := Discover(p, set)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		entry := p.Func(p.Entry)
		covered := 0
		next := ir.BlockID(0)
		for _, phase := range ph.List {
			for _, b := range phase.EntryBlocks {
				if b != next {
					t.Fatalf("seed %d: phases not a textual partition (block %d, want %d)",
						seed, b, next)
				}
				next++
				covered++
			}
		}
		if covered != len(entry.Blocks) {
			t.Fatalf("seed %d: phases cover %d of %d entry blocks",
				seed, covered, len(entry.Blocks))
		}
		for i, tp := range ph.TracePhase {
			if tp != SharedPhase && (tp < 0 || tp >= ph.NumPhases()) {
				t.Fatalf("seed %d: trace %d has phase %d", seed, i, tp)
			}
		}
	}
}

func TestPhaseNamesAndInSPMHelper(t *testing.T) {
	p := mustTwoPass(t)
	set, g := prep(t, p, 256)
	ph, err := Discover(p, set)
	if err != nil {
		t.Fatal(err)
	}
	// Phase names reference either the dominant callee or a block range.
	for _, phase := range ph.List {
		if phase.Name == "" {
			t.Errorf("phase %d unnamed", phase.ID)
		}
	}
	a, err := Allocate(set, g, ph, params(256))
	if err != nil {
		t.Fatal(err)
	}
	in := a.InSPM()
	for i, phs := range a.PhaseOf {
		if (phs != NotPlaced) != in[i] {
			t.Errorf("InSPM()[%d] inconsistent with PhaseOf", i)
		}
	}
}

func TestAllocateGraphMismatch(t *testing.T) {
	p := mustTwoPass(t)
	set, _ := prep(t, p, 256)
	ph, err := Discover(p, set)
	if err != nil {
		t.Fatal(err)
	}
	bad := conflict.New(make([]int64, 3))
	if _, err := Allocate(set, bad, ph, params(256)); err == nil {
		t.Error("graph mismatch accepted")
	}
}

// mustTwoPass builds the two-pass workload, failing the test on error.
func mustTwoPass(t testing.TB) *ir.Program {
	t.Helper()
	p, err := workload.TwoPass()
	if err != nil {
		t.Fatalf("TwoPass: %v", err)
	}
	return p
}

// mustLoad builds a named workload, failing the test on error.
func mustLoad(t testing.TB, name string) *ir.Program {
	t.Helper()
	p, err := workload.Load(name)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return p
}
