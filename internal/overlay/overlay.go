// Package overlay implements the paper's stated future work: "dynamic
// copying (overlay) of memory objects on the scratchpad" (§7).
//
// Static allocation dedicates the scratchpad to one trace selection for
// the whole run. Overlay allocation splits execution into *phases* —
// temporally disjoint regions of the entry function — and reloads the
// scratchpad at each phase entry, so two hot phases can each enjoy the
// full capacity instead of sharing it. The price is the copy energy and
// latency of the reloads, which the allocator weighs explicitly.
//
// Phase discovery is structural: the entry function's top-level loops and
// the straight-line stretches between them form the phases; every other
// function belongs to the phases that (transitively) call it. Functions
// reachable from more than one phase are *shared* and, when selected,
// stay resident across all phases (they are loaded once and occupy
// capacity in every phase's budget).
//
// The selection problem extends the CASA ILP: one binary per trace as
// before, a capacity constraint per phase instead of one global one, and
// a per-trace copy cost added to the scratchpad side of the objective.
package overlay

import (
	"context"
	"fmt"

	"repro/internal/conflict"
	"repro/internal/ilp"
	"repro/internal/ir"
	"repro/internal/trace"
)

// SharedPhase marks traces not exclusive to any phase (resident across
// the whole run when selected).
const SharedPhase = -1

// Phase is one temporally contiguous region of execution.
type Phase struct {
	// ID is the phase index.
	ID int
	// Name describes the phase for reports (dominant callee or block
	// range).
	Name string
	// EntryBlocks are the entry-function blocks forming the phase.
	EntryBlocks []ir.BlockID
	// Funcs are the functions exclusively reachable from this phase.
	Funcs []ir.FuncID
}

// Phases is a whole-program phase partition.
type Phases struct {
	// List holds the phases in execution order.
	List []Phase
	// FuncPhase maps each function to its exclusive phase, or SharedPhase.
	// The entry function itself is always shared.
	FuncPhase []int
	// TracePhase maps each trace to its function's phase.
	TracePhase []int
}

// NumPhases returns the number of phases.
func (p *Phases) NumPhases() int { return len(p.List) }

// Discover partitions the program into phases based on the entry
// function's top-level structure and assigns every trace of set to a
// phase (or SharedPhase).
func Discover(prog *ir.Program, set *trace.Set) (*Phases, error) {
	entry := prog.Func(prog.Entry)
	nest := ir.AnalyzeLoops(entry)

	// Outermost loop per block of the entry function (or -1).
	outer := make([]int, len(entry.Blocks))
	for i := range outer {
		outer[i] = -1
	}
	for li, l := range nest.Loops {
		// A loop is top-level if no other loop strictly contains it.
		top := true
		for lj, other := range nest.Loops {
			if li == lj {
				continue
			}
			if contains(other, l) {
				top = false
				break
			}
		}
		if !top {
			continue
		}
		for _, b := range l.Blocks {
			outer[b] = li
		}
	}

	// Segment the entry function's blocks in textual order: consecutive
	// blocks sharing the same outermost loop form one segment; runs of
	// loop-free blocks form their own segments.
	var phases []Phase
	cur := -2 // sentinel distinct from every loop id and from -1
	for _, b := range entry.Blocks {
		if outer[b.ID] != cur {
			cur = outer[b.ID]
			phases = append(phases, Phase{ID: len(phases)})
		}
		ph := &phases[len(phases)-1]
		ph.EntryBlocks = append(ph.EntryBlocks, b.ID)
	}

	// Call reachability per phase.
	reach := make([]map[ir.FuncID]bool, len(phases))
	for i := range phases {
		reach[i] = make(map[ir.FuncID]bool)
		for _, bid := range phases[i].EntryBlocks {
			b := entry.Block(bid)
			if b.Term() == ir.TermCall {
				expandCalls(prog, b.CallTarget, reach[i])
			}
		}
	}

	// Function → exclusive phase or shared.
	fp := make([]int, len(prog.Funcs))
	for fid := range prog.Funcs {
		fp[fid] = SharedPhase
		if ir.FuncID(fid) == prog.Entry {
			continue
		}
		owner := -2
		for pi := range phases {
			if reach[pi][ir.FuncID(fid)] {
				if owner == -2 {
					owner = pi
				} else {
					owner = SharedPhase
					break
				}
			}
		}
		if owner >= 0 {
			fp[fid] = owner
		}
	}

	// Name phases after their hottest exclusive callee (or block range).
	for pi := range phases {
		name := fmt.Sprintf("%s[%d..%d]", entry.Name,
			phases[pi].EntryBlocks[0], phases[pi].EntryBlocks[len(phases[pi].EntryBlocks)-1])
		var funcs []ir.FuncID
		for fid := range prog.Funcs {
			if fp[fid] == pi {
				funcs = append(funcs, ir.FuncID(fid))
			}
		}
		if len(funcs) > 0 {
			name = prog.Func(funcs[0]).Name
			if len(funcs) > 1 {
				name += fmt.Sprintf("+%d", len(funcs)-1)
			}
		}
		phases[pi].Funcs = funcs
		phases[pi].Name = name
	}

	// Traces inherit their function's phase (a trace never crosses
	// functions).
	tp := make([]int, len(set.Traces))
	for _, t := range set.Traces {
		tp[t.ID] = fp[t.Blocks[0].Func]
	}
	return &Phases{List: phases, FuncPhase: fp, TracePhase: tp}, nil
}

// contains reports whether loop a strictly contains loop b.
func contains(a, b *ir.NaturalLoop) bool {
	if a.Header == b.Header && a.Latch == b.Latch {
		return false
	}
	if !a.Contains(b.Header) {
		return false
	}
	for _, blk := range b.Blocks {
		if !a.Contains(blk) {
			return false
		}
	}
	return true
}

// expandCalls adds fid and everything it can call into out.
func expandCalls(prog *ir.Program, fid ir.FuncID, out map[ir.FuncID]bool) {
	if out[fid] {
		return
	}
	out[fid] = true
	for _, b := range prog.Func(fid).Blocks {
		if b.Term() == ir.TermCall {
			expandCalls(prog, b.CallTarget, out)
		}
	}
}

// Params configures the overlay allocator.
type Params struct {
	// SPMSize is the scratchpad capacity in bytes.
	SPMSize int
	// ESPHit, ECacheHit and ECacheMiss are the per-access energies (nJ),
	// exactly as in the static allocator.
	ESPHit     float64
	ECacheHit  float64
	ECacheMiss float64
	// CopySetupNJ is the fixed energy of starting one trace copy (DMA
	// programming), and CopyPerWordNJ the energy per copied 32-bit word
	// (one main-memory read plus one scratchpad write).
	CopySetupNJ   float64
	CopyPerWordNJ float64
	// MaxEdges prunes the conflict graph; <= 0 keeps every edge.
	MaxEdges int
	// Solver tunes the ILP solver.
	Solver ilp.Options
}

func (p Params) validate() error {
	if p.SPMSize < 0 {
		return fmt.Errorf("overlay: negative scratchpad size")
	}
	if p.ESPHit <= 0 || p.ECacheHit <= 0 || p.ECacheMiss <= p.ECacheHit {
		return fmt.Errorf("overlay: implausible energies")
	}
	if p.CopySetupNJ < 0 || p.CopyPerWordNJ < 0 {
		return fmt.Errorf("overlay: negative copy costs")
	}
	return nil
}

// CopyCost returns the modelled energy (nJ) of loading one trace of
// rawBytes into the scratchpad.
func (p Params) CopyCost(rawBytes int) float64 {
	words := float64((rawBytes + 3) / 4)
	return p.CopySetupNJ + p.CopyPerWordNJ*words
}

// Allocation is the overlay allocator's result.
type Allocation struct {
	// PhaseOf[i] is the phase whose image holds trace i (SharedPhase means
	// resident across all phases), or -2 when the trace stays cacheable.
	PhaseOf []int
	// UsedBytes[p] is the occupancy of phase p's image, including shared
	// residents.
	UsedBytes []int
	// SharedBytes is the capacity consumed by shared residents.
	SharedBytes int
	// CopyEnergyNJ is the total modelled reload energy.
	CopyEnergyNJ float64
	// PredictedEnergy is the model objective (fetch energy + copies, nJ).
	PredictedEnergy float64
	// Status and Nodes report solver outcome and effort.
	Status ilp.Status
	Nodes  int
}

// NotPlaced marks traces that stay in cacheable main memory.
const NotPlaced = -2

// InSPM returns the selection as a boolean vector.
func (a *Allocation) InSPM() []bool {
	out := make([]bool, len(a.PhaseOf))
	for i, p := range a.PhaseOf {
		out[i] = p != NotPlaced
	}
	return out
}

// Allocate solves the phased allocation problem.
func Allocate(set *trace.Set, g *conflict.Graph, ph *Phases, prm Params) (*Allocation, error) {
	if err := prm.validate(); err != nil {
		return nil, err
	}
	if g.N() != len(set.Traces) {
		return nil, fmt.Errorf("overlay: graph/trace mismatch")
	}
	if len(ph.TracePhase) != len(set.Traces) {
		return nil, fmt.Errorf("overlay: phase vector length mismatch")
	}
	if prm.MaxEdges > 0 {
		g = g.Prune(prm.MaxEdges)
	}

	m := ilp.NewModel()
	n := len(set.Traces)
	// l_i = 1 when trace i stays cacheable (matches the static CASA
	// convention, so the conflict terms carry over unchanged).
	l := make([]ilp.Var, n)
	for i, t := range set.Traces {
		v := m.AddBinary(fmt.Sprintf("l_%d", i))
		if t.RawBytes > prm.SPMSize {
			m.SetBounds(v, 1, 1)
		}
		m.SetBranchPriority(v, 1)
		l[i] = v
	}

	obj := ilp.LinExpr{}
	missDelta := prm.ECacheMiss - prm.ECacheHit
	for i, t := range set.Traces {
		f := float64(t.Fetches)
		// In SPM (l=0): f*E_SP + copy cost. Cached (l=1): f*E_hit + misses.
		spmSide := f*prm.ESPHit + prm.CopyCost(t.RawBytes)
		obj = obj.AddConst(spmSide)
		obj = obj.Add(f*prm.ECacheHit-spmSide, l[i])
	}
	for _, e := range g.Edges() {
		w := missDelta * float64(e.Misses)
		if e.From == e.To {
			obj = obj.Add(w, l[e.From])
			continue
		}
		L := m.AddContinuous(fmt.Sprintf("L_%d_%d", e.From, e.To), 0, 1)
		obj = obj.Add(w, L)
		m.AddConstraint("", ilp.Expr(1, l[e.From], 1, l[e.To], -1, L), ilp.LE, 1)
	}
	m.SetObjective(obj, ilp.Minimize)

	// Capacity per phase: phase-local selections plus shared residents.
	for p := range ph.List {
		capExpr := ilp.LinExpr{}
		total := 0
		for i, t := range set.Traces {
			tp := ph.TracePhase[i]
			if tp != p && tp != SharedPhase {
				continue
			}
			capExpr = capExpr.Add(-float64(t.RawBytes), l[i])
			total += t.RawBytes
		}
		capExpr = capExpr.AddConst(float64(total))
		m.AddConstraint(fmt.Sprintf("phase%d_capacity", p), capExpr, ilp.LE, float64(prm.SPMSize))
	}

	sol, err := ilp.Solve(context.Background(), m, prm.Solver)
	if err != nil {
		return nil, err
	}
	if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
		return nil, fmt.Errorf("overlay: solver returned %v", sol.Status)
	}

	a := &Allocation{
		PhaseOf:   make([]int, n),
		UsedBytes: make([]int, ph.NumPhases()),
		Status:    sol.Status,
		Nodes:     sol.Nodes,
	}
	a.PredictedEnergy = sol.Objective
	for i, t := range set.Traces {
		if sol.Value(l[i]) > 0.5 {
			a.PhaseOf[i] = NotPlaced
			continue
		}
		tp := ph.TracePhase[i]
		a.PhaseOf[i] = tp
		a.CopyEnergyNJ += prm.CopyCost(t.RawBytes)
		if tp == SharedPhase {
			a.SharedBytes += t.RawBytes
		} else {
			a.UsedBytes[tp] += t.RawBytes
		}
	}
	for p := range a.UsedBytes {
		a.UsedBytes[p] += a.SharedBytes
		if a.UsedBytes[p] > prm.SPMSize {
			return nil, fmt.Errorf("overlay: internal error: phase %d over capacity", p)
		}
	}
	return a, nil
}

// LayoutPhases converts an Allocation into the per-trace phase vector
// layout.NewOverlay expects: shared residents become a synthetic image 0
// and phase k's locals become image k+1.
//
// Shared residents are co-live with every phase's locals, so their
// addresses may overlap a local trace's — which is harmless here: the
// simulated scratchpad is uniform-cost and content-insensitive (fetches
// are attributed by memory object, and scratchpad fetches never touch the
// address-sensitive I-cache), and the joint capacity constraint was
// already enforced exactly by the ILP. A real linker would reserve the
// shared region at the bottom of the scratchpad and relocate each phase's
// locals above it.
func LayoutPhases(set *trace.Set, a *Allocation, ph *Phases) (phase []int, numPhases int) {
	phase = make([]int, len(a.PhaseOf))
	for i, p := range a.PhaseOf {
		switch p {
		case NotPlaced:
			phase[i] = -1
		case SharedPhase:
			phase[i] = 0
		default:
			phase[i] = p + 1
		}
	}
	return phase, ph.NumPhases() + 1
}
