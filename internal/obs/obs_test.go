package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx1, parent := StartSpan(ctx, "prepare")
	if parent == nil {
		t.Fatal("span not created under a tracer")
	}
	_, child := StartSpan(ctx1, "profile")
	child.SetAttr("workload", "adpcm")
	child.End()
	parent.End()
	// A sibling root.
	_, other := StartSpan(ctx, "simulate")
	other.End()

	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	if roots[0].Name != "prepare" || roots[1].Name != "simulate" {
		t.Fatalf("root order wrong: %s, %s", roots[0].Name, roots[1].Name)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "profile" {
		t.Fatalf("child not nested under parent: %+v", roots[0].Children)
	}
	if got := roots[0].Children[0].Attrs["workload"]; got != "adpcm" {
		t.Errorf("attr lost: %v", got)
	}
	names := StageNames(roots)
	want := []string{"prepare", "profile", "simulate"}
	if len(names) != len(want) {
		t.Fatalf("stage names %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stage names %v, want %v", names, want)
		}
	}
}

// TestSpanDisabledIsInert: without a tracer, StartSpan returns the same
// context and a nil span whose whole API is safe.
func TestSpanDisabledIsInert(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("span created without a tracer")
	}
	if ctx2 != ctx {
		t.Fatal("context rewritten without a tracer")
	}
	sp.End()
	sp.SetAttr("k", "v")
	sp.Walk(func(*Span) { t.Fatal("walked a nil span") })
	if SpanFrom(ctx2) != nil || TracerFrom(ctx2) != nil {
		t.Fatal("phantom span or tracer in context")
	}
}

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.GetCounter("casa_test_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.GetCounter("casa_test_total") != c {
		t.Error("counter not memoized by name")
	}
	g := r.GetGauge("casa_test_bytes")
	g.Set(100)
	g.Add(-25)
	if g.Value() != 75 {
		t.Errorf("gauge = %d, want 75", g.Value())
	}
	h := r.GetHistogram("casa_test_ns")
	h.Observe(500)
	h.Observe(2000)
	if h.Count() != 2 || h.Sum() != 2500 {
		t.Errorf("histogram count=%d sum=%d", h.Count(), h.Sum())
	}

	snap := r.Snapshot()
	for k, want := range map[string]float64{
		"casa_test_total":    5,
		"casa_test_bytes":    75,
		"casa_test_ns_sum":   2500,
		"casa_test_ns_count": 2,
	} {
		if snap[k] != want {
			t.Errorf("snapshot[%s] = %g, want %g", k, snap[k], want)
		}
	}
}

func TestRegistryDelta(t *testing.T) {
	r := NewRegistry()
	c := r.GetCounter("casa_hits_total")
	g := r.GetGauge("casa_resident_bytes")
	c.Add(3)
	g.Set(10)
	before := r.Snapshot()
	c.Add(7)
	g.Set(42)
	r.GetCounter("casa_idle_total") // untouched: must not appear
	d := r.Delta(before)
	if d["casa_hits_total"] != 7 {
		t.Errorf("counter delta %g, want 7", d["casa_hits_total"])
	}
	if d["casa_resident_bytes"] != 42 {
		t.Errorf("gauge reported %g, want absolute 42", d["casa_resident_bytes"])
	}
	if _, ok := d["casa_idle_total"]; ok {
		t.Error("zero-delta counter leaked into delta")
	}
}

func TestReportCanonicalizeAndStability(t *testing.T) {
	mk := func() *Report {
		tr := NewTracer()
		ctx := WithTracer(context.Background(), tr)
		ctx, root := StartSpan(ctx, "study")
		_, c := StartSpan(ctx, "cell")
		c.SetAttr("index", 0)
		c.End()
		root.End()
		return &Report{
			Study: "fig4", Workers: 1, WallNS: 12345,
			Spans: tr.Roots(),
			Metrics: Snapshot{
				"casa_profile_memo_hits_total": 3,
				"casa_pool_busy_ns_total":      999, // time-based: must vanish
			},
		}
	}
	a, b := mk(), mk()
	a.Canonicalize()
	b.Canonicalize()
	if a.WallNS != 0 {
		t.Error("wall time survived canonicalization")
	}
	a.Spans[0].Walk(func(s *Span) {
		if s.DurNS != 0 || s.StartUnixNS != 0 || s.AllocBytes != 0 {
			t.Errorf("span %s kept timing after canonicalization", s.Name)
		}
	})
	if _, ok := a.Metrics["casa_pool_busy_ns_total"]; ok {
		t.Error("time-based metric survived canonicalization")
	}
	if a.Metrics["casa_profile_memo_hits_total"] != 3 {
		t.Error("deterministic metric dropped by canonicalization")
	}

	var bufA, bufB bytes.Buffer
	if err := a.WriteJSONL(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSONL(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("canonical reports differ:\n%s\n%s", bufA.String(), bufB.String())
	}

	back, err := ReadReports(&bufA)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Study != "fig4" || len(back[0].Spans) != 1 {
		t.Fatalf("round trip mangled the report: %+v", back[0])
	}
}

func TestTraceToggle(t *testing.T) {
	old := TraceWriter()
	defer EnableTrace(old)

	var buf bytes.Buffer
	EnableTrace(&buf)
	if !TraceEnabled() {
		t.Fatal("trace not enabled")
	}
	Tracef("solve node=%d", 7)
	if !strings.Contains(buf.String(), "casa: solve node=7") {
		t.Errorf("trace line missing: %q", buf.String())
	}
	EnableTrace(nil)
	if TraceEnabled() {
		t.Fatal("trace still enabled")
	}
	n := buf.Len()
	Tracef("dropped")
	if buf.Len() != n {
		t.Error("trace written while disabled")
	}
}

func TestEnvEnabled(t *testing.T) {
	for val, want := range map[string]bool{"": false, "0": false, "off": false, "false": false, "1": true, "all": true} {
		t.Setenv(EnvMetrics, val)
		if got := envEnabled(EnvMetrics); got != want {
			t.Errorf("envEnabled(%q) = %v, want %v", val, got, want)
		}
	}
}
