package slogx

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"sync"
	"testing"
)

func TestSetupLevels(t *testing.T) {
	var b bytes.Buffer
	l, err := Setup(&b, "warn")
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	l.Info("hidden")
	l.Warn("visible", "k", 1)
	var rec map[string]any
	if err := json.Unmarshal(b.Bytes(), &rec); err != nil {
		t.Fatalf("output is not one JSON object: %v (%q)", err, b.String())
	}
	if rec["msg"] != "visible" || rec["k"] != float64(1) {
		t.Fatalf("unexpected record: %v", rec)
	}

	if _, err := Setup(&b, "telemetry"); err == nil {
		t.Fatal("bad level accepted")
	}

	b.Reset()
	off, err := Setup(&b, "off")
	if err != nil {
		t.Fatalf("Setup(off): %v", err)
	}
	off.Error("should vanish")
	slog.Error("default should vanish too")
	if b.Len() != 0 {
		t.Fatalf("off logger wrote output: %q", b.String())
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, " error ": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted nonsense")
	}
}

func TestContextLogger(t *testing.T) {
	var b bytes.Buffer
	l := slog.New(slog.NewJSONHandler(&b, nil)).With("request_id", "r-1")
	ctx := With(context.Background(), l)
	From(ctx).Info("hello")
	var rec map[string]any
	if err := json.Unmarshal(b.Bytes(), &rec); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rec["request_id"] != "r-1" {
		t.Fatalf("request-scoped attr lost: %v", rec)
	}
	// A bare context yields a usable (discarding) logger.
	From(context.Background()).Info("no panic, no output")
	if With(context.Background(), nil) == nil {
		t.Fatal("With(nil logger) returned nil context")
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(4)
	got := 0
	for i := 0; i < 12; i++ {
		if s.Allow() {
			got++
		}
	}
	if got != 3 {
		t.Fatalf("1-in-4 sampler admitted %d of 12, want 3", got)
	}
	if !NewSampler(0).Allow() || !NewSampler(1).Allow() {
		t.Fatal("every<=1 must admit everything")
	}
	var nilS *Sampler
	if !nilS.Allow() {
		t.Fatal("nil sampler must admit everything")
	}
}

func TestSamplerConcurrent(t *testing.T) {
	s := NewSampler(10)
	var wg sync.WaitGroup
	counts := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if s.Allow() {
					counts[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 800 {
		t.Fatalf("1-in-10 over 8000 concurrent calls admitted %d, want 800", total)
	}
}
