// Package slogx is the repository's thin layer over log/slog: one-call
// JSON logger setup for the binaries (casad, casaload, experiments), a
// context-scoped logger so every log line inside a request handler
// carries the request ID, and a cheap systematic sampler so access logs
// don't dominate the hot path under load.
package slogx

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// Setup builds a JSON logger writing to w at the given level and
// installs it as the slog default. Level "off" (or "none") returns a
// logger that discards everything — the binaries use it so -log-level
// can silence structured output entirely.
func Setup(w io.Writer, level string) (*slog.Logger, error) {
	if eq(level, "off") || eq(level, "none") {
		l := Discard()
		slog.SetDefault(l)
		return l, nil
	}
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	l := slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lv}))
	slog.SetDefault(l)
	return l, nil
}

// ParseLevel maps a flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch {
	case eq(s, "debug"):
		return slog.LevelDebug, nil
	case eq(s, "info"), s == "":
		return slog.LevelInfo, nil
	case eq(s, "warn"), eq(s, "warning"):
		return slog.LevelWarn, nil
	case eq(s, "error"):
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, error or off)", s)
}

func eq(a, b string) bool { return strings.EqualFold(strings.TrimSpace(a), b) }

// discardHandler drops every record. Hand-rolled because
// slog.DiscardHandler only exists from Go 1.24.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Discard returns a logger that drops everything at zero cost.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type loggerKey struct{}

// With returns a context carrying l, so handler-internal code can log
// with the request's attributes without threading a logger argument.
func With(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey{}, l)
}

// From returns the logger carried by ctx, or a discarding logger so
// callers never nil-check.
func From(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return Discard()
}

// Sampler admits 1 in every N events: the first call passes, then every
// Nth after it, so low-volume streams still log something. Safe for
// concurrent use.
type Sampler struct {
	every int64
	n     atomic.Int64
}

// NewSampler returns a sampler admitting 1 in every events. every ≤ 1
// admits everything; a nil *Sampler also admits everything.
func NewSampler(every int) *Sampler {
	if every < 1 {
		every = 1
	}
	return &Sampler{every: int64(every)}
}

// Allow reports whether this event is in the sample.
func (s *Sampler) Allow() bool {
	if s == nil || s.every <= 1 {
		return true
	}
	return (s.n.Add(1)-1)%s.every == 0
}
