package obs

import (
	"fmt"
	"sync"
	"testing"
)

func mkTrace(id string, durNS int64, outcome string) *RequestTrace {
	return &RequestTrace{ID: id, DurNS: durNS, Outcome: outcome, Status: 200}
}

func TestTraceStoreMustKeepRing(t *testing.T) {
	st := NewTraceStore(2, 0, 0, 1)
	k1, d1 := st.Offer(mkTrace("a", 1, "degraded"))
	k2, _ := st.Offer(mkTrace("b", 2, "shed"))
	if !k1 || !k2 || d1 {
		t.Fatalf("first two must-keep offers: kept=%v/%v dropped=%v", k1, k2, d1)
	}
	// Third must-keep overwrites the oldest and reports the drop.
	k3, d3 := st.Offer(mkTrace("c", 3, "error"))
	if !k3 || !d3 {
		t.Fatalf("ring wrap: kept=%v dropped=%v, want true/true", k3, d3)
	}
	if _, ok := st.Get("a"); ok {
		t.Fatal("evicted trace still resolvable")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := st.Get(id); !ok {
			t.Fatalf("trace %s not retained", id)
		}
	}
	// ok traces never displace must-keep ones when only the keep ring exists.
	if kept, _ := st.Offer(mkTrace("d", 1e9, "ok")); kept {
		t.Fatal("ok trace retained by a store with no slow/sample class")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
}

func TestTraceStoreSlowestN(t *testing.T) {
	st := NewTraceStore(0, 3, 0, 1)
	for i, dur := range []int64{50, 10, 30} {
		if kept, _ := st.Offer(mkTrace(fmt.Sprintf("t%d", i), dur, "ok")); !kept {
			t.Fatalf("trace %d not kept while under capacity", i)
		}
	}
	// Faster than the retained minimum: rejected.
	if kept, _ := st.Offer(mkTrace("fast", 5, "ok")); kept {
		t.Fatal("faster-than-minimum trace displaced a slower one")
	}
	// Slower: evicts the current minimum (10).
	if kept, _ := st.Offer(mkTrace("slow", 40, "ok")); !kept {
		t.Fatal("slower trace rejected")
	}
	if _, ok := st.Get("t1"); ok {
		t.Fatal("minimum-duration trace survived eviction")
	}
	want := map[string]bool{"t0": true, "t2": true, "slow": true}
	for id := range want {
		if _, ok := st.Get(id); !ok {
			t.Fatalf("trace %s missing from slowest-N set", id)
		}
	}
	for _, sum := range st.Index() {
		if sum.Kept != "slow" {
			t.Fatalf("trace %s kept as %q, want slow", sum.ID, sum.Kept)
		}
	}
}

func TestTraceStoreSystematicSample(t *testing.T) {
	// No keep/slow classes: every 3rd offered ok trace is sampled.
	st := NewTraceStore(0, 0, 2, 3)
	kept := 0
	for i := 0; i < 9; i++ {
		if k, _ := st.Offer(mkTrace(fmt.Sprintf("s%d", i), 1, "ok")); k {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("sampled %d of 9 at 1-in-3, want 3", kept)
	}
	// Ring capacity 2: the first sample has been overwritten.
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (ring capacity)", st.Len())
	}
	if _, ok := st.Get("s0"); ok {
		t.Fatal("oldest sample survived a full ring")
	}
}

func TestTraceStorePriorityAndIndexOrder(t *testing.T) {
	st := NewTraceStore(4, 2, 2, 1)
	// A degraded trace goes to must-keep even when it is also slow.
	st.Offer(&RequestTrace{ID: "deg", StartUnixNS: 30, DurNS: 1e9, Outcome: "degraded", Tier: "greedy", Reason: "admission-greedy"})
	st.Offer(&RequestTrace{ID: "ok1", StartUnixNS: 10, DurNS: 100, Outcome: "ok"})
	st.Offer(&RequestTrace{ID: "ok2", StartUnixNS: 20, DurNS: 200, Outcome: "cached"})
	idx := st.Index()
	if len(idx) != 3 {
		t.Fatalf("index has %d rows, want 3", len(idx))
	}
	if idx[0].ID != "deg" || idx[1].ID != "ok2" || idx[2].ID != "ok1" {
		t.Fatalf("index not newest-first: %+v", idx)
	}
	if idx[0].Kept != "must-keep" || idx[0].Reason != "admission-greedy" {
		t.Fatalf("degraded row wrong: %+v", idx[0])
	}
	// Duplicate IDs are ignored — the first trace keeps the name.
	if kept, _ := st.Offer(mkTrace("deg", 5, "ok")); kept {
		t.Fatal("duplicate ID accepted")
	}
	got, _ := st.Get("deg")
	if got.Outcome != "degraded" {
		t.Fatal("duplicate ID replaced the original trace")
	}
}

func TestTraceStoreConcurrentOffer(t *testing.T) {
	st := NewTraceStore(16, 16, 16, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				outcome := "ok"
				if i%7 == 0 {
					outcome = "shed"
				}
				st.Offer(mkTrace(fmt.Sprintf("g%d-%d", g, i), int64(i), outcome))
				st.Index()
				st.Get(fmt.Sprintf("g%d-%d", g, i/2))
			}
		}(g)
	}
	wg.Wait()
	if st.Len() > 48 {
		t.Fatalf("store exceeded its capacity: %d", st.Len())
	}
	// Every index row must resolve.
	for _, sum := range st.Index() {
		if _, ok := st.Get(sum.ID); !ok {
			t.Fatalf("index row %s does not resolve", sum.ID)
		}
	}
}

func TestTraceStoreNilSafety(t *testing.T) {
	var st *TraceStore
	if kept, dropped := st.Offer(mkTrace("x", 1, "ok")); kept || dropped {
		t.Fatal("nil store retained a trace")
	}
	if st.Len() != 0 || st.Index() != nil {
		t.Fatal("nil store not empty")
	}
	st2 := NewTraceStore(1, 1, 1, 1)
	if kept, _ := st2.Offer(&RequestTrace{DurNS: 1}); kept {
		t.Fatal("trace without an ID retained")
	}
}
