package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move in both directions (bytes resident,
// queue depth). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed power-of-two buckets
// plus a running sum and count. It is cheap enough for per-cell (not
// per-fetch) observation.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// buckets[i] counts observations with value < 1<<(i+bucketShift).
	buckets [histBuckets]atomic.Int64
	// exemplars[i] is the most recent exemplar observed into bucket i
	// (nil when the bucket never saw an exemplar-carrying observation).
	exemplars [histBuckets]atomic.Pointer[Exemplar]
}

const (
	histBuckets = 32
	bucketShift = 10 // first bucket: < 1024
)

// HistogramBuckets is the number of buckets every Histogram carries;
// BucketCounts returns exactly this many entries.
const HistogramBuckets = histBuckets

// BucketUpper returns the exclusive upper bound of bucket i in the
// histogram's native unit. The last bucket is unbounded and returns
// math.MaxInt64 (exporters render it as +Inf).
func BucketUpper(i int) int64 {
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return 1 << (i + bucketShift)
}

// bucketFor maps a value to its bucket index.
func bucketFor(v int64) int {
	b := 0
	for b < histBuckets-1 && v >= 1<<(b+bucketShift) {
		b++
	}
	return b
}

// Exemplar links one observed value to the trace that produced it, so a
// Prometheus histogram bucket can point at a retained request trace.
type Exemplar struct {
	// Value is the observed value, in the histogram's native unit.
	Value int64
	// TraceID identifies the trace (a casad request ID).
	TraceID string
}

// Observe records one value (e.g. nanoseconds).
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketFor(v)].Add(1)
}

// ObserveWithExemplar records v and remembers (v, traceID) as the
// bucket's exemplar, replacing any previous one. Callers pass the IDs of
// traces they actually retained, so every exported exemplar is
// resolvable at /debug/traces/{id}.
func (h *Histogram) ObserveWithExemplar(v int64, traceID string) {
	h.count.Add(1)
	h.sum.Add(v)
	b := bucketFor(v)
	h.buckets[b].Add(1)
	if traceID != "" {
		h.exemplars[b].Store(&Exemplar{Value: v, TraceID: traceID})
	}
}

// BucketCounts returns a point-in-time copy of the per-bucket counts
// (not cumulative; see BucketUpper for the bucket bounds). Concurrent
// Observes may land between reads, so exporters should derive totals
// from the returned slice rather than mixing it with Count.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, histBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketExemplar returns bucket i's exemplar, or nil when none was ever
// observed.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= histBuckets {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 < q ≤ 1) of the observed values
// from the bucket counts: it returns the upper bound of the bucket the
// quantile falls in, so the estimate errs high by at most one power of
// two. Zero when nothing has been observed. The casad health endpoint
// uses it to self-report p50/p99 request latency without retaining raw
// samples.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= target {
			if b == histBuckets-1 {
				// The overflow bucket has no upper bound; fall back to the
				// mean of everything, clamped up to the bucket's lower edge.
				mean := float64(h.sum.Load()) / float64(total)
				return math.Max(mean, float64(int64(1)<<(b-1+bucketShift)))
			}
			return float64(int64(1) << (b + bucketShift))
		}
	}
	return float64(h.sum.Load()) / float64(total)
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Registry is a named collection of metrics. Metric lookup takes a
// lock, so hot paths should resolve their metric once (package-level
// var) and increment the returned pointer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every pipeline layer records
// into. It is published to expvar under "casa" on first use of this
// package.
var Default = NewRegistry()

// GetCounter returns (creating if needed) the named counter.
func (r *Registry) GetCounter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// GetGauge returns (creating if needed) the named gauge.
func (r *Registry) GetGauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GetHistogram returns (creating if needed) the named histogram.
func (r *Registry) GetHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GetCounter, GetGauge and GetHistogram on the Default registry.
func GetCounter(name string) *Counter     { return Default.GetCounter(name) }
func GetGauge(name string) *Gauge         { return Default.GetGauge(name) }
func GetHistogram(name string) *Histogram { return Default.GetHistogram(name) }

// sortedKeys returns the map's keys in name order.
func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EachCounter calls fn for every registered counter in name order. The
// registry lock is not held during the callbacks; metrics registered
// concurrently may or may not be visited.
func (r *Registry) EachCounter(fn func(name string, c *Counter)) {
	r.mu.Lock()
	names := sortedKeys(r.counters)
	cs := make([]*Counter, len(names))
	for i, n := range names {
		cs[i] = r.counters[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		fn(n, cs[i])
	}
}

// EachGauge calls fn for every registered gauge in name order.
func (r *Registry) EachGauge(fn func(name string, g *Gauge)) {
	r.mu.Lock()
	names := sortedKeys(r.gauges)
	gs := make([]*Gauge, len(names))
	for i, n := range names {
		gs[i] = r.gauges[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		fn(n, gs[i])
	}
}

// EachHistogram calls fn for every registered histogram in name order.
func (r *Registry) EachHistogram(fn func(name string, h *Histogram)) {
	r.mu.Lock()
	names := sortedKeys(r.hists)
	hs := make([]*Histogram, len(names))
	for i, n := range names {
		hs[i] = r.hists[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		fn(n, hs[i])
	}
}

// Snapshot is a point-in-time reading of every metric: counters and
// gauges under their own name, histograms as name_sum / name_count.
type Snapshot map[string]float64

// Snapshot reads every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counters {
		s[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		s[name] = float64(g.Value())
	}
	for name, h := range r.hists {
		s[name+"_sum"] = float64(h.Sum())
		s[name+"_count"] = float64(h.Count())
	}
	return s
}

// Delta returns the change from a previous snapshot of the same
// registry: counters and histogram accumulators as after−before with
// zero deltas omitted, gauges at their current (absolute) value when
// nonzero. The result is what a run report records per study.
func (r *Registry) Delta(before Snapshot) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := make(Snapshot)
	for name, c := range r.counters {
		if v := float64(c.Value()) - before[name]; v != 0 {
			d[name] = v
		}
	}
	for name, g := range r.gauges {
		if v := float64(g.Value()); v != 0 {
			d[name] = v
		}
	}
	for name, h := range r.hists {
		if v := float64(h.Sum()) - before[name+"_sum"]; v != 0 {
			d[name+"_sum"] = v
		}
		if v := float64(h.Count()) - before[name+"_count"]; v != 0 {
			d[name+"_count"] = v
		}
	}
	return d
}

// Write renders the snapshot as sorted "name value" lines (the
// CASA_METRICS dump format).
func (s Snapshot) Write(w io.Writer) error {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %g\n", n, s[n]); err != nil {
			return err
		}
	}
	return nil
}

// Publish the default registry to expvar exactly once, so a -pprof
// HTTP listener exposes it at /debug/vars alongside the runtime stats.
var publishOnce sync.Once

func init() {
	publishOnce.Do(func() {
		expvar.Publish("casa", expvar.Func(func() any { return Default.Snapshot() }))
	})
}
