package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// FailedCell records one experiment cell that failed (or was skipped
// when a sibling's failure cancelled the grid) so run reports never
// lose the losing cells.
type FailedCell struct {
	// Index is the cell's grid index.
	Index int `json:"index"`
	// Err is the cell's error text; empty for skipped cells.
	Err string `json:"error,omitempty"`
	// Skipped marks cells cancelled before they ran.
	Skipped bool `json:"skipped,omitempty"`
}

// DegradedCell records one experiment cell whose CASA solve degraded —
// it hit its wall-clock budget, was cancelled, or fell back to the
// greedy allocator — so run reports carry every non-optimal result with
// its cause.
type DegradedCell struct {
	// Index is the cell's grid index (-1 when the degradation happened
	// outside any cell).
	Index int `json:"index"`
	// Reason is the degradation cause ("deadline", "canceled",
	// "node-limit", "fault:solver-deadline", ...).
	Reason string `json:"reason"`
	// Gap is the relative optimality gap of the incumbent (0 when
	// unknown).
	Gap float64 `json:"gap,omitempty"`
	// Fallback marks cells served by the greedy fallback because the
	// solver produced no incumbent.
	Fallback bool `json:"fallback,omitempty"`
}

// Report is one machine-readable run record — one JSON line of a
// -report file. A study emits one Report per repeat round.
type Report struct {
	// Study is the study name ("fig4", "table1", ...).
	Study string `json:"study"`
	// Round is the in-process repeat round (0-based).
	Round int `json:"round"`
	// Workers is the worker-pool width the study ran at.
	Workers int `json:"workers"`
	// WallNS is the study's wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Error is the study's failure, if any.
	Error string `json:"error,omitempty"`
	// FailedCells lists failing and cancelled cells of the study's
	// grids (empty on success).
	FailedCells []FailedCell `json:"failed_cells,omitempty"`
	// DegradedCells lists cells whose CASA solve returned a degraded
	// (anytime or fallback) result instead of a proven optimum.
	DegradedCells []DegradedCell `json:"degraded_cells,omitempty"`
	// Spans is the study's span forest.
	Spans []*Span `json:"spans,omitempty"`
	// Metrics is the study's metric delta: counter movement during the
	// run plus absolute gauge values at its end.
	Metrics Snapshot `json:"metrics,omitempty"`
}

// Canonicalize zeroes every nondeterministic field — timestamps,
// durations, allocation counts, and any metric whose name marks it as
// time-based (containing "_ns") — so reports of a fixed-seed run are
// byte-stable. It is the -report-deterministic test hook.
func (r *Report) Canonicalize() {
	r.WallNS = 0
	for _, s := range r.Spans {
		s.Walk(func(sp *Span) {
			sp.StartUnixNS = 0
			sp.DurNS = 0
			sp.AllocBytes = 0
		})
	}
	for name := range r.Metrics {
		if strings.Contains(name, "_ns") {
			delete(r.Metrics, name)
		}
	}
}

// WriteJSONL appends the report to w as one JSON line. Map keys (attrs,
// metrics) marshal in sorted order, so equal reports produce equal
// bytes.
func (r *Report) WriteJSONL(w io.Writer) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadReports parses a JSONL report stream.
func ReadReports(rd io.Reader) ([]*Report, error) {
	var out []*Report
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		r := &Report{}
		if err := json.Unmarshal([]byte(line), r); err != nil {
			return nil, fmt.Errorf("obs: report line %d: %w", len(out)+1, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
