package obs

import (
	"math"
	"sync"
	"testing"
)

// The quantile estimator's contract at the edges: no observations, a
// degenerate all-in-one-bucket distribution, q=1.0, and the overflow
// bucket.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	t.Run("no observations", func(t *testing.T) {
		var h Histogram
		for _, q := range []float64{0.01, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Fatalf("Quantile(%g) on empty histogram = %g, want 0", q, got)
			}
		}
	})

	t.Run("all in one bucket", func(t *testing.T) {
		var h Histogram
		for i := 0; i < 1000; i++ {
			h.Observe(1500) // bucket [1024, 2048)
		}
		for _, q := range []float64{0.001, 0.5, 0.999, 1} {
			if got := h.Quantile(q); got != 2048 {
				t.Fatalf("Quantile(%g) = %g, want 2048 (the only bucket's upper bound)", q, got)
			}
		}
	})

	t.Run("q=1 lands in the last occupied bucket", func(t *testing.T) {
		var h Histogram
		h.Observe(100)     // first bucket
		h.Observe(5000)    // [4096, 8192)
		h.Observe(1 << 20) // [1<<20, 1<<21)
		if got := h.Quantile(1); got != 1<<21 {
			t.Fatalf("Quantile(1) = %g, want %d", got, 1<<21)
		}
		if got := h.Quantile(0.34); got != 8192 {
			t.Fatalf("Quantile(0.34) = %g, want 8192", got)
		}
	})

	t.Run("overflow bucket", func(t *testing.T) {
		var h Histogram
		huge := int64(1) << 62 // beyond the last bounded bucket
		h.Observe(huge)
		got := h.Quantile(0.5)
		lower := float64(int64(1) << (histBuckets - 2 + bucketShift))
		if got < lower {
			t.Fatalf("overflow-bucket quantile %g below the bucket's lower edge %g", got, lower)
		}
		if math.IsInf(got, 1) || math.IsNaN(got) {
			t.Fatalf("overflow-bucket quantile not finite: %g", got)
		}
	})

	t.Run("tiny q still returns the first occupied bucket", func(t *testing.T) {
		var h Histogram
		h.Observe(10)
		if got := h.Quantile(1e-9); got != 1024 {
			t.Fatalf("Quantile(1e-9) = %g, want 1024", got)
		}
	})
}

// Quantile must be safe (and sane) while Observe runs concurrently.
func TestHistogramConcurrentObserveDuringQuantile(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	started := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := int64(100 << g)
			h.Observe(v)
			started <- struct{}{}
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(v)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-started
	}
	for i := 0; i < 2000; i++ {
		q := h.Quantile(0.99)
		if q < 0 || math.IsNaN(q) {
			t.Errorf("concurrent Quantile returned %g", q)
			break
		}
	}
	close(stop)
	wg.Wait()
	if h.Quantile(1) == 0 {
		t.Fatal("post-race Quantile(1) = 0 with observations present")
	}
}

// The bucket-export path promexport renders from.
func TestHistogramBucketExport(t *testing.T) {
	var h Histogram
	h.Observe(100)                         // bucket 0: < 1024
	h.Observe(1024)                        // bucket 1: [1024, 2048)
	h.ObserveWithExemplar(3000, "req-abc") // bucket 2: [2048, 4096)
	h.ObserveWithExemplar(3500, "req-def") // bucket 2 again: replaces the exemplar

	counts := h.BucketCounts()
	if len(counts) != HistogramBuckets {
		t.Fatalf("BucketCounts returned %d buckets, want %d", len(counts), HistogramBuckets)
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 2 {
		t.Fatalf("bucket counts = %v...", counts[:4])
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != h.Count() {
		t.Fatalf("bucket total %d != Count %d", total, h.Count())
	}

	if BucketUpper(0) != 1024 || BucketUpper(1) != 2048 {
		t.Fatalf("BucketUpper bounds wrong: %d, %d", BucketUpper(0), BucketUpper(1))
	}
	if BucketUpper(HistogramBuckets-1) != math.MaxInt64 {
		t.Fatal("last bucket must be unbounded")
	}
	if BucketUpper(HistogramBuckets+5) != math.MaxInt64 {
		t.Fatal("out-of-range bucket index must clamp to unbounded")
	}

	ex := h.BucketExemplar(2)
	if ex == nil || ex.TraceID != "req-def" || ex.Value != 3500 {
		t.Fatalf("bucket 2 exemplar = %+v, want the latest (req-def, 3500)", ex)
	}
	if h.BucketExemplar(0) != nil {
		t.Fatal("plain Observe must not create exemplars")
	}
	if h.BucketExemplar(-1) != nil || h.BucketExemplar(HistogramBuckets) != nil {
		t.Fatal("out-of-range exemplar lookup must return nil")
	}
	// An empty trace ID observes without storing an exemplar.
	h.ObserveWithExemplar(100, "")
	if h.BucketExemplar(0) != nil {
		t.Fatal("empty trace ID stored an exemplar")
	}
}
