package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// EnvTrace enables trace logging (stage starts, solver progress) to
// stderr when set to anything but "", "0", "off" or "false". The -trace
// flags of cmd/casa and cmd/experiments are equivalent.
const EnvTrace = "CASA_TRACE"

// EnvMetrics requests a metrics dump on stderr when a command exits
// (same truthy values as EnvTrace).
const EnvMetrics = "CASA_METRICS"

var (
	traceMu sync.Mutex
	traceW  io.Writer = traceFromEnv()
)

func envEnabled(name string) bool {
	switch os.Getenv(name) {
	case "", "0", "off", "false":
		return false
	}
	return true
}

func traceFromEnv() io.Writer {
	if envEnabled(EnvTrace) {
		return os.Stderr
	}
	return nil
}

// EnableTrace directs trace logging to w (nil disables it). It is how
// -trace flags turn logging on programmatically.
func EnableTrace(w io.Writer) {
	traceMu.Lock()
	traceW = w
	traceMu.Unlock()
}

// TraceEnabled reports whether trace logging is active.
func TraceEnabled() bool { return TraceWriter() != nil }

// TraceWriter returns the current trace destination, or nil when
// tracing is off. Long-running loops (the ILP solver) capture it once
// and test for nil instead of calling Tracef per iteration.
func TraceWriter() io.Writer {
	traceMu.Lock()
	defer traceMu.Unlock()
	return traceW
}

// Tracef writes one formatted trace line when tracing is enabled.
func Tracef(format string, args ...any) {
	w := TraceWriter()
	if w == nil {
		return
	}
	fmt.Fprintf(w, "casa: "+format+"\n", args...)
}

var (
	warnMu sync.Mutex
	warnW  io.Writer = os.Stderr
)

// SetWarnWriter redirects warning output (tests); nil restores stderr.
func SetWarnWriter(w io.Writer) {
	warnMu.Lock()
	if w == nil {
		w = os.Stderr
	}
	warnW = w
	warnMu.Unlock()
}

// Warnf writes one formatted warning line. Unlike Tracef it is always
// on: warnings mark misconfigurations the run survives (an ignored
// CASA_WORKERS value, a malformed fault spec) that the user should see
// even without tracing enabled.
func Warnf(format string, args ...any) {
	warnMu.Lock()
	w := warnW
	warnMu.Unlock()
	fmt.Fprintf(w, "casa: warning: "+format+"\n", args...)
}

// MaybeDumpMetrics writes the default registry's snapshot to w when
// CASA_METRICS requests it; commands call it once before exiting.
func MaybeDumpMetrics(w io.Writer) {
	if !envEnabled(EnvMetrics) {
		return
	}
	fmt.Fprintln(w, "# casa metrics")
	_ = Default.Snapshot().Write(w)
}
