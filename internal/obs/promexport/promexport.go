// Package promexport renders an internal/obs metrics registry in the
// Prometheus/OpenMetrics text exposition format, and lints such output.
//
// The mapping from the flat registry:
//
//   - Counters keep their registered name (all end in _total by
//     convention); the TYPE line names the metric family without the
//     suffix, as OpenMetrics requires.
//   - Gauges export verbatim.
//   - Histograms export with real cumulative buckets derived from
//     obs.Histogram's power-of-two buckets. A histogram registered with
//     an `_ns` suffix (the repository convention for nanosecond
//     latencies) is renamed `<base>_duration` and rescaled to seconds —
//     the Prometheus-native unit — so casa_server_request_ns becomes the
//     casa_server_request_duration histogram. Bucket exemplars carry the
//     request/trace ID that produced them (`# {trace_id="..."} v`), so a
//     latency bucket links straight to a retained /debug/traces entry.
//
// Lint parses the exposition back and checks the structural invariants
// (declared types, cumulative monotone buckets ending at +Inf, count
// consistency, well-formed exemplars, terminating # EOF). benchdiff
// -validate uses it so CI fails on unparseable /metrics output instead
// of shipping it to a real scraper first.
package promexport

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// ContentType is the HTTP Content-Type of the exposition (OpenMetrics:
// the text format plus exemplars).
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteRegistry renders every metric in r, ending with the OpenMetrics
// EOF marker.
func WriteRegistry(w io.Writer, r *obs.Registry) error {
	var b bytes.Buffer
	r.EachCounter(func(name string, c *obs.Counter) {
		fmt.Fprintf(&b, "# TYPE %s counter\n", strings.TrimSuffix(name, "_total"))
		fmt.Fprintf(&b, "%s %s\n", name, formatValue(float64(c.Value())))
	})
	r.EachGauge(func(name string, g *obs.Gauge) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
		fmt.Fprintf(&b, "%s %s\n", name, formatValue(float64(g.Value())))
	})
	r.EachHistogram(func(name string, h *obs.Histogram) {
		writeHistogram(&b, name, h)
	})
	b.WriteString("# EOF\n")
	_, err := w.Write(b.Bytes())
	return err
}

// histFamily maps a registry histogram name to its exported family name
// and the value scale factor applied to bounds and sums.
func histFamily(name string) (fam string, scale float64) {
	if base, ok := strings.CutSuffix(name, "_ns"); ok {
		return base + "_duration", 1e-9 // nanoseconds → seconds
	}
	return name, 1
}

func writeHistogram(b *bytes.Buffer, name string, h *obs.Histogram) {
	fam, scale := histFamily(name)
	counts := h.BucketCounts()
	fmt.Fprintf(b, "# TYPE %s histogram\n", fam)
	var cum int64
	for i, c := range counts {
		cum += c
		last := i == len(counts)-1
		// Empty buckets are legal to omit (the le set is arbitrary);
		// keep the output compact but always emit the +Inf bucket.
		if c == 0 && !last {
			continue
		}
		le := "+Inf"
		if !last {
			le = formatValue(float64(obs.BucketUpper(i)) * scale)
		}
		fmt.Fprintf(b, "%s_bucket{le=%q} %d", fam, le, cum)
		if ex := h.BucketExemplar(i); ex != nil {
			fmt.Fprintf(b, " # {trace_id=%q} %s", ex.TraceID, formatValue(float64(ex.Value)*scale))
		}
		b.WriteByte('\n')
	}
	// Totals derive from the same bucket snapshot so the exposition is
	// internally consistent even while observations land concurrently.
	fmt.Fprintf(b, "%s_sum %s\n", fam, formatValue(float64(h.Sum())*scale))
	fmt.Fprintf(b, "%s_count %d\n", fam, cum)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histState tracks one histogram family while linting.
type histState struct {
	lastCum  float64
	lastLe   float64
	sawInf   bool
	infVal   float64
	countVal float64
	sawCount bool
}

// Lint strictly parses a text exposition, returning the first
// structural error with its line number.
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	kinds := map[string]string{}
	hists := map[string]*histState{}
	sawEOF := false
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if sawEOF {
			return fmt.Errorf("line %d: content after # EOF", ln)
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, kinds); err != nil {
				return fmt.Errorf("line %d: %w", ln, err)
			}
			if line == "# EOF" {
				sawEOF = true
			}
			continue
		}
		if err := lintSample(line, kinds, hists); err != nil {
			return fmt.Errorf("line %d: %w", ln, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawEOF {
		return fmt.Errorf("missing terminating # EOF")
	}
	for fam, hs := range hists {
		if !hs.sawInf {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", fam)
		}
		if hs.sawCount && hs.countVal != hs.infVal {
			return fmt.Errorf("histogram %s: %s_count %g != +Inf bucket %g",
				fam, fam, hs.countVal, hs.infVal)
		}
	}
	return nil
}

func lintComment(line string, kinds map[string]string) error {
	switch {
	case line == "# EOF":
		return nil
	case strings.HasPrefix(line, "# HELP "):
		return nil
	case strings.HasPrefix(line, "# TYPE "):
		parts := strings.Fields(line)
		if len(parts) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, kind := parts[2], parts[3]
		switch kind {
		case "counter", "gauge", "histogram":
		default:
			return fmt.Errorf("unknown metric type %q", kind)
		}
		if _, dup := kinds[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		kinds[name] = kind
		return nil
	default:
		return fmt.Errorf("unrecognized comment %q", line)
	}
}

func lintSample(line string, kinds map[string]string, hists map[string]*histState) error {
	name, labels, rest, err := splitSample(line)
	if err != nil {
		return err
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return fmt.Errorf("sample %s has no value", name)
	}
	val, err := parseNumber(fields[0])
	if err != nil {
		return fmt.Errorf("sample %s: bad value %q", name, fields[0])
	}
	if len(fields) > 1 {
		if fields[1] != "#" {
			return fmt.Errorf("sample %s: trailing tokens %q", name, strings.Join(fields[1:], " "))
		}
		if err := lintExemplar(strings.Join(fields[2:], " ")); err != nil {
			return fmt.Errorf("sample %s: %w", name, err)
		}
	}

	// Resolve the sample to a declared family.
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok || kinds[base] != "histogram" {
			continue
		}
		hs := hists[base]
		if hs == nil {
			hs = &histState{lastLe: math.Inf(-1)}
			hists[base] = hs
		}
		switch suf {
		case "_bucket":
			leStr, ok := labels["le"]
			if !ok {
				return fmt.Errorf("bucket %s missing le label", name)
			}
			le, err := parseNumber(leStr)
			if err != nil {
				return fmt.Errorf("bucket %s: bad le %q", name, leStr)
			}
			if le <= hs.lastLe {
				return fmt.Errorf("histogram %s: le %g not increasing (previous %g)", base, le, hs.lastLe)
			}
			if val < hs.lastCum {
				return fmt.Errorf("histogram %s: bucket counts not cumulative (%g after %g)", base, val, hs.lastCum)
			}
			hs.lastLe, hs.lastCum = le, val
			if math.IsInf(le, 1) {
				hs.sawInf, hs.infVal = true, val
			}
		case "_count":
			hs.sawCount, hs.countVal = true, val
		}
		return nil
	}
	if kind, ok := kinds[name]; ok {
		if kind == "histogram" {
			return fmt.Errorf("histogram family %s sampled without _bucket/_sum/_count suffix", name)
		}
		if kind == "counter" && val < 0 {
			return fmt.Errorf("counter %s is negative (%g)", name, val)
		}
		return nil
	}
	if base, ok := strings.CutSuffix(name, "_total"); ok && kinds[base] == "counter" {
		if val < 0 {
			return fmt.Errorf("counter %s is negative (%g)", name, val)
		}
		return nil
	}
	return fmt.Errorf("sample %s has no TYPE declaration", name)
}

// splitSample breaks "name{k=\"v\",...} value ..." into parts; the label
// set is empty when there is no brace block.
func splitSample(line string) (name string, labels map[string]string, rest string, err error) {
	labels = map[string]string{}
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		name = line[:brace]
		end := closingBrace(line, brace)
		if end < 0 {
			return "", nil, "", fmt.Errorf("unterminated label block in %q", line)
		}
		if err := parseLabels(line[brace+1:end], labels); err != nil {
			return "", nil, "", err
		}
		rest = strings.TrimSpace(line[end+1:])
		return name, labels, rest, nil
	}
	if space < 0 {
		return "", nil, "", fmt.Errorf("sample line %q has no value", line)
	}
	return line[:space], labels, strings.TrimSpace(line[space+1:]), nil
}

// closingBrace finds the '}' matching the one at open, skipping quoted
// strings (label values may contain '}').
func closingBrace(s string, open int) int {
	inQuote := false
	for i := open + 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

func parseLabels(s string, out map[string]string) error {
	s = strings.TrimSpace(s)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		v := strings.TrimSpace(s[eq+1:])
		if len(v) < 2 || v[0] != '"' {
			return fmt.Errorf("label %s value not quoted", key)
		}
		end := 1
		for end < len(v) && v[end] != '"' {
			if v[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(v) {
			return fmt.Errorf("label %s value unterminated", key)
		}
		val, err := strconv.Unquote(v[:end+1])
		if err != nil {
			return fmt.Errorf("label %s: %v", key, err)
		}
		out[key] = val
		s = strings.TrimPrefix(strings.TrimSpace(v[end+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// lintExemplar validates `{label="v",...} value [timestamp]`.
func lintExemplar(s string) error {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") {
		return fmt.Errorf("exemplar must start with a label block, got %q", s)
	}
	end := closingBrace(s, 0)
	if end < 0 {
		return fmt.Errorf("unterminated exemplar labels in %q", s)
	}
	labels := map[string]string{}
	if err := parseLabels(s[1:end], labels); err != nil {
		return fmt.Errorf("exemplar labels: %w", err)
	}
	if len(labels) == 0 {
		return fmt.Errorf("exemplar has no labels")
	}
	fields := strings.Fields(s[end+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("exemplar needs a value (and optional timestamp), got %q", s[end+1:])
	}
	for _, f := range fields {
		if _, err := parseNumber(f); err != nil {
			return fmt.Errorf("exemplar number %q: %v", f, err)
		}
	}
	return nil
}

func parseNumber(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}
