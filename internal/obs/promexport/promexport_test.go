package promexport

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

func render(t *testing.T, r *obs.Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := WriteRegistry(&b, r); err != nil {
		t.Fatalf("WriteRegistry: %v", err)
	}
	return b.String()
}

func TestWriteRegistryCountersAndGauges(t *testing.T) {
	r := obs.NewRegistry()
	r.GetCounter("casa_server_requests_total").Add(42)
	r.GetGauge("casa_server_inflight").Set(3)
	out := render(t, r)

	for _, want := range []string{
		"# TYPE casa_server_requests counter\n",
		"casa_server_requests_total 42\n",
		"# TYPE casa_server_inflight gauge\n",
		"casa_server_inflight 3\n",
		"# EOF\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n%s", out)
	}
}

func TestWriteRegistryHistogramSeconds(t *testing.T) {
	r := obs.NewRegistry()
	h := r.GetHistogram("casa_server_request_ns")
	h.Observe(500)                                 // bucket 0 (< 1024 ns)
	h.ObserveWithExemplar(1_500_000, "req-00042")  // ~1.5 ms
	h.ObserveWithExemplar(40_000_000, "req-00043") // 40 ms
	out := render(t, r)

	// The _ns histogram exports as a _duration family in seconds.
	if !strings.Contains(out, "# TYPE casa_server_request_duration histogram\n") {
		t.Fatalf("missing renamed histogram family:\n%s", out)
	}
	if strings.Contains(out, "request_ns") {
		t.Fatalf("native-unit name leaked into exposition:\n%s", out)
	}
	// First bucket: upper bound 1024 ns → 1.024e-06 s, cumulative 1.
	if !strings.Contains(out, `casa_server_request_duration_bucket{le="1.024e-06"} 1`) {
		t.Fatalf("first bucket missing or not in seconds:\n%s", out)
	}
	// Exemplar carries the trace ID with the scaled value.
	if !strings.Contains(out, `# {trace_id="req-00042"} 0.0015`) {
		t.Fatalf("exemplar missing:\n%s", out)
	}
	// +Inf bucket is always present and cumulative over all observations.
	if !strings.Contains(out, `casa_server_request_duration_bucket{le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, "casa_server_request_duration_count 3\n") {
		t.Fatalf("count wrong:\n%s", out)
	}
	// Zero-count interior buckets are omitted: far fewer bucket lines
	// than the histogram's 32 buckets.
	if n := strings.Count(out, "_bucket{"); n > 6 {
		t.Fatalf("zero buckets not elided: %d bucket lines", n)
	}

	// Our own linter must accept our own output.
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("self-lint failed: %v\n%s", err, out)
	}
}

func TestWriteRegistryEmptyHistogram(t *testing.T) {
	r := obs.NewRegistry()
	r.GetHistogram("x_ns")
	out := render(t, r)
	if !strings.Contains(out, `x_duration_bucket{le="+Inf"} 0`) {
		t.Fatalf("empty histogram must still emit +Inf:\n%s", out)
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("self-lint failed: %v\n%s", err, out)
	}
}

func TestLintAcceptsFullRegistryShape(t *testing.T) {
	r := obs.NewRegistry()
	r.GetCounter("a_total").Inc()
	r.GetCounter("plain_counter").Inc() // no _total suffix: family == sample name
	r.GetGauge("g").Set(-5)
	h := r.GetHistogram("lat_ns")
	for i := int64(1); i < 20; i++ {
		h.ObserveWithExemplar(i*i*1000, "t-1")
	}
	out := render(t, r)
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("lint rejected valid exposition: %v\n%s", err, out)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"missing EOF", "# TYPE a counter\na_total 1\n", "EOF"},
		{"undeclared sample", "mystery 4\n# EOF\n", "no TYPE declaration"},
		{"bad value", "# TYPE a gauge\na pizza\n# EOF\n", "bad value"},
		{"duplicate TYPE", "# TYPE a gauge\n# TYPE a counter\na 1\n# EOF\n", "duplicate TYPE"},
		{"unknown type", "# TYPE a weird\na 1\n# EOF\n", "unknown metric type"},
		{"content after EOF", "# TYPE a gauge\na 1\n# EOF\na 2\n", "after # EOF"},
		{"negative counter", "# TYPE a counter\na_total -3\n# EOF\n", "negative"},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n# EOF\n",
			"cumulative",
		},
		{
			"le not increasing",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n# EOF\n",
			"not increasing",
		},
		{
			"missing +Inf bucket",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n# EOF\n",
			"+Inf",
		},
		{
			"count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 5\n# EOF\n",
			"!=",
		},
		{
			"malformed exemplar",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # trace_id=\"x\" 1\nh_sum 1\nh_count 1\n# EOF\n",
			"exemplar",
		},
		{"unterminated labels", "# TYPE a gauge\na{x=\"1\" 4\n# EOF\n", "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Lint(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("lint accepted malformed input:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLintAcceptsExemplarAndEscapes(t *testing.T) {
	in := strings.Join([]string{
		`# TYPE h histogram`,
		`h_bucket{le="0.001"} 2 # {trace_id="req-7"} 0.0004`,
		`h_bucket{le="+Inf"} 2`,
		`h_sum 0.0008`,
		`h_count 2`,
		`# TYPE g gauge`,
		`g{label="va\"lue}"} 1`,
		`# EOF`,
		``,
	}, "\n")
	if err := Lint(strings.NewReader(in)); err != nil {
		t.Fatalf("lint rejected valid input: %v", err)
	}
}
