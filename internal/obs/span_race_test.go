package obs_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// TestSpanNestingAcrossWorkers drives the real worker pool with many
// concurrent cells, each opening a per-cell span with nested children,
// and verifies that no span leaks into another cell's subtree: spans
// from concurrent cells must attach to their own parents only. Run
// with -race this is the data-race check of the tracer.
func TestSpanNestingAcrossWorkers(t *testing.T) {
	const (
		cells   = 256
		workers = 16
		stages  = 3
	)
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)

	err := parallel.ForEach(ctx, cells, workers, func(ctx context.Context, i int) error {
		ctx, cell := obs.StartSpan(ctx, fmt.Sprintf("cell-%d", i))
		defer cell.End()
		for s := 0; s < stages; s++ {
			sctx, sp := obs.StartSpan(ctx, fmt.Sprintf("stage-%d-%d", i, s))
			// A grandchild, to exercise deeper nesting concurrently.
			_, g := obs.StartSpan(sctx, fmt.Sprintf("inner-%d-%d", i, s))
			g.End()
			sp.End()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	roots := tr.Roots()
	if len(roots) != cells {
		t.Fatalf("got %d cell roots, want %d", len(roots), cells)
	}
	seen := map[string]bool{}
	for _, root := range roots {
		var id int
		if _, err := fmt.Sscanf(root.Name, "cell-%d", &id); err != nil {
			t.Fatalf("unexpected root span %q", root.Name)
		}
		if seen[root.Name] {
			t.Fatalf("cell %d appears twice as a root", id)
		}
		seen[root.Name] = true
		if len(root.Children) != stages {
			t.Fatalf("cell %d has %d children, want %d", id, len(root.Children), stages)
		}
		for s, child := range root.Children {
			want := fmt.Sprintf("stage-%d-%d", id, s)
			if child.Name != want {
				t.Fatalf("cell %d child %d is %q, want %q — span interleaved into the wrong parent",
					id, s, child.Name, want)
			}
			if len(child.Children) != 1 || child.Children[0].Name != fmt.Sprintf("inner-%d-%d", id, s) {
				t.Fatalf("cell %d stage %d grandchild wrong: %+v", id, s, child.Children)
			}
		}
	}
}
