package obs

import (
	"sort"
	"sync"
)

// RequestTrace is one request's span tree plus the outcome metadata a
// trace store needs to decide retention. The server builds one per
// traced request and offers it to its TraceStore when the request
// finishes.
type RequestTrace struct {
	// ID is the request ID (inbound X-Request-Id or server-generated).
	ID string `json:"id"`
	// StartUnixNS is the request's arrival time.
	StartUnixNS int64 `json:"start_unix_ns"`
	// DurNS is the request's total server-side handling time.
	DurNS int64 `json:"dur_ns"`
	// Status is the HTTP status the request answered with.
	Status int `json:"status"`
	// Outcome classifies the request: "ok", "cached", "coalesced",
	// "degraded", "shed", "deadline", "client-error" or "error".
	Outcome string `json:"outcome"`
	// Tier is the admission tier the solve ran under, when one ran.
	Tier string `json:"tier,omitempty"`
	// Reason carries the degradation reason or error text.
	Reason string `json:"reason,omitempty"`
	// Spans is the request's span forest (the "request" root plus
	// anything the pipeline opened under it).
	Spans []*Span `json:"spans,omitempty"`
}

// MustKeep reports whether the trace belongs to the always-retained
// class: degraded answers, load sheds, deadline expiries and server
// errors. Client mistakes (4xx) are deliberately excluded — a burst of
// malformed requests must not evict the traces that explain a bad p99.
func (t *RequestTrace) MustKeep() bool {
	switch t.Outcome {
	case "degraded", "shed", "deadline", "error":
		return true
	}
	return false
}

// TraceSummary is one row of the trace-store index (/debug/traces):
// everything about a retained trace except its span payload.
type TraceSummary struct {
	ID          string  `json:"id"`
	StartUnixNS int64   `json:"start_unix_ns"`
	DurMS       float64 `json:"dur_ms"`
	Status      int     `json:"status"`
	Outcome     string  `json:"outcome"`
	Tier        string  `json:"tier,omitempty"`
	Reason      string  `json:"reason,omitempty"`
	// Kept says which retention class holds the trace: "must-keep"
	// (error/degraded/shed), "slow" (slowest-N) or "sample" (1-in-K).
	Kept string `json:"kept"`
}

type storeEntry struct {
	t    *RequestTrace
	kept string
}

// TraceStore is the bounded tail-sampling retention layer behind
// /debug/traces. Every finished trace is offered; the store keeps
//
//   - every must-keep trace (error/degraded/shed) in a FIFO ring of
//     keepCap entries — newest failures win when the ring wraps;
//   - the slowCap slowest remaining traces (a min-heap on duration), so
//     the requests behind a bad p99 stay inspectable;
//   - a 1-in-sampleEvery systematic sample of everything else in a FIFO
//     ring of sampleCap entries, as a baseline of normal traffic.
//
// Everything else is discarded immediately: retention cost is bounded
// regardless of traffic, and the interesting tail is never crowded out
// by healthy requests. Safe for concurrent use.
type TraceStore struct {
	mu          sync.Mutex
	keepCap     int
	slowCap     int
	sampleCap   int
	sampleEvery int64

	keep       []*RequestTrace // FIFO ring, len ≤ keepCap
	keepNext   int
	slow       []*RequestTrace // min-heap on DurNS, len ≤ slowCap
	sample     []*RequestTrace // FIFO ring, len ≤ sampleCap
	sampleNext int
	offered    int64
	byID       map[string]*storeEntry
}

// NewTraceStore returns a store with the given class capacities. A
// non-positive capacity disables that class; sampleEvery ≤ 1 samples
// every non-kept trace (bounded by sampleCap).
func NewTraceStore(keepCap, slowCap, sampleCap, sampleEvery int) *TraceStore {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &TraceStore{
		keepCap:     keepCap,
		slowCap:     slowCap,
		sampleCap:   sampleCap,
		sampleEvery: int64(sampleEvery),
		byID:        make(map[string]*storeEntry),
	}
}

// Offer decides the trace's retention. kept reports whether the store
// holds it afterwards; droppedMustKeep reports that accepting it
// overwrote an older must-keep trace (the signal behind the
// casa_server_trace_store_drops_total gate — a healthy run never drops
// failure traces because it barely produces any).
func (st *TraceStore) Offer(t *RequestTrace) (kept, droppedMustKeep bool) {
	if st == nil || t == nil || t.ID == "" {
		return false, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.byID[t.ID]; dup {
		// A client reused a request ID; the first trace keeps the name.
		return false, false
	}
	st.offered++

	if t.MustKeep() && st.keepCap > 0 {
		if len(st.keep) < st.keepCap {
			st.keep = append(st.keep, t)
		} else {
			old := st.keep[st.keepNext]
			delete(st.byID, old.ID)
			st.keep[st.keepNext] = t
			st.keepNext = (st.keepNext + 1) % st.keepCap
			droppedMustKeep = true
		}
		st.byID[t.ID] = &storeEntry{t: t, kept: "must-keep"}
		return true, droppedMustKeep
	}

	if st.slowCap > 0 && (len(st.slow) < st.slowCap || t.DurNS > st.slow[0].DurNS) {
		if len(st.slow) == st.slowCap {
			evicted := st.popSlowest()
			delete(st.byID, evicted.ID)
		}
		st.pushSlow(t)
		st.byID[t.ID] = &storeEntry{t: t, kept: "slow"}
		return true, false
	}

	if st.sampleCap > 0 && (st.offered-1)%st.sampleEvery == 0 {
		if len(st.sample) < st.sampleCap {
			st.sample = append(st.sample, t)
		} else {
			old := st.sample[st.sampleNext]
			delete(st.byID, old.ID)
			st.sample[st.sampleNext] = t
			st.sampleNext = (st.sampleNext + 1) % st.sampleCap
		}
		st.byID[t.ID] = &storeEntry{t: t, kept: "sample"}
		return true, false
	}
	return false, false
}

// pushSlow / popSlowest maintain the min-heap on DurNS: slow[0] is the
// fastest retained "slow" trace, the one a slower newcomer replaces.
func (st *TraceStore) pushSlow(t *RequestTrace) {
	st.slow = append(st.slow, t)
	i := len(st.slow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if st.slow[parent].DurNS <= st.slow[i].DurNS {
			break
		}
		st.slow[parent], st.slow[i] = st.slow[i], st.slow[parent]
		i = parent
	}
}

func (st *TraceStore) popSlowest() *RequestTrace {
	min := st.slow[0]
	last := len(st.slow) - 1
	st.slow[0] = st.slow[last]
	st.slow = st.slow[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && st.slow[l].DurNS < st.slow[small].DurNS {
			small = l
		}
		if r < last && st.slow[r].DurNS < st.slow[small].DurNS {
			small = r
		}
		if small == i {
			break
		}
		st.slow[i], st.slow[small] = st.slow[small], st.slow[i]
		i = small
	}
	return min
}

// Get returns the retained trace with the given ID.
func (st *TraceStore) Get(id string) (*RequestTrace, bool) {
	if st == nil {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	return e.t, true
}

// Len returns the number of retained traces.
func (st *TraceStore) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}

// Index returns a summary of every retained trace, newest first.
func (st *TraceStore) Index() []TraceSummary {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	out := make([]TraceSummary, 0, len(st.byID))
	for _, e := range st.byID {
		out = append(out, TraceSummary{
			ID:          e.t.ID,
			StartUnixNS: e.t.StartUnixNS,
			DurMS:       float64(e.t.DurNS) / 1e6,
			Status:      e.t.Status,
			Outcome:     e.t.Outcome,
			Tier:        e.t.Tier,
			Reason:      e.t.Reason,
			Kept:        e.kept,
		})
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUnixNS != out[j].StartUnixNS {
			return out[i].StartUnixNS > out[j].StartUnixNS
		}
		return out[i].ID < out[j].ID
	})
	return out
}
