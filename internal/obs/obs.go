// Package obs is the observability layer of the reproduction: tracing
// spans, a process-wide metrics registry and machine-readable run
// reports. The pipeline itself is instrumented — every stage from trace
// partitioning through ILP solve to cache simulation opens a span, every
// memo layer counts its hits — but all of it is designed to cost nothing
// when nobody is looking:
//
//   - Spans exist only when a Tracer has been attached to the
//     context. StartSpan on a tracer-less context returns a nil *Span
//     whose methods are all no-ops, so instrumented code needs no
//     conditionals and pays one context lookup per stage (not per fetch).
//   - Metrics are plain atomic counters, incremented at memo and stage
//     boundaries — never inside the fetch loop — and exported through
//     expvar (GET /debug/vars when a pprof server is enabled).
//   - Trace logging (solver progress, stage starts) is off unless the
//     CASA_TRACE environment variable or a -trace flag enables it.
//
// The span tree and a metrics snapshot can be serialized as a Report —
// one JSON line per study — which cmd/benchdiff diffs against a
// committed baseline to catch stage-level and cache-hit-rate
// regressions, not just wall-clock ones.
package obs

import (
	"context"
	"runtime/metrics"
	"sort"
	"sync"
	"time"
)

// Span is one timed region of the pipeline. Spans form a tree: a span
// started from a context carrying another span becomes its child. The
// exported fields are the serialized form; they must not be mutated
// outside this package. A nil *Span is valid and inert, so callers can
// instrument unconditionally.
type Span struct {
	// Name is the stage name ("prepare", "ilp-solve", "simulate", ...).
	Name string `json:"name"`
	// StartUnixNS is the span's start time (nanoseconds since the epoch);
	// zeroed in deterministic reports.
	StartUnixNS int64 `json:"start_unix_ns,omitempty"`
	// DurNS is the span's wall time in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// AllocBytes is the heap allocated between start and end. The counter
	// is process-wide, so under concurrent cells this is an upper bound
	// on the span's own allocations.
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// Attrs are per-span key/value annotations (workload, sizes, memo
	// hit/miss, solver status, ...).
	Attrs map[string]any `json:"attrs,omitempty"`
	// Children are the nested spans, in start order.
	Children []*Span `json:"children,omitempty"`

	tracer     *Tracer
	start      time.Time
	startAlloc uint64
}

// Tracer collects one run's span tree. It is safe for concurrent use:
// spans started from contexts on different goroutines append to the
// shared tree under the tracer's lock.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Roots returns the top-level spans collected so far. The returned
// slice must be treated as read-only, and only inspected after the
// traced work has finished.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context that collects spans into t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer attached to ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFrom returns the innermost span attached to ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithSpan returns a context carrying sp as the innermost span, so spans
// started from it become sp's children. It is how a server detaches a
// solve from the request's cancellation (context.Background()) while
// keeping its spans parented under the request's tree; sp must belong to
// the tracer the context carries.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// heapAllocBytes reads the cumulative heap allocation counter. Unlike
// runtime.ReadMemStats it does not stop the world, so it is cheap
// enough to sample per span; it is only consulted while tracing.
var heapAllocSample = []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}

func heapAllocBytes() uint64 {
	s := []metrics.Sample{heapAllocSample[0]}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}

// StartSpan opens a span named name as a child of the span carried by
// ctx (or as a root) and returns a derived context carrying the new
// span. When ctx has no tracer it returns ctx unchanged and a nil span;
// both return values are always safe to use.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := &Span{
		Name:       name,
		tracer:     t,
		start:      time.Now(),
		startAlloc: heapAllocBytes(),
	}
	sp.StartUnixNS = sp.start.UnixNano()
	parent := SpanFrom(ctx)
	t.mu.Lock()
	if parent != nil {
		parent.Children = append(parent.Children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.mu.Unlock()
	Tracef("span %s start", name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// End closes the span, recording its duration and allocation delta.
// Safe on a nil span and idempotent enough for defer use.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start).Nanoseconds()
	alloc := int64(heapAllocBytes() - s.startAlloc)
	s.tracer.mu.Lock()
	s.DurNS = dur
	s.AllocBytes = alloc
	s.tracer.mu.Unlock()
}

// SetAttr annotates the span with a key/value pair. Safe on nil.
// Values should be strings, booleans or numbers so reports marshal
// deterministically.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]any)
	}
	s.Attrs[key] = value
	s.tracer.mu.Unlock()
}

// Walk visits the span and all descendants depth-first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// StageNames returns the sorted set of distinct span names reachable
// from the given roots.
func StageNames(roots []*Span) []string {
	seen := map[string]bool{}
	for _, r := range roots {
		r.Walk(func(s *Span) { seen[s.Name] = true })
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
