package energy

import (
	"math"
	"testing"
	"testing/quick"
)

// mustProbe returns the cache probe energy, failing the test on error.
func mustProbe(t *testing.T, g CacheGeometry) float64 {
	t.Helper()
	e, err := CacheProbe(g)
	if err != nil {
		t.Fatalf("CacheProbe(%+v): %v", g, err)
	}
	return e
}

// mustCostModel builds a cost model, failing the test on error.
func mustCostModel(t *testing.T, cfg Config) CostModel {
	t.Helper()
	cm, err := NewCostModel(cfg)
	if err != nil {
		t.Fatalf("NewCostModel(%+v): %v", cfg, err)
	}
	return cm
}

func TestSRAMAccessMonotonicInSize(t *testing.T) {
	prev := 0.0
	for size := 64; size <= 64*1024; size *= 2 {
		e := SRAMAccess(size)
		if e <= 0 {
			t.Fatalf("SRAMAccess(%d) = %g, want > 0", size, e)
		}
		if e < prev {
			t.Errorf("SRAMAccess(%d) = %g < SRAMAccess(%d) = %g", size, e, size/2, prev)
		}
		prev = e
	}
}

func TestSRAMAccessRejectsNonPositiveSizes(t *testing.T) {
	for _, size := range []int{0, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SRAMAccess(%d) did not panic", size)
				}
			}()
			SRAMAccess(size)
		}()
	}
}

func TestSRAMAccessRoundsUpOddSizes(t *testing.T) {
	// Non-power-of-two capacities use the next hardware array size.
	if got, want := SRAMAccess(96), SRAMAccess(128); got != want {
		t.Errorf("SRAMAccess(96) = %g, want rounded-up %g", got, want)
	}
	if got, want := SRAMAccess(1023), SRAMAccess(1024); got != want {
		t.Errorf("SRAMAccess(1023) = %g, want rounded-up %g", got, want)
	}
}

func TestSPMCheaperThanEqualCache(t *testing.T) {
	// The core premise of the paper's architecture: a scratchpad access is
	// substantially cheaper than a hit in an equal-sized cache.
	for size := 128; size <= 8192; size *= 2 {
		spm := SPMAccess(size)
		hit := mustProbe(t, CacheGeometry{SizeBytes: size, LineBytes: 16, Assoc: 1})
		if spm >= hit {
			t.Errorf("size %d: SPM %g >= cache hit %g", size, spm, hit)
		}
		ratio := spm / hit
		if ratio > 0.85 {
			t.Errorf("size %d: SPM/cache ratio %.2f, want noticeably < 1", size, ratio)
		}
		// At the paper's scale (≤ 2 kB) the gap is Banakar-sized: ~40%.
		if size <= 2048 && ratio > 0.70 {
			t.Errorf("size %d: SPM/cache ratio %.2f, want ≤ 0.70", size, ratio)
		}
	}
}

func TestMissMuchMoreExpensiveThanHit(t *testing.T) {
	for _, g := range []CacheGeometry{
		{SizeBytes: 128, LineBytes: 16, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 16, Assoc: 1},
		{SizeBytes: 2048, LineBytes: 16, Assoc: 1},
		{SizeBytes: 4096, LineBytes: 32, Assoc: 4},
	} {
		cm := mustCostModel(t, Config{Cache: g})
		if cm.CacheMiss < 10*cm.CacheHit {
			t.Errorf("%+v: miss %g < 10x hit %g", g, cm.CacheMiss, cm.CacheHit)
		}
	}
}

func TestCacheProbeGrowsWithAssociativity(t *testing.T) {
	base := mustProbe(t, CacheGeometry{SizeBytes: 4096, LineBytes: 16, Assoc: 1})
	prev := base
	for assoc := 2; assoc <= 8; assoc *= 2 {
		e := mustProbe(t, CacheGeometry{SizeBytes: 4096, LineBytes: 16, Assoc: assoc})
		if e <= prev {
			t.Errorf("assoc %d probe %g <= assoc %d probe %g", assoc, e, assoc/2, prev)
		}
		prev = e
	}
}

func TestCacheGeometryValidate(t *testing.T) {
	bad := []CacheGeometry{
		{SizeBytes: 0, LineBytes: 16, Assoc: 1},
		{SizeBytes: 100, LineBytes: 16, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 0, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 2, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 24, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 16, Assoc: 0},
		{SizeBytes: 32, LineBytes: 16, Assoc: 4},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid geometry", g)
		}
	}
	good := CacheGeometry{SizeBytes: 2048, LineBytes: 16, Assoc: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v", good, err)
	}
	if got := good.Sets(); got != 128 {
		t.Errorf("Sets = %d, want 128", got)
	}
}

func TestMainMemoryLineScalesWithWords(t *testing.T) {
	e16 := MainMemoryLine(16)
	e32 := MainMemoryLine(32)
	if e32 <= e16 {
		t.Errorf("32B line %g <= 16B line %g", e32, e16)
	}
	// Burst setup amortizes: doubling the line must not double the total.
	if e32 >= 2*e16 {
		t.Errorf("no burst amortization: %g vs %g", e32, e16)
	}
	if MainMemoryWord() <= 0 {
		t.Error("MainMemoryWord must be positive")
	}
}

func TestLoopCacheControllerScalesWithEntries(t *testing.T) {
	if LoopCacheController(0) != 0 {
		t.Error("0 entries must cost 0")
	}
	e4 := LoopCacheController(4)
	e8 := LoopCacheController(8)
	if math.Abs(e8-2*e4) > 1e-12 {
		t.Errorf("controller energy not linear: %g vs %g", e4, e8)
	}
}

func TestNewCostModel(t *testing.T) {
	cfg := Config{
		Cache:            CacheGeometry{SizeBytes: 2048, LineBytes: 16, Assoc: 1},
		SPMBytes:         512,
		LoopCacheBytes:   512,
		LoopCacheEntries: 4,
	}
	cm, err := NewCostModel(cfg)
	if err != nil {
		t.Fatalf("NewCostModel: %v", err)
	}
	if cm.CacheHit <= 0 || cm.CacheMiss <= cm.CacheHit || cm.SPMAccess <= 0 {
		t.Errorf("implausible cost model: %+v", cm)
	}
	if cm.SPMAccess >= cm.CacheHit {
		t.Errorf("SPM (512B) %g should be below 2kB cache hit %g", cm.SPMAccess, cm.CacheHit)
	}
	if cm.LoopCacheHit != cm.SPMAccess {
		t.Errorf("equal-size loop cache array should equal SPM: %g vs %g",
			cm.LoopCacheHit, cm.SPMAccess)
	}
	if cm.LoopCacheController <= 0 {
		t.Error("controller energy missing")
	}
}

func TestNewCostModelRejectsBadCache(t *testing.T) {
	_, err := NewCostModel(Config{Cache: CacheGeometry{SizeBytes: 100, LineBytes: 16, Assoc: 1}})
	if err == nil {
		t.Fatal("expected geometry error")
	}
}

// Property: for any power-of-two sizes, the cost model preserves the
// orderings the paper's argument depends on.
func TestCostModelOrderingProperty(t *testing.T) {
	f := func(cacheExp, spmExp uint8) bool {
		cacheSize := 128 << (cacheExp % 7) // 128B .. 8kB
		spmSize := 64 << (spmExp % 7)      // 64B .. 4kB
		cm, err := NewCostModel(Config{
			Cache:    CacheGeometry{SizeBytes: cacheSize, LineBytes: 16, Assoc: 1},
			SPMBytes: spmSize,
		})
		if err != nil {
			return false
		}
		if cm.CacheMiss <= cm.CacheHit {
			return false
		}
		// SPM no larger than the cache must be cheaper than a cache hit.
		if spmSize <= cacheSize && cm.SPMAccess >= cm.CacheHit {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelWithoutComponents(t *testing.T) {
	cm, err := NewCostModel(Config{})
	if err != nil {
		t.Fatalf("NewCostModel: %v", err)
	}
	if cm.CacheHit != 0 || cm.SPMAccess != 0 || cm.LoopCacheHit != 0 {
		t.Errorf("disabled components should cost 0: %+v", cm)
	}
	if cm.MainMemoryWord <= 0 {
		t.Error("main memory word energy always available")
	}
}

func TestCostModelL2Components(t *testing.T) {
	cm, err := NewCostModel(Config{
		Cache: CacheGeometry{SizeBytes: 1024, LineBytes: 16, Assoc: 1},
		L2:    CacheGeometry{SizeBytes: 8192, LineBytes: 16, Assoc: 2},
	})
	if err != nil {
		t.Fatalf("NewCostModel: %v", err)
	}
	if cm.L2Probe <= cm.CacheHit {
		t.Errorf("L2 probe %g should exceed the smaller L1's hit %g", cm.L2Probe, cm.CacheHit)
	}
	if cm.L2Fill <= 0 || cm.CacheFill <= 0 || cm.MainLine <= 0 {
		t.Errorf("missing components: %+v", cm)
	}
	// Single-level composite must equal its parts.
	if diff := cm.CacheMiss - (cm.CacheHit + cm.CacheFill + cm.MainLine); math.Abs(diff) > 1e-12 {
		t.Errorf("CacheMiss not the sum of its parts: %g", diff)
	}
}

func TestCostModelL2LineMismatch(t *testing.T) {
	_, err := NewCostModel(Config{
		Cache: CacheGeometry{SizeBytes: 1024, LineBytes: 16, Assoc: 1},
		L2:    CacheGeometry{SizeBytes: 8192, LineBytes: 32, Assoc: 2},
	})
	if err == nil {
		t.Fatal("mismatched line sizes accepted")
	}
}

func TestCacheProbeErrorsOnInvalid(t *testing.T) {
	if _, err := CacheProbe(CacheGeometry{SizeBytes: 100, LineBytes: 16, Assoc: 1}); err == nil {
		t.Fatal("CacheProbe accepted invalid geometry")
	}
}
