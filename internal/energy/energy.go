// Package energy provides the per-access energy model of the memory
// hierarchy. It stands in for the tools the paper used: the CACTI cache
// model of Wilton & Jouppi for caches and preloaded loop caches, the
// scratchpad model of Banakar et al., and main-memory energy measured on an
// ARM7T evaluation board.
//
// The model is analytical in the CACTI style: an SRAM array of a given
// capacity is organized into a near-square grid of rows and columns, and an
// access charges the row decoder, one wordline, all active bitlines, the
// column sense amplifiers and the output drivers. Caches add a tag array,
// comparators and (for associative organizations) parallel way reads.
//
// Absolute constants are calibrated for a 0.5 µm process so that the
// orderings the paper's conclusions rest on hold:
//
//   - a scratchpad access costs noticeably less than a hit in a cache of
//     equal capacity (no tag path, no comparators) — around 40% less,
//     matching Banakar et al.;
//   - a cache miss costs roughly two orders of magnitude more than a hit,
//     because it adds an off-chip main-memory line transfer and a line fill;
//   - energies grow monotonically with capacity and associativity.
//
// All energies are in nanojoules (nJ).
package energy

import (
	"fmt"
	"math"
)

// Technology constants (nJ), loosely calibrated to 0.5 µm CMOS.
const (
	// decodePerBit is the decoder energy per decoded address bit.
	decodePerBit = 0.008
	// wordlinePerCol is the wordline drive energy per column.
	wordlinePerCol = 0.0009
	// bitlinePerCell is the precharge+swing energy per active cell
	// (rows × columns product).
	bitlinePerCell = 2.2e-5
	// sensePerBit is the sense-amplifier energy per output bit.
	sensePerBit = 0.002
	// outputDrive is the fixed output-driver energy per access.
	outputDrive = 0.02
	// comparePerWay is the tag-comparator energy per cache way.
	comparePerWay = 0.01
	// controllerPerEntry is the loop-cache controller energy per preloaded
	// range, paid on every instruction fetch while the controller is active
	// (it must decide loop cache vs. L1 on each fetch).
	controllerPerEntry = 0.012

	// mainMemBurst is the fixed off-chip access setup energy per burst.
	mainMemBurst = 16.0
	// mainMemPerWord is the off-chip transfer energy per 32-bit word.
	mainMemPerWord = 8.0

	// wordBits is the processor fetch width (ARM state: 32-bit).
	wordBits = 32
)

// SRAMAccess returns the read energy (nJ) of a standalone SRAM array of the
// given capacity in bytes delivering wordBits per access. Capacities that
// are not powers of two are rounded up to the next hardware array size; it
// panics if sizeBytes is not positive.
func SRAMAccess(sizeBytes int) float64 {
	rows, cols := organize(sizeBytes, wordBits)
	return arrayEnergy(rows, cols, wordBits)
}

// organize picks a near-square row/column organization for an array of
// sizeBytes bytes (rounded up to a power of two) with at least minCols
// columns.
func organize(sizeBytes, minCols int) (rows, cols int) {
	if sizeBytes <= 0 {
		panic(fmt.Sprintf("energy: array size must be positive, got %d", sizeBytes))
	}
	for sizeBytes&(sizeBytes-1) != 0 {
		sizeBytes += sizeBytes & -sizeBytes // round up to the next power of two
	}
	bits := sizeBytes * 8
	cols = minCols
	for cols*cols < bits {
		cols *= 2
	}
	rows = bits / cols
	if rows == 0 {
		rows = 1
	}
	return rows, cols
}

// arrayEnergy is the core access-energy expression for an SRAM array.
func arrayEnergy(rows, cols, outBits int) float64 {
	dec := decodePerBit * math.Log2(float64(rows)+1)
	wl := wordlinePerCol * float64(cols)
	bl := bitlinePerCell * float64(rows) * float64(cols)
	sense := sensePerBit * float64(outBits)
	return dec + wl + bl + sense + outputDrive
}

// CacheGeometry describes an instruction cache organization.
type CacheGeometry struct {
	// SizeBytes is the total data capacity (power of two).
	SizeBytes int
	// LineBytes is the line (block) size in bytes (power of two, ≥ 4).
	LineBytes int
	// Assoc is the associativity; 1 means direct-mapped.
	Assoc int
}

// Validate checks the geometry for internal consistency.
func (g CacheGeometry) Validate() error {
	switch {
	case g.SizeBytes <= 0 || g.SizeBytes&(g.SizeBytes-1) != 0:
		return fmt.Errorf("energy: cache size %d not a positive power of two", g.SizeBytes)
	case g.LineBytes < 4 || g.LineBytes&(g.LineBytes-1) != 0:
		return fmt.Errorf("energy: line size %d not a power of two ≥ 4", g.LineBytes)
	case g.Assoc < 1:
		return fmt.Errorf("energy: associativity %d < 1", g.Assoc)
	case g.SizeBytes < g.LineBytes*g.Assoc:
		return fmt.Errorf("energy: cache %dB too small for %d ways of %dB lines",
			g.SizeBytes, g.Assoc, g.LineBytes)
	}
	return nil
}

// Sets returns the number of cache sets.
func (g CacheGeometry) Sets() int { return g.SizeBytes / (g.LineBytes * g.Assoc) }

// tagBits approximates the tag width for a 32-bit address space.
func (g CacheGeometry) tagBits() int {
	sets := g.Sets()
	offsetBits := int(math.Log2(float64(g.LineBytes)))
	indexBits := int(math.Log2(float64(sets)))
	return 32 - offsetBits - indexBits + 1 // +1 valid bit
}

// CacheProbe returns the energy (nJ) of probing the cache once: reading the
// indexed set's tags and data in all ways and comparing. This is the cost
// of a hit, and also the detection cost paid on a miss.
func CacheProbe(g CacheGeometry) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, fmt.Errorf("energy: cache probe: %w", err)
	}
	sets := g.Sets()
	// Data array: rows = sets, columns = line bits per way × ways (all ways
	// read in parallel in a conventional organization). Unlike a scratchpad,
	// the cache senses the full line width into its line buffer, not just
	// the requested word — a major part of the cache/SPM energy gap.
	dataRows := sets
	dataCols := g.LineBytes * 8 * g.Assoc
	data := arrayEnergy(dataRows, dataCols, dataCols)
	// Tag array: rows = sets, cols = tagBits × ways.
	tag := arrayEnergy(sets, g.tagBits()*g.Assoc, g.tagBits()*g.Assoc)
	cmp := comparePerWay * float64(g.Assoc)
	return data + tag + cmp, nil
}

// CacheFill returns the energy (nJ) of writing one fetched line into the
// data array after a miss (tag update included).
func CacheFill(g CacheGeometry) float64 {
	sets := g.Sets()
	// Writing activates one way's line columns.
	data := arrayEnergy(sets, g.LineBytes*8, g.LineBytes*8)
	tag := arrayEnergy(sets, g.tagBits(), g.tagBits())
	return data + tag
}

// MainMemoryLine returns the off-chip energy (nJ) of transferring one cache
// line of the given size.
func MainMemoryLine(lineBytes int) float64 {
	words := (lineBytes + 3) / 4
	return mainMemBurst + mainMemPerWord*float64(words)
}

// MainMemoryWord returns the off-chip energy (nJ) of a single 32-bit
// fetch without a surrounding burst (used by cache-less configurations).
func MainMemoryWord() float64 { return mainMemBurst/4 + mainMemPerWord }

// SPMAccess returns the energy (nJ) of one scratchpad fetch. The scratchpad
// is a plain SRAM array: no tags, no comparators.
func SPMAccess(sizeBytes int) float64 { return SRAMAccess(sizeBytes) }

// LoopCacheController returns the per-fetch controller energy (nJ) of a
// preloaded loop cache with the given number of preloadable ranges. The
// controller compares the PC against every range's start/end registers on
// every fetch, which is why real designs cap the entry count at 2–6.
func LoopCacheController(entries int) float64 {
	return controllerPerEntry * float64(entries)
}

// LoopCacheAccess returns the energy (nJ) of one fetch served by the loop
// cache array itself (controller energy excluded; see LoopCacheController).
func LoopCacheAccess(sizeBytes int) float64 { return SRAMAccess(sizeBytes) }

// CostModel bundles the per-event energies (nJ) the memory-hierarchy
// simulator charges. Construct one with NewCostModel.
type CostModel struct {
	// CacheHit is charged per fetch that hits in the I-cache.
	CacheHit float64
	// CacheMiss is charged per fetch that misses: probe + line fill + the
	// off-chip line transfer (single-level hierarchies).
	CacheMiss float64
	// CacheFill is the L1 line-fill component alone (multi-level
	// hierarchies assemble miss costs from components).
	CacheFill float64
	// MainLine is the off-chip line-transfer component alone.
	MainLine float64
	// L2Probe and L2Fill are the second-level cache components; zero when
	// no L2 is configured.
	L2Probe float64
	L2Fill  float64
	// SPMAccess is charged per fetch served by the scratchpad.
	SPMAccess float64
	// LoopCacheHit is charged per fetch served by the loop cache array.
	LoopCacheHit float64
	// LoopCacheController is charged per fetch (on top of the serving
	// component) while a loop-cache controller is present.
	LoopCacheController float64
	// MainMemoryWord is charged per fetch in cache-less configurations that
	// go straight to main memory.
	MainMemoryWord float64
}

// Config selects the hierarchy components a CostModel should cover. Zero
// sizes disable a component.
type Config struct {
	// Cache is the I-cache geometry; SizeBytes == 0 disables the cache.
	Cache CacheGeometry
	// L2 is an optional second-level I-cache geometry (SizeBytes == 0
	// disables it). Its line size must equal the L1 line size.
	L2 CacheGeometry
	// SPMBytes is the scratchpad capacity.
	SPMBytes int
	// LoopCacheBytes is the loop-cache capacity.
	LoopCacheBytes int
	// LoopCacheEntries is the number of preloadable ranges.
	LoopCacheEntries int
}

// NewCostModel derives the per-event energies for the given configuration.
func NewCostModel(cfg Config) (CostModel, error) {
	var cm CostModel
	if cfg.Cache.SizeBytes > 0 {
		probe, err := CacheProbe(cfg.Cache)
		if err != nil {
			return cm, err
		}
		cm.CacheHit = probe
		cm.CacheFill = CacheFill(cfg.Cache)
		cm.MainLine = MainMemoryLine(cfg.Cache.LineBytes)
		cm.CacheMiss = probe + cm.CacheFill + cm.MainLine
	}
	if cfg.L2.SizeBytes > 0 {
		if cfg.L2.LineBytes != cfg.Cache.LineBytes {
			return cm, fmt.Errorf("energy: L2 line size %d differs from L1 %d",
				cfg.L2.LineBytes, cfg.Cache.LineBytes)
		}
		probe, err := CacheProbe(cfg.L2)
		if err != nil {
			return cm, err
		}
		cm.L2Probe = probe
		cm.L2Fill = CacheFill(cfg.L2)
	}
	if cfg.SPMBytes > 0 {
		cm.SPMAccess = SPMAccess(cfg.SPMBytes)
	}
	if cfg.LoopCacheBytes > 0 {
		cm.LoopCacheHit = LoopCacheAccess(cfg.LoopCacheBytes)
		cm.LoopCacheController = LoopCacheController(cfg.LoopCacheEntries)
	}
	cm.MainMemoryWord = MainMemoryWord()
	return cm, nil
}
