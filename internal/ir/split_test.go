package ir

import (
	"testing"
)

func TestSplitBlocksRejectsTinyMax(t *testing.T) {
	pb := NewProgramBuilder("p")
	pb.Func("main").Block("a").ALU(1).Return()
	p := mustBuild(t, pb)
	if _, err := SplitBlocks(p, 1); err == nil {
		t.Fatal("maxInstrs=1 accepted")
	}
}

func TestSplitBlocksNoChangeWhenSmall(t *testing.T) {
	pb := NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("a").ALU(3)
	f.Block("b").Return()
	p := mustBuild(t, pb)
	np, err := SplitBlocks(p, 8)
	if err != nil {
		t.Fatalf("SplitBlocks: %v", err)
	}
	if np.NumBlocks() != p.NumBlocks() {
		t.Errorf("blocks %d, want %d", np.NumBlocks(), p.NumBlocks())
	}
	if np.Size() != p.Size() {
		t.Errorf("size changed: %d vs %d", np.Size(), p.Size())
	}
	// Input untouched.
	if p.Funcs[0].Blocks[0].ID != 0 {
		t.Error("input mutated")
	}
}

func TestSplitBlocksSplitsLongBlock(t *testing.T) {
	pb := NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("big").ALU(25).Branch("big", "end", Loop{Trips: 4}) // 26 instrs
	f.Block("end").Return()
	p := mustBuild(t, pb)
	np, err := SplitBlocks(p, 8)
	if err != nil {
		t.Fatalf("SplitBlocks: %v", err)
	}
	// 26 instrs at ≤8 each → 4 pieces, plus "end".
	if got := np.NumBlocks(); got != 5 {
		t.Fatalf("blocks = %d, want 5", got)
	}
	if np.Size() != p.Size() {
		t.Errorf("size changed: %d vs %d", np.Size(), p.Size())
	}
	nf := np.Funcs[0]
	for _, b := range nf.Blocks {
		if len(b.Instrs) > 8 {
			t.Errorf("block %d has %d instrs", b.ID, len(b.Instrs))
		}
	}
	// Last piece of "big" carries the branch; its taken edge targets the
	// FIRST piece of "big".
	last := nf.Blocks[3]
	if last.Term() != TermBranch {
		t.Fatalf("last piece terminator %v", last.Term())
	}
	if last.Taken != 0 {
		t.Errorf("back edge targets %d, want 0 (first piece)", last.Taken)
	}
	if last.Behavior == nil {
		t.Error("behavior lost in split")
	}
	// Interior pieces are plain fall-throughs.
	for _, b := range nf.Blocks[:3] {
		if b.Term() != TermFallThrough {
			t.Errorf("piece %d terminator %v", b.ID, b.Term())
		}
		if b.FallThrough != b.ID+1 {
			t.Errorf("piece %d falls to %d", b.ID, b.FallThrough)
		}
	}
	// Label survives on the first piece only.
	if nf.Blocks[0].Label != "big" || nf.Blocks[1].Label != "" {
		t.Errorf("labels: %q %q", nf.Blocks[0].Label, nf.Blocks[1].Label)
	}
}

func TestSplitBlocksRemapsAllEdgeKinds(t *testing.T) {
	pb := NewProgramBuilder("p")
	main := pb.Func("main")
	main.Block("a").ALU(20).Call("leaf") // 20+1 instrs, splits
	main.Block("b").ALU(20).Jump("c")    // splits
	main.Block("c").Return()
	leaf := pb.Func("leaf")
	leaf.Block("l").ALU(2).Return()
	p := mustBuild(t, pb)
	np, err := SplitBlocks(p, 6)
	if err != nil {
		t.Fatalf("SplitBlocks: %v", err)
	}
	if err := Validate(np); err != nil {
		t.Fatalf("split program invalid: %v", err)
	}
	if np.Size() != p.Size() {
		t.Errorf("size changed")
	}
}

func TestSplitPreservesExecutionSemantics(t *testing.T) {
	// The split program must produce the same dynamic instruction count
	// and the same per-original-block behavior. We check total size and
	// validate; the sim package's TestSplitPreservesProfile covers the
	// dynamic part (it needs the interpreter).
	pb := NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("hot").Code(40).Branch("hot", "exit", Loop{Trips: 7})
	f.Block("exit").Return()
	p := mustBuild(t, pb)
	np, err := SplitBlocks(p, 10)
	if err != nil {
		t.Fatalf("SplitBlocks: %v", err)
	}
	if err := Validate(np); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// 41 instrs -> 5 pieces; total block count 6.
	if np.NumBlocks() != 6 {
		t.Errorf("blocks = %d, want 6", np.NumBlocks())
	}
}
