package ir

import "fmt"

// Behavior decides the outcome of a conditional branch each time it
// executes. Behaviors are immutable descriptors attached to blocks; the
// simulator instantiates a fresh BehaviorState per run so that repeated
// simulations of the same program are independent and deterministic.
type Behavior interface {
	// NewState returns a fresh per-run decision state.
	NewState() BehaviorState
	// String describes the behavior for listings.
	String() string
}

// BehaviorState produces a sequence of branch decisions.
type BehaviorState interface {
	// Next reports whether the branch is taken on this execution.
	Next() bool
}

// Loop is the behavior of a loop back-edge branch: out of every Trips
// consecutive executions, the branch is taken the first Trips-1 times and
// not taken on the last, modelling a counted do-while loop that runs Trips
// iterations per entry. Trips must be >= 1; Trips == 1 never takes the
// branch (the loop body runs once per entry).
type Loop struct {
	Trips int
}

// NewState implements Behavior.
func (l Loop) NewState() BehaviorState {
	if l.Trips < 1 {
		panic(fmt.Sprintf("ir.Loop: Trips must be >= 1, got %d", l.Trips))
	}
	return &loopState{trips: l.Trips}
}

// String implements Behavior.
func (l Loop) String() string { return fmt.Sprintf("loop(%d)", l.Trips) }

type loopState struct {
	trips int
	n     int
}

func (s *loopState) Next() bool {
	s.n++
	if s.n >= s.trips {
		s.n = 0
		return false
	}
	return true
}

// Pattern cycles through a fixed sequence of decisions. It models branches
// with periodic data-dependent outcomes (e.g. even/odd field handling in a
// video decoder). An empty pattern is never taken.
type Pattern struct {
	Seq []bool
}

// NewState implements Behavior.
func (p Pattern) NewState() BehaviorState {
	return &patternState{seq: p.Seq}
}

// String implements Behavior.
func (p Pattern) String() string {
	out := make([]byte, len(p.Seq))
	for i, t := range p.Seq {
		if t {
			out[i] = 'T'
		} else {
			out[i] = 'N'
		}
	}
	return fmt.Sprintf("pattern(%s)", out)
}

type patternState struct {
	seq []bool
	i   int
}

func (s *patternState) Next() bool {
	if len(s.seq) == 0 {
		return false
	}
	t := s.seq[s.i]
	s.i++
	if s.i == len(s.seq) {
		s.i = 0
	}
	return t
}

// Biased takes the branch with probability P, decided by a deterministic
// splitmix64 stream seeded with Seed. Two runs of the same program observe
// identical decision sequences.
type Biased struct {
	P    float64
	Seed uint64
}

// NewState implements Behavior.
func (b Biased) NewState() BehaviorState {
	return &biasedState{p: b.P, s: b.Seed}
}

// String implements Behavior.
func (b Biased) String() string { return fmt.Sprintf("biased(%.3f,seed=%d)", b.P, b.Seed) }

type biasedState struct {
	p float64
	s uint64
}

// splitmix64 is the standard SplitMix64 generator step.
func splitmix64(s uint64) (uint64, uint64) {
	s += 0x9e3779b97f4a7c15
	z := s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return s, z
}

func (s *biasedState) Next() bool {
	var z uint64
	s.s, z = splitmix64(s.s)
	// 53-bit mantissa conversion to [0,1).
	u := float64(z>>11) / (1 << 53)
	return u < s.p
}

// Never is a branch that is never taken.
type Never struct{}

// NewState implements Behavior.
func (Never) NewState() BehaviorState { return constState(false) }

// String implements Behavior.
func (Never) String() string { return "never" }

// Always is a branch that is always taken.
type Always struct{}

// NewState implements Behavior.
func (Always) NewState() BehaviorState { return constState(true) }

// String implements Behavior.
func (Always) String() string { return "always" }

type constState bool

func (c constState) Next() bool { return bool(c) }
