package ir

// SplitBlocks returns a copy of p in which every basic block longer than
// maxInstrs instructions is split into a fall-through chain of blocks of
// at most maxInstrs each. Control-flow semantics and execution profiles
// are preserved exactly: the split introduces no new instructions, only
// new block boundaries, so trace formation can build scratchpad-placeable
// traces even when the front end produced very long straight-line blocks
// (e.g. unrolled kernels) and the scratchpad is tiny.
//
// maxInstrs must be at least 2 so that a block's terminator always has
// room next to at least one regular instruction. The input program is not
// modified.
func SplitBlocks(p *Program, maxInstrs int) (*Program, error) {
	if maxInstrs < 2 {
		return nil, invalidf("SplitBlocks: maxInstrs %d < 2", maxInstrs)
	}
	np := &Program{Name: p.Name, Entry: p.Entry}
	for _, f := range p.Funcs {
		nf, err := splitFunc(f, maxInstrs)
		if err != nil {
			return nil, err
		}
		np.Funcs = append(np.Funcs, nf)
	}
	if err := Validate(np); err != nil {
		return nil, err
	}
	return np, nil
}

func splitFunc(f *Function, maxInstrs int) (*Function, error) {
	// First pass: assign new IDs. Block b becomes pieces[b] consecutive
	// blocks; the first piece keeps b's incoming edges.
	newID := make([]BlockID, len(f.Blocks))
	pieces := make([]int, len(f.Blocks))
	next := BlockID(0)
	for i, b := range f.Blocks {
		newID[i] = next
		n := len(b.Instrs)
		k := (n + maxInstrs - 1) / maxInstrs
		if k < 1 {
			k = 1
		}
		pieces[i] = k
		next += BlockID(k)
	}

	nf := &Function{ID: f.ID, Name: f.Name, Entry: newID[f.Entry]}
	for i, b := range f.Blocks {
		base := newID[i]
		k := pieces[i]
		for piece := 0; piece < k; piece++ {
			lo := piece * maxInstrs
			hi := lo + maxInstrs
			if hi > len(b.Instrs) {
				hi = len(b.Instrs)
			}
			nb := &Block{
				ID:          base + BlockID(piece),
				Instrs:      append([]Instr(nil), b.Instrs[lo:hi]...),
				Taken:       NoBlock,
				FallThrough: NoBlock,
				CallTarget:  NoFunc,
			}
			if b.Label != "" {
				if piece == 0 {
					nb.Label = b.Label
				} else {
					nb.Label = "" // interior pieces stay anonymous
				}
			}
			if piece < k-1 {
				// Interior piece: plain fall-through to the next piece.
				nb.FallThrough = base + BlockID(piece+1)
			} else {
				// Last piece inherits the original terminator and edges,
				// remapped to the targets' first pieces.
				if b.Taken != NoBlock {
					nb.Taken = newID[b.Taken]
				}
				if b.FallThrough != NoBlock {
					nb.FallThrough = newID[b.FallThrough]
				}
				nb.CallTarget = b.CallTarget
				nb.Behavior = b.Behavior
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
	}
	return nf, nil
}
