package ir

import (
	"errors"
	"strings"
	"testing"
)

// twoBlockFunc builds a minimal valid program: entry does work and falls
// through to a returning block.
func twoBlockProgram(t *testing.T) *Program {
	t.Helper()
	pb := NewProgramBuilder("two")
	f := pb.Func("main")
	f.Block("entry").ALU(3)
	f.Block("exit").Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestOpcodeString(t *testing.T) {
	cases := []struct {
		op   Opcode
		want string
	}{
		{OpALU, "alu"},
		{OpMul, "mul"},
		{OpLoad, "ldr"},
		{OpStore, "str"},
		{OpNOP, "nop"},
		{OpBranch, "b.cond"},
		{OpJump, "b"},
		{OpCall, "bl"},
		{OpReturn, "ret"},
		{Opcode(200), "op(200)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("Opcode(%d).String() = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestOpcodeIsControl(t *testing.T) {
	control := map[Opcode]bool{OpBranch: true, OpJump: true, OpCall: true, OpReturn: true}
	for op := OpALU; op <= OpReturn; op++ {
		if got := op.IsControl(); got != control[op] {
			t.Errorf("%s.IsControl() = %v, want %v", op, got, control[op])
		}
	}
}

func TestBlockTermAndSize(t *testing.T) {
	b := &Block{Instrs: []Instr{{Op: OpALU}, {Op: OpLoad}}}
	if b.Term() != TermFallThrough {
		t.Errorf("Term() = %v, want fallthrough", b.Term())
	}
	if b.Size() != 2*InstrSize {
		t.Errorf("Size() = %d, want %d", b.Size(), 2*InstrSize)
	}
	b.Instrs = append(b.Instrs, Instr{Op: OpJump})
	if b.Term() != TermJump {
		t.Errorf("Term() = %v, want jump", b.Term())
	}
	empty := &Block{}
	if empty.Term() != TermFallThrough {
		t.Errorf("empty Term() = %v, want fallthrough", empty.Term())
	}
}

func TestTerminatorString(t *testing.T) {
	if TermBranch.String() != "branch" || TermCall.String() != "call" {
		t.Errorf("unexpected terminator names: %v %v", TermBranch, TermCall)
	}
	if got := Terminator(99).String(); got != "terminator(99)" {
		t.Errorf("Terminator(99).String() = %q", got)
	}
}

func TestBlockSuccs(t *testing.T) {
	cases := []struct {
		name string
		b    Block
		want []BlockID
	}{
		{
			name: "fallthrough",
			b:    Block{Instrs: []Instr{{Op: OpALU}}, FallThrough: 2, Taken: NoBlock},
			want: []BlockID{2},
		},
		{
			name: "branch",
			b:    Block{Instrs: []Instr{{Op: OpBranch}}, Taken: 1, FallThrough: 2},
			want: []BlockID{1, 2},
		},
		{
			name: "branch same target",
			b:    Block{Instrs: []Instr{{Op: OpBranch}}, Taken: 1, FallThrough: 1},
			want: []BlockID{1},
		},
		{
			name: "jump",
			b:    Block{Instrs: []Instr{{Op: OpJump}}, Taken: 3, FallThrough: NoBlock},
			want: []BlockID{3},
		},
		{
			name: "call resumes at fallthrough",
			b:    Block{Instrs: []Instr{{Op: OpCall}}, FallThrough: 4, Taken: NoBlock},
			want: []BlockID{4},
		},
		{
			name: "return",
			b:    Block{Instrs: []Instr{{Op: OpReturn}}, Taken: NoBlock, FallThrough: NoBlock},
			want: nil,
		},
	}
	for _, c := range cases {
		got := c.b.Succs(nil)
		if len(got) != len(c.want) {
			t.Errorf("%s: Succs = %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: Succs = %v, want %v", c.name, got, c.want)
				break
			}
		}
	}
}

func TestProgramAccessors(t *testing.T) {
	p := twoBlockProgram(t)
	if p.Func(p.Entry) == nil {
		t.Fatal("entry function not found")
	}
	if p.Func(FuncID(99)) != nil || p.Func(NoFunc) != nil {
		t.Error("out-of-range Func should be nil")
	}
	f := p.Funcs[0]
	if f.Block(BlockID(99)) != nil || f.Block(NoBlock) != nil {
		t.Error("out-of-range Block should be nil")
	}
	if got := p.Size(); got != 4*InstrSize {
		t.Errorf("Size = %d, want %d", got, 4*InstrSize)
	}
	if got := p.NumBlocks(); got != 2 {
		t.Errorf("NumBlocks = %d, want 2", got)
	}
	refs := p.BlockRefs()
	if len(refs) != 2 || refs[0] != (BlockRef{0, 0}) || refs[1] != (BlockRef{0, 1}) {
		t.Errorf("BlockRefs = %v", refs)
	}
}

func TestBlockRefOrdering(t *testing.T) {
	a := BlockRef{0, 5}
	b := BlockRef{1, 0}
	c := BlockRef{1, 2}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Errorf("ordering broken: %v %v %v", a, b, c)
	}
	if a.String() != "0:5" {
		t.Errorf("String = %q", a.String())
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	pb := NewProgramBuilder("ok")
	main := pb.Func("main")
	main.Block("entry").Code(4).Call("leaf")
	main.Block("loop").Code(8).Branch("loop", "done", Loop{Trips: 10})
	main.Block("done").Return()
	leaf := pb.Func("leaf")
	leaf.Block("body").ALU(2).Return()
	if _, err := pb.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Program {
		return &Program{
			Name:  "p",
			Entry: 0,
			Funcs: []*Function{{
				ID: 0, Name: "f", Entry: 0,
				Blocks: []*Block{
					{ID: 0, Instrs: []Instr{{Op: OpALU}}, Taken: NoBlock, FallThrough: 1, CallTarget: NoFunc},
					{ID: 1, Instrs: []Instr{{Op: OpReturn}}, Taken: NoBlock, FallThrough: NoBlock, CallTarget: NoFunc},
				},
			}},
		}
	}
	cases := []struct {
		name string
		mut  func(p *Program)
	}{
		{"nil program is rejected via Validate(nil)", nil},
		{"no functions", func(p *Program) { p.Funcs = nil }},
		{"bad entry", func(p *Program) { p.Entry = 7 }},
		{"bad function id", func(p *Program) { p.Funcs[0].ID = 3 }},
		{"no blocks", func(p *Program) { p.Funcs[0].Blocks = nil }},
		{"bad block id", func(p *Program) { p.Funcs[0].Blocks[0].ID = 9 }},
		{"empty block", func(p *Program) { p.Funcs[0].Blocks[0].Instrs = nil }},
		{"control mid-block", func(p *Program) {
			p.Funcs[0].Blocks[0].Instrs = []Instr{{Op: OpJump}, {Op: OpALU}}
			p.Funcs[0].Blocks[0].Taken = 1
			p.Funcs[0].Blocks[0].FallThrough = NoBlock
		}},
		{"fallthrough with taken", func(p *Program) { p.Funcs[0].Blocks[0].Taken = 1 }},
		{"fallthrough out of range", func(p *Program) { p.Funcs[0].Blocks[0].FallThrough = 5 }},
		{"branch without behavior", func(p *Program) {
			b := p.Funcs[0].Blocks[0]
			b.Instrs = []Instr{{Op: OpBranch}}
			b.Taken = 1
			b.FallThrough = 1
		}},
		{"branch target out of range", func(p *Program) {
			b := p.Funcs[0].Blocks[0]
			b.Instrs = []Instr{{Op: OpBranch}}
			b.Behavior = Never{}
			b.Taken = 9
			b.FallThrough = 1
		}},
		{"jump with fallthrough", func(p *Program) {
			b := p.Funcs[0].Blocks[0]
			b.Instrs = []Instr{{Op: OpJump}}
			b.Taken = 1
			// FallThrough stays 1: invalid for a jump.
		}},
		{"call target out of range", func(p *Program) {
			b := p.Funcs[0].Blocks[0]
			b.Instrs = []Instr{{Op: OpCall}}
			b.CallTarget = 4
		}},
		{"return with successor", func(p *Program) {
			b := p.Funcs[0].Blocks[0]
			b.Instrs = []Instr{{Op: OpReturn}}
			// FallThrough stays 1: invalid for a return.
		}},
		{"behavior on plain block", func(p *Program) { p.Funcs[0].Blocks[0].Behavior = Never{} }},
		{"unreachable block", func(p *Program) {
			f := p.Funcs[0]
			f.Blocks[0].Instrs = []Instr{{Op: OpReturn}}
			f.Blocks[0].FallThrough = NoBlock
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var p *Program
			if c.mut != nil {
				p = base()
				c.mut(p)
			}
			err := Validate(p)
			if err == nil {
				t.Fatal("Validate accepted an invalid program")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("error %v does not wrap ErrInvalid", err)
			}
		})
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate label", func(t *testing.T) {
		pb := NewProgramBuilder("p")
		f := pb.Func("main")
		f.Block("a").Return()
		f.Block("a").Return()
		if _, err := pb.Build(); err == nil {
			t.Fatal("expected duplicate-label error")
		}
	})
	t.Run("undefined branch label", func(t *testing.T) {
		pb := NewProgramBuilder("p")
		pb.Func("main").Block("a").Branch("missing", "a", Never{})
		if _, err := pb.Build(); err == nil {
			t.Fatal("expected undefined-label error")
		}
	})
	t.Run("undefined callee", func(t *testing.T) {
		pb := NewProgramBuilder("p")
		f := pb.Func("main")
		f.Block("a").Call("nope")
		f.Block("b").Return()
		if _, err := pb.Build(); err == nil {
			t.Fatal("expected undefined-callee error")
		}
	})
	t.Run("fall off end", func(t *testing.T) {
		pb := NewProgramBuilder("p")
		pb.Func("main").Block("a").ALU(1)
		if _, err := pb.Build(); err == nil {
			t.Fatal("expected fall-off-end error")
		}
	})
	t.Run("terminator set twice", func(t *testing.T) {
		pb := NewProgramBuilder("p")
		f := pb.Func("main")
		f.Block("a").Jump("a").Return()
		if _, err := pb.Build(); err == nil {
			t.Fatal("expected double-terminator error")
		}
	})
	t.Run("control op via Op", func(t *testing.T) {
		pb := NewProgramBuilder("p")
		f := pb.Func("main")
		f.Block("a").Op(OpJump, 1).Return()
		if _, err := pb.Build(); err == nil {
			t.Fatal("expected control-op error")
		}
	})
	t.Run("bad entry name", func(t *testing.T) {
		pb := NewProgramBuilder("p").SetEntry("ghost")
		pb.Func("main").Block("a").Return()
		if _, err := pb.Build(); err == nil {
			t.Fatal("expected bad-entry error")
		}
	})
}

func TestBuilderGoto(t *testing.T) {
	pb := NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("a").ALU(1).Goto("c")
	f.Block("b").Return()
	f.Block("c").ALU(1).Goto("b")
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	blocks := p.Funcs[0].Blocks
	if blocks[0].FallThrough != 2 {
		t.Errorf("a falls to %d, want 2", blocks[0].FallThrough)
	}
	if blocks[2].FallThrough != 1 {
		t.Errorf("c falls to %d, want 1", blocks[2].FallThrough)
	}
	// Goto emits no jump instruction.
	if blocks[0].Term() != TermFallThrough {
		t.Errorf("a terminator = %v, want fallthrough", blocks[0].Term())
	}
}

func TestBuilderCodeMix(t *testing.T) {
	pb := NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("a").Code(200).Return()
	p := mustBuild(t, pb)
	counts := map[Opcode]int{}
	for _, in := range p.Funcs[0].Blocks[0].Instrs {
		counts[in.Op]++
	}
	if counts[OpALU] == 0 || counts[OpMul] == 0 || counts[OpLoad] == 0 || counts[OpStore] == 0 {
		t.Errorf("Code mix missing opcodes: %v", counts)
	}
	if counts[OpALU] <= counts[OpMul] {
		t.Errorf("Code mix should be ALU-heavy: %v", counts)
	}
}

func TestBuildRejectsInvalidProgram(t *testing.T) {
	pb := NewProgramBuilder("p")
	pb.Func("main").Block("a").ALU(1) // falls off end
	if _, err := pb.Build(); err == nil {
		t.Fatal("Build accepted an invalid program")
	}
}

// mustBuild finalizes a builder, failing the test on error.
func mustBuild(t *testing.T, pb *ProgramBuilder) *Program {
	t.Helper()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestDominators(t *testing.T) {
	// Diamond with a loop:
	//   entry -> cond -> {left, right} -> join -> latch -(back)-> cond
	//   latch -> exit
	pb := NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("entry").ALU(1)
	f.Block("cond").ALU(1).Branch("left", "right", Pattern{Seq: []bool{true, false}})
	f.Block("left").ALU(1).Jump("join")
	f.Block("right").ALU(1)
	f.Block("join").ALU(1)
	f.Block("latch").ALU(1).Branch("cond", "exit", Loop{Trips: 3})
	f.Block("exit").Return()
	p := mustBuild(t, pb)
	fn := p.Funcs[0]
	dom := Dominators(fn)

	byLabel := func(l string) BlockID {
		for _, b := range fn.Blocks {
			if b.Label == l {
				return b.ID
			}
		}
		t.Fatalf("no block %q", l)
		return NoBlock
	}
	entry, cond := byLabel("entry"), byLabel("cond")
	left, right, join := byLabel("left"), byLabel("right"), byLabel("join")
	latch, exit := byLabel("latch"), byLabel("exit")

	if got := dom.Idom(entry); got != entry {
		t.Errorf("idom(entry) = %d, want itself", got)
	}
	if got := dom.Idom(join); got != cond {
		t.Errorf("idom(join) = %d, want cond=%d", got, cond)
	}
	if got := dom.Idom(latch); got != join {
		t.Errorf("idom(latch) = %d, want join=%d", got, join)
	}
	if !dom.Dominates(cond, exit) {
		t.Error("cond should dominate exit")
	}
	if dom.Dominates(left, join) || dom.Dominates(right, join) {
		t.Error("neither diamond arm dominates the join")
	}
	if !dom.Dominates(entry, latch) || !dom.Dominates(latch, latch) {
		t.Error("entry dominates everything; domination is reflexive")
	}
}

func TestPredecessors(t *testing.T) {
	pb := NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("a").ALU(1).Branch("c", "b", Never{})
	f.Block("b").ALU(1)
	f.Block("c").Return()
	p := mustBuild(t, pb)
	preds := Predecessors(p.Funcs[0])
	if len(preds[0]) != 0 {
		t.Errorf("preds(a) = %v, want empty", preds[0])
	}
	if len(preds[1]) != 1 || preds[1][0] != 0 {
		t.Errorf("preds(b) = %v, want [0]", preds[1])
	}
	if len(preds[2]) != 2 {
		t.Errorf("preds(c) = %v, want [0 1]", preds[2])
	}
}

func TestFindLoops(t *testing.T) {
	// Nested loops: outer header "oh" contains inner loop "ih".
	pb := NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("entry").ALU(1)
	f.Block("oh").ALU(2)
	f.Block("ih").Code(4).Branch("ih", "otail", Loop{Trips: 8})
	f.Block("otail").ALU(1).Branch("oh", "exit", Loop{Trips: 4})
	f.Block("exit").Return()
	p := mustBuild(t, pb)
	fn := p.Funcs[0]

	loops := FindLoops(fn)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	// Ordered by header: oh (ID 1) before ih (ID 2).
	outer, inner := loops[0], loops[1]
	if outer.Header != 1 || outer.Latch != 3 {
		t.Errorf("outer loop header/latch = %d/%d, want 1/3", outer.Header, outer.Latch)
	}
	if inner.Header != 2 || inner.Latch != 2 {
		t.Errorf("inner loop header/latch = %d/%d, want 2/2", inner.Header, inner.Latch)
	}
	if len(outer.Blocks) != 3 { // oh, ih, otail
		t.Errorf("outer body = %v, want 3 blocks", outer.Blocks)
	}
	if len(inner.Blocks) != 1 || inner.Blocks[0] != 2 {
		t.Errorf("inner body = %v, want [2]", inner.Blocks)
	}
	if !outer.Contains(2) || outer.Contains(4) {
		t.Error("Contains misreports membership")
	}
	if sz := inner.Size(fn); sz != fn.Blocks[2].Size() {
		t.Errorf("inner Size = %d, want %d", sz, fn.Blocks[2].Size())
	}

	nest := AnalyzeLoops(fn)
	if len(nest.Loops) != 2 {
		t.Fatalf("AnalyzeLoops found %d merged loops, want 2", len(nest.Loops))
	}
	if nest.Depth[2] != 2 {
		t.Errorf("depth(ih) = %d, want 2", nest.Depth[2])
	}
	if nest.Depth[1] != 1 || nest.Depth[3] != 1 {
		t.Errorf("depth(oh)/depth(otail) = %d/%d, want 1/1", nest.Depth[1], nest.Depth[3])
	}
	if nest.Depth[0] != 0 || nest.Depth[4] != 0 {
		t.Errorf("depth outside loops should be 0: %v", nest.Depth)
	}
}

func TestAnalyzeLoopsMergesSharedHeader(t *testing.T) {
	// Two back edges into the same header: continue-style loop.
	pb := NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("h").ALU(1)
	f.Block("b1").ALU(1).Branch("h", "b2", Pattern{Seq: []bool{true, false}})
	f.Block("b2").ALU(1).Branch("h", "exit", Loop{Trips: 2})
	f.Block("exit").Return()
	p := mustBuild(t, pb)
	fn := p.Funcs[0]
	if got := len(FindLoops(fn)); got != 2 {
		t.Fatalf("FindLoops = %d, want 2 raw loops", got)
	}
	nest := AnalyzeLoops(fn)
	if len(nest.Loops) != 1 {
		t.Fatalf("AnalyzeLoops = %d merged loops, want 1", len(nest.Loops))
	}
	if len(nest.Loops[0].Blocks) != 3 {
		t.Errorf("merged body = %v, want 3 blocks", nest.Loops[0].Blocks)
	}
}

func TestBehaviors(t *testing.T) {
	t.Run("loop", func(t *testing.T) {
		s := Loop{Trips: 3}.NewState()
		want := []bool{true, true, false, true, true, false}
		for i, w := range want {
			if got := s.Next(); got != w {
				t.Fatalf("step %d: got %v, want %v", i, got, w)
			}
		}
	})
	t.Run("loop single trip", func(t *testing.T) {
		s := Loop{Trips: 1}.NewState()
		for i := 0; i < 5; i++ {
			if s.Next() {
				t.Fatal("Trips=1 must never take the back edge")
			}
		}
	})
	t.Run("loop invalid trips", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for Trips=0")
			}
		}()
		Loop{Trips: 0}.NewState()
	})
	t.Run("pattern", func(t *testing.T) {
		s := Pattern{Seq: []bool{true, false, false}}.NewState()
		want := []bool{true, false, false, true, false}
		for i, w := range want {
			if got := s.Next(); got != w {
				t.Fatalf("step %d: got %v, want %v", i, got, w)
			}
		}
	})
	t.Run("empty pattern", func(t *testing.T) {
		s := Pattern{}.NewState()
		if s.Next() {
			t.Fatal("empty pattern must not take")
		}
	})
	t.Run("biased determinism", func(t *testing.T) {
		a := Biased{P: 0.5, Seed: 42}.NewState()
		b := Biased{P: 0.5, Seed: 42}.NewState()
		taken := 0
		for i := 0; i < 1000; i++ {
			x, y := a.Next(), b.Next()
			if x != y {
				t.Fatal("same seed must give same sequence")
			}
			if x {
				taken++
			}
		}
		if taken < 400 || taken > 600 {
			t.Errorf("P=0.5 gave %d/1000 taken", taken)
		}
	})
	t.Run("biased extremes", func(t *testing.T) {
		lo := Biased{P: 0, Seed: 1}.NewState()
		hi := Biased{P: 1, Seed: 1}.NewState()
		for i := 0; i < 100; i++ {
			if lo.Next() {
				t.Fatal("P=0 must never take")
			}
			if !hi.Next() {
				t.Fatal("P=1 must always take")
			}
		}
	})
	t.Run("const", func(t *testing.T) {
		if (Never{}).NewState().Next() || !(Always{}).NewState().Next() {
			t.Fatal("Never/Always broken")
		}
	})
	t.Run("strings", func(t *testing.T) {
		for _, pair := range []struct{ got, want string }{
			{Loop{Trips: 5}.String(), "loop(5)"},
			{Pattern{Seq: []bool{true, false}}.String(), "pattern(TN)"},
			{Never{}.String(), "never"},
			{Always{}.String(), "always"},
		} {
			if pair.got != pair.want {
				t.Errorf("String = %q, want %q", pair.got, pair.want)
			}
		}
		if !strings.HasPrefix(Biased{P: 0.25, Seed: 7}.String(), "biased(0.250") {
			t.Errorf("Biased.String = %q", Biased{P: 0.25, Seed: 7}.String())
		}
	})
}

func TestPrintListing(t *testing.T) {
	pb := NewProgramBuilder("demo")
	f := pb.Func("main")
	f.Block("entry").ALU(3).Call("helper")
	f.Block("loop").Code(6).Branch("loop", "done", Loop{Trips: 4})
	f.Block("done").Return()
	h := pb.Func("helper")
	h.Block("body").Load(2).Jump("tail")
	h.Block("tail").Return()
	p := mustBuild(t, pb)

	s := Sprint(p)
	for _, want := range []string{
		"func main", "func helper", "// program entry",
		"bl      helper", "b.cond  loop", "loop(4)", "ret", "alu      x3",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q:\n%s", want, s)
		}
	}
}
