package ir

import "fmt"

// DataID names a data object within its program.
type DataID int

// NoData is the sentinel for absent data references.
const NoData DataID = -1

// DataObject is a statically-allocated data item (a state struct, lookup
// table or buffer) that scratchpad allocation may place on-chip — the
// paper's §7 future work ("preloading of data"). Data objects carry no
// addresses in the IR; like code, they are placed by the allocator.
type DataObject struct {
	// ID is the object's index within Program.Data.
	ID DataID
	// Name is the symbolic name (e.g. "stepsize_table").
	Name string
	// SizeBytes is the object's size.
	SizeBytes int
}

// DataRef annotates a basic block with its per-execution accesses to one
// data object: every execution of the block performs Loads reads and
// Stores writes to it. The annotation abstracts the addresses away — the
// data side of the study has no cache, so only counts matter.
type DataRef struct {
	Obj    DataID
	Loads  int
	Stores int
}

// Accesses returns the reference's total accesses per block execution.
func (r DataRef) Accesses() int { return r.Loads + r.Stores }

// DataOf returns the data object with the given ID, or nil.
func (p *Program) DataOf(id DataID) *DataObject {
	if id < 0 || int(id) >= len(p.Data) {
		return nil
	}
	return &p.Data[id]
}

// validateData checks data objects and references (called from Validate).
func validateData(p *Program) error {
	for i, d := range p.Data {
		if d.ID != DataID(i) {
			return invalidf("data object %q: ID %d, want %d", d.Name, d.ID, i)
		}
		if d.SizeBytes <= 0 {
			return invalidf("data object %q has size %d", d.Name, d.SizeBytes)
		}
		if d.Name == "" {
			return invalidf("data object %d has no name", i)
		}
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, r := range b.DataRefs {
				if p.DataOf(r.Obj) == nil {
					return invalidf("function %q block %d references unknown data object %d",
						f.Name, b.ID, r.Obj)
				}
				if r.Loads < 0 || r.Stores < 0 {
					return invalidf("function %q block %d: negative data access counts",
						f.Name, b.ID)
				}
			}
		}
	}
	return nil
}

// DataObject registers (or returns the existing) data object with the
// given name and size on the program under construction.
func (pb *ProgramBuilder) DataObject(name string, sizeBytes int) *ProgramBuilder {
	if _, ok := pb.dataByName[name]; ok {
		pb.setErr(fmt.Errorf("ir: build: duplicate data object %q", name))
		return pb
	}
	if pb.dataByName == nil {
		pb.dataByName = make(map[string]DataID)
	}
	pb.dataByName[name] = DataID(len(pb.data))
	pb.data = append(pb.data, DataObject{
		ID:        DataID(len(pb.data)),
		Name:      name,
		SizeBytes: sizeBytes,
	})
	return pb
}

// Data annotates the block: each execution performs the given loads and
// stores on the named data object (registered with DataObject).
func (bb *BlockBuilder) Data(obj string, loads, stores int) *BlockBuilder {
	bb.dataRefs = append(bb.dataRefs, pendingDataRef{obj: obj, loads: loads, stores: stores})
	return bb
}
