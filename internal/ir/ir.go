// Package ir defines the program intermediate representation used throughout
// the CASA reproduction: ARM7-like fixed-width instructions grouped into
// basic blocks, basic blocks grouped into functions, and functions grouped
// into a whole program with an explicit control-flow graph.
//
// The representation is deliberately minimal: the scratchpad-allocation
// problem studied by Verma, Wehmeyer and Marwedel (DATE 2004) is fully
// characterized by code sizes, fetch counts and cache conflicts, none of
// which depend on operand-level semantics. Instructions therefore carry an
// opcode, a fixed size and (for control transfers) a target, which is enough
// to drive an instruction-fetch-accurate simulation.
package ir

import "fmt"

// InstrSize is the size in bytes of every instruction. The target machine is
// an ARM7T executing in ARM state, where all instructions are 32 bits wide.
const InstrSize = 4

// Opcode identifies the class of an instruction. Only control-flow classes
// affect simulation; the remaining classes exist so that generated programs
// have a realistic instruction mix and so that tools can render readable
// listings.
type Opcode uint8

const (
	// OpALU is a register-to-register data-processing instruction.
	OpALU Opcode = iota
	// OpMul is a multiply (modelled separately because embedded codecs are
	// multiply-heavy and listings are more readable with the distinction).
	OpMul
	// OpLoad is a load from data memory.
	OpLoad
	// OpStore is a store to data memory.
	OpStore
	// OpNOP is a no-operation; used for alignment padding in traces.
	OpNOP
	// OpBranch is a conditional PC-relative branch. It must be the last
	// instruction of its block, with both Taken and FallThrough successors.
	OpBranch
	// OpJump is an unconditional PC-relative branch. It must be the last
	// instruction of its block, with only a Taken successor.
	OpJump
	// OpCall is a branch-and-link to another function. It must be the last
	// instruction of its block; after the callee returns, execution resumes
	// at the FallThrough successor.
	OpCall
	// OpReturn transfers control back to the caller (or terminates the
	// program when the call stack is empty). It must be the last
	// instruction of its block and has no successors.
	OpReturn
)

var opcodeNames = [...]string{
	OpALU:    "alu",
	OpMul:    "mul",
	OpLoad:   "ldr",
	OpStore:  "str",
	OpNOP:    "nop",
	OpBranch: "b.cond",
	OpJump:   "b",
	OpCall:   "bl",
	OpReturn: "ret",
}

// String returns the assembler-style mnemonic of the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsControl reports whether the opcode transfers control.
func (op Opcode) IsControl() bool {
	switch op {
	case OpBranch, OpJump, OpCall, OpReturn:
		return true
	}
	return false
}

// BlockID names a basic block within its function. IDs are dense indices
// into Function.Blocks.
type BlockID int

// FuncID names a function within its program. IDs are dense indices into
// Program.Funcs.
type FuncID int

// NoBlock and NoFunc are sentinel values for absent successors/targets.
const (
	NoBlock BlockID = -1
	NoFunc  FuncID  = -1
)

// Instr is a single machine instruction. Control-flow targets are symbolic
// (block and function IDs); concrete addresses are assigned later by the
// layout package.
type Instr struct {
	Op Opcode
}

// Terminator describes how control leaves a basic block. It is derived from
// the block's last instruction and successor fields.
type Terminator uint8

const (
	// TermFallThrough means the block ends without a control instruction
	// and execution continues at the FallThrough successor.
	TermFallThrough Terminator = iota
	// TermBranch means the block ends in a conditional branch with both a
	// Taken and a FallThrough successor.
	TermBranch
	// TermJump means the block ends in an unconditional branch to Taken.
	TermJump
	// TermCall means the block ends in a call to CallTarget; on return,
	// execution continues at FallThrough.
	TermCall
	// TermReturn means the block ends in a return.
	TermReturn
)

var termNames = [...]string{
	TermFallThrough: "fallthrough",
	TermBranch:      "branch",
	TermJump:        "jump",
	TermCall:        "call",
	TermReturn:      "return",
}

// String returns a human-readable name for the terminator kind.
func (t Terminator) String() string {
	if int(t) < len(termNames) {
		return termNames[t]
	}
	return fmt.Sprintf("terminator(%d)", uint8(t))
}

// Block is a basic block: a straight-line run of instructions with a single
// entry (the first instruction) and a single exit (the terminator).
type Block struct {
	// ID is the block's index within Function.Blocks.
	ID BlockID
	// Label is an optional human-readable name used in listings.
	Label string
	// Instrs are the block's instructions. A control instruction, if any,
	// must be last, and at most one may appear.
	Instrs []Instr
	// Taken is the target of the final (conditional or unconditional)
	// branch, or NoBlock.
	Taken BlockID
	// FallThrough is the textual successor executed when a conditional
	// branch is not taken, when the block has no control instruction, or
	// after a call returns. NoBlock for jump/return blocks.
	FallThrough BlockID
	// CallTarget is the callee of a TermCall block, or NoFunc.
	CallTarget FuncID
	// Behavior decides conditional-branch outcomes during simulation. It
	// must be non-nil exactly when the block ends in OpBranch.
	Behavior Behavior
	// DataRefs annotates the block's per-execution data-object accesses.
	DataRefs []DataRef
}

// Term returns the block's terminator kind, derived from its last
// instruction. An empty block falls through.
func (b *Block) Term() Terminator {
	if len(b.Instrs) == 0 {
		return TermFallThrough
	}
	switch b.Instrs[len(b.Instrs)-1].Op {
	case OpBranch:
		return TermBranch
	case OpJump:
		return TermJump
	case OpCall:
		return TermCall
	case OpReturn:
		return TermReturn
	}
	return TermFallThrough
}

// Size returns the block's code size in bytes.
func (b *Block) Size() int {
	return len(b.Instrs) * InstrSize
}

// Succs appends the intra-procedural CFG successors of b to dst and returns
// the extended slice. Call targets are inter-procedural and are not
// included; the call's fall-through (return continuation) is.
func (b *Block) Succs(dst []BlockID) []BlockID {
	switch b.Term() {
	case TermFallThrough, TermCall:
		if b.FallThrough != NoBlock {
			dst = append(dst, b.FallThrough)
		}
	case TermBranch:
		if b.Taken != NoBlock {
			dst = append(dst, b.Taken)
		}
		if b.FallThrough != NoBlock && b.FallThrough != b.Taken {
			dst = append(dst, b.FallThrough)
		}
	case TermJump:
		if b.Taken != NoBlock {
			dst = append(dst, b.Taken)
		}
	case TermReturn:
		// no successors
	}
	return dst
}

// Function is a single procedure: an entry block plus a body of basic
// blocks connected by intra-procedural edges.
type Function struct {
	// ID is the function's index within Program.Funcs.
	ID FuncID
	// Name is the function's symbolic name.
	Name string
	// Blocks holds the function body in textual (layout) order: block i's
	// fall-through successor, when present, is typically block i+1,
	// although the IR does not require it.
	Blocks []*Block
	// Entry is the ID of the entry block.
	Entry BlockID
}

// Size returns the function's total code size in bytes.
func (f *Function) Size() int {
	n := 0
	for _, b := range f.Blocks {
		n += b.Size()
	}
	return n
}

// Block returns the block with the given ID, or nil if out of range.
func (f *Function) Block(id BlockID) *Block {
	if id < 0 || int(id) >= len(f.Blocks) {
		return nil
	}
	return f.Blocks[id]
}

// Program is a whole application: a set of functions and a designated entry
// point.
type Program struct {
	// Name identifies the program (e.g. "mpeg").
	Name string
	// Funcs holds all functions; Funcs[i].ID == i.
	Funcs []*Function
	// Entry is the ID of the function where execution starts.
	Entry FuncID
	// Data lists the program's data objects; Data[i].ID == i.
	Data []DataObject
}

// Size returns the program's total code size in bytes.
func (p *Program) Size() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.Size()
	}
	return n
}

// Func returns the function with the given ID, or nil if out of range.
func (p *Program) Func(id FuncID) *Function {
	if id < 0 || int(id) >= len(p.Funcs) {
		return nil
	}
	return p.Funcs[id]
}

// NumBlocks returns the total number of basic blocks in the program.
func (p *Program) NumBlocks() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Blocks)
	}
	return n
}

// BlockRef names a basic block globally, by function and block ID.
type BlockRef struct {
	Func  FuncID
	Block BlockID
}

// String renders the reference as "func:block".
func (r BlockRef) String() string {
	return fmt.Sprintf("%d:%d", r.Func, r.Block)
}

// Less orders references first by function, then by block, giving the
// program's textual order when blocks are stored textually.
func (r BlockRef) Less(o BlockRef) bool {
	if r.Func != o.Func {
		return r.Func < o.Func
	}
	return r.Block < o.Block
}

// BlockRefs returns every block reference in the program in textual order.
func (p *Program) BlockRefs() []BlockRef {
	refs := make([]BlockRef, 0, p.NumBlocks())
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			refs = append(refs, BlockRef{f.ID, b.ID})
		}
	}
	return refs
}
