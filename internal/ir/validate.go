package ir

import (
	"errors"
	"fmt"
)

// ErrInvalid wraps all validation failures so callers can test with
// errors.Is.
var ErrInvalid = errors.New("ir: invalid program")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Validate checks the structural well-formedness of a program:
//
//   - IDs are dense and consistent (Funcs[i].ID == i, Blocks[i].ID == i),
//   - the program and every function have a valid entry,
//   - every block has at least one instruction,
//   - control instructions appear only in terminal position, at most once,
//   - successor fields match the terminator kind and are in range,
//   - conditional branches carry a Behavior, other blocks do not,
//   - every block is reachable from its function's entry (unreachable code
//     would silently distort code-size accounting).
//
// It returns nil if the program is well-formed, or an error wrapping
// ErrInvalid describing the first problem found.
func Validate(p *Program) error {
	if p == nil {
		return invalidf("nil program")
	}
	if len(p.Funcs) == 0 {
		return invalidf("program %q has no functions", p.Name)
	}
	if p.Func(p.Entry) == nil {
		return invalidf("program %q entry %d out of range", p.Name, p.Entry)
	}
	for i, f := range p.Funcs {
		if f == nil {
			return invalidf("function %d is nil", i)
		}
		if f.ID != FuncID(i) {
			return invalidf("function %q: ID %d, want %d", f.Name, f.ID, i)
		}
		if err := validateFunc(p, f); err != nil {
			return err
		}
	}
	return validateData(p)
}

func validateFunc(p *Program, f *Function) error {
	if len(f.Blocks) == 0 {
		return invalidf("function %q has no blocks", f.Name)
	}
	if f.Block(f.Entry) == nil {
		return invalidf("function %q entry %d out of range", f.Name, f.Entry)
	}
	for i, b := range f.Blocks {
		if b == nil {
			return invalidf("function %q: block %d is nil", f.Name, i)
		}
		if b.ID != BlockID(i) {
			return invalidf("function %q: block %d has ID %d", f.Name, i, b.ID)
		}
		if err := validateBlock(p, f, b); err != nil {
			return err
		}
	}
	return validateReachability(f)
}

func validateBlock(p *Program, f *Function, b *Block) error {
	where := fmt.Sprintf("function %q block %d", f.Name, b.ID)
	if len(b.Instrs) == 0 {
		return invalidf("%s is empty", where)
	}
	for i, in := range b.Instrs[:len(b.Instrs)-1] {
		if in.Op.IsControl() {
			return invalidf("%s: control instruction %s at non-terminal position %d",
				where, in.Op, i)
		}
	}
	inRange := func(id BlockID) bool { return id >= 0 && int(id) < len(f.Blocks) }
	switch b.Term() {
	case TermFallThrough:
		if b.Taken != NoBlock {
			return invalidf("%s: fall-through block has a taken successor", where)
		}
		if !inRange(b.FallThrough) {
			return invalidf("%s: fall-through successor %d out of range", where, b.FallThrough)
		}
		if b.CallTarget != NoFunc {
			return invalidf("%s: fall-through block has a call target", where)
		}
	case TermBranch:
		if !inRange(b.Taken) {
			return invalidf("%s: taken successor %d out of range", where, b.Taken)
		}
		if !inRange(b.FallThrough) {
			return invalidf("%s: fall-through successor %d out of range", where, b.FallThrough)
		}
		if b.Behavior == nil {
			return invalidf("%s: conditional branch without behavior", where)
		}
		if lp, ok := b.Behavior.(Loop); ok && lp.Trips < 1 {
			// Catch the bad trip count here so simulation of a validated
			// program can never trip Loop.NewState's invariant panic.
			return invalidf("%s: loop behavior with Trips %d (want >= 1)", where, lp.Trips)
		}
		if b.CallTarget != NoFunc {
			return invalidf("%s: branch block has a call target", where)
		}
	case TermJump:
		if !inRange(b.Taken) {
			return invalidf("%s: jump target %d out of range", where, b.Taken)
		}
		if b.FallThrough != NoBlock {
			return invalidf("%s: jump block has a fall-through successor", where)
		}
		if b.CallTarget != NoFunc {
			return invalidf("%s: jump block has a call target", where)
		}
	case TermCall:
		if p.Func(b.CallTarget) == nil {
			return invalidf("%s: call target %d out of range", where, b.CallTarget)
		}
		if !inRange(b.FallThrough) {
			return invalidf("%s: call continuation %d out of range", where, b.FallThrough)
		}
		if b.Taken != NoBlock {
			return invalidf("%s: call block has a taken successor", where)
		}
	case TermReturn:
		if b.Taken != NoBlock || b.FallThrough != NoBlock {
			return invalidf("%s: return block has successors", where)
		}
		if b.CallTarget != NoFunc {
			return invalidf("%s: return block has a call target", where)
		}
	}
	if b.Term() != TermBranch && b.Behavior != nil {
		return invalidf("%s: behavior on a %s block", where, b.Term())
	}
	return nil
}

func validateReachability(f *Function) error {
	seen := make([]bool, len(f.Blocks))
	stack := []BlockID{f.Entry}
	seen[f.Entry] = true
	var succs []BlockID
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		succs = f.Blocks[id].Succs(succs[:0])
		for _, s := range succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return invalidf("function %q: block %d unreachable from entry", f.Name, i)
		}
	}
	return nil
}
