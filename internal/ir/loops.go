package ir

import "sort"

// NaturalLoop is a natural loop of one function's CFG: the set of blocks
// that can reach the back edge Latch→Header without passing through the
// header.
type NaturalLoop struct {
	// Func is the function containing the loop.
	Func FuncID
	// Header is the loop header (the target of the back edge).
	Header BlockID
	// Latch is the source of the back edge.
	Latch BlockID
	// Blocks is the loop body including header and latch, in ascending
	// block order.
	Blocks []BlockID
}

// Size returns the loop body's code size in bytes within function f.
func (l *NaturalLoop) Size(f *Function) int {
	n := 0
	for _, b := range l.Blocks {
		n += f.Blocks[b].Size()
	}
	return n
}

// Contains reports whether block b belongs to the loop body.
func (l *NaturalLoop) Contains(b BlockID) bool {
	i := sort.Search(len(l.Blocks), func(i int) bool { return l.Blocks[i] >= b })
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// FindLoops returns the natural loops of f, one per back edge, ordered by
// (header, latch). Loops sharing a header are reported separately; callers
// that want merged bodies can union them. The function must be valid.
func FindLoops(f *Function) []*NaturalLoop {
	dom := Dominators(f)
	preds := Predecessors(f)
	var loops []*NaturalLoop
	var succs []BlockID
	for _, b := range f.Blocks {
		succs = b.Succs(succs[:0])
		for _, h := range succs {
			if !dom.Dominates(h, b.ID) {
				continue
			}
			loops = append(loops, naturalLoop(f, preds, h, b.ID))
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Header != loops[j].Header {
			return loops[i].Header < loops[j].Header
		}
		return loops[i].Latch < loops[j].Latch
	})
	return loops
}

// naturalLoop collects the body of the back edge latch→header by walking
// predecessors from the latch, stopping at the header.
func naturalLoop(f *Function, preds [][]BlockID, header, latch BlockID) *NaturalLoop {
	in := make(map[BlockID]bool, 8)
	in[header] = true
	var stack []BlockID
	if latch != header {
		in[latch] = true
		stack = append(stack, latch)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[b] {
			if !in[p] {
				in[p] = true
				stack = append(stack, p)
			}
		}
	}
	blocks := make([]BlockID, 0, len(in))
	for b := range in {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	return &NaturalLoop{Func: f.ID, Header: header, Latch: latch, Blocks: blocks}
}

// LoopNest summarizes the loop structure of a function: loops merged by
// header (so a header with several latches yields a single body) and
// nesting depth per block.
type LoopNest struct {
	// Loops holds the merged loops ordered by header.
	Loops []*NaturalLoop
	// Depth[b] is the number of merged loops whose body contains block b.
	Depth []int
}

// AnalyzeLoops merges the natural loops of f by header and computes
// per-block nesting depth.
func AnalyzeLoops(f *Function) *LoopNest {
	raw := FindLoops(f)
	merged := make(map[BlockID]map[BlockID]bool)
	latches := make(map[BlockID]BlockID)
	for _, l := range raw {
		set := merged[l.Header]
		if set == nil {
			set = make(map[BlockID]bool)
			merged[l.Header] = set
			latches[l.Header] = l.Latch
		}
		for _, b := range l.Blocks {
			set[b] = true
		}
		if l.Latch > latches[l.Header] {
			latches[l.Header] = l.Latch
		}
	}
	nest := &LoopNest{Depth: make([]int, len(f.Blocks))}
	headers := make([]BlockID, 0, len(merged))
	for h := range merged {
		headers = append(headers, h)
	}
	sort.Slice(headers, func(i, j int) bool { return headers[i] < headers[j] })
	for _, h := range headers {
		set := merged[h]
		blocks := make([]BlockID, 0, len(set))
		for b := range set {
			blocks = append(blocks, b)
			nest.Depth[b]++
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		nest.Loops = append(nest.Loops, &NaturalLoop{
			Func:   f.ID,
			Header: h,
			Latch:  latches[h],
			Blocks: blocks,
		})
	}
	return nest
}
