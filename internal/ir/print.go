package ir

import (
	"fmt"
	"io"
	"strings"
)

// Fprint writes a readable assembler-style listing of the program to w.
// The listing is meant for debugging and documentation; it is not a
// round-trippable serialization.
func Fprint(w io.Writer, p *Program) error {
	for _, f := range p.Funcs {
		entry := ""
		if f.ID == p.Entry {
			entry = " // program entry"
		}
		if _, err := fmt.Fprintf(w, "func %s (%d bytes)%s\n", f.Name, f.Size(), entry); err != nil {
			return err
		}
		for _, b := range f.Blocks {
			if err := fprintBlock(w, p, f, b); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func fprintBlock(w io.Writer, p *Program, f *Function, b *Block) error {
	label := b.Label
	if label == "" {
		label = fmt.Sprintf("bb%d", b.ID)
	}
	if _, err := fmt.Fprintf(w, "  %s:\n", label); err != nil {
		return err
	}
	for _, r := range b.DataRefs {
		name := fmt.Sprintf("data%d", r.Obj)
		if d := p.DataOf(r.Obj); d != nil {
			name = d.Name
		}
		if _, err := fmt.Fprintf(w, "    // touches %s: %d loads, %d stores per execution\n",
			name, r.Loads, r.Stores); err != nil {
			return err
		}
	}
	// Compress runs of plain instructions into a single summary line.
	i := 0
	for i < len(b.Instrs) {
		in := b.Instrs[i]
		if !in.Op.IsControl() {
			j := i
			for j < len(b.Instrs) && b.Instrs[j].Op == in.Op {
				j++
			}
			if j-i > 1 {
				if _, err := fmt.Fprintf(w, "    %-8s x%d\n", in.Op, j-i); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(w, "    %s\n", in.Op); err != nil {
					return err
				}
			}
			i = j
			continue
		}
		if _, err := fmt.Fprintf(w, "    %s\n", controlString(p, f, b, in)); err != nil {
			return err
		}
		i++
	}
	return nil
}

func controlString(p *Program, f *Function, b *Block, in Instr) string {
	blockName := func(id BlockID) string {
		if id == NoBlock {
			return "<none>"
		}
		t := f.Block(id)
		if t != nil && t.Label != "" {
			return t.Label
		}
		return fmt.Sprintf("bb%d", id)
	}
	switch in.Op {
	case OpBranch:
		return fmt.Sprintf("b.cond  %s  // else %s, %s",
			blockName(b.Taken), blockName(b.FallThrough), b.Behavior)
	case OpJump:
		return fmt.Sprintf("b       %s", blockName(b.Taken))
	case OpCall:
		callee := "<none>"
		if fn := p.Func(b.CallTarget); fn != nil {
			callee = fn.Name
		}
		return fmt.Sprintf("bl      %s  // resumes at %s", callee, blockName(b.FallThrough))
	case OpReturn:
		return "ret"
	}
	return in.Op.String()
}

// Sprint returns the listing of p as a string.
func Sprint(p *Program) string {
	var sb strings.Builder
	if err := Fprint(&sb, p); err != nil {
		// strings.Builder never fails; keep the signature honest anyway.
		return sb.String()
	}
	return sb.String()
}
