package ir

import (
	"fmt"
)

// ProgramBuilder constructs Programs with symbolic (label-based) control
// flow, resolving references at Build time. It exists so that workload
// definitions and tests read like structured assembly instead of index
// arithmetic.
type ProgramBuilder struct {
	name       string
	funcs      []*FuncBuilder
	byName     map[string]*FuncBuilder
	entry      string
	data       []DataObject
	dataByName map[string]DataID
	err        error
}

// NewProgramBuilder returns an empty builder for a program with the given
// name.
func NewProgramBuilder(name string) *ProgramBuilder {
	return &ProgramBuilder{name: name, byName: make(map[string]*FuncBuilder)}
}

func (pb *ProgramBuilder) setErr(err error) {
	if pb.err == nil {
		pb.err = err
	}
}

// Func creates (or returns the existing) function with the given name. The
// first function created becomes the default program entry.
func (pb *ProgramBuilder) Func(name string) *FuncBuilder {
	if fb, ok := pb.byName[name]; ok {
		return fb
	}
	fb := &FuncBuilder{pb: pb, name: name, byLabel: make(map[string]*BlockBuilder)}
	pb.funcs = append(pb.funcs, fb)
	pb.byName[name] = fb
	if pb.entry == "" {
		pb.entry = name
	}
	return fb
}

// SetEntry designates the program entry function by name.
func (pb *ProgramBuilder) SetEntry(name string) *ProgramBuilder {
	pb.entry = name
	return pb
}

// Build resolves all symbolic references, validates the program and returns
// it. Any error recorded during construction is returned here.
func (pb *ProgramBuilder) Build() (*Program, error) {
	if pb.err != nil {
		return nil, pb.err
	}
	p := &Program{Name: pb.name, Data: append([]DataObject(nil), pb.data...)}
	for i, fb := range pb.funcs {
		f := &Function{ID: FuncID(i), Name: fb.name}
		p.Funcs = append(p.Funcs, f)
	}
	entryFB, ok := pb.byName[pb.entry]
	if !ok {
		return nil, fmt.Errorf("ir: build %q: entry function %q not defined", pb.name, pb.entry)
	}
	p.Entry = FuncID(indexOfFunc(pb.funcs, entryFB))
	for i, fb := range pb.funcs {
		if err := fb.build(p, p.Funcs[i]); err != nil {
			return nil, err
		}
	}
	if err := Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

func indexOfFunc(fs []*FuncBuilder, fb *FuncBuilder) int {
	for i, f := range fs {
		if f == fb {
			return i
		}
	}
	return -1
}

// FuncBuilder accumulates the blocks of one function.
type FuncBuilder struct {
	pb      *ProgramBuilder
	name    string
	blocks  []*BlockBuilder
	byLabel map[string]*BlockBuilder
}

// Name returns the function's name.
func (fb *FuncBuilder) Name() string { return fb.name }

// Block creates a new block with the given label and appends it to the
// function body. Labels must be unique within the function. A block with no
// explicit terminator falls through to the next block created after it.
func (fb *FuncBuilder) Block(label string) *BlockBuilder {
	if _, dup := fb.byLabel[label]; dup {
		fb.pb.setErr(fmt.Errorf("ir: build: duplicate label %q in function %q", label, fb.name))
	}
	bb := &BlockBuilder{fb: fb, label: label, callTarget: "", id: BlockID(len(fb.blocks))}
	fb.blocks = append(fb.blocks, bb)
	fb.byLabel[label] = bb
	return bb
}

func (fb *FuncBuilder) build(p *Program, f *Function) error {
	if len(fb.blocks) == 0 {
		return fmt.Errorf("ir: build: function %q has no blocks", fb.name)
	}
	f.Entry = 0
	resolve := func(label string, bb *BlockBuilder) (BlockID, error) {
		t, ok := fb.byLabel[label]
		if !ok {
			return NoBlock, fmt.Errorf("ir: build: function %q block %q: undefined label %q",
				fb.name, bb.label, label)
		}
		return t.id, nil
	}
	for i, bb := range fb.blocks {
		b := &Block{
			ID:          bb.id,
			Label:       bb.label,
			Instrs:      append([]Instr(nil), bb.instrs...),
			Taken:       NoBlock,
			FallThrough: NoBlock,
			CallTarget:  NoFunc,
			Behavior:    bb.behavior,
		}
		switch bb.term {
		case termNone:
			// Implicit fall-through to the next block.
			if i+1 >= len(fb.blocks) {
				return fmt.Errorf("ir: build: function %q block %q falls off the end",
					fb.name, bb.label)
			}
			b.FallThrough = fb.blocks[i+1].id
		case termGoto:
			id, err := resolve(bb.fallLabel, bb)
			if err != nil {
				return err
			}
			b.FallThrough = id
		case termBranch:
			var err error
			if b.Taken, err = resolve(bb.takenLabel, bb); err != nil {
				return err
			}
			if b.FallThrough, err = resolve(bb.fallLabel, bb); err != nil {
				return err
			}
			b.Instrs = append(b.Instrs, Instr{Op: OpBranch})
		case termJump:
			id, err := resolve(bb.takenLabel, bb)
			if err != nil {
				return err
			}
			b.Taken = id
			b.Instrs = append(b.Instrs, Instr{Op: OpJump})
		case termCall:
			callee, ok := fb.pb.byName[bb.callTarget]
			if !ok {
				return fmt.Errorf("ir: build: function %q block %q: undefined callee %q",
					fb.name, bb.label, bb.callTarget)
			}
			b.CallTarget = FuncID(indexOfFunc(fb.pb.funcs, callee))
			var err error
			if bb.fallLabel != "" {
				if b.FallThrough, err = resolve(bb.fallLabel, bb); err != nil {
					return err
				}
			} else {
				if i+1 >= len(fb.blocks) {
					return fmt.Errorf("ir: build: function %q block %q: call at end of function needs an explicit resume label",
						fb.name, bb.label)
				}
				b.FallThrough = fb.blocks[i+1].id
			}
			b.Instrs = append(b.Instrs, Instr{Op: OpCall})
		case termReturn:
			b.Instrs = append(b.Instrs, Instr{Op: OpReturn})
		}
		for _, dr := range bb.dataRefs {
			id, ok := fb.pb.dataByName[dr.obj]
			if !ok {
				return fmt.Errorf("ir: build: function %q block %q: unknown data object %q",
					fb.name, bb.label, dr.obj)
			}
			b.DataRefs = append(b.DataRefs, DataRef{Obj: id, Loads: dr.loads, Stores: dr.stores})
		}
		f.Blocks = append(f.Blocks, b)
	}
	return nil
}

type termKind uint8

const (
	termNone termKind = iota
	termGoto
	termBranch
	termJump
	termCall
	termReturn
)

// BlockBuilder accumulates the instructions and terminator of one block.
type BlockBuilder struct {
	fb         *FuncBuilder
	id         BlockID
	label      string
	instrs     []Instr
	term       termKind
	takenLabel string
	fallLabel  string
	callTarget string
	behavior   Behavior
	dataRefs   []pendingDataRef
}

// pendingDataRef is a data annotation awaiting name resolution at Build.
type pendingDataRef struct {
	obj           string
	loads, stores int
}

// Label returns the block's label.
func (bb *BlockBuilder) Label() string { return bb.label }

func (bb *BlockBuilder) setTerm(k termKind) {
	if bb.term != termNone {
		bb.fb.pb.setErr(fmt.Errorf("ir: build: function %q block %q: terminator set twice",
			bb.fb.name, bb.label))
	}
	bb.term = k
}

// Op appends n instructions of the given non-control opcode.
func (bb *BlockBuilder) Op(op Opcode, n int) *BlockBuilder {
	if op.IsControl() {
		bb.fb.pb.setErr(fmt.Errorf("ir: build: function %q block %q: use terminator methods for %s",
			bb.fb.name, bb.label, op))
		return bb
	}
	for i := 0; i < n; i++ {
		bb.instrs = append(bb.instrs, Instr{Op: op})
	}
	return bb
}

// ALU appends n data-processing instructions.
func (bb *BlockBuilder) ALU(n int) *BlockBuilder { return bb.Op(OpALU, n) }

// Mul appends n multiply instructions.
func (bb *BlockBuilder) Mul(n int) *BlockBuilder { return bb.Op(OpMul, n) }

// Load appends n load instructions.
func (bb *BlockBuilder) Load(n int) *BlockBuilder { return bb.Op(OpLoad, n) }

// Store appends n store instructions.
func (bb *BlockBuilder) Store(n int) *BlockBuilder { return bb.Op(OpStore, n) }

// Code appends n instructions with a fixed, deterministic mix resembling
// compiled codec code: roughly 55% ALU, 15% mul, 20% load, 10% store.
func (bb *BlockBuilder) Code(n int) *BlockBuilder {
	const period = 20
	mix := [period]Opcode{
		OpALU, OpLoad, OpALU, OpMul, OpALU, OpStore, OpALU, OpLoad, OpALU, OpALU,
		OpMul, OpALU, OpLoad, OpALU, OpStore, OpALU, OpMul, OpALU, OpLoad, OpALU,
	}
	for i := 0; i < n; i++ {
		bb.instrs = append(bb.instrs, Instr{Op: mix[(len(bb.instrs))%period]})
	}
	return bb
}

// Branch terminates the block with a conditional branch to taken, falling
// through to fall, with outcomes decided by beh.
func (bb *BlockBuilder) Branch(taken, fall string, beh Behavior) *BlockBuilder {
	bb.setTerm(termBranch)
	bb.takenLabel, bb.fallLabel, bb.behavior = taken, fall, beh
	return bb
}

// Jump terminates the block with an unconditional branch to target.
func (bb *BlockBuilder) Jump(target string) *BlockBuilder {
	bb.setTerm(termJump)
	bb.takenLabel = target
	return bb
}

// Call terminates the block with a call to callee; execution resumes at the
// next block created after this one.
func (bb *BlockBuilder) Call(callee string) *BlockBuilder {
	bb.setTerm(termCall)
	bb.callTarget = callee
	return bb
}

// CallResume terminates the block with a call to callee, resuming at the
// block labelled resume.
func (bb *BlockBuilder) CallResume(callee, resume string) *BlockBuilder {
	bb.setTerm(termCall)
	bb.callTarget = callee
	bb.fallLabel = resume
	return bb
}

// Return terminates the block with a return.
func (bb *BlockBuilder) Return() *BlockBuilder {
	bb.setTerm(termReturn)
	return bb
}

// Goto marks the block as falling through to the block labelled next
// without emitting a jump instruction. It models textual adjacency when the
// next block is created out of order; the layout stage inserts a real jump
// if the two end up non-adjacent.
func (bb *BlockBuilder) Goto(next string) *BlockBuilder {
	bb.setTerm(termGoto)
	bb.fallLabel = next
	return bb
}
