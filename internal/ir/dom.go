package ir

// DomTree holds the immediate-dominator relation of one function's CFG.
// Unreachable blocks (which Validate rejects) would have Idom == NoBlock.
type DomTree struct {
	fn *Function
	// idom[b] is the immediate dominator of block b; the entry block is its
	// own immediate dominator by convention.
	idom []BlockID
	// rpo[i] is the i-th block in reverse post-order; rpoIndex inverts it.
	rpo      []BlockID
	rpoIndex []int
}

// Dominators computes the dominator tree of f using the Cooper-Harvey-
// Kennedy iterative algorithm over reverse post-order. The function must be
// valid (see Validate); all blocks are assumed reachable.
func Dominators(f *Function) *DomTree {
	n := len(f.Blocks)
	t := &DomTree{
		fn:       f,
		idom:     make([]BlockID, n),
		rpo:      postOrder(f),
		rpoIndex: make([]int, n),
	}
	// postOrder returns post-order; reverse in place for RPO.
	for i, j := 0, len(t.rpo)-1; i < j; i, j = i+1, j-1 {
		t.rpo[i], t.rpo[j] = t.rpo[j], t.rpo[i]
	}
	for i := range t.idom {
		t.idom[i] = NoBlock
	}
	for i, b := range t.rpo {
		t.rpoIndex[b] = i
	}
	preds := Predecessors(f)
	t.idom[f.Entry] = f.Entry
	for changed := true; changed; {
		changed = false
		for _, b := range t.rpo {
			if b == f.Entry {
				continue
			}
			newIdom := NoBlock
			for _, p := range preds[b] {
				if t.idom[p] == NoBlock {
					continue // predecessor not yet processed
				}
				if newIdom == NoBlock {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != NoBlock && t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}
	return t
}

// intersect walks the two candidate dominators up the (partial) dominator
// tree to their common ancestor, comparing positions in reverse post-order.
func (t *DomTree) intersect(a, b BlockID) BlockID {
	for a != b {
		for t.rpoIndex[a] > t.rpoIndex[b] {
			a = t.idom[a]
		}
		for t.rpoIndex[b] > t.rpoIndex[a] {
			b = t.idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of b. The entry block returns
// itself.
func (t *DomTree) Idom(b BlockID) BlockID { return t.idom[b] }

// Dominates reports whether block a dominates block b (reflexively).
func (t *DomTree) Dominates(a, b BlockID) bool {
	for {
		if a == b {
			return true
		}
		if b == t.fn.Entry {
			return false
		}
		b = t.idom[b]
	}
}

// postOrder returns the blocks of f in a DFS post-order starting at the
// entry. Successor order follows Block.Succs, making the result
// deterministic.
func postOrder(f *Function) []BlockID {
	n := len(f.Blocks)
	order := make([]BlockID, 0, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		b     BlockID
		succs []BlockID
		next  int
	}
	stack := []frame{{b: f.Entry, succs: f.Blocks[f.Entry].Succs(nil)}}
	state[f.Entry] = 1
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(fr.succs) {
			s := fr.succs[fr.next]
			fr.next++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{b: s, succs: f.Blocks[s].Succs(nil)})
			}
			continue
		}
		state[fr.b] = 2
		order = append(order, fr.b)
		stack = stack[:len(stack)-1]
	}
	return order
}

// Predecessors returns, for every block of f, the list of its
// intra-procedural CFG predecessors in ascending block order.
func Predecessors(f *Function) [][]BlockID {
	preds := make([][]BlockID, len(f.Blocks))
	var succs []BlockID
	for _, b := range f.Blocks {
		succs = b.Succs(succs[:0])
		for _, s := range succs {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}
