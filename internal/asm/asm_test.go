package asm

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/workload"
)

const sample = `
; a toy codec
.entry main

func main
start:
    code 6
    call kernel
loop:
    alu 2
    load
    bloop loop, done, 25
done:
    ret

func kernel
body:
    mul 4
    store 1
    bpat body, out, TTN
out:
    ret
`

func TestParseSample(t *testing.T) {
	p, err := ParseString(sample, "toy")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := ir.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("%d functions", len(p.Funcs))
	}
	if p.Func(p.Entry).Name != "main" {
		t.Errorf("entry = %q", p.Func(p.Entry).Name)
	}
	// The program must execute.
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	// loop body runs 25 times.
	loopRef := ir.BlockRef{Func: 0, Block: 1}
	if got := prof.BlockCount(loopRef); got != 25 {
		t.Errorf("loop ran %d times, want 25", got)
	}
}

func TestParseAllBranchKinds(t *testing.T) {
	src := `
func main
a:
    code 2
    bprob b, c, 0.25, 7
b:
    alu 1
    bnever d, c
c:
    alu 1
    balways e, d
d:
    nop 2
    goto f
e:
    alu 1
f:
    ret
`
	p, err := ParseString(src, "branches")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// e is reachable? e has no predecessor — validation would fail.
	_ = p
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"statement outside block", "func f\ncode 3\n"},
		{"label outside function", "x:\n"},
		{"bad count", "func f\na:\n alu zero\n ret\n"},
		{"unknown op", "func f\na:\n frobnicate 3\n ret\n"},
		{"bloop bad trips", "func f\na:\n bloop a, b, x\nb:\n ret\n"},
		{"bpat bad char", "func f\na:\n bpat a, b, TXT\nb:\n ret\n"},
		{"bprob bad p", "func f\na:\n bprob a, b, 1.5, 3\nb:\n ret\n"},
		{"call arity", "func f\na:\n call x, y, z\nb:\n ret\n"},
		{"empty entry", ".entry\nfunc f\na:\n ret\n"},
		{"undefined branch target", "func f\na:\n bloop a, nowhere, 3\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseString(c.src, "bad"); err == nil {
				t.Fatalf("accepted:\n%s", c.src)
			}
		})
	}
}

func TestUnreachableBlockRejected(t *testing.T) {
	src := `
func main
a:
    ret
orphan:
    ret
`
	if _, err := ParseString(src, "orphan"); err == nil {
		t.Fatal("unreachable block accepted (ir.Validate should reject)")
	}
}

// TestRoundTripWorkloads writes every bundled workload to asm and parses
// it back; the result must be structurally identical and produce the same
// execution profile.
func TestRoundTripWorkloads(t *testing.T) {
	for _, name := range workload.Names() {
		p := mustLoad(t, name)
		var sb strings.Builder
		if err := Write(&sb, p); err != nil {
			t.Fatalf("%s: Write: %v", name, err)
		}
		q, err := ParseString(sb.String(), name)
		if err != nil {
			t.Fatalf("%s: re-parse: %v", name, err)
		}
		if q.Size() != p.Size() || q.NumBlocks() != p.NumBlocks() || len(q.Funcs) != len(p.Funcs) {
			t.Fatalf("%s: shape changed: %d/%d blocks, %d/%d bytes",
				name, q.NumBlocks(), p.NumBlocks(), q.Size(), p.Size())
		}
		pp, err := sim.ProfileProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := sim.ProfileProgram(q)
		if err != nil {
			t.Fatalf("%s: profile after round trip: %v", name, err)
		}
		if pp.Fetches != qp.Fetches {
			t.Errorf("%s: fetches %d vs %d after round trip", name, pp.Fetches, qp.Fetches)
		}
	}
}

func TestRoundTripRandomPrograms(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		p, err := workload.Random(workload.RandomSpec{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var sb strings.Builder
		if err := Write(&sb, p); err != nil {
			t.Fatalf("seed %d: Write: %v", seed, err)
		}
		q, err := ParseString(sb.String(), p.Name)
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v\n%s", seed, err, sb.String())
		}
		pp, err := sim.ProfileProgram(p, sim.WithMaxFetches(1<<24))
		if err != nil {
			t.Fatal(err)
		}
		qp, err := sim.ProfileProgram(q, sim.WithMaxFetches(1<<24))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if pp.Fetches != qp.Fetches {
			t.Errorf("seed %d: fetches %d vs %d", seed, pp.Fetches, qp.Fetches)
		}
	}
}

func TestWriteGeneratedLabelCollision(t *testing.T) {
	// A block explicitly labelled "bb1" must not collide with generated
	// names.
	pb := ir.NewProgramBuilder("p")
	f := pb.Func("main")
	f.Block("bb1").ALU(1).Jump("bb1x")
	f.Block("bb1x").Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var sb strings.Builder
	if err := Write(&sb, p); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := ParseString(sb.String(), "p"); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
}

func TestDataObjectsRoundTrip(t *testing.T) {
	src := `
.data table, 64
.data buffer, 2048

func main
loop:
    alu 3
    touch table, 2, 1
    bloop loop, out, 10
out:
    touch buffer, 0, 1
    ret
`
	p, err := ParseString(src, "data")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Data) != 2 || p.Data[0].Name != "table" || p.Data[1].SizeBytes != 2048 {
		t.Fatalf("data objects wrong: %+v", p.Data)
	}
	loop := p.Funcs[0].Blocks[0]
	if len(loop.DataRefs) != 1 || loop.DataRefs[0].Loads != 2 || loop.DataRefs[0].Stores != 1 {
		t.Fatalf("data refs wrong: %+v", loop.DataRefs)
	}
	var sb strings.Builder
	if err := Write(&sb, p); err != nil {
		t.Fatalf("Write: %v", err)
	}
	q, err := ParseString(sb.String(), "data")
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	if len(q.Data) != 2 {
		t.Fatalf("data lost in round trip")
	}
	if len(q.Funcs[0].Blocks[0].DataRefs) != 1 {
		t.Fatalf("data refs lost in round trip")
	}
}

func TestWorkloadDataSurvivesRoundTrip(t *testing.T) {
	p := mustLoad(t, "mpeg")
	var sb strings.Builder
	if err := Write(&sb, p); err != nil {
		t.Fatal(err)
	}
	q, err := ParseString(sb.String(), "mpeg")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Data) != len(p.Data) {
		t.Fatalf("data objects %d vs %d", len(q.Data), len(p.Data))
	}
	refs := func(prog interface {
		Func(ir.FuncID) *ir.Function
	}) int {
		n := 0
		for fid := 0; ; fid++ {
			f := prog.Func(ir.FuncID(fid))
			if f == nil {
				break
			}
			for _, b := range f.Blocks {
				n += len(b.DataRefs)
			}
		}
		return n
	}
	if refs(p) != refs(q) {
		t.Fatalf("data refs %d vs %d", refs(p), refs(q))
	}
}

func TestParseDataErrors(t *testing.T) {
	cases := []string{
		".data onlyname\nfunc f\na:\n ret\n",
		".data x, -3\nfunc f\na:\n ret\n",
		"func f\na:\n touch ghost, 1, 0\n ret\n",
		".data t, 8\nfunc f\na:\n touch t, x, 0\n ret\n",
	}
	for i, src := range cases {
		if _, err := ParseString(src, "bad"); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// mustLoad builds a named workload, failing the test on error.
func mustLoad(t testing.TB, name string) *ir.Program {
	t.Helper()
	p, err := workload.Load(name)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return p
}
