package asm

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/ir"
)

// Write renders a program in asm format. The output parses back with
// Parse into a structurally identical program (same functions, blocks,
// instructions, edges and behaviors).
func Write(w io.Writer, p *ir.Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; %s — %d bytes of code\n", p.Name, p.Size())
	if entry := p.Func(p.Entry); entry != nil {
		fmt.Fprintf(bw, ".entry %s\n", entry.Name)
	}
	for _, d := range p.Data {
		fmt.Fprintf(bw, ".data %s, %d\n", d.Name, d.SizeBytes)
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(bw, "\nfunc %s\n", f.Name)
		labels := blockLabels(f)
		for _, b := range f.Blocks {
			fmt.Fprintf(bw, "%s:\n", labels[b.ID])
			if err := writeBlock(bw, p, b, labels); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// blockLabels assigns a unique printable label to every block: its own
// label when present, otherwise a generated one avoiding collisions.
func blockLabels(f *ir.Function) []string {
	used := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if b.Label != "" {
			used[b.Label] = true
		}
	}
	labels := make([]string, len(f.Blocks))
	for _, b := range f.Blocks {
		if b.Label != "" {
			labels[b.ID] = b.Label
			continue
		}
		name := fmt.Sprintf("bb%d", b.ID)
		for used[name] {
			name += "_"
		}
		used[name] = true
		labels[b.ID] = name
	}
	return labels
}

func writeBlock(bw *bufio.Writer, p *ir.Program, b *ir.Block, labels []string) error {
	// Body instructions (excluding a trailing control instruction),
	// run-length encoded.
	body := b.Instrs
	if n := len(body); n > 0 && body[n-1].Op.IsControl() {
		body = body[:n-1]
	}
	for i := 0; i < len(body); {
		j := i
		for j < len(body) && body[j].Op == body[i].Op {
			j++
		}
		stmt, err := opStmt(body[i].Op)
		if err != nil {
			return err
		}
		if j-i == 1 {
			fmt.Fprintf(bw, "    %s\n", stmt)
		} else {
			fmt.Fprintf(bw, "    %s %d\n", stmt, j-i)
		}
		i = j
	}

	for _, r := range b.DataRefs {
		fmt.Fprintf(bw, "    touch %s, %d, %d\n", dataName(p, r.Obj), r.Loads, r.Stores)
	}

	switch b.Term() {
	case ir.TermFallThrough:
		// Adjacent fall-through is implicit; non-adjacent needs goto.
		if int(b.FallThrough) != int(b.ID)+1 {
			fmt.Fprintf(bw, "    goto %s\n", labels[b.FallThrough])
		}
	case ir.TermJump:
		fmt.Fprintf(bw, "    jump %s\n", labels[b.Taken])
	case ir.TermReturn:
		fmt.Fprintf(bw, "    ret\n")
	case ir.TermCall:
		callee := p.Func(b.CallTarget).Name
		if int(b.FallThrough) == int(b.ID)+1 {
			fmt.Fprintf(bw, "    call %s\n", callee)
		} else {
			fmt.Fprintf(bw, "    call %s, %s\n", callee, labels[b.FallThrough])
		}
	case ir.TermBranch:
		stmt, err := behaviorStmt(b.Behavior)
		if err != nil {
			return err
		}
		fmt.Fprintf(bw, "    %s %s, %s%s\n",
			stmt.op, labels[b.Taken], labels[b.FallThrough], stmt.suffix)
	}
	return nil
}

func dataName(p *ir.Program, id ir.DataID) string {
	if d := p.DataOf(id); d != nil {
		return d.Name
	}
	return fmt.Sprintf("data%d", id)
}

type branchStmt struct {
	op     string
	suffix string
}

func behaviorStmt(beh ir.Behavior) (branchStmt, error) {
	switch b := beh.(type) {
	case ir.Loop:
		return branchStmt{op: "bloop", suffix: fmt.Sprintf(", %d", b.Trips)}, nil
	case ir.Pattern:
		var sb strings.Builder
		for _, t := range b.Seq {
			if t {
				sb.WriteByte('T')
			} else {
				sb.WriteByte('N')
			}
		}
		return branchStmt{op: "bpat", suffix: ", " + sb.String()}, nil
	case ir.Biased:
		return branchStmt{op: "bprob", suffix: fmt.Sprintf(", %g, %d", b.P, b.Seed)}, nil
	case ir.Never:
		return branchStmt{op: "bnever"}, nil
	case ir.Always:
		return branchStmt{op: "balways"}, nil
	default:
		return branchStmt{}, fmt.Errorf("asm: behavior %v has no textual form", beh)
	}
}

func opStmt(op ir.Opcode) (string, error) {
	switch op {
	case ir.OpALU:
		return "alu", nil
	case ir.OpMul:
		return "mul", nil
	case ir.OpLoad:
		return "load", nil
	case ir.OpStore:
		return "store", nil
	case ir.OpNOP:
		return "nop", nil
	default:
		return "", fmt.Errorf("asm: opcode %v has no textual form", op)
	}
}
