// Package asm provides a textual program format for the library: a small
// assembly-like language that parses into ir.Program and a writer that
// round-trips. It exists so workloads can live in files and be fed to the
// command-line tools instead of being compiled into Go code.
//
// Format by example:
//
//	; adpcm-like toy — comments run from ';' or '#' to end of line
//	.entry main
//
//	func main
//	start:
//	    code 10              ; 10 instructions of the generic mix
//	    call coder           ; resumes at the next block
//	loop:
//	    alu 3
//	    load 1
//	    bloop loop, done, 40 ; counted back edge: 40 trips per entry
//	done:
//	    ret
//
//	func coder
//	body:
//	    mul 4
//	    bpat body, out, TTN  ; cyclic taken/not-taken pattern
//	out:
//	    ret
//
// Instruction statements: code, alu, mul, load, store, nop — each with a
// repeat count (default 1). Terminators: jump/b LABEL; goto LABEL
// (fall-through to a non-adjacent block); call FUNC[, RESUME]; ret;
// branches bloop T, F, TRIPS; bpat T, F, PATTERN; bprob T, F, P, SEED;
// bnever T, F; balways T, F. A block without a terminator falls through
// to the next block in the function.
//
// Data objects are declared with ".data NAME, SIZE" at the top level and
// referenced from blocks with "touch NAME, LOADS, STORES" (per-execution
// access counts).
package asm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// Parse reads a program in asm format.
func Parse(r io.Reader, name string) (*ir.Program, error) {
	p := &parser{pb: ir.NewProgramBuilder(name)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if err := p.line(sc.Text(), lineNo); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p.pb.Build()
}

// ParseString parses a program from a string.
func ParseString(src, name string) (*ir.Program, error) {
	return Parse(strings.NewReader(src), name)
}

type parser struct {
	pb    *ir.ProgramBuilder
	fn    *ir.FuncBuilder
	blk   *ir.BlockBuilder
	entry bool
}

func errf(line int, format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) line(raw string, n int) error {
	// Strip comments.
	if i := strings.IndexAny(raw, ";#"); i >= 0 {
		raw = raw[:i]
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}

	switch {
	case strings.HasPrefix(s, ".data"):
		args := splitArgs(strings.TrimSpace(strings.TrimPrefix(s, ".data")))
		if len(args) != 2 {
			return errf(n, ".data needs NAME, SIZE")
		}
		size, err := strconv.Atoi(args[1])
		if err != nil || size <= 0 {
			return errf(n, ".data: bad size %q", args[1])
		}
		p.pb.DataObject(args[0], size)
		return nil
	case strings.HasPrefix(s, ".entry"):
		name := strings.TrimSpace(strings.TrimPrefix(s, ".entry"))
		if name == "" {
			return errf(n, ".entry needs a function name")
		}
		p.pb.SetEntry(name)
		p.entry = true
		return nil
	case strings.HasPrefix(s, "func "):
		name := strings.TrimSpace(strings.TrimPrefix(s, "func "))
		if name == "" {
			return errf(n, "func needs a name")
		}
		p.fn = p.pb.Func(name)
		p.blk = nil
		return nil
	case strings.HasSuffix(s, ":"):
		if p.fn == nil {
			return errf(n, "label %q outside a function", s)
		}
		label := strings.TrimSuffix(s, ":")
		if label == "" {
			return errf(n, "empty label")
		}
		p.blk = p.fn.Block(label)
		return nil
	}

	if p.blk == nil {
		return errf(n, "statement %q outside a block (missing label?)", s)
	}
	return p.statement(s, n)
}

// statement handles one instruction or terminator line.
func (p *parser) statement(s string, n int) error {
	op, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	args := splitArgs(rest)

	count := func() (int, error) {
		if rest == "" {
			return 1, nil
		}
		v, err := strconv.Atoi(rest)
		if err != nil || v < 1 {
			return 0, errf(n, "%s: bad repeat count %q", op, rest)
		}
		return v, nil
	}

	switch op {
	case "code":
		v, err := count()
		if err != nil {
			return err
		}
		p.blk.Code(v)
	case "alu":
		v, err := count()
		if err != nil {
			return err
		}
		p.blk.ALU(v)
	case "mul":
		v, err := count()
		if err != nil {
			return err
		}
		p.blk.Mul(v)
	case "load":
		v, err := count()
		if err != nil {
			return err
		}
		p.blk.Load(v)
	case "store":
		v, err := count()
		if err != nil {
			return err
		}
		p.blk.Store(v)
	case "nop":
		v, err := count()
		if err != nil {
			return err
		}
		p.blk.Op(ir.OpNOP, v)
	case "jump", "b":
		if len(args) != 1 {
			return errf(n, "%s needs one target", op)
		}
		p.blk.Jump(args[0])
	case "goto":
		if len(args) != 1 {
			return errf(n, "goto needs one target")
		}
		p.blk.Goto(args[0])
	case "ret":
		p.blk.Return()
	case "call":
		switch len(args) {
		case 1:
			p.blk.Call(args[0])
		case 2:
			p.blk.CallResume(args[0], args[1])
		default:
			return errf(n, "call needs FUNC or FUNC, RESUME")
		}
	case "bloop":
		if len(args) != 3 {
			return errf(n, "bloop needs TAKEN, FALL, TRIPS")
		}
		trips, err := strconv.Atoi(args[2])
		if err != nil || trips < 1 {
			return errf(n, "bloop: bad trip count %q", args[2])
		}
		p.blk.Branch(args[0], args[1], ir.Loop{Trips: trips})
	case "bpat":
		if len(args) != 3 {
			return errf(n, "bpat needs TAKEN, FALL, PATTERN")
		}
		seq, err := parsePattern(args[2])
		if err != nil {
			return errf(n, "bpat: %v", err)
		}
		p.blk.Branch(args[0], args[1], ir.Pattern{Seq: seq})
	case "bprob":
		if len(args) != 4 {
			return errf(n, "bprob needs TAKEN, FALL, P, SEED")
		}
		prob, err := strconv.ParseFloat(args[2], 64)
		if err != nil || prob < 0 || prob > 1 {
			return errf(n, "bprob: bad probability %q", args[2])
		}
		seed, err := strconv.ParseUint(args[3], 10, 64)
		if err != nil {
			return errf(n, "bprob: bad seed %q", args[3])
		}
		p.blk.Branch(args[0], args[1], ir.Biased{P: prob, Seed: seed})
	case "touch":
		if len(args) != 3 {
			return errf(n, "touch needs OBJECT, LOADS, STORES")
		}
		loads, err1 := strconv.Atoi(args[1])
		stores, err2 := strconv.Atoi(args[2])
		if err1 != nil || err2 != nil || loads < 0 || stores < 0 {
			return errf(n, "touch: bad access counts %q, %q", args[1], args[2])
		}
		p.blk.Data(args[0], loads, stores)
	case "bnever":
		if len(args) != 2 {
			return errf(n, "bnever needs TAKEN, FALL")
		}
		p.blk.Branch(args[0], args[1], ir.Never{})
	case "balways":
		if len(args) != 2 {
			return errf(n, "balways needs TAKEN, FALL")
		}
		p.blk.Branch(args[0], args[1], ir.Always{})
	default:
		return errf(n, "unknown statement %q", op)
	}
	return nil
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func parsePattern(s string) ([]bool, error) {
	seq := make([]bool, 0, len(s))
	for _, c := range s {
		switch c {
		case 'T', 't':
			seq = append(seq, true)
		case 'N', 'n', 'F', 'f':
			seq = append(seq, false)
		default:
			return nil, fmt.Errorf("pattern char %q (want T/N)", c)
		}
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("empty pattern")
	}
	return seq, nil
}
