package experiments

import (
	"context"
	"fmt"
	"io"
)

// Fig4Config reproduces Figure 4's setup: the mpeg benchmark with a 2 kB
// direct-mapped I-cache, sweeping the scratchpad size, comparing CASA
// against Steinke's algorithm (= 100%).
type Fig4Config struct {
	Workload string
	Cache    CacheSpec
	SPMSizes []int
}

// DefaultFig4 is the paper's Figure 4 configuration.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		Workload: "mpeg",
		Cache:    DM(2048),
		SPMSizes: []int{128, 256, 512, 1024},
	}
}

// Fig4Row holds one scratchpad size's parameters, each as a percentage of
// Steinke's value (100).
type Fig4Row struct {
	SPMSize int
	// SPMAccessPct, CacheAccessPct, CacheMissPct and EnergyPct are CASA's
	// scratchpad accesses, I-cache accesses, I-cache misses and total
	// energy relative to Steinke's (= 100%).
	SPMAccessPct   float64
	CacheAccessPct float64
	CacheMissPct   float64
	EnergyPct      float64
	// Absolute values for the record.
	CASAEnergyMicroJ    float64
	SteinkeEnergyMicroJ float64
}

func pct(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 100
		}
		return 0
	}
	return 100 * num / den
}

// Fig4 regenerates Figure 4, evaluating the scratchpad sizes on the
// suite's worker pool, largest first so smaller cells solve warm
// (warmplan.go).
func Fig4(ctx context.Context, s *Suite, cfg Fig4Config) ([]Fig4Row, error) {
	return fig4Ordered(ctx, s, cfg, warmOrder(cfg.SPMSizes))
}

// fig4Ordered is Fig4 with an explicit cell evaluation order; the order
// affects only solve times and warm hit/miss counters, never the rows
// (the property tests permute it to prove exactly that).
func fig4Ordered(ctx context.Context, s *Suite, cfg Fig4Config, order []int) ([]Fig4Row, error) {
	return runCellsOrdered(ctx, s, order, func(ctx context.Context, i int) (Fig4Row, error) {
		size := cfg.SPMSizes[i]
		p, err := s.Pipeline(ctx, cfg.Workload, cfg.Cache, size)
		if err != nil {
			return Fig4Row{}, err
		}
		casa, err := p.RunCASA(ctx)
		if err != nil {
			return Fig4Row{}, err
		}
		st, err := p.RunSteinke(ctx)
		if err != nil {
			return Fig4Row{}, err
		}
		return Fig4Row{
			SPMSize:             size,
			SPMAccessPct:        pct(float64(casa.Result.SPMAccesses), float64(st.Result.SPMAccesses)),
			CacheAccessPct:      pct(float64(casa.Result.CacheAccesses), float64(st.Result.CacheAccesses)),
			CacheMissPct:        pct(float64(casa.Result.CacheMisses), float64(st.Result.CacheMisses)),
			EnergyPct:           pct(casa.EnergyMicroJ, st.EnergyMicroJ),
			CASAEnergyMicroJ:    casa.EnergyMicroJ,
			SteinkeEnergyMicroJ: st.EnergyMicroJ,
		}, nil
	})
}

// WriteFig4 renders Figure 4 rows as a text table.
func WriteFig4(w io.Writer, cfg Fig4Config, rows []Fig4Row) {
	fmt.Fprintf(w, "Figure 4: CASA vs. Steinke on %s (cache %dB direct-mapped; Steinke = 100%%)\n",
		cfg.Workload, cfg.Cache.Size)
	fmt.Fprintf(w, "%8s %12s %14s %12s %10s\n",
		"SPM(B)", "SPM acc(%)", "I$ access(%)", "I$ miss(%)", "energy(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12.1f %14.1f %12.1f %10.1f\n",
			r.SPMSize, r.SPMAccessPct, r.CacheAccessPct, r.CacheMissPct, r.EnergyPct)
	}
}

// Fig5Config reproduces Figure 5's setup: CASA-allocated scratchpad
// against a Ross-preloaded loop cache of the same size (= 100%).
type Fig5Config struct {
	Workload string
	Cache    CacheSpec
	Sizes    []int
}

// DefaultFig5 is the paper's Figure 5 configuration.
func DefaultFig5() Fig5Config {
	return Fig5Config{
		Workload: "mpeg",
		Cache:    DM(2048),
		Sizes:    []int{128, 256, 512, 1024},
	}
}

// Fig5Row holds one size's parameters as a percentage of the loop-cache
// configuration (100).
type Fig5Row struct {
	Size int
	// AccessPct compares scratchpad accesses against loop-cache accesses;
	// CacheMissPct and EnergyPct compare I-cache misses and total energy.
	AccessPct    float64
	CacheMissPct float64
	EnergyPct    float64
	// Absolute values for the record.
	CASAEnergyMicroJ float64
	LCEnergyMicroJ   float64
}

// Fig5 regenerates Figure 5, evaluating the sizes on the suite's worker
// pool, largest first so smaller cells solve warm (warmplan.go).
func Fig5(ctx context.Context, s *Suite, cfg Fig5Config) ([]Fig5Row, error) {
	return runCellsOrdered(ctx, s, warmOrder(cfg.Sizes), func(ctx context.Context, i int) (Fig5Row, error) {
		size := cfg.Sizes[i]
		p, err := s.Pipeline(ctx, cfg.Workload, cfg.Cache, size)
		if err != nil {
			return Fig5Row{}, err
		}
		casa, err := p.RunCASA(ctx)
		if err != nil {
			return Fig5Row{}, err
		}
		lc, err := p.RunLoopCache(ctx)
		if err != nil {
			return Fig5Row{}, err
		}
		return Fig5Row{
			Size:             size,
			AccessPct:        pct(float64(casa.Result.SPMAccesses), float64(lc.Result.LoopCacheAccesses)),
			CacheMissPct:     pct(float64(casa.Result.CacheMisses), float64(lc.Result.CacheMisses)),
			EnergyPct:        pct(casa.EnergyMicroJ, lc.EnergyMicroJ),
			CASAEnergyMicroJ: casa.EnergyMicroJ,
			LCEnergyMicroJ:   lc.EnergyMicroJ,
		}, nil
	})
}

// WriteFig5 renders Figure 5 rows as a text table.
func WriteFig5(w io.Writer, cfg Fig5Config, rows []Fig5Row) {
	fmt.Fprintf(w, "Figure 5: CASA scratchpad vs. preloaded loop cache on %s (cache %dB; loop cache = 100%%)\n",
		cfg.Workload, cfg.Cache.Size)
	fmt.Fprintf(w, "%8s %14s %12s %10s\n", "size(B)", "SPM/LC acc(%)", "I$ miss(%)", "energy(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %14.1f %12.1f %10.1f\n",
			r.Size, r.AccessPct, r.CacheMissPct, r.EnergyPct)
	}
}

// Table1Config reproduces Table 1: per-benchmark cache size and memory
// (scratchpad / loop cache) size sweep.
type Table1Config struct {
	Benchmarks []Table1Benchmark
}

// Table1Benchmark is one benchmark's sweep.
type Table1Benchmark struct {
	Workload string
	Cache    CacheSpec
	MemSizes []int
}

// DefaultTable1 is the paper's Table 1 configuration: I-caches of 128 B,
// 1 kB and 2 kB for adpcm, g721 and mpeg respectively.
func DefaultTable1() Table1Config {
	return Table1Config{Benchmarks: []Table1Benchmark{
		{Workload: "adpcm", Cache: DM(128), MemSizes: []int{64, 128, 256}},
		{Workload: "g721", Cache: DM(1024), MemSizes: []int{128, 256, 512, 1024}},
		{Workload: "mpeg", Cache: DM(2048), MemSizes: []int{128, 256, 512, 1024}},
	}}
}

// Table1Row is one (benchmark, size) cell of Table 1.
type Table1Row struct {
	Benchmark string
	MemSize   int
	// Energies in µJ for the three techniques.
	CASAMicroJ    float64
	SteinkeMicroJ float64
	LCMicroJ      float64
	// Improvements in percent (positive = CASA better).
	CASAvsSteinkePct float64
	CASAvsLCPct      float64
}

// Table1Average is a per-benchmark average of the improvement columns.
type Table1Average struct {
	Benchmark        string
	CASAvsSteinkePct float64
	CASAvsLCPct      float64
}

func improvement(casa, other float64) float64 {
	if other == 0 {
		return 0
	}
	return 100 * (other - casa) / other
}

// Table1 regenerates Table 1 and its per-benchmark averages. The full
// benchmark × memory-size grid is flattened into independent cells and
// evaluated on the suite's worker pool; averages are folded serially in
// row order afterwards, so the output is identical to a serial run.
func Table1(ctx context.Context, s *Suite, cfg Table1Config) ([]Table1Row, []Table1Average, error) {
	type cell struct {
		bench Table1Benchmark
		size  int
	}
	var cells []cell
	for _, b := range cfg.Benchmarks {
		for _, size := range b.MemSizes {
			cells = append(cells, cell{bench: b, size: size})
		}
	}
	sizes := make([]int, len(cells))
	for i, c := range cells {
		sizes[i] = c.size
	}
	// Largest memories first: within each benchmark every smaller cell
	// then finds a solved same-workload donor (warmplan.go).
	rows, err := runCellsOrdered(ctx, s, warmOrder(sizes), func(ctx context.Context, i int) (Table1Row, error) {
		c := cells[i]
		p, err := s.Pipeline(ctx, c.bench.Workload, c.bench.Cache, c.size)
		if err != nil {
			return Table1Row{}, err
		}
		casa, err := p.RunCASA(ctx)
		if err != nil {
			return Table1Row{}, err
		}
		st, err := p.RunSteinke(ctx)
		if err != nil {
			return Table1Row{}, err
		}
		lc, err := p.RunLoopCache(ctx)
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			Benchmark:        c.bench.Workload,
			MemSize:          c.size,
			CASAMicroJ:       casa.EnergyMicroJ,
			SteinkeMicroJ:    st.EnergyMicroJ,
			LCMicroJ:         lc.EnergyMicroJ,
			CASAvsSteinkePct: improvement(casa.EnergyMicroJ, st.EnergyMicroJ),
			CASAvsLCPct:      improvement(casa.EnergyMicroJ, lc.EnergyMicroJ),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var avgs []Table1Average
	i := 0
	for _, b := range cfg.Benchmarks {
		var sumSt, sumLC float64
		for range b.MemSizes {
			sumSt += rows[i].CASAvsSteinkePct
			sumLC += rows[i].CASAvsLCPct
			i++
		}
		n := float64(len(b.MemSizes))
		avgs = append(avgs, Table1Average{
			Benchmark:        b.Workload,
			CASAvsSteinkePct: sumSt / n,
			CASAvsLCPct:      sumLC / n,
		})
	}
	return rows, avgs, nil
}

// WriteTable1 renders Table 1 rows and averages as a text table.
func WriteTable1(w io.Writer, rows []Table1Row, avgs []Table1Average) {
	fmt.Fprintln(w, "Table 1: Overall energy savings")
	fmt.Fprintf(w, "%-10s %8s %14s %14s %14s %18s %14s\n",
		"benchmark", "mem(B)", "SP(CASA) µJ", "SP(Steinke) µJ", "LC(Ross) µJ",
		"CASA vs Steinke %", "CASA vs LC %")
	byBench := make(map[string][]Table1Row)
	var order []string
	for _, r := range rows {
		if _, seen := byBench[r.Benchmark]; !seen {
			order = append(order, r.Benchmark)
		}
		byBench[r.Benchmark] = append(byBench[r.Benchmark], r)
	}
	avgOf := make(map[string]Table1Average, len(avgs))
	for _, a := range avgs {
		avgOf[a.Benchmark] = a
	}
	for _, name := range order {
		for _, r := range byBench[name] {
			fmt.Fprintf(w, "%-10s %8d %14.2f %14.2f %14.2f %18.1f %14.1f\n",
				r.Benchmark, r.MemSize, r.CASAMicroJ, r.SteinkeMicroJ, r.LCMicroJ,
				r.CASAvsSteinkePct, r.CASAvsLCPct)
		}
		if a, ok := avgOf[name]; ok {
			fmt.Fprintf(w, "%-10s %8s %14s %14s %14s %18.1f %14.1f\n",
				"", "avg", "", "", "", a.CASAvsSteinkePct, a.CASAvsLCPct)
		}
	}
}
