package experiments

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/layout"
)

// CopyVsMove quantifies the layout-perturbation effect the paper blames
// for Steinke's erratic results (§2): it evaluates the *same* CASA-optimal
// selection under copy semantics (main-memory image untouched) and move
// semantics (selected traces removed, remainder compacted and therefore
// re-mapped in the cache).
type CopyVsMove struct {
	CopyMicroJ float64
	MoveMicroJ float64
	CopyMisses int64
	MoveMisses int64
}

// AblateCopyVsMove runs the ablation on one pipeline.
func AblateCopyVsMove(ctx context.Context, p *Pipeline) (*CopyVsMove, error) {
	alloc, err := p.CASAAllocation(ctx)
	if err != nil {
		return nil, err
	}
	cp, err := p.RunSelection(ctx, "casa-copy", alloc.InSPM, layout.Copy)
	if err != nil {
		return nil, err
	}
	mv, err := p.RunSelection(ctx, "casa-move", alloc.InSPM, layout.Move)
	if err != nil {
		return nil, err
	}
	return &CopyVsMove{
		CopyMicroJ: cp.EnergyMicroJ,
		MoveMicroJ: mv.EnergyMicroJ,
		CopyMisses: cp.Result.CacheMisses,
		MoveMisses: mv.Result.CacheMisses,
	}, nil
}

// LinearizationAblation compares the paper's faithful linearization
// (constraints (13)–(15), binary L) against the tight single-constraint
// continuous-L variant.
//
// A reproduction finding: both reach the same optimum when allowed to,
// but the published constraints have a *much weaker LP relaxation* — (15)
// only bounds L ≥ (l_i + l_j − 1)/2 in the relaxation, half of the tight
// bound — so branch & bound over the faithful formulation explodes on
// larger conflict graphs. The commercial solver the paper used applies
// standard product-linearization strengthening automatically; our
// from-scratch solver exposes the difference. The faithful run therefore
// carries a node cap, and FaithfulStatus reports whether the optimum was
// proved (ilp.Optimal) or the cap returned the incumbent (ilp.Feasible).
type LinearizationAblation struct {
	TightEnergy    float64
	FaithfulEnergy float64
	TightStatus    ilp.Status
	FaithfulStatus ilp.Status
	TightNodes     int
	FaithfulNodes  int
	TightIters     int
	FaithfulIters  int
	TightTime      time.Duration
	FaithfulTime   time.Duration
}

// FaithfulNodeCap bounds the faithful formulation's branch & bound (see
// LinearizationAblation).
const FaithfulNodeCap = 20000

// AblateLinearization runs both formulations on one pipeline.
func AblateLinearization(ctx context.Context, p *Pipeline) (*LinearizationAblation, error) {
	out := &LinearizationAblation{}
	prm := p.casaParams()

	prm.Linearization = core.Tight
	t0 := time.Now()
	at, err := core.Allocate(ctx, p.Set, p.Graph, prm)
	if err != nil {
		return nil, err
	}
	out.TightTime = time.Since(t0)
	out.TightEnergy = at.PredictedEnergy
	out.TightStatus = at.Status
	out.TightNodes = at.Nodes
	out.TightIters = at.SimplexIters

	prm.Linearization = core.Faithful
	prm.Solver = ilp.Options{MaxNodes: FaithfulNodeCap}
	t0 = time.Now()
	af, err := core.Allocate(ctx, p.Set, p.Graph, prm)
	if err != nil {
		return nil, err
	}
	out.FaithfulTime = time.Since(t0)
	out.FaithfulEnergy = af.PredictedEnergy
	out.FaithfulStatus = af.Status
	out.FaithfulNodes = af.Nodes
	out.FaithfulIters = af.SimplexIters
	return out, nil
}

// GreedyVsILP compares the exact ILP allocation against the greedy
// heuristic over the same fine-grained energy model, both measured by full
// simulation.
type GreedyVsILP struct {
	ILPMicroJ    float64
	GreedyMicroJ float64
	// Predicted energies under the model (profiling counts).
	ILPPredicted    float64
	GreedyPredicted float64
}

// AblateGreedyVsILP runs the ablation on one pipeline.
func AblateGreedyVsILP(ctx context.Context, p *Pipeline) (*GreedyVsILP, error) {
	prm := p.casaParams()
	opt, err := p.CASAAllocation(ctx)
	if err != nil {
		return nil, err
	}
	gr, err := core.GreedyAllocate(ctx, p.Set, p.Graph, prm)
	if err != nil {
		return nil, err
	}
	optRun, err := p.RunSelection(ctx, "casa-ilp", opt.InSPM, layout.Copy)
	if err != nil {
		return nil, err
	}
	grRun, err := p.RunSelection(ctx, "casa-greedy", gr.InSPM, layout.Copy)
	if err != nil {
		return nil, err
	}
	return &GreedyVsILP{
		ILPMicroJ:       optRun.EnergyMicroJ,
		GreedyMicroJ:    grRun.EnergyMicroJ,
		ILPPredicted:    opt.PredictedEnergy,
		GreedyPredicted: gr.PredictedEnergy,
	}, nil
}

// AblationPipeline selects one pipeline configuration for an ablation.
type AblationPipeline struct {
	Workload string
	Cache    CacheSpec
	SPMSize  int
}

// AblationConfig selects the pipelines the design-choice ablations run on.
type AblationConfig struct {
	// Main drives the copy-vs-move and greedy-vs-ILP ablations.
	Main AblationPipeline
	// Linearization drives the linearization ablation; the faithful
	// formulation's weak relaxation makes large instances intractable for
	// a plain B&B (see LinearizationAblation), so it runs on the paper's
	// smallest benchmark.
	Linearization AblationPipeline
}

// DefaultAblations matches DESIGN.md: copy/greedy on mpeg (2 kB cache,
// 512 B scratchpad), linearization on adpcm (128 B cache and scratchpad).
func DefaultAblations() AblationConfig {
	return AblationConfig{
		Main:          AblationPipeline{Workload: "mpeg", Cache: DM(2048), SPMSize: 512},
		Linearization: AblationPipeline{Workload: "adpcm", Cache: DM(128), SPMSize: 128},
	}
}

// AblationSet bundles the three ablations' results.
type AblationSet struct {
	CopyMove      *CopyVsMove
	Linearization *LinearizationAblation
	GreedyILP     *GreedyVsILP
}

// Ablations runs the three design-choice ablations on the suite's worker
// pool (each ablation is one cell; they write disjoint fields).
func Ablations(ctx context.Context, s *Suite, cfg AblationConfig) (*AblationSet, error) {
	out := &AblationSet{}
	tasks := []func(ctx context.Context) error{
		func(ctx context.Context) error {
			p, err := s.Pipeline(ctx, cfg.Main.Workload, cfg.Main.Cache, cfg.Main.SPMSize)
			if err == nil {
				out.CopyMove, err = AblateCopyVsMove(ctx, p)
			}
			return err
		},
		func(ctx context.Context) error {
			p, err := s.Pipeline(ctx, cfg.Linearization.Workload, cfg.Linearization.Cache, cfg.Linearization.SPMSize)
			if err == nil {
				out.Linearization, err = AblateLinearization(ctx, p)
			}
			return err
		},
		func(ctx context.Context) error {
			p, err := s.Pipeline(ctx, cfg.Main.Workload, cfg.Main.Cache, cfg.Main.SPMSize)
			if err == nil {
				out.GreedyILP, err = AblateGreedyVsILP(ctx, p)
			}
			return err
		},
	}
	if _, err := runCells(ctx, s, len(tasks), func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, tasks[i](ctx)
	}); err != nil {
		return nil, err
	}
	return out, nil
}
