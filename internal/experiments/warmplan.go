package experiments

import (
	"context"
	"errors"
	"sort"
	"sync"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Cross-cell warm starts. The study grids solve one CASA ILP per
// (workload, cache, scratchpad-size) cell, and neighboring cells —
// differing in a single parameter — have closely related optima: a
// feasible allocation for one maps (via core.TransferAllocation) to a
// feasible allocation for the other, whose predicted energy becomes an
// immediate upper-bound cutoff for the neighbor's solve. The suite
// keeps every solved cell's selection in a warm store; before a cell
// solves, the planner values all solved single-parameter neighbors and
// passes the best (minimum) cutoff to the solver.
//
// The cutoff only prunes provably-worse subtrees (see ilp.Options), so
// results are identical to cold solves; only time changes. Grid
// evaluation is ordered largest-scratchpad-first (warmOrder) so the
// expensive small-scratchpad cells — whose ILPs are most constrained
// and slowest — always find a solved donor. With several workers the
// set of donors available to a cell depends on scheduling, but since
// cutoffs never change results, only casa_ilp_warm_cell_{hits,misses}
// counters vary; run a study with one worker for deterministic
// counters.
//
// Everything is gated behind CASA_INCREMENTAL (ilp.IncrementalEnabled):
// off means no cutoffs, no presolve session and no warm counters — the
// path bit-identical to earlier releases.

// mWarmCellMisses counts CASA cell solves that ran cold because no
// solved neighboring cell was available to donate a cutoff. Its twin
// casa_ilp_warm_cell_hits_total is counted at the solver, which sees
// every cutoff actually installed.
var mWarmCellMisses = obs.GetCounter("casa_ilp_warm_cell_misses_total")

// warmStore holds the solved cells of one suite.
type warmStore struct {
	mu    sync.Mutex
	cells map[suiteKey]*warmCell
}

// warmCell is one solved cell's allocation with the inputs needed to
// transfer it: the trace set it indexes, the conflict graph backing its
// energy valuation, its grid key (for deterministic donor ordering and
// partition gating) and the solver's transferable hot state.
type warmCell struct {
	key   suiteKey
	set   *trace.Set
	graph *conflict.Graph
	inSPM []bool
	hot   *ilp.HotStart
}

// record stores a cell's proven-optimal selection for later transfers.
func (w *warmStore) record(k suiteKey, set *trace.Set, g *conflict.Graph, inSPM []bool, hot *ilp.HotStart) {
	w.mu.Lock()
	if w.cells == nil {
		w.cells = make(map[suiteKey]*warmCell)
	}
	w.cells[k] = &warmCell{key: k, set: set, graph: g, inSPM: inSPM, hot: hot}
	w.mu.Unlock()
}

// neighbors returns the solved cells differing from k in exactly one
// grid parameter (cache configuration or scratchpad size) for the same
// workload, sorted by grid key so iteration order — and therefore any
// tie-break among equal-value donors — never depends on map order.
func (w *warmStore) neighbors(k suiteKey) []*warmCell {
	w.mu.Lock()
	var out []*warmCell
	for dk, c := range w.cells {
		if dk.name != k.name || dk == k {
			continue
		}
		cacheDiff := dk.cache != k.cache
		spmDiff := dk.spmSize != k.spmSize
		if cacheDiff != spmDiff { // exactly one differs
			out = append(out, c)
		}
	}
	w.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return keyLess(out[a].key, out[b].key) })
	return out
}

// keyLess orders grid keys deterministically (workload, scratchpad,
// cache geometry, policy).
func keyLess(a, b suiteKey) bool {
	if a.name != b.name {
		return a.name < b.name
	}
	if a.spmSize != b.spmSize {
		return a.spmSize < b.spmSize
	}
	if a.cache.Size != b.cache.Size {
		return a.cache.Size < b.cache.Size
	}
	if a.cache.Line != b.cache.Line {
		return a.cache.Line < b.cache.Line
	}
	if a.cache.Assoc != b.cache.Assoc {
		return a.cache.Assoc < b.cache.Assoc
	}
	return a.cache.Policy < b.cache.Policy
}

// warmCutoff values every solved neighbor's selection under the target
// cell's parameters and returns the tightest transferable cutoff. The
// cutoff is the minimum over donors, so it does not depend on the order
// cells happened to finish in. Alongside it, the planner picks a basis
// donor: among neighbors sharing the target's trace partition — same
// scratchpad capacity and line size fix the variable identities, so the
// donor's columns map by name — the one with the lowest transferred
// value donates its final simplex basis and pseudocosts (hot). Cells on
// a different partition (scratchpad-size neighbors) still donate
// cutoffs but no basis.
func (s *Suite) warmCutoff(p *Pipeline, params core.Params) (cut float64, hot *ilp.HotStart, found bool) {
	k := suiteKey{name: p.Workload, cache: p.Cache, spmSize: p.SPMSize}
	bestHot := 0.0
	for _, donor := range s.warm.neighbors(k) {
		sel := core.TransferAllocation(donor.set, donor.inSPM, p.Set, params)
		if sel == nil {
			continue
		}
		v := core.PredictEnergy(p.Set, p.Graph, params, sel)
		if !found || v < cut {
			cut, found = v, true
		}
		if donor.hot != nil && donor.key.spmSize == k.spmSize && donor.key.cache.Line == k.cache.Line &&
			(hot == nil || v < bestHot) {
			bestHot, hot = v, donor.hot
		}
	}
	return cut, hot, found
}

// TransferCutoff values a donor selection — from a pipeline over the
// same program under a different memory hierarchy — under this
// pipeline's parameters and returns it as a warm-start cutoff. It is
// the warmCutoff building block exported for callers with their own
// cross-pipeline warm stores (the serving daemon); ok is false when the
// donor does not transfer (different program).
func (p *Pipeline) TransferCutoff(donorSet *trace.Set, donorInSPM []bool) (float64, bool) {
	params := p.casaParams()
	sel := core.TransferAllocation(donorSet, donorInSPM, p.Set, params)
	if sel == nil {
		return 0, false
	}
	return core.PredictEnergy(p.Set, p.Graph, params, sel), true
}

// recordWarm publishes a cell's solved allocation as a donor for its
// neighbors. Only proven-optimal, non-degraded selections are recorded:
// a budget-degraded incumbent depends on wall-clock timing, and warm
// state must never introduce nondeterminism into what other cells do.
func (s *Suite) recordWarm(p *Pipeline, a *core.Allocation) {
	if a.Status != ilp.Optimal || a.Degraded || a.Fallback {
		return
	}
	k := suiteKey{name: p.Workload, cache: p.Cache, spmSize: p.SPMSize}
	s.warm.record(k, p.Set, p.Graph, a.InSPM, a.Hot)
}

// warmOrder returns the cell evaluation order for a grid whose i-th
// cell has scratchpad size sizes[i]: descending size, ties in index
// order. The largest scratchpad solves first because its ILP is the
// least constrained (cheapest cold), and every smaller cell then finds
// a solved donor; allocations for scratchpad k map into capacity k' < k
// after eviction repair, keeping transfers tight down the whole sweep.
func warmOrder(sizes []int) []int {
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return sizes[order[a]] > sizes[order[b]]
	})
	return order
}

// runCellsOrdered is runCells with an explicit evaluation order:
// order[k] is the cell index to run k-th. Results — and the indices
// inside a *parallel.GridError — are mapped back to cell order, so
// callers see the grid exactly as if it ran in natural order. With one
// worker the order is exactly the serial execution sequence; with more
// workers it is the submission order.
func runCellsOrdered[T any](ctx context.Context, s *Suite, order []int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	tmp, err := parallel.MapAll(ctx, len(order), s.Workers(),
		func(cctx context.Context, k int) (T, error) {
			i := order[k]
			cctx, sp := obs.StartSpan(cctx, "cell")
			defer sp.End()
			sp.SetAttr("index", i)
			return fn(cctx, i)
		})
	out := make([]T, len(order))
	for k, i := range order {
		if k < len(tmp) {
			out[i] = tmp[k]
		}
	}
	var ge *parallel.GridError
	if errors.As(err, &ge) {
		for _, ce := range ge.Failed {
			if ce.Index >= 0 && ce.Index < len(order) {
				ce.Index = order[ce.Index]
			}
		}
		sort.Slice(ge.Failed, func(a, b int) bool { return ge.Failed[a].Index < ge.Failed[b].Index })
		for k, i := range ge.Skipped {
			if i >= 0 && i < len(order) {
				ge.Skipped[k] = order[i]
			}
		}
		sort.Ints(ge.Skipped)
	}
	return out, err
}
