package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/placement"
)

// PlacementRow compares cache-conscious code placement ([10,14]-style
// reordering, no scratchpad) against CASA's scratchpad allocation for one
// configuration — how far does placement alone go?
type PlacementRow struct {
	Workload string
	SPMSize  int
	// Energies in µJ and misses for the four configurations.
	BaselineMicroJ  float64
	HotFirstMicroJ  float64
	ConflictMicroJ  float64
	CASAMicroJ      float64
	BaselineMisses  int64
	HotFirstMisses  int64
	ConflictMisses  int64
	CASAMisses      int64
	BestPlacementVs float64 // best placement's saving over baseline (%)
	CASAVs          float64 // CASA's saving over baseline (%)
}

// PlacementStudyConfig lists the configurations.
type PlacementStudyConfig struct {
	Rows []struct {
		Workload string
		Cache    CacheSpec
		SPMSize  int
	}
}

// DefaultPlacementStudy compares on each benchmark at its Table-1 cache.
func DefaultPlacementStudy() PlacementStudyConfig {
	cfg := PlacementStudyConfig{}
	add := func(w string, cache CacheSpec, spm int) {
		cfg.Rows = append(cfg.Rows, struct {
			Workload string
			Cache    CacheSpec
			SPMSize  int
		}{w, cache, spm})
	}
	add("adpcm", DM(128), 128)
	add("g721", DM(1024), 256)
	add("mpeg", DM(2048), 512)
	return cfg
}

// PlacementStudy runs the comparison, one worker per configuration.
func PlacementStudy(ctx context.Context, s *Suite, cfg PlacementStudyConfig) ([]PlacementRow, error) {
	return runCells(ctx, s, len(cfg.Rows), func(ctx context.Context, i int) (PlacementRow, error) {
		rc := cfg.Rows[i]
		p, err := s.Pipeline(ctx, rc.Workload, rc.Cache, rc.SPMSize)
		if err != nil {
			return PlacementRow{}, err
		}
		return placementRow(ctx, p)
	})
}

func placementRow(ctx context.Context, p *Pipeline) (PlacementRow, error) {
	base, err := p.RunCacheOnly(ctx)
	if err != nil {
		return PlacementRow{}, err
	}
	casa, err := p.RunCASA(ctx)
	if err != nil {
		return PlacementRow{}, err
	}
	shape := placement.CacheShape{
		Sets:      p.Cache.Size / (p.Cache.Line * p.Cache.Assoc),
		LineBytes: p.Cache.Line,
	}
	runOrdered := func(strategy placement.Strategy) (*memsim.Result, error) {
		order, err := placement.Order(p.Set, shape, strategy)
		if err != nil {
			return nil, err
		}
		lay, err := layout.NewOrdered(p.Set, order, layout.Options{})
		if err != nil {
			return nil, err
		}
		return memsim.Run(p.Prog, lay, memsim.Config{
			Cache: p.Cache.cacheConfig(),
			Cost:  p.Cost,
		})
	}
	hot, err := runOrdered(placement.HotFirst)
	if err != nil {
		return PlacementRow{}, err
	}
	conf, err := runOrdered(placement.ConflictAware)
	if err != nil {
		return PlacementRow{}, err
	}

	bestPlacement := hot.TotalEnergyMicroJ()
	if conf.TotalEnergyMicroJ() < bestPlacement {
		bestPlacement = conf.TotalEnergyMicroJ()
	}
	return PlacementRow{
		Workload:        p.Workload,
		SPMSize:         p.SPMSize,
		BaselineMicroJ:  base.EnergyMicroJ,
		HotFirstMicroJ:  hot.TotalEnergyMicroJ(),
		ConflictMicroJ:  conf.TotalEnergyMicroJ(),
		CASAMicroJ:      casa.EnergyMicroJ,
		BaselineMisses:  base.Result.CacheMisses,
		HotFirstMisses:  hot.CacheMisses,
		ConflictMisses:  conf.CacheMisses,
		CASAMisses:      casa.Result.CacheMisses,
		BestPlacementVs: 100 * (base.EnergyMicroJ - bestPlacement) / base.EnergyMicroJ,
		CASAVs:          100 * (base.EnergyMicroJ - casa.EnergyMicroJ) / base.EnergyMicroJ,
	}, nil
}

// WritePlacementStudy renders the study as a text table.
func WritePlacementStudy(w io.Writer, rows []PlacementRow) {
	fmt.Fprintln(w, "Placement study: cache-conscious reordering [10,14] vs. CASA's scratchpad")
	fmt.Fprintf(w, "%-10s %8s %12s %12s %14s %10s %14s %10s\n",
		"workload", "SPM(B)", "base(µJ)", "hot-1st(µJ)", "conflict(µJ)", "CASA(µJ)",
		"placement(%)", "CASA(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %12.2f %12.2f %14.2f %10.2f %14.1f %10.1f\n",
			r.Workload, r.SPMSize, r.BaselineMicroJ, r.HotFirstMicroJ, r.ConflictMicroJ,
			r.CASAMicroJ, r.BestPlacementVs, r.CASAVs)
	}
}
