package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/layout"
)

// DataRow compares scratchpad-allocation disciplines once data objects
// enter the picture (the paper's §7 future work, "preloading of data").
// The architecture has no data cache (Figure 1 shows only an I-cache), so
// every off-scratchpad data access goes off-chip — which is why data
// placement is so profitable and why the joint allocation must weigh code
// traces against data objects for the same capacity.
//
// Energies are totals in µJ: measured instruction-side energy from the
// hierarchy simulation plus the analytic data-side energy.
type DataRow struct {
	Workload string
	SPMSize  int
	// CodeOnlyMicroJ places only code (classic CASA; all data off-chip).
	CodeOnlyMicroJ float64
	// DataOnlyMicroJ places only data (Steinke-style data knapsack; all
	// code cached).
	DataOnlyMicroJ float64
	// JointMicroJ optimizes both sides together.
	JointMicroJ float64
	// JointCodeBytes / JointDataBytes split the joint occupancy.
	JointCodeBytes int
	JointDataBytes int
	// GainVsBestSinglePct is the joint allocation's saving over the better
	// of the two single-sided disciplines.
	GainVsBestSinglePct float64
}

// DataStudyConfig lists the configurations to compare.
type DataStudyConfig struct {
	Rows []struct {
		Workload string
		Cache    CacheSpec
		SPMSize  int
	}
}

// DefaultDataStudy compares the disciplines on each benchmark at its
// Table-1 cache with a mid-size scratchpad.
func DefaultDataStudy() DataStudyConfig {
	cfg := DataStudyConfig{}
	add := func(w string, cache CacheSpec, spm int) {
		cfg.Rows = append(cfg.Rows, struct {
			Workload string
			Cache    CacheSpec
			SPMSize  int
		}{w, cache, spm})
	}
	add("adpcm", DM(128), 256)
	add("g721", DM(1024), 256)
	add("mpeg", DM(2048), 512)
	return cfg
}

// DataStudy runs the comparison, one worker per configuration.
func DataStudy(ctx context.Context, s *Suite, cfg DataStudyConfig) ([]DataRow, error) {
	return runCells(ctx, s, len(cfg.Rows), func(ctx context.Context, i int) (DataRow, error) {
		rc := cfg.Rows[i]
		p, err := s.Pipeline(ctx, rc.Workload, rc.Cache, rc.SPMSize)
		if err != nil {
			return DataRow{}, err
		}
		return dataRow(ctx, p)
	})
}

func dataRow(ctx context.Context, p *Pipeline) (DataRow, error) {
	prm := core.DataParams{
		Params:    p.casaParams(),
		EMainData: energy.MainMemoryWord(),
	}
	data := p.Prog.Data
	accesses := core.DataAccessCounts(p.Prog, p.Prof)

	// (a) Code only: classic CASA; all data off-chip.
	codeOnly, err := p.RunCASA(ctx)
	if err != nil {
		return DataRow{}, err
	}
	noData := make([]bool, len(data))
	codeOnlyTotal := codeOnly.EnergyMicroJ + core.DataEnergy(data, accesses, noData, prm)/1000

	// (b) Data only: exact knapsack over data objects (each saves
	// accesses × (EMainData − ESPHit) per byte); code all cached.
	dataSel, err := core.DataOnlySelect(data, accesses, prm)
	if err != nil {
		return DataRow{}, err
	}
	cacheOnly, err := p.RunCacheOnly(ctx)
	if err != nil {
		return DataRow{}, err
	}
	dataOnlyTotal := cacheOnly.EnergyMicroJ + core.DataEnergy(data, accesses, dataSel, prm)/1000

	// (c) Joint ILP.
	joint, err := core.AllocateWithData(p.Set, p.Graph, data, accesses, prm)
	if err != nil {
		return DataRow{}, err
	}
	jointRun, err := p.RunSelection(ctx, "casa+data", joint.InSPM, layout.Copy)
	if err != nil {
		return DataRow{}, err
	}
	jointTotal := jointRun.EnergyMicroJ + core.DataEnergy(data, accesses, joint.DataInSPM, prm)/1000

	best := codeOnlyTotal
	if dataOnlyTotal < best {
		best = dataOnlyTotal
	}
	return DataRow{
		Workload:            p.Workload,
		SPMSize:             p.SPMSize,
		CodeOnlyMicroJ:      codeOnlyTotal,
		DataOnlyMicroJ:      dataOnlyTotal,
		JointMicroJ:         jointTotal,
		JointCodeBytes:      joint.CodeBytes,
		JointDataBytes:      joint.DataBytes,
		GainVsBestSinglePct: 100 * (best - jointTotal) / best,
	}, nil
}

// WriteDataStudy renders the study as a text table.
func WriteDataStudy(w io.Writer, rows []DataRow) {
	fmt.Fprintln(w, "Data study: code-only vs. data-only vs. joint scratchpad allocation (future work, §7)")
	fmt.Fprintf(w, "%-10s %8s %14s %14s %12s %14s %10s\n",
		"workload", "SPM(B)", "code-only(µJ)", "data-only(µJ)", "joint(µJ)", "split(code+data)", "gain(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %14.2f %14.2f %12.2f %10d+%-5d %8.1f\n",
			r.Workload, r.SPMSize, r.CodeOnlyMicroJ, r.DataOnlyMicroJ, r.JointMicroJ,
			r.JointCodeBytes, r.JointDataBytes, r.GainVsBestSinglePct)
	}
}
