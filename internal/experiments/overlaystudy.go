package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/energy"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/overlay"
	"repro/internal/workload"
)

// OverlayRow compares static CASA against the overlay extension for one
// configuration. Overlay energy includes the modelled scratchpad reload
// cost.
type OverlayRow struct {
	Workload string
	SPMSize  int
	Phases   int
	// Energies in µJ.
	StaticMicroJ  float64
	OverlayMicroJ float64
	CopyMicroJ    float64
	// GainPct is the overlay's saving over static CASA (negative when the
	// reload cost outweighs the extra capacity).
	GainPct float64
}

// OverlayStudyConfig lists the configurations to compare.
type OverlayStudyConfig struct {
	Rows []struct {
		Program *ir.Program
		Cache   CacheSpec
		SPMSize int
	}
}

// DefaultOverlayStudy compares the two allocation disciplines on the
// two-pass batch workload (where overlay should win: two temporally
// disjoint hot working sets, each scratchpad-sized) and on mpeg (where a
// single hot phase dominates and overlay should roughly tie).
func DefaultOverlayStudy() (OverlayStudyConfig, error) {
	cfg := OverlayStudyConfig{}
	add := func(p *ir.Program, cache CacheSpec, spm int) {
		cfg.Rows = append(cfg.Rows, struct {
			Program *ir.Program
			Cache   CacheSpec
			SPMSize int
		}{p, cache, spm})
	}
	two, err := workload.TwoPass()
	if err != nil {
		return cfg, err
	}
	mpeg, err := workload.Shared("mpeg")
	if err != nil {
		return cfg, err
	}
	add(two, DM(256), 192)
	add(two, DM(256), 256)
	add(mpeg, DM(2048), 256)
	return cfg, nil
}

// OverlayStudy runs the comparison, one worker per configuration.
func OverlayStudy(ctx context.Context, s *Suite, cfg OverlayStudyConfig) ([]OverlayRow, error) {
	return runCells(ctx, s, len(cfg.Rows), func(ctx context.Context, i int) (OverlayRow, error) {
		rc := cfg.Rows[i]
		return overlayRow(ctx, rc.Program, rc.Cache, rc.SPMSize)
	})
}

func overlayRow(ctx context.Context, prog *ir.Program, cacheSpec CacheSpec, spmSize int) (OverlayRow, error) {
	pipe, err := PrepareProgram(ctx, prog, cacheSpec, spmSize)
	if err != nil {
		return OverlayRow{}, err
	}
	static, err := pipe.RunCASA(ctx)
	if err != nil {
		return OverlayRow{}, err
	}

	phases, err := overlay.Discover(prog, pipe.Set)
	if err != nil {
		return OverlayRow{}, err
	}
	prm := overlay.Params{
		SPMSize:       spmSize,
		ESPHit:        pipe.Cost.SPMAccess,
		ECacheHit:     pipe.Cost.CacheHit,
		ECacheMiss:    pipe.Cost.CacheMiss,
		CopySetupNJ:   25,
		CopyPerWordNJ: energy.MainMemoryWord() + pipe.Cost.SPMAccess,
	}
	alloc, err := overlay.Allocate(pipe.Set, pipe.Graph, phases, prm)
	if err != nil {
		return OverlayRow{}, err
	}
	phaseVec, numImages := overlay.LayoutPhases(pipe.Set, alloc, phases)
	lay, err := layout.NewOverlay(pipe.Set, phaseVec, numImages, layout.Options{
		Mode: layout.Copy, SPMSize: spmSize,
	})
	if err != nil {
		return OverlayRow{}, err
	}
	res, err := memsim.Run(prog, lay, memsim.Config{
		Cache: pipe.Cache.cacheConfig(),
		Cost:  pipe.Cost,
	})
	if err != nil {
		return OverlayRow{}, err
	}
	copyMicroJ := alloc.CopyEnergyNJ / 1000
	overlayMicroJ := res.TotalEnergyMicroJ() + copyMicroJ
	return OverlayRow{
		Workload:      prog.Name,
		SPMSize:       spmSize,
		Phases:        phases.NumPhases(),
		StaticMicroJ:  static.EnergyMicroJ,
		OverlayMicroJ: overlayMicroJ,
		CopyMicroJ:    copyMicroJ,
		GainPct:       100 * (static.EnergyMicroJ - overlayMicroJ) / static.EnergyMicroJ,
	}, nil
}

// WriteOverlayStudy renders the study as a text table.
func WriteOverlayStudy(w io.Writer, rows []OverlayRow) {
	fmt.Fprintln(w, "Overlay study: static CASA vs. phased scratchpad reloading (future work, §7)")
	fmt.Fprintf(w, "%-10s %8s %8s %12s %13s %11s %9s\n",
		"workload", "SPM(B)", "phases", "static(µJ)", "overlay(µJ)", "copies(µJ)", "gain(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %8d %12.2f %13.2f %11.2f %9.1f\n",
			r.Workload, r.SPMSize, r.Phases, r.StaticMicroJ, r.OverlayMicroJ,
			r.CopyMicroJ, r.GainPct)
	}
}
