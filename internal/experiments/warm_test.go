package experiments

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// renderWarmSensitiveStudies renders the two grids the warm planner
// reorders most aggressively — fig4 (scratchpad sweep) and sensitivity
// (cache-organization sweep) — with only allocation-determined fields.
func renderWarmSensitiveStudies(t *testing.T, s *Suite) []byte {
	t.Helper()
	ctx := context.Background()
	var buf bytes.Buffer
	fig4cfg := DefaultFig4()
	fig4, err := Fig4(ctx, s, fig4cfg)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	WriteFig4(&buf, fig4cfg, fig4)
	senscfg := DefaultSensitivity()
	sens, err := Sensitivity(ctx, s, senscfg)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	WriteSensitivity(&buf, senscfg, sens)
	return buf.Bytes()
}

// TestWarmMatchesColdStudies is the central exactness contract of the
// incremental machinery: the warm path (cross-cell cutoffs, shared
// presolve session, rebased conflict graphs, factored LP engine) must
// produce byte-identical study output to the legacy cold path
// (CASA_INCREMENTAL=off, which restores the pre-incremental code
// paths bit for bit).
func TestWarmMatchesColdStudies(t *testing.T) {
	if raceEnabled {
		t.Skip("full warm-vs-cold sweep is too heavy under the race detector")
	}
	if testing.Short() {
		t.Skip("warm-vs-cold sweep skipped in -short mode")
	}
	t.Setenv("CASA_INCREMENTAL", "off")
	cold := renderWarmSensitiveStudies(t, NewSuite().SetWorkers(1))
	t.Setenv("CASA_INCREMENTAL", "on")
	warm := renderWarmSensitiveStudies(t, NewSuite().SetWorkers(1))
	if !bytes.Equal(warm, cold) {
		t.Fatalf("warm studies diverged from cold studies.\n--- warm ---\n%s\n--- cold ---\n%s", warm, cold)
	}
}

// TestFig4PermutedOrderInvariant is the order-independence property:
// whatever order the grid's cells are evaluated in — natural
// (smallest first), warm (largest first), or random permutations where
// consecutive cells are often not grid neighbors — the rows are
// identical. Cell order may change which solves find donors (and so the
// hit/miss counters), but donated cutoffs never change an answer.
func TestFig4PermutedOrderInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("permutation sweep skipped in -short mode")
	}
	ctx := context.Background()
	cfg := DefaultFig4()
	want, err := Fig4(ctx, NewSuite().SetWorkers(1), cfg)
	if err != nil {
		t.Fatalf("reference Fig4: %v", err)
	}
	n := len(cfg.SPMSizes)
	orders := [][]int{{0, 1, 2, 3}, {3, 1, 0, 2}}
	rng := rand.New(rand.NewSource(0x0F0F))
	perms := 3
	if raceEnabled {
		perms = 1
	}
	for p := 0; p < perms; p++ {
		orders = append(orders, rng.Perm(n))
	}
	for _, order := range orders {
		got, err := fig4Ordered(ctx, NewSuite().SetWorkers(1), cfg, order)
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("order %v: row %d diverged:\n got %+v\nwant %+v", order, i, got[i], want[i])
			}
		}
	}
}

// TestSensitivityPermutedOrderInvariant is the order-independence
// property for the cache-organization sweep, where most cells share one
// trace partition and therefore exchange simplex bases and pseudocosts,
// not just cutoffs (warmplan.go): whatever order the cells run in, the
// rows are identical. It also pins down that basis transfer actually
// fires on this grid — the serial natural-order sweep must install at
// least one donor basis, or the property test would be vacuously
// passing on a cold path.
func TestSensitivityPermutedOrderInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("permutation sweep skipped in -short mode")
	}
	ctx := context.Background()
	cfg := DefaultSensitivity()
	reuseBefore := obs.GetCounter("casa_ilp_basis_reuse_total").Value()
	want, err := Sensitivity(ctx, NewSuite().SetWorkers(1), cfg)
	if err != nil {
		t.Fatalf("reference Sensitivity: %v", err)
	}
	if got := obs.GetCounter("casa_ilp_basis_reuse_total").Value(); got == reuseBefore {
		t.Errorf("serial sensitivity sweep installed no donor basis (casa_ilp_basis_reuse_total unchanged at %d)", got)
	}
	n := len(cfg.Variants)
	orders := [][]int{{6, 5, 4, 3, 2, 1, 0}, {3, 0, 6, 1, 4, 2, 5}}
	rng := rand.New(rand.NewSource(0x5EED))
	perms := 2
	if raceEnabled {
		perms = 1
	}
	for p := 0; p < perms; p++ {
		orders = append(orders, rng.Perm(n))
	}
	for _, order := range orders {
		got, err := sensitivityOrdered(ctx, NewSuite().SetWorkers(1), cfg, order)
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("order %v: row %d diverged:\n got %+v\nwant %+v", order, i, got[i], want[i])
			}
		}
	}
}

// TestSensitivityConcurrentWarmStress runs the sensitivity sweep with
// many workers sharing one suite and checks the rows still match the
// serial run: with several cells of one trace partition in flight at
// once, which donor basis a cell receives depends on scheduling, and
// none of that may leak into results.
func TestSensitivityConcurrentWarmStress(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent sensitivity sweep skipped in -short mode")
	}
	ctx := context.Background()
	cfg := DefaultSensitivity()
	want, err := Sensitivity(ctx, NewSuite().SetWorkers(1), cfg)
	if err != nil {
		t.Fatalf("serial Sensitivity: %v", err)
	}
	rounds := 2
	if raceEnabled {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		got, err := Sensitivity(ctx, NewSuite().SetWorkers(8), cfg)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("round %d: row %d diverged under concurrency:\n got %+v\nwant %+v", r, i, got[i], want[i])
			}
		}
	}
}

// TestFig4ConcurrentWarmStress runs the grid with many workers sharing
// one suite — one presolve session, one warm store, one conflict-graph
// store — and checks the rows still match the serial run. Under the
// race detector this doubles as the data-race gate on the shared
// incremental state.
func TestFig4ConcurrentWarmStress(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultFig4()
	want, err := Fig4(ctx, NewSuite().SetWorkers(1), cfg)
	if err != nil {
		t.Fatalf("serial Fig4: %v", err)
	}
	rounds := 3
	if raceEnabled || testing.Short() {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		got, err := Fig4(ctx, NewSuite().SetWorkers(8), cfg)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("round %d: row %d diverged under concurrency:\n got %+v\nwant %+v", r, i, got[i], want[i])
			}
		}
	}
}
