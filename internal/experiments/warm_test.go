package experiments

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// renderWarmSensitiveStudies renders the two grids the warm planner
// reorders most aggressively — fig4 (scratchpad sweep) and sensitivity
// (cache-organization sweep) — with only allocation-determined fields.
func renderWarmSensitiveStudies(t *testing.T, s *Suite) []byte {
	t.Helper()
	ctx := context.Background()
	var buf bytes.Buffer
	fig4cfg := DefaultFig4()
	fig4, err := Fig4(ctx, s, fig4cfg)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	WriteFig4(&buf, fig4cfg, fig4)
	senscfg := DefaultSensitivity()
	sens, err := Sensitivity(ctx, s, senscfg)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	WriteSensitivity(&buf, senscfg, sens)
	return buf.Bytes()
}

// TestWarmMatchesColdStudies is the central exactness contract of the
// incremental machinery: the warm path (cross-cell cutoffs, shared
// presolve session, rebased conflict graphs, factored LP engine) must
// produce byte-identical study output to the legacy cold path
// (CASA_INCREMENTAL=off, which restores the pre-incremental code
// paths bit for bit).
func TestWarmMatchesColdStudies(t *testing.T) {
	if raceEnabled {
		t.Skip("full warm-vs-cold sweep is too heavy under the race detector")
	}
	if testing.Short() {
		t.Skip("warm-vs-cold sweep skipped in -short mode")
	}
	t.Setenv("CASA_INCREMENTAL", "off")
	cold := renderWarmSensitiveStudies(t, NewSuite().SetWorkers(1))
	t.Setenv("CASA_INCREMENTAL", "on")
	warm := renderWarmSensitiveStudies(t, NewSuite().SetWorkers(1))
	if !bytes.Equal(warm, cold) {
		t.Fatalf("warm studies diverged from cold studies.\n--- warm ---\n%s\n--- cold ---\n%s", warm, cold)
	}
}

// TestFig4PermutedOrderInvariant is the order-independence property:
// whatever order the grid's cells are evaluated in — natural
// (smallest first), warm (largest first), or random permutations where
// consecutive cells are often not grid neighbors — the rows are
// identical. Cell order may change which solves find donors (and so the
// hit/miss counters), but donated cutoffs never change an answer.
func TestFig4PermutedOrderInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("permutation sweep skipped in -short mode")
	}
	ctx := context.Background()
	cfg := DefaultFig4()
	want, err := Fig4(ctx, NewSuite().SetWorkers(1), cfg)
	if err != nil {
		t.Fatalf("reference Fig4: %v", err)
	}
	n := len(cfg.SPMSizes)
	orders := [][]int{{0, 1, 2, 3}, {3, 1, 0, 2}}
	rng := rand.New(rand.NewSource(0x0F0F))
	perms := 3
	if raceEnabled {
		perms = 1
	}
	for p := 0; p < perms; p++ {
		orders = append(orders, rng.Perm(n))
	}
	for _, order := range orders {
		got, err := fig4Ordered(ctx, NewSuite().SetWorkers(1), cfg, order)
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("order %v: row %d diverged:\n got %+v\nwant %+v", order, i, got[i], want[i])
			}
		}
	}
}

// TestFig4ConcurrentWarmStress runs the grid with many workers sharing
// one suite — one presolve session, one warm store, one conflict-graph
// store — and checks the rows still match the serial run. Under the
// race detector this doubles as the data-race gate on the shared
// incremental state.
func TestFig4ConcurrentWarmStress(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultFig4()
	want, err := Fig4(ctx, NewSuite().SetWorkers(1), cfg)
	if err != nil {
		t.Fatalf("serial Fig4: %v", err)
	}
	rounds := 3
	if raceEnabled || testing.Short() {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		got, err := Fig4(ctx, NewSuite().SetWorkers(8), cfg)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("round %d: row %d diverged under concurrency:\n got %+v\nwant %+v", r, i, got[i], want[i])
			}
		}
	}
}
