package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/layout"
	"repro/internal/memsim"
)

// fastPipeline prepares the small adpcm configuration used by most tests;
// its ILPs solve in milliseconds.
func fastPipeline(t *testing.T, spm int) *Pipeline {
	t.Helper()
	p, err := Prepare(context.Background(), "adpcm", DM(128), spm)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

func TestPrepareBuildsConsistentPipeline(t *testing.T) {
	p := fastPipeline(t, 128)
	if p.Workload != "adpcm" || p.SPMSize != 128 {
		t.Errorf("pipeline identity wrong: %s/%d", p.Workload, p.SPMSize)
	}
	if p.Set == nil || p.Graph == nil || p.Baseline == nil {
		t.Fatal("pipeline incomplete")
	}
	if p.Graph.N() != len(p.Set.Traces) {
		t.Errorf("graph has %d vertices, %d traces", p.Graph.N(), len(p.Set.Traces))
	}
	// Graph totals match the profiling run's conflict misses.
	if p.Graph.TotalConflictMisses() != p.Baseline.ConflictMisses {
		t.Errorf("graph misses %d, run reported %d",
			p.Graph.TotalConflictMisses(), p.Baseline.ConflictMisses)
	}
	// f_i matches the simulated per-MO fetches.
	for i, tr := range p.Set.Traces {
		if p.Baseline.PerMO[i].Fetches != tr.Fetches {
			t.Errorf("trace %d: f_i %d vs simulated %d", i, tr.Fetches, p.Baseline.PerMO[i].Fetches)
		}
	}
}

func TestPrepareUnknownWorkload(t *testing.T) {
	if _, err := Prepare(context.Background(), "nope", DM(128), 64); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSuiteMemoizes(t *testing.T) {
	s := NewSuite()
	a, err := s.Pipeline(context.Background(), "adpcm", DM(128), 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Pipeline(context.Background(), "adpcm", DM(128), 64)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("suite did not memoize")
	}
	c, err := s.Pipeline(context.Background(), "adpcm", DM(128), 128)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("distinct configurations shared a pipeline")
	}
}

func TestCASAOutcomeInvariants(t *testing.T) {
	p := fastPipeline(t, 128)
	casa, err := p.RunCASA(context.Background())
	if err != nil {
		t.Fatalf("RunCASA: %v", err)
	}
	if casa.Allocator != "casa" {
		t.Errorf("allocator = %q", casa.Allocator)
	}
	if casa.UsedBytes > p.SPMSize {
		t.Errorf("allocation exceeds SPM: %d > %d", casa.UsedBytes, p.SPMSize)
	}
	if math.Abs(casa.EnergyMicroJ-casa.Result.TotalEnergyMicroJ()) > 1e-9 {
		t.Error("energy field inconsistent with result")
	}
	// Total fetches preserved vs. the baseline run.
	if casa.Result.Fetches != p.Baseline.Fetches {
		t.Errorf("fetches changed: %d vs %d", casa.Result.Fetches, p.Baseline.Fetches)
	}
	// SPM accesses equal the f_i of the placed traces... which we can
	// bound: at least one hot trace placed means SPM accesses > 0.
	if casa.PlacedTraces > 0 && casa.Result.SPMAccesses == 0 {
		t.Error("placed traces but no SPM accesses")
	}
}

func TestCASANeverWorseThanCacheOnly(t *testing.T) {
	for _, spm := range []int{64, 128, 256} {
		p := fastPipeline(t, spm)
		casa, err := p.RunCASA(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		base, err := p.RunCacheOnly(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// Copy semantics: an empty selection reproduces the baseline, so
		// the optimum can only improve (tiny numerical slack).
		if casa.EnergyMicroJ > base.EnergyMicroJ*1.001 {
			t.Errorf("spm %d: CASA %0.2fµJ worse than cache-only %0.2fµJ",
				spm, casa.EnergyMicroJ, base.EnergyMicroJ)
		}
	}
}

func TestSteinkeAndLoopCacheRun(t *testing.T) {
	p := fastPipeline(t, 128)
	st, err := p.RunSteinke(context.Background())
	if err != nil {
		t.Fatalf("RunSteinke: %v", err)
	}
	if st.UsedBytes > p.SPMSize {
		t.Error("knapsack overflow")
	}
	lc, err := p.RunLoopCache(context.Background())
	if err != nil {
		t.Fatalf("RunLoopCache: %v", err)
	}
	if lc.UsedBytes > p.SPMSize {
		t.Error("loop cache overflow")
	}
	if lc.PlacedTraces > LoopCacheEntries {
		t.Errorf("loop cache preloaded %d regions", lc.PlacedTraces)
	}
	if lc.Result.LoopCacheAccesses == 0 {
		t.Error("loop cache never hit; preloading is broken")
	}
	// Loop-cache controller energy must be accounted on every fetch.
	if lc.Result.Energy.LoopCacheController <= 0 {
		t.Error("controller energy missing")
	}
}

func TestGreedyVariantRuns(t *testing.T) {
	p := fastPipeline(t, 128)
	gr, err := p.RunCASAGreedy(context.Background())
	if err != nil {
		t.Fatalf("RunCASAGreedy: %v", err)
	}
	if gr.UsedBytes > p.SPMSize {
		t.Error("greedy overflow")
	}
}

func TestFig4SmallConfig(t *testing.T) {
	s := NewSuite()
	cfg := Fig4Config{Workload: "adpcm", Cache: DM(128), SPMSizes: []int{64, 128}}
	rows, err := Fig4(context.Background(), s, cfg)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.EnergyPct <= 0 || r.CASAEnergyMicroJ <= 0 || r.SteinkeEnergyMicroJ <= 0 {
			t.Errorf("implausible row %+v", r)
		}
		want := 100 * r.CASAEnergyMicroJ / r.SteinkeEnergyMicroJ
		if math.Abs(r.EnergyPct-want) > 1e-6 {
			t.Errorf("energy pct inconsistent: %g vs %g", r.EnergyPct, want)
		}
	}
	var sb strings.Builder
	WriteFig4(&sb, cfg, rows)
	if !strings.Contains(sb.String(), "Figure 4") || !strings.Contains(sb.String(), "adpcm") {
		t.Errorf("render missing headers:\n%s", sb.String())
	}
}

func TestFig5SmallConfig(t *testing.T) {
	s := NewSuite()
	cfg := Fig5Config{Workload: "adpcm", Cache: DM(128), Sizes: []int{64, 128}}
	rows, err := Fig5(context.Background(), s, cfg)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.CASAEnergyMicroJ <= 0 || r.LCEnergyMicroJ <= 0 {
			t.Errorf("implausible row %+v", r)
		}
	}
	var sb strings.Builder
	WriteFig5(&sb, cfg, rows)
	if !strings.Contains(sb.String(), "Figure 5") {
		t.Error("render missing header")
	}
}

func TestTable1SmallConfig(t *testing.T) {
	s := NewSuite()
	cfg := Table1Config{Benchmarks: []Table1Benchmark{
		{Workload: "adpcm", Cache: DM(128), MemSizes: []int{64, 128}},
	}}
	rows, avgs, err := Table1(context.Background(), s, cfg)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 2 || len(avgs) != 1 {
		t.Fatalf("rows=%d avgs=%d", len(rows), len(avgs))
	}
	wantAvg := (rows[0].CASAvsSteinkePct + rows[1].CASAvsSteinkePct) / 2
	if math.Abs(avgs[0].CASAvsSteinkePct-wantAvg) > 1e-9 {
		t.Errorf("average wrong: %g vs %g", avgs[0].CASAvsSteinkePct, wantAvg)
	}
	var sb strings.Builder
	WriteTable1(&sb, rows, avgs)
	out := sb.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "avg") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestAblateCopyVsMove(t *testing.T) {
	p := fastPipeline(t, 128)
	r, err := AblateCopyVsMove(context.Background(), p)
	if err != nil {
		t.Fatalf("AblateCopyVsMove: %v", err)
	}
	if r.CopyMicroJ <= 0 || r.MoveMicroJ <= 0 {
		t.Errorf("implausible energies: %+v", r)
	}
	// The two placements differ; identical results would mean the move
	// semantics are not being exercised (unless nothing was selected).
	if r.CopyMicroJ == r.MoveMicroJ && r.CopyMisses == r.MoveMisses {
		t.Logf("copy and move coincided (empty selection?): %+v", r)
	}
}

func TestAblateLinearizationAgrees(t *testing.T) {
	p := fastPipeline(t, 128)
	r, err := AblateLinearization(context.Background(), p)
	if err != nil {
		t.Fatalf("AblateLinearization: %v", err)
	}
	if math.Abs(r.TightEnergy-r.FaithfulEnergy) > 1e-6*math.Max(1, r.TightEnergy) {
		t.Errorf("formulations disagree: tight %g vs faithful %g",
			r.TightEnergy, r.FaithfulEnergy)
	}
	if r.TightNodes <= 0 || r.FaithfulNodes <= 0 {
		t.Errorf("node counts missing: %+v", r)
	}
}

func TestAblateGreedyVsILP(t *testing.T) {
	p := fastPipeline(t, 128)
	r, err := AblateGreedyVsILP(context.Background(), p)
	if err != nil {
		t.Fatalf("AblateGreedyVsILP: %v", err)
	}
	if r.GreedyPredicted < r.ILPPredicted-1e-6 {
		t.Errorf("greedy predicted %g beats ILP %g — optimality broken",
			r.GreedyPredicted, r.ILPPredicted)
	}
}

func TestSensitivitySmallConfig(t *testing.T) {
	s := NewSuite()
	cfg := SensitivityConfig{
		Workload: "adpcm",
		SPMSize:  128,
		Variants: []CacheSpec{DM(128), {Size: 128, Line: 16, Assoc: 2}},
		Labels:   []string{"dm", "2-way"},
	}
	rows, err := Sensitivity(context.Background(), s, cfg)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.CASAMicroJ <= 0 || r.BaseMicroJ <= 0 {
			t.Errorf("implausible row %+v", r)
		}
		// CASA never loses to the cache-only baseline (copy semantics).
		if r.CASAvsBasePct < -0.1 {
			t.Errorf("%s: CASA worse than baseline by %.1f%%", r.Label, -r.CASAvsBasePct)
		}
	}
	var sb strings.Builder
	WriteSensitivity(&sb, cfg, rows)
	if !strings.Contains(sb.String(), "sensitivity") && !strings.Contains(sb.String(), "Hierarchy") {
		t.Errorf("render missing header:\n%s", sb.String())
	}
	// Mismatched labels rejected.
	bad := cfg
	bad.Labels = bad.Labels[:1]
	if _, err := Sensitivity(context.Background(), s, bad); err == nil {
		t.Error("mismatched labels accepted")
	}
}

// TestPaperShapeAdpcm asserts the headline claim on the fast benchmark: at
// the paper's adpcm configuration (128B cache), CASA beats the loop cache
// on average across sizes, and beats Steinke at the larger sizes.
func TestPaperShapeAdpcm(t *testing.T) {
	s := NewSuite()
	cfg := Table1Config{Benchmarks: []Table1Benchmark{
		{Workload: "adpcm", Cache: DM(128), MemSizes: []int{64, 128, 256}},
	}}
	_, avgs, err := Table1(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if avgs[0].CASAvsSteinkePct <= 0 {
		t.Errorf("CASA vs Steinke average %.1f%%, want positive", avgs[0].CASAvsSteinkePct)
	}
	if avgs[0].CASAvsLCPct <= 0 {
		t.Errorf("CASA vs loop cache average %.1f%%, want positive", avgs[0].CASAvsLCPct)
	}
}

func TestWCETStudySmallConfig(t *testing.T) {
	s := NewSuite()
	cfg := WCETStudyConfig{}
	cfg.Rows = append(cfg.Rows, struct {
		Workload string
		Cache    CacheSpec
		SPMSize  int
	}{"adpcm", DM(128), 128})
	rows, err := WCETStudy(context.Background(), s, cfg)
	if err != nil {
		t.Fatalf("WCETStudy: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	// Bounds dominate observations, and CASA tightens the bound.
	if r.CacheOnlyBound < r.CacheOnlyObserved {
		t.Errorf("cache bound %d below observed %d", r.CacheOnlyBound, r.CacheOnlyObserved)
	}
	if r.CASABound < r.CASAObserved {
		t.Errorf("CASA bound %d below observed %d", r.CASABound, r.CASAObserved)
	}
	if r.CASABound >= r.CacheOnlyBound {
		t.Errorf("CASA did not tighten: %d vs %d", r.CASABound, r.CacheOnlyBound)
	}
	if r.TighteningPct <= 0 {
		t.Errorf("tightening %.1f%%", r.TighteningPct)
	}
	var sb strings.Builder
	WriteWCETStudy(&sb, rows)
	if !strings.Contains(sb.String(), "WCET study") {
		t.Error("render missing header")
	}
}

func TestOverlayStudyShape(t *testing.T) {
	ocfg, err := DefaultOverlayStudy()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := OverlayStudy(context.Background(), NewSuite(), ocfg)
	if err != nil {
		t.Fatalf("OverlayStudy: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The two-pass workload has multiple phases and overlay must win
	// decisively there; mpeg collapses to one phase and must roughly tie.
	for _, r := range rows {
		switch r.Workload {
		case "twopass":
			if r.Phases < 2 {
				t.Errorf("twopass discovered %d phases", r.Phases)
			}
			if r.GainPct < 10 {
				t.Errorf("twopass overlay gain %.1f%%, want decisive win", r.GainPct)
			}
		case "mpeg":
			if r.GainPct > 5 || r.GainPct < -5 {
				t.Errorf("mpeg overlay gain %.1f%%, want rough tie", r.GainPct)
			}
		}
		if r.CopyMicroJ < 0 {
			t.Errorf("%s: negative copy energy", r.Workload)
		}
	}
	var sb strings.Builder
	WriteOverlayStudy(&sb, rows)
	if !strings.Contains(sb.String(), "Overlay study") {
		t.Error("render missing header")
	}
}

func TestDataStudyShape(t *testing.T) {
	s := NewSuite()
	cfg := DataStudyConfig{}
	cfg.Rows = append(cfg.Rows, struct {
		Workload string
		Cache    CacheSpec
		SPMSize  int
	}{"adpcm", DM(128), 256})
	rows, err := DataStudy(context.Background(), s, cfg)
	if err != nil {
		t.Fatalf("DataStudy: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	// The joint optimum can never lose to either single-sided discipline
	// under the shared model (it contains both as special cases).
	if r.JointMicroJ > r.CodeOnlyMicroJ*1.001 {
		t.Errorf("joint %.2f worse than code-only %.2f", r.JointMicroJ, r.CodeOnlyMicroJ)
	}
	if r.JointMicroJ > r.DataOnlyMicroJ*1.001 {
		t.Errorf("joint %.2f worse than data-only %.2f", r.JointMicroJ, r.DataOnlyMicroJ)
	}
	if r.JointCodeBytes+r.JointDataBytes > 256 {
		t.Errorf("joint allocation over capacity: %d+%d", r.JointCodeBytes, r.JointDataBytes)
	}
	var sb strings.Builder
	WriteDataStudy(&sb, rows)
	if !strings.Contains(sb.String(), "Data study") {
		t.Error("render missing header")
	}
}

// TestL2ClaimHolds verifies the paper's §4 remark: "If we had I-caches at
// different levels (e.g. L1, L2) in the memory hierarchy, we need not do
// anything, as the algorithm tries to minimize the L1 I-cache misses. The
// L2 I-cache misses, being a subset of the L1 I-cache misses, are thus
// also minimized." The CASA selection is computed exactly as for the
// single-level hierarchy, then evaluated under L1+L2.
func TestL2ClaimHolds(t *testing.T) {
	p := fastPipeline(t, 128) // adpcm, 128B L1
	alloc, err := core.Allocate(context.Background(), p.Set, p.Graph, p.casaParams())
	if err != nil {
		t.Fatal(err)
	}
	l1 := cache.Config{SizeBytes: 128, LineBytes: 16, Assoc: 1}
	l2 := cache.Config{SizeBytes: 1024, LineBytes: 16, Assoc: 2}
	cost := mustCost(t, energy.Config{
		Cache:    energy.CacheGeometry{SizeBytes: 128, LineBytes: 16, Assoc: 1},
		L2:       energy.CacheGeometry{SizeBytes: 1024, LineBytes: 16, Assoc: 2},
		SPMBytes: 128,
	})
	run := func(inSPM []bool) *memsim.Result {
		lay, err := layout.New(p.Set, inSPM, layout.Options{Mode: layout.Copy, SPMSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		res, err := memsim.Run(p.Prog, lay, memsim.Config{Cache: l1, L2: l2, Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	casa := run(alloc.InSPM)
	if casa.CacheMisses >= base.CacheMisses {
		t.Errorf("CASA did not cut L1 misses under L1+L2: %d vs %d",
			casa.CacheMisses, base.CacheMisses)
	}
	if casa.L2Misses > base.L2Misses {
		t.Errorf("CASA increased L2 misses: %d vs %d", casa.L2Misses, base.L2Misses)
	}
	if casa.TotalEnergyNJ() >= base.TotalEnergyNJ() {
		t.Errorf("CASA did not cut two-level energy: %g vs %g",
			casa.TotalEnergyNJ(), base.TotalEnergyNJ())
	}
}

func TestDefaultConfigsWellFormed(t *testing.T) {
	if cfg := DefaultFig4(); cfg.Workload != "mpeg" || len(cfg.SPMSizes) != 4 {
		t.Errorf("DefaultFig4 = %+v", cfg)
	}
	if cfg := DefaultFig5(); cfg.Workload != "mpeg" || len(cfg.Sizes) != 4 {
		t.Errorf("DefaultFig5 = %+v", cfg)
	}
	if cfg := DefaultTable1(); len(cfg.Benchmarks) != 3 {
		t.Errorf("DefaultTable1 has %d benchmarks", len(cfg.Benchmarks))
	}
	if cfg := DefaultSensitivity(); len(cfg.Variants) != len(cfg.Labels) || len(cfg.Variants) != 7 {
		t.Errorf("DefaultSensitivity shape: %d/%d", len(cfg.Variants), len(cfg.Labels))
	}
	if cfg := DefaultWCETStudy(); len(cfg.Rows) != 3 {
		t.Errorf("DefaultWCETStudy has %d rows", len(cfg.Rows))
	}
	if cfg, err := DefaultOverlayStudy(); err != nil || len(cfg.Rows) != 3 {
		t.Errorf("DefaultOverlayStudy has %d rows (err %v)", len(cfg.Rows), err)
	}
	if cfg := DefaultDataStudy(); len(cfg.Rows) != 3 {
		t.Errorf("DefaultDataStudy has %d rows", len(cfg.Rows))
	}
}

func TestPipelineRunSelectionMatchesCASA(t *testing.T) {
	// RunSelection with the CASA selection must reproduce RunCASA exactly.
	p := fastPipeline(t, 128)
	casa, err := p.RunCASA(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	inSPM := make([]bool, len(p.Set.Traces))
	for _, tr := range p.Set.Traces {
		if casa.Result.PerMO[tr.ID].SPM > 0 {
			inSPM[tr.ID] = true
		}
	}
	again, err := p.RunSelection(context.Background(), "replay", inSPM, layout.Copy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(again.EnergyMicroJ-casa.EnergyMicroJ) > 1e-9 {
		t.Errorf("replay %.4f µJ != casa %.4f µJ", again.EnergyMicroJ, casa.EnergyMicroJ)
	}
}

// TestPipelineDeterminism: two independently-prepared pipelines for the
// same configuration must agree bit-for-bit on every reported number —
// the property all experiment reproducibility rests on.
func TestPipelineDeterminism(t *testing.T) {
	a := fastPipeline(t, 128)
	b := fastPipeline(t, 128)
	if a.Baseline.CacheMisses != b.Baseline.CacheMisses ||
		a.Baseline.TotalEnergyNJ() != b.Baseline.TotalEnergyNJ() {
		t.Fatal("profiling runs differ")
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() ||
		a.Graph.TotalConflictMisses() != b.Graph.TotalConflictMisses() {
		t.Fatal("conflict graphs differ")
	}
	ra, err := a.RunCASA(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunCASA(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ra.EnergyMicroJ != rb.EnergyMicroJ || ra.UsedBytes != rb.UsedBytes {
		t.Fatalf("CASA runs differ: %.6f/%d vs %.6f/%d",
			ra.EnergyMicroJ, ra.UsedBytes, rb.EnergyMicroJ, rb.UsedBytes)
	}
}

func TestPlacementStudyShape(t *testing.T) {
	s := NewSuite()
	cfg := PlacementStudyConfig{}
	cfg.Rows = append(cfg.Rows, struct {
		Workload string
		Cache    CacheSpec
		SPMSize  int
	}{"adpcm", DM(128), 128})
	rows, err := PlacementStudy(context.Background(), s, cfg)
	if err != nil {
		t.Fatalf("PlacementStudy: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.BaselineMicroJ <= 0 || r.CASAMicroJ <= 0 {
		t.Errorf("implausible energies: %+v", r)
	}
	// CASA (which can also exploit the scratchpad) must beat pure
	// placement on these workloads.
	if r.CASAVs <= r.BestPlacementVs {
		t.Errorf("CASA %.1f%% should beat placement %.1f%%", r.CASAVs, r.BestPlacementVs)
	}
	var sb strings.Builder
	WritePlacementStudy(&sb, rows)
	if !strings.Contains(sb.String(), "Placement study") {
		t.Error("render missing header")
	}
}

// mustCost builds a cost model, failing the test on error.
func mustCost(t testing.TB, cfg energy.Config) energy.CostModel {
	t.Helper()
	cm, err := energy.NewCostModel(cfg)
	if err != nil {
		t.Fatalf("NewCostModel: %v", err)
	}
	return cm
}
