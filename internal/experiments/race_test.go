//go:build race

package experiments

// raceEnabled scales the heavyweight golden-compare sweeps down when the
// race detector (~10-20x slowdown) is on; the full sweeps run in the
// uninstrumented test pass.
const raceEnabled = true
