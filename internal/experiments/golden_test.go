package experiments

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/allocations.golden from the current solver's output")

// renderAllStudies runs every experiment study on one shared suite and
// renders the solver-dependent portion of each table: everything the
// paper's figures report (energies, placed bytes, allocation splits) but
// none of the wall-clock or solver-effort fields, which legitimately
// change when the solver does.
func renderAllStudies(t *testing.T, s *Suite) []byte {
	t.Helper()
	ctx := context.Background()
	var buf bytes.Buffer

	fig4cfg := DefaultFig4()
	fig4, err := Fig4(ctx, s, fig4cfg)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	WriteFig4(&buf, fig4cfg, fig4)

	fig5cfg := DefaultFig5()
	fig5, err := Fig5(ctx, s, fig5cfg)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	WriteFig5(&buf, fig5cfg, fig5)

	t1rows, t1avgs, err := Table1(ctx, s, DefaultTable1())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	WriteTable1(&buf, t1rows, t1avgs)

	senscfg := DefaultSensitivity()
	sens, err := Sensitivity(ctx, s, senscfg)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	WriteSensitivity(&buf, senscfg, sens)

	wcet, err := WCETStudy(ctx, s, DefaultWCETStudy())
	if err != nil {
		t.Fatalf("WCETStudy: %v", err)
	}
	WriteWCETStudy(&buf, wcet)

	ocfg, err := DefaultOverlayStudy()
	if err != nil {
		t.Fatal(err)
	}
	overlay, err := OverlayStudy(ctx, s, ocfg)
	if err != nil {
		t.Fatalf("OverlayStudy: %v", err)
	}
	WriteOverlayStudy(&buf, overlay)

	data, err := DataStudy(ctx, s, DefaultDataStudy())
	if err != nil {
		t.Fatalf("DataStudy: %v", err)
	}
	WriteDataStudy(&buf, data)

	placement, err := PlacementStudy(ctx, s, DefaultPlacementStudy())
	if err != nil {
		t.Fatalf("PlacementStudy: %v", err)
	}
	WritePlacementStudy(&buf, placement)

	abl, err := Ablations(ctx, s, DefaultAblations())
	if err != nil {
		t.Fatalf("Ablations: %v", err)
	}
	// Energies only: times, node and iteration counts are solver effort,
	// not allocation results.
	fmt.Fprintf(&buf, "ablation copy-vs-move: copy %.4f uJ (%d misses) move %.4f uJ (%d misses)\n",
		abl.CopyMove.CopyMicroJ, abl.CopyMove.CopyMisses,
		abl.CopyMove.MoveMicroJ, abl.CopyMove.MoveMisses)
	fmt.Fprintf(&buf, "ablation linearization: tight %.4f nJ (%v) faithful %.4f nJ (%v)\n",
		abl.Linearization.TightEnergy, abl.Linearization.TightStatus,
		abl.Linearization.FaithfulEnergy, abl.Linearization.FaithfulStatus)
	fmt.Fprintf(&buf, "ablation greedy-vs-ilp: ilp %.4f uJ greedy %.4f uJ (predicted %.4f vs %.4f nJ)\n",
		abl.GreedyILP.ILPMicroJ, abl.GreedyILP.GreedyMicroJ,
		abl.GreedyILP.ILPPredicted, abl.GreedyILP.GreedyPredicted)

	return buf.Bytes()
}

// TestAllocationsMatchSeedGolden locks every experiment study's
// allocation output to the seed solver's: the ILP engine is free to get
// faster, but it must return the same optimal allocations byte for byte.
// Regenerate with `go test ./internal/experiments -run Golden -update-golden`
// after an intentional change.
func TestAllocationsMatchSeedGolden(t *testing.T) {
	if raceEnabled {
		t.Skip("full study sweep is too heavy under the race detector")
	}
	if testing.Short() {
		t.Skip("full study sweep skipped in -short mode")
	}
	got := renderAllStudies(t, NewSuite())
	path := filepath.Join("testdata", "allocations.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("experiment allocations diverged from the seed solver's golden.\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}
