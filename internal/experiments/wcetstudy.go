package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/wcet"
)

// WCETRow compares static worst-case fetch-cycle bounds for one
// configuration: cache-only layout vs. the CASA-allocated layout. The
// paper's introduction claims scratchpads "allow tighter bounds on WCET
// prediction of the system"; this study quantifies the claim — every
// scratchpad fetch is deterministic, while cacheable fetches must be
// assumed to miss.
type WCETRow struct {
	Workload string
	SPMSize  int
	// Static bounds (fetch cycles).
	CacheOnlyBound int64
	CASABound      int64
	// Observed cycles from simulation, for context (bound/observed is the
	// analysis pessimism).
	CacheOnlyObserved int64
	CASAObserved      int64
	// TighteningPct is the bound reduction CASA buys.
	TighteningPct float64
}

// WCETStudyConfig selects the configurations to bound.
type WCETStudyConfig struct {
	Rows []struct {
		Workload string
		Cache    CacheSpec
		SPMSize  int
	}
}

// DefaultWCETStudy bounds each benchmark at its Table-1 cache with a
// mid-sized scratchpad.
func DefaultWCETStudy() WCETStudyConfig {
	cfg := WCETStudyConfig{}
	add := func(w string, cache CacheSpec, spm int) {
		cfg.Rows = append(cfg.Rows, struct {
			Workload string
			Cache    CacheSpec
			SPMSize  int
		}{w, cache, spm})
	}
	add("adpcm", DM(128), 128)
	add("g721", DM(1024), 256)
	add("mpeg", DM(2048), 512)
	return cfg
}

// WCETStudy runs the study, one worker per configuration.
func WCETStudy(ctx context.Context, s *Suite, cfg WCETStudyConfig) ([]WCETRow, error) {
	return runCells(ctx, s, len(cfg.Rows), func(ctx context.Context, i int) (WCETRow, error) {
		rc := cfg.Rows[i]
		p, err := s.Pipeline(ctx, rc.Workload, rc.Cache, rc.SPMSize)
		if err != nil {
			return WCETRow{}, err
		}
		return wcetRow(ctx, p)
	})
}

func wcetRow(ctx context.Context, p *Pipeline) (WCETRow, error) {
	timing := memsim.DefaultTiming()
	lineWords := int64((p.Cache.Line + 3) / 4)
	costs := wcet.Costs{
		HitCycles:  timing.CacheHit,
		MissCycles: timing.CacheHit + timing.MissSetup + timing.MissPerWord*lineWords,
		SPMCycles:  timing.SPM,
		EHit:       p.Cost.CacheHit,
		EMiss:      p.Cost.CacheMiss,
		ESPM:       p.Cost.SPMAccess,
		LineBytes:  p.Cache.Line,
	}

	plain, err := layout.New(p.Set, nil, layout.Options{})
	if err != nil {
		return WCETRow{}, err
	}
	baseBound, err := wcet.Analyze(p.Prog, plain, costs)
	if err != nil {
		return WCETRow{}, err
	}
	baseRun, err := p.RunCacheOnly(ctx)
	if err != nil {
		return WCETRow{}, err
	}

	alloc, err := p.CASAAllocation(ctx)
	if err != nil {
		return WCETRow{}, err
	}
	casaLay, err := layout.New(p.Set, alloc.InSPM, layout.Options{
		Mode: layout.Copy, SPMSize: p.SPMSize,
	})
	if err != nil {
		return WCETRow{}, err
	}
	casaBound, err := wcet.Analyze(p.Prog, casaLay, costs)
	if err != nil {
		return WCETRow{}, err
	}
	casaRun, err := p.RunCASA(ctx)
	if err != nil {
		return WCETRow{}, err
	}

	return WCETRow{
		Workload:          p.Workload,
		SPMSize:           p.SPMSize,
		CacheOnlyBound:    baseBound.Cycles,
		CASABound:         casaBound.Cycles,
		CacheOnlyObserved: baseRun.Result.Cycles,
		CASAObserved:      casaRun.Result.Cycles,
		TighteningPct:     100 * float64(baseBound.Cycles-casaBound.Cycles) / float64(baseBound.Cycles),
	}, nil
}

// WriteWCETStudy renders the study as a text table.
func WriteWCETStudy(w io.Writer, rows []WCETRow) {
	fmt.Fprintln(w, "WCET study: static fetch-cycle bounds, cache-only vs. CASA layout")
	fmt.Fprintf(w, "%-8s %8s %16s %16s %12s %16s %16s\n",
		"workload", "SPM(B)", "bound(cache)", "bound(CASA)", "tighter(%)",
		"observed(cache)", "observed(CASA)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %8d %16d %16d %12.1f %16d %16d\n",
			r.Workload, r.SPMSize, r.CacheOnlyBound, r.CASABound, r.TighteningPct,
			r.CacheOnlyObserved, r.CASAObserved)
	}
}
