package experiments

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// renderFig4 runs Figure 4 on a fresh suite at the given worker count and
// returns the rendered table.
func renderFig4(t *testing.T, workers int) string {
	t.Helper()
	cfg := DefaultFig4()
	rows, err := Fig4(context.Background(), NewSuite().SetWorkers(workers), cfg)
	if err != nil {
		t.Fatalf("Fig4 (%d workers): %v", workers, err)
	}
	var sb strings.Builder
	WriteFig4(&sb, cfg, rows)
	return sb.String()
}

func renderTable1(t *testing.T, workers int) string {
	t.Helper()
	rows, avgs, err := Table1(context.Background(), NewSuite().SetWorkers(workers), DefaultTable1())
	if err != nil {
		t.Fatalf("Table1 (%d workers): %v", workers, err)
	}
	var sb strings.Builder
	WriteTable1(&sb, rows, avgs)
	return sb.String()
}

// TestParallelMatchesSerialGolden is the acceptance check for the worker
// pool: the rendered Figure 4 and Table 1 must be byte-identical no
// matter how many workers evaluate the grid. Under the race detector the
// sweep shrinks to one parallel width and Figure 4 only — the full sweep
// runs uninstrumented (simulation under -race is ~15x slower and the
// grids are minutes of work).
func TestParallelMatchesSerialGolden(t *testing.T) {
	counts := []int{2, 4, 7}
	if raceEnabled {
		counts = []int{4}
	}
	serialFig4 := renderFig4(t, 1)
	var serialTable1 string
	if !raceEnabled {
		serialTable1 = renderTable1(t, 1)
	}
	for _, workers := range counts {
		if got := renderFig4(t, workers); got != serialFig4 {
			t.Errorf("Fig4 output at %d workers differs from serial:\n%s\nvs\n%s",
				workers, got, serialFig4)
		}
		if raceEnabled {
			continue
		}
		if got := renderTable1(t, workers); got != serialTable1 {
			t.Errorf("Table1 output at %d workers differs from serial:\n%s\nvs\n%s",
				workers, got, serialTable1)
		}
	}
}

// TestSuiteConcurrentStudies drives two studies over one shared Suite
// from concurrent goroutines; under -race this stresses the pipeline
// singleflight and the outcome memos. It uses the small adpcm benchmark —
// the contention pattern, not the workload size, is what's under test.
func TestSuiteConcurrentStudies(t *testing.T) {
	fig4 := Fig4Config{Workload: "adpcm", Cache: DM(128), SPMSizes: []int{64, 128, 256}}
	fig5 := Fig5Config{Workload: "adpcm", Cache: DM(128), Sizes: []int{64, 128, 256}}
	s := NewSuite().SetWorkers(4)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Fig4(context.Background(), s, fig4); err != nil {
				t.Errorf("Fig4: %v", err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Fig5(context.Background(), s, fig5); err != nil {
				t.Errorf("Fig5: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestParallelSpeedup checks the ≥2× wall-clock win at 4 workers on the
// mpeg grid. It needs real parallel hardware, so it skips on small hosts
// (CI containers with 1–2 CPUs cannot exhibit the speedup), and disables
// the fetch-stream cache so the pool itself is measured rather than the
// memoization layer.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need ≥4 CPUs for a meaningful speedup measurement, have %d", runtime.NumCPU())
	}
	t.Setenv("CASA_STREAM_CACHE", "off")

	cfg := DefaultFig4()
	run := func(workers int) time.Duration {
		start := time.Now()
		if _, err := Fig4(context.Background(), NewSuite().SetWorkers(workers), cfg); err != nil {
			t.Fatalf("Fig4 (%d workers): %v", workers, err)
		}
		return time.Since(start)
	}
	run(1) // warm the process-wide profile memo so both timed runs see it
	serial := run(1)
	parallel := run(4)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, 4 workers %v → %.2fx", serial, parallel, speedup)
	if speedup < 2 {
		t.Errorf("speedup %.2fx at 4 workers, want ≥2x", speedup)
	}
}
