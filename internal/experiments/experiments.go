// Package experiments assembles the full evaluation pipeline of the paper
// (Figure 3): workload → profile → trace generation → allocation (CASA,
// Steinke's knapsack, or Ross's loop-cache preloading) → layout → memory-
// hierarchy simulation → energy, and regenerates every figure and table of
// the results section.
//
// A Pipeline bundles everything derived from one (workload, cache,
// scratchpad-size) triple so the three allocators are compared on exactly
// the same traces and the same profiling run, as the paper prescribes
// ("for a fair comparison, traces are generated for both the allocation
// techniques"). A Suite memoizes Pipelines across figures.
//
// Concurrency model: every experiment cell — one (workload, cache,
// scratchpad size) point of a study — is deterministic and independent,
// so the study functions fan their grids out across a bounded worker pool
// (internal/parallel) sized by the Suite's worker setting. Shared state
// is either immutable after construction (programs, profiles, trace sets,
// conflict graphs, layouts) or guarded by singleflight memo entries (the
// Suite's pipeline table, each Pipeline's outcome and allocation memos),
// so a Suite and its Pipelines are safe for concurrent use and results
// are bit-identical to a serial run.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/ilp"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/loopcache"
	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/steinke"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Memoization effectiveness counters. Hit rates are the observability
// pay-off metric of the PR 1 memo layers: a warm second round should show
// pipeline/outcome hits near 100%.
var (
	mPipeHits    = obs.GetCounter("casa_pipeline_memo_hits_total")
	mPipeMisses  = obs.GetCounter("casa_pipeline_memo_misses_total")
	mOutHits     = obs.GetCounter("casa_outcome_memo_hits_total")
	mOutMisses   = obs.GetCounter("casa_outcome_memo_misses_total")
	mAllocHits   = obs.GetCounter("casa_alloc_memo_hits_total")
	mAllocMisses = obs.GetCounter("casa_alloc_memo_misses_total")
	// mConflictIncremental counts conflict graphs rebased onto a donor
	// cell's vertex layer instead of being built from scratch
	// (prepareProgram; gated on CASA_INCREMENTAL by the suite).
	mConflictIncremental = obs.GetCounter("casa_conflict_incremental_total")
)

// CacheSpec selects the I-cache configuration of an experiment.
type CacheSpec struct {
	// Size is the capacity in bytes.
	Size int
	// Line is the line size in bytes (the paper-wide default is 16).
	Line int
	// Assoc is the associativity (1 = direct-mapped, as in the paper).
	Assoc int
	// Policy is the replacement policy for associative configurations.
	Policy cache.Policy
}

// DefaultLine is the line size used throughout the evaluation.
const DefaultLine = 16

// LoopCacheEntries is the preload limit of the modelled loop cache; the
// paper assumes a maximum of 4 loops.
const LoopCacheEntries = 4

// DM returns a direct-mapped CacheSpec with the default line size.
func DM(size int) CacheSpec {
	return CacheSpec{Size: size, Line: DefaultLine, Assoc: 1}
}

func (c CacheSpec) cacheConfig() cache.Config {
	return cache.Config{
		SizeBytes:   c.Size,
		LineBytes:   c.Line,
		Assoc:       c.Assoc,
		Replacement: c.Policy,
	}
}

func (c CacheSpec) geometry() energy.CacheGeometry {
	return energy.CacheGeometry{SizeBytes: c.Size, LineBytes: c.Line, Assoc: c.Assoc}
}

// Pipeline is everything shared by the allocators for one configuration.
// All exported fields are immutable after Prepare; the Run* methods
// memoize their outcomes and are safe for concurrent use.
type Pipeline struct {
	// Workload is the benchmark name.
	Workload string
	// Prog is the loaded program.
	Prog *ir.Program
	// Prof is its execution profile.
	Prof *sim.Profile
	// Cache is the I-cache configuration.
	Cache CacheSpec
	// SPMSize is the scratchpad (or loop cache) capacity in bytes.
	SPMSize int
	// Set is the trace partition (traces capped at SPMSize).
	Set *trace.Set
	// Graph is the conflict graph from the cache-only profiling run.
	Graph *conflict.Graph
	// Baseline is the cache-only run (trace layout, empty scratchpad).
	Baseline *memsim.Result
	// Cost is the scratchpad-configuration cost model.
	Cost energy.CostModel
	// SolveBudget caps the CASA ILP's wall-clock time (0 = unlimited);
	// on expiry the solver degrades to its incumbent or the greedy
	// fallback instead of failing the cell.
	SolveBudget time.Duration
	// Session shares presolve reductions across this pipeline's solves
	// (set by the owning Suite; nil for standalone pipelines).
	Session *ilp.Session

	// WarmCutoff, when non-nil, seeds the CASA solve with a
	// known-feasible objective value (a cutoff, see ilp.Options.Cutoff).
	// Callers that keep their own cross-pipeline warm stores — the
	// serving daemon — fill it before the first RunCASA; pipelines owned
	// by a Suite ignore it in favor of the suite's warm planner. Ignored
	// when CASA_INCREMENTAL is off.
	WarmCutoff *float64

	// WarmHot optionally carries a donor solve's transferable basis and
	// pseudocosts alongside WarmCutoff (ilp.Options.HotStart). Like the
	// cutoff it never changes results, only solve time; suite-owned
	// pipelines ignore it in favor of the warm planner's donor choice.
	WarmHot *ilp.HotStart

	// suite points back at the owning Suite for cross-cell warm starts;
	// nil for pipelines prepared outside a suite.
	suite *Suite

	// mu guards the memo tables below; each entry is singleflight so a
	// result is computed once even under concurrent callers.
	mu       sync.Mutex
	outcomes map[string]*outcomeEntry
	alloc    *allocEntry
}

type outcomeEntry struct {
	once sync.Once
	out  *Outcome
	err  error
}

type allocEntry struct {
	once  sync.Once
	alloc *core.Allocation
	err   error
}

// Prepare builds the pipeline for one (workload, cache, scratchpad size)
// configuration: it profiles the program, forms traces, lays them out
// without a scratchpad and runs the conflict-tracking profiling
// simulation. The context carries the optional tracing span tree
// (obs.WithTracer); each preparation stage records its own child span.
func Prepare(ctx context.Context, name string, cacheSpec CacheSpec, spmSize int) (*Pipeline, error) {
	prog, err := workload.Shared(name)
	if err != nil {
		return nil, err
	}
	return PrepareProgram(ctx, prog, cacheSpec, spmSize)
}

// PrepareProgram is Prepare for an already-constructed program (custom
// workloads, tests). The program must not be mutated afterwards: profiles
// and fetch streams are memoized process-wide per program instance.
func PrepareProgram(ctx context.Context, prog *ir.Program, cacheSpec CacheSpec, spmSize int) (*Pipeline, error) {
	return prepareProgram(ctx, prog, cacheSpec, spmSize, nil)
}

// prepareProgram is PrepareProgram with an optional conflict-graph donor:
// when donor covers the same memory objects (same trace partition — the
// suite passes a graph from a cell differing only in cache geometry),
// the new graph rebases onto its vertex layer instead of rebuilding it,
// and the rebase is counted. Edge weights always come from this cell's
// own profiling run, so the result is identical with or without a donor.
func prepareProgram(ctx context.Context, prog *ir.Program, cacheSpec CacheSpec, spmSize int, donor *conflict.Graph) (*Pipeline, error) {
	ctx, ps := obs.StartSpan(ctx, "prepare")
	defer ps.End()
	ps.SetAttr("workload", prog.Name)
	ps.SetAttr("cache_bytes", cacheSpec.Size)
	ps.SetAttr("spm_bytes", spmSize)

	_, sp := obs.StartSpan(ctx, "profile")
	prof, err := sim.CachedProfile(prog)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: profile %s: %w", prog.Name, err)
	}
	_, sp = obs.StartSpan(ctx, "trace-partition")
	set, err := trace.Build(prog, prof, trace.Options{MaxBytes: spmSize, LineBytes: cacheSpec.Line})
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: traces %s: %w", prog.Name, err)
	}
	_, sp = obs.StartSpan(ctx, "layout")
	plain, err := layout.New(set, nil, layout.Options{})
	sp.End()
	if err != nil {
		return nil, err
	}
	_, sp = obs.StartSpan(ctx, "energy-model")
	cost, err := energy.NewCostModel(energy.Config{
		Cache:    cacheSpec.geometry(),
		SPMBytes: spmSize,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	_, sp = obs.StartSpan(ctx, "baseline-sim")
	base, err := memsim.Run(prog, plain, memsim.Config{
		Cache:          cacheSpec.cacheConfig(),
		Cost:           cost,
		TrackConflicts: true,
		KeepCache:      true,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	_, sp = obs.StartSpan(ctx, "conflict-graph")
	fetches := make([]int64, len(set.Traces))
	for i, t := range set.Traces {
		fetches[i] = t.Fetches
	}
	var g *conflict.Graph
	if donor != nil && donor.MatchesFetches(fetches) {
		g = donor.Rebase()
		mConflictIncremental.Inc()
		sp.SetAttr("rebased", true)
	} else {
		g = conflict.New(fetches)
	}
	for k, v := range base.Conflicts {
		if err := g.AddMisses(k.Victim, k.Evictor, v); err != nil {
			sp.End()
			return nil, fmt.Errorf("experiments: conflict graph: %w", err)
		}
	}
	sp.SetAttr("edges", g.NumEdges())
	sp.End()
	return &Pipeline{
		Workload: prog.Name,
		Prog:     prog,
		Prof:     prof,
		Cache:    cacheSpec,
		SPMSize:  spmSize,
		Set:      set,
		Graph:    g,
		Baseline: base,
		Cost:     cost,
	}, nil
}

// Outcome is the measured result of one allocator under one pipeline.
type Outcome struct {
	// Allocator names the technique ("casa", "casa-greedy", "steinke",
	// "loopcache", "cache-only").
	Allocator string
	// Result is the full simulation result.
	Result *memsim.Result
	// EnergyMicroJ is the total instruction-memory energy in µJ.
	EnergyMicroJ float64
	// PlacedTraces and UsedBytes describe the allocation (scratchpad
	// techniques only).
	PlacedTraces int
	UsedBytes    int
	// SolverNodes reports ILP effort (CASA only).
	SolverNodes int
	// Degraded marks an anytime result: the ILP stopped on its budget or
	// cancellation and the allocation is the best incumbent (or the
	// greedy fallback) rather than a proven optimum.
	Degraded bool
	// DegradedReason says why ("deadline", "canceled", "node-limit", ...).
	DegradedReason string
	// Gap is the relative optimality gap of a degraded incumbent
	// (0 when proven optimal or unknown).
	Gap float64
	// Fallback marks a degraded result obtained from GreedyAllocate
	// because the solver produced no incumbent at all.
	Fallback bool
}

func (p *Pipeline) finish(name string, res *memsim.Result, placed, used, nodes int) *Outcome {
	return &Outcome{
		Allocator:    name,
		Result:       res,
		EnergyMicroJ: res.TotalEnergyMicroJ(),
		PlacedTraces: placed,
		UsedBytes:    used,
		SolverNodes:  nodes,
	}
}

// casaParams derives the CASA energy parameters from the pipeline's cost
// model.
func (p *Pipeline) casaParams() core.Params {
	return core.Params{
		SPMSize:    p.SPMSize,
		ESPHit:     p.Cost.SPMAccess,
		ECacheHit:  p.Cost.CacheHit,
		ECacheMiss: p.Cost.CacheMiss,
		Solver:     ilp.Options{Budget: p.SolveBudget, Session: p.Session},
	}
}

// outcome returns the memoized result for key, computing it at most once
// via fn even under concurrent callers. Lookups are counted in the memo
// hit/miss metrics; a "hit" is any call that finds the entry already
// created (it may still block briefly on the in-flight computation).
func (p *Pipeline) outcome(key string, fn func() (*Outcome, error)) (*Outcome, error) {
	p.mu.Lock()
	if p.outcomes == nil {
		p.outcomes = make(map[string]*outcomeEntry)
	}
	e, ok := p.outcomes[key]
	if !ok {
		e = &outcomeEntry{}
		p.outcomes[key] = e
	}
	p.mu.Unlock()
	if ok {
		mOutHits.Inc()
	} else {
		mOutMisses.Inc()
	}
	e.once.Do(func() { e.out, e.err = fn() })
	return e.out, e.err
}

// CASAAllocation returns the pipeline's CASA ILP allocation, solved at
// most once; RunCASA, the ablations and the WCET study all share it.
func (p *Pipeline) CASAAllocation(ctx context.Context) (*core.Allocation, error) {
	p.mu.Lock()
	created := p.alloc == nil
	if created {
		p.alloc = &allocEntry{}
	}
	e := p.alloc
	p.mu.Unlock()
	if created {
		mAllocMisses.Inc()
	} else {
		mAllocHits.Inc()
	}
	e.once.Do(func() {
		actx, sp := obs.StartSpan(ctx, "allocate")
		defer sp.End()
		sp.SetAttr("workload", p.Workload)
		params := p.casaParams()
		if p.suite != nil && ilp.IncrementalEnabled() {
			// Cross-cell warm start: seed the solve with the tightest
			// cutoff transferable from a solved neighboring cell, plus —
			// when a partition-matching donor exists — that donor's simplex
			// basis and pseudocosts (warmplan.go). Cold cells are counted
			// as misses here; hits are counted by the solver when it
			// installs the cutoff.
			if cut, hot, ok := p.suite.warmCutoff(p, params); ok {
				params.Solver.Cutoff = &cut
				params.Solver.HotStart = hot
				sp.SetAttr("warm_cutoff", cut)
			} else {
				mWarmCellMisses.Inc()
			}
		} else if p.WarmCutoff != nil && ilp.IncrementalEnabled() {
			params.Solver.Cutoff = p.WarmCutoff
			params.Solver.HotStart = p.WarmHot
			sp.SetAttr("warm_cutoff", *p.WarmCutoff)
		}
		e.alloc, e.err = core.Allocate(actx, p.Set, p.Graph, params)
		if e.err != nil {
			e.err = fmt.Errorf("experiments: casa %s/%d: %w", p.Workload, p.SPMSize, e.err)
		} else if p.suite != nil && ilp.IncrementalEnabled() {
			p.suite.recordWarm(p, e.alloc)
		}
	})
	if e.err == nil && e.alloc.Degraded {
		// Annotate every caller's span (memo hits included) so each cell
		// that consumes a degraded allocation is visible in run reports.
		_, sp := obs.StartSpan(ctx, "degraded-allocation")
		sp.SetAttr("degraded", e.alloc.DegradedReason)
		sp.SetAttr("gap", e.alloc.Gap)
		if e.alloc.Fallback {
			sp.SetAttr("fallback", "greedy")
		}
		sp.End()
	}
	return e.alloc, e.err
}

// RunCASA allocates with the paper's algorithm (copy semantics) and
// simulates the result.
func (p *Pipeline) RunCASA(ctx context.Context) (*Outcome, error) {
	return p.outcome("casa", func() (*Outcome, error) {
		alloc, err := p.CASAAllocation(ctx)
		if err != nil {
			return nil, err
		}
		out, err := p.runSPM(ctx, "casa", alloc.InSPM, layout.Copy, alloc.UsedBytes, alloc.Nodes)
		if err != nil {
			return nil, err
		}
		out.Degraded = alloc.Degraded
		out.DegradedReason = alloc.DegradedReason
		out.Gap = alloc.Gap
		out.Fallback = alloc.Fallback
		return out, nil
	})
}

// RunCASAGreedy runs the greedy variant of the fine-grained model (for
// ablation).
func (p *Pipeline) RunCASAGreedy(ctx context.Context) (*Outcome, error) {
	return p.outcome("casa-greedy", func() (*Outcome, error) {
		alloc, err := core.GreedyAllocate(ctx, p.Set, p.Graph, p.casaParams())
		if err != nil {
			return nil, err
		}
		return p.runSPM(ctx, "casa-greedy", alloc.InSPM, layout.Copy, alloc.UsedBytes, 0)
	})
}

// RunSteinke allocates with the cache-unaware knapsack baseline [13]
// (move semantics) and simulates the result.
func (p *Pipeline) RunSteinke(ctx context.Context) (*Outcome, error) {
	return p.outcome("steinke", func() (*Outcome, error) {
		alloc, err := steinke.Allocate(p.Set, p.SPMSize)
		if err != nil {
			return nil, err
		}
		return p.runSPM(ctx, "steinke", alloc.InSPM, layout.Move, alloc.UsedBytes, 0)
	})
}

// RunSelection simulates an arbitrary scratchpad selection under the given
// placement semantics; the ablation benches use it to isolate copy vs.
// move effects.
func (p *Pipeline) RunSelection(ctx context.Context, name string, inSPM []bool, mode layout.Mode) (*Outcome, error) {
	used := 0
	placed := 0
	for i, in := range inSPM {
		if in {
			used += p.Set.Traces[i].RawBytes
			placed++
		}
	}
	return p.runSPM(ctx, name, inSPM, mode, used, 0)
}

func (p *Pipeline) runSPM(ctx context.Context, name string, inSPM []bool, mode layout.Mode, used, nodes int) (*Outcome, error) {
	_, sp := obs.StartSpan(ctx, "spm-layout")
	lay, err := layout.New(p.Set, inSPM, layout.Options{Mode: mode, SPMSize: p.SPMSize})
	sp.End()
	if err != nil {
		return nil, err
	}
	_, sp = obs.StartSpan(ctx, "simulate")
	sp.SetAttr("allocator", name)
	res, err := memsim.Run(p.Prog, lay, memsim.Config{
		Cache: p.Cache.cacheConfig(),
		Cost:  p.Cost,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	placed := 0
	for _, in := range inSPM {
		if in {
			placed++
		}
	}
	return p.finish(name, res, placed, used, nodes), nil
}

// RunLoopCache preloads a loop cache of the pipeline's size with Ross's
// heuristic [12] and simulates the result. The loop cache replaces the
// scratchpad (Figure 1(b)); the main-memory layout is the plain trace
// layout.
func (p *Pipeline) RunLoopCache(ctx context.Context) (*Outcome, error) {
	return p.outcome("loopcache", func() (*Outcome, error) { return p.runLoopCache(ctx) })
}

func (p *Pipeline) runLoopCache(ctx context.Context) (*Outcome, error) {
	plain, err := layout.New(p.Set, nil, layout.Options{})
	if err != nil {
		return nil, err
	}
	cands := loopcache.Candidates(p.Prog, p.Prof, plain)
	ctrl, err := loopcache.Allocate(loopcache.Config{
		SizeBytes:  p.SPMSize,
		MaxRegions: LoopCacheEntries,
	}, cands)
	if err != nil {
		return nil, fmt.Errorf("experiments: loopcache %s/%d: %w", p.Workload, p.SPMSize, err)
	}
	cost, err := energy.NewCostModel(energy.Config{
		Cache:            p.Cache.geometry(),
		LoopCacheBytes:   p.SPMSize,
		LoopCacheEntries: LoopCacheEntries,
	})
	if err != nil {
		return nil, err
	}
	_, sp := obs.StartSpan(ctx, "simulate")
	sp.SetAttr("allocator", "loopcache")
	res, err := memsim.Run(p.Prog, plain, memsim.Config{
		Cache:     p.Cache.cacheConfig(),
		LoopCache: ctrl,
		Cost:      cost,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	return p.finish("loopcache", res, len(ctrl.Regions()), ctrl.Used(), 0), nil
}

// RunCacheOnly simulates the trace layout with no scratchpad or loop
// cache: the reference hierarchy.
func (p *Pipeline) RunCacheOnly(ctx context.Context) (*Outcome, error) {
	return p.outcome("cache-only", func() (*Outcome, error) { return p.runCacheOnly(ctx) })
}

func (p *Pipeline) runCacheOnly(ctx context.Context) (*Outcome, error) {
	plain, err := layout.New(p.Set, nil, layout.Options{})
	if err != nil {
		return nil, err
	}
	cost, err := energy.NewCostModel(energy.Config{Cache: p.Cache.geometry()})
	if err != nil {
		return nil, err
	}
	_, sp := obs.StartSpan(ctx, "simulate")
	sp.SetAttr("allocator", "cache-only")
	res, err := memsim.Run(p.Prog, plain, memsim.Config{
		Cache: p.Cache.cacheConfig(),
		Cost:  cost,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	return p.finish("cache-only", res, 0, 0, 0), nil
}

// Suite memoizes pipelines so that figures sharing configurations (e.g.
// Figure 4, Figure 5 and Table 1 all use mpeg with a 2 kB cache) prepare
// them once, and carries the worker-pool width the study functions fan
// out with. A Suite is safe for concurrent use.
type Suite struct {
	mu          sync.Mutex
	workers     int
	solveBudget time.Duration
	pipelines   map[suiteKey]*suiteEntry

	// warm holds solved cells for cross-cell warm starts; session shares
	// presolve reductions across the suite's solves (warmplan.go).
	warm    warmStore
	session *ilp.Session

	// graphs holds the first conflict graph built per trace partition —
	// (workload, scratchpad size, line size) fixes the vertex layer — so
	// cells differing only in cache geometry rebase onto it instead of
	// rebuilding it (conflict.Rebase).
	graphs map[graphKey]*conflict.Graph
}

// graphKey identifies a trace partition: the parameters that determine
// the conflict graph's vertex set (but not its edge weights).
type graphKey struct {
	name      string
	spmSize   int
	lineBytes int
}

// graphDonor returns a previously built conflict graph over the same
// trace partition, if any.
func (s *Suite) graphDonor(k graphKey) *conflict.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.graphs[k]
}

// recordGraph stores the first conflict graph built for a partition.
func (s *Suite) recordGraph(k graphKey, g *conflict.Graph) {
	s.mu.Lock()
	if s.graphs == nil {
		s.graphs = make(map[graphKey]*conflict.Graph)
	}
	if _, ok := s.graphs[k]; !ok {
		s.graphs[k] = g
	}
	s.mu.Unlock()
}

type suiteKey struct {
	name    string
	cache   CacheSpec
	spmSize int
}

type suiteEntry struct {
	once sync.Once
	p    *Pipeline
	err  error
}

// NewSuite returns an empty suite with the default worker count
// (CASA_WORKERS, else GOMAXPROCS-style runtime.NumCPU).
func NewSuite() *Suite {
	return &Suite{pipelines: make(map[suiteKey]*suiteEntry), session: ilp.NewSession()}
}

// SetWorkers fixes the worker-pool width for this suite's studies
// (0 restores the default resolution) and returns the suite for
// chaining.
func (s *Suite) SetWorkers(n int) *Suite {
	s.mu.Lock()
	s.workers = n
	s.mu.Unlock()
	return s
}

// Workers returns the resolved worker-pool width the suite's studies run
// with.
func (s *Suite) Workers() int {
	s.mu.Lock()
	n := s.workers
	s.mu.Unlock()
	return parallel.Workers(n)
}

// SetSolveBudget caps each pipeline's CASA ILP solve at d of wall clock
// (0 = unlimited) and returns the suite for chaining. The budget applies
// to pipelines prepared after the call; on expiry a solve degrades to
// its incumbent (or the greedy fallback) instead of failing.
func (s *Suite) SetSolveBudget(d time.Duration) *Suite {
	s.mu.Lock()
	s.solveBudget = d
	s.mu.Unlock()
	return s
}

// SolveBudget returns the suite's per-solve wall-clock budget.
func (s *Suite) SolveBudget() time.Duration {
	s.mu.Lock()
	d := s.solveBudget
	s.mu.Unlock()
	return d
}

// Pipeline returns the (possibly cached) pipeline for a configuration.
// Concurrent callers of the same configuration share one preparation.
func (s *Suite) Pipeline(ctx context.Context, name string, cacheSpec CacheSpec, spmSize int) (*Pipeline, error) {
	k := suiteKey{name: name, cache: cacheSpec, spmSize: spmSize}
	s.mu.Lock()
	e, ok := s.pipelines[k]
	if !ok {
		e = &suiteEntry{}
		s.pipelines[k] = e
	}
	s.mu.Unlock()
	if ok {
		mPipeHits.Inc()
	} else {
		mPipeMisses.Inc()
	}
	e.once.Do(func() {
		prog, err := workload.Shared(name)
		if err != nil {
			e.err = err
			return
		}
		gk := graphKey{name: name, spmSize: spmSize, lineBytes: cacheSpec.Line}
		var donor *conflict.Graph
		if ilp.IncrementalEnabled() {
			donor = s.graphDonor(gk)
		}
		e.p, e.err = prepareProgram(ctx, prog, cacheSpec, spmSize, donor)
		if e.err == nil {
			e.p.SolveBudget = s.SolveBudget()
			e.p.Session = s.session
			e.p.suite = s
			s.recordGraph(gk, e.p.Graph)
		}
	})
	return e.p, e.err
}

// runCells evaluates n independent experiment cells on the suite's worker
// pool and returns their results in cell order, regardless of worker
// count or scheduling. The caller's context — tracer included — reaches
// every cell, so per-cell spans nest under the study span even though the
// cells run on pool goroutines.
//
// Cells that fail (or panic — the pool converts panics to CellErrors) do
// not cancel their siblings: every healthy cell still produces its row,
// and the losing cells come back in a *parallel.GridError alongside the
// partial results, so a faulted grid degrades instead of vanishing.
func runCells[T any](ctx context.Context, s *Suite, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return parallel.MapAll(ctx, n, s.Workers(),
		func(cctx context.Context, i int) (T, error) {
			cctx, sp := obs.StartSpan(cctx, "cell")
			defer sp.End()
			sp.SetAttr("index", i)
			return fn(cctx, i)
		})
}
